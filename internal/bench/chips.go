package bench

import (
	"fmt"
	"strings"

	"tshmem/internal/arch"
	"tshmem/internal/core"
)

// The cross-architecture sweep (tshmem-bench -sweep-chips;
// docs/ARCHITECTURES.md). Like the synchronization-algorithm sweep it is
// deliberately NOT registered as an experiment or a probe, so the figure
// suite and BENCH_baseline.json stay byte-identical while it exists. The
// sweep runs every barrier algorithm at matching PE counts across chip
// families (two Tilera chips, two Epiphany chips) and reports where the
// PR 6 algorithm crossovers move between families: the eMesh's cheap hops
// but expensive emulated fetch-ops reshuffle the winners relative to the
// iMesh chips.

// sweepChipSet lists the chips compared side by side. Epiphany-V and
// synthetic grids are reachable through the same machinery
// (arch.ByName), but the default table keeps to the four chips with
// published measurements so every column is provenance-backed.
func sweepChipSet() []*arch.Chip {
	return []*arch.Chip{arch.Gx8036(), arch.Pro64(), arch.EpiphanyIII(), arch.EpiphanyIV()}
}

// sweepChipPEs lists the PE counts shared by every swept chip (bounded
// by the smallest: 16 cores on the Epiphany-III), so each row compares
// the same communicator size across families.
func sweepChipPEs() []int { return []int{2, 4, 8, 16} }

// SweepChips runs the cross-architecture barrier sweep and renders the
// per-family crossover report. Every measurement is a fresh
// single-barrier run via measureBarrierAlgo, so the tables are honest
// modeled latencies, not asserted constants.
func SweepChips(opt Options) (string, error) {
	var b strings.Builder
	chips := sweepChipSet()
	pes := sweepChipPEs()
	algos := core.BarrierAlgos()

	b.WriteString("== cross-architecture barrier sweep: worst-case latency (us) ==\n")
	b.WriteString("(same PE counts on every chip; the per-chip winner column shows\n" +
		" where the algorithm crossovers move between families)\n\n")

	// winners[c][j]: winning algorithm on chip c at PE count j.
	winners := make([][]string, len(chips))
	for c, chip := range chips {
		winners[c] = make([]string, len(pes))
		fmt.Fprintf(&b, "-- %s (%dx%d, %s) --\n", chip.Name, chip.GridW, chip.GridH, chip.Family)
		fmt.Fprintf(&b, "%6s", "PEs")
		for _, a := range algos {
			fmt.Fprintf(&b, " %13s", a)
		}
		fmt.Fprintf(&b, "   %s\n", "winner")
		for j, n := range pes {
			fmt.Fprintf(&b, "%6d", n)
			bestUs, winner := 0.0, ""
			for _, a := range algos {
				_, w, err := measureBarrierAlgo(opt, chip, n, a)
				if err != nil {
					return "", fmt.Errorf("bench: %s barrier, %d PEs on %s: %w", a, n, chip.Name, err)
				}
				fmt.Fprintf(&b, " %13.3f", w.Us())
				if winner == "" || w.Us() < bestUs {
					bestUs, winner = w.Us(), a.String()
				}
			}
			winners[c][j] = winner
			fmt.Fprintf(&b, "   %s\n", winner)
		}
		fmt.Fprintf(&b, "crossover: %s\n\n", crossoverSummary(pes, winners[c]))
	}

	// The payoff table: one row per chip, one column per PE count, each
	// cell the winning algorithm — family differences read straight down
	// a column.
	b.WriteString("== winning barrier algorithm by chip family ==\n")
	fmt.Fprintf(&b, "%-16s", "chip \\ PEs")
	for _, n := range pes {
		fmt.Fprintf(&b, " %14d", n)
	}
	b.WriteString("\n")
	for c, chip := range chips {
		fmt.Fprintf(&b, "%-16s", chip.Name)
		for j := range pes {
			fmt.Fprintf(&b, " %14s", winners[c][j])
		}
		b.WriteString("\n")
	}
	b.WriteString("(Epiphany chips emulate fetch-ops with TESTSET critical sections,\n" +
		" so counter-style barriers pay a premium the Tilera chips never see;\n" +
		" docs/ARCHITECTURES.md discusses the model behind each column.)\n")
	return b.String(), nil
}
