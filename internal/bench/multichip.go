package bench

import (
	"fmt"

	"tshmem/internal/arch"
	"tshmem/internal/core"
	"tshmem/internal/vtime"
)

func init() {
	register("mpipe", "Multi-chip TSHMEM over mPIPE: cross-chip costs (future-work ablation)", multichip)
}

// multichip quantifies the mPIPE extension of the paper's future work:
// expanding the shared-memory abstraction across multiple TILE-Gx devices.
// It contrasts on-chip and cross-chip one-sided transfer bandwidth and the
// chip-local vs hierarchical barrier.
func multichip(opt Options) (Experiment, error) {
	e := Experiment{
		ID:     "mpipe",
		Title:  "Cross-chip transfers and barriers over mPIPE (2x TILE-Gx8036)",
		XLabel: "bytes",
		YLabel: "MB/s",
	}
	gx := arch.Gx8036()

	onChip := Series{Label: "put on-chip"}
	offChip := Series{Label: "put cross-chip"}
	for _, size := range powersOfTwo(1<<10, 16<<20) {
		on, off, err := measureChipPut(opt, gx, size)
		if err != nil {
			return e, err
		}
		onChip.X = append(onChip.X, float64(size))
		onChip.Y = append(onChip.Y, float64(size)/on.Seconds()/1e6)
		offChip.X = append(offChip.X, float64(size))
		offChip.Y = append(offChip.Y, float64(size)/off.Seconds()/1e6)
	}
	e.Series = append(e.Series, onChip, offChip)

	// Barrier latency vs chip count at a fixed 32 PEs.
	bar := Series{Label: "barrier_all (32 PEs)"}
	for _, chips := range []int{1, 2, 4} {
		w, err := measureChipsBarrier(opt, gx, 32, chips)
		if err != nil {
			return e, err
		}
		bar.X = append(bar.X, float64(chips))
		bar.Y = append(bar.Y, w.Us())
	}
	e.Series = append(e.Series, bar)
	e.Notes = append(e.Notes,
		fmt.Sprintf("mPIPE link model: %dx%.0fGbE, %.1f us one-way control latency",
			gx.MPIPELinks, gx.MPIPELinkGbps, gx.MPIPELatencyNs/1000),
		"(barrier series: x is chip count, y is worst-case latency in us)",
		"cross-chip static-variable redirection is unsupported: UDN interrupts are chip-local")
	return e, nil
}

func measureChipPut(opt Options, chip *arch.Chip, size int64) (on, off vtime.Duration, err error) {
	nelems := int(size / 8)
	cfg := core.Config{Chip: chip, NPEs: 8, NChips: 2, HeapPerPE: 2*size + 1<<20}
	_, err = observedRun(opt, cfg, func(pe *core.PE) error {
		x, err := core.Malloc[int64](pe, nelems)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			t0 := pe.Now()
			if err := core.Put(pe, x, x, nelems, 1); err != nil { // same chip
				return err
			}
			on = pe.Now().Sub(t0)
			t0 = pe.Now()
			if err := core.Put(pe, x, x, nelems, 4); err != nil { // other chip
				return err
			}
			off = pe.Now().Sub(t0)
		}
		return pe.BarrierAll()
	})
	return on, off, err
}

func measureChipsBarrier(opt Options, chip *arch.Chip, npes, nchips int) (vtime.Duration, error) {
	lefts := make([]vtime.Duration, npes)
	cfg := core.Config{Chip: chip, NPEs: npes, NChips: nchips, HeapPerPE: 64 << 10}
	_, err := observedRun(opt, cfg, func(pe *core.PE) error {
		if err := pe.AlignClocks(); err != nil {
			return err
		}
		start := pe.Now()
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		lefts[pe.MyPE()] = pe.Now().Sub(start)
		return nil
	})
	return maxDur(lefts), err
}
