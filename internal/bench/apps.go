package bench

import (
	"fmt"

	"tshmem/internal/arch"
	"tshmem/internal/cbir"
	"tshmem/internal/core"
	"tshmem/internal/fft"
)

func init() {
	register("fig13", "2D-FFT on 1024x1024 complex floats: execution time and speedup", fig13)
	register("fig14", "CBIR on 22,000 8-bit images of 128x128: execution time and speedup", fig14)
}

// appTiles are the tile counts the case studies sweep (Figures 13/14).
var appTiles = []int{1, 2, 4, 8, 16, 32}

// fig13 runs the distributed 2D-FFT case study. Quick mode shrinks the
// image to 256x256 (virtual times scale with the flop count; the speedup
// shape is preserved because the serialized transpose shrinks too).
func fig13(o Options) (Experiment, error) {
	n := 1024
	if o.Quick {
		n = 256
	}
	e := Experiment{
		ID:     "fig13",
		Title:  fmt.Sprintf("2D-FFT on %dx%d complex floats", n, n),
		XLabel: "tiles",
		YLabel: "seconds / speedup",
	}
	for _, chip := range []*arch.Chip{arch.Gx8036(), arch.Pro64()} {
		times := Series{Label: shortName(chip) + " time (s)"}
		speedup := Series{Label: shortName(chip) + " speedup"}
		var t1 float64
		for _, p := range appTiles {
			sec, err := runFFT(o, chip, p, n)
			if err != nil {
				return e, err
			}
			if p == 1 {
				t1 = sec
			}
			times.X = append(times.X, float64(p))
			times.Y = append(times.Y, sec)
			speedup.X = append(speedup.X, float64(p))
			speedup.Y = append(speedup.Y, t1/sec)
		}
		e.Series = append(e.Series, times, speedup)
	}
	e.Notes = append(e.Notes,
		"paper anchors (1024x1024): 0.23 s (Gx) and 0.62 s (Pro) at 32 tiles; Gx speedup levels",
		"off around 5 due to the serialized final transpose (left as future work in the paper)")
	return e, nil
}

func runFFT(opt Options, chip *arch.Chip, p, n int) (float64, error) {
	blockBytes := int64(n) * int64(n) * 8 / int64(p)
	cfg := core.Config{Chip: chip, NPEs: p, HeapPerPE: 2*blockBytes + 1<<20}
	var sec float64
	_, err := observedRun(opt, cfg, func(pe *core.PE) error {
		res, err := fft.Distributed2D(pe, n)
		if err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			sec = res.Elapsed.Seconds()
		}
		return nil
	})
	return sec, err
}

// fig14 runs the distributed CBIR case study. Quick mode uses a 2,200-image
// corpus (a tenth of the paper's database); the serialized collection and
// ranking fractions scale with the corpus exactly like the parallel bulk,
// so the speedup curve is unchanged.
func fig14(o Options) (Experiment, error) {
	images := 22000
	if o.Quick {
		images = 2200
	}
	p := cbir.DefaultParams()
	e := Experiment{
		ID:     "fig14",
		Title:  fmt.Sprintf("CBIR on %d 8-bit images of %dx%d", images, p.Size, p.Size),
		XLabel: "tiles",
		YLabel: "seconds / speedup",
	}
	for _, chip := range []*arch.Chip{arch.Gx8036(), arch.Pro64()} {
		times := Series{Label: shortName(chip) + " time (s)"}
		speedup := Series{Label: shortName(chip) + " speedup"}
		var t1 float64
		for _, tiles := range appTiles {
			sec, err := runCBIR(o, chip, tiles, images, p)
			if err != nil {
				return e, err
			}
			if tiles == 1 {
				t1 = sec
			}
			times.X = append(times.X, float64(tiles))
			times.Y = append(times.Y, sec)
			speedup.X = append(speedup.X, float64(tiles))
			speedup.Y = append(speedup.Y, t1/sec)
		}
		e.Series = append(e.Series, times, speedup)
	}
	e.Notes = append(e.Notes,
		"paper anchors: speedup linear to 16 tiles; 25 (Gx) and 27 (Pro) at 32 tiles; the",
		"TILE-Gx is faster in absolute time in all cases (integer-tailored architectures)")
	return e, nil
}

func runCBIR(opt Options, chip *arch.Chip, tiles, images int, p cbir.Params) (float64, error) {
	heap := cbir.BlockBytes(images, tiles, p) + 1<<20
	cfg := core.Config{Chip: chip, NPEs: tiles, HeapPerPE: heap}
	var sec float64
	_, err := observedRun(opt, cfg, func(pe *core.PE) error {
		res, err := cbir.Distributed(pe, images, images/2, 10, p)
		if err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			sec = res.Elapsed.Seconds()
		}
		return nil
	})
	return sec, err
}
