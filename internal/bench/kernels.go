package bench

import (
	"fmt"
	"strings"

	"tshmem/internal/core"
	"tshmem/internal/kernels"
	"tshmem/internal/stats"
)

// The scenario-corpus probes (tshmem-bench -probe sort|bfs|stencil|
// wordcount). Each wraps one internal/kernels workload as a
// self-verifying probe: the run's PE-0 output is checked against the
// kernel's serial oracle before the Report is handed back, so a probe
// that "succeeds" with wrong data is impossible. Like the algorithm
// and chip sweeps, kernel probes are deliberately NOT members of the
// baseline suite: RunSuite iterates the figure probes only, keeping
// BENCH_baseline.json byte-identical while the corpus exists.

// kernelProbeSpec is the fixed small-input spec a kernel probe runs:
// large enough that every communication phase moves data on all 8 PEs,
// small enough that a probe stays interactive under the sanitizer.
func kernelProbeSpec(name string) kernels.Spec {
	s := kernels.Spec{NPEs: 8, Seed: 1}
	switch name {
	case "sort":
		s.Size = 4096
	case "bfs":
		s.Size = 640
	case "stencil":
		s.Size = 64
		s.Width = 2
	case "wordcount":
		s.Size = 8192
	}
	return s
}

// kernelPrimaryOp headlines the op class that defines each kernel's
// communication skeleton in probe output.
var kernelPrimaryOp = map[string]stats.Op{
	"sort":      stats.OpCollect, // all-to-all exchange
	"bfs":       stats.OpGet,     // irregular one-sided reads
	"stencil":   stats.OpPut,     // ghost-cell puts
	"wordcount": stats.OpReduce,  // tree reduction
}

// kernelProbes builds one probe per corpus kernel, in menu order.
func kernelProbes() []Probe {
	var out []Probe
	for _, k := range kernels.Kernels() {
		k := k
		out = append(out, Probe{
			ID:        k.Name(),
			Title:     k.Title() + " [scenario corpus, oracle-verified]",
			PrimaryOp: kernelPrimaryOp[k.Name()],
			Run: func(opts ProbeOpts) (*core.Report, error) {
				s := kernelProbeSpec(k.Name())
				cfg := core.Config{
					Chip:    opts.chip(),
					Observe: true, Trace: opts.Trace, Sanitize: opts.Sanitize,
					Profile: opts.Profile, Faults: opts.Faults,
					BarrierAlgo: opts.BarrierAlgo, LockAlgo: opts.LockAlgo, Engine: opts.Engine,
				}
				rep, out, err := kernels.Launch(k, s, cfg)
				if err != nil {
					// Fault-plan timeouts hand back the report with the
					// error, matching the probe contract.
					return rep, err
				}
				if err := k.Verify(s, out); err != nil {
					return rep, fmt.Errorf("differential check failed: %w", err)
				}
				return rep, nil
			},
		})
	}
	return out
}

// sweepKernelPEs is the communicator size the kernel sweep compares
// across chips, bounded by the smallest swept chip (16-core E-III).
const sweepKernelPEs = 8

// SweepKernels runs every corpus kernel on every chip family at the
// same PE count and renders the verified-makespan table — the
// workload-selection companion to SweepChips (tshmem-bench
// -sweep-kernels). Every cell is a fresh oracle-checked run, so the
// table cannot quote a makespan for a wrong answer.
func SweepKernels(opt Options) (string, error) {
	var b strings.Builder
	chips := sweepChipSet()
	b.WriteString("== scenario-corpus sweep: oracle-verified makespan (us) ==\n")
	fmt.Fprintf(&b, "(%d PEs per run; probe-sized inputs: ", sweepKernelPEs)
	for i, k := range kernels.Kernels() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%d", k.Name(), kernelProbeSpec(k.Name()).Size)
	}
	b.WriteString(")\n\n")

	fmt.Fprintf(&b, "%-12s", "kernel \\ chip")
	for _, chip := range chips {
		fmt.Fprintf(&b, " %14s", chip.Name)
	}
	b.WriteString("\n")
	for _, k := range kernels.Kernels() {
		fmt.Fprintf(&b, "%-12s", k.Name())
		for _, chip := range chips {
			s := kernelProbeSpec(k.Name())
			s.NPEs = sweepKernelPEs
			rep, err := kernels.Check(k, s, core.Config{Chip: chip})
			if err != nil {
				return "", fmt.Errorf("bench: %s on %s: %w", k.Name(), chip.Name, err)
			}
			fmt.Fprintf(&b, " %14.1f", rep.MaxTime.Us())
		}
		b.WriteString("\n")
	}
	b.WriteString("\n(each cell is a fresh run whose output was checked against the\n" +
		" kernel's serial oracle; columns share the chip set of -sweep-chips.\n" +
		" bfs leans on remote fetch-ops, so the Epiphany TESTSET-emulation\n" +
		" premium shows there first; sort and wordcount stress collectives.)\n")
	return b.String(), nil
}
