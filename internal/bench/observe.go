package bench

import (
	"fmt"

	"tshmem/internal/arch"
	"tshmem/internal/core"
	"tshmem/internal/fault"
	"tshmem/internal/stats"
)

// ProbeOpts configures one probe launch.
type ProbeOpts struct {
	// Trace additionally buffers the per-operation event timeline.
	Trace bool
	// Chip overrides the modeled chip; nil selects the TILE-Gx8036 the
	// probes are written for. Baseline tests use this to run the same
	// probe on a deliberately slowed chip model.
	Chip *arch.Chip
	// Sanitize runs the probe under the happens-before checker; the
	// probe's Report then carries any Diagnostics. Virtual time — and so
	// the probe's metrics — is unaffected.
	Sanitize bool
	// Profile runs the probe under the causal profiler; the probe's Report
	// then carries a profile.Profile (blame ledger + critical path).
	// Virtual time is unaffected.
	Profile bool
	// Faults injects a deterministic fault plan into the probe's substrate
	// and bounds every blocking wait (see docs/ROBUSTNESS.md). A probe run
	// under faults may return both a Report and a core.ErrTimeout error.
	Faults *fault.Plan
	// BarrierAlgo/LockAlgo select synchronization algorithms for the
	// probe's run (docs/SYNC.md). The zero values are the legacy defaults,
	// keeping default probe runs — and BENCH_baseline.json — byte-identical.
	BarrierAlgo core.BarrierAlgo
	LockAlgo    core.LockAlgo
	// Engine selects the host execution engine (docs/PERFORMANCE.md,
	// "Engines"). Virtual time is byte-identical between engines, so the
	// baseline a probe produces does not depend on this.
	Engine core.Engine
}

func (o ProbeOpts) chip() *arch.Chip {
	if o.Chip != nil {
		return o.Chip
	}
	return arch.Gx8036()
}

// A Probe is a small single-run microbenchmark built for observability
// rather than for a paper figure: it launches one program with substrate
// counters (and optionally the event trace) enabled and hands back the
// Report, so callers can print the counter table with Report.Stats and
// export the Chrome trace with Report.TraceTo. tshmem-bench runs probes
// with -probe (and -trace / -stats / -heatmap / -json); see
// docs/OBSERVABILITY.md.
type Probe struct {
	ID    string
	Title string
	// PrimaryOp is the op class whose latency histogram headlines this
	// probe in the machine-readable baseline (p50/p90/p99/max).
	PrimaryOp stats.Op
	// Run launches the probe with counters on.
	Run func(opts ProbeOpts) (*core.Report, error)
}

// probeBarriers is how many barrier_all calls the barrier probe issues.
const probeBarriers = 8

var probes = []Probe{
	{
		ID:        "barrier",
		Title:     fmt.Sprintf("%d aligned barrier_all calls on 16 TILE-Gx tiles (Figure 8 instrumented)", probeBarriers),
		PrimaryOp: stats.OpBarrier,
		Run: func(opts ProbeOpts) (*core.Report, error) {
			cfg := core.Config{
				Chip: opts.chip(), NPEs: 16, HeapPerPE: 64 << 10,
				Observe: true, Trace: opts.Trace, Sanitize: opts.Sanitize, Profile: opts.Profile, Faults: opts.Faults,
				BarrierAlgo: opts.BarrierAlgo, LockAlgo: opts.LockAlgo, Engine: opts.Engine,
			}
			return core.Run(cfg, func(pe *core.PE) error {
				if err := pe.AlignClocks(); err != nil {
					return err
				}
				for i := 0; i < probeBarriers; i++ {
					if err := pe.BarrierAll(); err != nil {
						return err
					}
				}
				return nil
			})
		},
	},
	{
		ID:        "put",
		Title:     "put size sweep 8 B..64 kB between two TILE-Gx tiles (Figure 6 instrumented)",
		PrimaryOp: stats.OpPut,
		Run: func(opts ProbeOpts) (*core.Report, error) {
			const maxElems = 64 << 10 / 8
			cfg := core.Config{
				Chip: opts.chip(), NPEs: 2, HeapPerPE: 2*64<<10 + 1<<20,
				Observe: true, Trace: opts.Trace, Sanitize: opts.Sanitize, Profile: opts.Profile, Faults: opts.Faults,
				BarrierAlgo: opts.BarrierAlgo, LockAlgo: opts.LockAlgo, Engine: opts.Engine,
			}
			return core.Run(cfg, func(pe *core.PE) error {
				x, err := core.Malloc[int64](pe, maxElems)
				if err != nil {
					return err
				}
				y, err := core.Malloc[int64](pe, maxElems)
				if err != nil {
					return err
				}
				if err := pe.AlignClocks(); err != nil {
					return err
				}
				if pe.MyPE() == 0 {
					for nelems := 1; nelems <= maxElems; nelems *= 2 {
						if err := core.Put(pe, y, x, nelems, 1); err != nil {
							return err
						}
						pe.Quiet()
					}
				}
				return pe.BarrierAll()
			})
		},
	},
	{
		ID:        "bcast",
		Title:     "pull-based broadcast of 32 kB to 16 TILE-Gx tiles (Figure 10 instrumented)",
		PrimaryOp: stats.OpBroadcast,
		Run: func(opts ProbeOpts) (*core.Report, error) {
			const nelems = 32 << 10 / 4 // 32 kB of int32
			cfg := core.Config{
				Chip: opts.chip(), NPEs: 16, HeapPerPE: 2*32<<10 + 1<<20,
				Observe: true, Trace: opts.Trace, Sanitize: opts.Sanitize, Profile: opts.Profile, Faults: opts.Faults,
				BarrierAlgo: opts.BarrierAlgo, LockAlgo: opts.LockAlgo, Engine: opts.Engine,
			}
			return core.Run(cfg, func(pe *core.PE) error {
				target, err := core.Malloc[int32](pe, nelems)
				if err != nil {
					return err
				}
				source, err := core.Malloc[int32](pe, nelems)
				if err != nil {
					return err
				}
				ps, err := core.Malloc[int64](pe, core.BcastSyncSize)
				if err != nil {
					return err
				}
				src := core.MustLocal(pe, source)
				for i := range src {
					src[i] = int32(pe.MyPE() + i)
				}
				if err := pe.AlignClocks(); err != nil {
					return err
				}
				return core.BroadcastPull(pe, target, source, nelems, 0,
					core.AllPEs(pe.NumPEs()), ps)
			})
		},
	},
}

// Probes lists every probe — the figure probes above, then the
// scenario-corpus kernel probes (kernels.go) — in registration order.
// Only the figure probes feed RunSuite and BENCH_baseline.json; the
// kernel probes are run individually via -probe.
func Probes() []Probe {
	out := make([]Probe, 0, len(probes)+4)
	out = append(out, probes...)
	return append(out, kernelProbes()...)
}

// SuiteProbes lists only the figure probes — the RunSuite membership
// whose results BENCH_baseline.json records.
func SuiteProbes() []Probe {
	out := make([]Probe, len(probes))
	copy(out, probes)
	return out
}

// ProbeIDs lists the valid -probe arguments in registration order.
func ProbeIDs() []string {
	all := Probes()
	ids := make([]string, len(all))
	for i, p := range all {
		ids[i] = p.ID
	}
	return ids
}

// LookupProbe finds a probe by ID.
func LookupProbe(id string) (Probe, bool) {
	for _, p := range Probes() {
		if p.ID == id {
			return p, true
		}
	}
	return Probe{}, false
}
