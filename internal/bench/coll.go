package bench

import (
	"fmt"

	"tshmem/internal/arch"
	"tshmem/internal/core"
	"tshmem/internal/vtime"
)

func init() {
	register("fig9", "Push-based broadcast aggregate bandwidth", fig9)
	register("fig10", "Pull-based broadcast aggregate bandwidth", fig10)
	register("fig11", "Fast collection (fcollect) aggregate bandwidth", fig11)
	register("fig12", "Integer summation reduction aggregate bandwidth", fig12)
	register("fig10b", "Binomial broadcast aggregate bandwidth (future-work ablation)", fig10b)
	register("fig11b", "Recursive-doubling fcollect aggregate bandwidth (future-work ablation)", fig11b)
	register("fig12b", "Recursive-doubling reduction aggregate bandwidth (future-work ablation)", fig12b)
	register("fig8b", "barrier_all backed by the TMC spin barrier (open-issue ablation)", fig8b)
}

// collOp runs one collective over int32 payloads and reports the worst-case
// per-PE virtual elapsed time.
type collOp func(pe *core.PE, target, source core.Ref[int32], nelems int, as core.ActiveSet, ps core.PSync) error

// measureCollective runs op once on n PEs with nelems int32 per PE and
// returns the makespan (max per-PE elapsed, aligned start).
func measureCollective(opt Options, chip *arch.Chip, n, nelems, targetElems int, op collOp) (vtime.Duration, error) {
	heap := int64(targetElems+nelems)*4 + 1<<20
	elapsed := make([]vtime.Duration, n)
	cfg := core.Config{Chip: chip, NPEs: n, HeapPerPE: heap}
	_, err := observedRun(opt, cfg, func(pe *core.PE) error {
		target, err := core.Malloc[int32](pe, targetElems)
		if err != nil {
			return err
		}
		source, err := core.Malloc[int32](pe, nelems)
		if err != nil {
			return err
		}
		ps, err := core.Malloc[int64](pe, core.CollectSyncSize)
		if err != nil {
			return err
		}
		src := core.MustLocal(pe, source)
		for i := range src {
			src[i] = int32(pe.MyPE() + i)
		}
		if err := pe.AlignClocks(); err != nil {
			return err
		}
		start := pe.Now()
		if err := op(pe, target, source, nelems, core.AllPEs(n), ps); err != nil {
			return err
		}
		elapsed[pe.MyPE()] = pe.Now().Sub(start)
		return nil
	})
	return maxDur(elapsed), err
}

func maxDur(ds []vtime.Duration) vtime.Duration {
	var m vtime.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

// bcastSweep builds per-tile-count bandwidth-vs-size series for a broadcast
// variant. Aggregate bandwidth is the paper's definition: the sum of each
// participating tile's bandwidth, n*M/T.
func bcastSweep(title, id string, op collOp, note string) func(Options) (Experiment, error) {
	return func(opt Options) (Experiment, error) {
		e := Experiment{ID: id, Title: title, XLabel: "bytes/PE", YLabel: "aggregate MB/s"}
		sizes := powersOfTwo(1<<10, 2<<20) // per-transfer bytes
		tileCounts := []int{2, 8, 16, 24, 29, 36}
		for _, chip := range []*arch.Chip{arch.Gx8036(), arch.Pro64()} {
			peak, peakTiles := 0.0, 0
			for _, n := range tileCounts {
				s := Series{Label: fmt.Sprintf("%s %dT", shortName(chip), n)}
				for _, size := range sizes {
					nelems := int(size / 4)
					t, err := measureCollective(opt, chip, n, nelems, nelems, op)
					if err != nil {
						return e, err
					}
					// Receivers-only aggregate: (n-1) tiles obtain M bytes.
					agg := float64(n-1) * float64(size) / t.Seconds() / 1e6
					s.X = append(s.X, float64(size))
					s.Y = append(s.Y, agg)
					if agg > peak {
						peak, peakTiles = agg, n
					}
				}
				e.Series = append(e.Series, s)
			}
			e.Notes = append(e.Notes, fmt.Sprintf("%s peak aggregate: %.1f GB/s at %d tiles",
				chip.Name, peak/1000, peakTiles))
		}
		e.Notes = append(e.Notes, note)
		return e, nil
	}
}

func shortName(c *arch.Chip) string {
	if c.Family == arch.TILEGx {
		return "Gx36"
	}
	return "Pro64"
}

func fig9(o Options) (Experiment, error) {
	return bcastSweep("Push-based broadcast aggregate bandwidth", "fig9",
		func(pe *core.PE, t, s core.Ref[int32], n int, as core.ActiveSet, ps core.PSync) error {
			return core.BroadcastPush(pe, t, s, n, 0, as, ps)
		},
		"paper: aggregate does not grow with tiles (the root serializes all puts)")(o)
}

func fig10(o Options) (Experiment, error) {
	return bcastSweep("Pull-based broadcast aggregate bandwidth", "fig10",
		func(pe *core.PE, t, s core.Ref[int32], n int, as core.ActiveSet, ps core.PSync) error {
			return core.BroadcastPull(pe, t, s, n, 0, as, ps)
		},
		"paper: Gx36 reaches 46 GB/s at 29 tiles and 37 GB/s at 36; Pro64 peaks at 5.1 GB/s at 36")(o)
}

func fig10b(o Options) (Experiment, error) {
	return bcastSweep("Binomial broadcast aggregate bandwidth", "fig10b",
		func(pe *core.PE, t, s core.Ref[int32], n int, as core.ActiveSet, ps core.PSync) error {
			return core.BroadcastBinomial(pe, t, s, n, 0, as, ps)
		},
		"the paper's future-work algorithm: log-depth forwarding; compare against fig9/fig10")(o)
}

// fig11: fcollect. Aggregate counts the concatenated result every tile
// receives (n*M per tile), which is what makes the total data quadratic in
// tiles and shifts the peaks toward smaller sizes as tiles grow.
func fig11(opt Options) (Experiment, error) {
	e := Experiment{
		ID:     "fig11",
		Title:  "Fast collection aggregate bandwidth",
		XLabel: "bytes/PE",
		YLabel: "aggregate MB/s",
	}
	sizes := powersOfTwo(256, 64<<10)
	tileCounts := []int{2, 8, 16, 24, 36}
	for _, chip := range []*arch.Chip{arch.Gx8036(), arch.Pro64()} {
		peakAt := map[int]float64{}
		for _, n := range tileCounts {
			s := Series{Label: fmt.Sprintf("%s %dT", shortName(chip), n)}
			bestAgg, bestSize := 0.0, 0.0
			for _, size := range sizes {
				nelems := int(size / 4)
				t, err := measureCollective(opt, chip, n, nelems, nelems*n,
					func(pe *core.PE, tg, sc core.Ref[int32], ne int, as core.ActiveSet, ps core.PSync) error {
						return core.FCollect(pe, tg, sc, ne, as, ps)
					})
				if err != nil {
					return e, err
				}
				agg := float64(n) * float64(n) * float64(size) / t.Seconds() / 1e6
				s.X = append(s.X, float64(size))
				s.Y = append(s.Y, agg)
				if agg > bestAgg {
					bestAgg, bestSize = agg, float64(size)
				}
			}
			peakAt[n] = bestSize
			e.Series = append(e.Series, s)
		}
		e.Notes = append(e.Notes, fmt.Sprintf("%s: peak-bandwidth transfer size by tiles: %v",
			chip.Name, peakAt))
	}
	e.Notes = append(e.Notes,
		"paper: stage 2 (root broadcasts n*M) scales quadratically, so peaks shift toward smaller",
		"sizes as tiles increase — compare the peak-size map above against Figure 9's fixed peaks")
	return e, nil
}

// fig11b: the recursive-doubling allgather against the naive fcollect, at
// power-of-two tile counts.
func fig11b(opt Options) (Experiment, error) {
	e := Experiment{
		ID:     "fig11b",
		Title:  "fcollect: naive vs recursive doubling (TILE-Gx36)",
		XLabel: "bytes/PE",
		YLabel: "aggregate MB/s",
	}
	gx := arch.Gx8036()
	for _, algo := range []struct {
		label string
		op    collOp
	}{
		{"naive 32T", func(pe *core.PE, tg, sc core.Ref[int32], ne int, as core.ActiveSet, ps core.PSync) error {
			return core.FCollect(pe, tg, sc, ne, as, ps)
		}},
		{"recursive-doubling 32T", func(pe *core.PE, tg, sc core.Ref[int32], ne int, as core.ActiveSet, ps core.PSync) error {
			return core.FCollectRD(pe, tg, sc, ne, as, ps)
		}},
	} {
		s := Series{Label: algo.label}
		for _, size := range powersOfTwo(256, 64<<10) {
			nelems := int(size / 4)
			t, err := measureCollective(opt, gx, 32, nelems, nelems*32, algo.op)
			if err != nil {
				return e, err
			}
			agg := float64(32) * float64(32) * float64(size) / t.Seconds() / 1e6
			s.X = append(s.X, float64(size))
			s.Y = append(s.Y, agg)
		}
		e.Series = append(e.Series, s)
	}
	e.Notes = append(e.Notes,
		"log-depth exchange removes the root bottleneck of the naive gather-then-broadcast design")
	return e, nil
}

// fig12: naive integer sum reduction; aggregate counts each tile's M-byte
// contribution.
func fig12(opt Options) (Experiment, error) {
	return reduceSweep(opt, "fig12", "Integer summation reduction aggregate bandwidth (naive)",
		func(pe *core.PE, t, s core.Ref[int32], n int, as core.ActiveSet, w core.Ref[int32], ps core.PSync) error {
			return core.SumToAllNaive(pe, t, s, n, as, w, ps)
		},
		false,
		"paper: serialization at the root keeps aggregate flat vs tiles, peaking ~150 MB/s at 36 (Gx)")
}

func fig12b(opt Options) (Experiment, error) {
	return reduceSweep(opt, "fig12b", "Integer summation reduction aggregate bandwidth (recursive doubling)",
		func(pe *core.PE, t, s core.Ref[int32], n int, as core.ActiveSet, w core.Ref[int32], ps core.PSync) error {
			return core.SumToAllRD(pe, t, s, n, as, w, ps)
		},
		true,
		"future-work ablation: log-depth exchange scales with tiles, unlike the naive root-serial design")
}

type reduceOp func(pe *core.PE, t, s core.Ref[int32], n int, as core.ActiveSet, w core.Ref[int32], ps core.PSync) error

func reduceSweep(opt Options, id, title string, op reduceOp, pow2Only bool, note string) (Experiment, error) {
	e := Experiment{ID: id, Title: title, XLabel: "bytes/PE", YLabel: "aggregate MB/s"}
	sizes := powersOfTwo(1<<10, 512<<10)
	tileCounts := []int{2, 8, 16, 24, 36}
	if pow2Only {
		tileCounts = []int{2, 8, 16, 32}
	}
	for _, chip := range []*arch.Chip{arch.Gx8036(), arch.Pro64()} {
		peak := 0.0
		for _, n := range tileCounts {
			s := Series{Label: fmt.Sprintf("%s %dT", shortName(chip), n)}
			for _, size := range sizes {
				nelems := int(size / 4)
				wrk := nelems/2 + 1
				if wrk < core.ReduceMinWrkSize {
					wrk = core.ReduceMinWrkSize
				}
				if pow2Only {
					wrk = nelems * 6 // recursive doubling: per-round buffers
				}
				t, err := measureReduce(opt, chip, n, nelems, wrk, op)
				if err != nil {
					return e, err
				}
				agg := float64(n) * float64(size) / t.Seconds() / 1e6
				s.X = append(s.X, float64(size))
				s.Y = append(s.Y, agg)
				if n == 36 || (pow2Only && n == 32) {
					if agg > peak {
						peak = agg
					}
				}
			}
			e.Series = append(e.Series, s)
		}
		e.Notes = append(e.Notes, fmt.Sprintf("%s peak aggregate at max tiles: %.0f MB/s", chip.Name, peak))
	}
	e.Notes = append(e.Notes, note)
	return e, nil
}

func measureReduce(opt Options, chip *arch.Chip, n, nelems, wrk int, op reduceOp) (vtime.Duration, error) {
	heap := int64(2*nelems+wrk)*4 + 1<<20
	elapsed := make([]vtime.Duration, n)
	cfg := core.Config{Chip: chip, NPEs: n, HeapPerPE: heap}
	_, err := observedRun(opt, cfg, func(pe *core.PE) error {
		target, err := core.Malloc[int32](pe, nelems)
		if err != nil {
			return err
		}
		source, err := core.Malloc[int32](pe, nelems)
		if err != nil {
			return err
		}
		pwrk, err := core.Malloc[int32](pe, wrk)
		if err != nil {
			return err
		}
		ps, err := core.Malloc[int64](pe, core.ReduceSyncSize)
		if err != nil {
			return err
		}
		src := core.MustLocal(pe, source)
		for i := range src {
			src[i] = int32(pe.MyPE() + i)
		}
		if err := pe.AlignClocks(); err != nil {
			return err
		}
		start := pe.Now()
		if err := op(pe, target, source, nelems, core.AllPEs(n), pwrk, ps); err != nil {
			return err
		}
		elapsed[pe.MyPE()] = pe.Now().Sub(start)
		return nil
	})
	return maxDur(elapsed), err
}

// fig8b compares BarrierAll backed by the UDN chain against the TMC spin
// barrier on the TILE-Gx — the adoption the paper proposes.
func fig8b(opt Options) (Experiment, error) {
	e := Experiment{
		ID:     "fig8b",
		Title:  "barrier_all: UDN chain vs TMC spin backend (TILE-Gx36)",
		XLabel: "tiles",
		YLabel: "us",
	}
	gx := arch.Gx8036()
	var udnS, spinS Series
	udnS.Label = "UDN chain (worst)"
	spinS.Label = "TMC spin backend"
	for _, n := range []int{2, 4, 8, 16, 24, 32, 36} {
		_, w, err := measureTSHMEMBarrier(opt, gx, n, core.UDNBarrier)
		if err != nil {
			return e, err
		}
		_, ws, err := measureTSHMEMBarrier(opt, gx, n, core.TMCSpinBarrier)
		if err != nil {
			return e, err
		}
		udnS.X = append(udnS.X, float64(n))
		udnS.Y = append(udnS.Y, w.Us())
		spinS.X = append(spinS.X, float64(n))
		spinS.Y = append(spinS.Y, ws.Us())
	}
	e.Series = append(e.Series, udnS, spinS)
	e.Notes = append(e.Notes, "config: tshmem.Config{Barrier: tshmem.TMCSpinBarrier}")
	return e, nil
}
