package bench

import (
	"fmt"

	"tshmem/internal/arch"
	"tshmem/internal/core"
	"tshmem/internal/vtime"
)

func init() {
	register("fig6", "TSHMEM put/get bandwidth, dynamic-dynamic (+static-static on Gx)", fig6)
	register("fig7", "TSHMEM put/get bandwidth, static/dynamic operand combinations (Gx)", fig7)
}

// xferKind names a target-source combination in the paper's notation.
type xferKind struct {
	name             string
	putNotGet        bool
	staticT, staticS bool
}

// measureXfer runs a 2-PE program and measures the virtual cost of one
// transfer of size bytes for the given operand combination; it reports
// effective bandwidth in MB/s.
func measureXfer(opt Options, chip *arch.Chip, k xferKind, size int64) (float64, error) {
	nelems := int(size / 8)
	if nelems < 1 {
		nelems = 1
	}
	heap := 2*int64(nelems)*8 + 1<<20
	var elapsed vtime.Duration
	cfg := core.Config{Chip: chip, NPEs: 2, HeapPerPE: heap, ScratchBytes: size + 1<<20}
	_, err := observedRun(opt, cfg, func(pe *core.PE) error {
		dynT, err := core.Malloc[int64](pe, nelems)
		if err != nil {
			return err
		}
		dynS, err := core.Malloc[int64](pe, nelems)
		if err != nil {
			return err
		}
		var stT, stS core.Ref[int64]
		if k.staticT || k.staticS {
			if stT, err = core.DeclareStatic[int64](pe, "benchT", nelems); err != nil {
				return err
			}
			if stS, err = core.DeclareStatic[int64](pe, "benchS", nelems); err != nil {
				return err
			}
		}
		target, source := dynT, dynS
		if k.staticT {
			target = stT
		}
		if k.staticS {
			source = stS
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			t0 := pe.Now()
			if k.putNotGet {
				err = core.Put(pe, target, source, nelems, 1)
			} else {
				err = core.Get(pe, target, source, nelems, 1)
			}
			if err != nil {
				return err
			}
			elapsed = pe.Now().Sub(t0)
		}
		return pe.BarrierAll()
	})
	if err != nil {
		return 0, err
	}
	return float64(int64(nelems)*8) / elapsed.Seconds() / 1e6, nil
}

// fig6 sweeps dynamic-dynamic put/get bandwidth on both chips, plus the
// static-static combination on the TILE-Gx for comparison with TILEPro
// performance (S IV.B.1, Figure 6).
func fig6(opt Options) (Experiment, error) {
	e := Experiment{
		ID:     "fig6",
		Title:  "TSHMEM put/get effective bandwidth vs transfer size",
		XLabel: "bytes",
		YLabel: "MB/s",
	}
	sizes := powersOfTwo(8, 8<<20)
	mk := func(chip *arch.Chip, k xferKind, label string) (Series, error) {
		s := Series{Label: label}
		for _, size := range sizes {
			bw, err := measureXfer(opt, chip, k, size)
			if err != nil {
				return s, err
			}
			s.X = append(s.X, float64(size))
			s.Y = append(s.Y, bw)
		}
		return s, nil
	}
	gx, pro := arch.Gx8036(), arch.Pro64()
	cases := []struct {
		chip  *arch.Chip
		k     xferKind
		label string
	}{
		{gx, xferKind{putNotGet: true}, "Gx36 dyn-dyn put"},
		{gx, xferKind{putNotGet: false}, "Gx36 dyn-dyn get"},
		{pro, xferKind{putNotGet: true}, "Pro64 dyn-dyn put"},
		{pro, xferKind{putNotGet: false}, "Pro64 dyn-dyn get"},
		{gx, xferKind{putNotGet: true, staticT: true, staticS: true}, "Gx36 stat-stat put"},
	}
	for _, c := range cases {
		s, err := mk(c.chip, c.k, c.label)
		if err != nil {
			return e, err
		}
		e.Series = append(e.Series, s)
	}
	e.Notes = append(e.Notes,
		"paper: put aligns with get on both chips; dyn-dyn closely matches the Fig.3 shared-memory curve")
	return e, nil
}

// fig7 sweeps every target-source combination on the TILE-Gx (Figure 7):
// dynamic-dynamic and dynamic-static share the direct path; static-dynamic
// redirects over a UDN interrupt (minor penalty); static-static bounces
// through a temporary shared buffer (major penalty).
func fig7(opt Options) (Experiment, error) {
	e := Experiment{
		ID:     "fig7",
		Title:  "TSHMEM put/get bandwidth by operand combination (TILE-Gx36)",
		XLabel: "bytes",
		YLabel: "MB/s",
	}
	sizes := powersOfTwo(64, 4<<20)
	kinds := []xferKind{
		{name: "dyn-dyn put", putNotGet: true},
		{name: "dyn-stat put", putNotGet: true, staticS: true},
		{name: "stat-dyn put", putNotGet: true, staticT: true},
		{name: "stat-stat put", putNotGet: true, staticT: true, staticS: true},
		{name: "dyn-dyn get", putNotGet: false},
		{name: "stat-dyn get", putNotGet: false, staticT: true},
		{name: "dyn-stat get", putNotGet: false, staticS: true},
		{name: "stat-stat get", putNotGet: false, staticT: true, staticS: true},
	}
	gx := arch.Gx8036()
	for _, k := range kinds {
		s := Series{Label: k.name}
		for _, size := range sizes {
			bw, err := measureXfer(opt, gx, k, size)
			if err != nil {
				return e, fmt.Errorf("%s at %d bytes: %w", k.name, size, err)
			}
			s.X = append(s.X, float64(size))
			s.Y = append(s.Y, bw)
		}
		e.Series = append(e.Series, s)
	}
	e.Notes = append(e.Notes,
		"notation is target-source; redirected combinations (stat-dyn put, dyn-stat get) show minor",
		"degradation, static-static pays the temporary-buffer copy (paper S IV.B.2)")
	return e, nil
}
