package bench

import (
	"fmt"
	"sync"

	"tshmem/internal/arch"
	"tshmem/internal/cache"
	"tshmem/internal/tmc"
	"tshmem/internal/vtime"
)

func init() {
	register("fig3", "Effective bandwidth for shared-memory copy operations", fig3)
	register("fig4", "Average one-way latencies on UDN", fig4)
	register("fig5", "Latencies of TMC spin and sync barriers", fig5)
}

// fig3 microbenchmarks memcpy between private heap memory and TMC common
// memory across transfer sizes (Section III.B): a real copy through a
// common-memory segment, timed by the memory model.
func fig3(Options) (Experiment, error) {
	e := Experiment{
		ID:     "fig3",
		Title:  "Shared-memory memcpy effective bandwidth vs transfer size",
		XLabel: "bytes",
		YLabel: "MB/s",
	}
	sizes := powersOfTwo(8, 64<<20)
	for _, chip := range []*arch.Chip{arch.Gx8036(), arch.Pro64()} {
		model := cache.NewModel(chip)
		cm, err := tmc.NewCommonMemory(65 << 20)
		if err != nil {
			return e, err
		}
		off, err := cm.Map(64<<20, 4096)
		if err != nil {
			return e, err
		}
		private := make([]byte, 64<<20)
		var shared, private2 Series
		shared.Label = chip.Name + " shared"
		private2.Label = chip.Name + " private"
		for _, size := range sizes {
			dst, err := cm.Slice(off, size)
			if err != nil {
				return e, err
			}
			// Real copy into common memory; modeled cost.
			var clock vtime.Clock
			copy(dst, private[:size])
			clock.Advance(model.CopyCost(size, cache.SharedAny, 1))
			bw := float64(size) / clock.Now().Seconds() / 1e6
			shared.X = append(shared.X, float64(size))
			shared.Y = append(shared.Y, bw)

			var c2 vtime.Clock
			c2.Advance(model.CopyCost(size, cache.PrivateToPrivate, 1))
			private2.X = append(private2.X, float64(size))
			private2.Y = append(private2.Y, float64(size)/c2.Now().Seconds()/1e6)
		}
		e.Series = append(e.Series, shared, private2)
	}
	e.Notes = append(e.Notes,
		"paper anchors: Gx ~3100 MB/s in L1d, 1900-2700 in L2, ~1000 in DDC, 320 floor;",
		"Pro ~500 MB/s through caches, 370 floor (Pro beats Gx memory-to-memory)")
	return e, nil
}

// fig4 averages the Table III ping-pong latencies per distance class.
func fig4(Options) (Experiment, error) {
	e := Experiment{
		ID:     "fig4",
		Title:  "Average one-way UDN latency by tile distance",
		XLabel: "class",
		YLabel: "ns",
	}
	classes := []string{"Neighbors", "Side-to-Side", "Corners"}
	classX := map[string]float64{"Neighbors": 1, "Side-to-Side": 2, "Corners": 3}
	for _, chip := range []*arch.Chip{arch.Gx8036(), arch.Pro64()} {
		sums := map[string]float64{}
		counts := map[string]int{}
		for _, p := range tableIIIPairs() {
			lat, err := pingPongOneWay(chip, p.sender, p.receiver)
			if err != nil {
				return e, err
			}
			sums[p.class] += lat.Ns()
			counts[p.class]++
		}
		s := Series{Label: chip.Name}
		for _, c := range classes {
			s.X = append(s.X, classX[c])
			s.Y = append(s.Y, sums[c]/float64(counts[c]))
		}
		e.Series = append(e.Series, s)
	}
	e.Notes = append(e.Notes,
		"x: 1=neighbors (1 hop), 2=side-to-side (5 hops), 3=corners (10 hops)",
		"TILE-Gx is slower at short distance (64-bit fabric setup-and-teardown) and faster per hop")
	return e, nil
}

// fig5 measures the TMC spin and sync barriers across 2..36 tiles with a
// real goroutine rendezvous per data point.
func fig5(Options) (Experiment, error) {
	e := Experiment{
		ID:     "fig5",
		Title:  "TMC spin and sync barrier latency vs participating tiles",
		XLabel: "tiles",
		YLabel: "us",
	}
	tiles := []int{2, 4, 8, 12, 16, 20, 24, 28, 32, 36}
	for _, chip := range []*arch.Chip{arch.Gx8036(), arch.Pro64()} {
		for _, kind := range []tmc.BarrierKind{tmc.SpinBarrier, tmc.SyncBarrier} {
			s := Series{Label: fmt.Sprintf("%s %s", chip.Name, kind)}
			for _, n := range tiles {
				lat, err := measureTMCBarrier(chip, kind, n)
				if err != nil {
					return e, err
				}
				s.X = append(s.X, float64(n))
				s.Y = append(s.Y, lat.Us())
			}
			e.Series = append(e.Series, s)
		}
	}
	e.Notes = append(e.Notes,
		"paper anchors at 36 tiles: spin 1.5 us (Gx) / 47.2 us (Pro); sync 321 us (Gx) / 786 us (Pro)")
	return e, nil
}

func measureTMCBarrier(chip *arch.Chip, kind tmc.BarrierKind, n int) (vtime.Duration, error) {
	b, err := tmc.NewBarrier(chip, kind, n)
	if err != nil {
		return 0, err
	}
	var wg sync.WaitGroup
	var lat vtime.Duration
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var c vtime.Clock
			b.Wait(&c)
			if i == 0 {
				lat = vtime.Duration(c.Now())
			}
		}(i)
	}
	wg.Wait()
	return lat, nil
}
