package bench

import (
	"fmt"
	"runtime"
	"strings"

	"tshmem/internal/arch"
	"tshmem/internal/core"
	"tshmem/internal/vtime"
)

// The synchronization-algorithm sweep (tshmem-bench -sweep-algos;
// docs/SYNC.md). It is deliberately NOT registered as an experiment or a
// probe: the experiment registry feeds the figure suite and the probe
// registry feeds BENCH_baseline.json, and both must stay byte-identical
// while the sweep exists. The sweep runs every barrier algorithm across
// PE counts on both chips, every lock algorithm uncontended and
// contended, and renders crossover tables plus a slowdown heatmap.

// sweepPEs lists the PE counts swept per chip (bounded by the tile
// count: 36 on the TILE-Gx8036, 64 on the TILEPro64).
func sweepPEs(chip *arch.Chip) []int {
	if chip.Tiles >= 64 {
		return []int{2, 4, 8, 16, 32, 64}
	}
	return []int{2, 4, 8, 16, 24, 36}
}

// measureBarrierAlgo measures one barrier with all PEs entering at the
// same virtual instant under the given algorithm, reporting the earliest
// and latest departures (cf. measureTSHMEMBarrier, which sweeps the
// legacy Config.Barrier axis instead).
func measureBarrierAlgo(opt Options, chip *arch.Chip, n int, algo core.BarrierAlgo) (best, worst vtime.Duration, err error) {
	lefts := make([]vtime.Duration, n)
	cfg := core.Config{Chip: chip, NPEs: n, HeapPerPE: 64 << 10, BarrierAlgo: algo}
	_, err = observedRun(opt, cfg, func(pe *core.PE) error {
		if err := pe.AlignClocks(); err != nil {
			return err
		}
		start := pe.Now()
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		lefts[pe.MyPE()] = pe.Now().Sub(start)
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	best, worst = lefts[0], lefts[0]
	for _, d := range lefts {
		if d < best {
			best = d
		}
		if d > worst {
			worst = d
		}
	}
	return best, worst, nil
}

// measureLockUncontended measures one remote acquire+release round by PE 1
// (the lock's home is PE 0, so this is the common remote-holder case).
func measureLockUncontended(opt Options, chip *arch.Chip, algo core.LockAlgo) (vtime.Duration, error) {
	var d vtime.Duration
	cfg := core.Config{Chip: chip, NPEs: 2, HeapPerPE: 64 << 10, LockAlgo: algo}
	_, err := observedRun(opt, cfg, func(pe *core.PE) error {
		lk, err := core.Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		if err := pe.AlignClocks(); err != nil {
			return err
		}
		if pe.MyPE() == 1 {
			start := pe.Now()
			if err := pe.SetLock(lk); err != nil {
				return err
			}
			if err := pe.ClearLock(lk); err != nil {
				return err
			}
			d = pe.Now().Sub(start)
		}
		return pe.BarrierAll()
	})
	return d, err
}

// measureLockContended runs n PEs each performing iters lock-guarded
// increments of a host-side counter and reports the virtual makespan.
// The critical section charges a modeled compute burst and yields the
// host thread, so other PEs genuinely pile up on the held lock and each
// algorithm's contended path (CAS retry storm, ticket hub wait, MCS
// direct handoff) is the one measured. The acquisition interleaving
// under contention follows host scheduling (as it would on hardware),
// so the makespan is representative, not bit-reproducible; mutual
// exclusion itself is verified exactly.
func measureLockContended(opt Options, chip *arch.Chip, algo core.LockAlgo, n, iters int) (vtime.Duration, error) {
	var counter int64 // guarded by the simulated lock
	cfg := core.Config{Chip: chip, NPEs: n, HeapPerPE: 64 << 10, LockAlgo: algo}
	rep, err := observedRun(opt, cfg, func(pe *core.PE) error {
		lk, err := core.Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		if err := pe.AlignClocks(); err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			if err := pe.SetLock(lk); err != nil {
				return err
			}
			counter++
			pe.ComputeIntOps(2000) // hold the lock for a modeled ~2us burst
			runtime.Gosched()      // let waiters observe the lock held
			if err := pe.ClearLock(lk); err != nil {
				return err
			}
			runtime.Gosched()
		}
		return pe.BarrierAll()
	})
	if err != nil {
		return 0, err
	}
	if got, want := counter, int64(n*iters); got != want {
		return 0, fmt.Errorf("bench: %s lock lost updates: counter %d, want %d", algo, got, want)
	}
	return rep.MaxTime, nil
}

// shade maps a slowdown factor against the per-column winner to a
// heatmap cell, mirroring the shading ramp of the mesh utilization
// renderer (denser glyph = hotter).
func shade(slow float64) string {
	switch {
	case slow < 1.01:
		return "="
	case slow < 1.3:
		return "."
	case slow < 2:
		return "+"
	case slow < 4:
		return "*"
	default:
		return "#"
	}
}

// crossoverSummary folds the per-PE-count winners into range notation,
// e.g. "linear wins n<=4; dissemination wins n>=8".
func crossoverSummary(pes []int, winners []string) string {
	var parts []string
	for i := 0; i < len(pes); {
		j := i
		for j+1 < len(winners) && winners[j+1] == winners[i] {
			j++
		}
		switch {
		case i == 0 && j == len(pes)-1:
			parts = append(parts, fmt.Sprintf("%s wins at every swept n", winners[i]))
		case i == 0:
			parts = append(parts, fmt.Sprintf("%s wins n<=%d", winners[i], pes[j]))
		case j == len(pes)-1:
			parts = append(parts, fmt.Sprintf("%s wins n>=%d", winners[i], pes[i]))
		default:
			parts = append(parts, fmt.Sprintf("%s wins n=%d..%d", winners[i], pes[i], pes[j]))
		}
		i = j + 1
	}
	return strings.Join(parts, "; ")
}

// SweepAlgos runs the full synchronization-algorithm sweep and renders
// the crossover report. Every measurement is a fresh single-barrier (or
// lock-pattern) run, so the tables are honest modeled latencies, not
// asserted constants.
func SweepAlgos(opt Options) (string, error) {
	var b strings.Builder
	algos := core.BarrierAlgos()
	for _, chip := range []*arch.Chip{arch.Gx8036(), arch.Pro64()} {
		pes := sweepPEs(chip)
		fmt.Fprintf(&b, "== barrier algorithms on the %s: worst-case latency (us) ==\n", chip.Name)
		fmt.Fprintf(&b, "%6s", "PEs")
		for _, a := range algos {
			fmt.Fprintf(&b, " %13s", a)
		}
		fmt.Fprintf(&b, "   %s\n", "winner")
		// worst[i][j]: algorithm i at PE count j.
		worst := make([][]float64, len(algos))
		for i := range worst {
			worst[i] = make([]float64, len(pes))
		}
		winners := make([]string, len(pes))
		for j, n := range pes {
			fmt.Fprintf(&b, "%6d", n)
			bestUs, winner := 0.0, ""
			for i, a := range algos {
				_, w, err := measureBarrierAlgo(opt, chip, n, a)
				if err != nil {
					return "", fmt.Errorf("bench: %s barrier, %d PEs on %s: %w", a, n, chip.Name, err)
				}
				worst[i][j] = w.Us()
				fmt.Fprintf(&b, " %13.3f", w.Us())
				if winner == "" || w.Us() < bestUs {
					bestUs, winner = w.Us(), a.String()
				}
			}
			winners[j] = winner
			fmt.Fprintf(&b, "   %s\n", winner)
		}
		b.WriteString("\nslowdown vs the per-PE-count winner ('=' winner, '.' <1.3x, '+' <2x, '*' <4x, '#' >=4x):\n")
		fmt.Fprintf(&b, "%15s", "")
		for _, n := range pes {
			fmt.Fprintf(&b, "%4d", n)
		}
		b.WriteString("\n")
		for i, a := range algos {
			fmt.Fprintf(&b, "%15s", a)
			for j := range pes {
				fmt.Fprintf(&b, "%4s", shade(worst[i][j]/worst[indexOfWinner(worst, j)][j]))
			}
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "\ncrossover: %s\n\n", crossoverSummary(pes, winners))
	}

	b.WriteString("== lock algorithms: remote acquire+release (us) and contended makespan ==\n")
	fmt.Fprintf(&b, "%-14s %8s %18s %22s\n", "chip", "lock", "uncontended (us)", "8 PEs x 4 crits (us)")
	for _, chip := range []*arch.Chip{arch.Gx8036(), arch.Pro64()} {
		for _, a := range core.LockAlgos() {
			u, err := measureLockUncontended(opt, chip, a)
			if err != nil {
				return "", fmt.Errorf("bench: uncontended %s lock on %s: %w", a, chip.Name, err)
			}
			c, err := measureLockContended(opt, chip, a, 8, 4)
			if err != nil {
				return "", fmt.Errorf("bench: contended %s lock on %s: %w", a, chip.Name, err)
			}
			fmt.Fprintf(&b, "%-14s %8s %18.3f %22.3f\n", chip.Name, a, u.Us(), c.Us())
		}
	}
	b.WriteString("(uncontended latencies are deterministic; the contended makespan's\n" +
		" acquisition interleaving follows host scheduling and varies run to run.\n" +
		" mutual exclusion is verified on every contended run.)\n")
	return b.String(), nil
}

// indexOfWinner returns the row index of the fastest algorithm at PE
// count column j.
func indexOfWinner(worst [][]float64, j int) int {
	w := 0
	for i := range worst {
		if worst[i][j] < worst[w][j] {
			w = i
		}
	}
	return w
}
