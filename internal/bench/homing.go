package bench

import (
	"tshmem/internal/arch"
	"tshmem/internal/cache"
	"tshmem/internal/core"
	"tshmem/internal/vtime"
)

func init() {
	register("homing", "Memory-homing strategies: put bandwidth and pull-broadcast scaling (future-work ablation)", homing)
}

// homing explores the paper's future-work item "memory-homing strategies":
// how TSHMEM's transfers would behave if common memory were local- or
// remote-homed instead of hash-for-home (S III.A describes the trade-offs
// qualitatively; this encodes them).
func homing(opt Options) (Experiment, error) {
	e := Experiment{
		ID:     "homing",
		Title:  "Put bandwidth by memory-homing strategy (TILE-Gx36)",
		XLabel: "bytes",
		YLabel: "MB/s",
	}
	gx := arch.Gx8036()
	strategies := []cache.Homing{cache.HashForHome, cache.LocalHome, cache.RemoteHome}

	// Single-stream put bandwidth across sizes.
	sizes := powersOfTwo(1<<10, 8<<20)
	for _, h := range strategies {
		s := Series{Label: "put " + h.String()}
		for _, size := range sizes {
			bw, err := measureHomedPut(opt, gx, h, size)
			if err != nil {
				return e, err
			}
			s.X = append(s.X, float64(size))
			s.Y = append(s.Y, bw)
		}
		e.Series = append(e.Series, s)
	}

	// Fan-in scaling: pull-broadcast aggregate at 64 kB across tiles.
	for _, h := range strategies {
		s := Series{Label: "bcast " + h.String()}
		for _, n := range []int{2, 8, 16, 24, 36} {
			t, err := measureHomedBcast(opt, gx, h, n, 64<<10)
			if err != nil {
				return e, err
			}
			agg := float64(n-1) * float64(64<<10) / t.Seconds() / 1e6
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, agg)
		}
		e.Series = append(e.Series, s)
	}
	e.Notes = append(e.Notes,
		"paper S III.A: hash-for-home excels for shared data (DDC spreads load); local homing",
		"forfeits the DDC beyond one L2; remote homing serializes fan-in at one home tile.",
		"(bcast series: x is tiles, y is aggregate MB/s at 64 kB)")
	return e, nil
}

func measureHomedPut(opt Options, chip *arch.Chip, h cache.Homing, size int64) (float64, error) {
	nelems := int(size / 8)
	var elapsed vtime.Duration
	cfg := core.Config{Chip: chip, NPEs: 2, HeapPerPE: 2*size + 1<<20, Homing: h}
	_, err := observedRun(opt, cfg, func(pe *core.PE) error {
		t, err := core.Malloc[int64](pe, nelems)
		if err != nil {
			return err
		}
		s, err := core.Malloc[int64](pe, nelems)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			t0 := pe.Now()
			if err := core.Put(pe, t, s, nelems, 1); err != nil {
				return err
			}
			elapsed = pe.Now().Sub(t0)
		}
		return pe.BarrierAll()
	})
	if err != nil {
		return 0, err
	}
	return float64(size) / elapsed.Seconds() / 1e6, nil
}

func measureHomedBcast(opt Options, chip *arch.Chip, h cache.Homing, n int, size int64) (vtime.Duration, error) {
	nelems := int(size / 4)
	elapsed := make([]vtime.Duration, n)
	cfg := core.Config{Chip: chip, NPEs: n, HeapPerPE: 4*size + 1<<20, Homing: h}
	_, err := observedRun(opt, cfg, func(pe *core.PE) error {
		target, err := core.Malloc[int32](pe, nelems)
		if err != nil {
			return err
		}
		source, err := core.Malloc[int32](pe, nelems)
		if err != nil {
			return err
		}
		ps, err := core.Malloc[int64](pe, core.BcastSyncSize)
		if err != nil {
			return err
		}
		if err := pe.AlignClocks(); err != nil {
			return err
		}
		start := pe.Now()
		if err := core.BroadcastPull(pe, target, source, nelems, 0, core.AllPEs(n), ps); err != nil {
			return err
		}
		elapsed[pe.MyPE()] = pe.Now().Sub(start)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return maxDur(elapsed), nil
}
