package bench

import (
	"strings"
	"testing"
)

func runExp(t *testing.T, id string) Experiment {
	t.Helper()
	r, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	e, err := r.Run(Options{Quick: true})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if e.ID != id {
		t.Errorf("experiment reports ID %q", e.ID)
	}
	return e
}

func seriesByLabel(t *testing.T, e Experiment, label string) Series {
	t.Helper()
	for _, s := range e.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("%s: no series %q (have %v)", e.ID, label, labels(e))
	return Series{}
}

func labels(e Experiment) []string {
	var out []string
	for _, s := range e.Series {
		out = append(out, s.Label)
	}
	return out
}

func yAt(t *testing.T, s Series, x float64) float64 {
	t.Helper()
	y, ok := lookupY(s, x)
	if !ok {
		t.Fatalf("series %q has no x=%v", s.Label, x)
	}
	return y
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14",
		"fig8b", "fig8c", "fig10b", "fig11b", "fig12b", "homing", "mpipe",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(Runners()) < len(want) {
		t.Errorf("registry has %d runners, want >= %d", len(Runners()), len(want))
	}
	// Runners are ordered: tables first, then figures numerically.
	rs := Runners()
	if rs[0].ID != "table1" || rs[1].ID != "table2" || rs[2].ID != "table3" {
		t.Errorf("tables not first: %v", rs[0].ID)
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup accepted an unknown ID")
	}
}

func TestTables(t *testing.T) {
	e1 := runExp(t, "table1")
	if len(e1.Notes) < 15 {
		t.Errorf("table1 has %d rows", len(e1.Notes))
	}
	e2 := runExp(t, "table2")
	joined := strings.Join(e2.Notes, "\n")
	for _, want := range []string{"36 tiles of 64-bit", "64 tiles of 32-bit", "mPIPE"} {
		if !strings.Contains(joined, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
	e3 := runExp(t, "table3")
	if len(e3.Notes) < 21 { // header + 20 pairs
		t.Errorf("table3 has %d rows, want 21+", len(e3.Notes))
	}
}

// TestFig3Shape: Gx ahead below 2 MB, Pro ahead at the memory floor.
func TestFig3Shape(t *testing.T) {
	e := runExp(t, "fig3")
	gx := seriesByLabel(t, e, "TILE-Gx8036 shared")
	pro := seriesByLabel(t, e, "TILEPro64 shared")
	if yAt(t, gx, 8192) < 2500 {
		t.Errorf("Gx L1d bandwidth = %v, want ~3100", yAt(t, gx, 8192))
	}
	if g, p := yAt(t, gx, 65536), yAt(t, pro, 65536); g <= p {
		t.Errorf("at 64 kB Gx (%v) must beat Pro (%v)", g, p)
	}
	if g, p := yAt(t, gx, 64<<20), yAt(t, pro, 64<<20); g >= p {
		t.Errorf("memory floor: Pro (%v) must beat Gx (%v)", p, g)
	}
}

func TestFig4Shape(t *testing.T) {
	e := runExp(t, "fig4")
	gx := seriesByLabel(t, e, "TILE-Gx8036")
	pro := seriesByLabel(t, e, "TILEPro64")
	// Gx slower for neighbors/side-to-side, faster for corners.
	if yAt(t, gx, 1) <= yAt(t, pro, 1) {
		t.Error("Gx neighbors should be slower (setup-and-teardown)")
	}
	if yAt(t, gx, 3) >= yAt(t, pro, 3) {
		t.Error("Gx corners should be faster (per-hop rate)")
	}
	// Latency grows with distance on both.
	for _, s := range []Series{gx, pro} {
		if !(yAt(t, s, 1) < yAt(t, s, 2) && yAt(t, s, 2) < yAt(t, s, 3)) {
			t.Errorf("%s latencies not increasing with distance", s.Label)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	e := runExp(t, "fig5")
	gxSpin := seriesByLabel(t, e, "TILE-Gx8036 spin")
	proSpin := seriesByLabel(t, e, "TILEPro64 spin")
	gxSync := seriesByLabel(t, e, "TILE-Gx8036 sync")
	proSync := seriesByLabel(t, e, "TILEPro64 sync")
	within := func(got, want, tol float64, what string) {
		t.Helper()
		if got < want-tol || got > want+tol {
			t.Errorf("%s = %.1f us, want %.1f", what, got, want)
		}
	}
	within(yAt(t, gxSpin, 36), 1.5, 0.2, "Gx spin @36")
	within(yAt(t, proSpin, 36), 47.2, 2, "Pro spin @36")
	within(yAt(t, gxSync, 36), 321, 10, "Gx sync @36")
	within(yAt(t, proSync, 36), 786, 20, "Pro sync @36")
}

func TestFig6Shape(t *testing.T) {
	e := runExp(t, "fig6")
	gxPut := seriesByLabel(t, e, "Gx36 dyn-dyn put")
	gxGet := seriesByLabel(t, e, "Gx36 dyn-dyn get")
	proPut := seriesByLabel(t, e, "Pro64 dyn-dyn put")
	ss := seriesByLabel(t, e, "Gx36 stat-stat put")
	// Put aligns with get.
	for _, x := range gxPut.X {
		p, g := yAt(t, gxPut, x), yAt(t, gxGet, x)
		if p/g < 0.9 || p/g > 1.1 {
			t.Errorf("put/get diverge at %v bytes: %v vs %v", x, p, g)
		}
	}
	// Gx dd transfer beats Pro below 2 MB, and Gx static-static sits well
	// below Gx dynamic-dynamic.
	if yAt(t, gxPut, 65536) <= yAt(t, proPut, 65536) {
		t.Error("Gx should beat Pro at cacheable sizes")
	}
	if yAt(t, ss, 65536) >= 0.8*yAt(t, gxPut, 65536) {
		t.Error("static-static should pay a substantial penalty")
	}
}

func TestFig7Shape(t *testing.T) {
	e := runExp(t, "fig7")
	dd := seriesByLabel(t, e, "dyn-dyn put")
	ds := seriesByLabel(t, e, "dyn-stat put")
	sd := seriesByLabel(t, e, "stat-dyn put")
	ss := seriesByLabel(t, e, "stat-stat put")
	const x = 64 << 10
	if r := yAt(t, ds, x) / yAt(t, dd, x); r < 0.9 || r > 1.1 {
		t.Errorf("dyn-stat should match dyn-dyn, ratio %v", r)
	}
	if !(yAt(t, sd, x) < yAt(t, dd, x)) {
		t.Error("redirected put should be slower than direct")
	}
	if !(yAt(t, ss, x) < yAt(t, sd, x)) {
		t.Error("static-static should be the slowest")
	}
	// Gets mirror puts.
	ddg := seriesByLabel(t, e, "dyn-dyn get")
	ssg := seriesByLabel(t, e, "stat-stat get")
	if !(yAt(t, ssg, x) < yAt(t, ddg, x)) {
		t.Error("static-static get should be slower than direct get")
	}
}

func TestFig8Shape(t *testing.T) {
	e := runExp(t, "fig8")
	best := seriesByLabel(t, e, "Gx36 best-case")
	worst := seriesByLabel(t, e, "Gx36 worst-case")
	pro := seriesByLabel(t, e, "Pro64 worst-case")
	spin := seriesByLabel(t, e, "Gx36 TMC spin")
	if !(yAt(t, best, 36) < yAt(t, worst, 36)) {
		t.Error("best case must beat worst case")
	}
	// Pro's TSHMEM barrier ~3 us at 36 tiles.
	if p := yAt(t, pro, 36); p < 1.5 || p > 5 {
		t.Errorf("Pro 36-tile barrier = %.2f us, want ~3", p)
	}
	// On the Gx, the TMC spin barrier wins.
	if !(yAt(t, spin, 36) < yAt(t, worst, 36)) {
		t.Error("TMC spin should beat the UDN chain on the Gx")
	}
}

// TestFig9VsFig10 is the paper's central collectives comparison: push-based
// broadcast does not scale with tiles; pull-based does, peaking near 29
// tiles on the Gx.
func TestFig9VsFig10(t *testing.T) {
	push := runExp(t, "fig9")
	pull := runExp(t, "fig10")
	const x = 32 << 10
	push2 := yAt(t, seriesByLabel(t, push, "Gx36 2T"), x)
	push36 := yAt(t, seriesByLabel(t, push, "Gx36 36T"), x)
	if push36 > 2*push2 {
		t.Errorf("push aggregate grew with tiles: %v -> %v", push2, push36)
	}
	pull2 := yAt(t, seriesByLabel(t, pull, "Gx36 2T"), x)
	pull29 := yAt(t, seriesByLabel(t, pull, "Gx36 29T"), x)
	pull36 := yAt(t, seriesByLabel(t, pull, "Gx36 36T"), x)
	if pull29 < 5*pull2 {
		t.Errorf("pull aggregate did not scale: %v at 2T vs %v at 29T", pull2, pull29)
	}
	if pull36 >= pull29 {
		t.Errorf("pull aggregate should dip past the 29-tile peak: %v vs %v", pull36, pull29)
	}
	// Peak magnitude ~46 GB/s (paper), allow 30-55.
	if pull29 < 30_000 || pull29 > 55_000 {
		t.Errorf("Gx pull peak = %.0f MB/s, want ~46000", pull29)
	}
	// Pull beats push at scale on both chips.
	if pull36 <= push36 {
		t.Error("pull must beat push at 36 tiles")
	}
	proPull36 := yAt(t, seriesByLabel(t, pull, "Pro64 36T"), x)
	if proPull36 < 4_000 || proPull36 > 6_500 {
		t.Errorf("Pro pull aggregate at 36 = %.0f MB/s, want ~5100", proPull36)
	}
}

// TestFig11PeaksShift: fcollect peaks move toward smaller sizes as tiles
// increase (quadratic stage 2), unlike push broadcast's fixed peaks.
func TestFig11PeaksShift(t *testing.T) {
	e := runExp(t, "fig11")
	peakSize := func(s Series) float64 {
		best, bx := 0.0, 0.0
		for i := range s.X {
			if s.Y[i] > best {
				best, bx = s.Y[i], s.X[i]
			}
		}
		return bx
	}
	gx2 := peakSize(seriesByLabel(t, e, "Gx36 2T"))
	gx36 := peakSize(seriesByLabel(t, e, "Gx36 36T"))
	if gx36 >= gx2 {
		t.Errorf("fcollect peak should shift to smaller sizes: 2T at %v, 36T at %v", gx2, gx36)
	}
}

// TestFig12Flat: naive reduction aggregate does not grow with tiles and
// lands near the paper's 150 MB/s at large sizes on the Gx.
func TestFig12Flat(t *testing.T) {
	e := runExp(t, "fig12")
	const x = 512 << 10
	gx2 := yAt(t, seriesByLabel(t, e, "Gx36 2T"), x)
	gx36 := yAt(t, seriesByLabel(t, e, "Gx36 36T"), x)
	if gx36 > 1.5*gx2 {
		t.Errorf("naive reduce aggregate grew with tiles: %v -> %v", gx2, gx36)
	}
	if gx36 < 80 || gx36 > 300 {
		t.Errorf("Gx naive reduce at 36T/512kB = %.0f MB/s, want ~150", gx36)
	}
	pro36 := yAt(t, seriesByLabel(t, e, "Pro64 36T"), x)
	if pro36 >= gx36 {
		t.Error("Pro should be below Gx")
	}
}

// TestAblations: the future-work algorithms beat the naive designs.
func TestAblations(t *testing.T) {
	rd := runExp(t, "fig12b")
	naive := runExp(t, "fig12")
	const x = 128 << 10
	rd32 := yAt(t, seriesByLabel(t, rd, "Gx36 32T"), x)
	naive36 := yAt(t, seriesByLabel(t, naive, "Gx36 36T"), x)
	if rd32 <= naive36 {
		t.Errorf("recursive doubling (%v) should beat naive (%v)", rd32, naive36)
	}

	spin := runExp(t, "fig8b")
	udnW := yAt(t, seriesByLabel(t, spin, "UDN chain (worst)"), 36)
	spinW := yAt(t, seriesByLabel(t, spin, "TMC spin backend"), 36)
	if spinW >= udnW {
		t.Errorf("TMC spin backend (%v us) should beat the UDN chain (%v us) on the Gx", spinW, udnW)
	}

	rr := runExp(t, "fig8c")
	chainW := yAt(t, seriesByLabel(t, rr, "linear chain release"), 36)
	rootW := yAt(t, seriesByLabel(t, rr, "root-broadcast release"), 36)
	if rootW <= chainW {
		t.Errorf("root-broadcast release (%v us) should be slower than the chain (%v us), as the paper found", rootW, chainW)
	}

	frd := runExp(t, "fig11b")
	fNaive := yAt(t, seriesByLabel(t, frd, "naive 32T"), 16<<10)
	fRD := yAt(t, seriesByLabel(t, frd, "recursive-doubling 32T"), 16<<10)
	if fRD <= fNaive {
		t.Errorf("RD fcollect (%v) should beat naive (%v)", fRD, fNaive)
	}

	binom := runExp(t, "fig10b")
	push := runExp(t, "fig9")
	b36 := yAt(t, seriesByLabel(t, binom, "Gx36 36T"), 32<<10)
	p36 := yAt(t, seriesByLabel(t, push, "Gx36 36T"), 32<<10)
	if b36 <= p36 {
		t.Errorf("binomial broadcast (%v) should beat push (%v) at scale", b36, p36)
	}
}

// TestFig13Shape at quick scale: sublinear FFT speedup that levels off, and
// the TILEPro roughly an order of magnitude slower serially.
func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("case-study shape test (minutes under -race); run without -short")
	}
	e := runExp(t, "fig13")
	gxT := seriesByLabel(t, e, "Gx36 time (s)")
	gxS := seriesByLabel(t, e, "Gx36 speedup")
	proT := seriesByLabel(t, e, "Pro64 time (s)")
	if yAt(t, proT, 1)/yAt(t, gxT, 1) < 3 {
		t.Error("Pro serial FFT should be several times slower (softfloat)")
	}
	s16, s32 := yAt(t, gxS, 16), yAt(t, gxS, 32)
	if s32 <= s16 {
		t.Error("speedup should still inch upward at 32 tiles")
	}
	if s32 > 8 {
		t.Errorf("Gx speedup at 32 = %.1f; the serialized transpose should cap it near 5", s32)
	}
	if s32 < 3 {
		t.Errorf("Gx speedup at 32 = %.1f, too low", s32)
	}
}

// TestFig14Shape at quick scale: near-linear CBIR speedup, Pro >= Gx
// speedup, Gx faster absolutely.
func TestFig14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("case-study shape test (minutes under -race); run without -short")
	}
	e := runExp(t, "fig14")
	gxT := seriesByLabel(t, e, "Gx36 time (s)")
	gxS := seriesByLabel(t, e, "Gx36 speedup")
	proT := seriesByLabel(t, e, "Pro64 time (s)")
	proS := seriesByLabel(t, e, "Pro64 speedup")
	if s := yAt(t, gxS, 16); s < 12 {
		t.Errorf("Gx speedup at 16 = %.1f, want near-linear", s)
	}
	g32, p32 := yAt(t, gxS, 32), yAt(t, proS, 32)
	if g32 < 20 || g32 > 32 {
		t.Errorf("Gx speedup at 32 = %.1f, want ~25", g32)
	}
	if p32 < g32 {
		t.Errorf("Pro speedup (%.1f) should be >= Gx (%.1f)", p32, g32)
	}
	if yAt(t, gxT, 32) >= yAt(t, proT, 32) {
		t.Error("Gx must be absolutely faster in all cases")
	}
}

func TestFormat(t *testing.T) {
	e := Experiment{
		ID: "x", Title: "T", XLabel: "n", YLabel: "y",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Label: "b", X: []float64{2, 3}, Y: []float64{0.5, 1.25}},
		},
		Notes: []string{"note"},
	}
	out := e.Format()
	for _, want := range []string{"== x: T ==", "a", "b", "10", "0.5000", "note", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q in:\n%s", want, out)
		}
	}
}
