package bench

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	"tshmem/internal/core"
)

// medianPoint picks the trial with the median throughput.
func medianPoint(pts []ScalingPoint) ScalingPoint {
	sort.Slice(pts, func(i, j int) bool { return pts[i].SimsPerSec < pts[j].SimsPerSec })
	return pts[len(pts)/2]
}

// BenchmarkBarrierEvent is BenchmarkBarrier on the event engine,
// uninstrumented: the calendar's yield/grant hot path (park channel,
// ready scan, wake matching) must add 0 allocs/op on top of the barrier
// chain — the figure ci.sh's bench-alloc smoke stage enforces.
func BenchmarkBarrierEvent(b *testing.B) {
	benchBarrier(b, core.Config{NPEs: benchPEs, HeapPerPE: 64 << 10, Engine: core.EngineEvent})
}

// BenchmarkPutEvent is BenchmarkPut on the event engine: the put fast
// path never parks, so the calendar must stay entirely off it (0
// allocs/op, and ns/op within noise of the goroutine engine).
func BenchmarkPutEvent(b *testing.B) {
	benchPut(b, core.Config{NPEs: 2, HeapPerPE: 1 << 20, Engine: core.EngineEvent})
}

// TestEngineScalingSmoke checks the measurement machinery itself at a
// small concurrency: both engines complete, report sane fields, and the
// event engine never lets a second PE goroutine become runnable.
func TestEngineScalingSmoke(t *testing.T) {
	for _, eng := range core.Engines() {
		pt, err := MeasureEngineScaling(eng, 4, 1)
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if pt.Sims != 4 || pt.SimsPerSec <= 0 {
			t.Errorf("%s: implausible point %+v", eng, pt)
		}
		if eng == core.EngineEvent && pt.RunnablePerSim > 2 {
			t.Errorf("event engine made %d goroutines per sim runnable, want <= 2", pt.RunnablePerSim)
		}
	}
}

// TestEngineScalingWorker is the subprocess half of the throughput gate:
// it runs a single MeasureEngineScaling in a fresh process (engine and
// shape passed by environment) and writes the resulting point as JSON.
// Run directly it has nothing to do and skips.
func TestEngineScalingWorker(t *testing.T) {
	name := os.Getenv("TSHMEM_SCALING_WORKER")
	if name == "" {
		t.Skip("subprocess helper for TestEngineScalingGate")
	}
	eng, err := core.ParseEngine(name)
	if err != nil {
		t.Fatal(err)
	}
	concurrent, err := strconv.Atoi(os.Getenv("TSHMEM_SCALING_CONCURRENT"))
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := strconv.Atoi(os.Getenv("TSHMEM_SCALING_ROUNDS"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := MeasureEngineScaling(eng, concurrent, rounds)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(pt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(os.Getenv("TSHMEM_SCALING_OUT"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// scalingSubprocess measures one engine in a fresh process. Process
// isolation is what makes the gate repeatable: a 128-run storm grows the
// Go heap by hundreds of megabytes, and the retained spans plus the
// re-paced collector make whatever runs next in the same process measure
// ~40% faster than it would cold. Each sample here starts from the same
// cold runtime.
func scalingSubprocess(t *testing.T, eng core.Engine, concurrent, rounds int) ScalingPoint {
	t.Helper()
	out := filepath.Join(t.TempDir(), "point.json")
	cmd := exec.Command(os.Args[0], "-test.run", "^TestEngineScalingWorker$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		"TSHMEM_SCALING_WORKER="+eng.String(),
		"TSHMEM_SCALING_CONCURRENT="+strconv.Itoa(concurrent),
		"TSHMEM_SCALING_ROUNDS="+strconv.Itoa(rounds),
		"TSHMEM_SCALING_OUT="+out,
	)
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("scaling worker (%s): %v\n%s", eng, err, b)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var pt ScalingPoint
	if err := json.Unmarshal(data, &pt); err != nil {
		t.Fatal(err)
	}
	return pt
}

// TestEngineScalingGate is the ci.sh engine-stage throughput gate: at 128
// concurrent simulations the event engine must sustain at least 2x the
// goroutine engine's throughput with at most 2 runnable goroutines per
// simulation. The full sweep costs tens of host seconds and its ratio is
// a host-load measurement, so it only arms when the ci stage requests it
// via TSHMEM_ENGINE_GATE=1; a plain `go test ./...` skips it.
func TestEngineScalingGate(t *testing.T) {
	if os.Getenv("TSHMEM_ENGINE_GATE") == "" {
		t.Skip("set TSHMEM_ENGINE_GATE=1 to run the engine throughput gate")
	}
	// Alternate engines across three cold-process trials each and gate on
	// medians: a one-core CI host schedules a 4000-goroutine storm with
	// real run-to-run variance, and a single sample in either direction
	// would make the gate flaky. Eight rounds per worker keep each
	// measurement long enough (~1000 simulations) to reach the storm's
	// steady state rather than its first transient.
	const concurrent, rounds, trials = 128, 8, 3
	var gs, es []ScalingPoint
	for i := 0; i < trials; i++ {
		gs = append(gs, scalingSubprocess(t, core.EngineGoroutine, concurrent, rounds))
		es = append(es, scalingSubprocess(t, core.EngineEvent, concurrent, rounds))
	}
	g, e := medianPoint(gs), medianPoint(es)
	t.Logf("medians of %d trials:\n%s", trials, FormatEngineScaling([]ScalingPoint{g, e}))
	if e.RunnablePerSim > 2 {
		t.Errorf("event engine: %d runnable goroutines per simulation, want <= 2", e.RunnablePerSim)
	}
	ratio := e.SimsPerSec / g.SimsPerSec
	if ratio < 2 {
		t.Errorf("event engine throughput at %d concurrent = %.2fx goroutine engine, want >= 2x (event %.0f sims/s, goroutine %.0f sims/s)",
			concurrent, ratio, e.SimsPerSec, g.SimsPerSec)
	}
}
