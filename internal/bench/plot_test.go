package bench

import (
	"strings"
	"testing"
)

func TestPlotRendering(t *testing.T) {
	e := Experiment{
		Title:  "T",
		XLabel: "bytes",
		YLabel: "MB/s",
		Series: []Series{
			{Label: "a", X: []float64{8, 1024, 1 << 20}, Y: []float64{1, 100, 10}},
			{Label: "b", X: []float64{8, 1024, 1 << 20}, Y: []float64{50, 50, 50}},
		},
	}
	out := e.Plot(60, 12)
	if out == "" {
		t.Fatal("empty plot")
	}
	for _, want := range []string{"T  (y: 0..100", "* a", "o b", "(log)"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 14 {
		t.Errorf("plot has %d lines", lines)
	}
	// Linear x for narrow ranges.
	e.Series[0].X = []float64{1, 2, 3}
	e.Series[1].X = []float64{1, 2, 3}
	if !strings.Contains(e.Plot(40, 8), "(linear)") {
		t.Error("narrow range should use a linear x axis")
	}
}

func TestPlotDegenerate(t *testing.T) {
	if (Experiment{}).Plot(60, 12) != "" {
		t.Error("empty experiment should render nothing")
	}
	e := Experiment{Series: []Series{{Label: "a", X: []float64{5}, Y: []float64{0}}}}
	if e.Plot(60, 12) != "" {
		t.Error("single zero point should render nothing")
	}
	if e.Plot(5, 2) != "" {
		t.Error("tiny canvas should render nothing")
	}
}
