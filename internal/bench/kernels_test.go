package bench

import (
	"strings"
	"testing"

	"tshmem/internal/kernels"
)

// The kernel probes must be reachable through the -probe machinery but
// must NOT be members of the baseline suite (BENCH_baseline.json is
// CI-gated byte-identical).
func TestKernelProbesRegisteredOutsideSuite(t *testing.T) {
	suite := map[string]bool{}
	for _, p := range SuiteProbes() {
		suite[p.ID] = true
	}
	for _, name := range kernels.Names() {
		p, ok := LookupProbe(name)
		if !ok {
			t.Fatalf("kernel %s has no probe", name)
		}
		if p.ID != name || p.Title == "" {
			t.Errorf("kernel probe %s malformed: %+v", name, p)
		}
		if suite[name] {
			t.Errorf("kernel probe %s leaked into the baseline suite", name)
		}
	}
	if len(Probes()) != len(SuiteProbes())+len(kernels.Names()) {
		t.Errorf("Probes() lists %d probes, want %d figure + %d kernel",
			len(Probes()), len(SuiteProbes()), len(kernels.Names()))
	}
}

// A kernel probe is self-verifying: the report only comes back if the
// output matched the serial oracle, and a sanitized run stays clean.
func TestKernelProbeSelfVerifies(t *testing.T) {
	for _, name := range []string{"sort", "bfs"} {
		p, ok := LookupProbe(name)
		if !ok {
			t.Fatal(name)
		}
		rep, err := p.Run(ProbeOpts{Sanitize: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rep.Diagnostics) != 0 {
			t.Fatalf("%s: sanitizer diagnostics: %v", name, rep.Diagnostics)
		}
		if rep.MaxTime <= 0 {
			t.Fatalf("%s: degenerate makespan", name)
		}
	}
}

// SweepKernels renders one verified-makespan row per kernel with one
// column per swept chip family.
func TestSweepKernelsTable(t *testing.T) {
	out, err := SweepKernels(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range kernels.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("sweep table missing kernel %s:\n%s", name, out)
		}
	}
	for _, chip := range sweepChipSet() {
		if !strings.Contains(out, chip.Name) {
			t.Errorf("sweep table missing chip %s:\n%s", chip.Name, out)
		}
	}
}
