package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"tshmem/internal/arch"
	"tshmem/internal/core"
	"tshmem/internal/stats"
)

func TestParseThreshold(t *testing.T) {
	good := []struct {
		in   string
		want float64
	}{
		{"5%", 0.05}, {"0.05", 0.05}, {"25%", 0.25}, {"0", 0},
		{" 10 % ", 0.10}, {"100%", 1},
	}
	for _, c := range good {
		got, err := ParseThreshold(c.in)
		if err != nil {
			t.Errorf("ParseThreshold(%q): %v", c.in, err)
		} else if got != c.want {
			t.Errorf("ParseThreshold(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "-5%", "%", "5%%"} {
		if _, err := ParseThreshold(bad); err == nil {
			t.Errorf("ParseThreshold(%q) accepted", bad)
		}
	}
}

// The suite must be deterministic (virtual time, no host clocks) and
// round-trip through the JSON file format unchanged; a self-compare must
// pass at any threshold.
func TestBaselineRoundTripAndSelfCompare(t *testing.T) {
	b1, err := RunSuite(ProbeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(b1.Results) != len(SuiteProbes()) {
		t.Fatalf("suite produced %d results, want %d", len(b1.Results), len(SuiteProbes()))
	}
	for _, r := range b1.Results {
		if r.MakespanUs <= 0 || r.P50Us <= 0 || r.Chip == "" || r.PEs == 0 {
			t.Errorf("degenerate result: %+v", r)
		}
		if !(r.P50Us <= r.P90Us && r.P90Us <= r.P99Us && r.P99Us <= r.MaxUs) {
			t.Errorf("%s: quantiles not monotone: %+v", r.Benchmark, r)
		}
		if len(r.Counters) == 0 {
			t.Errorf("%s: no counters embedded", r.Benchmark)
		}
	}

	b2, err := RunSuite(ProbeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var f1, f2 bytes.Buffer
	if err := WriteBaseline(&f1, b1); err != nil {
		t.Fatal(err)
	}
	if err := WriteBaseline(&f2, b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f1.Bytes(), f2.Bytes()) {
		t.Error("two runs of the suite wrote different baselines; virtual time leaked host state")
	}

	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, f1.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	deltas := Compare(loaded, b2, 0)
	if Regressed(deltas) {
		t.Errorf("self-compare regressed at threshold 0:\n%s", FormatCompare(deltas, 0))
	}
	if want := len(b1.Results) * 3; len(deltas) != want {
		t.Errorf("self-compare produced %d deltas, want %d", len(deltas), want)
	}
}

func TestReadBaselineRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	vpath := filepath.Join(dir, "v.json")
	os.WriteFile(vpath, []byte(`{"schema_version": 99, "results": []}`), 0o644)
	if _, err := ReadBaseline(vpath); err == nil {
		t.Error("schema version 99 accepted")
	}
	gpath := filepath.Join(dir, "g.json")
	os.WriteFile(gpath, []byte(`not json`), 0o644)
	if _, err := ReadBaseline(gpath); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// slowGx returns a TILE-Gx whose UDN and memcpy paths are deliberately
// degraded — the fixture the regression gate must catch.
func slowGx() *arch.Chip {
	c := arch.Gx8036()
	c.UDNSetupNs *= 3
	c.UDNSWForwardNs *= 3
	c.CopyCallNs *= 3
	for i := range c.SharedCopy {
		c.SharedCopy[i].MBs /= 2
	}
	for i := range c.PrivateCopy {
		c.PrivateCopy[i].MBs /= 2
	}
	return c
}

// A deliberately slowed mesh/chip must trip the 5% gate on every probe's
// makespan — the end-to-end contract behind tshmem-bench -compare's
// non-zero exit.
func TestCompareDetectsSlowedChip(t *testing.T) {
	base, err := RunSuite(ProbeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunSuite(ProbeOpts{Chip: slowGx()})
	if err != nil {
		t.Fatal(err)
	}
	deltas := Compare(base, slow, 0.05)
	if !Regressed(deltas) {
		t.Fatalf("slowed chip passed the 5%% gate:\n%s", FormatCompare(deltas, 0.05))
	}
	byBench := map[string]bool{}
	for _, d := range deltas {
		if d.Regressed {
			byBench[d.Benchmark] = true
		}
	}
	for _, p := range SuiteProbes() {
		if !byBench[p.ID] {
			t.Errorf("probe %s did not regress on the slowed chip", p.ID)
		}
	}
	// The reverse comparison is an improvement, never a regression.
	if rev := Compare(slow, base, 0.05); Regressed(rev) {
		t.Error("getting faster flagged as a regression")
	}
}

func TestCompareMissingBenchmarkRegresses(t *testing.T) {
	base := &Baseline{SchemaVersion: BaselineSchemaVersion, Results: []Result{
		{Benchmark: "barrier", MakespanUs: 1, P50Us: 1, P99Us: 1},
		{Benchmark: "put", MakespanUs: 1, P50Us: 1, P99Us: 1},
	}}
	cur := &Baseline{SchemaVersion: BaselineSchemaVersion, Results: []Result{
		{Benchmark: "barrier", MakespanUs: 1, P50Us: 1, P99Us: 1},
	}}
	deltas := Compare(base, cur, 0.5)
	if !Regressed(deltas) {
		t.Error("benchmark missing from the current run did not regress")
	}
	var missing bool
	for _, d := range deltas {
		missing = missing || d.Missing
	}
	if !missing {
		t.Error("no delta marked Missing")
	}
	// New benchmarks in cur have no reference and must not fail the gate.
	if rev := Compare(cur, base, 0.5); Regressed(rev) {
		t.Error("benchmark new in the current run flagged as regression")
	}
}

// Per-chip stats of a 2-chip probe-scale run must sum exactly to the
// global aggregate, with cross-chip traffic attributed to the issuing
// chip — the audit surface multi-device runs rely on.
func TestMultichipStatsFold(t *testing.T) {
	cfg := core.Config{
		Chip: arch.Gx8036(), NPEs: 8, NChips: 2,
		HeapPerPE: 1 << 20, Observe: true,
	}
	rep, err := core.Run(cfg, func(pe *core.PE) error {
		x, err := core.Malloc[int64](pe, 512)
		if err != nil {
			return err
		}
		y, err := core.Malloc[int64](pe, 512)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		// Every PE puts to its cross-chip partner: 4 cross-chip ops per chip.
		if err := core.Put(pe, y, x, 512, (pe.MyPE()+4)%8); err != nil {
			return err
		}
		pe.Quiet()
		return pe.BarrierAll()
	})
	if err != nil {
		t.Fatal(err)
	}
	per := rep.StatsByChip()
	if len(per) != 2 {
		t.Fatalf("StatsByChip returned %d chips, want 2", len(per))
	}
	var fold stats.Counters
	for i := range per {
		fold.Add(&per[i])
	}
	if fold != rep.Stats() {
		t.Error("per-chip counters do not fold to the global aggregate")
	}
	for i := range per {
		if got := per[i].RMAOps[stats.CrossChip]; got != 4 {
			t.Errorf("chip %d: %d cross-chip RMA ops, want 4", i, got)
		}
		if per[i].Ops[stats.OpBarrier] == 0 {
			t.Errorf("chip %d recorded no barriers", i)
		}
	}
	if len(rep.MeshUtil) != 2 {
		t.Errorf("2-chip run snapshotted %d meshes, want 2", len(rep.MeshUtil))
	}
}
