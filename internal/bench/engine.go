package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tshmem/internal/core"
)

// Engine-scaling measurement: how many concurrent simulations the host
// sustains under each execution engine (docs/PERFORMANCE.md, "Engines").
// The unit of work is the suite's barrier probe — 16 PEs, aligned clocks,
// a run of barrier_all chains — the workload where host scheduling, not
// memcpy, dominates, exactly the regime the event engine exists for.

// ScalingConcurrencies are the standard sweep points tshmem-bench
// -engine-scaling and the ci.sh engine gate measure.
var ScalingConcurrencies = []int{16, 64, 128}

// A ScalingPoint is one (engine, concurrency) measurement.
type ScalingPoint struct {
	Engine     string  `json:"engine"`
	Concurrent int     `json:"concurrent"`   // simulations in flight at once
	Sims       int     `json:"sims"`         // total simulations completed
	WallMs     float64 `json:"wall_ms"`      // host wall time for all of them
	SimsPerSec float64 `json:"sims_per_sec"` // throughput
	// PeakGoroutines is the peak host goroutine count observed during the
	// storm (includes parked ones; the event engine still parks one
	// goroutine per PE in its first-cut calendar).
	PeakGoroutines int `json:"peak_goroutines"`
	// RunnablePerSim is the per-simulation runnable-goroutine bound: the
	// engine's peak simultaneously-schedulable PE goroutines (1 under the
	// event calendar, by construction) plus the worker driving the run.
	// The goroutine engine has no bound below NPEs and reports NPEs+1.
	RunnablePerSim int `json:"runnable_per_sim"`
}

// MeasureEngineScaling runs `concurrent` workers, each executing `rounds`
// barrier-probe simulations under eng, and reports aggregate throughput.
// Goroutine counts are sampled while the storm runs.
func MeasureEngineScaling(eng core.Engine, concurrent, rounds int) (ScalingPoint, error) {
	pt := ScalingPoint{
		Engine:     eng.String(),
		Concurrent: concurrent,
		Sims:       concurrent * rounds,
	}
	// The launch matches the scale of a real suite run: 16 PEs with
	// suite-sized heaps plus the default scratch arena, ~12 MiB per
	// simulation (the bcast probe allocates over 1 MiB per PE). The
	// footprint is the point — with 128 simulations in flight the engines
	// diverge on how much of it is resident at once. The event calendar
	// hands the host scheduler one runnable goroutine per simulation, so
	// runs complete in a staggered, nearly run-to-completion order and
	// only a handful of arenas are ever live. The goroutine engine's
	// 16 free-running PEs per run interleave every simulation's progress,
	// keeping every arena live for the whole storm and putting the
	// allocator and collector into a regime where they spend most of the
	// host's time re-zeroing recycled spans.
	cfg := core.Config{NPEs: 16, HeapPerPE: 512 << 10, Engine: eng}
	// scalingBarriers stretches the barrier probe's chain so host
	// scheduling — not launch/teardown, which costs the same under both
	// engines — dominates each simulation's wall time.
	const scalingBarriers = 8 * probeBarriers
	body := func(pe *core.PE) error {
		if err := pe.AlignClocks(); err != nil {
			return err
		}
		for i := 0; i < scalingBarriers; i++ {
			if err := pe.BarrierAll(); err != nil {
				return err
			}
		}
		return nil
	}

	var peakG atomic.Int64
	stop := make(chan struct{})
	sampler := make(chan struct{})
	go func() {
		defer close(sampler)
		for {
			if g := int64(runtime.NumGoroutine()); g > peakG.Load() {
				peakG.Store(g)
			}
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	var maxRunnable atomic.Int64
	errs := make([]error, concurrent)
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(concurrent)
	for w := 0; w < concurrent; w++ {
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				rep, err := core.Run(cfg, body)
				if err != nil {
					errs[w] = err
					return
				}
				if int64(rep.MaxRunnablePEs) > maxRunnable.Load() {
					maxRunnable.Store(int64(rep.MaxRunnablePEs))
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	close(stop)
	<-sampler
	for _, err := range errs {
		if err != nil {
			return pt, err
		}
	}

	pt.WallMs = float64(wall.Nanoseconds()) / 1e6
	if wall > 0 {
		pt.SimsPerSec = float64(pt.Sims) / wall.Seconds()
	}
	pt.PeakGoroutines = int(peakG.Load())
	if eng == core.EngineEvent {
		pt.RunnablePerSim = int(maxRunnable.Load()) + 1
	} else {
		pt.RunnablePerSim = cfg.NPEs + 1
	}
	return pt, nil
}

// EngineScalingSweep measures every engine at every standard concurrency,
// rounds simulations per worker, in a fixed order (goroutine first).
func EngineScalingSweep(rounds int) ([]ScalingPoint, error) {
	var out []ScalingPoint
	for _, eng := range core.Engines() {
		for _, c := range ScalingConcurrencies {
			pt, err := MeasureEngineScaling(eng, c, rounds)
			if err != nil {
				return nil, fmt.Errorf("engine %s at %d concurrent: %w", eng, c, err)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// FormatEngineScaling renders scaling points as the table tshmem-bench
// -engine-scaling prints (and docs/PERFORMANCE.md commits). Wall times are
// host wall-clock — unlike everything else tshmem-bench reports, this
// table is about the host, so absolute numbers vary by machine; the
// event:goroutine throughput ratio at equal concurrency is the figure
// that travels.
func FormatEngineScaling(points []ScalingPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %11s %6s %10s %10s %8s %9s\n",
		"engine", "concurrent", "sims", "wall_ms", "sims/s", "peak_g", "runnable")
	base := map[int]float64{}
	for _, p := range points {
		if p.Engine == core.EngineGoroutine.String() {
			base[p.Concurrent] = p.SimsPerSec
		}
	}
	for _, p := range points {
		ratio := ""
		if b := base[p.Concurrent]; b > 0 && p.Engine != core.EngineGoroutine.String() {
			ratio = fmt.Sprintf("  (%.2fx)", p.SimsPerSec/b)
		}
		fmt.Fprintf(&sb, "%-10s %11d %6d %10.1f %10.0f %8d %9d%s\n",
			p.Engine, p.Concurrent, p.Sims, p.WallMs, p.SimsPerSec,
			p.PeakGoroutines, p.RunnablePerSim, ratio)
	}
	return sb.String()
}
