package bench

import (
	"bytes"
	"compress/gzip"
	"io"
	"regexp"
	"strings"
	"testing"

	"tshmem/internal/arch"
	"tshmem/internal/core"
	"tshmem/internal/fft"
	"tshmem/internal/profile"
	"tshmem/internal/vtime"
)

// checkLedger asserts the profiler's exact-partition invariant on a
// probe or workload report: every PE's blame sums to its end time and
// the critical path tiles [0, makespan).
func checkLedger(t *testing.T, label string, rep *core.Report) *profile.Profile {
	t.Helper()
	p := rep.Profile()
	if p == nil {
		t.Fatalf("%s: no profile on the report", label)
	}
	if p.Makespan != rep.MaxTime {
		t.Fatalf("%s: profile makespan %v != report %v", label, p.Makespan, rep.MaxTime)
	}
	for i := range p.PEs {
		var sum vtime.Duration
		for _, d := range p.PEs[i].Blame {
			if d < 0 {
				t.Fatalf("%s: PE %d negative blame %v", label, i, d)
			}
			sum += d
		}
		if sum != vtime.Duration(p.PEs[i].End) {
			t.Fatalf("%s: PE %d ledger sums to %v, want %v", label, i, sum, p.PEs[i].End)
		}
	}
	var sum vtime.Duration
	for _, s := range p.Path {
		sum += s.Dur()
	}
	if sum != p.Makespan {
		t.Fatalf("%s: path sums to %v, want makespan %v", label, sum, p.Makespan)
	}
	return p
}

// TestProbesProfileInvariant runs every registered probe under the
// profiler and checks the ledger invariant on each.
func TestProbesProfileInvariant(t *testing.T) {
	for _, p := range Probes() {
		rep, err := p.Run(ProbeOpts{Profile: true})
		if err != nil {
			t.Fatalf("probe %s: %v", p.ID, err)
		}
		prof := checkLedger(t, "probe "+p.ID, rep)
		if prof.DroppedSegs != 0 {
			t.Errorf("probe %s dropped %d segments", p.ID, prof.DroppedSegs)
		}
	}
}

// TestProbeProfileOffIdentical: running a probe with and without the
// profiler must produce identical virtual times — the baseline JSON
// depends on this (ci.sh asserts the byte identity end to end).
func TestProbeProfileOffIdentical(t *testing.T) {
	for _, p := range Probes() {
		plain, err := p.Run(ProbeOpts{})
		if err != nil {
			t.Fatalf("probe %s: %v", p.ID, err)
		}
		profiled, err := p.Run(ProbeOpts{Profile: true})
		if err != nil {
			t.Fatalf("probe %s: %v", p.ID, err)
		}
		if plain.MaxTime != profiled.MaxTime {
			t.Errorf("probe %s: profiling moved the makespan: %v vs %v",
				p.ID, plain.MaxTime, profiled.MaxTime)
		}
	}
}

// TestFig13WorkloadExports profiles the Figure 13 workload (a small
// distributed 2D-FFT, the shape runFFT uses in quick mode) and checks
// both heavyweight exports: the folded-stack stream is well-formed
// speedscope input, and the pprof protobuf gunzips with the expected
// symbols.
func TestFig13WorkloadExports(t *testing.T) {
	const n, p = 64, 4
	blockBytes := int64(n) * int64(n) * 8 / int64(p)
	cfg := core.Config{
		Chip: arch.Gx8036(), NPEs: p, HeapPerPE: 2*blockBytes + 1<<20,
		Profile: true,
	}
	rep, err := core.Run(cfg, func(pe *core.PE) error {
		_, err := fft.Distributed2D(pe, n)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	prof := checkLedger(t, "fig13", rep)

	var folded bytes.Buffer
	if err := prof.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	line := regexp.MustCompile(`^PE \d+;[a-zA-Z0-9._]+ \d+$`)
	lines := strings.Split(strings.TrimRight(folded.String(), "\n"), "\n")
	if len(lines) < p {
		t.Fatalf("folded export too small: %d lines", len(lines))
	}
	for _, l := range lines {
		if !line.MatchString(l) {
			t.Fatalf("malformed folded line %q", l)
		}
	}
	if !strings.Contains(folded.String(), ";compute ") {
		t.Fatal("folded export has no compute frames")
	}

	var pb bytes.Buffer
	if err := prof.WritePprof(&pb); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&pb)
	if err != nil {
		t.Fatalf("pprof export is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"virtualtime", "nanoseconds", "compute"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Fatalf("pprof protobuf missing %q", want)
		}
	}
}
