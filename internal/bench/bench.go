// Package bench regenerates every table and figure of the paper's
// evaluation. Each experiment drives the real library (or, for the device
// microbenchmarks of Section III, the substrate it is built on) and
// reports virtual-time measurements as the series the paper plots.
//
// Absolute agreement with the paper's numbers is calibrated where the
// paper states them (see internal/arch); the primary claim is shape:
// orderings, knees, crossovers, peaks, and scaling behavior.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"tshmem/internal/core"
	"tshmem/internal/stats"
)

// Series is one plotted curve: Y(X), with an optional per-point annotation.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Experiment is one regenerated table or figure.
type Experiment struct {
	ID     string // "fig3", "table2", ...
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string // free-form rows (tables, paper-anchor comparisons)
}

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks the application case studies (smaller FFT image,
	// fewer CBIR images) so the full suite runs in seconds. Microbenchmark
	// experiments are unaffected — they are cheap at full scale.
	Quick bool

	// Obs, when non-nil, enables substrate counters on every program an
	// experiment launches and folds each run's aggregate into the
	// collector. tshmem-bench -stats prints the folded table next to the
	// experiment's results.
	Obs *stats.Collector

	// Sanitize runs every launched program under the happens-before
	// checker and fails the experiment if any run produced diagnostics —
	// the library's own collectives and the case studies must be
	// synchronization-clean. tshmem-bench -sanitize sets this.
	Sanitize bool
}

// observedRun launches a program like core.Run does, with substrate
// observability wired to opt.Obs when the caller asked for it.
func observedRun(opt Options, cfg core.Config, body func(*core.PE) error) (*core.Report, error) {
	if opt.Obs != nil {
		cfg.Observe = true
	}
	if opt.Sanitize {
		cfg.Sanitize = true
	}
	rep, err := core.Run(cfg, body)
	if err == nil && opt.Obs != nil {
		opt.Obs.Fold(rep.Stats())
	}
	if err == nil && opt.Sanitize && len(rep.Diagnostics) > 0 {
		return rep, fmt.Errorf("sanitizer found %d synchronization issue(s); first: %s",
			len(rep.Diagnostics), rep.Diagnostics[0])
	}
	return rep, err
}

// Runner produces one experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(Options) (Experiment, error)
}

var registry []Runner

func register(id, title string, run func(Options) (Experiment, error)) {
	registry = append(registry, Runner{ID: id, Title: title, Run: run})
}

// Runners lists all registered experiments in paper order.
func Runners() []Runner {
	out := make([]Runner, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

func orderKey(id string) string {
	// tables first, then figures by number.
	var n int
	if _, err := fmt.Sscanf(id, "table%d", &n); err == nil {
		return fmt.Sprintf("0%02d", n)
	}
	if _, err := fmt.Sscanf(id, "fig%d", &n); err == nil {
		return fmt.Sprintf("1%02d", n)
	}
	return "9" + id
}

// Lookup finds a runner by ID.
func Lookup(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// Format renders the experiment as aligned text: one block per series,
// then notes.
func (e Experiment) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", e.ID, e.Title)
	if len(e.Series) > 0 {
		// Align all series on the union of X values when they share them.
		fmt.Fprintf(&b, "%-14s", e.XLabel)
		for _, s := range e.Series {
			fmt.Fprintf(&b, " %16s", s.Label)
		}
		b.WriteByte('\n')
		rows := unionX(e.Series)
		for _, x := range rows {
			fmt.Fprintf(&b, "%-14s", trimFloat(x))
			for _, s := range e.Series {
				if y, ok := lookupY(s, x); ok {
					fmt.Fprintf(&b, " %16s", trimFloat(y))
				} else {
					fmt.Fprintf(&b, " %16s", "-")
				}
			}
			b.WriteByte('\n')
		}
		if e.YLabel != "" {
			fmt.Fprintf(&b, "(y: %s)\n", e.YLabel)
		}
	}
	for _, n := range e.Notes {
		fmt.Fprintf(&b, "%s\n", n)
	}
	return b.String()
}

func unionX(series []Series) []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func lookupY(s Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

func trimFloat(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// powersOfTwo returns lo, 2lo, ..., hi (inclusive when hi is a power-of-two
// multiple).
func powersOfTwo(lo, hi int64) []int64 {
	var out []int64
	for s := lo; s <= hi; s *= 2 {
		out = append(out, s)
	}
	return out
}
