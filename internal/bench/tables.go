package bench

import (
	"fmt"

	"tshmem/internal/arch"
	"tshmem/internal/mesh"
	"tshmem/internal/udn"
	"tshmem/internal/vtime"
)

func init() {
	register("table1", "Basic subset of OpenSHMEM functions (API coverage)", table1)
	register("table2", "Architecture comparison for TILE-Gx8036 and TILEPro64", table2)
	register("table3", "One-way latencies on UDN", table3)
}

// table1 reports the Table I function subset and the Go API implementing
// each entry. The core test suite asserts all of these exist; this table is
// the human-readable inventory.
func table1(Options) (Experiment, error) {
	rows := []struct{ category, cFunc, goAPI string }{
		{"Setup and Initialization", "start_pes()", "tshmem.Run"},
		{"Environment Query", "_my_pe(), _num_pes()", "PE.MyPE, PE.NumPEs"},
		{"Memory Allocation", "shmalloc(), shfree()", "tshmem.Malloc, tshmem.Free"},
		{"Memory Allocation", "shrealloc(), shmemalign()", "tshmem.Realloc, tshmem.MallocAlign"},
		{"Elemental Put/Get", "shmem_int_p(), shmem_int_g()", "tshmem.P, tshmem.G"},
		{"Block Put/Get", "shmem_putmem(), shmem_getmem()", "tshmem.Put/PutSlice, tshmem.Get/GetSlice"},
		{"Strided Put/Get", "shmem_int_iput(), shmem_int_iget()", "tshmem.IPut, tshmem.IGet"},
		{"Barrier", "shmem_barrier(), shmem_barrier_all()", "PE.Barrier, PE.BarrierAll"},
		{"Communications Sync", "shmem_fence(), shmem_quiet()", "PE.Fence, PE.Quiet"},
		{"Point-to-Point Sync", "shmem_wait(), shmem_wait_until()", "tshmem.Wait, tshmem.WaitUntil"},
		{"Broadcast", "shmem_broadcast32()", "tshmem.Broadcast (pull/push/binomial)"},
		{"Collection", "shmem_collect32(), shmem_fcollect32()", "tshmem.Collect, tshmem.FCollect"},
		{"Reduction", "shmem_int_sum_to_all(), shmem_long_prod_to_all()", "tshmem.SumToAll, tshmem.ProdToAll, ..."},
		{"Atomic Swap", "shmem_swap()", "tshmem.Swap, tshmem.CSwap, tshmem.FAdd, ..."},
		{"Locks", "shmem_set_lock(), shmem_clear_lock()", "PE.SetLock, PE.ClearLock, PE.TestLock"},
		{"Accessibility", "shmem_pe_accessible(), shmem_ptr()", "PE.PEAccessible, tshmem.Ptr"},
		{"Proposed extension", "shmem_finalize()", "PE.Finalize"},
	}
	e := Experiment{ID: "table1", Title: "Basic subset of OpenSHMEM functions"}
	e.Notes = append(e.Notes, fmt.Sprintf("%-26s | %-46s | %s", "Category", "OpenSHMEM function", "TSHMEM Go API"))
	for _, r := range rows {
		e.Notes = append(e.Notes, fmt.Sprintf("%-26s | %-46s | %s", r.category, r.cFunc, r.goAPI))
	}
	return e, nil
}

func table2(Options) (Experiment, error) {
	e := Experiment{ID: "table2", Title: "Arch. comparison for TILE-Gx8036 and TILEPro64"}
	for _, r := range arch.TableII(arch.Gx8036(), arch.Pro64()) {
		e.Notes = append(e.Notes, fmt.Sprintf("%-44s | %s", r.Values[0], r.Values[1]))
	}
	return e, nil
}

// udnPairs are the Table III tile pairs within the 6x6 effective test area.
type udnPair struct {
	class     string
	direction string
	sender    int
	receiver  int
}

func tableIIIPairs() []udnPair {
	return []udnPair{
		{"Neighbors", "left", 14, 13},
		{"Neighbors", "right", 14, 15},
		{"Neighbors", "up", 14, 8},
		{"Neighbors", "down", 14, 20},
		{"Neighbors", "left", 28, 27},
		{"Neighbors", "right", 28, 29},
		{"Neighbors", "up", 28, 22},
		{"Neighbors", "down", 28, 34},
		{"Side-to-Side", "right", 6, 11},
		{"Side-to-Side", "left", 11, 6},
		{"Side-to-Side", "down", 1, 31},
		{"Side-to-Side", "up", 31, 1},
		{"Side-to-Side", "right", 23, 18},
		{"Side-to-Side", "left", 18, 23},
		{"Side-to-Side", "down", 33, 3},
		{"Side-to-Side", "up", 3, 33},
		{"Corners", "down-right", 0, 35},
		{"Corners", "up-left", 35, 0},
		{"Corners", "down-left", 5, 30},
		{"Corners", "up-right", 30, 5},
	}
}

// pingPongOneWay measures the halved round trip of a 1-word send and a
// 1-word ack between two tiles, exactly as the paper does.
func pingPongOneWay(chip *arch.Chip, sender, receiver int) (vtime.Duration, error) {
	geo, err := mesh.NewGeometry(chip, 6, 6)
	if err != nil {
		return 0, err
	}
	net := udn.New(geo)
	defer net.Close()
	sp, err := net.Port(sender)
	if err != nil {
		return 0, err
	}
	rp, err := net.Port(receiver)
	if err != nil {
		return 0, err
	}
	var sc, rc vtime.Clock
	errc := make(chan error, 1)
	go func() {
		pkt, err := rp.Recv(&rc, 0)
		if err == nil {
			err = rp.Send(&rc, pkt.Src, 0, 0, []uint64{1})
		}
		errc <- err
	}()
	start := sc.Now()
	if err := sp.Send(&sc, receiver, 0, 0, []uint64{1}); err != nil {
		return 0, err
	}
	if _, err := sp.Recv(&sc, 0); err != nil {
		return 0, err
	}
	if err := <-errc; err != nil {
		return 0, err
	}
	return sc.Now().Sub(start) / 2, nil
}

func table3(Options) (Experiment, error) {
	e := Experiment{ID: "table3", Title: "One-way latencies on UDN (6x6 test area, 1-word payload)"}
	e.Notes = append(e.Notes, fmt.Sprintf("%-14s %-11s %7s %9s %14s %14s",
		"Type", "Direction", "Sender", "Receiver", "TILE-Gx36 (ns)", "TILEPro64 (ns)"))
	gx, pro := arch.Gx8036(), arch.Pro64()
	for _, p := range tableIIIPairs() {
		lg, err := pingPongOneWay(gx, p.sender, p.receiver)
		if err != nil {
			return e, err
		}
		lp, err := pingPongOneWay(pro, p.sender, p.receiver)
		if err != nil {
			return e, err
		}
		e.Notes = append(e.Notes, fmt.Sprintf("%-14s %-11s %7d %9d %14.0f %14.0f",
			p.class, p.direction, p.sender, p.receiver, lg.Ns(), lp.Ns()))
	}
	e.Notes = append(e.Notes,
		"paper anchors: Gx 21-22/25-26/31-32 ns, Pro 18-19/24-25/33 ns for neighbors/side-to-side/corners")
	return e, nil
}
