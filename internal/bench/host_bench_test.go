package bench

// Host-side (wall-clock) microbenchmarks for the simulator itself. The
// virtual-time baseline (BENCH_baseline.json) gates the *model*; these
// gate the *host cost* of running it: ns/op and — the figure ci.sh's
// bench-alloc smoke stage enforces — allocs/op on the uninstrumented hot
// paths. With Config.Observe unset, Put and Barrier must report
// 0 allocs/op; docs/PERFORMANCE.md records the budget per operation.
//
// Run with:
//
//	go test ./internal/bench -run '^$' -bench . -benchmem

import (
	"testing"

	"tshmem/internal/core"
)

// benchPEs is the PE count the barrier/bcast benchmarks run on: large
// enough that the signal chains do real work, small enough that host
// goroutine scheduling stays cheap on small CI machines.
const benchPEs = 8

// BenchmarkPut measures one 1 KiB dynamic-target put between two tiles,
// uninstrumented. allocs/op must be 0: the put path is pointer arithmetic,
// one memcpy, and float cost-model math.
func BenchmarkPut(b *testing.B) {
	benchPut(b, core.Config{NPEs: 2, HeapPerPE: 1 << 20})
}

// BenchmarkPutObserved is BenchmarkPut with substrate counters on, the
// instrumented bound the observability layer must stay close to.
func BenchmarkPutObserved(b *testing.B) {
	benchPut(b, core.Config{NPEs: 2, HeapPerPE: 1 << 20, Observe: true})
}

func benchPut(b *testing.B, cfg core.Config) {
	const nelems = 128 // 1 KiB of int64
	b.ReportAllocs()
	_, err := core.Run(cfg, func(pe *core.PE) error {
		x, err := core.Malloc[int64](pe, nelems)
		if err != nil {
			return err
		}
		y, err := core.Malloc[int64](pe, nelems)
		if err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := core.Put(pe, y, x, nelems, 1); err != nil {
					return err
				}
			}
			b.StopTimer()
		}
		return pe.BarrierAll()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBarrier measures one barrier_all over the UDN wait+release
// chain on benchPEs tiles, uninstrumented. allocs/op counts the work of
// the whole chain (every PE's sends and receives per barrier) and must
// be 0.
func BenchmarkBarrier(b *testing.B) {
	benchBarrier(b, core.Config{NPEs: benchPEs, HeapPerPE: 64 << 10})
}

// BenchmarkBarrierObserved is BenchmarkBarrier with counters on.
func BenchmarkBarrierObserved(b *testing.B) {
	benchBarrier(b, core.Config{NPEs: benchPEs, HeapPerPE: 64 << 10, Observe: true})
}

func benchBarrier(b *testing.B, cfg core.Config) {
	b.ReportAllocs()
	_, err := core.Run(cfg, func(pe *core.PE) error {
		if pe.MyPE() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			if err := pe.BarrierAll(); err != nil {
				return err
			}
		}
		if pe.MyPE() == 0 {
			b.StopTimer()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBcast measures one 4 KiB pull broadcast to benchPEs tiles,
// uninstrumented. The pull design bounds it by two barrier chains plus
// one charged copy per PE.
func BenchmarkBcast(b *testing.B) {
	const nelems = 1 << 9 // 4 KiB of int64
	b.ReportAllocs()
	cfg := core.Config{NPEs: benchPEs, HeapPerPE: 1 << 20}
	_, err := core.Run(cfg, func(pe *core.PE) error {
		target, err := core.Malloc[int64](pe, nelems)
		if err != nil {
			return err
		}
		source, err := core.Malloc[int64](pe, nelems)
		if err != nil {
			return err
		}
		ps, err := core.Malloc[int64](pe, core.BcastSyncSize)
		if err != nil {
			return err
		}
		as := core.AllPEs(pe.NumPEs())
		if pe.MyPE() == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			if err := core.BroadcastPull(pe, target, source, nelems, 0, as, ps); err != nil {
				return err
			}
		}
		if pe.MyPE() == 0 {
			b.StopTimer()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRunStartup measures a full launch-to-teardown cycle of an
// benchPEs-PE program with an empty body: common-memory setup, UDN
// construction, the start_pes address exchange, and teardown.
func BenchmarkRunStartup(b *testing.B) {
	b.ReportAllocs()
	cfg := core.Config{NPEs: benchPEs, HeapPerPE: 64 << 10}
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(cfg, func(pe *core.PE) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}
