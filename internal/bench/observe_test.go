package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"tshmem/internal/arch"
	"tshmem/internal/core"
	"tshmem/internal/stats"
)

// Every probe must run, balance its UDN ledger, and (with tracing) yield a
// decodable Chrome trace — the contract tshmem-bench -probe/-trace exposes.
func TestProbes(t *testing.T) {
	for _, p := range Probes() {
		p := p
		t.Run(p.ID, func(t *testing.T) {
			rep, err := p.Run(ProbeOpts{Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			agg := rep.Stats()
			if agg.UDNMsgsSent != agg.UDNMsgsRecvd {
				t.Errorf("UDN ledger unbalanced: %d sent, %d received",
					agg.UDNMsgsSent, agg.UDNMsgsRecvd)
			}
			if len(rep.Trace()) == 0 {
				t.Error("probe traced no events")
			}
			var buf bytes.Buffer
			if err := rep.TraceTo(&buf); err != nil {
				t.Fatal(err)
			}
			if !json.Valid(buf.Bytes()) {
				t.Error("probe trace is not valid JSON")
			}
		})
	}
}

// The barrier probe's counters must match the linear-chain arithmetic the
// paper's Figure 8 is built on: 2(n-1)+1 signals per 16-PE barrier, for
// probeBarriers explicit barriers plus the one start_pes runs.
func TestBarrierProbeArithmetic(t *testing.T) {
	p, ok := LookupProbe("barrier")
	if !ok {
		t.Fatal("barrier probe missing")
	}
	rep, err := p.Run(ProbeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	agg := rep.Stats()
	instances := int64(probeBarriers + 1)
	if agg.Ops[stats.OpBarrier] != instances*n {
		t.Errorf("Ops[barrier] = %d, want %d", agg.Ops[stats.OpBarrier], instances*n)
	}
	if want := instances * int64(2*(n-1)+1); agg.BarrierRounds != want {
		t.Errorf("BarrierRounds = %d, want %d", agg.BarrierRounds, want)
	}
}

// observedRun is the -stats plumbing: with a collector set it enables
// counters and folds each run; without one it must leave runs unobserved.
func TestObservedRunFoldsIntoCollector(t *testing.T) {
	opt := Options{Obs: new(stats.Collector)}
	cfg := core.Config{Chip: arch.Gx8036(), NPEs: 2, HeapPerPE: 64 << 10}
	for i := 0; i < 2; i++ {
		if _, err := observedRun(opt, cfg, func(pe *core.PE) error {
			return pe.BarrierAll()
		}); err != nil {
			t.Fatal(err)
		}
	}
	runs, agg := opt.Obs.Snapshot()
	if runs != 2 {
		t.Fatalf("folded %d runs, want 2", runs)
	}
	if agg.Ops[stats.OpBarrier] != 2*2*2 { // 2 runs x 2 PEs x (1 explicit + 1 init barrier)
		t.Errorf("Ops[barrier] = %d, want 8", agg.Ops[stats.OpBarrier])
	}

	rep, err := observedRun(Options{}, cfg, func(pe *core.PE) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PECounters) != 0 {
		t.Errorf("run observed without a collector: %d PECounters", len(rep.PECounters))
	}
}
