package bench

import (
	"tshmem/internal/arch"
	"tshmem/internal/core"
	"tshmem/internal/vtime"
)

func init() {
	register("fig8", "Latencies of TSHMEM barrier (best/worst) vs TMC spin barrier", fig8)
	register("fig8c", "Rejected root-broadcast release barrier vs the linear chain", fig8c)
}

// measureTSHMEMBarrier measures one barrier_all with all PEs entering at
// the same virtual instant, reporting the earliest (best-case: the start
// tile) and latest (worst-case: the last tile of the chain) departures.
func measureTSHMEMBarrier(opt Options, chip *arch.Chip, n int, impl core.BarrierImpl) (best, worst vtime.Duration, err error) {
	lefts := make([]vtime.Duration, n)
	cfg := core.Config{Chip: chip, NPEs: n, HeapPerPE: 64 << 10, Barrier: impl}
	_, err = observedRun(opt, cfg, func(pe *core.PE) error {
		if err := pe.AlignClocks(); err != nil {
			return err
		}
		start := pe.Now()
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		lefts[pe.MyPE()] = pe.Now().Sub(start)
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	best, worst = lefts[0], lefts[0]
	for _, d := range lefts {
		if d < best {
			best = d
		}
		if d > worst {
			worst = d
		}
	}
	return best, worst, nil
}

// fig8c compares the linear wait+release chain against the design the
// paper evaluated and rejected: the start tile broadcasting the release
// with standalone sends ("latencies were two times slower", S IV.C.1).
func fig8c(opt Options) (Experiment, error) {
	e := Experiment{
		ID:     "fig8c",
		Title:  "Barrier release strategies on the TILE-Gx36",
		XLabel: "tiles",
		YLabel: "us (worst case)",
	}
	gx := arch.Gx8036()
	chain := Series{Label: "linear chain release"}
	rootRel := Series{Label: "root-broadcast release"}
	for _, n := range []int{4, 8, 16, 24, 32, 36} {
		_, w, err := measureTSHMEMBarrier(opt, gx, n, core.UDNBarrier)
		if err != nil {
			return e, err
		}
		wr, err := measureRootReleaseBarrier(opt, gx, n)
		if err != nil {
			return e, err
		}
		chain.X = append(chain.X, float64(n))
		chain.Y = append(chain.Y, w.Us())
		rootRel.X = append(rootRel.X, float64(n))
		rootRel.Y = append(rootRel.Y, wr.Us())
	}
	e.Series = append(e.Series, chain, rootRel)
	e.Notes = append(e.Notes,
		"paper: the root-broadcast variant measured ~2x slower, so TSHMEM adopted the chain;",
		"here the standalone per-member send calls serialize at the root and reproduce the gap")
	return e, nil
}

func measureRootReleaseBarrier(opt Options, chip *arch.Chip, n int) (vtime.Duration, error) {
	lefts := make([]vtime.Duration, n)
	cfg := core.Config{Chip: chip, NPEs: n, HeapPerPE: 64 << 10}
	_, err := observedRun(opt, cfg, func(pe *core.PE) error {
		if err := pe.AlignClocks(); err != nil {
			return err
		}
		start := pe.Now()
		if err := pe.BarrierRootRelease(core.AllPEs(n)); err != nil {
			return err
		}
		lefts[pe.MyPE()] = pe.Now().Sub(start)
		return nil
	})
	return maxDur(lefts), err
}

// fig8 sweeps the TSHMEM UDN barrier across tile counts on both chips,
// with the TILE-Gx TMC spin barrier for comparison (Figure 8).
func fig8(opt Options) (Experiment, error) {
	e := Experiment{
		ID:     "fig8",
		Title:  "TSHMEM barrier latency vs tiles",
		XLabel: "tiles",
		YLabel: "us",
	}
	tiles := []int{2, 4, 8, 12, 16, 20, 24, 28, 32, 36}
	gx, pro := arch.Gx8036(), arch.Pro64()

	var gxBest, gxWorst, proWorst, spin Series
	gxBest.Label = "Gx36 best-case"
	gxWorst.Label = "Gx36 worst-case"
	proWorst.Label = "Pro64 worst-case"
	spin.Label = "Gx36 TMC spin"
	for _, n := range tiles {
		b, w, err := measureTSHMEMBarrier(opt, gx, n, core.UDNBarrier)
		if err != nil {
			return e, err
		}
		gxBest.X = append(gxBest.X, float64(n))
		gxBest.Y = append(gxBest.Y, b.Us())
		gxWorst.X = append(gxWorst.X, float64(n))
		gxWorst.Y = append(gxWorst.Y, w.Us())

		_, wp, err := measureTSHMEMBarrier(opt, pro, n, core.UDNBarrier)
		if err != nil {
			return e, err
		}
		proWorst.X = append(proWorst.X, float64(n))
		proWorst.Y = append(proWorst.Y, wp.Us())

		spin.X = append(spin.X, float64(n))
		spin.Y = append(spin.Y, gx.SpinBarrier.Latency(n).Us())
	}
	e.Series = append(e.Series, gxBest, gxWorst, proWorst, spin)
	e.Notes = append(e.Notes,
		"paper: Pro64 TSHMEM barrier ~3 us at 36 tiles (vs 47.2 us TMC spin);",
		"on the Gx the TMC spin barrier (1.5 us) outperforms the UDN chain, motivating the",
		"TMCSpinBarrier config option (the paper's open issue)")
	return e, nil
}
