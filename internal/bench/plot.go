package bench

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders the experiment's series as an ASCII chart, the terminal
// equivalent of the paper's figures. X is drawn on a log scale when the
// values span more than two decades (transfer-size sweeps), linear
// otherwise (tile counts); Y is linear from zero.
func (e Experiment) Plot(width, height int) string {
	if len(e.Series) == 0 || width < 20 || height < 5 {
		return ""
	}
	var xMin, xMax, yMax float64
	xMin = math.Inf(1)
	for _, s := range e.Series {
		for i := range s.X {
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMax = math.Max(yMax, s.Y[i])
		}
	}
	if !(xMax > xMin) || yMax <= 0 {
		return ""
	}
	logX := xMin > 0 && xMax/xMin > 100
	fx := func(x float64) float64 {
		if logX {
			return math.Log(x)
		}
		return x
	}
	x0, x1 := fx(xMin), fx(xMax)

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := "*o+x#@%&"
	for si, s := range e.Series {
		m := marks[si%len(marks)]
		for i := range s.X {
			c := int((fx(s.X[i]) - x0) / (x1 - x0) * float64(width-1))
			r := height - 1 - int(s.Y[i]/yMax*float64(height-1))
			if c < 0 || c >= width || r < 0 || r >= height {
				continue
			}
			grid[r][c] = m
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s  (y: 0..%s %s)\n", e.Title, trimFloat(yMax), e.YLabel)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("  +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	scale := "linear"
	if logX {
		scale = "log"
	}
	fmt.Fprintf(&b, "   x: %s..%s %s (%s)\n", trimFloat(xMin), trimFloat(xMax), e.XLabel, scale)
	for si, s := range e.Series {
		fmt.Fprintf(&b, "   %c %s\n", marks[si%len(marks)], s.Label)
	}
	return b.String()
}
