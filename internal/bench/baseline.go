package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"tshmem/internal/core"
	"tshmem/internal/stats"
)

// BaselineSchemaVersion identifies the on-disk layout of a Baseline file.
// Bump it when a field changes meaning; Compare refuses mismatched
// versions so a stale baseline cannot silently pass.
const BaselineSchemaVersion = 1

// A Result is the machine-readable record of one probe run: the virtual
// makespan, the latency quantiles of the probe's primary op class, and
// the non-zero substrate counters. Everything is virtual time, so results
// are bit-identical across hosts and safe to diff in CI.
type Result struct {
	Benchmark  string  `json:"benchmark"`
	Chip       string  `json:"chip"`
	PEs        int     `json:"pes"`
	MakespanUs float64 `json:"makespan_us"`
	// PrimaryOp names the op class the quantiles below describe
	// (e.g. "barrier", "put", "broadcast").
	PrimaryOp string           `json:"primary_op"`
	P50Us     float64          `json:"p50_us"`
	P90Us     float64          `json:"p90_us"`
	P99Us     float64          `json:"p99_us"`
	MaxUs     float64          `json:"max_us"`
	Counters  map[string]int64 `json:"counters"`
}

// A Baseline is a set of probe Results, the unit tshmem-bench -json writes
// and -compare diffs. BENCH_baseline.json at the repo root is the
// committed reference.
type Baseline struct {
	SchemaVersion int      `json:"schema_version"`
	Tool          string   `json:"tool"`
	Results       []Result `json:"results"`
}

// usPerPs converts the picosecond quantiles to the microseconds the
// schema reports.
const usPerPs = 1e-6

// ProbeResult condenses one probe's Report into its baseline Result.
func ProbeResult(p Probe, rep *core.Report) Result {
	agg := rep.Stats()
	h := agg.Hists[stats.HistForOp(p.PrimaryOp)]
	return Result{
		Benchmark:  p.ID,
		Chip:       rep.Chip,
		PEs:        rep.NPEs,
		MakespanUs: rep.MaxTime.Us(),
		PrimaryOp:  p.PrimaryOp.String(),
		P50Us:      float64(h.Quantile(0.50)) * usPerPs,
		P90Us:      float64(h.Quantile(0.90)) * usPerPs,
		P99Us:      float64(h.Quantile(0.99)) * usPerPs,
		MaxUs:      float64(h.MaxPs) * usPerPs,
		Counters:   agg.Map(),
	}
}

// RunSuite runs every registered probe under opts and collects the
// Baseline. Probes are independent deterministic simulations, so they run
// concurrently across host cores; results keep registration order, and
// deterministic virtual time makes two runs of the same tree produce
// identical files regardless of how the host schedules them.
//
// RunSuite iterates the figure probes (the `probes` registry) only —
// NOT the scenario-corpus kernel probes, which are reachable through
// -probe/LookupProbe but would otherwise grow BENCH_baseline.json.
// The baseline file stays byte-identical as the corpus evolves.
func RunSuite(opts ProbeOpts) (*Baseline, error) {
	b := &Baseline{SchemaVersion: BaselineSchemaVersion, Tool: "tshmem-bench"}
	results := make([]Result, len(probes))
	errs := make([]error, len(probes))
	// Each probe already fans out one goroutine per PE; bound the number
	// of concurrently *running* probes to the host parallelism.
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, p := range probes {
		wg.Add(1)
		go func(i int, p Probe) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rep, err := p.Run(opts)
			if err != nil {
				errs[i] = fmt.Errorf("probe %s: %w", p.ID, err)
				return
			}
			results[i] = ProbeResult(p, rep)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	b.Results = results
	return b, nil
}

// WriteBaseline writes b as indented JSON with a trailing newline, the
// exact byte format committed as BENCH_baseline.json.
func WriteBaseline(w io.Writer, b *Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBaseline loads a Baseline from path and validates its schema.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.SchemaVersion != BaselineSchemaVersion {
		return nil, fmt.Errorf("%s: schema version %d, this tool reads %d",
			path, b.SchemaVersion, BaselineSchemaVersion)
	}
	return &b, nil
}

// ParseThreshold parses a regression threshold such as "5%" or "0.05"
// into a fraction. A percent sign divides by 100; thresholds must be
// non-negative.
func ParseThreshold(s string) (float64, error) {
	raw := strings.TrimSpace(s)
	num := strings.TrimSuffix(raw, "%")
	v, err := strconv.ParseFloat(strings.TrimSpace(num), 64)
	if err != nil {
		return 0, fmt.Errorf("threshold %q: %w", s, err)
	}
	if len(num) != len(raw) {
		v /= 100
	}
	if v < 0 {
		return 0, fmt.Errorf("threshold %q is negative", s)
	}
	return v, nil
}

// A Delta is one metric's change between two baselines. Rel is
// (new-old)/old; +0.07 reads as 7% slower.
type Delta struct {
	Benchmark string
	Metric    string
	Old, New  float64
	Rel       float64
	Regressed bool
	// Missing marks a benchmark present in the baseline but absent from
	// the new run — always a regression (coverage was lost).
	Missing bool
}

// compareMetrics are the per-benchmark figures a regression gate watches.
var compareMetrics = []struct {
	name string
	get  func(r Result) float64
}{
	{"makespan_us", func(r Result) float64 { return r.MakespanUs }},
	{"p50_us", func(r Result) float64 { return r.P50Us }},
	{"p99_us", func(r Result) float64 { return r.P99Us }},
}

// Compare diffs cur against base, flagging any watched metric that grew
// by more than threshold (a fraction: 0.05 = 5%). Benchmarks missing from
// cur count as regressions; benchmarks new in cur are ignored (they have
// no reference). Getting faster never regresses.
func Compare(base, cur *Baseline, threshold float64) []Delta {
	curBy := make(map[string]Result, len(cur.Results))
	for _, r := range cur.Results {
		curBy[r.Benchmark] = r
	}
	var out []Delta
	for _, old := range base.Results {
		now, ok := curBy[old.Benchmark]
		if !ok {
			out = append(out, Delta{
				Benchmark: old.Benchmark, Metric: "(present)",
				Regressed: true, Missing: true,
			})
			continue
		}
		for _, m := range compareMetrics {
			d := Delta{
				Benchmark: old.Benchmark, Metric: m.name,
				Old: m.get(old), New: m.get(now),
			}
			switch {
			case d.Old == 0 && d.New == 0:
				// nothing measured on either side
			case d.Old == 0:
				d.Rel = 1 // grew from zero: treat as 100% and gate it
				d.Regressed = 1 > threshold
			default:
				d.Rel = (d.New - d.Old) / d.Old
				d.Regressed = d.Rel > threshold
			}
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Regressed && !out[j].Regressed
	})
	return out
}

// Regressed reports whether any delta crossed the threshold.
func Regressed(deltas []Delta) bool {
	for _, d := range deltas {
		if d.Regressed {
			return true
		}
	}
	return false
}

// FormatCompare renders a Compare result as the human-readable table
// tshmem-bench -compare prints.
func FormatCompare(deltas []Delta, threshold float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-12s %12s %12s %9s\n",
		"benchmark", "metric", "baseline", "current", "delta")
	for _, d := range deltas {
		if d.Missing {
			fmt.Fprintf(&sb, "%-10s %-12s %38s  REGRESSED (missing from current run)\n",
				d.Benchmark, d.Metric, "")
			continue
		}
		mark := ""
		if d.Regressed {
			mark = "  REGRESSED"
		}
		fmt.Fprintf(&sb, "%-10s %-12s %12.3f %12.3f %+8.1f%%%s\n",
			d.Benchmark, d.Metric, d.Old, d.New, d.Rel*100, mark)
	}
	if Regressed(deltas) {
		fmt.Fprintf(&sb, "FAIL: regression beyond %.1f%% threshold\n", threshold*100)
	} else {
		fmt.Fprintf(&sb, "ok: no metric regressed beyond %.1f%%\n", threshold*100)
	}
	return sb.String()
}
