package vtime

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestDurationConversions(t *testing.T) {
	cases := []struct {
		ns   float64
		want Duration
	}{
		{0, 0},
		{-5, 0},
		{1, Nanosecond},
		{0.5, 500 * Picosecond},
		{1000, Microsecond},
		{21.0, 21 * Nanosecond},
	}
	for _, c := range cases {
		if got := FromNs(c.ns); got != c.want {
			t.Errorf("FromNs(%v) = %v, want %v", c.ns, got, c.want)
		}
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want %v", got, 1500*Millisecond)
	}
	d := 1234 * Nanosecond
	if math.Abs(d.Us()-1.234) > 1e-12 {
		t.Errorf("Us() = %v, want 1.234", d.Us())
	}
	if math.Abs(d.Ns()-1234) > 1e-9 {
		t.Errorf("Ns() = %v, want 1234", d.Ns())
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "0.5ns"},
		{1500 * Nanosecond, "1.50us"},
		{2500 * Microsecond, "2.500ms"},
		{3 * Second, "3.0000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %v, want 0", c.Now())
	}
	c.Advance(10 * Nanosecond)
	c.Advance(-5 * Nanosecond) // ignored
	if got := c.Now(); got != Time(10*Nanosecond) {
		t.Fatalf("after advances clock at %v, want 10ns", got)
	}
	if w := c.AdvanceTo(Time(5 * Nanosecond)); w != 0 {
		t.Errorf("AdvanceTo(past) waited %v, want 0", w)
	}
	if w := c.AdvanceTo(Time(25 * Nanosecond)); w != 15*Nanosecond {
		t.Errorf("AdvanceTo(future) waited %v, want 15ns", w)
	}
	if got := c.Now(); got != Time(25*Nanosecond) {
		t.Errorf("clock at %v, want 25ns", got)
	}
}

func TestClockMonotonic(t *testing.T) {
	// Property: no sequence of Advance/AdvanceTo calls moves a clock
	// backwards.
	f := func(steps []int64) bool {
		var c Clock
		prev := c.Now()
		for _, s := range steps {
			s %= int64(Second) // bound to realistic per-op durations
			if s%2 == 0 {
				c.Advance(Duration(s))
			} else {
				c.AdvanceTo(Time(s))
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	a, b := Time(10*Nanosecond), Time(4*Nanosecond)
	if got := a.Sub(b); got != 6*Nanosecond {
		t.Errorf("Sub = %v, want 6ns", got)
	}
	if got := b.Add(6 * Nanosecond); got != a {
		t.Errorf("Add = %v, want %v", got, a)
	}
	if Max(a, b) != a || Max(b, a) != a {
		t.Error("Max picked the wrong operand")
	}
}

func TestResourceSerializes(t *testing.T) {
	var r Resource
	done1 := r.Acquire(Time(0), 10*Nanosecond)
	if done1 != Time(10*Nanosecond) {
		t.Fatalf("first acquire done at %v, want 10ns", done1)
	}
	// A request arriving at t=2 must wait for the resource.
	done2 := r.Acquire(Time(2*Nanosecond), 10*Nanosecond)
	if done2 != Time(20*Nanosecond) {
		t.Fatalf("second acquire done at %v, want 20ns", done2)
	}
	// A request arriving after the resource is idle starts immediately.
	done3 := r.Acquire(Time(100*Nanosecond), 10*Nanosecond)
	if done3 != Time(110*Nanosecond) {
		t.Fatalf("third acquire done at %v, want 110ns", done3)
	}
	if r.NextFree() != done3 {
		t.Errorf("NextFree = %v, want %v", r.NextFree(), done3)
	}
	r.Reset()
	if r.NextFree() != 0 {
		t.Errorf("after Reset NextFree = %v, want 0", r.NextFree())
	}
}

func TestResourceConcurrent(t *testing.T) {
	// Property: total booked service time is conserved under concurrency.
	var r Resource
	const n, svc = 64, 7
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Acquire(0, svc*Nanosecond)
		}()
	}
	wg.Wait()
	if got := r.NextFree(); got != Time(n*svc*Nanosecond) {
		t.Errorf("NextFree = %v, want %v", got, Time(n*svc*Nanosecond))
	}
}
