// Package vtime provides the virtual-time substrate for the simulated
// Tilera platform.
//
// Every processing element (PE) in the simulation owns a Clock that tracks
// elapsed virtual time in picoseconds. Substrate operations (instruction
// execution, cache/memory traffic, on-chip network messages, barriers)
// advance the clock of the PE performing them. Communication merges clocks:
// a message carries the sender's virtual timestamp plus the modeled network
// latency, and the receiver's clock advances to at least that arrival time.
//
// Virtual time is deterministic for a fixed program and model, independent
// of host scheduling, which is what allows the benchmark harness to
// reproduce the paper's latency/bandwidth curves on any machine.
package vtime

import (
	"fmt"
	"sync"
)

// Time is an absolute virtual timestamp in picoseconds since program launch.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// FromNs converts a floating-point nanosecond quantity to a Duration,
// rounding to the nearest picosecond.
func FromNs(ns float64) Duration {
	if ns <= 0 {
		return 0
	}
	return Duration(ns*1000 + 0.5)
}

// FromSeconds converts seconds to a Duration.
func FromSeconds(s float64) Duration {
	return Duration(s*1e12 + 0.5)
}

// Ns reports d in nanoseconds.
func (d Duration) Ns() float64 { return float64(d) / 1e3 }

// Us reports d in microseconds.
func (d Duration) Us() float64 { return float64(d) / 1e6 }

// Ms reports d in milliseconds.
func (d Duration) Ms() float64 { return float64(d) / 1e9 }

// Seconds reports d in seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e12 }

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%.1fns", d.Ns())
	case d < Millisecond:
		return fmt.Sprintf("%.2fus", d.Us())
	case d < Second:
		return fmt.Sprintf("%.3fms", d.Ms())
	default:
		return fmt.Sprintf("%.4fs", d.Seconds())
	}
}

// Ns reports t in nanoseconds since launch.
func (t Time) Ns() float64 { return float64(t) / 1e3 }

// Seconds reports t in seconds since launch.
func (t Time) Seconds() float64 { return float64(t) / 1e12 }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

func (t Time) String() string { return Duration(t).String() }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Clock is a per-PE virtual clock. A Clock must only be advanced by the
// goroutine that owns it; other goroutines observe its value indirectly
// through timestamps carried on messages.
type Clock struct {
	now Time
}

// Now reports the clock's current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative durations are ignored so
// cost models can never move time backwards.
func (c *Clock) Advance(d Duration) {
	if d > 0 {
		c.now += Time(d)
	}
}

// AdvanceTo moves the clock forward to t if t is in the future ("merge"
// with a timestamp received from another PE). It returns how far the clock
// advanced; if t is not in the future the clock is unchanged and AdvanceTo
// returns zero. The returned duration is the time the caller spent waiting
// for the merged event.
func (c *Clock) AdvanceTo(t Time) Duration {
	if t <= c.now {
		return 0
	}
	d := Duration(t - c.now)
	c.now = t
	return d
}

// Set forces the clock to t. Intended for tests and for launcher reset.
func (c *Clock) Set(t Time) { c.now = t }

// Resource models a shared hardware resource (a memory-controller port, a
// home tile's cache bank) serialized in virtual time. Acquire is safe for
// concurrent use.
//
// The approximation: requests are serviced in the real-time order they
// arrive, each no earlier than both its requester's virtual time and the
// resource's next-free time. For barrier-synchronized SPMD phases this
// closely tracks a true event-ordered queue.
type Resource struct {
	mu       sync.Mutex
	nextFree Time
}

// Acquire books the resource for svc starting no earlier than now, and
// returns the virtual completion time.
func (r *Resource) Acquire(now Time, svc Duration) Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := Max(now, r.nextFree)
	done := start.Add(svc)
	r.nextFree = done
	return done
}

// NextFree reports when the resource next becomes idle.
func (r *Resource) NextFree() Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextFree
}

// Reset makes the resource idle as of time zero.
func (r *Resource) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextFree = 0
}
