// Package mesh models the Tilera iMesh: the 2D grid of tiles and the
// dimension-order-routed dynamic networks connecting them.
//
// # Topology and routing
//
// A Geometry maps virtual CPU numbers (PE ranks in the paper's "effective
// test area") onto physical tiles of a chip. Latency experiments use a 6x6
// area on both devices, which on the 8x8 TILEPro64 is a subset of the
// chip, giving rise to the virtual-vs-physical CPU numbering discussed
// under Table III of the paper (virtual tile 6 is physical tile 8).
// Packets route XY dimension-order: horizontally first, then vertically;
// Hops counts the Manhattan distance and DirectionOf classifies the first
// leg, which is what produces the per-direction latency labels of
// Table III.
//
// # Latency model
//
// Packets are cut-through switched at one word per hop per clock cycle, so
// the one-way latency of a words-long packet decomposes into a fixed
// software setup-and-teardown cost plus hop count times the cycle time,
// plus one cycle per additional payload word (Section III.C; Table III
// validates exactly this decomposition):
//
//	latency = setup + hops*hop + (words-1)*cycle + directionEps
//
// where directionEps is a deterministic sub-nanosecond skew reproducing
// the ~1 ns directional spread Table III shows on the TILE-Gx.
//
// Path is the primary entry point: one call resolves coordinates once and
// returns the hop count, initial direction, and the latency split into the
// sender-side injection share (Send, charged to the sender's virtual
// clock) and the in-flight remainder (Wire, carried on the packet as its
// arrival offset). OneWayLatency, SendLatency, and WireLatency are
// conveniences over Path. The split lets the sender proceed after
// injection while the receiver's clock merges with the true arrival time —
// the same overlap the hardware gives a tile after it pushes the last
// payload word into the network.
//
// The hop count surfaced by Path also feeds the observability layer
// (internal/stats): per-PE mesh-hop counters are the hop totals of every
// packet the PE injects.
package mesh
