package mesh

import (
	"fmt"
	"strings"
)

// shadeRunes grade a tile's outgoing traffic relative to the busiest tile:
// idle, <25%, <50%, <75%, >=75%.
var shadeRunes = []byte{' ', '.', ':', '+', '#'}

// shade maps a tile's load v against the busiest tile's load max onto the
// documented legend buckets. The thresholds are compared exactly
// (4v >= 3*max is the ">=75%" bucket), so the busiest tile always renders
// '#' — the old integer bucketing 1+4v/(max+1) could never reach the top
// bucket for max < 3, shading the hottest tile '+'.
func shade(v, max int64) byte {
	switch {
	case v <= 0 || max <= 0:
		return shadeRunes[0]
	case 4*v >= 3*max:
		return shadeRunes[4] // >=75%
	case 2*v >= max:
		return shadeRunes[3] // >=50%
	case 4*v >= max:
		return shadeRunes[2] // >=25%
	default:
		return shadeRunes[1]
	}
}

// digits reports the decimal width of v (minimum 1).
func digits(v int64) int {
	n := 1
	for v >= 10 {
		v /= 10
		n++
	}
	return n
}

// ASCII renders the utilization as a text heatmap: the tile grid with the
// words forwarded over every directed link (east > and west < between
// horizontal neighbors, south v and north ^ between vertical neighbors),
// each tile shaded by its outgoing traffic, followed by the queue
// high-water marks and a ranked hottest-links list. This is what
// tshmem-bench -heatmap prints; docs/OBSERVABILITY.md holds the legend.
func (u *Utilization) ASCII() string {
	if u == nil || u.Width == 0 || u.Height == 0 {
		return "(no mesh utilization recorded)\n"
	}
	maxLink := u.MaxLink()
	var maxTile int64
	for y := 0; y < u.Height; y++ {
		for x := 0; x < u.Width; x++ {
			if l := u.TileLoad(x, y); l > maxTile {
				maxTile = l
			}
		}
	}
	n := digits(maxLink) // digits of the busiest link
	// Size the tile cell from the largest tile ID (as the link columns are
	// sized from the busiest link) so >=1000-tile grids stay aligned; the
	// floor of 3 digits preserves the classic small-grid layout.
	tw := digits(int64(u.Width*u.Height - 1))
	if tw < 3 {
		tw = 3
	}
	cw := 2*n + 3 // "v<words> ^<words>" vertical cell
	if cw < tw+4 {
		cw = tw + 4 // "[nnn s]" tile cell
	}
	gw := n + 3 // ">{words} " horizontal gap

	var b strings.Builder
	fmt.Fprintf(&b, "iMesh link utilization: %s, %dx%d area (payload words per directed link)\n",
		u.Chip, u.Width, u.Height)
	fmt.Fprintf(&b, "busiest link %d words; tile shade by outgoing words: .<25%% :<50%% +<75%% #>=75%%\n\n",
		maxLink)
	emit := func(cells, gaps []string) {
		var line strings.Builder
		for x := range cells {
			fmt.Fprintf(&line, "%-*s", cw, cells[x])
			if x < len(gaps) {
				fmt.Fprintf(&line, "%-*s", gw, gaps[x])
			}
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	for y := 0; y < u.Height; y++ {
		tiles := make([]string, u.Width)
		east := make([]string, u.Width-1)
		west := make([]string, u.Width-1)
		for x := 0; x < u.Width; x++ {
			tiles[x] = fmt.Sprintf("[%*d %c]", tw, y*u.Width+x, shade(u.TileLoad(x, y), maxTile))
			if x < u.Width-1 {
				east[x] = fmt.Sprintf(">%d", u.Link(x, y, LinkEast))
				west[x] = fmt.Sprintf("<%d", u.Link(x+1, y, LinkWest))
			}
		}
		emit(tiles, east)
		if u.Width > 1 {
			emit(make([]string, u.Width), west)
		}
		if y < u.Height-1 {
			vert := make([]string, u.Width)
			for x := 0; x < u.Width; x++ {
				vert[x] = fmt.Sprintf("v%d ^%d", u.Link(x, y, LinkSouth), u.Link(x, y+1, LinkNorth))
			}
			emit(vert, make([]string, u.Width-1))
		}
	}
	if m := u.MaxQueueHWM(); m > 0 {
		qw := digits(m)
		if qw < 3 {
			qw = 3
		}
		b.WriteString("\nreceive-queue occupancy high-water mark per tile:\n")
		for y := 0; y < u.Height; y++ {
			b.WriteString(" ")
			for x := 0; x < u.Width; x++ {
				fmt.Fprintf(&b, " %*d", qw, u.QueueHWM(x, y))
			}
			b.WriteByte('\n')
		}
	}
	if hot := u.HotLinks(8); len(hot) > 0 {
		b.WriteString("\nhottest links:\n")
		for _, l := range hot {
			bar := int(20 * l.Words / maxLink)
			fmt.Fprintf(&b, "  %v->%v %-5s %*d words %4d pkts  %s\n",
				l.From, l.To, l.Dir, n, l.Words, l.Packets, strings.Repeat("#", bar))
		}
	}
	return b.String()
}

// SVG renders the utilization as a standalone SVG document: tiles as
// squares shaded by outgoing traffic, directed links as arrows whose
// stroke width scales with the words carried (each direction drawn offset
// from the link axis). Every element carries a <title> tooltip with the
// exact counts.
func (u *Utilization) SVG() string {
	if u == nil || u.Width == 0 || u.Height == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="200" height="40"><text x="8" y="24">no mesh utilization recorded</text></svg>`
	}
	const (
		cell = 90 // grid pitch
		tile = 44 // tile square side
		off  = 7  // per-direction offset from the link axis
	)
	maxLink := u.MaxLink()
	var maxTile int64
	for y := 0; y < u.Height; y++ {
		for x := 0; x < u.Width; x++ {
			if l := u.TileLoad(x, y); l > maxTile {
				maxTile = l
			}
		}
	}
	center := func(x, y int) (float64, float64) {
		return float64(50 + x*cell), float64(50 + y*cell)
	}
	w := 100 + (u.Width-1)*cell
	h := 130 + (u.Height-1)*cell

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n", w, h)
	fmt.Fprintf(&b, `<text x="8" y="%d">%s %dx%d iMesh: words per directed link (busiest %d)</text>`+"\n",
		h-12, u.Chip, u.Width, u.Height, maxLink)
	// Links first so tiles draw over the line ends.
	for y := 0; y < u.Height; y++ {
		for x := 0; x < u.Width; x++ {
			for d := LinkDir(0); d < NumLinkDirs; d++ {
				words := u.Link(x, y, d)
				if words == 0 {
					continue
				}
				dx, dy := d.delta()
				x1, y1 := center(x, y)
				x2, y2 := center(x+dx, y+dy)
				// Offset each direction sideways so the two opposing
				// links of a channel stay distinguishable.
				ox, oy := float64(dy)*off, float64(dx)*off
				sw := 1 + 6*float64(words)/float64(maxLink)
				fmt.Fprintf(&b, `<line x1="%.0f" y1="%.0f" x2="%.0f" y2="%.0f" stroke="#c0392b" stroke-opacity="0.8" stroke-width="%.1f"><title>(%d,%d)->(%d,%d) %s: %d words</title></line>`+"\n",
					x1+ox, y1+oy, x2+ox, y2+oy, sw, x, y, x+dx, y+dy, d, words)
			}
		}
	}
	for y := 0; y < u.Height; y++ {
		for x := 0; x < u.Width; x++ {
			cx, cy := center(x, y)
			load := u.TileLoad(x, y)
			// Shade from near-white (idle) toward steel blue (busiest).
			frac := 0.0
			if maxTile > 0 {
				frac = float64(load) / float64(maxTile)
			}
			r := int(245 - 175*frac)
			g := int(247 - 117*frac)
			bl := int(250 - 70*frac)
			fmt.Fprintf(&b, `<rect x="%.0f" y="%.0f" width="%d" height="%d" fill="rgb(%d,%d,%d)" stroke="#333"><title>tile %d (%d,%d): %d words out, queue hwm %d</title></rect>`+"\n",
				cx-tile/2, cy-tile/2, tile, tile, r, g, bl,
				y*u.Width+x, x, y, load, u.QueueHWM(x, y))
			fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" text-anchor="middle">%d</text>`+"\n", cx, cy+4, y*u.Width+x)
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}
