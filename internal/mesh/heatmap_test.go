package mesh

import (
	"strings"
	"testing"

	"tshmem/internal/arch"
)

// TestShadeLegend pins shade() to the documented legend buckets
// (".<25% :<50% +<75% #>=75%") across the thresholds, including the
// small-max cases the old integer bucketing 1+4v/(max+1) got wrong: for
// max < 3 it could never reach the top bucket, so the busiest tile of a
// lightly loaded mesh rendered '+' instead of '#'.
func TestShadeLegend(t *testing.T) {
	cases := []struct {
		v, max int64
		want   byte
	}{
		{0, 0, ' '},   // idle mesh
		{0, 100, ' '}, // idle tile
		{-1, 100, ' '},
		{1, 1, '#'}, // busiest tile at tiny loads: the regression
		{2, 2, '#'},
		{3, 3, '#'},
		{100, 100, '#'},
		{75, 100, '#'}, // exactly 75% is the top bucket
		{74, 100, '+'},
		{50, 100, '+'}, // exactly 50%
		{49, 100, ':'},
		{25, 100, ':'}, // exactly 25%
		{24, 100, '.'},
		{1, 100, '.'},
		{3, 4, '#'}, // small-denominator threshold arithmetic
		{2, 4, '+'},
		{1, 4, ':'},
		{1, 5, '.'},
	}
	for _, c := range cases {
		if got := shade(c.v, c.max); got != c.want {
			t.Errorf("shade(%d, %d) = %q, want %q", c.v, c.max, got, c.want)
		}
	}
}

// TestShadeBusiestAlwaysHot is the legend's invariant in general form:
// whatever the scale, the busiest tile renders '#'.
func TestShadeBusiestAlwaysHot(t *testing.T) {
	for _, m := range []int64{1, 2, 3, 5, 7, 100, 1 << 40} {
		if got := shade(m, m); got != '#' {
			t.Errorf("shade(%d, %d) = %q, want '#'", m, m, got)
		}
	}
}

// TestASCIIAlignmentLargeGrid renders a 40x40 synthetic area, where tile
// IDs reach 1599 and overflow the old fixed 3-digit cell. Every tile row
// must place its cells at identical columns, and 4-digit IDs must render
// in full.
func TestASCIIAlignmentLargeGrid(t *testing.T) {
	geo := FullGeometry(arch.Synthetic(40, 40))
	ls := NewLinkStats(geo)
	// Traffic touching the extreme corners so both tile 0 and tile 1599
	// appear in rendered (shaded or not) rows with live numbers around.
	ls.RecordRoute(0, 39*40+39, 7)
	ls.RecordRoute(39*40+39, 0, 11)
	ls.RecordRoute(5, 1200, 100)
	out := ls.Snapshot().ASCII()

	if !strings.Contains(out, "[   0 ") && !strings.Contains(out, "[   0#") &&
		!strings.Contains(out, "[   0.") && !strings.Contains(out, "[   0:") &&
		!strings.Contains(out, "[   0+") {
		t.Errorf("tile 0 not rendered 4 digits wide:\n%s", firstLines(out, 6))
	}
	if !strings.Contains(out, "[1599 ") {
		t.Errorf("tile 1599 truncated or misrendered:\n%s", lastLines(out, 8))
	}

	// Alignment: every tile row opens its cells at the same columns.
	var want []int
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "[") {
			continue
		}
		var cols []int
		for i := 0; i < len(line); i++ {
			if line[i] == '[' {
				cols = append(cols, i)
			}
		}
		if want == nil {
			want = cols
			if len(want) != 40 {
				t.Fatalf("tile row has %d cells, want 40: %q", len(want), line)
			}
			continue
		}
		if len(cols) != len(want) {
			t.Fatalf("tile row has %d cells, want %d: %q", len(cols), len(want), line)
		}
		for i := range cols {
			if cols[i] != want[i] {
				t.Fatalf("tile cell %d opens at column %d, want %d: %q", i, cols[i], want[i], line)
			}
		}
	}
	if want == nil {
		t.Fatal("no tile rows rendered")
	}
}

// TestASCIISmallGridKeepsClassicLayout pins the 3-digit floor: grids with
// <=3-digit tile IDs keep the historical "[  0 " cell so existing golden
// output (and eyeballs) stay stable.
func TestASCIISmallGridKeepsClassicLayout(t *testing.T) {
	geo := FullGeometry(arch.Synthetic(2, 2))
	ls := NewLinkStats(geo)
	ls.RecordRoute(0, 3, 4)
	out := ls.Snapshot().ASCII()
	if !strings.Contains(out, "[  0 ") && !strings.Contains(out, "[  0#") {
		t.Errorf("small grid lost the 3-digit cell:\n%s", out)
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

func lastLines(s string, n int) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n")
}
