package mesh

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// LinkDir identifies one of a tile's four outgoing iMesh links.
type LinkDir int

const (
	LinkEast  LinkDir = iota // +X
	LinkWest                 // -X
	LinkSouth                // +Y
	LinkNorth                // -Y

	NumLinkDirs
)

func (d LinkDir) String() string {
	switch d {
	case LinkEast:
		return "east"
	case LinkWest:
		return "west"
	case LinkSouth:
		return "south"
	case LinkNorth:
		return "north"
	default:
		return fmt.Sprintf("LinkDir(%d)", int(d))
	}
}

// delta is the coordinate step one hop in direction d takes.
func (d LinkDir) delta() (dx, dy int) {
	switch d {
	case LinkEast:
		return 1, 0
	case LinkWest:
		return -1, 0
	case LinkSouth:
		return 0, 1
	default:
		return 0, -1
	}
}

// LinkStats accumulates per-directed-link utilization of a test area's
// iMesh: payload words and packets forwarded over each outgoing link of
// each tile, plus per-tile receive-queue occupancy high-water marks.
//
// Unlike the per-PE stats.Recorder, links are shared by construction —
// every route crosses other tiles' links — so the counters are atomics:
// any PE goroutine may record concurrently. Snapshot after the run for a
// plain-value view.
type LinkStats struct {
	geo     Geometry
	words   []atomic.Int64 // [tile*NumLinkDirs + dir] payload words forwarded
	packets []atomic.Int64 // same index: packets forwarded
	qhwm    []atomic.Int64 // [tile] receive-queue occupancy high-water mark
}

// NewLinkStats builds a zeroed accounting block for geo.
func NewLinkStats(geo Geometry) *LinkStats {
	n := geo.Tiles()
	return &LinkStats{
		geo:     geo,
		words:   make([]atomic.Int64, n*int(NumLinkDirs)),
		packets: make([]atomic.Int64, n*int(NumLinkDirs)),
		qhwm:    make([]atomic.Int64, n),
	}
}

// RecordRoute charges a words-long transfer from virtual CPU src to dst
// onto every directed link of its XY dimension-order route (X leg first,
// then Y — the iMesh routing the latency model assumes). Self-routes and
// out-of-area endpoints record nothing. Nil-safe: accounting defaults off.
func (ls *LinkStats) RecordRoute(src, dst, words int) {
	if ls == nil || words <= 0 || src == dst {
		return
	}
	w := ls.geo.Width
	if src < 0 || src >= len(ls.qhwm) || dst < 0 || dst >= len(ls.qhwm) {
		return
	}
	ax, ay := src%w, src/w
	bx, by := dst%w, dst/w
	// Walk the XY route with an incrementally-stepped link index: one
	// atomic pair per directed link, no per-hop closure or coordinate
	// re-derivation. Stepping east/west moves the tile index by 1 link
	// block; south/north by a full row of link blocks.
	wn := int64(words)
	const dirs = int(NumLinkDirs)
	i := (ay*w + ax) * dirs
	for ; ax < bx; ax++ {
		ls.words[i+int(LinkEast)].Add(wn)
		ls.packets[i+int(LinkEast)].Add(1)
		i += dirs
	}
	for ; ax > bx; ax-- {
		ls.words[i+int(LinkWest)].Add(wn)
		ls.packets[i+int(LinkWest)].Add(1)
		i -= dirs
	}
	for ; ay < by; ay++ {
		ls.words[i+int(LinkSouth)].Add(wn)
		ls.packets[i+int(LinkSouth)].Add(1)
		i += w * dirs
	}
	for ; ay > by; ay-- {
		ls.words[i+int(LinkNorth)].Add(wn)
		ls.packets[i+int(LinkNorth)].Add(1)
		i -= w * dirs
	}
}

// RecordQueueDepth raises tile's receive-queue occupancy high-water mark
// to depth if it exceeds the current mark.
func (ls *LinkStats) RecordQueueDepth(tile, depth int) {
	if ls == nil || tile < 0 || tile >= len(ls.qhwm) {
		return
	}
	m := &ls.qhwm[tile]
	for {
		cur := m.Load()
		if int64(depth) <= cur || m.CompareAndSwap(cur, int64(depth)) {
			return
		}
	}
}

// Snapshot copies the live counters into a plain-value Utilization for
// rendering and comparison. Take it after the run (or accept a torn but
// monotone view mid-run).
func (ls *LinkStats) Snapshot() *Utilization {
	if ls == nil {
		return nil
	}
	u := &Utilization{
		Chip:     ls.geo.Chip().Name,
		Width:    ls.geo.Width,
		Height:   ls.geo.Height,
		Words:    make([]int64, len(ls.words)),
		Packets:  make([]int64, len(ls.packets)),
		QueueHWM: make([]int64, len(ls.qhwm)),
	}
	for i := range ls.words {
		u.Words[i] = ls.words[i].Load()
		u.Packets[i] = ls.packets[i].Load()
	}
	for i := range ls.qhwm {
		u.QueueHWM[i] = ls.qhwm[i].Load()
	}
	return u
}

// Utilization is a point-in-time copy of a LinkStats block: per-directed-
// link words/packets (indexed tile*NumLinkDirs+dir) and per-tile queue
// high-water marks over a Width x Height test area.
type Utilization struct {
	Chip          string
	Width, Height int
	Words         []int64
	Packets       []int64
	QueueHWM      []int64
}

// Link reports the payload words forwarded over tile (x,y)'s outgoing
// link in direction d. Out-of-area queries return 0.
func (u *Utilization) Link(x, y int, d LinkDir) int64 {
	if u == nil || x < 0 || x >= u.Width || y < 0 || y >= u.Height {
		return 0
	}
	return u.Words[(y*u.Width+x)*int(NumLinkDirs)+int(d)]
}

// TileLoad reports the words leaving tile (x,y) over all four links — the
// through-plus-injected traffic the heatmap shades tiles by.
func (u *Utilization) TileLoad(x, y int) int64 {
	var t int64
	for d := LinkDir(0); d < NumLinkDirs; d++ {
		t += u.Link(x, y, d)
	}
	return t
}

// MaxLink reports the busiest directed link's word count.
func (u *Utilization) MaxLink() int64 {
	var m int64
	for _, w := range u.Words {
		if w > m {
			m = w
		}
	}
	return m
}

// MaxQueueHWM reports the largest per-tile queue high-water mark.
func (u *Utilization) MaxQueueHWM() int64 {
	var m int64
	for _, q := range u.QueueHWM {
		if q > m {
			m = q
		}
	}
	return m
}

// LinkLoad describes one directed link for the hot-links ranking.
type LinkLoad struct {
	From, To Coord
	Dir      LinkDir
	Words    int64
	Packets  int64
}

// HotLinks returns the k busiest directed links by words, descending;
// ties break toward the lexicographically first (y, x, dir). Links that
// carried nothing are omitted.
func (u *Utilization) HotLinks(k int) []LinkLoad {
	if u == nil {
		return nil
	}
	var all []LinkLoad
	for y := 0; y < u.Height; y++ {
		for x := 0; x < u.Width; x++ {
			for d := LinkDir(0); d < NumLinkDirs; d++ {
				w := u.Link(x, y, d)
				if w == 0 {
					continue
				}
				dx, dy := d.delta()
				all = append(all, LinkLoad{
					From: Coord{X: x, Y: y}, To: Coord{X: x + dx, Y: y + dy},
					Dir: d, Words: w,
					Packets: u.Packets[(y*u.Width+x)*int(NumLinkDirs)+int(d)],
				})
			}
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Words > all[j].Words })
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// Add folds o's counters into u (same-shape areas only; used to merge
// per-chip views when every chip runs the same test area).
func (u *Utilization) Add(o *Utilization) error {
	if u.Width != o.Width || u.Height != o.Height {
		return fmt.Errorf("mesh: cannot fold %dx%d utilization into %dx%d",
			o.Width, o.Height, u.Width, u.Height)
	}
	for i := range u.Words {
		u.Words[i] += o.Words[i]
		u.Packets[i] += o.Packets[i]
	}
	for i := range u.QueueHWM {
		if o.QueueHWM[i] > u.QueueHWM[i] {
			u.QueueHWM[i] = o.QueueHWM[i]
		}
	}
	return nil
}
