package mesh

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// LinkDir identifies one of a tile's four outgoing iMesh links.
type LinkDir int

const (
	LinkEast  LinkDir = iota // +X
	LinkWest                 // -X
	LinkSouth                // +Y
	LinkNorth                // -Y

	NumLinkDirs
)

func (d LinkDir) String() string {
	switch d {
	case LinkEast:
		return "east"
	case LinkWest:
		return "west"
	case LinkSouth:
		return "south"
	case LinkNorth:
		return "north"
	default:
		return fmt.Sprintf("LinkDir(%d)", int(d))
	}
}

// delta is the coordinate step one hop in direction d takes.
func (d LinkDir) delta() (dx, dy int) {
	switch d {
	case LinkEast:
		return 1, 0
	case LinkWest:
		return -1, 0
	case LinkSouth:
		return 0, 1
	default:
		return 0, -1
	}
}

// blockTiles is the tile granularity of the lazy accounting blocks: 64
// tiles' worth of link counters (~4.5 kB) per block. Traffic confined to a
// corner of a 64x64 synthetic mesh allocates only the blocks it crosses,
// so an idle geometry costs one pointer slice instead of dense arrays over
// all 4096 tiles.
const blockTiles = 64

// linkBlock holds the live atomic counters for one blockTiles-tile span:
// payload words and packets per outgoing link, plus the receive-queue
// occupancy high-water mark per tile.
type linkBlock struct {
	words   [blockTiles * int(NumLinkDirs)]atomic.Int64
	packets [blockTiles * int(NumLinkDirs)]atomic.Int64
	qhwm    [blockTiles]atomic.Int64
}

// LinkStats accumulates per-directed-link utilization of a test area's
// iMesh: payload words and packets forwarded over each outgoing link of
// each tile, plus per-tile receive-queue occupancy high-water marks.
//
// Unlike the per-PE stats.Recorder, links are shared by construction —
// every route crosses other tiles' links — so the counters are atomics:
// any PE goroutine may record concurrently. Storage is block-lazy: a
// fixed-size counter block is CAS-installed the first time any tile in its
// span records, so large mostly-idle meshes stay sparse. Snapshot after
// the run for a plain-value view.
type LinkStats struct {
	geo    Geometry
	tiles  int
	blocks []atomic.Pointer[linkBlock]
}

// NewLinkStats builds an empty accounting structure for geo. No counter
// blocks are allocated until traffic is recorded.
func NewLinkStats(geo Geometry) *LinkStats {
	n := geo.Tiles()
	return &LinkStats{
		geo:    geo,
		tiles:  n,
		blocks: make([]atomic.Pointer[linkBlock], (n+blockTiles-1)/blockTiles),
	}
}

// block returns tile's counter block, installing it on first touch. A lost
// CAS race simply adopts the winner's block.
func (ls *LinkStats) block(tile int) *linkBlock {
	p := &ls.blocks[tile/blockTiles]
	if b := p.Load(); b != nil {
		return b
	}
	b := new(linkBlock)
	if !p.CompareAndSwap(nil, b) {
		b = p.Load()
	}
	return b
}

// RecordRoute charges a words-long transfer from virtual CPU src to dst
// onto every directed link of its XY dimension-order route (X leg first,
// then Y — the iMesh routing the latency model assumes). Self-routes and
// out-of-area endpoints record nothing. Nil-safe: accounting defaults off.
func (ls *LinkStats) RecordRoute(src, dst, words int) {
	if ls == nil || words <= 0 || src == dst {
		return
	}
	if src < 0 || src >= ls.tiles || dst < 0 || dst >= ls.tiles {
		return
	}
	w := ls.geo.Width
	ax, ay := src%w, src/w
	bx, by := dst%w, dst/w
	// Walk the XY route tile by tile: stepping east/west moves the tile
	// index by 1, south/north by a full row.
	wn := int64(words)
	t := src
	for ; ax < bx; ax++ {
		ls.charge(t, LinkEast, wn)
		t++
	}
	for ; ax > bx; ax-- {
		ls.charge(t, LinkWest, wn)
		t--
	}
	for ; ay < by; ay++ {
		ls.charge(t, LinkSouth, wn)
		t += w
	}
	for ; ay > by; ay-- {
		ls.charge(t, LinkNorth, wn)
		t -= w
	}
}

// charge adds one packet of wn words to tile's outgoing link d.
func (ls *LinkStats) charge(tile int, d LinkDir, wn int64) {
	b := ls.block(tile)
	i := (tile%blockTiles)*int(NumLinkDirs) + int(d)
	b.words[i].Add(wn)
	b.packets[i].Add(1)
}

// RecordQueueDepth raises tile's receive-queue occupancy high-water mark
// to depth if it exceeds the current mark.
func (ls *LinkStats) RecordQueueDepth(tile, depth int) {
	if ls == nil || tile < 0 || tile >= ls.tiles || depth <= 0 {
		return
	}
	m := &ls.block(tile).qhwm[tile%blockTiles]
	for {
		cur := m.Load()
		if int64(depth) <= cur || m.CompareAndSwap(cur, int64(depth)) {
			return
		}
	}
}

// utilBlock is the plain-value snapshot of one linkBlock.
type utilBlock struct {
	words   [blockTiles * int(NumLinkDirs)]int64
	packets [blockTiles * int(NumLinkDirs)]int64
	qhwm    [blockTiles]int64
}

// Snapshot copies the live counters into a plain-value Utilization for
// rendering and comparison. Take it after the run (or accept a torn but
// monotone view mid-run). Only touched blocks are materialized, so the
// snapshot stays as sparse as the traffic.
func (ls *LinkStats) Snapshot() *Utilization {
	if ls == nil {
		return nil
	}
	u := &Utilization{
		Chip:   ls.geo.Chip().Name,
		Width:  ls.geo.Width,
		Height: ls.geo.Height,
		blocks: make([]*utilBlock, len(ls.blocks)),
	}
	for bi := range ls.blocks {
		lb := ls.blocks[bi].Load()
		if lb == nil {
			continue
		}
		ub := new(utilBlock)
		for i := range lb.words {
			ub.words[i] = lb.words[i].Load()
			ub.packets[i] = lb.packets[i].Load()
		}
		for i := range lb.qhwm {
			ub.qhwm[i] = lb.qhwm[i].Load()
		}
		u.blocks[bi] = ub
	}
	return u
}

// Utilization is a point-in-time copy of a LinkStats block: per-directed-
// link words/packets and per-tile queue high-water marks over a
// Width x Height test area, stored in the same sparse blocks as the live
// counters. Access goes through Link, Packets, QueueHWM, and the derived
// views; untouched regions read as zero.
type Utilization struct {
	Chip          string
	Width, Height int
	blocks        []*utilBlock
}

// block returns tile's snapshot block, or nil if that span saw no traffic.
func (u *Utilization) block(tile int) *utilBlock {
	if bi := tile / blockTiles; bi < len(u.blocks) {
		return u.blocks[bi]
	}
	return nil
}

// ensure returns tile's snapshot block, allocating it if absent (Add).
func (u *Utilization) ensure(tile int) *utilBlock {
	bi := tile / blockTiles
	for bi >= len(u.blocks) {
		u.blocks = append(u.blocks, nil)
	}
	if u.blocks[bi] == nil {
		u.blocks[bi] = new(utilBlock)
	}
	return u.blocks[bi]
}

// Link reports the payload words forwarded over tile (x,y)'s outgoing
// link in direction d. Out-of-area queries return 0.
func (u *Utilization) Link(x, y int, d LinkDir) int64 {
	if u == nil || x < 0 || x >= u.Width || y < 0 || y >= u.Height {
		return 0
	}
	tile := y*u.Width + x
	b := u.block(tile)
	if b == nil {
		return 0
	}
	return b.words[(tile%blockTiles)*int(NumLinkDirs)+int(d)]
}

// Packets reports the packets forwarded over tile (x,y)'s outgoing link in
// direction d. Out-of-area queries return 0.
func (u *Utilization) Packets(x, y int, d LinkDir) int64 {
	if u == nil || x < 0 || x >= u.Width || y < 0 || y >= u.Height {
		return 0
	}
	tile := y*u.Width + x
	b := u.block(tile)
	if b == nil {
		return 0
	}
	return b.packets[(tile%blockTiles)*int(NumLinkDirs)+int(d)]
}

// QueueHWM reports tile (x,y)'s receive-queue occupancy high-water mark.
// Out-of-area queries return 0.
func (u *Utilization) QueueHWM(x, y int) int64 {
	if u == nil || x < 0 || x >= u.Width || y < 0 || y >= u.Height {
		return 0
	}
	tile := y*u.Width + x
	b := u.block(tile)
	if b == nil {
		return 0
	}
	return b.qhwm[tile%blockTiles]
}

// TileLoad reports the words leaving tile (x,y) over all four links — the
// through-plus-injected traffic the heatmap shades tiles by.
func (u *Utilization) TileLoad(x, y int) int64 {
	var t int64
	for d := LinkDir(0); d < NumLinkDirs; d++ {
		t += u.Link(x, y, d)
	}
	return t
}

// TotalWords reports the payload words summed over every directed link —
// per-hop accounting, so a packet crossing h links counts h times.
func (u *Utilization) TotalWords() int64 {
	if u == nil {
		return 0
	}
	var t int64
	for _, b := range u.blocks {
		if b == nil {
			continue
		}
		for _, w := range b.words {
			t += w
		}
	}
	return t
}

// MaxLink reports the busiest directed link's word count.
func (u *Utilization) MaxLink() int64 {
	if u == nil {
		return 0
	}
	var m int64
	for _, b := range u.blocks {
		if b == nil {
			continue
		}
		for _, w := range b.words {
			if w > m {
				m = w
			}
		}
	}
	return m
}

// MaxQueueHWM reports the largest per-tile queue high-water mark.
func (u *Utilization) MaxQueueHWM() int64 {
	if u == nil {
		return 0
	}
	var m int64
	for _, b := range u.blocks {
		if b == nil {
			continue
		}
		for _, q := range b.qhwm {
			if q > m {
				m = q
			}
		}
	}
	return m
}

// LinkLoad describes one directed link for the hot-links ranking.
type LinkLoad struct {
	From, To Coord
	Dir      LinkDir
	Words    int64
	Packets  int64
}

// HotLinks returns the k busiest directed links by words, descending;
// ties break toward the lexicographically first (y, x, dir). Links that
// carried nothing are omitted.
func (u *Utilization) HotLinks(k int) []LinkLoad {
	if u == nil {
		return nil
	}
	var all []LinkLoad
	for y := 0; y < u.Height; y++ {
		for x := 0; x < u.Width; x++ {
			if u.block(y*u.Width+x) == nil {
				continue
			}
			for d := LinkDir(0); d < NumLinkDirs; d++ {
				w := u.Link(x, y, d)
				if w == 0 {
					continue
				}
				dx, dy := d.delta()
				all = append(all, LinkLoad{
					From: Coord{X: x, Y: y}, To: Coord{X: x + dx, Y: y + dy},
					Dir: d, Words: w,
					Packets: u.Packets(x, y, d),
				})
			}
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Words > all[j].Words })
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// Add folds o's counters into u (same-shape areas only; used to merge
// per-chip views when every chip runs the same test area). Blocks o never
// touched stay unallocated in u as well.
func (u *Utilization) Add(o *Utilization) error {
	if u.Width != o.Width || u.Height != o.Height {
		return fmt.Errorf("mesh: cannot fold %dx%d utilization into %dx%d",
			o.Width, o.Height, u.Width, u.Height)
	}
	for bi, ob := range o.blocks {
		if ob == nil {
			continue
		}
		ub := u.ensure(bi * blockTiles)
		for i := range ub.words {
			ub.words[i] += ob.words[i]
			ub.packets[i] += ob.packets[i]
		}
		for i := range ub.qhwm {
			if ob.qhwm[i] > ub.qhwm[i] {
				ub.qhwm[i] = ob.qhwm[i]
			}
		}
	}
	return nil
}
