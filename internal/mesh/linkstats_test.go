package mesh

import (
	"strings"
	"sync"
	"testing"

	"tshmem/internal/arch"
)

func testGeo(t *testing.T, w, h int) Geometry {
	t.Helper()
	g, err := NewGeometry(arch.Gx8036(), w, h)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// A route must charge every link of its X-then-Y dimension-order path and
// nothing else.
func TestRecordRouteXYPath(t *testing.T) {
	ls := NewLinkStats(testGeo(t, 4, 4))
	// Virtual 0 = (0,0) to virtual 10 = (2,2): east, east, south, south.
	ls.RecordRoute(0, 10, 5)
	u := ls.Snapshot()
	want := []struct {
		x, y int
		d    LinkDir
	}{
		{0, 0, LinkEast}, {1, 0, LinkEast}, {2, 0, LinkSouth}, {2, 1, LinkSouth},
	}
	for _, l := range want {
		if got := u.Link(l.x, l.y, l.d); got != 5 {
			t.Errorf("link (%d,%d) %v = %d words, want 5", l.x, l.y, l.d, got)
		}
	}
	var total int64
	for y := 0; y < u.Height; y++ {
		for x := 0; x < u.Width; x++ {
			for d := LinkDir(0); d < NumLinkDirs; d++ {
				total += u.Link(x, y, d)
			}
		}
	}
	if total != 4*5 {
		t.Errorf("total words on links = %d, want 20 (4 hops x 5 words)", total)
	}
	// Reverse route uses the opposite directions: west/north legs, and
	// again X before Y (so the turn corner differs from the forward path).
	ls2 := NewLinkStats(testGeo(t, 4, 4))
	ls2.RecordRoute(10, 0, 1)
	u2 := ls2.Snapshot()
	for _, l := range []struct {
		x, y int
		d    LinkDir
	}{
		{2, 2, LinkWest}, {1, 2, LinkWest}, {0, 2, LinkNorth}, {0, 1, LinkNorth},
	} {
		if got := u2.Link(l.x, l.y, l.d); got != 1 {
			t.Errorf("reverse link (%d,%d) %v = %d, want 1", l.x, l.y, l.d, got)
		}
	}
}

func TestRecordRouteEdgeCases(t *testing.T) {
	ls := NewLinkStats(testGeo(t, 4, 4))
	ls.RecordRoute(3, 3, 7)  // self: nothing
	ls.RecordRoute(0, 99, 7) // out of area: nothing
	ls.RecordRoute(-1, 2, 7) // out of area: nothing
	ls.RecordRoute(0, 1, 0)  // zero words: nothing
	var nilLS *LinkStats
	nilLS.RecordRoute(0, 1, 4) // nil-safe
	nilLS.RecordQueueDepth(0, 3)
	if nilLS.Snapshot() != nil {
		t.Error("nil Snapshot must be nil")
	}
	if m := ls.Snapshot().MaxLink(); m != 0 {
		t.Errorf("degenerate routes recorded %d words", m)
	}
}

func TestQueueDepthHighWater(t *testing.T) {
	ls := NewLinkStats(testGeo(t, 2, 2))
	ls.RecordQueueDepth(1, 3)
	ls.RecordQueueDepth(1, 2) // lower: ignored
	ls.RecordQueueDepth(1, 9)
	ls.RecordQueueDepth(99, 5) // out of range: ignored
	u := ls.Snapshot()
	if u.QueueHWM(1, 0) != 9 || u.MaxQueueHWM() != 9 {
		t.Errorf("hwm = %d (max %d), want 9", u.QueueHWM(1, 0), u.MaxQueueHWM())
	}
}

// LinkStats is shared across PE goroutines: concurrent recording must not
// lose counts (run under -race this also proves memory safety).
func TestRecordRouteConcurrent(t *testing.T) {
	ls := NewLinkStats(testGeo(t, 4, 4))
	const workers, routes = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < routes; i++ {
				ls.RecordRoute(0, 3, 2) // 3 east hops, 2 words each
				ls.RecordQueueDepth(3, i%7)
			}
		}()
	}
	wg.Wait()
	u := ls.Snapshot()
	if got := u.Link(0, 0, LinkEast); got != workers*routes*2 {
		t.Errorf("concurrent words = %d, want %d", got, workers*routes*2)
	}
	if u.QueueHWM(3, 0) != 6 {
		t.Errorf("concurrent hwm = %d, want 6", u.QueueHWM(3, 0))
	}
}

func TestHotLinksRanking(t *testing.T) {
	ls := NewLinkStats(testGeo(t, 3, 1))
	ls.RecordRoute(0, 2, 10) // (0,0)E and (1,0)E get 10
	ls.RecordRoute(1, 2, 5)  // (1,0)E gets 5 more
	hot := ls.Snapshot().HotLinks(2)
	if len(hot) != 2 {
		t.Fatalf("got %d hot links, want 2", len(hot))
	}
	if hot[0].From != (Coord{X: 1, Y: 0}) || hot[0].Words != 15 {
		t.Errorf("hottest = %+v, want (1,0) east with 15 words", hot[0])
	}
	if hot[1].Words != 10 {
		t.Errorf("second = %+v, want 10 words", hot[1])
	}
}

func TestUtilizationAdd(t *testing.T) {
	a := NewLinkStats(testGeo(t, 2, 2))
	b := NewLinkStats(testGeo(t, 2, 2))
	a.RecordRoute(0, 1, 3)
	b.RecordRoute(0, 1, 4)
	b.RecordQueueDepth(1, 5)
	ua, ub := a.Snapshot(), b.Snapshot()
	if err := ua.Add(ub); err != nil {
		t.Fatal(err)
	}
	if got := ua.Link(0, 0, LinkEast); got != 7 {
		t.Errorf("folded link = %d, want 7", got)
	}
	if ua.QueueHWM(1, 0) != 5 {
		t.Errorf("folded hwm = %d, want 5", ua.QueueHWM(1, 0))
	}
	if err := ua.Add(NewLinkStats(testGeo(t, 3, 3)).Snapshot()); err == nil {
		t.Error("shape mismatch must error")
	}
}

func TestHeatmapRenderers(t *testing.T) {
	ls := NewLinkStats(testGeo(t, 4, 4))
	ls.RecordRoute(0, 3, 100)
	ls.RecordRoute(0, 12, 40)
	ls.RecordQueueDepth(3, 2)
	u := ls.Snapshot()
	a := u.ASCII()
	for _, want := range []string{"4x4", "[  0", ">100", "v40", "hottest links", "(0,0)->(1,0)"} {
		if !strings.Contains(a, want) {
			t.Errorf("ASCII heatmap missing %q:\n%s", want, a)
		}
	}
	s := u.SVG()
	for _, want := range []string{"<svg", "</svg>", "<rect", "<line", "100 words"} {
		if !strings.Contains(s, want) {
			t.Errorf("SVG heatmap missing %q", want)
		}
	}
	var empty *Utilization
	if !strings.Contains(empty.ASCII(), "no mesh utilization") {
		t.Error("nil ASCII must degrade gracefully")
	}
}
