package mesh

import (
	"math"
	"testing"
	"testing/quick"

	"tshmem/internal/arch"
)

func gx6x6(t *testing.T) Geometry {
	t.Helper()
	g, err := NewGeometry(arch.Gx8036(), 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func pro6x6(t *testing.T) Geometry {
	t.Helper()
	g, err := NewGeometry(arch.Pro64(), 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGeometryBounds(t *testing.T) {
	if _, err := NewGeometry(arch.Gx8036(), 7, 6); err == nil {
		t.Error("7x6 should not fit a 6x6 chip")
	}
	if _, err := NewGeometry(arch.Gx8036(), 0, 3); err == nil {
		t.Error("zero-width area should be rejected")
	}
	if _, err := NewGeometry(arch.Pro64(), 8, 8); err != nil {
		t.Errorf("8x8 on TILEPro64: %v", err)
	}
}

func TestFullGeometry(t *testing.T) {
	g := FullGeometry(arch.Pro64())
	if g.Tiles() != 64 || g.Width != 8 || g.Height != 8 {
		t.Errorf("full TILEPro64 geometry = %dx%d", g.Width, g.Height)
	}
	if g.Chip().Name != "TILEPro64" {
		t.Errorf("chip = %s", g.Chip().Name)
	}
}

func TestAreaGeometry(t *testing.T) {
	cases := []struct {
		n            int
		wantW, wantH int
	}{
		{1, 1, 1},
		{2, 2, 2},
		{4, 2, 2},
		{5, 3, 3},
		{9, 3, 3},
		{16, 4, 4},
		{17, 5, 5},
		{36, 6, 6},
	}
	for _, c := range cases {
		g, err := AreaGeometry(arch.Gx8036(), c.n)
		if err != nil {
			t.Fatalf("AreaGeometry(%d): %v", c.n, err)
		}
		if g.Width != c.wantW || g.Height != c.wantH {
			t.Errorf("AreaGeometry(%d) = %dx%d, want %dx%d", c.n, g.Width, g.Height, c.wantW, c.wantH)
		}
	}
	if _, err := AreaGeometry(arch.Gx8036(), 37); err == nil {
		t.Error("37 tiles should not fit the TILE-Gx8036")
	}
	if _, err := AreaGeometry(arch.Gx8036(), 0); err == nil {
		t.Error("zero tiles should be rejected")
	}
	// 37..64 must fit the TILEPro64 by growing beyond a 6x6 square.
	g, err := AreaGeometry(arch.Pro64(), 40)
	if err != nil || g.Tiles() < 40 {
		t.Errorf("AreaGeometry(Pro64, 40) = %dx%d, %v", g.Width, g.Height, err)
	}
}

func TestHops(t *testing.T) {
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{0, 0}, Coord{1, 0}, 1},
		{Coord{0, 0}, Coord{5, 0}, 5},
		{Coord{0, 0}, Coord{5, 5}, 10},
		{Coord{3, 2}, Coord{1, 4}, 4},
	}
	for _, c := range cases {
		if got := Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by uint8) bool {
		a := Coord{int(ax % 8), int(ay % 8)}
		b := Coord{int(bx % 8), int(by % 8)}
		return Hops(a, b) == Hops(b, a) && Hops(a, a) == 0 && Hops(a, b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestVirtualPhysicalMapping pins the paper's example: in a 6x6 test area
// on the 8x8 TILEPro64, virtual tile 6 is physical tile 8.
func TestVirtualPhysicalMapping(t *testing.T) {
	pro := pro6x6(t)
	if p, err := pro.PhysicalCPU(6); err != nil || p != 8 {
		t.Errorf("Pro virtual 6 -> physical %d (%v), want 8", p, err)
	}
	if p, err := pro.PhysicalCPU(35); err != nil || p != 45 {
		t.Errorf("Pro virtual 35 -> physical %d (%v), want 45", p, err)
	}
	// On the TILE-Gx36 the 6x6 area covers the chip: identity mapping.
	gx := gx6x6(t)
	for v := 0; v < 36; v++ {
		if p, err := gx.PhysicalCPU(v); err != nil || p != v {
			t.Fatalf("Gx virtual %d -> physical %d (%v), want identity", v, p, err)
		}
	}
}

func TestVirtualPhysicalRoundTrip(t *testing.T) {
	pro := pro6x6(t)
	for v := 0; v < pro.Tiles(); v++ {
		p, err := pro.PhysicalCPU(v)
		if err != nil {
			t.Fatal(err)
		}
		back, ok := pro.VirtualCPU(p)
		if !ok || back != v {
			t.Fatalf("round trip v=%d -> p=%d -> v=%d ok=%v", v, p, back, ok)
		}
	}
	// Physical CPUs outside the area do not map back.
	if _, ok := pro.VirtualCPU(6); ok {
		t.Error("physical 6 (column 6) should be outside the 6x6 area")
	}
	if _, ok := pro.VirtualCPU(-1); ok {
		t.Error("negative physical CPU should be rejected")
	}
	if _, ok := pro.VirtualCPU(64); ok {
		t.Error("physical CPU beyond grid should be rejected")
	}
}

func TestCoordErrors(t *testing.T) {
	g := gx6x6(t)
	if _, err := g.Coord(-1); err == nil {
		t.Error("negative virtual CPU accepted")
	}
	if _, err := g.Coord(36); err == nil {
		t.Error("out-of-area virtual CPU accepted")
	}
	if _, err := g.HopsBetween(0, 99); err == nil {
		t.Error("HopsBetween accepted bad CPU")
	}
	if _, err := g.HopsBetween(99, 0); err == nil {
		t.Error("HopsBetween accepted bad CPU")
	}
}

// TestTableIIILatencies reproduces the Table III one-way latency classes.
// Gx: neighbors 21-22 ns, side-to-side 25-26 ns, corners 31-32 ns.
// Pro: neighbors 18-19 ns, side-to-side 24-25 ns, corners ~33 ns.
func TestTableIIILatencies(t *testing.T) {
	type pair struct{ s, r int }
	neighbors := []pair{{14, 13}, {14, 15}, {14, 8}, {14, 20}}
	sideToSide := []pair{{6, 11}, {11, 6}, {1, 31}, {31, 1}}
	corners := []pair{{0, 35}, {35, 0}, {5, 30}, {30, 5}}

	check := func(g Geometry, ps []pair, lo, hi float64, label string) {
		t.Helper()
		for _, p := range ps {
			d, err := g.OneWayLatency(p.s, p.r, 1)
			if err != nil {
				t.Fatalf("%s %d->%d: %v", label, p.s, p.r, err)
			}
			if ns := d.Ns(); ns < lo || ns > hi {
				t.Errorf("%s %s %d->%d = %.1f ns, want [%v,%v]", g.Chip().Name, label, p.s, p.r, ns, lo, hi)
			}
		}
	}
	gx, pro := gx6x6(t), pro6x6(t)
	check(gx, neighbors, 20.5, 22.5, "neighbors")
	check(gx, sideToSide, 24.5, 26.5, "side-to-side")
	check(gx, corners, 30.5, 32.5, "corners")
	check(pro, neighbors, 17.5, 19.5, "neighbors")
	check(pro, sideToSide, 23.5, 25.5, "side-to-side")
	check(pro, corners, 31.5, 33.5, "corners")
}

// TestLatencyCrossover checks the Figure 4 structure: the TILE-Gx is slower
// for neighbors and side-to-side (64-bit fabric setup cost) but the curves
// meet near the corners where the Pro's slower per-hop rate catches up.
func TestLatencyCrossover(t *testing.T) {
	gx, pro := gx6x6(t), pro6x6(t)
	lat := func(g Geometry, s, r int) float64 {
		d, err := g.OneWayLatency(s, r, 1)
		if err != nil {
			t.Fatal(err)
		}
		return d.Ns()
	}
	if lat(gx, 14, 13) <= lat(pro, 14, 13) {
		t.Error("Gx neighbors should be slower than Pro (setup-and-teardown)")
	}
	if lat(gx, 6, 11) <= lat(pro, 6, 11) {
		t.Error("Gx side-to-side should be slower than Pro")
	}
	if lat(gx, 0, 35) >= lat(pro, 0, 35) {
		t.Error("Gx corners should be faster than Pro (per-hop rate)")
	}
}

func TestPayloadScaling(t *testing.T) {
	g := gx6x6(t)
	one, err := g.OneWayLatency(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := g.OneWayLatency(0, 1, 127)
	if err != nil {
		t.Fatal(err)
	}
	// Cut-through: each extra word adds one cycle (1 ns on the Gx).
	extra := many.Ns() - one.Ns()
	if math.Abs(extra-126) > 0.5 {
		t.Errorf("127-word packet costs %.1f ns extra, want ~126", extra)
	}
	if _, err := g.OneWayLatency(0, 1, 128); err == nil {
		t.Error("payload above 127 words must be rejected")
	}
	if _, err := g.OneWayLatency(0, 1, 0); err == nil {
		t.Error("zero-word payload must be rejected")
	}
}

func TestSendWireSplit(t *testing.T) {
	g := gx6x6(t)
	for _, pair := range [][2]int{{0, 35}, {14, 13}, {3, 33}} {
		total, err := g.OneWayLatency(pair[0], pair[1], 1)
		if err != nil {
			t.Fatal(err)
		}
		send, err := g.SendLatency(pair[0], pair[1], 1)
		if err != nil {
			t.Fatal(err)
		}
		wire, err := g.WireLatency(pair[0], pair[1], 1)
		if err != nil {
			t.Fatal(err)
		}
		if send+wire != total {
			t.Errorf("split %v+%v != total %v", send, wire, total)
		}
		if send <= 0 || wire <= 0 {
			t.Errorf("both halves must be positive: send=%v wire=%v", send, wire)
		}
	}
}

func TestDirectionOf(t *testing.T) {
	o := Coord{3, 3}
	cases := []struct {
		b    Coord
		want Direction
	}{
		{Coord{3, 3}, Self},
		{Coord{2, 3}, Left},
		{Coord{4, 3}, Right},
		{Coord{3, 2}, Up},
		{Coord{3, 4}, Down},
		{Coord{1, 5}, Left}, // X first under XY routing
	}
	for _, c := range cases {
		if got := DirectionOf(o, c.b); got != c.want {
			t.Errorf("DirectionOf(%v,%v) = %v, want %v", o, c.b, got, c.want)
		}
	}
	for d, want := range map[Direction]string{Self: "self", Left: "left", Right: "right", Up: "up", Down: "down"} {
		if d.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(d), d.String(), want)
		}
	}
}

// TestLatencyMetricProperties: OneWayLatency behaves like a proper metric
// plus constant: nonnegative, roughly symmetric (within the directional
// epsilon), and monotone in hop count.
func TestLatencyMetricProperties(t *testing.T) {
	g := gx6x6(t)
	f := func(a, b uint8) bool {
		s, r := int(a%36), int(b%36)
		if s == r {
			return true
		}
		d1, err1 := g.OneWayLatency(s, r, 1)
		d2, err2 := g.OneWayLatency(r, s, 1)
		if err1 != nil || err2 != nil {
			return false
		}
		return d1 > 0 && d2 > 0 && math.Abs(d1.Ns()-d2.Ns()) <= 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Monotonicity along a row.
	prev := -1.0
	for dst := 1; dst < 6; dst++ {
		d, err := g.OneWayLatency(0, dst, 1)
		if err != nil {
			t.Fatal(err)
		}
		if d.Ns() <= prev {
			t.Fatalf("latency not increasing with distance at dst=%d", dst)
		}
		prev = d.Ns()
	}
}
