package mesh

import (
	"fmt"

	"tshmem/internal/arch"
	"tshmem/internal/vtime"
)

// Coord is a tile position in the physical grid.
type Coord struct {
	X, Y int
}

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Hops returns the XY dimension-order-routing hop count from a to b.
func Hops(a, b Coord) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Geometry maps virtual CPU numbers (PE ranks in the test area) onto
// physical tiles of a chip. Width/Height describe the test area; the area
// is anchored at the chip's top-left corner, matching the paper's setup
// where virtual numbers equal physical numbers on the TILE-Gx36 but stride
// over the wider TILEPro64 grid (virtual tile 6 is physical tile 8).
type Geometry struct {
	chip          *arch.Chip
	Width, Height int
}

// NewGeometry builds a test-area geometry of w x h tiles on chip.
func NewGeometry(chip *arch.Chip, w, h int) (Geometry, error) {
	if w <= 0 || h <= 0 {
		return Geometry{}, fmt.Errorf("mesh: non-positive test area %dx%d", w, h)
	}
	if w > chip.GridW || h > chip.GridH {
		return Geometry{}, fmt.Errorf("mesh: test area %dx%d exceeds %s grid %dx%d",
			w, h, chip.Name, chip.GridW, chip.GridH)
	}
	return Geometry{chip: chip, Width: w, Height: h}, nil
}

// FullGeometry covers the entire chip.
func FullGeometry(chip *arch.Chip) Geometry {
	return Geometry{chip: chip, Width: chip.GridW, Height: chip.GridH}
}

// AreaGeometry returns the smallest square test area holding at least n
// tiles, mirroring how the paper grows the active tile set.
func AreaGeometry(chip *arch.Chip, n int) (Geometry, error) {
	if n <= 0 {
		return Geometry{}, fmt.Errorf("mesh: need at least one tile, got %d", n)
	}
	side := 1
	for side*side < n {
		side++
	}
	w, h := side, side
	if w > chip.GridW {
		w = chip.GridW
	}
	if h > chip.GridH {
		h = chip.GridH
	}
	for w*h < n && h < chip.GridH {
		h++
	}
	for w*h < n && w < chip.GridW {
		w++
	}
	if w*h < n {
		return Geometry{}, fmt.Errorf("mesh: %d tiles exceed %s capacity %d", n, chip.Name, chip.Tiles)
	}
	return Geometry{chip: chip, Width: w, Height: h}, nil
}

// Chip returns the chip this geometry is laid out on.
func (g Geometry) Chip() *arch.Chip { return g.chip }

// Tiles reports the number of tiles in the test area.
func (g Geometry) Tiles() int { return g.Width * g.Height }

// Coord returns the physical tile coordinate of virtual CPU v.
func (g Geometry) Coord(v int) (Coord, error) {
	if v < 0 || v >= g.Tiles() {
		return Coord{}, fmt.Errorf("mesh: virtual CPU %d outside %dx%d area", v, g.Width, g.Height)
	}
	return Coord{X: v % g.Width, Y: v / g.Width}, nil
}

// PhysicalCPU maps a virtual CPU number to the physical CPU number on the
// full chip grid. On a chip whose grid equals the test area they coincide;
// on the TILEPro64 a 6x6 area makes virtual 6 physical 8, as noted under
// Table III.
func (g Geometry) PhysicalCPU(v int) (int, error) {
	c, err := g.Coord(v)
	if err != nil {
		return 0, err
	}
	return c.Y*g.chip.GridW + c.X, nil
}

// VirtualCPU is the inverse of PhysicalCPU. It reports ok=false when the
// physical CPU lies outside the test area.
func (g Geometry) VirtualCPU(phys int) (v int, ok bool) {
	if phys < 0 || phys >= g.chip.Tiles {
		return 0, false
	}
	x, y := phys%g.chip.GridW, phys/g.chip.GridW
	if x >= g.Width || y >= g.Height {
		return 0, false
	}
	return y*g.Width + x, true
}

// HopsBetween reports the routing hop count between two virtual CPUs.
func (g Geometry) HopsBetween(a, b int) (int, error) {
	ca, err := g.Coord(a)
	if err != nil {
		return 0, err
	}
	cb, err := g.Coord(b)
	if err != nil {
		return 0, err
	}
	return Hops(ca, cb), nil
}

// Direction classifies the first routing leg of a transfer, used for the
// Table III direction labels. XY routing travels horizontally first.
type Direction int

const (
	Self Direction = iota
	Left
	Right
	Up
	Down
)

func (d Direction) String() string {
	switch d {
	case Self:
		return "self"
	case Left:
		return "left"
	case Right:
		return "right"
	case Up:
		return "up"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// DirectionOf reports the initial routing direction from a to b under XY
// dimension-order routing.
func DirectionOf(a, b Coord) Direction {
	switch {
	case b.X < a.X:
		return Left
	case b.X > a.X:
		return Right
	case b.Y < a.Y:
		return Up
	case b.Y > a.Y:
		return Down
	default:
		return Self
	}
}

// RouteUsesLink reports whether the XY dimension-order route from src to
// dst (virtual CPUs) crosses the directed link a->b. The link must be one
// unit mesh step; anything else (including out-of-range endpoints) simply
// never matches. Used by internal/fault to decide whether a LinkSlow
// hotspot applies to a packet.
func (g Geometry) RouteUsesLink(src, dst, a, b int) (bool, error) {
	cs, err := g.Coord(src)
	if err != nil {
		return false, err
	}
	cd, err := g.Coord(dst)
	if err != nil {
		return false, err
	}
	n := g.Tiles()
	if a < 0 || a >= n || b < 0 || b >= n {
		return false, nil
	}
	ca, _ := g.Coord(a)
	cb, _ := g.Coord(b)
	if Hops(ca, cb) != 1 {
		return false, nil
	}
	if cb.Y == ca.Y {
		// Horizontal link: the route's horizontal leg runs along row cs.Y
		// from cs.X toward cd.X.
		if ca.Y != cs.Y {
			return false, nil
		}
		if cb.X == ca.X+1 { // rightward link
			return cs.X <= ca.X && ca.X < cd.X, nil
		}
		// leftward link
		return cd.X < ca.X && ca.X <= cs.X, nil
	}
	// Vertical link: the vertical leg runs along column cd.X from cs.Y
	// toward cd.Y.
	if ca.X != cd.X {
		return false, nil
	}
	if cb.Y == ca.Y+1 { // downward link
		return cs.Y <= ca.Y && ca.Y < cd.Y, nil
	}
	// upward link
	return cd.Y < ca.Y && ca.Y <= cs.Y, nil
}

// PathInfo is the resolved route of one packet: the hop count and initial
// direction of its XY route, and its one-way latency split into the
// sender-side injection share (Send) and the in-flight remainder (Wire).
// Send + Wire is the full one-way latency.
type PathInfo struct {
	Hops int
	Dir  Direction
	Send vtime.Duration
	Wire vtime.Duration
}

// Latency reports the full one-way latency of the path.
func (p PathInfo) Latency() vtime.Duration { return p.Send + p.Wire }

// Path resolves the route of a words-long packet from virtual CPU src to
// dst in a single call: coordinates are looked up once, and the returned
// PathInfo carries the hop count (which the observability layer counts per
// injected packet) together with the latency split senders and receivers
// charge. It is the primitive behind OneWayLatency, SendLatency, and
// WireLatency.
//
// The route is computed in closed form from the XY dimension-order
// geometry — O(1) time and memory per call, so a 64x64 synthetic mesh
// costs no more to construct than a 4x4 one. (Earlier revisions
// precomputed a dense per-(src,dst) table, which is O(n^2) memory: ~400 MB
// for 4096 tiles. The closed form evaluates exactly the same expression in
// the same association order, so modeled virtual time is unchanged.)
//
// The latency model is setup-and-teardown + hops*hop + (words-1)*cycle for
// the trailing payload words of the cut-through wormhole, plus a small
// deterministic per-direction epsilon (+-0.5 ns) reproducing the 1 ns
// directional spread visible in Table III. The Send share is the chip's
// UDNSendShare of the setup cost, capped at the total.
func (g Geometry) Path(src, dst, words int) (PathInfo, error) {
	if words < 1 {
		return PathInfo{}, fmt.Errorf("mesh: packet needs at least 1 word, got %d", words)
	}
	if words > g.chip.UDNMaxWords {
		return PathInfo{}, fmt.Errorf("mesh: %d words exceed UDN payload limit %d", words, g.chip.UDNMaxWords)
	}
	ca, err := g.Coord(src)
	if err != nil {
		return PathInfo{}, err
	}
	cb, err := g.Coord(dst)
	if err != nil {
		return PathInfo{}, err
	}
	hops := Hops(ca, cb)
	dir := DirectionOf(ca, cb)
	ns := g.chip.UDNSetupNs + float64(hops)*g.chip.HopNs() + float64(words-1)*g.chip.CycleNs()
	ns += directionEps(dir)
	total := vtime.FromNs(ns)
	send := vtime.FromNs(g.chip.UDNSetupNs * g.chip.UDNSendShare)
	if send > total {
		send = total
	}
	return PathInfo{Hops: hops, Dir: dir, Send: send, Wire: total - send}, nil
}

// OneWayLatency models the one-way latency of a words-long packet from
// virtual CPU src to dst. See Path for the model.
func (g Geometry) OneWayLatency(src, dst, words int) (vtime.Duration, error) {
	p, err := g.Path(src, dst, words)
	if err != nil {
		return 0, err
	}
	return p.Latency(), nil
}

// directionEps is the deterministic sub-nanosecond skew per initial routing
// direction. Table III shows left-going transfers arriving ~1 ns earlier
// than the other directions on the TILE-Gx.
func directionEps(d Direction) float64 {
	switch d {
	case Left:
		return -0.4
	case Up:
		return -0.1
	case Right:
		return 0.3
	case Down:
		return 0.1
	default:
		return 0
	}
}

// SendLatency is the sender-side injection share of OneWayLatency, per the
// chip's UDNSendShare. SendLatency + WireLatency equals OneWayLatency.
func (g Geometry) SendLatency(src, dst, words int) (vtime.Duration, error) {
	p, err := g.Path(src, dst, words)
	if err != nil {
		return 0, err
	}
	return p.Send, nil
}

// WireLatency is the remainder of OneWayLatency after the sender-side
// share: time from injection until the packet is ready at the receiver.
func (g Geometry) WireLatency(src, dst, words int) (vtime.Duration, error) {
	p, err := g.Path(src, dst, words)
	if err != nil {
		return 0, err
	}
	return p.Wire, nil
}
