package mesh

import (
	"runtime"
	"testing"

	"tshmem/internal/arch"
)

// TestBigMeshGeometryMemory is the sparse-mesh memory gate (ci.sh,
// big-mesh smoke): constructing a 64x64 synthetic geometry with link
// accounting and recording corner-to-corner traffic must allocate far
// under 32 MiB. Before the closed-form Path rewrite the eager n^2 path
// table alone cost hundreds of MB at 4096 tiles; the block-lazy
// LinkStats keeps a mostly-idle mesh at kilobytes.
func TestBigMeshGeometryMemory(t *testing.T) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	chip := arch.Synthetic(64, 64)
	geo := FullGeometry(chip)
	ls := NewLinkStats(geo)
	ls.RecordRoute(0, 64*64-1, 8)
	ls.RecordRoute(64*64-1, 0, 8)
	ls.RecordRoute(63, 64*63, 16)
	u := ls.Snapshot()

	runtime.ReadMemStats(&after)
	delta := after.TotalAlloc - before.TotalAlloc
	if limit := uint64(32 << 20); delta > limit {
		t.Fatalf("64x64 geometry construction allocated %d bytes, gate is %d", delta, limit)
	}
	t.Logf("64x64 geometry + link accounting + snapshot: %d KiB allocated", delta>>10)

	// The structures must still account correctly at this scale.
	if got := u.Link(0, 0, LinkEast); got != 8 {
		t.Errorf("corner route east link carried %d words, want 8", got)
	}
	if lat, err := geo.OneWayLatency(0, 64*64-1, 4); err != nil || lat <= 0 {
		t.Errorf("closed-form corner latency: %v, %v", lat, err)
	}
}
