package sanitize

import (
	"testing"
)

// bruteOverlap is the reference implementation of accessRec.overlaps: walk
// every byte of every element of r and test membership in any element of
// o. O(cnt*es) per record, affordable at fuzz sizes.
func bruteOverlap(r, o *accessRec) bool {
	covered := make(map[int64]bool)
	for i := int64(0); i < r.cnt; i++ {
		x := r.off + i*r.stride
		for b := x; b < x+r.es; b++ {
			covered[b] = true
		}
	}
	for j := int64(0); j < o.cnt; j++ {
		y := o.off + j*o.stride
		for b := y; b < y+o.es; b++ {
			if covered[b] {
				return true
			}
		}
	}
	return false
}

// clampRec builds a structurally valid accessRec from arbitrary fuzz
// inputs: positive element size, stride, and count, bounded so the
// brute-force reference stays cheap. Offsets may be "negative" relative to
// each other — overlap arithmetic must not assume ordering.
func clampRec(off, stride, cnt, es int64) accessRec {
	abs := func(v int64) int64 {
		if v < 0 {
			return -v
		}
		return v
	}
	r := accessRec{
		off:    abs(off) % 512,
		es:     1 + abs(es)%16,
		cnt:    1 + abs(cnt)%48,
		stride: 1 + abs(stride)%96,
	}
	if r.cnt == 1 {
		// Contiguous records are built by contigRec with stride == es.
		r.stride = r.es
	}
	return r
}

// FuzzStridedOverlap cross-checks the element-precise strided overlap
// predicate (the O(1)-per-element interval solve) against a byte-exact
// brute-force reference over randomized access pairs, including the
// contiguous fast path and records whose spans overlap while their
// elements interleave disjointly (the transpose pattern the comment on
// accessRec describes).
func FuzzStridedOverlap(f *testing.F) {
	// Interleaved columns: spans overlap, elements never do.
	f.Add(int64(0), int64(16), int64(8), int64(8), int64(8), int64(16), int64(8), int64(8))
	// Identical strided patterns: every element collides.
	f.Add(int64(0), int64(24), int64(4), int64(8), int64(0), int64(24), int64(4), int64(8))
	// Contiguous vs strided.
	f.Add(int64(0), int64(64), int64(1), int64(64), int64(32), int64(48), int64(3), int64(8))
	// Disjoint spans.
	f.Add(int64(0), int64(8), int64(4), int64(8), int64(400), int64(8), int64(4), int64(8))
	// Coprime strides brushing past each other.
	f.Add(int64(1), int64(7), int64(20), int64(3), int64(2), int64(11), int64(13), int64(5))

	f.Fuzz(func(t *testing.T, off1, st1, cnt1, es1, off2, st2, cnt2, es2 int64) {
		r := clampRec(off1, st1, cnt1, es1)
		o := clampRec(off2, st2, cnt2, es2)
		want := bruteOverlap(&r, &o)
		if got := r.overlaps(&o); got != want {
			t.Fatalf("overlaps(%+v, %+v) = %v, brute force says %v", r, o, got, want)
		}
		// The predicate must be symmetric.
		if got := o.overlaps(&r); got != want {
			t.Fatalf("overlaps(%+v, %+v) = %v (asymmetric), brute force says %v", o, r, got, want)
		}
	})
}
