// Edge is the shared happens-before edge schema consumed by both the
// sanitizer (vector-clock joins) and the causal profiler
// (internal/profile critical-path extraction). Core emits one Edge per
// cross-PE synchronization merge — the moment a PE's virtual clock is
// advanced to (at least) the arrival time of something another PE sent.
//
// The sanitizer's typed PEHooks (BarrierArrive, SigRecv, WaitEdge, ...)
// predate this type and carry extra protocol context (active-set tags,
// symmetric offsets) that vector clocks need; they remain the sanitizer's
// ingestion surface. Edge is the lowest-common-denominator view of the
// same events: who waited, who they waited on, when the dependency was
// published, and when it arrived. Core constructs an Edge at each merge
// site and fans it out to every subscribed consumer, so the sanitizer and
// the profiler are guaranteed to see the same causal structure — a
// happens-before relation the sanitizer trusts is, by construction, the
// same one the profiler walks.
package sanitize

import "tshmem/internal/vtime"

// Edge records one cross-PE happens-before dependency in global PE
// numbering (rank order, spanning chips in multichip runs).
//
//   - PE is the waiter: the PE whose virtual clock merged forward.
//   - Peer is the publisher: the PE whose prior action the waiter's
//     progress depended on.
//   - Sent is Peer's virtual clock when it published the dependency
//     (packet injected, lock released, flag word written).
//   - Arrive is the virtual time the dependency became visible at PE
//     after modeled network/visibility delay; the waiter's clock is
//     ≥ Arrive once the merge completes.
//
// Invariant: Sent ≤ Arrive. The interval [Sent, Arrive] is transport —
// time the dependency spent in flight — while any waiting before Sent is
// idle blame on the waiter (the peer hadn't produced the value yet).
// Profile recorders split wait spans on exactly this boundary.
type Edge struct {
	PE     int32
	Peer   int32
	Sent   vtime.Time
	Arrive vtime.Time
}
