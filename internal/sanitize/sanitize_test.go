package sanitize

import (
	"strings"
	"testing"

	"tshmem/internal/vtime"
)

func rec(off, stride, cnt, es int64) *accessRec {
	return &accessRec{off: off, stride: stride, cnt: cnt, es: es}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {8, 2, 4}, {0, 3, 0},
		{-1, 2, -1}, {-4, 2, -2}, {-7, 3, -3},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestOverlaps(t *testing.T) {
	cases := []struct {
		name string
		a, b *accessRec
		want bool
	}{
		{"contig-overlap", rec(0, 64, 1, 64), rec(32, 64, 1, 64), true},
		{"contig-disjoint", rec(0, 32, 1, 32), rec(32, 32, 1, 32), false},
		// The distributed-transpose shape: two columns of an 8-byte-element
		// matrix with row pitch 16. Spans interleave, elements never touch.
		{"interleaved-columns", rec(0, 16, 4, 8), rec(8, 16, 4, 8), false},
		{"same-column", rec(0, 16, 4, 8), rec(0, 16, 4, 8), true},
		{"column-vs-covering-block", rec(0, 16, 4, 8), rec(0, 64, 1, 64), true},
		{"contig-hits-element", rec(0, 16, 4, 8), rec(32, 8, 1, 8), true},
		{"contig-in-gap", rec(0, 16, 4, 8), rec(8, 8, 1, 8), false},
		{"mixed-strides-hit", rec(0, 24, 4, 8), rec(16, 16, 4, 8), true}, // both contain 48
		{"mixed-strides-miss", rec(0, 48, 2, 8), rec(16, 16, 2, 8), false},
		{"span-disjoint-strided", rec(0, 16, 4, 8), rec(100, 16, 4, 8), false},
	}
	for _, c := range cases {
		if got := c.a.overlaps(c.b); got != c.want {
			t.Errorf("%s: overlaps = %v, want %v", c.name, got, c.want)
		}
		if got := c.b.overlaps(c.a); got != c.want {
			t.Errorf("%s (swapped): overlaps = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSupersedes(t *testing.T) {
	if !supersedes(rec(0, 64, 1, 64), rec(8, 16, 1, 16)) {
		t.Error("covering contiguous write should supersede")
	}
	if supersedes(rec(0, 32, 1, 32), rec(8, 40, 1, 40)) {
		t.Error("partial cover must not supersede")
	}
	if !supersedes(rec(0, 16, 4, 8), rec(0, 16, 3, 8)) {
		t.Error("identical strided pattern rewrite should supersede")
	}
	if supersedes(rec(0, 16, 4, 8), rec(8, 16, 4, 8)) {
		t.Error("shifted strided pattern must not supersede")
	}
}

func TestVClock(t *testing.T) {
	a := vclock{1, 5, 0}
	b := vclock{2, 3, 0}
	if a.leq(b) || b.leq(a) {
		t.Error("incomparable clocks reported ordered")
	}
	j := a.clone()
	j.join(b)
	if !a.leq(j) || !b.leq(j) {
		t.Errorf("join %v not an upper bound of %v, %v", j, a, b)
	}
	if !a.leq(a) {
		t.Error("leq not reflexive")
	}
}

// TestRaceThenBarrierOrders drives the checker directly: two PEs put to
// overlapping bytes with no edge (a race), then the same pair ordered by a
// barrier (clean).
func TestRaceThenBarrierOrders(t *testing.T) {
	c := New(2)
	h0, h1 := c.PE(0), c.PE(1)
	h0.Write("Put", 1, DynamicSID, 0, 64, 10)
	h1.Write("Put", 1, DynamicSID, 32, 64, 20)
	d := c.Diagnostics()
	if len(d) != 1 || d[0].Kind != RacePutPut {
		t.Fatalf("diagnostics = %v, want one race:put/put", d)
	}
	if d[0].TargetPE != 1 || d[0].PE+d[0].OtherPE != 1 {
		t.Errorf("race attributed to %+v, want PE pair {0,1} on target 1", d[0])
	}

	c = New(2)
	h0, h1 = c.PE(0), c.PE(1)
	h0.Write("Put", 1, DynamicSID, 0, 64, 10)
	b0 := h0.BarrierEnter(0, 0, 2, 1)
	b1 := h1.BarrierEnter(0, 0, 2, 1)
	h0.BarrierExit(b0)
	h1.BarrierExit(b1)
	h1.Write("Put", 1, DynamicSID, 32, 64, 20)
	if d := c.Diagnostics(); len(d) != 0 {
		t.Errorf("barrier-ordered puts flagged: %v", d)
	}
}

// TestSignalWithoutQuiet is the missing-shmem_quiet pattern at the hook
// level: data put, flag P, waiter reads the data. The unfenced data put is
// flagged twice — at the signal and at the read — and a Quiet fixes both.
func TestSignalWithoutQuiet(t *testing.T) {
	const dataOff, flagOff = 0, 4096
	c := New(2)
	h0, h1 := c.PE(0), c.PE(1)
	h0.Write("Put", 1, DynamicSID, dataOff, 64, 10)
	h0.Signal(1, flagOff, 8, 11)
	h1.WaitEdge(flagOff)
	h1.Read("Get", 1, DynamicSID, dataOff, 64, 12)
	var kinds []string
	for _, d := range c.Diagnostics() {
		kinds = append(kinds, d.Kind.String())
		if d.Offset != dataOff {
			t.Errorf("%s at offset %d, want %d", d.Kind, d.Offset, dataOff)
		}
	}
	if got := strings.Join(kinds, ","); got != "unfenced-signal,unfenced-read" {
		t.Fatalf("kinds = %q, want unfenced-signal then unfenced-read", got)
	}

	c = New(2)
	h0, h1 = c.PE(0), c.PE(1)
	h0.Write("Put", 1, DynamicSID, dataOff, 64, 10)
	h0.Quiet()
	h0.Signal(1, flagOff, 8, 11)
	h1.WaitEdge(flagOff)
	h1.Read("Get", 1, DynamicSID, dataOff, 64, 12)
	if d := c.Diagnostics(); len(d) != 0 {
		t.Errorf("quiet-then-signal flagged: %v", d)
	}
}

func TestDedupeFoldsRepeats(t *testing.T) {
	c := New(2)
	h0, h1 := c.PE(0), c.PE(1)
	h0.Write("Put", 1, DynamicSID, 0, 64, 10)
	h1.Write("Put", 1, DynamicSID, 0, 64, 20)
	h1.Write("Put", 1, DynamicSID, 0, 64, 30)
	d := c.Diagnostics()
	if len(d) != 1 || d[0].Count != 2 {
		t.Fatalf("diagnostics = %v, want one diagnostic with Count=2", d)
	}
	if !strings.Contains(d[0].String(), "x2") {
		t.Errorf("String() = %q, want folded count suffix", d[0].String())
	}
}

func TestLockHooks(t *testing.T) {
	c := New(2)
	h0, h1 := c.PE(0), c.PE(1)
	if h0.LockSelfAcquire(128, 1) {
		t.Fatal("unheld lock reported self-held")
	}
	h0.LockAcquired(128)
	if !h0.LockSelfAcquire(128, 2) {
		t.Fatal("double acquire not reported")
	}
	h1.LockRelease(128, 3) // PE 1 never held it
	var kinds []Kind
	for _, d := range c.Diagnostics() {
		kinds = append(kinds, d.Kind)
	}
	if len(kinds) != 2 || kinds[0] != LockDoubleAcquire || kinds[1] != LockBadRelease {
		t.Fatalf("kinds = %v, want [LockDoubleAcquire LockBadRelease]", kinds)
	}
}

func TestAtomicEdgeOrders(t *testing.T) {
	c := New(2)
	h0, h1 := c.PE(0), c.PE(1)
	h0.Write("Put", 1, DynamicSID, 0, 64, 10)
	h0.Quiet()
	h0.AtomicEdge(1, 4096) // e.g. FAdd on a counter after completing the put
	h1.AtomicEdge(1, 4096)
	h1.Read("Get", 1, DynamicSID, 0, 64, 20)
	if d := c.Diagnostics(); len(d) != 0 {
		t.Errorf("atomic-ordered read flagged: %v", d)
	}
}

func TestSigEdges(t *testing.T) {
	c := New(2)
	h0, h1 := c.PE(0), c.PE(1)
	h0.Write("Put", 1, DynamicSID, 0, 64, 10)
	h0.Quiet()
	h0.SigSend(1, 7)
	h1.SigRecv(7)
	h1.Read("Get", 1, DynamicSID, 0, 64, 20)
	if d := c.Diagnostics(); len(d) != 0 {
		t.Errorf("signal-ordered read flagged: %v", d)
	}
}

// TestStridedHooksPrecise checks that interleaved strided writes from two
// PEs are not flagged, while colliding ones are.
func TestStridedHooksPrecise(t *testing.T) {
	c := New(2)
	h0, h1 := c.PE(0), c.PE(1)
	h0.WriteStrided("IPut", 0, DynamicSID, 0, 16, 8, 8, 10)
	h1.WriteStrided("IPut", 0, DynamicSID, 8, 16, 8, 8, 20)
	if d := c.Diagnostics(); len(d) != 0 {
		t.Errorf("disjoint interleaved strided puts flagged: %v", d)
	}

	c = New(2)
	h0, h1 = c.PE(0), c.PE(1)
	h0.WriteStrided("IPut", 0, DynamicSID, 0, 16, 8, 8, 10)
	h1.WriteStrided("IPut", 0, DynamicSID, 16, 16, 8, 8, 20)
	d := c.Diagnostics()
	if len(d) != 1 || d[0].Kind != RacePutPut {
		t.Fatalf("colliding strided puts: %v, want one race:put/put", d)
	}
}

func TestNilHooksAreNoOps(t *testing.T) {
	var h *PEHooks
	h.Write("Put", 0, DynamicSID, 0, 8, 0)
	h.WriteStrided("IPut", 0, DynamicSID, 0, 8, 1, 8, 0)
	h.Read("Get", 0, DynamicSID, 0, 8, 0)
	h.ReadStrided("IGet", 0, DynamicSID, 0, 8, 1, 8, 0)
	h.ReadElem(0, 0, 8, 0)
	h.Quiet()
	h.Signal(0, 0, 8, 0)
	h.WaitEdge(0)
	h.AtomicEdge(0, 0)
	h.SigSend(0, 0)
	h.SigRecv(0)
	h.BarrierExit(h.BarrierEnter(0, 0, 1, 0))
	h.BarrierExit(h.SpinEnter())
	if h.LockSelfAcquire(0, 0) {
		t.Error("nil hooks reported a held lock")
	}
	h.LockAcquired(0)
	h.LockRelease(0, 0)
}

func TestDiagnosticStrings(t *testing.T) {
	kinds := []Kind{RacePutPut, RacePutGet, UnfencedPut, UnfencedRead,
		UnfencedSignal, LockDoubleAcquire, LockBadRelease, Kind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty String for kind %d", int(k))
		}
	}
	d := Diagnostic{Kind: RacePutPut, PE: 1, OtherPE: 0, TargetPE: 2,
		SID: 3, Offset: 64, Bytes: 8, Op: "Put", OtherOp: "Put",
		VTime: vtime.Time(5), OtherVT: vtime.Time(4), Count: 1}
	s := d.String()
	for _, want := range []string{"race:put/put", "static 3", "[64,72)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
