// Package sanitize is a happens-before checker over TSHMEM's symmetric
// memory: a race detector for the simulated SHMEM layer.
//
// The simulator performs every put eagerly — the bytes land in the target
// partition at issue time — while the paper's memory model (S IV.C.2) makes
// puts remotely visible only after shmem_quiet, shmem_fence, or a barrier.
// A user program with a real synchronization bug (a flag put with no Quiet
// after the data put, racing puts to one symmetric region) therefore
// computes the right answer here and corrupts data on real Tilera hardware.
// The checker makes the simulator detect those programs instead of hiding
// them.
//
// Mechanics: each PE carries a vector clock that advances on its own
// operations and merges across synchronization edges — barriers (which also
// complete outstanding puts, like shmem_barrier), collectives, the
// collectives' internal control signals, Quiet/Fence, elemental-put
// signaling consumed by Wait/WaitUntil, atomics, and locks. Every Put/Get
// records a shadow access (writer/reader PE, symmetric offset range, clock
// snapshot) against the target region; puts additionally track whether the
// writer has fenced them (Quiet or a barrier) and the clock at which the
// fence ran. Conflicting accesses whose clocks are not ordered are races;
// ordered reads of a put whose fence clock is not ordered before the reader
// are programs relying on the simulator's eager copy.
//
// A nil *PEHooks disables every hook (the same pattern as
// stats.Recorder), so instrumented code calls unconditionally and the
// sanitizer-off path stays allocation-free.
package sanitize

import (
	"fmt"
	"sort"
	"sync"

	"tshmem/internal/vtime"
)

// Kind classifies a diagnostic.
type Kind uint8

const (
	// RacePutPut: two PEs put to overlapping bytes of one symmetric region
	// with no synchronization edge ordering the puts.
	RacePutPut Kind = iota
	// RacePutGet: a put and a get (or the local side of a transfer) touch
	// overlapping bytes with no synchronization edge ordering them.
	RacePutGet
	// UnfencedPut: a put overwrites an earlier put that is ordered before
	// it but was never completed by Quiet/Fence/barrier on the writer — on
	// hardware the first put may still be in flight when the second lands.
	UnfencedPut
	// UnfencedRead: a get observes a put that is ordered before it, but
	// the writer never fenced the put before the synchronization edge —
	// the program only works because the simulator copies eagerly.
	UnfencedRead
	// UnfencedSignal: an elemental put (P) — the idiomatic "set the flag"
	// — was issued while the same PE had unfenced puts outstanding to the
	// same target; the classic missing-shmem_quiet bug.
	UnfencedSignal
	// LockDoubleAcquire: SetLock on a lock the calling PE already holds
	// (self-deadlock on hardware).
	LockDoubleAcquire
	// LockBadRelease: ClearLock on a lock the calling PE does not hold.
	LockBadRelease
	// Timeout: a bounded wait expired under fault injection (internal/
	// fault) — a barrier, collective signal, WaitUntil, init handshake, or
	// redirected transfer whose partner never progressed. Produced by
	// internal/core, not the happens-before checker; it reuses this
	// diagnostic type so every defect a run surfaces flows through one
	// Report.Diagnostics stream.
	Timeout
)

func (k Kind) String() string {
	switch k {
	case RacePutPut:
		return "race:put/put"
	case RacePutGet:
		return "race:put/get"
	case UnfencedPut:
		return "unfenced-put"
	case UnfencedRead:
		return "unfenced-read"
	case UnfencedSignal:
		return "unfenced-signal"
	case LockDoubleAcquire:
		return "lock:double-acquire"
	case LockBadRelease:
		return "lock:bad-release"
	case Timeout:
		return "timeout"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DynamicSID marks diagnostics against the dynamic symmetric heap (the
// SID field names a static object otherwise).
const DynamicSID int32 = -1

// Diagnostic is one detected synchronization defect. Identical defects
// (same kind, PE pair, region, offset) are folded into one Diagnostic with
// Count > 1.
type Diagnostic struct {
	Kind     Kind
	PE       int   // PE issuing the later operation
	OtherPE  int   // PE of the earlier conflicting operation (-1 if none)
	TargetPE int   // PE owning the symmetric region
	SID      int32 // static object id, or DynamicSID for the symmetric heap
	Offset   int64 // symmetric byte offset of the conflict
	Bytes    int64 // length of the conflicting range
	Op       string
	OtherOp  string
	VTime    vtime.Time // virtual time of the later operation
	OtherVT  vtime.Time // virtual time of the earlier operation
	Count    int        // occurrences folded into this diagnostic
	// Fault is the fault-plan event id blamed for a Kind == Timeout
	// diagnostic (-1 when no plan event was active); ignored otherwise.
	Fault int32
}

func (d Diagnostic) String() string {
	if d.Kind == Timeout {
		// For timeouts the fields are repurposed: PE is the stuck PE, Op
		// the blocked operation, OtherPE the awaited peer (-1 when the wait
		// had no single peer), VTime the wait start and OtherVT the
		// expired virtual deadline.
		s := fmt.Sprintf("timeout: PE %d blocked in %s", d.PE, d.Op)
		if d.OtherPE >= 0 {
			s += fmt.Sprintf(" (awaiting PE %d)", d.OtherPE)
		}
		s += fmt.Sprintf(" from vt %v until deadline %v", d.VTime, d.OtherVT)
		if d.Fault >= 0 {
			s += fmt.Sprintf(" [fault event %d]", d.Fault)
		}
		if d.Count > 1 {
			s += fmt.Sprintf(" x%d", d.Count)
		}
		return s
	}
	region := "heap"
	if d.SID != DynamicSID {
		region = fmt.Sprintf("static %d", d.SID)
	}
	s := fmt.Sprintf("%s: PE %d %s vs PE %d %s at PE %d %s+[%d,%d) (vt %v vs %v)",
		d.Kind, d.PE, d.Op, d.OtherPE, d.OtherOp, d.TargetPE, region,
		d.Offset, d.Offset+d.Bytes, d.VTime, d.OtherVT)
	if d.Count > 1 {
		s += fmt.Sprintf(" x%d", d.Count)
	}
	return s
}

// vclock is a fixed-length vector clock, one component per PE.
type vclock []uint64

func (v vclock) clone() vclock {
	w := make(vclock, len(v))
	copy(w, v)
	return w
}

func (v vclock) join(w vclock) {
	for i, x := range w {
		if x > v[i] {
			v[i] = x
		}
	}
}

// leq reports whether v happened-before-or-equals w (pointwise <=).
func (v vclock) leq(w vclock) bool {
	for i, x := range v {
		if x > w[i] {
			return false
		}
	}
	return true
}

// accessRec is one shadow access to a symmetric region: cnt elements of es
// bytes starting at off, successive elements stride bytes apart. A
// contiguous block access is cnt == 1 with es covering the whole block.
// Keeping the stride lets strided transfers (IPut/IGet) be checked
// element-precisely: a distributed transpose interleaves disjoint columns
// whose byte spans overlap completely.
type accessRec struct {
	pe       int32
	targetPE int32
	off      int64  // byte offset of the first element
	stride   int64  // byte distance between element starts
	cnt      int64  // number of elements
	es       int64  // bytes per element
	clock    vclock // owner's clock snapshot at issue
	vis      vclock // snapshot at fence time; nil until fenced
	fenced   bool
	vt       vtime.Time
	op       string
}

// span is the total byte extent [off, off+span).
func (r *accessRec) span() int64 { return (r.cnt-1)*r.stride + r.es }

// contigRec builds the shadow record of a contiguous nbytes access.
func contigRec(off, nbytes int64) accessRec {
	return accessRec{off: off, stride: nbytes, cnt: 1, es: nbytes}
}

func floorDiv(a, b int64) int64 { // b > 0
	q := a / b
	if a%b != 0 && a < 0 {
		q--
	}
	return q
}

// overlaps reports whether any element of r intersects any element of o.
// The spans are compared first; only when both accesses are strided does
// the element-precise walk run (over the progression with fewer elements,
// solving for intersecting indices of the other in O(1) each).
func (r *accessRec) overlaps(o *accessRec) bool {
	if r.off >= o.off+o.span() || o.off >= r.off+r.span() {
		return false
	}
	if r.cnt == 1 && o.cnt == 1 {
		return true
	}
	a, b := r, o
	if a.cnt > b.cnt {
		a, b = b, a
	}
	for i := int64(0); i < a.cnt; i++ {
		// Element [x, x+a.es) hits b's element j iff
		// b.off + j*b.stride is in (x - b.es, x + a.es).
		x := a.off + i*a.stride
		jlo := -floorDiv(-(x - b.es + 1 - b.off), b.stride)
		jhi := floorDiv(x+a.es-1-b.off, b.stride)
		if jlo < 0 {
			jlo = 0
		}
		if jhi >= b.cnt {
			jhi = b.cnt - 1
		}
		if jlo <= jhi {
			return true
		}
	}
	return false
}

// supersedes reports whether the new access rec makes the earlier
// same-writer access p unobservable on its own: a contiguous rec covering
// p's whole span, or a rewrite of the identical strided pattern.
func supersedes(rec, p *accessRec) bool {
	if rec.cnt == 1 {
		return rec.off <= p.off && p.off+p.span() <= rec.off+rec.es
	}
	return rec.off == p.off && rec.stride == p.stride && rec.es == p.es && rec.cnt >= p.cnt
}

// regionKey names one symmetric region: a PE's heap partition (sid ==
// DynamicSID) or its instance of a static object.
type regionKey struct {
	pe  int32
	sid int32
}

// regionState is the shadow state of one region.
type regionState struct {
	puts []*accessRec
	gets []*accessRec
}

// locKey names one watchable word: (owner PE, partition byte offset).
type locKey struct {
	pe  int32
	off int64
}

// edgeKey names one collective control-signal stream: (receiver, tag).
type edgeKey struct {
	dst int32
	tag uint32
}

// barKey names one barrier instance.
type barKey struct {
	start, stride, size int32
	gen                 uint32
	spin                bool
	inst                int64 // spin-barrier instance counter
}

// Barrier is the rendezvous accumulator of one in-flight barrier instance:
// every participant merges its clock in on entry and joins the merged
// clock on exit. Barrier semantics (all enter before any exits) make the
// join sound.
type Barrier struct {
	key     barKey
	vc      vclock
	entered int
	exited  int
	size    int
}

// Growth caps. Eviction trades completeness (possible false negatives) for
// bounded memory; the drop counters record that it happened.
const (
	maxRecsPerRegion = 256
	maxDiags         = 1024
	maxLocEntries    = 1 << 16
	maxEdgeEntries   = 1 << 16
)

type diagKey struct {
	kind     Kind
	pe       int32
	other    int32
	targetPE int32
	sid      int32
	off      int64
}

// Checker is the program-wide sanitizer state, shared by all PEs of one
// run and guarded by one mutex (the sanitizer is an opt-in debugging tool;
// it never touches virtual time, so serialization does not perturb the
// modeled results).
type Checker struct {
	mu       sync.Mutex
	n        int
	vc       []vclock
	shadow   map[regionKey]*regionState
	loc      map[locKey]vclock
	edges    map[edgeKey]vclock
	unfenced [][]*accessRec
	barriers map[barKey]*Barrier
	spinSeq  int64
	locks    map[int64]int32 // lock offset (on PE 0) -> holder, or -1
	diags    []Diagnostic
	seen     map[diagKey]int
	dropped  int64 // diagnostics beyond maxDiags
	evicted  int64 // shadow records evicted at the per-region cap
}

// New returns a Checker for an npes-PE program.
func New(npes int) *Checker {
	c := &Checker{
		n:        npes,
		vc:       make([]vclock, npes),
		shadow:   make(map[regionKey]*regionState),
		loc:      make(map[locKey]vclock),
		edges:    make(map[edgeKey]vclock),
		unfenced: make([][]*accessRec, npes),
		barriers: make(map[barKey]*Barrier),
		locks:    make(map[int64]int32),
		seen:     make(map[diagKey]int),
	}
	for i := range c.vc {
		c.vc[i] = make(vclock, npes)
	}
	return c
}

// PE returns the hook set for one PE. The hooks may be called from that
// PE's goroutine only.
func (c *Checker) PE(pe int) *PEHooks { return &PEHooks{c: c, pe: int32(pe)} }

// Dropped reports how many diagnostics were discarded beyond the cap.
func (c *Checker) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Diagnostics returns the folded diagnostics, sorted for determinism
// (virtual time, then region, then kind). Note that for genuinely racy
// programs the PE/OtherPE orientation of a diagnostic can differ between
// runs — which access the checker observes first is exactly what the race
// leaves undefined.
func (c *Checker) Diagnostics() []Diagnostic {
	c.mu.Lock()
	out := make([]Diagnostic, len(c.diags))
	copy(out, c.diags)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.VTime != b.VTime:
			return a.VTime < b.VTime
		case a.TargetPE != b.TargetPE:
			return a.TargetPE < b.TargetPE
		case a.SID != b.SID:
			return a.SID < b.SID
		case a.Offset != b.Offset:
			return a.Offset < b.Offset
		case a.Kind != b.Kind:
			return a.Kind < b.Kind
		case a.PE != b.PE:
			return a.PE < b.PE
		default:
			return a.OtherPE < b.OtherPE
		}
	})
	return out
}

// emit records a diagnostic, folding repeats of the same defect.
func (c *Checker) emit(d Diagnostic) {
	k := diagKey{d.Kind, int32(d.PE), int32(d.OtherPE), int32(d.TargetPE), d.SID, d.Offset}
	if i, ok := c.seen[k]; ok {
		c.diags[i].Count++
		return
	}
	if len(c.diags) >= maxDiags {
		c.dropped++
		return
	}
	d.Count = 1
	c.seen[k] = len(c.diags)
	c.diags = append(c.diags, d)
}

func (c *Checker) region(k regionKey) *regionState {
	rs := c.shadow[k]
	if rs == nil {
		rs = &regionState{}
		c.shadow[k] = rs
	}
	return rs
}

// fence marks every outstanding put of PE pe complete as of its current
// clock (the effect of Quiet/Fence, and of entering a barrier).
func (c *Checker) fence(pe int32) {
	recs := c.unfenced[pe]
	if len(recs) == 0 {
		return
	}
	var vis vclock // one shared snapshot; records are immutable after fencing
	for _, r := range recs {
		if r.fenced {
			continue
		}
		if vis == nil {
			vis = c.vc[pe].clone()
		}
		r.fenced = true
		r.vis = vis
	}
	c.unfenced[pe] = c.unfenced[pe][:0]
}

// tick advances pe's own clock component.
func (c *Checker) tick(pe int32) { c.vc[pe][pe]++ }

// appendRec inserts rec into list enforcing the per-region cap (FIFO).
func (c *Checker) appendRec(list []*accessRec, rec *accessRec) []*accessRec {
	if len(list) >= maxRecsPerRegion {
		copy(list, list[1:])
		list = list[:len(list)-1]
		c.evicted++
	}
	return append(list, rec)
}

// PEHooks is one PE's entry points into the checker. A nil *PEHooks is
// valid and disables every hook.
type PEHooks struct {
	c  *Checker
	pe int32
}

// Write records a put of nbytes at symmetric offset off of (targetPE, sid)
// and checks it against conflicting shadow accesses.
func (h *PEHooks) Write(op string, targetPE int, sid int32, off, nbytes int64, vt vtime.Time) {
	if h == nil || nbytes <= 0 {
		return
	}
	h.write(op, targetPE, sid, contigRec(off, nbytes), vt)
}

// WriteStrided is Write for a strided put (IPut): nelems elements of es
// bytes, element starts strideBytes apart.
func (h *PEHooks) WriteStrided(op string, targetPE int, sid int32, off, strideBytes int64, nelems int, es int64, vt vtime.Time) {
	if h == nil || nelems <= 0 || es <= 0 || strideBytes <= 0 {
		return
	}
	h.write(op, targetPE, sid,
		accessRec{off: off, stride: strideBytes, cnt: int64(nelems), es: es}, vt)
}

func (h *PEHooks) write(op string, targetPE int, sid int32, shape accessRec, vt vtime.Time) {
	c := h.c
	c.mu.Lock()
	defer c.mu.Unlock()
	// Tick before snapshotting so the record's clock includes this very
	// op: a PE that never synchronized with us must not dominate it.
	c.tick(h.pe)
	v := c.vc[h.pe]
	rec := &shape
	rec.pe, rec.targetPE = h.pe, int32(targetPE)
	rec.clock, rec.vt, rec.op = v.clone(), vt, op
	rs := c.region(regionKey{int32(targetPE), sid})
	for _, p := range rs.puts {
		if p.pe == h.pe || !p.overlaps(rec) {
			continue
		}
		switch {
		case !p.clock.leq(v):
			c.emit(Diagnostic{Kind: RacePutPut, PE: int(h.pe), OtherPE: int(p.pe),
				TargetPE: targetPE, SID: sid, Offset: rec.off, Bytes: rec.span(),
				Op: op, OtherOp: p.op, VTime: vt, OtherVT: p.vt})
		case !p.fenced || !p.vis.leq(v):
			c.emit(Diagnostic{Kind: UnfencedPut, PE: int(h.pe), OtherPE: int(p.pe),
				TargetPE: targetPE, SID: sid, Offset: rec.off, Bytes: rec.span(),
				Op: op, OtherOp: p.op, VTime: vt, OtherVT: p.vt})
		}
	}
	for _, g := range rs.gets {
		if g.pe == h.pe || !g.overlaps(rec) {
			continue
		}
		if !g.clock.leq(v) {
			c.emit(Diagnostic{Kind: RacePutGet, PE: int(h.pe), OtherPE: int(g.pe),
				TargetPE: targetPE, SID: sid, Offset: rec.off, Bytes: rec.span(),
				Op: op, OtherOp: g.op, VTime: vt, OtherVT: g.vt})
		}
	}
	if int(h.pe) == targetPE {
		// The owner's stores to its own partition are coherent without an
		// explicit fence; ordering edges alone make them visible.
		rec.fenced = true
		rec.vis = rec.clock
	}
	// Compact: a fully-superseded earlier put by the same writer can no
	// longer be observed on its own.
	kept := rs.puts[:0]
	for _, p := range rs.puts {
		if p.pe == h.pe && supersedes(rec, p) {
			continue
		}
		kept = append(kept, p)
	}
	rs.puts = c.appendRec(kept, rec)
	if !rec.fenced {
		c.unfenced[h.pe] = append(c.unfenced[h.pe], rec)
	}
}

// Read records a get of nbytes at symmetric offset off of (targetPE, sid)
// and checks it against shadow puts: unordered puts are races; ordered
// puts that were never fenced before the ordering edge are reads that only
// work because the simulator copies eagerly.
func (h *PEHooks) Read(op string, targetPE int, sid int32, off, nbytes int64, vt vtime.Time) {
	if h == nil || nbytes <= 0 {
		return
	}
	c := h.c
	c.mu.Lock()
	defer c.mu.Unlock()
	h.readLocked(op, targetPE, sid, contigRec(off, nbytes), vt)
}

// ReadStrided is Read for a strided get (IGet).
func (h *PEHooks) ReadStrided(op string, targetPE int, sid int32, off, strideBytes int64, nelems int, es int64, vt vtime.Time) {
	if h == nil || nelems <= 0 || es <= 0 || strideBytes <= 0 {
		return
	}
	c := h.c
	c.mu.Lock()
	defer c.mu.Unlock()
	h.readLocked(op, targetPE, sid,
		accessRec{off: off, stride: strideBytes, cnt: int64(nelems), es: es}, vt)
}

func (h *PEHooks) readLocked(op string, targetPE int, sid int32, shape accessRec, vt vtime.Time) {
	c := h.c
	c.tick(h.pe) // see write: the record's clock must include this op
	v := c.vc[h.pe]
	rec := &shape
	rec.pe, rec.targetPE = h.pe, int32(targetPE)
	rec.clock, rec.vt, rec.op = v.clone(), vt, op
	rs := c.region(regionKey{int32(targetPE), sid})
	for _, p := range rs.puts {
		if p.pe == h.pe || !p.overlaps(rec) {
			continue
		}
		switch {
		case !p.clock.leq(v):
			c.emit(Diagnostic{Kind: RacePutGet, PE: int(h.pe), OtherPE: int(p.pe),
				TargetPE: targetPE, SID: sid, Offset: rec.off, Bytes: rec.span(),
				Op: op, OtherOp: p.op, VTime: vt, OtherVT: p.vt})
		case !p.fenced || !p.vis.leq(v):
			c.emit(Diagnostic{Kind: UnfencedRead, PE: int(h.pe), OtherPE: int(p.pe),
				TargetPE: targetPE, SID: sid, Offset: rec.off, Bytes: rec.span(),
				Op: op, OtherOp: p.op, VTime: vt, OtherVT: p.vt})
		}
	}
	rs.gets = c.appendRec(rs.gets, rec)
}

// ReadElem is Read for the elemental get (G) on a dynamic word: the get
// check plus, when the word has been published by P or an atomic, the
// acquire edge a real coherence read of the delivered word implies.
func (h *PEHooks) ReadElem(targetPE int, off, nbytes int64, vt vtime.Time) {
	if h == nil {
		return
	}
	c := h.c
	c.mu.Lock()
	defer c.mu.Unlock()
	h.readLocked("G", targetPE, DynamicSID, contigRec(off, nbytes), vt)
	if lv, ok := c.loc[locKey{int32(targetPE), off}]; ok {
		c.vc[h.pe].join(lv)
	}
	c.tick(h.pe)
}

// Quiet marks all outstanding puts of this PE complete (shmem_quiet and
// shmem_fence, which TSHMEM aliases to Quiet).
func (h *PEHooks) Quiet() {
	if h == nil {
		return
	}
	h.c.mu.Lock()
	h.c.fence(h.pe)
	h.c.tick(h.pe)
	h.c.mu.Unlock()
}

// Signal records an elemental put (P) to the word at off on targetPE: a
// release publication consumed by WaitEdge/ReadElem. If this PE still has
// unfenced puts outstanding to the same target — other than to the flag
// word itself — the signal is the canonical missing-Quiet bug and is
// diagnosed at issue time.
func (h *PEHooks) Signal(targetPE int, off, width int64, vt vtime.Time) {
	if h == nil {
		return
	}
	c := h.c
	c.mu.Lock()
	defer c.mu.Unlock()
	flag := contigRec(off, width)
	for _, r := range c.unfenced[h.pe] {
		if r.fenced || int(r.targetPE) != targetPE {
			continue
		}
		if r.overlaps(&flag) {
			continue // the flag word itself
		}
		c.emit(Diagnostic{Kind: UnfencedSignal, PE: int(h.pe), OtherPE: int(h.pe),
			TargetPE: int(r.targetPE), SID: DynamicSID, Offset: r.off, Bytes: r.span(),
			Op: "P(flag)", OtherOp: r.op, VTime: vt, OtherVT: r.vt})
	}
	k := locKey{int32(targetPE), off}
	lv, ok := c.loc[k]
	if !ok {
		if len(c.loc) >= maxLocEntries {
			c.loc = make(map[locKey]vclock) // reset; over-approximation only shrinks
		}
		lv = make(vclock, c.n)
		c.loc[k] = lv
	}
	lv.join(c.vc[h.pe])
	c.tick(h.pe)
}

// WaitEdge is the acquire side of Signal: Wait/WaitUntil on the calling
// PE's word at off was satisfied, so the waiter joins every publication to
// that word.
func (h *PEHooks) WaitEdge(off int64) {
	if h == nil {
		return
	}
	c := h.c
	c.mu.Lock()
	if lv, ok := c.loc[locKey{h.pe, off}]; ok {
		c.vc[h.pe].join(lv)
	}
	c.tick(h.pe)
	c.mu.Unlock()
}

// AtomicEdge records an atomic operation on the word at off on targetPE:
// a bidirectional merge with the word's clock, the mutual-ordering edge a
// real fetch-op at the line's home tile provides. (Failed compare-and-swap
// attempts also merge — an over-approximation that can only hide races,
// never invent them.)
func (h *PEHooks) AtomicEdge(targetPE int, off int64) {
	if h == nil {
		return
	}
	c := h.c
	c.mu.Lock()
	k := locKey{int32(targetPE), off}
	lv, ok := c.loc[k]
	if !ok {
		if len(c.loc) >= maxLocEntries {
			c.loc = make(map[locKey]vclock)
		}
		lv = make(vclock, c.n)
		c.loc[k] = lv
	}
	lv.join(c.vc[h.pe])
	c.vc[h.pe].join(lv)
	c.tick(h.pe)
	c.mu.Unlock()
}

// SigSend records a collective control signal leaving for dst: the
// receiver's matching SigRecv joins this PE's clock.
func (h *PEHooks) SigSend(dst int, tag uint32) {
	if h == nil {
		return
	}
	c := h.c
	c.mu.Lock()
	k := edgeKey{int32(dst), tag}
	ev, ok := c.edges[k]
	if !ok {
		if len(c.edges) >= maxEdgeEntries {
			c.edges = make(map[edgeKey]vclock)
		}
		ev = make(vclock, c.n)
		c.edges[k] = ev
	}
	ev.join(c.vc[h.pe])
	c.tick(h.pe)
	c.mu.Unlock()
}

// SigRecv joins the clocks published to (this PE, tag) by SigSend.
func (h *PEHooks) SigRecv(tag uint32) {
	if h == nil {
		return
	}
	c := h.c
	c.mu.Lock()
	if ev, ok := c.edges[edgeKey{h.pe, tag}]; ok {
		c.vc[h.pe].join(ev)
	}
	c.tick(h.pe)
	c.mu.Unlock()
}

// BarrierEnter begins this PE's participation in a barrier instance
// (identified by active set and generation). Entering a barrier completes
// outstanding puts, exactly like shmem_barrier_all. The returned token
// must be passed to BarrierExit once the barrier's release reaches this
// PE.
func (h *PEHooks) BarrierEnter(start, logStride, size int, gen uint32) *Barrier {
	if h == nil {
		return nil
	}
	k := barKey{start: int32(start), stride: int32(logStride), size: int32(size), gen: gen}
	return h.enter(k, size)
}

// SpinEnter is BarrierEnter for the program-wide TMC spin barrier (which
// carries no active-set identification); arrival counting identifies the
// instance, which is sound because all PEs enter instance k before any PE
// exits it.
func (h *PEHooks) SpinEnter() *Barrier {
	if h == nil {
		return nil
	}
	h.c.mu.Lock()
	inst := h.c.spinSeq / int64(h.c.n)
	h.c.spinSeq++
	h.c.mu.Unlock()
	return h.enter(barKey{spin: true, inst: inst}, h.c.n)
}

func (h *PEHooks) enter(k barKey, size int) *Barrier {
	c := h.c
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fence(h.pe)
	b := c.barriers[k]
	if b == nil {
		b = &Barrier{key: k, vc: make(vclock, c.n), size: size}
		c.barriers[k] = b
	}
	b.vc.join(c.vc[h.pe])
	b.entered++
	c.tick(h.pe)
	return b
}

// BarrierExit completes this PE's participation: its clock joins the merge
// of every participant's entry clock.
func (h *PEHooks) BarrierExit(b *Barrier) {
	if h == nil || b == nil {
		return
	}
	c := h.c
	c.mu.Lock()
	c.vc[h.pe].join(b.vc)
	b.exited++
	if b.exited >= b.size {
		delete(c.barriers, b.key)
	}
	c.tick(h.pe)
	c.mu.Unlock()
}

// LockSelfAcquire checks a SetLock attempt: it reports (and diagnoses)
// true when the calling PE already holds the lock, which on hardware spins
// forever.
func (h *PEHooks) LockSelfAcquire(off int64, vt vtime.Time) bool {
	if h == nil {
		return false
	}
	c := h.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if holder, ok := c.locks[off]; ok && holder == h.pe {
		c.emit(Diagnostic{Kind: LockDoubleAcquire, PE: int(h.pe), OtherPE: int(h.pe),
			TargetPE: 0, SID: DynamicSID, Offset: off, Bytes: 8,
			Op: "SetLock", OtherOp: "SetLock", VTime: vt, OtherVT: vt})
		return true
	}
	return false
}

// LockAcquired records that the calling PE now holds the lock and joins
// the previous holder's release clock.
func (h *PEHooks) LockAcquired(off int64) {
	if h == nil {
		return
	}
	c := h.c
	c.mu.Lock()
	c.locks[off] = h.pe
	if lv, ok := c.loc[locKey{0, off}]; ok {
		c.vc[h.pe].join(lv)
	}
	c.tick(h.pe)
	c.mu.Unlock()
}

// LockRelease checks and records a ClearLock: releasing a lock the caller
// does not hold is diagnosed (the store still destroys the real holder's
// ownership, which is why core also returns an error).
func (h *PEHooks) LockRelease(off int64, vt vtime.Time) {
	if h == nil {
		return
	}
	c := h.c
	c.mu.Lock()
	holder, ok := c.locks[off]
	if !ok || holder != h.pe {
		other := -1
		if ok {
			other = int(holder)
		}
		c.emit(Diagnostic{Kind: LockBadRelease, PE: int(h.pe), OtherPE: other,
			TargetPE: 0, SID: DynamicSID, Offset: off, Bytes: 8,
			Op: "ClearLock", OtherOp: "SetLock", VTime: vt, OtherVT: vt})
	}
	delete(c.locks, off)
	c.tick(h.pe)
	c.mu.Unlock()
}
