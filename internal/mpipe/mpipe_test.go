package mpipe

import (
	"errors"
	"testing"

	"tshmem/internal/arch"
	"tshmem/internal/vtime"
)

func fabric(t *testing.T, nchips, npes int) *Fabric {
	t.Helper()
	per := (npes + nchips - 1) / nchips
	f, err := New(arch.Gx8036(), nchips, npes, func(pe int) int { return pe / per })
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(arch.Pro64(), 2, 4, func(int) int { return 0 }); !errors.Is(err, ErrNoMPIPE) {
		t.Errorf("TILEPro fabric: %v", err)
	}
	if _, err := New(arch.Gx8036(), 1, 4, func(int) int { return 0 }); err == nil {
		t.Error("single-chip fabric accepted")
	}
}

func TestSendRecv(t *testing.T) {
	f := fabric(t, 2, 4)
	defer f.Close()
	var sc, rc vtime.Clock
	if err := f.Send(&sc, 0, 2, 7, []uint64{42}); err != nil {
		t.Fatal(err)
	}
	m, err := f.Recv(&rc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.SrcPE != 0 || m.Tag != 7 || m.Words[0] != 42 {
		t.Errorf("message corrupted: %+v", m)
	}
	// One-way latency ~ MPIPELatencyNs (1800 ns on the Gx): far above UDN.
	if ns := rc.Now().Ns(); ns < 1700 || ns > 2000 {
		t.Errorf("control latency = %.0f ns, want ~1800", ns)
	}
	if f.Chips() != 2 {
		t.Errorf("Chips = %d", f.Chips())
	}
	if !f.SameChip(0, 1) || f.SameChip(1, 2) {
		t.Error("SameChip wrong")
	}
}

func TestSendValidation(t *testing.T) {
	f := fabric(t, 2, 4)
	defer f.Close()
	var c vtime.Clock
	if err := f.Send(&c, 0, 9, 0, []uint64{1}); !errors.Is(err, ErrBadPE) {
		t.Errorf("bad dst: %v", err)
	}
	if _, err := f.Recv(&c, -1); !errors.Is(err, ErrBadPE) {
		t.Errorf("bad recv pe: %v", err)
	}
}

func TestDataCost(t *testing.T) {
	f := fabric(t, 2, 4)
	defer f.Close()
	// 4x10GbE = 5000 MB/s aggregate: 5 MB should take ~1 ms + latency.
	d := f.DataCost(5 << 20)
	if d.Ms() < 0.9 || d.Ms() > 1.3 {
		t.Errorf("5 MB wire time = %v, want ~1.05 ms", d)
	}
	if f.DataCost(0) != f.DataCost(-1) {
		t.Error("non-positive sizes should cost the control latency")
	}
}

func TestChargeDataContends(t *testing.T) {
	// Two transfers on the same chip pair serialize on the wire; a transfer
	// on a different pair does not.
	f := fabric(t, 3, 6)
	defer f.Close()
	var a, b, c vtime.Clock
	f.ChargeData(&a, 0, 2, 1<<20) // chips 0->1
	f.ChargeData(&b, 1, 3, 1<<20) // chips 0->1 again: queues behind a
	f.ChargeData(&c, 0, 4, 1<<20) // chips 0->2: independent wire
	if b.Now() <= a.Now() {
		t.Errorf("same-pair transfer should queue: %v vs %v", b.Now(), a.Now())
	}
	if c.Now() >= b.Now() {
		t.Errorf("different pair should not queue: %v vs %v", c.Now(), b.Now())
	}
}

func TestCloseUnblocks(t *testing.T) {
	f := fabric(t, 2, 4)
	errc := make(chan error, 1)
	go func() {
		var c vtime.Clock
		_, err := f.Recv(&c, 0)
		errc <- err
	}()
	f.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Errorf("recv after close: %v", err)
	}
	var c vtime.Clock
	if err := f.Send(&c, 0, 1, 0, []uint64{1}); err == nil {
		// Send may still succeed if the inbox has room; both behaviors are
		// acceptable, but a queued message must still be drainable.
		if _, err := f.Recv(&c, 1); err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("drain after close: %v", err)
		}
	}
}
