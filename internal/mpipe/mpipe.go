// Package mpipe models the TILE-Gx mPIPE (multicore Programmable
// Intelligent Packet Engine) as a chip-to-chip fabric, implementing the
// multi-device shared-memory extension the paper proposes as future work:
// "we plan to leverage novel architectural features of the TILE-Gx such as
// the mPIPE packet engine as we explore designs for expanding the
// shared-memory abstraction in TSHMEM across multiple many-core devices"
// (Section VI).
//
// The model: chips are fully connected by MPIPELinks parallel 10GbE links.
// A control message costs the one-way mPIPE latency (classification, wire,
// load-balanced delivery); bulk data streams at the aggregate link rate,
// serialized per chip pair through a virtual-time resource so concurrent
// cross-chip transfers contend for the wire, unlike the on-chip iMesh.
package mpipe

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tshmem/internal/arch"
	"tshmem/internal/vtime"
)

// Errors.
var (
	ErrNoMPIPE = errors.New("mpipe: chip has no mPIPE engine")
	ErrClosed  = errors.New("mpipe: fabric closed")
	ErrBadPE   = errors.New("mpipe: destination PE out of range")

	// ErrTimeout reports a receive that exceeded the host-time grace set
	// with SetGrace (fault injection on the sender's chip may have
	// swallowed the expected message). Never returned when no grace is
	// armed.
	ErrTimeout = errors.New("mpipe: bounded wait timed out")
)

// Msg is one cross-chip control message.
type Msg struct {
	SrcPE  int
	Tag    uint32
	Words  []uint64
	Arrive vtime.Time
	Sent   vtime.Time // sender's virtual clock at injection completion
}

// Fabric connects the PEs of a multi-chip program. Control messages are
// addressed to PEs (each PE has an inbox); bulk transfers are charged
// against the per-chip-pair wire resource.
type Fabric struct {
	chip   *arch.Chip
	nchips int
	chipOf func(pe int) int

	inbox []chan Msg
	wires map[[2]int]*vtime.Resource
	mu    sync.Mutex

	closed    chan struct{}
	closeOnce sync.Once
	grace     time.Duration // host-time bound on receives; 0 = unbounded
	sched     Scheduler     // nil means free-running goroutines block on channels
}

// Scheduler lets an event-driven engine mediate the fabric's blocking
// points, mirroring udn.Scheduler: with one attached, Send/Recv/RecvRaw
// poll and park the calling PE instead of blocking on channels. Inboxes
// are addressed by global PE rank, so no translation is needed.
type Scheduler interface {
	// WaitRecv parks PE pe until a message may be in its inbox; nil means
	// re-poll, a non-nil error is a bounded-wait expiry (ErrTimeout).
	WaitRecv(pe int) error
	// WaitSend parks PE src until space may be available in dst's inbox.
	WaitSend(src, dst int) error
	// Enqueued notes a message landed in pe's inbox: wakes its receiver.
	Enqueued(pe int)
	// Dequeued notes a message left pe's inbox: wakes parked senders.
	Dequeued(pe int)
}

// SetScheduler attaches an event-driven engine's scheduler to every
// blocking point of this fabric. A nil scheduler (the default) keeps the
// channel-blocking behavior. Set before PEs start communicating.
func (f *Fabric) SetScheduler(s Scheduler) { f.sched = s }

// isClosed is the non-blocking closed probe the scheduler-driven poll
// loops use.
func (f *Fabric) isClosed() bool {
	select {
	case <-f.closed:
		return true
	default:
		return false
	}
}

// New creates a fabric for npes PEs spread over nchips chips; chipOf maps a
// PE to its chip.
func New(chip *arch.Chip, nchips, npes int, chipOf func(pe int) int) (*Fabric, error) {
	if !chip.HasMPIPE {
		return nil, fmt.Errorf("%w: %s", ErrNoMPIPE, chip.Name)
	}
	if nchips < 2 {
		return nil, fmt.Errorf("mpipe: a fabric needs at least 2 chips, got %d", nchips)
	}
	f := &Fabric{
		chip:   chip,
		nchips: nchips,
		chipOf: chipOf,
		inbox:  make([]chan Msg, npes),
		wires:  make(map[[2]int]*vtime.Resource),
		closed: make(chan struct{}),
	}
	for i := range f.inbox {
		f.inbox[i] = make(chan Msg, 128)
	}
	return f, nil
}

// Chips reports the number of chips.
func (f *Fabric) Chips() int { return f.nchips }

// SameChip reports whether two PEs share a chip.
func (f *Fabric) SameChip(a, b int) bool { return f.chipOf(a) == f.chipOf(b) }

// latency is the one-way control-message latency.
func (f *Fabric) latency() vtime.Duration {
	return vtime.FromNs(f.chip.MPIPELatencyNs)
}

// aggMBs is the aggregate chip-pair data rate in MB/s.
func (f *Fabric) aggMBs() float64 {
	return float64(f.chip.MPIPELinks) * f.chip.MPIPELinkGbps * 1000 / 8
}

// wire returns the virtual-time resource serializing bulk data between a
// chip pair.
func (f *Fabric) wire(a, b int) *vtime.Resource {
	if a > b {
		a, b = b, a
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	key := [2]int{a, b}
	r, ok := f.wires[key]
	if !ok {
		r = &vtime.Resource{}
		f.wires[key] = r
	}
	return r
}

// SetGrace arms a host-time bound on blocking receives: with fault
// injection active on some chip, a leader that never hears from a starved
// peer must unblock with ErrTimeout rather than hang. The fabric itself
// is not a fault target — chip-local substrate faults are modeled in
// internal/udn — so the bound is purely a liveness fallback. Set before
// PEs start communicating; 0 (the default) means unbounded.
func (f *Fabric) SetGrace(d time.Duration) { f.grace = d }

// timeoutCh returns a grace-timer channel (nil, never ready, when no
// grace is armed) plus its timer for stopping.
func (f *Fabric) timeoutCh() (<-chan time.Time, *time.Timer) {
	if f.grace <= 0 {
		return nil, nil
	}
	t := time.NewTimer(f.grace)
	return t.C, t
}

// Send delivers a control message to PE dst on another chip. The sender's
// clock advances by the injection share; the message carries the arrival
// time.
func (f *Fabric) Send(clock *vtime.Clock, srcPE, dstPE int, tag uint32, words []uint64) error {
	if dstPE < 0 || dstPE >= len(f.inbox) {
		return fmt.Errorf("%w: %d", ErrBadPE, dstPE)
	}
	// Injection: the sending tile hands the packet to mPIPE.
	clock.Advance(f.latency() / 4)
	msg := Msg{
		SrcPE:  srcPE,
		Tag:    tag,
		Words:  words,
		Arrive: clock.Now().Add(f.latency() * 3 / 4),
		Sent:   clock.Now(),
	}
	if s := f.sched; s != nil {
		for {
			select {
			case f.inbox[dstPE] <- msg:
				s.Enqueued(dstPE)
				return nil
			default:
			}
			if f.isClosed() {
				return ErrClosed
			}
			if err := s.WaitSend(srcPE, dstPE); err != nil {
				return err
			}
		}
	}
	select {
	case f.inbox[dstPE] <- msg:
		return nil
	case <-f.closed:
		return ErrClosed
	}
}

// Recv blocks until a message for PE pe arrives, merging the clock with its
// arrival time. Callers needing tag matching should stash mismatches
// themselves (as the UDN users do).
func (f *Fabric) Recv(clock *vtime.Clock, pe int) (Msg, error) {
	if pe < 0 || pe >= len(f.inbox) {
		return Msg{}, fmt.Errorf("%w: %d", ErrBadPE, pe)
	}
	if s := f.sched; s != nil {
		for {
			// Poll before the closed check: a closed fabric still drains
			// what already arrived, like the goroutine path below.
			select {
			case m := <-f.inbox[pe]:
				clock.AdvanceTo(m.Arrive)
				s.Dequeued(pe)
				return m, nil
			default:
			}
			if f.isClosed() {
				return Msg{}, ErrClosed
			}
			if err := s.WaitRecv(pe); err != nil {
				return Msg{}, err
			}
		}
	}
	timeout, timer := f.timeoutCh()
	if timer != nil {
		defer timer.Stop()
	}
	select {
	case m := <-f.inbox[pe]:
		clock.AdvanceTo(m.Arrive)
		return m, nil
	case <-timeout:
		return Msg{}, ErrTimeout
	case <-f.closed:
		// Drain what is already queued before reporting closure.
		select {
		case m := <-f.inbox[pe]:
			clock.AdvanceTo(m.Arrive)
			return m, nil
		default:
			return Msg{}, ErrClosed
		}
	}
}

// RecvRaw is Recv without the clock merge; callers that stash out-of-order
// messages merge with Msg.Arrive when they actually consume one.
func (f *Fabric) RecvRaw(pe int) (Msg, error) {
	if pe < 0 || pe >= len(f.inbox) {
		return Msg{}, fmt.Errorf("%w: %d", ErrBadPE, pe)
	}
	if s := f.sched; s != nil {
		for {
			select {
			case m := <-f.inbox[pe]:
				s.Dequeued(pe)
				return m, nil
			default:
			}
			if f.isClosed() {
				return Msg{}, ErrClosed
			}
			if err := s.WaitRecv(pe); err != nil {
				return Msg{}, err
			}
		}
	}
	timeout, timer := f.timeoutCh()
	if timer != nil {
		defer timer.Stop()
	}
	select {
	case m := <-f.inbox[pe]:
		return m, nil
	case <-timeout:
		return Msg{}, ErrTimeout
	case <-f.closed:
		select {
		case m := <-f.inbox[pe]:
			return m, nil
		default:
			return Msg{}, ErrClosed
		}
	}
}

// ChargeData books a bulk transfer of size bytes between the chips of
// srcPE and dstPE: the caller's clock advances past the wire time,
// contending with other transfers on the same chip pair.
func (f *Fabric) ChargeData(clock *vtime.Clock, srcPE, dstPE int, size int64) {
	if size <= 0 {
		clock.Advance(f.latency())
		return
	}
	wireTime := vtime.FromNs(float64(size) / f.aggMBs() * 1e3)
	done := f.wire(f.chipOf(srcPE), f.chipOf(dstPE)).Acquire(clock.Now(), wireTime)
	clock.AdvanceTo(done.Add(f.latency()))
}

// DataCost reports the uncontended wire time for size bytes (for
// inspection and tests).
func (f *Fabric) DataCost(size int64) vtime.Duration {
	if size <= 0 {
		return f.latency()
	}
	return f.latency() + vtime.FromNs(float64(size)/f.aggMBs()*1e3)
}

// Close shuts the fabric down; blocked receivers get ErrClosed.
func (f *Fabric) Close() {
	f.closeOnce.Do(func() { close(f.closed) })
}
