package cache

import (
	"testing"

	"tshmem/internal/arch"
)

// TestHomingSingleStream encodes S III.A's single-accessor trade-offs:
// local homing wins while the data fits one L2 and collapses to the memory
// floor beyond it; remote homing pays a small flat penalty.
func TestHomingSingleStream(t *testing.T) {
	m := NewModel(arch.Gx8036())
	small := int64(32 << 10) // inside L2
	large := int64(4 << 20)  // beyond one L2

	hash := m.BandwidthHomed(small, SharedAny, HashForHome)
	local := m.BandwidthHomed(small, SharedAny, LocalHome)
	remote := m.BandwidthHomed(small, SharedAny, RemoteHome)
	if !(local > hash && hash > remote) {
		t.Errorf("small working set: local %v > hash %v > remote %v expected", local, hash, remote)
	}

	hashL := m.BandwidthHomed(large, SharedAny, HashForHome)
	localL := m.BandwidthHomed(large, SharedAny, LocalHome)
	if localL >= hashL {
		t.Errorf("beyond L2, hash-for-home (%v) must beat local homing (%v): the DDC", hashL, localL)
	}
	floor := m.Bandwidth(1<<40, SharedAny)
	if localL != floor {
		t.Errorf("local homing beyond L2 = %v, want memory floor %v", localL, floor)
	}
	// Private transfers are unaffected by homing.
	if m.BandwidthHomed(small, PrivateToPrivate, LocalHome) != m.Bandwidth(small, PrivateToPrivate) {
		t.Error("homing must not affect private transfers")
	}
}

// TestHomingFanIn: only hash-for-home spreads concurrent readers across the
// DDC; pinned homes serialize.
func TestHomingFanIn(t *testing.T) {
	m := NewModel(arch.Gx8036())
	const size, streams = 64 << 10, 24
	agg := func(h Homing) float64 {
		return float64(streams) * m.BandwidthHomedConcurrent(size, SharedAny, h, streams)
	}
	hash, local, remote := agg(HashForHome), agg(LocalHome), agg(RemoteHome)
	if hash < 4*local || hash < 4*remote {
		t.Errorf("hash fan-in aggregate (%v) should dwarf pinned homes (local %v, remote %v)",
			hash, local, remote)
	}
	// Single stream is never degraded.
	if m.BandwidthHomedConcurrent(size, SharedAny, RemoteHome, 1) != m.BandwidthHomed(size, SharedAny, RemoteHome) {
		t.Error("1 stream should be undegraded")
	}
}

func TestCopyCostHomed(t *testing.T) {
	m := NewModel(arch.Gx8036())
	if m.CopyCost(1<<20, SharedAny, 1) != m.CopyCostHomed(1<<20, SharedAny, HashForHome, 1) {
		t.Error("CopyCost must equal the hash-for-home CopyCostHomed")
	}
	if m.CopyCostHomed(4<<20, SharedAny, LocalHome, 1) <= m.CopyCost(4<<20, SharedAny, 1) {
		t.Error("local homing beyond L2 must cost more than hash-for-home")
	}
}
