// Package cache models the Tilera memory hierarchy described in Section
// III.A of the paper: per-tile L1i/L1d/L2 caches, the Dynamic Distributed
// Cache (DDC — an L3 formed by aggregating every tile's L2), and the three
// memory-homing strategies (local, remote, hash-for-home).
//
// # Bandwidth model
//
// The package exposes an effective-bandwidth model for memory-copy
// operations. Bandwidth is interpolated in log-size space between
// calibrated anchors carried by the chip description (arch.CopyCurve),
// reproducing the cache-capacity knees of Figure 3, and is degraded by a
// concurrency term when many tiles stream simultaneously, reproducing the
// aggregate saturation of Figures 10–12. Two curves exist per chip: one
// for private-to-private copies within a tile's heap and one for the
// shared (TMC common memory, hash-for-home) regime that TSHMEM's
// one-sided transfers live in.
//
// # Homing
//
// BandwidthHomed encodes the qualitative trade-offs of Section III.A:
// hash-for-home follows the calibrated curve with the DDC spreading lines
// across all tiles; local homing is slightly faster while the working set
// fits the tile's own L2 but forfeits the DDC beyond it; remote homing
// pays a flat penalty to a single home tile and, under concurrency,
// serializes all fan-in at that tile — the bottleneck the paper warns
// about.
//
// # Costs and levels
//
// CopyCost/CopyCostHomed convert bandwidth into virtual time for one
// memcpy (fixed per-call overhead plus size over effective bandwidth);
// StreamCost models loops whose working set keeps evicting itself;
// LevelFor classifies a working set by the hierarchy level that backs it
// (L1d, L2, DDC, or DRAM), which is also the classification the
// observability layer uses to attribute charged copies as cache hits
// (L1d/L2/DDC) or misses (DRAM): CopyCostHomedRec accounts each charged
// copy on the calling PE's stats.Recorder.
package cache
