package cache

import (
	"testing"

	"tshmem/internal/arch"
	"tshmem/internal/stats"
)

// stats.CacheLevel cannot alias Level without an import cycle, so
// CopyCostHomedRec converts by value. This pins the two declaration orders
// together; if either enum changes, this test fails before any counter is
// misclassified.
func TestStatsLevelMirrorsCacheLevel(t *testing.T) {
	pairs := []struct {
		c Level
		s stats.CacheLevel
	}{
		{L1d, stats.CacheL1d},
		{L2, stats.CacheL2},
		{DDC, stats.CacheDDC},
		{DRAM, stats.CacheDRAM},
	}
	for _, p := range pairs {
		if int(p.c) != int(p.s) {
			t.Errorf("cache.%v = %d but stats.%v = %d", p.c, int(p.c), p.s, int(p.s))
		}
		if p.c.String() != p.s.String() {
			t.Errorf("name mismatch: cache %q vs stats %q", p.c, p.s)
		}
	}
	if int(stats.NumCacheLevels) != int(DRAM)+1 {
		t.Errorf("stats.NumCacheLevels = %d, want %d", stats.NumCacheLevels, int(DRAM)+1)
	}
}

// CopyCostHomedRec must charge the same virtual time as CopyCostHomed and
// classify the copy by LevelFor.
func TestCopyCostHomedRecAccounts(t *testing.T) {
	m := NewModel(arch.Gx8036())
	rec := stats.New(0, false, 0)
	const size = 1 << 20 // 1 MB: beyond L2 (256 kB), within the DDC
	want := m.CopyCostHomed(size, SharedAny, HashForHome, 1)
	got := m.CopyCostHomedRec(size, SharedAny, HashForHome, 1, rec)
	if got != want {
		t.Fatalf("charged %v, want %v (cost must not change with recording)", got, want)
	}
	if lvl := m.LevelFor(size); lvl != DDC {
		t.Fatalf("LevelFor(%d) = %v, want DDC (test premise)", size, lvl)
	}
	c := rec.Counters()
	if c.CacheCopies[stats.CacheDDC] != 1 || c.CacheBytes[stats.CacheDDC] != size {
		t.Errorf("DDC accounting: copies=%d bytes=%d", c.CacheCopies[stats.CacheDDC], c.CacheBytes[stats.CacheDDC])
	}
	// The nil-recorder path must still charge the identical cost.
	if got := m.CopyCostHomedRec(size, SharedAny, HashForHome, 1, nil); got != want {
		t.Errorf("nil recorder charged %v, want %v", got, want)
	}
}
