package cache

import (
	"fmt"
	"math"

	"tshmem/internal/arch"
	"tshmem/internal/stats"
	"tshmem/internal/vtime"
)

// Homing is a memory-homing strategy for a page of memory (S III.A).
type Homing int

const (
	// HashForHome distributes a page's cache lines across all tiles' L2
	// caches. Default for shared data; TSHMEM uses it for common memory.
	HashForHome Homing = iota
	// LocalHome assigns the page to the accessing tile. Best for private
	// data that fits in L2 (e.g. stacks); forfeits the DDC.
	LocalHome
	// RemoteHome assigns the page to a single other tile. Best for
	// producer-consumer pairs.
	RemoteHome
)

func (h Homing) String() string {
	switch h {
	case HashForHome:
		return "hash-for-home"
	case LocalHome:
		return "local"
	case RemoteHome:
		return "remote"
	default:
		return fmt.Sprintf("Homing(%d)", int(h))
	}
}

// Mode selects which calibrated copy curve applies to a transfer.
type Mode int

const (
	// PrivateToPrivate: both operands in a tile's private heap.
	PrivateToPrivate Mode = iota
	// SharedAny: at least one operand in TMC common memory (hash-for-home),
	// the regime TSHMEM's one-sided transfers live in.
	SharedAny
)

func (m Mode) String() string {
	switch m {
	case PrivateToPrivate:
		return "private-private"
	case SharedAny:
		return "shared"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Model is the memory-system performance model for one chip.
//
// The bandwidth curves and their derived constants are precomputed at
// construction so the per-copy hot path (CopyCostHomed and friends, called
// once per modeled byte transfer) performs no repeated anchor-logarithm
// work: curveTable holds the log2 of every anchor, and the memory-floor
// bandwidths (the curves evaluated far past their last anchor) are fixed
// numbers. All precomputation evaluates exactly the arithmetic the
// uncached path would, so modeled virtual time is bit-identical.
type Model struct {
	chip    *arch.Chip
	private curveTable
	shared  curveTable
	// floor* is interpLog(curve, 1<<40): the memory-system floor bandwidth
	// local/remote homing falls to beyond L2 capacity.
	floorPrivate float64
	floorShared  float64
	ddcBytes     int64
}

// NewModel builds the memory model for chip.
func NewModel(chip *arch.Chip) *Model {
	m := &Model{
		chip:     chip,
		private:  newCurveTable(chip.PrivateCopy),
		shared:   newCurveTable(chip.SharedCopy),
		ddcBytes: int64(chip.L2Bytes) * int64(chip.Tiles),
	}
	m.floorPrivate = m.private.interp(int64(1) << 40)
	m.floorShared = m.shared.interp(int64(1) << 40)
	return m
}

// Chip returns the modeled chip.
func (m *Model) Chip() *arch.Chip { return m.chip }

// table returns the precomputed anchor table for a transfer mode.
func (m *Model) table(mode Mode) *curveTable {
	if mode == PrivateToPrivate {
		return &m.private
	}
	return &m.shared
}

// floor returns the precomputed memory-floor bandwidth for a mode.
func (m *Model) floor(mode Mode) float64 {
	if mode == PrivateToPrivate {
		return m.floorPrivate
	}
	return m.floorShared
}

// Bandwidth reports the modeled effective bandwidth in MB/s for a single
// transfer of size bytes in the given mode with no concurrency, under the
// default hash-for-home policy.
func (m *Model) Bandwidth(size int64, mode Mode) float64 {
	return m.table(mode).interp(size)
}

// BandwidthHomed is Bandwidth under an explicit homing strategy for the
// shared data, encoding the qualitative trade-offs of Section III.A:
//
//   - hash-for-home (the default, what TSHMEM uses for common memory)
//     follows the calibrated curve: the DDC spreads lines across all tiles.
//   - local homing gives a slightly faster hit while the working set fits
//     the tile's own L2, but forfeits the DDC: beyond L2 capacity the
//     transfer runs at the memory floor.
//   - remote homing pays an extra mesh round trip to the single home tile
//     (a small flat penalty) but keeps the producer-consumer fast path;
//     like local homing it has no DDC to lean on beyond one L2.
func (m *Model) BandwidthHomed(size int64, mode Mode, h Homing) float64 {
	base := m.Bandwidth(size, mode)
	if mode == PrivateToPrivate {
		return base // private data never leaves the tile; homing is moot
	}
	if m.chip.Scratchpad {
		// Scratchpad chips have no caches to home lines into: every
		// address has exactly one physical home (a core's local SRAM or
		// off-chip DRAM), so all homing policies follow the base curve.
		return base
	}
	floor := m.floor(mode)
	switch h {
	case LocalHome:
		if size <= int64(m.chip.L2Bytes) {
			return base * 1.08 // local hit latency beats the hashed L3
		}
		return floor
	case RemoteHome:
		penalized := base * 0.92
		if size > int64(m.chip.L2Bytes) {
			return floor * 0.92
		}
		return penalized
	default:
		return base
	}
}

// BandwidthHomedConcurrent composes BandwidthHomed with the concurrency
// model. Remote homing serializes every request at one home tile, so its
// contention grows much faster than hash-for-home's distributed load
// (the bottleneck Section III.A warns about).
func (m *Model) BandwidthHomedConcurrent(size int64, mode Mode, h Homing, streams int) float64 {
	bw := m.BandwidthHomed(size, mode, h)
	if streams <= 1 {
		return bw
	}
	c := float64(streams)
	low, high, knee := m.chip.ContLow, m.chip.ContHigh, m.chip.ContKnee
	if h != HashForHome && !m.chip.Scratchpad {
		// Local and remote homing pin every line of the region to a single
		// tile's L2: fan-in serializes at that tile instead of spreading
		// across the DDC (the bottleneck S III.A warns about).
		low, high, knee = 0.8, 0, streams+1
	}
	denom := 1 + low*(c-1)
	if over := streams - knee; over > 0 {
		denom += high * float64(over)
	}
	return bw / denom
}

// BandwidthConcurrent reports per-stream effective bandwidth when streams
// tiles copy simultaneously through the shared-memory system. The divisor
// 1 + ContLow*(c-1) + ContHigh*max(0,c-knee) reproduces the near-linear
// aggregate growth up to the saturation knee and the decline beyond it
// (Figure 10: aggregate peaks at 46 GB/s at 29 tiles on the TILE-Gx36).
func (m *Model) BandwidthConcurrent(size int64, mode Mode, streams int) float64 {
	return m.BandwidthHomedConcurrent(size, mode, HashForHome, streams)
}

// CopyCost reports the virtual time for one memcpy of size bytes: the fixed
// per-call overhead plus size over the (possibly concurrency-degraded)
// effective bandwidth, under the default hash-for-home policy.
func (m *Model) CopyCost(size int64, mode Mode, streams int) vtime.Duration {
	return m.CopyCostHomed(size, mode, HashForHome, streams)
}

// CopyCostHomed is CopyCost under an explicit homing strategy.
func (m *Model) CopyCostHomed(size int64, mode Mode, h Homing, streams int) vtime.Duration {
	if size < 0 {
		size = 0
	}
	ns := m.chip.CopyCallNs
	if size > 0 {
		bw := m.BandwidthHomedConcurrent(size, mode, h, streams)
		ns += float64(size) / bw * 1e3 // bytes / (MB/s) -> us; *1e3 -> ns
	}
	return vtime.FromNs(ns)
}

// CopyCostHomedRec is CopyCostHomed with observability: the charged copy
// is accounted on rec (nil disables accounting), classified by the
// hierarchy level that backs its working set.
func (m *Model) CopyCostHomedRec(size int64, mode Mode, h Homing, streams int, rec *stats.Recorder) vtime.Duration {
	return m.CopyCostHomedMemoRec(nil, size, mode, h, streams, rec)
}

// CopyCostHomedMemoRec is CopyCostHomedRec with the cost looked up through
// mm. A nil mm falls back to the direct computation. This is the per-copy
// entry point of the RMA hot path.
func (m *Model) CopyCostHomedMemoRec(mm *Memo, size int64, mode Mode, h Homing, streams int, rec *stats.Recorder) vtime.Duration {
	d := mm.CopyCostHomed(m, size, mode, h, streams)
	if rec != nil && size > 0 {
		rec.CacheCopy(stats.CacheLevel(m.LevelFor(size)), int(size), d)
	}
	return d
}

// StreamCost reports the virtual time for one memory pass of bytes that is
// part of a loop whose total working set is ws bytes: the sustainable
// bandwidth follows the working set, not the individual transfer, because
// the loop keeps evicting its own data (e.g. a root tile gathering from
// every PE, Figure 12's serialized reduction).
func (m *Model) StreamCost(bytes, ws int64, mode Mode) vtime.Duration {
	if bytes <= 0 {
		return 0
	}
	if ws < bytes {
		ws = bytes
	}
	ns := m.chip.CopyCallNs + float64(bytes)/m.Bandwidth(ws, mode)*1e3
	return vtime.FromNs(ns)
}

// RandomAccessCost reports the virtual time for n dependent, poorly-local
// accesses (pointer chasing, matrix-transpose gathers).
func (m *Model) RandomAccessCost(n int64) vtime.Duration {
	if n <= 0 {
		return 0
	}
	return vtime.FromNs(float64(n) * m.chip.RandomAccessNs)
}

// AtomicCost reports the service time of one remote atomic operation,
// excluding network transit.
func (m *Model) AtomicCost() vtime.Duration {
	return vtime.FromNs(m.chip.AtomicNs)
}

// AtomicRMWCost reports the service time of one remote read-modify-write
// atomic (swap/cswap/fadd/finc/add/inc). Chips with native fetch-ops
// charge exactly AtomicCost; chips whose only hardware atomic is TESTSET
// (the Epiphany family) emulate every fetch-op inside a TESTSET-guarded
// critical section and pay two extra probes — acquire and release — on top
// of the base service time.
func (m *Model) AtomicRMWCost() vtime.Duration {
	if !m.chip.AtomicRMWEmulated {
		return m.AtomicCost()
	}
	return vtime.FromNs(m.chip.AtomicNs + 2*m.chip.TestSetNs)
}

// FenceCost reports the cost of tmc_mem_fence (waiting for all outstanding
// stores to become visible).
func (m *Model) FenceCost() vtime.Duration {
	return vtime.FromNs(m.chip.FenceNs)
}

// Level identifies which layer of the hierarchy would back a working set.
type Level int

const (
	L1d Level = iota
	L2
	DDC
	DRAM
)

func (l Level) String() string {
	switch l {
	case L1d:
		return "L1d"
	case L2:
		return "L2"
	case DDC:
		return "DDC"
	default:
		return "DRAM"
	}
}

// LevelFor reports the hierarchy level that holds a working set of size
// bytes: the tile's L1d, its L2, the chip-wide DDC (aggregate of all L2s),
// or external DRAM. On scratchpad chips (Epiphany) L1d means the core's
// flat local SRAM, and with L2Bytes 0 the L2/DDC rungs vanish: anything
// beyond the scratchpad classifies as DRAM (off-chip over the eLink), which
// is exactly how the observability counters should read on that family.
func (m *Model) LevelFor(size int64) Level {
	switch {
	case size <= int64(m.chip.L1dBytes):
		return L1d
	case size <= int64(m.chip.L2Bytes):
		return L2
	case size <= m.ddcBytes:
		return DDC
	default:
		return DRAM
	}
}

// DDCBytes reports the capacity of the Dynamic Distributed Cache: the
// aggregation of the L2 caches of all tiles (S III.A).
func (m *Model) DDCBytes() int64 { return m.ddcBytes }

// HomeTile reports which physical tile homes the cache line holding the
// given address (byte offset into the shared segment) under a homing
// policy. accessor is the physical CPU performing the access; partner is
// the designated home for RemoteHome.
func (m *Model) HomeTile(addr int64, h Homing, accessor, partner int) int {
	switch h {
	case LocalHome:
		return accessor
	case RemoteHome:
		return partner
	default:
		// Hash-for-home distributes successive cache lines round-robin
		// across tiles, which is what spreads DDC load (S III.A).
		const lineBytes = 64
		line := addr / lineBytes
		t := int(line % int64(m.chip.Tiles))
		if t < 0 {
			t += m.chip.Tiles
		}
		return t
	}
}

// HomeShare estimates the fraction of a bulk copy performed by accessor
// whose cache lines are homed at tile home, under homing policy h, on a
// chip of tiles tiles. Hash-for-home spreads successive lines round-robin,
// so any one tile homes ~1/tiles of a bulk transfer; LocalHome
// concentrates everything at the accessor; RemoteHome's partner varies per
// transfer, so it is approximated by the same 1/tiles spread. Used by
// internal/fault to size the penalty of a stuck home tile.
func HomeShare(h Homing, accessor, home, tiles int) float64 {
	if tiles <= 0 {
		return 0
	}
	if h == LocalHome {
		if accessor == home {
			return 1
		}
		return 0
	}
	return 1 / float64(tiles)
}

// curveTable is a bandwidth curve with the per-anchor constants of the
// log-linear interpolation precomputed: the log2 of each anchor size and
// each segment's log2 span. interp evaluates exactly the expression the
// naive three-Log2 form would — the precomputed values are produced by the
// same math.Log2 calls and the same subtraction, so every interpolated
// bandwidth is bit-identical — but the hot path performs a single Log2.
type curveTable struct {
	curve arch.CopyCurve
	log2  []float64 // log2(curve[i].Size)
	span  []float64 // log2(curve[i].Size) - log2(curve[i-1].Size); span[0] unused
}

func newCurveTable(curve arch.CopyCurve) curveTable {
	t := curveTable{
		curve: curve,
		log2:  make([]float64, len(curve)),
		span:  make([]float64, len(curve)),
	}
	for i, p := range curve {
		t.log2[i] = math.Log2(float64(p.Size))
		if i > 0 {
			t.span[i] = t.log2[i] - t.log2[i-1]
		}
	}
	return t
}

// interp interpolates the bandwidth curve at size, linear in log2(size).
// Sizes outside the anchor range clamp to the nearest endpoint.
func (t *curveTable) interp(size int64) float64 {
	curve := t.curve
	if len(curve) == 0 {
		return 1 // defensive: 1 MB/s floor rather than division by zero
	}
	if size <= curve[0].Size {
		return curve[0].MBs
	}
	last := curve[len(curve)-1]
	if size >= last.Size {
		return last.MBs
	}
	for i := 1; i < len(curve); i++ {
		if size <= curve[i].Size {
			lo, hi := curve[i-1], curve[i]
			f := (math.Log2(float64(size)) - t.log2[i-1]) / t.span[i]
			return lo.MBs + f*(hi.MBs-lo.MBs)
		}
	}
	return last.MBs
}

// memoSize is the Memo's direct-mapped capacity. SPMD phases cycle through
// a handful of (size, mode, homing, streams) tuples, so a small power of
// two gives near-perfect hit rates without measurable footprint.
const memoSize = 256

// memoEntry caches one fully-computed copy cost.
type memoEntry struct {
	size  int64
	key   uint32
	valid bool
	cost  vtime.Duration
}

// Memo is a single-caller cache over Model.CopyCostHomed: a direct-mapped
// table keyed on the (size, mode, homing, streams) tuple SPMD loops repeat
// millions of times. Hits skip the bandwidth interpolation and contention
// division entirely and return the previously computed Duration, so
// memoized costs are bit-identical to unmemoized ones by construction.
//
// A Memo must not be shared between goroutines: each PE owns one. The nil
// *Memo is valid and falls through to the uncached computation, mirroring
// the stats.Recorder convention.
type Memo struct {
	entries [memoSize]memoEntry
}

// memoKey packs mode, homing, and streams into the comparison key.
// streams is a PE count, far below 2^26.
func memoKey(mode Mode, h Homing, streams int) uint32 {
	return uint32(mode)<<30 | uint32(h)<<26 | uint32(streams)&((1<<26)-1)
}

// CopyCostHomed is Model.CopyCostHomed through the memo.
func (mm *Memo) CopyCostHomed(m *Model, size int64, mode Mode, h Homing, streams int) vtime.Duration {
	if mm == nil {
		return m.CopyCostHomed(size, mode, h, streams)
	}
	key := memoKey(mode, h, streams)
	// Fibonacci-hash the tuple into the direct-mapped table.
	idx := (uint64(size)*0x9E3779B97F4A7C15 + uint64(key)*0xC2B2AE3D27D4EB4F) >> 56 % memoSize
	e := &mm.entries[idx]
	if e.valid && e.size == size && e.key == key {
		return e.cost
	}
	cost := m.CopyCostHomed(size, mode, h, streams)
	*e = memoEntry{size: size, key: key, valid: true, cost: cost}
	return cost
}
