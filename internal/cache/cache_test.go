package cache

import (
	"math"
	"testing"
	"testing/quick"

	"tshmem/internal/arch"
	"tshmem/internal/vtime"
)

func gxModel() *Model  { return NewModel(arch.Gx8036()) }
func proModel() *Model { return NewModel(arch.Pro64()) }

// TestFig3Anchors pins the headline bandwidth numbers from Figure 3.
func TestFig3Anchors(t *testing.T) {
	gx, pro := gxModel(), proModel()
	cases := []struct {
		m    *Model
		size int64
		want float64
		tol  float64
	}{
		{gx, 8 << 10, 3100, 50},  // L1d plateau
		{gx, 1 << 20, 1000, 50},  // DDC regime
		{gx, 64 << 20, 320, 10},  // memory floor
		{pro, 8 << 10, 500, 20},  // flat cache region
		{pro, 64 << 20, 370, 10}, // memory floor
	}
	for _, c := range cases {
		if got := c.m.Bandwidth(c.size, SharedAny); math.Abs(got-c.want) > c.tol {
			t.Errorf("%s BW(%d) = %.0f MB/s, want %.0f", c.m.Chip().Name, c.size, got, c.want)
		}
	}
}

// TestFig3Shape verifies the qualitative structure of Figure 3: three
// transitions on the Gx (L1d, L2, DDC), Gx ahead of Pro below 2 MB, and Pro
// ahead in the memory-to-memory regime.
func TestFig3Shape(t *testing.T) {
	gx, pro := gxModel(), proModel()
	// Gx is much faster below 2 MB.
	for _, size := range []int64{256, 4 << 10, 64 << 10, 512 << 10, 1 << 20} {
		if g, p := gx.Bandwidth(size, SharedAny), pro.Bandwidth(size, SharedAny); g <= p {
			t.Errorf("at %d bytes Gx %.0f <= Pro %.0f MB/s", size, g, p)
		}
	}
	// Pro wins memory-to-memory (paper: "Memory-to-memory transfers on the
	// TILEPro64, however, are faster").
	if g, p := gx.Bandwidth(256<<20, SharedAny), pro.Bandwidth(256<<20, SharedAny); g >= p {
		t.Errorf("memory floor: Gx %.0f >= Pro %.0f MB/s", g, p)
	}
	// The Gx curve must fall substantially across each capacity knee.
	l1 := gx.Bandwidth(16<<10, SharedAny)
	l2 := gx.Bandwidth(128<<10, SharedAny)
	ddc := gx.Bandwidth(1<<20, SharedAny)
	mem := gx.Bandwidth(64<<20, SharedAny)
	if !(l1 > l2 && l2 > ddc && ddc > mem) {
		t.Errorf("Gx transitions not ordered: L1 %.0f, L2 %.0f, DDC %.0f, mem %.0f", l1, l2, ddc, mem)
	}
}

func TestBandwidthMonotoneDecreasingLarge(t *testing.T) {
	// Beyond the L1 plateau the curve never rises again.
	m := gxModel()
	prev := math.Inf(1)
	for size := int64(32 << 10); size <= 256<<20; size *= 2 {
		bw := m.Bandwidth(size, SharedAny)
		if bw > prev+1e-9 {
			t.Fatalf("bandwidth rose at %d bytes: %.1f > %.1f", size, bw, prev)
		}
		prev = bw
	}
}

func TestInterpolationContinuity(t *testing.T) {
	// Property: bandwidth is positive and within the curve's range for any
	// size, and neighboring sizes give close values (no jumps).
	m := gxModel()
	f := func(raw uint32) bool {
		size := int64(raw)%(128<<20) + 1
		b1 := m.Bandwidth(size, SharedAny)
		b2 := m.Bandwidth(size+size/100+1, SharedAny)
		if b1 <= 0 || b1 > 3500 {
			return false
		}
		return math.Abs(b1-b2)/b1 < 0.10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModeOrdering(t *testing.T) {
	// Private heap copies run slightly ahead of shared copies at cacheable
	// sizes and converge at the memory floor.
	m := gxModel()
	if p, s := m.Bandwidth(8<<10, PrivateToPrivate), m.Bandwidth(8<<10, SharedAny); p <= s {
		t.Errorf("private %.0f should exceed shared %.0f at 8 kB", p, s)
	}
	p, s := m.Bandwidth(128<<20, PrivateToPrivate), m.Bandwidth(128<<20, SharedAny)
	if math.Abs(p-s) > 5 {
		t.Errorf("modes should converge at the floor: private %.0f vs shared %.0f", p, s)
	}
}

func TestCopyCost(t *testing.T) {
	m := gxModel()
	// Zero-size copy still pays the call overhead.
	if got := m.CopyCost(0, SharedAny, 1); math.Abs(got.Ns()-m.Chip().CopyCallNs) > 0.01 {
		t.Errorf("zero-size copy = %v, want call overhead %v ns", got, m.Chip().CopyCallNs)
	}
	if got := m.CopyCost(-5, SharedAny, 1); got != m.CopyCost(0, SharedAny, 1) {
		t.Errorf("negative size should clamp to zero, got %v", got)
	}
	// 1 MB at ~1000 MB/s is ~1 ms.
	got := m.CopyCost(1<<20, SharedAny, 1)
	if got.Ms() < 0.9 || got.Ms() > 1.2 {
		t.Errorf("1 MB copy = %v, want ~1.05 ms", got)
	}
	// Cost is strictly increasing in size.
	prev := vtime.Duration(0)
	for size := int64(64); size <= 16<<20; size *= 4 {
		c := m.CopyCost(size, SharedAny, 1)
		if c <= prev {
			t.Fatalf("copy cost not increasing at %d bytes", size)
		}
		prev = c
	}
}

// TestConcurrencyModel verifies the contention term that shapes Figure 10:
// aggregate bandwidth on the Gx peaks near 29 concurrent streams and
// declines toward 36, while the Pro keeps rising through 36.
func TestConcurrencyModel(t *testing.T) {
	gx, pro := gxModel(), proModel()
	agg := func(m *Model, streams int, size int64) float64 {
		return float64(streams) * m.BandwidthConcurrent(size, SharedAny, streams)
	}
	const size = 64 << 10

	// Single stream is undegraded.
	if one, base := gx.BandwidthConcurrent(size, SharedAny, 1), gx.Bandwidth(size, SharedAny); one != base {
		t.Errorf("1 stream degraded: %v vs %v", one, base)
	}

	// Gx aggregate peak lies in 25..33 streams (paper: 29).
	best, bestC := 0.0, 0
	for c := 1; c <= 36; c++ {
		if a := agg(gx, c, size); a > best {
			best, bestC = a, c
		}
	}
	if bestC < 25 || bestC > 33 {
		t.Errorf("Gx aggregate peak at %d streams, want 25..33", bestC)
	}
	if agg(gx, 36, size) >= best {
		t.Error("Gx aggregate should decline after its peak")
	}

	// Peak aggregate ~46 GB/s on Gx (cache-resident transfer sizes).
	if best < 35_000 || best > 55_000 {
		t.Errorf("Gx peak aggregate = %.0f MB/s, want ~46000", best)
	}

	// Pro aggregate grows monotonically through 36 streams, to ~5.1 GB/s.
	prev := 0.0
	for c := 1; c <= 36; c++ {
		a := agg(pro, c, 8<<10)
		if a <= prev {
			t.Fatalf("Pro aggregate fell at %d streams", c)
		}
		prev = a
	}
	if prev < 4_000 || prev > 6_500 {
		t.Errorf("Pro aggregate at 36 = %.0f MB/s, want ~5100", prev)
	}
}

func TestLevelFor(t *testing.T) {
	gx := gxModel()
	cases := []struct {
		size int64
		want Level
	}{
		{1 << 10, L1d},
		{32 << 10, L1d},
		{33 << 10, L2},
		{256 << 10, L2},
		{257 << 10, DDC},
		{8 << 20, DDC},
		{10 << 20, DRAM},
	}
	for _, c := range cases {
		if got := gx.LevelFor(c.size); got != c.want {
			t.Errorf("LevelFor(%d) = %v, want %v", c.size, got, c.want)
		}
	}
	if got := gx.DDCBytes(); got != 36*256<<10 {
		t.Errorf("Gx DDC = %d bytes, want 9 MB", got)
	}
	for l, s := range map[Level]string{L1d: "L1d", L2: "L2", DDC: "DDC", DRAM: "DRAM"} {
		if l.String() != s {
			t.Errorf("Level %d prints %q", int(l), l.String())
		}
	}
}

func TestHomeTile(t *testing.T) {
	m := gxModel()
	if got := m.HomeTile(12345, LocalHome, 7, 9); got != 7 {
		t.Errorf("local homing -> %d, want accessor 7", got)
	}
	if got := m.HomeTile(12345, RemoteHome, 7, 9); got != 9 {
		t.Errorf("remote homing -> %d, want partner 9", got)
	}
	// Hash-for-home: consecutive cache lines land on different tiles and
	// cover the whole chip.
	seen := make(map[int]bool)
	for line := int64(0); line < 64; line++ {
		tile := m.HomeTile(line*64, HashForHome, 0, 0)
		if tile < 0 || tile >= 36 {
			t.Fatalf("hash home tile %d out of range", tile)
		}
		seen[tile] = true
	}
	if len(seen) != 36 {
		t.Errorf("hash-for-home covered %d tiles, want 36", len(seen))
	}
	// Addresses within one cache line share a home.
	if m.HomeTile(0, HashForHome, 0, 0) != m.HomeTile(63, HashForHome, 0, 0) {
		t.Error("same cache line homed differently")
	}
}

func TestCostHelpers(t *testing.T) {
	m := proModel()
	if m.AtomicCost() != vtime.FromNs(70) {
		t.Errorf("AtomicCost = %v", m.AtomicCost())
	}
	if m.FenceCost() != vtime.FromNs(20) {
		t.Errorf("FenceCost = %v", m.FenceCost())
	}
	if m.RandomAccessCost(0) != 0 || m.RandomAccessCost(-3) != 0 {
		t.Error("non-positive access counts should cost zero")
	}
	if got := m.RandomAccessCost(1000); math.Abs(got.Us()-400*1000/1000) > 1 {
		t.Errorf("RandomAccessCost(1000) = %v, want ~400 us", got)
	}
}

func TestStringers(t *testing.T) {
	if HashForHome.String() != "hash-for-home" || LocalHome.String() != "local" || RemoteHome.String() != "remote" {
		t.Error("Homing.String mismatch")
	}
	if PrivateToPrivate.String() != "private-private" || SharedAny.String() != "shared" {
		t.Error("Mode.String mismatch")
	}
}
