// Package tmc models the Tilera Multicore Components library surface that
// TSHMEM is built on (Section III of the paper): common memory, spin and
// sync barriers, and the memory fence.
//
// Common memory differs from ordinary cross-process shared mappings in two
// ways the paper calls out: every participating process maps the region at
// the same virtual address (so pointers into it can be shared), and any
// process can create new mappings that become visible to all. The
// simulation realizes the same-address property by addressing common
// memory with offsets into one segment shared by all PE goroutines.
//
// The UDN helper routines the TMC library provides are modeled by package
// udn.
package tmc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tshmem/internal/arch"
	"tshmem/internal/cache"
	"tshmem/internal/vtime"
)

// Common-memory errors.
var (
	ErrOutOfMemory = errors.New("tmc: common memory exhausted")
	ErrBadHandle   = errors.New("tmc: bad common-memory handle")
)

// CommonMemory is a shared segment visible to every PE at identical
// symmetric addresses (offsets). Mappings are carved out of the segment
// with Map; any PE may create one at any time.
type CommonMemory struct {
	buf []byte

	mu   sync.Mutex
	next int64
	maps map[int64]int64 // offset -> length of live mappings
}

// NewCommonMemory creates a common-memory segment of size bytes.
func NewCommonMemory(size int64) (*CommonMemory, error) {
	if size <= 0 {
		return nil, fmt.Errorf("tmc: non-positive common memory size %d", size)
	}
	return &CommonMemory{
		buf:  make([]byte, size),
		maps: make(map[int64]int64),
	}, nil
}

// Size reports the total segment size.
func (cm *CommonMemory) Size() int64 { return int64(len(cm.buf)) }

// Bytes returns the backing store. Offsets returned by Map index into it.
func (cm *CommonMemory) Bytes() []byte { return cm.buf }

// Map carves a new mapping of size bytes out of the segment, aligned to
// align (which must be a power of two; 0 means 64, one cache line). The
// mapping is immediately visible to all PEs, mirroring
// tmc_cmem_map_create's "any process can create new mappings" semantics.
func (cm *CommonMemory) Map(size, align int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("tmc: non-positive mapping size %d", size)
	}
	if align == 0 {
		align = 64
	}
	if align&(align-1) != 0 {
		return 0, fmt.Errorf("tmc: alignment %d is not a power of two", align)
	}
	cm.mu.Lock()
	defer cm.mu.Unlock()
	off := (cm.next + align - 1) &^ (align - 1)
	if off+size > int64(len(cm.buf)) {
		return 0, fmt.Errorf("%w: need %d at %d, segment is %d", ErrOutOfMemory, size, off, len(cm.buf))
	}
	cm.next = off + size
	cm.maps[off] = size
	return off, nil
}

// Unmap releases a mapping created by Map. Space is not reused (the
// launcher-era mappings TSHMEM creates live for the whole run; fine-grained
// reuse belongs to the symmetric-heap allocator above this layer).
func (cm *CommonMemory) Unmap(off int64) error {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	if _, ok := cm.maps[off]; !ok {
		return fmt.Errorf("%w: %d", ErrBadHandle, off)
	}
	delete(cm.maps, off)
	return nil
}

// MapEnd reports the end of the mapped region: every mapping ever created
// lies below it. Map hands out offsets monotonically (Unmap does not
// recycle space), so [MapEnd, Size) has never been part of any mapping.
func (cm *CommonMemory) MapEnd() int64 {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return cm.next
}

// Reset forgets all mappings so the segment can back a new launch,
// without touching the segment contents. The caller owns the contents: a
// reused segment must be re-zeroed wherever the previous tenant wrote
// (see the arena recycling in internal/core).
func (cm *CommonMemory) Reset() {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	cm.next = 0
	cm.maps = make(map[int64]int64)
}

// Mappings reports the number of live mappings.
func (cm *CommonMemory) Mappings() int {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return len(cm.maps)
}

// Slice returns the byte window [off, off+size) of the segment.
func (cm *CommonMemory) Slice(off, size int64) ([]byte, error) {
	if off < 0 || size < 0 || off+size > int64(len(cm.buf)) {
		return nil, fmt.Errorf("tmc: slice [%d,%d) outside segment of %d bytes", off, off+size, len(cm.buf))
	}
	return cm.buf[off : off+size : off+size], nil
}

// BarrierKind selects between the two TMC barrier flavors (S III.D).
type BarrierKind int

const (
	// SpinBarrier polls continuously: lowest latency, but only safe with
	// one task per tile.
	SpinBarrier BarrierKind = iota
	// SyncBarrier notifies the Linux scheduler when it blocks so the tile
	// can run other tasks: far higher latency.
	SyncBarrier
)

func (k BarrierKind) String() string {
	if k == SpinBarrier {
		return "spin"
	}
	return "sync"
}

// Barrier is a TMC barrier across a fixed set of n participants. Wait
// performs a real rendezvous between the participating goroutines and
// applies the calibrated latency model for the barrier kind: every
// participant leaves at max(arrival times) + model latency.
type Barrier struct {
	kind  BarrierKind
	model arch.BarrierModel
	n     int

	mu      sync.Mutex
	cond    *sync.Cond
	count   int
	gen     uint64
	latest  vtime.Time
	release vtime.Time
	aborted bool
}

// NewBarrier creates a barrier for n participants on chip.
func NewBarrier(chip *arch.Chip, kind BarrierKind, n int) (*Barrier, error) {
	if n < 1 {
		return nil, fmt.Errorf("tmc: barrier needs at least 1 participant, got %d", n)
	}
	m := chip.SpinBarrier
	if kind == SyncBarrier {
		m = chip.SyncBarrier
	}
	b := &Barrier{kind: kind, model: m, n: n}
	b.cond = sync.NewCond(&b.mu)
	return b, nil
}

// N reports the number of participants.
func (b *Barrier) N() int { return b.n }

// Kind reports the barrier flavor.
func (b *Barrier) Kind() BarrierKind { return b.kind }

// Wait blocks until all n participants have called Wait, then advances the
// caller's clock to the modeled release time.
func (b *Barrier) Wait(clock *vtime.Clock) {
	b.mu.Lock()
	g := b.gen
	b.latest = vtime.Max(b.latest, clock.Now())
	b.count++
	if b.count == b.n {
		b.release = b.latest.Add(b.model.Latency(b.n))
		b.count = 0
		b.latest = 0
		b.gen++
		b.cond.Broadcast()
		rel := b.release
		b.mu.Unlock()
		clock.AdvanceTo(rel)
		return
	}
	for g == b.gen && !b.aborted {
		b.cond.Wait()
	}
	rel := b.release
	b.mu.Unlock()
	clock.AdvanceTo(rel)
}

// WaitTimeout is Wait with a host-time bound: if the rendezvous does not
// complete within grace (some participant is stuck under fault
// injection), the caller withdraws from the barrier and returns false
// with its clock unchanged; the remaining participants' rendezvous state
// is left consistent, so they can time out (or complete a later
// generation) themselves. Returns true when the barrier completed
// normally. grace <= 0 behaves exactly like Wait.
func (b *Barrier) WaitTimeout(clock *vtime.Clock, grace time.Duration) bool {
	b.mu.Lock()
	g := b.gen
	b.latest = vtime.Max(b.latest, clock.Now())
	b.count++
	if b.count == b.n {
		b.release = b.latest.Add(b.model.Latency(b.n))
		b.count = 0
		b.latest = 0
		b.gen++
		b.cond.Broadcast()
		rel := b.release
		b.mu.Unlock()
		clock.AdvanceTo(rel)
		return true
	}
	var timedOut bool
	var timer *time.Timer
	if grace > 0 {
		timer = time.AfterFunc(grace, func() {
			b.mu.Lock()
			timedOut = true
			b.mu.Unlock()
			b.cond.Broadcast()
		})
		defer timer.Stop()
	}
	for g == b.gen && !b.aborted && !timedOut {
		b.cond.Wait()
	}
	if g == b.gen && !b.aborted {
		// Timed out with the generation still open: take our arrival back.
		b.count--
		b.mu.Unlock()
		return false
	}
	rel := b.release
	b.mu.Unlock()
	clock.AdvanceTo(rel)
	return true
}

// Arrive registers an arrival without blocking — Wait's bookkeeping for
// an event-driven engine whose PEs park elsewhere. done reports whether
// this arrival completed the rendezvous; if so, release is the
// generation's modeled release time and the caller is responsible for
// waking the parked members. A non-completing arriver remembers gen and
// polls Released.
func (b *Barrier) Arrive(now vtime.Time) (gen uint64, release vtime.Time, done bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen = b.gen
	b.latest = vtime.Max(b.latest, now)
	b.count++
	if b.count == b.n {
		b.release = b.latest.Add(b.model.Latency(b.n))
		b.count = 0
		b.latest = 0
		b.gen++
		b.cond.Broadcast()
		return gen, b.release, true
	}
	return gen, 0, false
}

// Released reports generation gen's release time once it completed. The
// stored release is gen's own whenever gen is closed: a member that has
// yet to observe gen's release cannot have arrived at gen+1, so no later
// generation can complete and overwrite it.
func (b *Barrier) Released(gen uint64) (vtime.Time, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.gen == gen {
		return 0, false
	}
	return b.release, true
}

// Withdraw takes a timed-out arrival back from a still-open generation,
// mirroring WaitTimeout's expiry path. It reports false when the
// generation completed in the meantime — the caller takes the release
// via Released instead.
func (b *Barrier) Withdraw(gen uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.gen != gen {
		return false
	}
	b.count--
	return true
}

// Abort wakes all waiters without completing the rendezvous; used when the
// program tears down after a failure. Waiters return with their clocks
// unchanged beyond the last completed generation.
func (b *Barrier) Abort() {
	b.mu.Lock()
	b.aborted = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// MemFence models tmc_mem_fence(): it blocks until all outstanding memory
// stores are visible, advancing the clock by the chip's fence cost. The Go
// memory effects are provided by the synchronization primitives the caller
// pairs this with (as on real hardware, a fence orders, it does not
// publish).
func MemFence(clock *vtime.Clock, m *cache.Model) {
	clock.Advance(m.FenceCost())
}
