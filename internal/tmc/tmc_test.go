package tmc

import (
	"errors"
	"math"
	"sync"
	"testing"

	"tshmem/internal/arch"
	"tshmem/internal/cache"
	"tshmem/internal/vtime"
)

func TestCommonMemoryMap(t *testing.T) {
	cm, err := NewCommonMemory(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Size() != 1<<20 || len(cm.Bytes()) != 1<<20 {
		t.Fatalf("size = %d", cm.Size())
	}
	a, err := cm.Map(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cm.Map(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("two mappings share an offset")
	}
	if a%64 != 0 || b%64 != 0 {
		t.Errorf("default alignment violated: %d, %d", a, b)
	}
	if cm.Mappings() != 2 {
		t.Errorf("Mappings = %d, want 2", cm.Mappings())
	}
	// Writes through one view are visible through another (same segment).
	s1, err := cm.Slice(a, 100)
	if err != nil {
		t.Fatal(err)
	}
	s1[0] = 0xAB
	if cm.Bytes()[a] != 0xAB {
		t.Error("mapping writes not visible in segment")
	}
}

func TestCommonMemoryAlignment(t *testing.T) {
	cm, _ := NewCommonMemory(1 << 16)
	off, err := cm.Map(10, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if off%4096 != 0 {
		t.Errorf("offset %d not 4096-aligned", off)
	}
	if _, err := cm.Map(10, 3); err == nil {
		t.Error("non-power-of-two alignment accepted")
	}
	if _, err := cm.Map(0, 0); err == nil {
		t.Error("zero-size mapping accepted")
	}
}

func TestCommonMemoryExhaustion(t *testing.T) {
	cm, _ := NewCommonMemory(4096)
	if _, err := cm.Map(8192, 0); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("oversized map: %v", err)
	}
	if _, err := NewCommonMemory(0); err == nil {
		t.Error("zero-size segment accepted")
	}
}

func TestCommonMemoryUnmap(t *testing.T) {
	cm, _ := NewCommonMemory(4096)
	off, err := cm.Map(64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.Unmap(off); err != nil {
		t.Fatal(err)
	}
	if err := cm.Unmap(off); !errors.Is(err, ErrBadHandle) {
		t.Errorf("double unmap: %v", err)
	}
	if cm.Mappings() != 0 {
		t.Errorf("Mappings = %d after unmap", cm.Mappings())
	}
}

func TestSliceBounds(t *testing.T) {
	cm, _ := NewCommonMemory(128)
	if _, err := cm.Slice(-1, 10); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := cm.Slice(120, 10); err == nil {
		t.Error("overrun accepted")
	}
	s, err := cm.Slice(120, 8)
	if err != nil || len(s) != 8 {
		t.Errorf("tail slice: %v, len %d", err, len(s))
	}
	// The slice must be capacity-capped so appends cannot clobber
	// neighboring mappings.
	if cap(s) != 8 {
		t.Errorf("slice cap = %d, want 8", cap(s))
	}
}

func TestBarrierRendezvous(t *testing.T) {
	const n = 8
	b, err := NewBarrier(arch.Gx8036(), SpinBarrier, n)
	if err != nil {
		t.Fatal(err)
	}
	if b.N() != n || b.Kind() != SpinBarrier {
		t.Fatalf("barrier metadata wrong: %d %v", b.N(), b.Kind())
	}
	// Participants arrive at different virtual times; all must leave at
	// max(arrivals) + model latency.
	var wg sync.WaitGroup
	release := make([]vtime.Time, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var c vtime.Clock
			c.Advance(vtime.Duration(i) * vtime.Microsecond) // staggered arrivals
			b.Wait(&c)
			release[i] = c.Now()
		}(i)
	}
	wg.Wait()
	want := vtime.Time((n - 1) * int(vtime.Microsecond)).Add(arch.Gx8036().SpinBarrier.Latency(n))
	for i, r := range release {
		if r != want {
			t.Errorf("PE %d released at %v, want %v", i, r, want)
		}
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	const n, rounds = 4, 50
	b, err := NewBarrier(arch.Pro64(), SpinBarrier, n)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	finals := make([]vtime.Time, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var c vtime.Clock
			for r := 0; r < rounds; r++ {
				b.Wait(&c)
			}
			finals[i] = c.Now()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if finals[i] != finals[0] {
			t.Fatalf("PE %d final time %v != PE 0 %v", i, finals[i], finals[0])
		}
	}
	want := vtime.Duration(rounds) * arch.Pro64().SpinBarrier.Latency(n)
	if finals[0] != vtime.Time(want) {
		t.Errorf("final time %v, want %v", finals[0], vtime.Time(want))
	}
}

// TestFig5Latencies reproduces Figure 5's anchors through the real barrier.
func TestFig5Latencies(t *testing.T) {
	cases := []struct {
		chip   *arch.Chip
		kind   BarrierKind
		n      int
		wantUs float64
		tolUs  float64
	}{
		{arch.Gx8036(), SpinBarrier, 36, 1.5, 0.1},
		{arch.Pro64(), SpinBarrier, 36, 47.2, 1},
		{arch.Gx8036(), SyncBarrier, 36, 321, 5},
		{arch.Pro64(), SyncBarrier, 36, 786, 10},
	}
	for _, tc := range cases {
		b, err := NewBarrier(tc.chip, tc.kind, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		var got vtime.Time
		for i := 0; i < tc.n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				var c vtime.Clock
				b.Wait(&c)
				if i == 0 {
					got = c.Now()
				}
			}(i)
		}
		wg.Wait()
		if us := vtime.Duration(got).Us(); math.Abs(us-tc.wantUs) > tc.tolUs {
			t.Errorf("%s %v barrier at %d tiles = %.2f us, want %.1f", tc.chip.Name, tc.kind, tc.n, us, tc.wantUs)
		}
	}
}

// TestSpinVsSync checks the paper's ordering: spin barriers vastly
// outperform sync barriers at every scale.
func TestSpinVsSync(t *testing.T) {
	chip := arch.Gx8036()
	for n := 2; n <= 36; n += 2 {
		if spin, syn := chip.SpinBarrier.Latency(n), chip.SyncBarrier.Latency(n); spin >= syn {
			t.Fatalf("spin %v >= sync %v at %d tiles", spin, syn, n)
		}
	}
}

func TestBarrierValidation(t *testing.T) {
	if _, err := NewBarrier(arch.Gx8036(), SpinBarrier, 0); err == nil {
		t.Error("0-participant barrier accepted")
	}
	b, err := NewBarrier(arch.Gx8036(), SpinBarrier, 1)
	if err != nil {
		t.Fatal(err)
	}
	var c vtime.Clock
	b.Wait(&c) // must not deadlock
	if c.Now() <= 0 {
		t.Error("single-participant barrier should still cost time")
	}
	if SpinBarrier.String() != "spin" || SyncBarrier.String() != "sync" {
		t.Error("BarrierKind.String mismatch")
	}
}

func TestMemFence(t *testing.T) {
	var c vtime.Clock
	m := cache.NewModel(arch.Gx8036())
	MemFence(&c, m)
	if c.Now() != vtime.Time(vtime.FromNs(12)) {
		t.Errorf("fence advanced clock to %v, want 12 ns", c.Now())
	}
}
