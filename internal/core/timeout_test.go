package core

import (
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"tshmem/internal/fault"
	"tshmem/internal/sanitize"
)

// testGrace is the host-time liveness bound the timeout tests use: long
// enough that a healthy wait never trips it, short enough that the
// deliberately-starved waits below resolve in well under a second.
const testGrace = 150 * time.Millisecond

// timeoutDiags filters a report's diagnostics to the Timeout kind.
func timeoutDiags(rep *Report) []sanitize.Diagnostic {
	var out []sanitize.Diagnostic
	for _, d := range rep.Diagnostics {
		if d.Kind == sanitize.Timeout {
			out = append(out, d)
		}
	}
	return out
}

// TestTimeoutWaitUntilNeverWritten starves a WaitUntil: PE 1 waits on a
// flag no PE ever writes. An empty fault plan arms the bounded waits
// without injecting anything; the wait must terminate with ErrTimeout and
// a diagnostic naming exactly PE 1 in op "wait_until".
func TestTimeoutWaitUntilNeverWritten(t *testing.T) {
	rep, err := Run(Config{
		NPEs: 2, HeapPerPE: 1 << 16,
		Faults: &fault.Plan{}, WaitGrace: testGrace,
	}, func(pe *PE) error {
		flag, ferr := Malloc[int64](pe, 1)
		if ferr != nil {
			return ferr
		}
		if pe.MyPE() == 1 {
			return WaitUntil(pe, flag, CmpNE, 0)
		}
		return nil
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Run error = %v, want ErrTimeout", err)
	}
	if rep == nil {
		t.Fatal("Run returned no report alongside the timeout")
	}
	diags := timeoutDiags(rep)
	if len(diags) != 1 {
		t.Fatalf("got %d timeout diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.PE != 1 || d.Op != "wait_until" {
		t.Errorf("diagnostic names PE %d op %q, want PE 1 op \"wait_until\"", d.PE, d.Op)
	}
	if d.OtherVT != d.VTime.Add(DefaultWaitBudget) {
		t.Errorf("deadline %v is not start %v + budget", d.OtherVT, d.VTime)
	}
	if d.Fault != -1 {
		t.Errorf("unattributed timeout blamed fault event %d, want -1", d.Fault)
	}
}

// TestTimeoutBarrierAbsentPE runs a barrier with one PE that never shows
// up: the chain stalls and every participant must unwind with a
// "barrier" timeout diagnostic instead of deadlocking.
func TestTimeoutBarrierAbsentPE(t *testing.T) {
	const n = 4
	rep, err := Run(Config{
		NPEs: n, HeapPerPE: 1 << 16,
		Faults: &fault.Plan{}, WaitGrace: testGrace,
	}, func(pe *PE) error {
		if pe.MyPE() == 3 {
			return nil // never reaches the barrier
		}
		return pe.BarrierAll()
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Run error = %v, want ErrTimeout", err)
	}
	diags := timeoutDiags(rep)
	seen := map[int]bool{}
	for _, d := range diags {
		if d.Op != "barrier" {
			t.Errorf("diagnostic op %q, want \"barrier\": %v", d.Op, d)
		}
		seen[d.PE] = true
	}
	// The chain is linear 0 -> 1 -> 2 -> 3 -> 0: PE 3 never forwards the
	// wait signal, so PEs 0..2 all starve; PE 3 itself exited cleanly.
	for p := 0; p < 3; p++ {
		if !seen[p] {
			t.Errorf("PE %d has no barrier timeout diagnostic (got %v)", p, diags)
		}
	}
	if seen[3] {
		t.Errorf("absent PE 3 reported a timeout: %v", diags)
	}
}

// TestTimeoutUDNStallPlan is the issue's demo scenario: a fault plan
// stalling one PE's barrier demux queue (permanently, so held packets are
// dropped) makes a BarrierAll time out with a diagnostic naming that
// exact PE and blaming the plan event — and the program unwinds with zero
// hangs.
func TestTimeoutUDNStallPlan(t *testing.T) {
	plan, err := fault.Parse("stall:pe=2,q=0")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{
		NPEs: 4, HeapPerPE: 1 << 16,
		Faults: plan, WaitGrace: testGrace,
	}, func(pe *PE) error {
		return pe.BarrierAll()
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Run error = %v, want ErrTimeout", err)
	}
	diags := timeoutDiags(rep)
	var stuck *sanitize.Diagnostic
	for i := range diags {
		if diags[i].PE == 2 {
			stuck = &diags[i]
			break
		}
	}
	if stuck == nil {
		t.Fatalf("no timeout diagnostic for the stalled PE 2: %v", rep.Diagnostics)
	}
	if stuck.Op != "barrier" {
		t.Errorf("stalled PE diagnostic op %q, want \"barrier\"", stuck.Op)
	}
	if stuck.Fault != 0 {
		t.Errorf("stalled PE diagnostic blames fault %d, want event 0", stuck.Fault)
	}
	if rep.FaultCounts[0] == 0 {
		t.Error("fault event 0 never counted a trigger")
	}
	var terr *TimeoutError
	if !errors.As(err, &terr) {
		t.Fatalf("Run error chain carries no *TimeoutError: %v", err)
	}
}

// TestTimeoutErrorFields checks the typed error surface: PE pair, op,
// fault id, and the virtual window.
func TestTimeoutErrorFields(t *testing.T) {
	e := &TimeoutError{PE: 3, Peer: 1, Op: "barrier", Fault: 2, Start: 10, Deadline: 20}
	if !errors.Is(e, ErrTimeout) {
		t.Error("TimeoutError does not unwrap to ErrTimeout")
	}
	msg := e.Error()
	for _, want := range []string{"PE 3", "barrier", "PE 1", "fault event 2"} {
		if !contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// runStalled runs the demo stall scenario with tracing on and returns
// the report.
func runStalled(t *testing.T) *Report {
	t.Helper()
	plan, err := fault.Parse("stall:pe=2,q=0")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{
		NPEs: 4, HeapPerPE: 1 << 16, Observe: true, Trace: true,
		Faults: plan, WaitGrace: testGrace,
	}, func(pe *PE) error {
		return pe.BarrierAll()
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Run error = %v, want ErrTimeout", err)
	}
	return rep
}

// TestTimeoutDeterministicReplay replays the same fault plan and
// requires identical diagnostics, fault counts, and virtual-time traces
// across repeated runs and across GOMAXPROCS — the determinism guarantee
// docs/ROBUSTNESS.md documents.
func TestTimeoutDeterministicReplay(t *testing.T) {
	a := runStalled(t)
	b := runStalled(t)
	old := runtime.GOMAXPROCS(1)
	c := runStalled(t)
	runtime.GOMAXPROCS(old)

	for label, o := range map[string]*Report{"repeat": b, "gomaxprocs1": c} {
		if !reflect.DeepEqual(a.Diagnostics, o.Diagnostics) {
			t.Errorf("%s: diagnostics diverged:\n  a: %v\n  o: %v", label, a.Diagnostics, o.Diagnostics)
		}
		if !reflect.DeepEqual(a.FaultCounts, o.FaultCounts) {
			t.Errorf("%s: fault counts diverged: %v vs %v", label, a.FaultCounts, o.FaultCounts)
		}
		if !reflect.DeepEqual(a.PETimes, o.PETimes) {
			t.Errorf("%s: PE virtual times diverged: %v vs %v", label, a.PETimes, o.PETimes)
		}
		if !reflect.DeepEqual(a.Trace(), o.Trace()) {
			t.Errorf("%s: virtual-time traces diverged (%d vs %d events)",
				label, len(a.Trace()), len(o.Trace()))
		}
	}
}

// TestSeededPlanCompletes checks that seeded plans — transient by
// construction — degrade a run without killing it, and replay
// deterministically: same seed, same report; different seed, different
// plan.
func TestSeededPlanCompletes(t *testing.T) {
	run := func(seed int64) *Report {
		t.Helper()
		rep, err := Run(Config{
			NPEs: 8, HeapPerPE: 1 << 18, Observe: true,
			Faults: &fault.Plan{Seed: seed},
		}, determinismBody)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return rep
	}
	a, b := run(42), run(42)
	compareReports(t, "seed42", a, b)
	if !reflect.DeepEqual(a.FaultPlan, b.FaultPlan) {
		t.Errorf("same seed produced different plans: %v vs %v", a.FaultPlan, b.FaultPlan)
	}
	c := run(43)
	if reflect.DeepEqual(a.FaultPlan, c.FaultPlan) {
		t.Errorf("seeds 42 and 43 produced the identical plan %v", a.FaultPlan)
	}
	// Degradation must be visible: the faulted run is slower than clean.
	clean, err := Run(Config{NPEs: 8, HeapPerPE: 1 << 18, Observe: true}, determinismBody)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxTime <= clean.MaxTime {
		t.Errorf("faulted makespan %v not above clean %v", a.MaxTime, clean.MaxTime)
	}
}

// TestFaultsOffIdentical confirms the perf contract's semantic half:
// arming nothing (Config.Faults nil) produces byte-identical reports to
// the pre-fault-injection behavior — the hook points are nil-safe
// no-ops.
func TestFaultsOffIdentical(t *testing.T) {
	a := runDeterminism(t)
	b := runDeterminism(t)
	compareReports(t, "faults-off", a, b)
	if a.FaultPlan != nil || a.FaultCounts != nil {
		t.Errorf("faults-off report carries fault state: plan %v counts %v", a.FaultPlan, a.FaultCounts)
	}
}
