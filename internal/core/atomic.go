package core

import (
	"fmt"
	"runtime"

	"tshmem/internal/profile"
	"tshmem/internal/stats"
	"tshmem/internal/vtime"
)

// waitYield lets other PE goroutines make progress while this PE spins on a
// contended lock.
func waitYield() { runtime.Gosched() }

// AtomicT constrains the types with swap support in OpenSHMEM 1.0
// (int, long, long long, float, double).
type AtomicT interface {
	~int32 | ~int64 | ~uint32 | ~uint64 | ~float32 | ~float64
}

// AtomicInt constrains the integer-only atomics (cswap, fadd, finc, add,
// inc).
type AtomicInt interface {
	~int32 | ~int64 | ~uint32 | ~uint64
}

// atomicTarget resolves element 0 of target on PE tpe for an atomic
// operation and charges the transit+service cost: the requesting tile sends
// the operation to the line's home and gets the old value back.
func atomicTarget[T Elem](pe *PE, target Ref[T], tpe int) ([]byte, int64, error) {
	if err := pe.check(); err != nil {
		return nil, 0, err
	}
	if err := pe.checkPE(tpe); err != nil {
		return nil, 0, err
	}
	if !target.valid() || target.kind != dynamicRef {
		return nil, 0, fmt.Errorf("%w: atomics need dynamic symmetric objects", ErrStatic)
	}
	if target.n < 1 {
		return nil, 0, fmt.Errorf("%w: empty target", ErrBounds)
	}
	pe.stats.Atomics++
	start := pe.clock.Now()
	defer pe.rec.OpDone(stats.OpAtomic, start, &pe.clock, sizeOf[T](), tpe)
	// Round trip to the target tile plus the atomic service time; across
	// chips the round trip rides the mPIPE fabric.
	if tpe != pe.id {
		if pe.prog.sameChip(pe.id, tpe) {
			lat, err := pe.prog.geos[pe.prog.chipOf(pe.id)].OneWayLatency(
				pe.prog.localIdx(pe.id), pe.prog.localIdx(tpe), 1)
			if err != nil {
				return nil, 0, err
			}
			pe.clock.Advance(2 * lat)
		} else {
			pe.clock.Advance(2 * pe.prog.fabric.DataCost(0))
		}
	}
	// Every operation through here is a fetch-op (swap/cswap/fadd/...):
	// chips without native RMW (Epiphany) pay the TESTSET emulation
	// premium, and the emulation is surfaced in the counters.
	pe.clock.Advance(pe.prog.model.AtomicRMWCost())
	if pe.prog.chip.AtomicRMWEmulated {
		pe.rec.AtomicEmulated()
	}
	// Atomics on one word mutually order the PEs touching it (the fetch-op
	// serializes at the line's home tile); the hook merges clocks both ways.
	pe.san.AtomicEdge(tpe, target.off)
	return pe.partBytes(tpe), target.off, nil
}

// Swap atomically writes value into target on PE tpe and returns the old
// value (shmem_swap).
func Swap[T AtomicT](pe *PE, target Ref[T], value T, tpe int) (T, error) {
	var zero T
	part, off, err := atomicTarget(pe, target, tpe)
	if err != nil {
		return zero, err
	}
	var old uint64
	if sizeOf[T]() == 4 {
		old = uint64(atomicSwap32(part, off, uint32(toBits(value))))
	} else {
		old = atomicSwap64(part, off, toBits(value))
	}
	// Re-merge after the swap landed: a concurrent atomic that slipped in
	// between atomicTarget's edge and ours is now ordered before us.
	pe.san.AtomicEdge(tpe, off)
	pe.prog.hubs[tpe].record(off, pe.clock.Now(), pe.id)
	return fromBits[T](old), nil
}

// CSwap atomically writes value into target on PE tpe if the current value
// equals cond, returning the prior value (shmem_cswap).
func CSwap[T AtomicInt](pe *PE, target Ref[T], cond, value T, tpe int) (T, error) {
	var zero T
	part, off, err := atomicTarget(pe, target, tpe)
	if err != nil {
		return zero, err
	}
	es := sizeOf[T]()
	for {
		var curBits uint64
		if es == 4 {
			curBits = uint64(atomicLoad32(part, off))
		} else {
			curBits = atomicLoad64(part, off)
		}
		cur := fromBits[T](curBits)
		if cur != cond {
			return cur, nil
		}
		var swapped bool
		if es == 4 {
			swapped = atomicCAS32(part, off, uint32(curBits), uint32(toBits(value)))
		} else {
			swapped = atomicCAS64(part, off, curBits, toBits(value))
		}
		if swapped {
			pe.san.AtomicEdge(tpe, off)
			pe.prog.hubs[tpe].record(off, pe.clock.Now(), pe.id)
			return cur, nil
		}
	}
}

// FAdd atomically adds value to target on PE tpe and returns the prior
// value (shmem_fadd).
func FAdd[T AtomicInt](pe *PE, target Ref[T], value T, tpe int) (T, error) {
	var zero T
	part, off, err := atomicTarget(pe, target, tpe)
	if err != nil {
		return zero, err
	}
	es := sizeOf[T]()
	for {
		var curBits uint64
		if es == 4 {
			curBits = uint64(atomicLoad32(part, off))
		} else {
			curBits = atomicLoad64(part, off)
		}
		cur := fromBits[T](curBits)
		next := cur + value
		var swapped bool
		if es == 4 {
			swapped = atomicCAS32(part, off, uint32(curBits), uint32(toBits(next)))
		} else {
			swapped = atomicCAS64(part, off, curBits, toBits(next))
		}
		if swapped {
			pe.san.AtomicEdge(tpe, off)
			pe.prog.hubs[tpe].record(off, pe.clock.Now(), pe.id)
			return cur, nil
		}
	}
}

// FInc atomically increments target on PE tpe and returns the prior value
// (shmem_finc).
func FInc[T AtomicInt](pe *PE, target Ref[T], tpe int) (T, error) {
	return FAdd(pe, target, 1, tpe)
}

// Add atomically adds value to target on PE tpe (shmem_add).
func Add[T AtomicInt](pe *PE, target Ref[T], value T, tpe int) error {
	_, err := FAdd(pe, target, value, tpe)
	return err
}

// Inc atomically increments target on PE tpe (shmem_inc).
func Inc[T AtomicInt](pe *PE, target Ref[T], tpe int) error {
	_, err := FAdd(pe, target, 1, tpe)
	return err
}

// SetLock acquires a distributed lock (shmem_set_lock). The lock is a
// symmetric long variable arbitrated through the instance on PE 0; the
// algorithm is selected by Config.LockAlgo (docs/SYNC.md). The default is
// a compare-and-swap loop with exponential backoff.
func (pe *PE) SetLock(lock Ref[int64]) error {
	switch pe.prog.cfg.LockAlgo {
	case LockAlgoTicket:
		return pe.setLockTicket(lock)
	case LockAlgoMCS:
		return pe.setLockMCS(lock)
	}
	if err := pe.check(); err != nil {
		return err
	}
	// Re-acquiring a held lock spins forever on hardware; under the
	// sanitizer the misuse is diagnosed and the call fails instead of
	// deadlocking the run.
	if pe.san.LockSelfAcquire(lock.off, pe.clock.Now()) {
		return fmt.Errorf("tshmem: PE %d SetLock on a lock it already holds (self-deadlock)", pe.id)
	}
	start := pe.clock.Now()
	backoff := vtime.Duration(pe.prog.chip.Cycles(50))
	for {
		old, err := CSwap(pe, lock, 0, int64(pe.id)+1, 0)
		if err != nil {
			return err
		}
		if old == 0 {
			pe.lockFreeVisible(lock.off)
			pe.lockAcquired(lock.off, stats.LockAlgoCAS, start)
			return nil
		}
		pe.rec.LockRetries(1)
		if pe.prog.aborted.Load() {
			return fmt.Errorf("tshmem: program aborted while PE %d waited for a lock", pe.id)
		}
		// Contended: model the retry delay and let other goroutines run.
		t0 := pe.clock.Now()
		pe.clock.Advance(backoff)
		pe.prof.Advance(profile.CatLockWait, t0, pe.clock.Now())
		if backoff < vtime.Microsecond {
			backoff *= 2
		}
		pe.yieldSpin()
	}
}

// ClearLock releases a lock held by this PE (shmem_clear_lock).
func (pe *PE) ClearLock(lock Ref[int64]) error {
	switch pe.prog.cfg.LockAlgo {
	case LockAlgoTicket:
		return pe.clearLockTicket(lock)
	case LockAlgoMCS:
		return pe.clearLockMCS(lock)
	}
	if err := pe.check(); err != nil {
		return err
	}
	// Diagnose before the swap: the unconditional store below destroys the
	// real holder's ownership whether or not we held the lock.
	pe.san.LockRelease(lock.off, pe.clock.Now())
	old, err := Swap(pe, lock, int64(0), 0)
	if err != nil {
		return err
	}
	if old != int64(pe.id)+1 {
		return fmt.Errorf("tshmem: PE %d cleared a lock held by %d", pe.id, old-1)
	}
	pe.prog.clearLockHolder(lock.off, pe.id)
	pe.prog.setLockRelease(lock.off, pe.clock.Now(), pe.id)
	return nil
}

// TestLock attempts to acquire the lock without blocking
// (shmem_test_lock); it reports true when the lock was already held.
func (pe *PE) TestLock(lock Ref[int64]) (bool, error) {
	if err := pe.check(); err != nil {
		return false, err
	}
	if pe.prog.cfg.LockAlgo == LockAlgoTicket {
		return pe.testLockTicket(lock)
	}
	// The CAS and MCS lock words agree when uncontended (holder PE + 1, 0
	// when free), so a conditional swap is a correct non-blocking probe
	// for both.
	start := pe.clock.Now()
	old, err := CSwap(pe, lock, 0, int64(pe.id)+1, 0)
	if err != nil {
		return false, err
	}
	if old == 0 {
		pe.lockFreeVisible(lock.off)
		pe.lockAcquired(lock.off, pe.prog.cfg.LockAlgo.statsID(), start)
	}
	return old != 0, nil
}
