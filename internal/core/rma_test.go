package core

import (
	"errors"
	"testing"

	"tshmem/internal/vtime"
)

func TestPutGetDynamic(t *testing.T) {
	const n = 6
	runT(t, gxCfg(n), func(pe *PE) error {
		x, err := Malloc[int64](pe, 128)
		if err != nil {
			return err
		}
		src := MustLocal(pe, x)
		for i := range src {
			src[i] = int64(pe.MyPE()*1000 + i)
		}
		y, err := Malloc[int64](pe, 128)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		// Ring put: each PE puts its x into the next PE's y.
		next := (pe.MyPE() + 1) % n
		if err := Put(pe, y, x, 128, next); err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		prev := (pe.MyPE() + n - 1) % n
		got := MustLocal(pe, y)
		for i := range got {
			if got[i] != int64(prev*1000+i) {
				t.Fatalf("PE %d: y[%d] = %d, want %d", pe.MyPE(), i, got[i], prev*1000+i)
			}
		}
		// Ring get: read the previous PE's x into a private buffer.
		buf := make([]int64, 128)
		if err := GetSlice(pe, buf, x, prev); err != nil {
			return err
		}
		for i := range buf {
			if buf[i] != int64(prev*1000+i) {
				t.Fatalf("PE %d: get[%d] = %d", pe.MyPE(), i, buf[i])
			}
		}
		return pe.BarrierAll()
	})
}

func TestPutGetSelf(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		x, err := Malloc[float32](pe, 8)
		if err != nil {
			return err
		}
		y, err := Malloc[float32](pe, 8)
		if err != nil {
			return err
		}
		v := MustLocal(pe, x)
		for i := range v {
			v[i] = float32(i) * 1.5
		}
		if err := Put(pe, y, x, 8, pe.MyPE()); err != nil {
			return err
		}
		w := MustLocal(pe, y)
		for i := range w {
			if w[i] != float32(i)*1.5 {
				t.Fatalf("self put lost data at %d", i)
			}
		}
		return nil
	})
}

func TestPutGetValidation(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		x, err := Malloc[int32](pe, 4)
		if err != nil {
			return err
		}
		if err := Put(pe, x, x, 5, 0); !errors.Is(err, ErrBounds) {
			t.Errorf("oversize put: %v", err)
		}
		if err := Put(pe, x, x, 2, 7); !errors.Is(err, ErrBadPE) {
			t.Errorf("bad PE: %v", err)
		}
		if err := Put(pe, x, x, 2, -1); !errors.Is(err, ErrBadPE) {
			t.Errorf("negative PE: %v", err)
		}
		var zero Ref[int32]
		if err := Put(pe, zero, x, 1, 0); !errors.Is(err, ErrBounds) {
			t.Errorf("zero target: %v", err)
		}
		if err := Get(pe, x, zero, 1, 0); !errors.Is(err, ErrBounds) {
			t.Errorf("zero source: %v", err)
		}
		return nil
	})
}

func TestElementalPG(t *testing.T) {
	runT(t, gxCfg(3), func(pe *PE) error {
		flag, err := Malloc[int32](pe, 4)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		// Everyone writes its ID into element pe.MyPE() on PE 0.
		if err := P(pe, flag.At(pe.MyPE()), int32(pe.MyPE()+10), 0); err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			v, err := G(pe, flag.At(i), 0)
			if err != nil {
				return err
			}
			if v != int32(i+10) {
				t.Fatalf("PE %d: flag[%d] = %d", pe.MyPE(), i, v)
			}
		}
		return pe.BarrierAll()
	})
}

func TestElementalWideTypes(t *testing.T) {
	// complex128 is 16 bytes: elemental ops take the block path.
	runT(t, gxCfg(2), func(pe *PE) error {
		z, err := Malloc[complex128](pe, 2)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if err := P(pe, z.At(1), complex(3.5, -2.5), 1); err != nil {
				return err
			}
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 1 {
			if got := MustLocal(pe, z)[1]; got != complex(3.5, -2.5) {
				t.Errorf("complex put lost: %v", got)
			}
		}
		v, err := G(pe, z.At(1), 1)
		if err != nil {
			return err
		}
		if v != complex(3.5, -2.5) {
			t.Errorf("complex get: %v", v)
		}
		return pe.BarrierAll()
	})
}

func TestStridedIPutIGet(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		src, err := Malloc[int32](pe, 16)
		if err != nil {
			return err
		}
		dst, err := Malloc[int32](pe, 16)
		if err != nil {
			return err
		}
		v := MustLocal(pe, src)
		for i := range v {
			v[i] = int32(100*pe.MyPE() + i)
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			// Put every 2nd of my elements into every 3rd slot on PE 1.
			if err := IPut(pe, dst, src, 3, 2, 5, 1); err != nil {
				return err
			}
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 1 {
			d := MustLocal(pe, dst)
			for i := 0; i < 5; i++ {
				if d[3*i] != int32(2*i) {
					t.Fatalf("iput: dst[%d] = %d, want %d", 3*i, d[3*i], 2*i)
				}
			}
			// Strided get back from PE 0.
			got, err := Malloc[int32](pe, 16)
			if err == nil {
				err = IGet(pe, got, src, 2, 4, 4, 0)
			}
			if err != nil {
				return err
			}
			g := MustLocal(pe, got)
			for i := 0; i < 4; i++ {
				if g[2*i] != int32(4*i) {
					t.Fatalf("iget: got[%d] = %d, want %d", 2*i, g[2*i], 4*i)
				}
			}
		} else {
			// PE 0 participates in PE 1's collective Malloc.
			if _, err := Malloc[int32](pe, 16); err != nil {
				return err
			}
		}
		return pe.BarrierAll()
	})
}

func TestStridedValidation(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		x, err := Malloc[int64](pe, 10)
		if err != nil {
			return err
		}
		if err := IPut(pe, x, x, 0, 1, 3, 1); !errors.Is(err, ErrBounds) {
			t.Errorf("zero stride: %v", err)
		}
		if err := IPut(pe, x, x, 4, 1, 4, 1); !errors.Is(err, ErrBounds) {
			t.Errorf("overlong target span: %v", err)
		}
		if err := IPut(pe, x, x, 1, 4, 4, 1); !errors.Is(err, ErrBounds) {
			t.Errorf("overlong source span: %v", err)
		}
		if err := IGet(pe, x, x, 1, 1, 0, 1); !errors.Is(err, ErrBounds) {
			t.Errorf("zero elements: %v", err)
		}
		if err := IGet(pe, x, x, 4, 1, 4, 1); !errors.Is(err, ErrBounds) {
			t.Errorf("overlong local span: %v", err)
		}
		// Exact fit: (nelems-1)*stride+1 == len on both sides is legal.
		// Self-targeted so the two PEs' writes don't overlap.
		if err := IPut(pe, x, x, 3, 3, 4, pe.MyPE()); err != nil {
			t.Errorf("exact-fit strided span rejected: %v", err)
		}
		return pe.BarrierAll()
	})
}

// TestStridedSelfStaticPrivateCost is the IPut/IGet cost-model regression
// test: a self-transfer between two static (private-memory) objects is a
// private copy and must be charged like the equivalent block Put — not at
// the shared-memory rate a transfer through common memory pays. Before the
// fix, IPut charged sharedMode unconditionally, so the static-static and
// heap-heap timings below were identical.
func TestStridedSelfStaticPrivateCost(t *testing.T) {
	const nelems = 4096
	var iputStatic, iputHeap, igetStatic, igetHeap vtime.Duration
	runT(t, gxCfg(1), func(pe *PE) error {
		ssrc, err := DeclareStatic[int64](pe, "iput_cost_src", nelems)
		if err != nil {
			return err
		}
		sdst, err := DeclareStatic[int64](pe, "iput_cost_dst", nelems)
		if err != nil {
			return err
		}
		hsrc, err := Malloc[int64](pe, nelems)
		if err != nil {
			return err
		}
		hdst, err := Malloc[int64](pe, nelems)
		if err != nil {
			return err
		}
		measure := func(f func() error) (vtime.Duration, error) {
			t0 := pe.Now()
			err := f()
			return pe.Now().Sub(t0), err
		}
		if iputStatic, err = measure(func() error {
			return IPut(pe, sdst, ssrc, 1, 1, nelems, 0)
		}); err != nil {
			return err
		}
		if iputHeap, err = measure(func() error {
			return IPut(pe, hdst, hsrc, 1, 1, nelems, 0)
		}); err != nil {
			return err
		}
		if igetStatic, err = measure(func() error {
			return IGet(pe, sdst, ssrc, 1, 1, nelems, 0)
		}); err != nil {
			return err
		}
		if igetHeap, err = measure(func() error {
			return IGet(pe, hdst, hsrc, 1, 1, nelems, 0)
		}); err != nil {
			return err
		}
		return nil
	})
	if iputStatic >= iputHeap {
		t.Errorf("self static-static IPut (%v) not cheaper than heap-heap (%v); private mode not applied",
			iputStatic, iputHeap)
	}
	if igetStatic >= igetHeap {
		t.Errorf("self static-static IGet (%v) not cheaper than heap-heap (%v); private mode not applied",
			igetStatic, igetHeap)
	}
	// Alignment with the block path: strided and block private copies of
	// the same bytes differ only by the per-element stride arithmetic.
	var putStatic vtime.Duration
	runT(t, gxCfg(1), func(pe *PE) error {
		src, err := DeclareStatic[int64](pe, "put_cost_src", nelems)
		if err != nil {
			return err
		}
		dst, err := DeclareStatic[int64](pe, "put_cost_dst", nelems)
		if err != nil {
			return err
		}
		t0 := pe.Now()
		if err := Put(pe, dst, src, nelems, 0); err != nil {
			return err
		}
		putStatic = pe.Now().Sub(t0)
		return nil
	})
	if iputStatic < putStatic || iputStatic > 2*putStatic {
		t.Errorf("strided private copy %v vs block %v: want block <= strided <= 2x block",
			iputStatic, putStatic)
	}
}

// TestFig6PutGetSymmetric checks the headline Figure 6 behavior: put and
// get bandwidth closely align, and the dynamic-dynamic transfer cost
// matches the shared-memory memcpy model (low overhead over Figure 3).
func TestFig6PutGetSymmetric(t *testing.T) {
	const nelems = 32 << 10 // 256 kB of int64
	var putCost, getCost vtime.Duration
	runT(t, gxCfg(2), func(pe *PE) error {
		x, err := Malloc[int64](pe, nelems)
		if err != nil {
			return err
		}
		y, err := Malloc[int64](pe, nelems)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			t0 := pe.Now()
			if err := Put(pe, y, x, nelems, 1); err != nil {
				return err
			}
			putCost = pe.Now().Sub(t0)
			t0 = pe.Now()
			if err := Get(pe, y, x, nelems, 1); err != nil {
				return err
			}
			getCost = pe.Now().Sub(t0)
		}
		return pe.BarrierAll()
	})
	if putCost <= 0 || getCost <= 0 {
		t.Fatal("costs not measured")
	}
	ratio := float64(putCost) / float64(getCost)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("put/get cost ratio %.3f, want ~1 (Figure 6)", ratio)
	}
}

func TestStatsAccounting(t *testing.T) {
	rep := runT(t, gxCfg(2), func(pe *PE) error {
		x, err := Malloc[int64](pe, 16)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if err := Put(pe, x, x, 16, 1); err != nil {
				return err
			}
			buf := make([]int64, 4)
			if err := GetSlice(pe, buf, x, 1); err != nil {
				return err
			}
			st := pe.Stats()
			if st.Puts != 1 || st.PutBytes != 128 {
				t.Errorf("put stats: %+v", st)
			}
			if st.Gets != 1 || st.GetBytes != 32 {
				t.Errorf("get stats: %+v", st)
			}
		}
		return pe.BarrierAll()
	})
	if rep.PutBytes != 128 || rep.GetBytes != 32 {
		t.Errorf("report aggregation: put %d get %d", rep.PutBytes, rep.GetBytes)
	}
	if rep.Barriers == 0 {
		t.Error("barriers not counted")
	}
}
