package core

import (
	"fmt"
	"math/rand"
	"testing"

	"tshmem/internal/arch"
)

// Property-based OpenSHMEM 1.0 conformance: seeded randomized op
// sequences, replayed identically on every PE (the sequence derives from
// a shared seed, so collective calls stay symmetric), asserting the
// specification's observable semantics against serial references:
//
//   - put-quiet-get round-trips: data put to a peer and fenced is exactly
//     what a get returns, and exactly what the owner observes;
//   - reductions (sum/max/xor) equal a serial fold over every PE's
//     contribution;
//   - collect/fcollect concatenate contributions in active-set order at
//     exact offsets.
//
// The cases sweep PE counts {2, 4, odd, full-grid} on both chip models
// (TILE-Gx8036 and TILEPro64), the paper's two platforms.

// propElems bounds per-PE transfer sizes; small enough for odd-grid runs
// on the slow chip model, large enough to cross cache-line granularity.
const propElems = 64

// propVal is the deterministic element value PE pe contributes at
// position i of round r under the given seed; the serial references
// recompute it instead of communicating.
func propVal(seed int64, pe, r, i int) int64 {
	return seed*1_000_003 + int64(pe)*10_007 + int64(r)*101 + int64(i)
}

// propBody replays rounds of randomized operations drawn from a shared
// stream. Every PE constructs the identical sequence of (op, size,
// stride) choices, so collectives and barriers are symmetric; only the
// data differs per PE (via propVal).
func propBody(seed int64, rounds int) func(pe *PE) error {
	return func(pe *PE) error {
		n := pe.NumPEs()
		me := pe.MyPE()
		as := AllPEs(n)
		rng := rand.New(rand.NewSource(seed))

		src, err := Malloc[int64](pe, propElems)
		if err != nil {
			return err
		}
		dst, err := Malloc[int64](pe, propElems)
		if err != nil {
			return err
		}
		red, err := Malloc[int64](pe, propElems)
		if err != nil {
			return err
		}
		gather, err := Malloc[int64](pe, propElems*n)
		if err != nil {
			return err
		}
		pwrk, err := Malloc[int64](pe, propElems*8+ReduceMinWrkSize)
		if err != nil {
			return err
		}
		ps, err := Malloc[int64](pe, CollectSyncSize)
		if err != nil {
			return err
		}

		for r := 0; r < rounds; r++ {
			nelems := 1 + rng.Intn(propElems)
			stride := 1 + rng.Intn(n-1) // peer distance, nonzero
			op := rng.Intn(4)

			lv := MustLocal(pe, src)
			for i := 0; i < nelems; i++ {
				lv[i] = propVal(seed, me, r, i)
			}
			if err := pe.BarrierAll(); err != nil {
				return err
			}

			switch op {
			case 0:
				// Put-quiet-get round-trip: put to dst on the peer, fence,
				// barrier, then (a) the owner checks what landed and (b) the
				// writer gets it back and compares with what it sent.
				to := (me + stride) % n
				from := (me - stride + n) % n
				if err := Put(pe, dst, src, nelems, to); err != nil {
					return err
				}
				pe.Quiet()
				if err := pe.BarrierAll(); err != nil {
					return err
				}
				mine := MustLocal(pe, dst)
				for i := 0; i < nelems; i++ {
					if want := propVal(seed, from, r, i); mine[i] != want {
						return fmt.Errorf("round %d: put landed dst[%d] = %d on PE %d, want %d (from PE %d)",
							r, i, mine[i], me, want, from)
					}
				}
				back := make([]int64, nelems)
				if err := GetSlice(pe, back, dst.Slice(0, nelems), to); err != nil {
					return err
				}
				for i := 0; i < nelems; i++ {
					if want := propVal(seed, me, r, i); back[i] != want {
						return fmt.Errorf("round %d: get returned dst[%d] = %d from PE %d, want %d",
							r, i, back[i], to, want)
					}
				}
				// The target is rewritten next round; barrier before reuse.
				if err := pe.BarrierAll(); err != nil {
					return err
				}

			case 1:
				// Reduction vs serial fold.
				which := rng.Intn(3)
				var err error
				switch which {
				case 0:
					err = SumToAll(pe, red, src, nelems, as, pwrk, ps)
				case 1:
					err = MaxToAll(pe, red, src, nelems, as, pwrk, ps)
				default:
					err = XorToAll(pe, red, src, nelems, as, pwrk, ps)
				}
				if err != nil {
					return err
				}
				got := MustLocal(pe, red)
				for i := 0; i < nelems; i++ {
					var want int64
					for p := 0; p < n; p++ {
						v := propVal(seed, p, r, i)
						switch which {
						case 0:
							want += v
						case 1:
							if p == 0 || v > want {
								want = v
							}
						default:
							want ^= v
						}
					}
					if got[i] != want {
						return fmt.Errorf("round %d: reduce(kind %d)[%d] = %d on PE %d, want %d",
							r, which, i, got[i], me, want)
					}
				}

			case 2:
				// FCollect: fixed-size concatenation in active-set order.
				if err := FCollect(pe, gather, src, nelems, as, ps); err != nil {
					return err
				}
				got := MustLocal(pe, gather)
				for p := 0; p < n; p++ {
					for i := 0; i < nelems; i++ {
						if want := propVal(seed, as.PE(p), r, i); got[p*nelems+i] != want {
							return fmt.Errorf("round %d: fcollect[%d] = %d on PE %d, want %d (PE %d elem %d)",
								r, p*nelems+i, got[p*nelems+i], me, want, as.PE(p), i)
						}
					}
				}

			default:
				// Collect: per-PE contribution sizes drawn from the shared
				// stream, so every PE knows the full layout; verify each
				// block lands at the exact prefix-sum offset.
				counts := make([]int, n)
				total := 0
				for p := 0; p < n; p++ {
					counts[p] = 1 + rng.Intn(propElems/4)
					total += counts[p]
				}
				if total > propElems*n {
					return fmt.Errorf("round %d: collect layout overflows target", r)
				}
				if err := Collect(pe, gather, src, counts[me], as, ps); err != nil {
					return err
				}
				got := MustLocal(pe, gather)
				off := 0
				for p := 0; p < n; p++ {
					for i := 0; i < counts[p]; i++ {
						if want := propVal(seed, as.PE(p), r, i); got[off+i] != want {
							return fmt.Errorf("round %d: collect[%d] = %d on PE %d, want %d (PE %d elem %d)",
								r, off+i, got[off+i], me, want, as.PE(p), i)
						}
					}
					off += counts[p]
				}
			}

			if err := pe.BarrierAll(); err != nil {
				return err
			}
		}
		return nil
	}
}

// TestPropertyConformance sweeps the seeded op-sequence program over PE
// counts {2, 4, odd, full-grid} on both chip models. Any semantic
// violation reports the exact round, op, element, and PEs involved.
func TestPropertyConformance(t *testing.T) {
	chips := []struct {
		chip *arch.Chip
		npes []int
	}{
		{arch.Gx8036(), []int{2, 4, 5, 36}},
		{arch.Pro64(), []int{2, 4, 5, 16}},
		// Epiphany: scratchpad memory model + TESTSET-emulated fetch-ops.
		{arch.EpiphanyIII(), []int{2, 5, 16}},
		// Non-square synthetic grid: XY routes bend at asymmetric
		// coordinates, and 5 PEs leaves a ragged area.
		{arch.Synthetic(8, 3), []int{2, 5, 24}},
	}
	for _, c := range chips {
		for _, n := range c.npes {
			for _, seed := range []int64{1, 7} {
				name := fmt.Sprintf("%s/n%d/seed%d", c.chip.Name, n, seed)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					rounds := 6
					if n >= 16 {
						rounds = 3 // bigger grids: fewer rounds, same coverage
					}
					cfg := Config{Chip: c.chip, NPEs: n, HeapPerPE: (propElems*int64(n) + 4*propElems + 1024) * 16}
					if _, err := Run(cfg, propBody(seed, rounds)); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestPropertyConformanceNewFamilies re-runs a seeded sequence on the
// chips added after the sweep above was first written — Epiphany-III
// (scratchpad, emulated RMW) and a non-square synthetic grid — on BOTH
// engines with the sanitizer on, requiring a clean diagnostic stream.
func TestPropertyConformanceNewFamilies(t *testing.T) {
	for _, chip := range []*arch.Chip{arch.EpiphanyIII(), arch.Synthetic(8, 3)} {
		for _, eng := range Engines() {
			name := fmt.Sprintf("%s/%s", chip.Name, eng)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				cfg := Config{
					Chip: chip, NPEs: 8, Engine: eng, Sanitize: true,
					HeapPerPE: (propElems*8 + 4*propElems + 1024) * 16,
				}
				rep, err := Run(cfg, propBody(5, 4))
				if err != nil {
					t.Fatal(err)
				}
				if len(rep.Diagnostics) != 0 {
					t.Fatalf("sanitizer diagnostics on %s: %v", name, rep.Diagnostics)
				}
			})
		}
	}
}

// TestPropertyConformanceAlgorithms re-runs a sequence under the
// non-default collective algorithms (recursive-doubling reduction,
// binomial broadcast selection plumbing) on a power-of-two grid, where
// the algorithm switch actually changes the communication pattern.
func TestPropertyConformanceAlgorithms(t *testing.T) {
	cfg := Config{
		Chip: arch.Gx8036(), NPEs: 4,
		HeapPerPE: (propElems*4 + 4*propElems + 1024) * 16,
		Reduce:    RecursiveDoubling,
		Bcast:     BinomialBcast,
	}
	if _, err := Run(cfg, propBody(3, 6)); err != nil {
		t.Fatal(err)
	}
}
