package core

import (
	"sync"
	"testing"
	"testing/quick"
)

// White-box tests for the sub-word atomic helpers: they must modify exactly
// the addressed bytes and stay atomic under contention.

func TestAtomic16Basics(t *testing.T) {
	buf := make([]byte, 16)
	for off := int64(0); off < 8; off += 2 {
		atomicStore16(buf, off, uint16(0x1100+off))
	}
	for off := int64(0); off < 8; off += 2 {
		if got := atomicLoad16(buf, off); got != uint16(0x1100+off) {
			t.Errorf("load16(%d) = %#x", off, got)
		}
	}
	// Store to offset 2 must not clobber offsets 0 or 4.
	atomicStore16(buf, 2, 0xBEEF)
	if atomicLoad16(buf, 0) != 0x1100 || atomicLoad16(buf, 4) != 0x1104 {
		t.Error("store16 clobbered neighbors")
	}
	old := atomicSwap16(buf, 2, 0xCAFE)
	if old != 0xBEEF || atomicLoad16(buf, 2) != 0xCAFE {
		t.Errorf("swap16: old=%#x now=%#x", old, atomicLoad16(buf, 2))
	}
	if atomicCAS16(buf, 2, 0x0000, 0x1111) {
		t.Error("cas16 succeeded on mismatch")
	}
	if !atomicCAS16(buf, 2, 0xCAFE, 0x2222) || atomicLoad16(buf, 2) != 0x2222 {
		t.Error("cas16 failed on match")
	}
}

func TestAtomic16Concurrent(t *testing.T) {
	// Two goroutines hammer adjacent 16-bit fields sharing a 32-bit word;
	// neither may corrupt the other.
	buf := make([]byte, 8)
	const iters = 5000
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			off := int64(g * 2)
			for i := 0; i < iters; i++ {
				atomicStore16(buf, off, uint16(i))
			}
			atomicStore16(buf, off, uint16(0xAA00+g))
		}(g)
	}
	wg.Wait()
	if atomicLoad16(buf, 0) != 0xAA00 || atomicLoad16(buf, 2) != 0xAA01 {
		t.Errorf("adjacent fields corrupted: %#x %#x", atomicLoad16(buf, 0), atomicLoad16(buf, 2))
	}
}

func TestAtomicElemWidths(t *testing.T) {
	buf := make([]byte, 32)
	// 1-byte elements via the containing word.
	for off := int64(0); off < 4; off++ {
		atomicStoreElem(buf, off, 1, uint64(0x10+off))
	}
	for off := int64(0); off < 4; off++ {
		if got := atomicLoadElem(buf, off, 1); got != uint64(0x10+off) {
			t.Errorf("elem1(%d) = %#x", off, got)
		}
	}
	atomicStoreElem(buf, 8, 2, 0xBEEF)
	if atomicLoadElem(buf, 8, 2) != 0xBEEF {
		t.Error("elem2 round trip failed")
	}
	atomicStoreElem(buf, 12, 4, 0xDEADBEEF)
	if atomicLoadElem(buf, 12, 4) != 0xDEADBEEF {
		t.Error("elem4 round trip failed")
	}
	atomicStoreElem(buf, 16, 8, 0x0123456789ABCDEF)
	if atomicLoadElem(buf, 16, 8) != 0x0123456789ABCDEF {
		t.Error("elem8 round trip failed")
	}
}

func TestBitsRoundTrip(t *testing.T) {
	if fromBits[int16](toBits(int16(-5))) != -5 {
		t.Error("int16 bits")
	}
	if fromBits[uint8](toBits(uint8(200))) != 200 {
		t.Error("uint8 bits")
	}
	if fromBits[float32](toBits(float32(3.25))) != 3.25 {
		t.Error("float32 bits")
	}
	if fromBits[float64](toBits(2.5)) != 2.5 {
		t.Error("float64 bits")
	}
	if fromBits[complex64](toBits(complex64(complex(1, -2)))) != complex(1, -2) {
		t.Error("complex64 bits")
	}
	f := func(v int64) bool { return fromBits[int64](toBits(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(v uint32) bool { return fromBits[uint32](toBits(v)) == v }
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}
