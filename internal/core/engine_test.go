package core

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"tshmem/internal/arch"
	"tshmem/internal/fault"
)

// TestEngineParse checks the -engine flag surface: names round-trip,
// empty and "default" select the goroutine engine, and unknown names
// fail listing the valid set.
func TestEngineParse(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Engine
	}{
		{"", EngineGoroutine},
		{"default", EngineGoroutine},
		{"goroutine", EngineGoroutine},
		{"event", EngineEvent},
	} {
		got, err := ParseEngine(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseEngine("fiber"); err == nil || !strings.Contains(err.Error(), "goroutine") {
		t.Errorf("ParseEngine(fiber) error %v does not list valid engines", err)
	}
	engines := Engines()
	if len(engines) != 2 || engines[0].String() != "goroutine" || engines[1].String() != "event" {
		t.Errorf("Engines() = %v", engines)
	}
	for _, e := range engines {
		back, err := ParseEngine(e.String())
		if err != nil || back != e {
			t.Errorf("ParseEngine(%q) did not round-trip: %v, %v", e.String(), back, err)
		}
	}
}

// engineEquivBody is the cross-engine equivalence workload: ring puts and
// gets, full and subset barriers, a broadcast, static-put interrupt
// redirection, a WaitUntil flag chain fed by remote atomics, and a
// round-robin lock handoff. Lock acquisition is serialized by barriers on
// purpose: contended CAS retry counts are host-racy by design (each retry
// advances the spinner's clock), so only uncontended acquisition is
// byte-comparable across engines.
func engineEquivBody(pe *PE) error {
	const n = 64
	x, err := Malloc[int64](pe, n)
	if err != nil {
		return err
	}
	y, err := Malloc[int64](pe, n)
	if err != nil {
		return err
	}
	ps, err := Malloc[int64](pe, BcastSyncSize)
	if err != nil {
		return err
	}
	flag, err := Malloc[int64](pe, 1)
	if err != nil {
		return err
	}
	lk, err := Malloc[int64](pe, 1)
	if err != nil {
		return err
	}
	ctr, err := Malloc[int64](pe, 1)
	if err != nil {
		return err
	}
	stSrc, err := DeclareStatic[int64](pe, "eng-src", 32)
	if err != nil {
		return err
	}
	stDst, err := DeclareStatic[int64](pe, "eng-dst", 32)
	if err != nil {
		return err
	}
	if err := pe.AlignClocks(); err != nil {
		return err
	}
	lv, err := Local(pe, x)
	if err != nil {
		return err
	}
	for i := range lv {
		lv[i] = int64(pe.MyPE()*n + i)
	}
	np := pe.NumPEs()
	as := AllPEs(np)
	half := ActiveSet{Start: 0, LogStride: 1, Size: np / 2}
	for iter := 0; iter < 2; iter++ {
		next := (pe.MyPE() + 1) % np
		if err := Put(pe, y, x, n, next); err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if err := Get(pe, x, y, n, (pe.MyPE()+np-1)%np); err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.prog.chip.UDNInterrupts {
			if err := Put(pe, stDst, stSrc, 32, next); err != nil {
				return err
			}
		}
		if err := BroadcastPull(pe, y, x, n, 0, as, ps); err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if np >= 4 && pe.prog.cfg.BarrierAlgo != BarrierAlgoSpin && half.Contains(pe.MyPE()) {
			if err := pe.Barrier(half); err != nil {
				return err
			}
		}
	}
	for iter := int64(1); iter <= 2; iter++ {
		next := (pe.MyPE() + 1) % np
		if err := Add(pe, flag, 1, next); err != nil {
			return err
		}
		if err := WaitUntil(pe, flag, CmpGE, iter); err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
	}
	for turn := 0; turn < np; turn++ {
		if turn == pe.MyPE() {
			if err := pe.SetLock(lk); err != nil {
				return err
			}
			if err := Add(pe, ctr, 1, 0); err != nil {
				return err
			}
			if err := pe.ClearLock(lk); err != nil {
				return err
			}
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
	}
	return pe.BarrierAll()
}

// runBothEngines runs the same config and body under both engines and
// requires the same success/failure outcome.
func runBothEngines(t *testing.T, label string, cfg Config, body func(*PE) error) (g, e *Report) {
	t.Helper()
	gc, ec := cfg, cfg
	gc.Engine = EngineGoroutine
	ec.Engine = EngineEvent
	g, gerr := Run(gc, body)
	e, eerr := Run(ec, body)
	if gerr != nil || eerr != nil {
		t.Fatalf("%s: run failed:\n  goroutine: %v\n  event:     %v", label, gerr, eerr)
	}
	return g, e
}

// compareEngineRuns asserts byte-identity of everything the run produced:
// report fields, diagnostics, fault counts, traces (structured and
// serialized), and profiles — plus the engine bookkeeping itself.
func compareEngineRuns(t *testing.T, label string, g, e *Report) {
	t.Helper()
	compareReports(t, label, g, e)
	if !reflect.DeepEqual(g.Diagnostics, e.Diagnostics) {
		t.Errorf("%s: diagnostics diverged:\n  goroutine: %v\n  event:     %v", label, g.Diagnostics, e.Diagnostics)
	}
	if !reflect.DeepEqual(g.FaultCounts, e.FaultCounts) {
		t.Errorf("%s: fault counts diverged: %v vs %v", label, g.FaultCounts, e.FaultCounts)
	}
	if !reflect.DeepEqual(g.Trace(), e.Trace()) {
		t.Errorf("%s: traces diverged (%d vs %d events)", label, len(g.Trace()), len(e.Trace()))
	}
	var gt, et bytes.Buffer
	if err := g.TraceTo(&gt); err != nil {
		t.Fatalf("%s: goroutine TraceTo: %v", label, err)
	}
	if err := e.TraceTo(&et); err != nil {
		t.Fatalf("%s: event TraceTo: %v", label, err)
	}
	if !bytes.Equal(gt.Bytes(), et.Bytes()) {
		t.Errorf("%s: serialized traces are not byte-identical (%d vs %d bytes)", label, gt.Len(), et.Len())
	}
	gp, ep := g.Profile(), e.Profile()
	if (gp == nil) != (ep == nil) {
		t.Fatalf("%s: one engine produced a profile, the other did not", label)
	}
	if gp != nil {
		if gp.BlameTable() != ep.BlameTable() {
			t.Errorf("%s: blame tables diverged:\n--- goroutine\n%s--- event\n%s", label, gp.BlameTable(), ep.BlameTable())
		}
		if gp.PathTable() != ep.PathTable() {
			t.Errorf("%s: critical paths diverged:\n--- goroutine\n%s--- event\n%s", label, gp.PathTable(), ep.PathTable())
		}
		var gj, ej bytes.Buffer
		if err := gp.WriteJSON(&gj); err != nil {
			t.Fatalf("%s: goroutine profile JSON: %v", label, err)
		}
		if err := ep.WriteJSON(&ej); err != nil {
			t.Fatalf("%s: event profile JSON: %v", label, err)
		}
		if !bytes.Equal(gj.Bytes(), ej.Bytes()) {
			t.Errorf("%s: profile JSON is not byte-identical", label)
		}
	}
	if g.EngineUsed != "goroutine" || e.EngineUsed != "event" {
		t.Errorf("%s: EngineUsed = %q / %q", label, g.EngineUsed, e.EngineUsed)
	}
	if g.MaxRunnablePEs != 0 {
		t.Errorf("%s: goroutine engine reported MaxRunnablePEs %d, want 0", label, g.MaxRunnablePEs)
	}
	if e.MaxRunnablePEs != 1 {
		t.Errorf("%s: event engine let %d PEs run at once, want exactly 1", label, e.MaxRunnablePEs)
	}
}

// TestEngineEquivalenceMatrix is the tentpole's hard bar: byte-identical
// reports, traces, diagnostics, and profiles between engines over the
// chip models x every barrier algorithm (plus the legacy default) x every
// lock algorithm, with observation, tracing, sanitizing, and profiling
// all on. Epiphany-III exercises the scratchpad + emulated-RMW paths and
// synthetic-8x3 a non-square grid whose XY routes bend at asymmetric
// coordinates.
func TestEngineEquivalenceMatrix(t *testing.T) {
	chips := []*arch.Chip{arch.Gx8036(), arch.Pro64(), arch.EpiphanyIII(), arch.Synthetic(8, 3)}
	algos := append([]BarrierAlgo{BarrierAlgoDefault}, BarrierAlgos()...)
	for _, chip := range chips {
		for _, ba := range algos {
			cfg := Config{
				Chip: chip, NPEs: 8, HeapPerPE: 1 << 20,
				BarrierAlgo: ba,
				Observe:     true, Trace: true, Sanitize: true, Profile: true,
			}
			label := chip.Name + "/" + ba.String()
			g, e := runBothEngines(t, label, cfg, engineEquivBody)
			compareEngineRuns(t, label, g, e)
			if len(g.Diagnostics) != 0 {
				t.Errorf("%s: sanitizer flagged the equivalence body: %v", label, g.Diagnostics)
			}
		}
		for _, la := range LockAlgos() {
			cfg := Config{
				Chip: chip, NPEs: 8, HeapPerPE: 1 << 20,
				LockAlgo: la,
				Observe:  true, Trace: true, Sanitize: true, Profile: true,
			}
			label := chip.Name + "/lock-" + la.String()
			g, e := runBothEngines(t, label, cfg, engineEquivBody)
			compareEngineRuns(t, label, g, e)
		}
	}
}

// TestEngineEquivalenceMultichip routes the ring across a chip boundary
// so the mPIPE fabric's event hooks carry real traffic. Cross-engine
// comparison is limited to the virtual-time outcomes: the goroutine
// engine delivers same-inbox fabric messages in host arrival order, so
// its per-op latency histograms (and hence trace rows) are not
// self-deterministic under load — a pre-existing property of the
// multichip path, invisible to clocks because merges take the max. The
// event engine has no such race; two event runs must be byte-identical
// in full.
func TestEngineEquivalenceMultichip(t *testing.T) {
	body := func(pe *PE) error {
		const n = 64
		x, err := Malloc[int64](pe, n)
		if err != nil {
			return err
		}
		y, err := Malloc[int64](pe, n)
		if err != nil {
			return err
		}
		if err := pe.AlignClocks(); err != nil {
			return err
		}
		np := pe.NumPEs()
		for iter := 0; iter < 3; iter++ {
			if err := Put(pe, y, x, n, (pe.MyPE()+1)%np); err != nil {
				return err
			}
			if err := pe.BarrierAll(); err != nil {
				return err
			}
			if err := Get(pe, x, y, n, (pe.MyPE()+np-1)%np); err != nil {
				return err
			}
			if err := pe.BarrierAll(); err != nil {
				return err
			}
		}
		return pe.BarrierAll()
	}
	cfg := Config{NPEs: 8, NChips: 2, HeapPerPE: 1 << 20, Observe: true, Trace: true}
	g, e := runBothEngines(t, "multichip", cfg, body)
	if !reflect.DeepEqual(g.PETimes, e.PETimes) {
		t.Errorf("multichip: PETimes diverged:\n  goroutine: %v\n  event:     %v", g.PETimes, e.PETimes)
	}
	if g.MaxTime != e.MaxTime || g.MinTime != e.MinTime {
		t.Errorf("multichip: makespan diverged: [%v,%v] vs [%v,%v]", g.MinTime, g.MaxTime, e.MinTime, e.MaxTime)
	}
	if g.PutBytes != e.PutBytes || g.GetBytes != e.GetBytes || g.Barriers != e.Barriers {
		t.Errorf("multichip: aggregate traffic diverged: put %d/%d get %d/%d barriers %d/%d",
			g.PutBytes, e.PutBytes, g.GetBytes, e.GetBytes, g.Barriers, e.Barriers)
	}
	if e.MaxRunnablePEs != 1 {
		t.Errorf("multichip: event engine let %d PEs run at once, want exactly 1", e.MaxRunnablePEs)
	}
	ec := cfg
	ec.Engine = EngineEvent
	e2, err := Run(ec, body)
	if err != nil {
		t.Fatal(err)
	}
	compareReports(t, "multichip/event-self", e, e2)
	if !reflect.DeepEqual(e.Trace(), e2.Trace()) {
		t.Errorf("multichip: event engine traces diverged between identical runs")
	}
}

// TestEngineEquivalenceFaulted replays the stall-plan demo under both
// engines: same ErrTimeout, byte-identical timeout diagnostics, fault
// counts, virtual times, and traces. The event engine reaches the same
// result through quiescence mass-expiry instead of per-wait grace timers.
func TestEngineEquivalenceFaulted(t *testing.T) {
	plan, err := fault.Parse("stall:pe=2,q=0")
	if err != nil {
		t.Fatal(err)
	}
	run := func(eng Engine) *Report {
		t.Helper()
		rep, rerr := Run(Config{
			NPEs: 4, HeapPerPE: 1 << 16, Observe: true, Trace: true, Engine: eng,
			Faults: plan, WaitGrace: testGrace,
		}, func(pe *PE) error {
			return pe.BarrierAll()
		})
		if !errors.Is(rerr, ErrTimeout) {
			t.Fatalf("engine %s: Run error = %v, want ErrTimeout", eng, rerr)
		}
		return rep
	}
	g, e := run(EngineGoroutine), run(EngineEvent)
	compareEngineRuns(t, "faulted", g, e)
	if len(timeoutDiags(e)) == 0 {
		t.Error("faulted event run produced no timeout diagnostics")
	}
}

// TestEngineEquivalenceSeededFaults runs a seeded (transient) fault plan
// to completion under both engines: perturbed but successful runs must
// still be byte-identical.
func TestEngineEquivalenceSeededFaults(t *testing.T) {
	cfg := Config{
		NPEs: 8, HeapPerPE: 1 << 18, Observe: true,
		Faults: &fault.Plan{Seed: 42},
	}
	g, e := runBothEngines(t, "seeded", cfg, determinismBody)
	compareEngineRuns(t, "seeded", g, e)
	if g.MaxTime == 0 {
		t.Error("seeded run did no modeled work")
	}
}

// TestEngineEventLockContention exercises the event engine's parked lock
// waits (CAS spin, ticket hub wait, MCS queue handoff) under genuine
// contention — correctness, not byte-comparison, since contended retry
// counts are engine-specific.
func TestEngineEventLockContention(t *testing.T) {
	const n, iters = 6, 5
	for _, algo := range LockAlgos() {
		var inside, count int64
		rep, err := Run(Config{NPEs: n, HeapPerPE: 1 << 16, LockAlgo: algo, Engine: EngineEvent},
			func(pe *PE) error {
				lk, err := Malloc[int64](pe, 1)
				if err != nil {
					return err
				}
				for i := 0; i < iters; i++ {
					if err := pe.SetLock(lk); err != nil {
						return err
					}
					if !atomic.CompareAndSwapInt64(&inside, 0, 1) {
						t.Errorf("%s: PE %d entered an occupied critical section", algo, pe.MyPE())
					}
					count++
					if !atomic.CompareAndSwapInt64(&inside, 1, 0) {
						t.Errorf("%s: critical section emptied twice", algo)
					}
					if err := pe.ClearLock(lk); err != nil {
						return err
					}
				}
				return pe.BarrierAll()
			})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if count != n*iters {
			t.Errorf("%s: %d increments survived, want %d", algo, count, n*iters)
		}
		if rep.MaxRunnablePEs != 1 {
			t.Errorf("%s: MaxRunnablePEs = %d, want 1", algo, rep.MaxRunnablePEs)
		}
	}
}

// TestEngineEventDeadlockAborts documents the one intended behavioral
// divergence: a program that deadlocks without fault injection hangs
// forever under the goroutine engine, but the calendar sees global
// quiescence and aborts the run with a diagnosis instead.
func TestEngineEventDeadlockAborts(t *testing.T) {
	_, err := Run(Config{NPEs: 2, HeapPerPE: 1 << 16, Engine: EngineEvent}, func(pe *PE) error {
		flag, ferr := Malloc[int64](pe, 1)
		if ferr != nil {
			return ferr
		}
		// Both PEs wait on flags nobody ever writes: global quiescence.
		return WaitUntil(pe, flag, CmpNE, 0)
	})
	if err == nil {
		t.Fatal("deadlocked event run returned nil error")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("deadlock abort error %q does not name the deadlock", err)
	}
}

// TestEngineEventDeterminism replays the standard determinism workload
// under the event engine, repeated and serialized onto one OS thread.
func TestEngineEventDeterminism(t *testing.T) {
	run := func() *Report {
		rep, err := Run(Config{NPEs: 8, HeapPerPE: 1 << 20, Observe: true, Engine: EngineEvent},
			determinismBody)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	compareReports(t, "event/repeat", a, b)
}
