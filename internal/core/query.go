package core

// PEAccessible reports whether PE target is reachable from the calling PE
// (shmem_pe_accessible). Within one launch every PE is reachable.
func (pe *PE) PEAccessible(target int) bool {
	return target >= 0 && target < pe.n
}

// AddrAccessible reports whether the symmetric object can be accessed on PE
// target with ordinary load/store through shared memory
// (shmem_addr_accessible). Dynamic objects live in common memory, mapped at
// the same address everywhere, so they are accessible; static objects live
// in private memory and are not.
func AddrAccessible[T Elem](pe *PE, r Ref[T], target int) bool {
	if err := pe.checkPE(target); err != nil {
		return false
	}
	return r.valid() && r.kind == dynamicRef
}

// Ptr returns a direct typed view of the symmetric object's instance on PE
// target, or nil when direct access is impossible (shmem_ptr). On Tilera,
// common memory is mapped at the same virtual address by all processes, so
// shmem_ptr works for all dynamic symmetric objects — one of the perks the
// paper gets from TMC common memory.
func Ptr[T Elem](pe *PE, r Ref[T], target int) []T {
	if err := pe.check(); err != nil {
		return nil
	}
	if !AddrAccessible(pe, r, target) {
		return nil
	}
	op, err := resolve(pe, r, target, r.n)
	if err != nil {
		return nil
	}
	return sliceAt[T](op.bytes, 0, r.n)
}
