package core

import (
	"errors"
	"testing"

	"tshmem/internal/arch"
	"tshmem/internal/vtime"
)

// mcCfg spreads npes PEs over nchips TILE-Gx chips.
func mcCfg(npes, nchips int) Config {
	return Config{Chip: arch.Gx8036(), NPEs: npes, HeapPerPE: 1 << 20, NChips: nchips}
}

func TestMultiChipValidation(t *testing.T) {
	if _, err := Run(Config{Chip: arch.Pro64(), NPEs: 4, NChips: 2, HeapPerPE: 1 << 20},
		func(*PE) error { return nil }); err == nil {
		t.Error("multi-chip on TILEPro (no mPIPE) accepted")
	}
	if _, err := Run(Config{Chip: arch.Gx8036(), NPEs: 2, NChips: 4, HeapPerPE: 1 << 20},
		func(*PE) error { return nil }); err == nil {
		t.Error("more chips than PEs accepted")
	}
	if _, err := Run(Config{Chip: arch.Gx8036(), NPEs: 2, NChips: -1, HeapPerPE: 1 << 20},
		func(*PE) error { return nil }); err == nil {
		t.Error("negative NChips accepted")
	}
	// 40 PEs fit 2x36-tile chips but not one.
	runT(t, mcCfg(40, 2), func(pe *PE) error { return nil })
}

func TestMultiChipLayout(t *testing.T) {
	runT(t, mcCfg(8, 2), func(pe *PE) error {
		wantChip := pe.MyPE() / 4
		if pe.ChipIndex() != wantChip {
			t.Errorf("PE %d on chip %d, want %d", pe.MyPE(), pe.ChipIndex(), wantChip)
		}
		if tile := pe.Tile(); tile < 0 || tile >= 36 {
			t.Errorf("PE %d tile %d out of range", pe.MyPE(), tile)
		}
		return nil
	})
}

func TestMultiChipPutGet(t *testing.T) {
	const n = 8
	runT(t, mcCfg(n, 2), func(pe *PE) error {
		x, err := Malloc[int64](pe, 64)
		if err != nil {
			return err
		}
		v := MustLocal(pe, x)
		for i := range v {
			v[i] = int64(pe.MyPE()*100 + i)
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		// Everyone gets from the cross-chip partner (PE+4 mod 8).
		partner := (pe.MyPE() + 4) % n
		buf := make([]int64, 64)
		if err := GetSlice(pe, buf, x, partner); err != nil {
			return err
		}
		for i := range buf {
			if buf[i] != int64(partner*100+i) {
				t.Fatalf("PE %d: cross-chip get[%d] = %d", pe.MyPE(), i, buf[i])
			}
		}
		return pe.BarrierAll()
	})
}

// TestMultiChipTransferCost: a cross-chip put costs far more than an
// on-chip put of the same size (mPIPE wire vs iMesh).
func TestMultiChipTransferCost(t *testing.T) {
	const nelems = 8 << 10 // 64 kB
	var onChip, offChip vtime.Duration
	runT(t, mcCfg(8, 2), func(pe *PE) error {
		x, err := Malloc[int64](pe, nelems)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			t0 := pe.Now()
			if err := Put(pe, x, x, nelems, 1); err != nil { // same chip
				return err
			}
			onChip = pe.Now().Sub(t0)
			t0 = pe.Now()
			if err := Put(pe, x, x, nelems, 4); err != nil { // other chip
				return err
			}
			offChip = pe.Now().Sub(t0)
		}
		return pe.BarrierAll()
	})
	if offChip <= onChip {
		t.Errorf("cross-chip put (%v) should cost more than on-chip (%v)", offChip, onChip)
	}
	// 64 kB at 5 GB/s + 1.8 us latency ~ 15 us, vs ~21 us on-chip at 3.1
	// GB/s? On-chip 64 kB: ~24 us at 2.7 GB/s. Wire: ~14.9 us. The real
	// check: cross-chip pays at least the mPIPE latency on top.
	if offChip.Us() < 10 {
		t.Errorf("cross-chip put = %v, implausibly fast", offChip)
	}
}

func TestMultiChipBarrier(t *testing.T) {
	const n = 10
	lefts := make([]vtime.Duration, n)
	runT(t, mcCfg(n, 2), func(pe *PE) error {
		if err := pe.AlignClocks(); err != nil {
			return err
		}
		start := pe.Now()
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		lefts[pe.MyPE()] = pe.Now().Sub(start)
		return nil
	})
	// The hierarchical barrier pays at least one mPIPE round trip (~3.6 us)
	// on top of the chip-local chains.
	var worst vtime.Duration
	for _, d := range lefts {
		if d > worst {
			worst = d
		}
	}
	if worst.Us() < 3 {
		t.Errorf("multi-chip barrier = %v, should include mPIPE round trip", worst)
	}
	if worst.Us() > 30 {
		t.Errorf("multi-chip barrier = %v, implausibly slow", worst)
	}
	// Compare: same PEs on one chip barrier much faster.
	single := make([]vtime.Duration, n)
	runT(t, mcCfg(n, 1), func(pe *PE) error {
		if err := pe.AlignClocks(); err != nil {
			return err
		}
		start := pe.Now()
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		single[pe.MyPE()] = pe.Now().Sub(start)
		return nil
	})
	var worstSingle vtime.Duration
	for _, d := range single {
		if d > worstSingle {
			worstSingle = d
		}
	}
	if worstSingle >= worst {
		t.Errorf("single-chip barrier (%v) should beat multi-chip (%v)", worstSingle, worst)
	}
}

func TestMultiChipSubsetBarrierStaysLocal(t *testing.T) {
	// A barrier over PEs 0..3 (all on chip 0 of 2) must not involve chip 1.
	runT(t, mcCfg(8, 2), func(pe *PE) error {
		sub := ActiveSet{Start: 0, Size: 4}
		if sub.Contains(pe.MyPE()) {
			start := pe.Now()
			if err := pe.Barrier(sub); err != nil {
				return err
			}
			// Chip-local chain: no mPIPE latency.
			if d := pe.Now().Sub(start); d.Us() > 2 {
				t.Errorf("PE %d: local subset barrier took %v", pe.MyPE(), d)
			}
		}
		return pe.BarrierAll()
	})
}

func TestMultiChipCollectives(t *testing.T) {
	const n, nelems = 8, 32
	runT(t, mcCfg(n, 2), func(pe *PE) error {
		as := AllPEs(n)
		target, source, ps := collEnv(t, pe, nelems, n*nelems)
		src := MustLocal(pe, source)
		for i := range src {
			src[i] = int32(pe.MyPE()*1000 + i)
		}

		// Pull broadcast across chips.
		if err := BroadcastPull(pe, target, source, nelems, 3, as, ps); err != nil {
			return err
		}
		if pe.MyPE() != 3 {
			got := MustLocal(pe, target)
			for i := 0; i < nelems; i++ {
				if got[i] != int32(3000+i) {
					t.Fatalf("PE %d bcast[%d] = %d", pe.MyPE(), i, got[i])
				}
			}
		}

		// Binomial broadcast across chips (fabric-routed signals).
		if err := BroadcastBinomial(pe, target, source, nelems, 0, as, ps); err != nil {
			return err
		}
		if pe.MyPE() != 0 {
			got := MustLocal(pe, target)
			for i := 0; i < nelems; i++ {
				if got[i] != int32(i) {
					t.Fatalf("PE %d binomial[%d] = %d", pe.MyPE(), i, got[i])
				}
			}
		}

		// FCollect across chips.
		if err := FCollect(pe, target, source, nelems, as, ps); err != nil {
			return err
		}
		got := MustLocal(pe, target)
		for k := 0; k < n; k++ {
			if got[k*nelems] != int32(k*1000) {
				t.Fatalf("PE %d fcollect block %d = %d", pe.MyPE(), k, got[k*nelems])
			}
		}

		// Collect with per-PE sizes (fabric size reports).
		if err := Collect(pe, target, source, pe.MyPE()%3, as, ps); err != nil {
			return err
		}

		// Reductions: naive and recursive doubling.
		rt, rs, pwrk, rps := reduceEnv(t, pe, 8)
		v := MustLocal(pe, rs)
		for i := range v {
			v[i] = int64(pe.MyPE())
		}
		if err := SumToAllNaive(pe, rt, rs, 8, as, pwrk, rps); err != nil {
			return err
		}
		if got := MustLocal(pe, rt)[0]; got != 28 {
			t.Fatalf("naive sum = %d", got)
		}
		if err := SumToAllRD(pe, rt, rs, 8, as, pwrk, rps); err != nil {
			return err
		}
		if got := MustLocal(pe, rt)[0]; got != 28 {
			t.Fatalf("rd sum = %d", got)
		}
		return pe.BarrierAll()
	})
}

func TestMultiChipAtomicsAndWait(t *testing.T) {
	const n = 6
	runT(t, mcCfg(n, 3), func(pe *PE) error {
		c, err := Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		flag, err := Malloc[int32](pe, 1)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		// All PEs (on three chips) increment PE 0's counter.
		if _, err := FAdd(pe, c, int64(1), 0); err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 && MustLocal(pe, c)[0] != n {
			t.Errorf("counter = %d", MustLocal(pe, c)[0])
		}
		// Cross-chip flag + wait.
		if pe.MyPE() == n-1 {
			if err := P(pe, flag, int32(9), 0); err != nil {
				return err
			}
		}
		if pe.MyPE() == 0 {
			if err := WaitUntil(pe, flag, CmpEQ, int32(9)); err != nil {
				return err
			}
		}
		return pe.BarrierAll()
	})
}

func TestMultiChipStaticRedirectionGuards(t *testing.T) {
	runT(t, mcCfg(8, 2), func(pe *PE) error {
		dyn, err := Malloc[int64](pe, 8)
		if err != nil {
			return err
		}
		st, err := DeclareStatic[int64](pe, "mc", 8)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			// Same-chip static redirection still works.
			if err := Put(pe, st, dyn, 8, 1); err != nil {
				t.Errorf("same-chip static put: %v", err)
			}
			// Cross-chip static redirection is refused.
			if err := Put(pe, st, dyn, 8, 4); !errors.Is(err, ErrNotSupported) {
				t.Errorf("cross-chip static put: %v", err)
			}
			if err := Get(pe, dyn, st, 8, 4); !errors.Is(err, ErrNotSupported) {
				t.Errorf("cross-chip static get: %v", err)
			}
		}
		return pe.BarrierAll()
	})
}

func TestMultiChipFinalize(t *testing.T) {
	runT(t, mcCfg(6, 2), func(pe *PE) error {
		return pe.Finalize()
	})
}
