package core

import (
	"os"
	"runtime"
	"testing"
	"time"

	"tshmem/internal/arch"
	"tshmem/internal/vtime"
)

// TestBigMeshBarrierProbe runs the full 4096-PE (64x64 synthetic)
// barrier probe — the scale the sparse mesh layer exists for. It is
// opt-in via TSHMEM_BIGMESH because start_pes performs an all-to-all
// partition-address exchange (n-1 send/recv rounds per PE, ~16.7M
// messages at 4096), which is minutes of host time and drowns the
// regular -race test pass:
//
//	TSHMEM_BIGMESH=1     goroutine engine at 4096 PEs, event at 1024
//	TSHMEM_BIGMESH=full  both engines at 4096 PEs (the event engine
//	                     serializes the exchange: ~7-8 min host time)
//
// Measured on the reference host: goroutine 4096 PEs ~26s, event 1024
// PEs ~8s, event 4096 PEs ~7.5min; both engines agree on a 732.78us
// makespan at 4096. Host memory is the gate's point: ~115 KiB per PE
// (dominated by UDN channel buffers), i.e. O(n), where the pre-sparse
// mesh layer alone would have needed ~400 MB of n^2 path table.
func TestBigMeshBarrierProbe(t *testing.T) {
	mode := os.Getenv("TSHMEM_BIGMESH")
	if mode == "" {
		t.Skip("set TSHMEM_BIGMESH=1 (or =full) to run the 4096-PE big-mesh probe")
	}
	runs := []struct {
		eng Engine
		n   int
	}{
		{EngineGoroutine, 4096},
		{EngineEvent, 1024},
	}
	if mode == "full" {
		runs[1].n = 4096
	}
	const perPE = 256 << 10 // measured ~115 KiB/PE; 2x headroom
	makespans := make(map[int][]vtime.Duration)
	for _, r := range runs {
		chip := arch.Synthetic(64, 64)
		cfg := Config{
			Chip: chip, NPEs: r.n, Engine: r.eng,
			HeapPerPE: 4096, ScratchBytes: 1 << 16,
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		rep, err := Run(cfg, func(pe *PE) error { return pe.BarrierAll() })
		if err != nil {
			t.Fatalf("%s engine, %d PEs: %v", r.eng, r.n, err)
		}
		runtime.ReadMemStats(&after)
		delta := after.TotalAlloc - before.TotalAlloc
		t.Logf("%s %d PEs: makespan %v, host %v, %.1f MiB allocated (%.0f KiB/PE)",
			r.eng, r.n, rep.MaxTime, time.Since(t0).Round(time.Millisecond),
			float64(delta)/(1<<20), float64(delta)/float64(r.n)/(1<<10))
		if rep.MaxTime <= 0 {
			t.Errorf("%s engine, %d PEs: nonpositive makespan %v", r.eng, r.n, rep.MaxTime)
		}
		// The O(n) memory bar: per-PE host cost must stay bounded as n
		// grows, so a 64x64 run costs hundreds of MB, not the old n^2 GBs.
		if delta > uint64(r.n)*perPE {
			t.Errorf("%s engine, %d PEs: %d bytes allocated, O(n) gate is %d",
				r.eng, r.n, delta, uint64(r.n)*perPE)
		}
		makespans[r.n] = append(makespans[r.n], rep.MaxTime)
	}
	// Engines that ran the same communicator size must agree exactly.
	for n, ms := range makespans {
		for _, m := range ms[1:] {
			if m != ms[0] {
				t.Errorf("%d PEs: engines disagree on makespan: %v vs %v", n, ms[0], m)
			}
		}
	}
}
