package core

import (
	"fmt"
	"unsafe"
)

// Elem constrains the element types TSHMEM transfers, covering the
// OpenSHMEM elemental types (short, int, long, long long, float, double,
// and the complex variants) plus their unsigned counterparts and bytes.
type Elem interface {
	~int8 | ~int16 | ~int32 | ~int64 | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64 | ~complex64 | ~complex128
}

// Integer constrains the types valid for bitwise reductions, conditional
// atomics, and point-to-point synchronization.
type Integer interface {
	~int16 | ~int32 | ~int64 | ~uint16 | ~uint32 | ~uint64
}

// Numeric constrains the types valid for arithmetic reductions.
type Numeric interface {
	~int16 | ~int32 | ~int64 | ~uint16 | ~uint32 | ~uint64 | ~float32 | ~float64
}

// refKind distinguishes the two classes of symmetric objects (S II.A).
type refKind uint8

const (
	dynamicRef refKind = iota // allocated from the symmetric heap (shmalloc)
	staticRef                 // per-PE private memory, link-time symmetric
)

// Ref is a handle to a symmetric object of n elements of type T: either a
// dynamic object in the symmetric heap (from Malloc) or a static object in
// per-PE private memory (from DeclareStatic). Because the object is
// symmetric, the same Ref is valid on every PE and names that PE's
// instance.
//
// The zero Ref is invalid.
type Ref[T Elem] struct {
	kind refKind
	off  int64 // dynamic: byte offset in the partition; static: byte offset in the object
	sid  int32 // static object id
	n    int   // elements
	ok   bool
}

// Len reports the number of elements the Ref spans.
func (r Ref[T]) Len() int { return r.n }

// IsStatic reports whether the Ref names a static symmetric object.
func (r Ref[T]) IsStatic() bool { return r.kind == staticRef }

// valid reports whether the Ref came from Malloc/DeclareStatic.
func (r Ref[T]) valid() bool { return r.ok }

// At returns a sub-reference to element i (a one-element Ref), for the
// elemental and atomic operations.
func (r Ref[T]) At(i int) Ref[T] {
	s, err := r.SliceChecked(i, i+1)
	if err != nil {
		panic(err)
	}
	return s
}

// Slice returns the sub-reference covering elements [i, j). It panics on
// bounds errors, mirroring Go slicing.
func (r Ref[T]) Slice(i, j int) Ref[T] {
	s, err := r.SliceChecked(i, j)
	if err != nil {
		panic(err)
	}
	return s
}

// SliceChecked is Slice returning an error instead of panicking.
func (r Ref[T]) SliceChecked(i, j int) (Ref[T], error) {
	if !r.ok {
		return Ref[T]{}, fmt.Errorf("%w: zero Ref", ErrBounds)
	}
	if i < 0 || j < i || j > r.n {
		return Ref[T]{}, fmt.Errorf("%w: [%d:%d) of %d elements", ErrBounds, i, j, r.n)
	}
	sub := r
	sub.off += int64(i) * sizeOf[T]()
	sub.n = j - i
	return sub, nil
}

// sizeOf reports the in-memory size of T.
func sizeOf[T Elem]() int64 {
	var z T
	return int64(unsafe.Sizeof(z))
}

// sliceAt reinterprets buf[off:] as n elements of T. The caller guarantees
// alignment (the allocator aligns to 8, sufficient for every Elem type).
func sliceAt[T Elem](buf []byte, off int64, n int) []T {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&buf[off])), n)
}

// bytesOf reinterprets a []T as raw bytes.
func bytesOf[T Elem](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), int64(len(s))*sizeOf[T]())
}

// partBytes returns the common-memory window of PE target's partition.
func (pe *PE) partBytes(target int) []byte {
	base := pe.prog.partBase[target]
	b, err := pe.prog.cm.Slice(base, pe.prog.partSize)
	if err != nil {
		panic(err) // launcher-created mappings cannot be out of bounds
	}
	return b
}

// globalOff translates a dynamic Ref to its absolute common-memory offset
// on PE target.
func globalOff[T Elem](pe *PE, r Ref[T], target int) int64 {
	return pe.prog.partBase[target] + r.off
}

// Local returns the calling PE's own instance of the symmetric object as a
// typed slice. For dynamic objects this is a window into common memory; for
// static objects it is the PE's private backing.
func Local[T Elem](pe *PE, r Ref[T]) ([]T, error) {
	if err := pe.check(); err != nil {
		return nil, err
	}
	if !r.ok {
		return nil, fmt.Errorf("%w: zero Ref", ErrBounds)
	}
	switch r.kind {
	case dynamicRef:
		if r.off+int64(r.n)*sizeOf[T]() > pe.prog.partSize {
			return nil, fmt.Errorf("%w: dynamic ref beyond partition", ErrBounds)
		}
		return sliceAt[T](pe.partBytes(pe.id), r.off, r.n), nil
	default:
		b, err := pe.prog.statics.backing(r.sid, pe.id)
		if err != nil {
			return nil, err
		}
		return sliceAt[T](b, r.off, r.n), nil
	}
}

// MustLocal is Local for initialization paths where the Ref is known good.
func MustLocal[T Elem](pe *PE, r Ref[T]) []T {
	s, err := Local(pe, r)
	if err != nil {
		panic(err)
	}
	return s
}

// Malloc allocates a dynamic symmetric object of n elements of T from the
// symmetric heap (shmalloc). It is a collective call: every PE must invoke
// it with the same n at the same point in its execution path, which is what
// keeps the heap implicitly symmetric (Section IV.A). Like shmalloc, it
// barriers; it additionally verifies that all PEs obtained the same offset
// and reports ErrAsymmetric otherwise.
func Malloc[T Elem](pe *PE, n int) (Ref[T], error) {
	return mallocAligned[T](pe, n, 0)
}

// MallocAlign is shmemalign: Malloc with a caller-chosen power-of-two
// byte alignment.
func MallocAlign[T Elem](pe *PE, n int, align int64) (Ref[T], error) {
	return mallocAligned[T](pe, n, align)
}

func mallocAligned[T Elem](pe *PE, n int, align int64) (Ref[T], error) {
	if err := pe.check(); err != nil {
		return Ref[T]{}, err
	}
	if n <= 0 {
		return Ref[T]{}, fmt.Errorf("tshmem: Malloc of %d elements", n)
	}
	var off int64
	var err error
	if align == 0 {
		off, err = pe.heap.Alloc(int64(n) * sizeOf[T]())
	} else {
		off, err = pe.heap.AllocAlign(int64(n)*sizeOf[T](), align)
	}
	if err != nil {
		return Ref[T]{}, err
	}
	// Allocator bookkeeping costs a few hundred cycles.
	pe.clock.Advance(pe.prog.chip.Cycles(200))
	if err := pe.verifySymmetric(off); err != nil {
		return Ref[T]{}, err
	}
	return Ref[T]{kind: dynamicRef, off: off, n: n, ok: true}, nil
}

// verifySymmetric barriers and checks that every PE produced the same
// value, the runtime enforcement of the "same size, same program point"
// shmalloc contract.
func (pe *PE) verifySymmetric(v int64) error {
	pe.prog.symCheck[pe.id] = v
	if err := pe.BarrierAll(); err != nil {
		return err
	}
	for i, o := range pe.prog.symCheck {
		if o != v {
			// Leave state consistent before reporting.
			_ = pe.BarrierAll()
			return fmt.Errorf("%w: PE %d got offset %d, PE %d got %d", ErrAsymmetric, pe.id, v, i, o)
		}
	}
	return pe.BarrierAll() // no PE reuses symCheck until all have read it
}

// Free releases a dynamic symmetric object (shfree). Collective, like
// Malloc.
func Free[T Elem](pe *PE, r Ref[T]) error {
	if err := pe.check(); err != nil {
		return err
	}
	if !r.ok || r.kind != dynamicRef {
		return fmt.Errorf("%w: Free of non-dynamic ref", ErrStatic)
	}
	if err := pe.heap.Free(r.off); err != nil {
		return err
	}
	pe.clock.Advance(pe.prog.chip.Cycles(120))
	return pe.verifySymmetric(r.off)
}

// Realloc resizes a dynamic symmetric object (shrealloc), preserving the
// leading min(old, new) elements. Collective, like Malloc.
func Realloc[T Elem](pe *PE, r Ref[T], n int) (Ref[T], error) {
	if err := pe.check(); err != nil {
		return Ref[T]{}, err
	}
	if !r.ok || r.kind != dynamicRef {
		return Ref[T]{}, fmt.Errorf("%w: Realloc of non-dynamic ref", ErrStatic)
	}
	if n <= 0 {
		return Ref[T]{}, fmt.Errorf("tshmem: Realloc to %d elements", n)
	}
	es := sizeOf[T]()
	newOff, keep, err := pe.heap.Realloc(r.off, int64(n)*es)
	if err != nil {
		return Ref[T]{}, err
	}
	if newOff != r.off && keep > 0 {
		part := pe.partBytes(pe.id)
		copy(part[newOff:newOff+keep], part[r.off:r.off+keep])
		pe.clock.Advance(pe.prog.model.CopyCost(keep, sharedMode, 1))
	}
	pe.clock.Advance(pe.prog.chip.Cycles(200))
	if err := pe.verifySymmetric(newOff); err != nil {
		return Ref[T]{}, err
	}
	return Ref[T]{kind: dynamicRef, off: newOff, n: n, ok: true}, nil
}

// HeapInUse reports the bytes currently allocated in this PE's symmetric
// partition.
func (pe *PE) HeapInUse() int64 { return pe.heap.InUse() }

// HeapFree reports the bytes available in this PE's symmetric partition.
func (pe *PE) HeapFree() int64 { return pe.heap.FreeBytes() }
