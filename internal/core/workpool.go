package core

import (
	"errors"
	"fmt"
	"sync"
)

// peTask is one PE's share of a Run: the body plus the bookkeeping the
// run loop needs back from it.
type peTask struct {
	prog *Program
	pe   *PE
	body func(*PE) error
	errs []error
	wg   *sync.WaitGroup
}

// peWorker is a reusable goroutine that executes peTasks one at a time.
// Run used to launch a fresh closure per PE per run; under RunSuite-style
// parallelism that is thousands of goroutine launches per sweep. Workers
// instead park on a channel between runs and get handed the next task.
type peWorker struct {
	ch chan peTask
}

// The idle-worker free list. This is deliberately NOT a sync.Pool: the
// pool may drop entries on GC, which would leak the dropped worker's
// parked goroutine forever. An explicit capped stack keeps the goroutine
// count bounded and every parked goroutine reachable.
var (
	peWorkerMu   sync.Mutex
	peWorkerIdle []*peWorker
)

const peWorkerMaxIdle = 256

// spawnPE hands t to an idle pooled worker, creating one if none is
// parked.
func spawnPE(t peTask) {
	peWorkerMu.Lock()
	var w *peWorker
	if n := len(peWorkerIdle); n > 0 {
		w = peWorkerIdle[n-1]
		peWorkerIdle[n-1] = nil
		peWorkerIdle = peWorkerIdle[:n-1]
	}
	peWorkerMu.Unlock()
	if w == nil {
		w = &peWorker{ch: make(chan peTask, 1)}
		go w.loop()
	}
	w.ch <- t
}

func (w *peWorker) loop() {
	for t := range w.ch {
		t.run()
		peWorkerMu.Lock()
		if len(peWorkerIdle) < peWorkerMaxIdle {
			peWorkerIdle = append(peWorkerIdle, w)
			peWorkerMu.Unlock()
			continue
		}
		peWorkerMu.Unlock()
		return
	}
}

// run executes one PE body with the same semantics the per-PE closure in
// Run used to have. Defer order matters: the recover/abort handler runs
// first, then the event engine's exit (handing the baton on), then
// wg.Done — so by the time Run's wg.Wait returns, every PE has fully
// left the calendar.
//
// A body that bails out via runtime.Goexit runs these defers and then
// kills the worker's goroutine before loop can re-pool it; that only
// costs the worker, never correctness. A panic is recovered here, so the
// worker survives and is reused.
func (t peTask) run() {
	pe, prog := t.pe, t.prog
	defer t.wg.Done()
	if prog.sched != nil {
		prog.sched.enter(pe.id)
		defer prog.sched.exit(pe.id)
	}
	completed := false
	defer func() {
		if r := recover(); r != nil {
			t.errs[pe.id] = fmt.Errorf("tshmem: PE %d panicked: %v", pe.id, r)
		} else if !completed && t.errs[pe.id] == nil {
			// The body bailed out via runtime.Goexit (e.g. a test
			// Fatalf); treat it as a failure so peers don't hang.
			t.errs[pe.id] = fmt.Errorf("tshmem: PE %d exited without completing", pe.id)
		}
		// Timeouts deliberately do not abort: every blocking path is
		// bounded under fault injection, so the other PEs unblock on
		// their own budgets, keeping their clocks (and the report)
		// deterministic. Tearing the networks down here would race
		// ErrClosed against those still-pending bounded waits.
		if t.errs[pe.id] != nil && !errors.Is(t.errs[pe.id], ErrTimeout) {
			prog.abort(fmt.Errorf("PE %d: %w", pe.id, t.errs[pe.id]))
		}
	}()
	if err := pe.startPEs(); err != nil {
		t.errs[pe.id] = fmt.Errorf("start_pes: %w", err)
		return
	}
	t.errs[pe.id] = t.body(pe)
	completed = true
}
