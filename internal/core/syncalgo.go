package core

import (
	"fmt"
	"sort"
	"time"

	"tshmem/internal/profile"
	"tshmem/internal/stats"
	"tshmem/internal/vtime"
)

// BarrierAlgo selects the algorithm behind Barrier and BarrierAll
// (Config.BarrierAlgo). The zero value, BarrierAlgoDefault, preserves the
// legacy behavior: BarrierAll honors Config.Barrier (the paper's linear
// UDN chain, or the TMC spin barrier with TMCSpinBarrier) and subset
// barriers always use the chain. Every other value overrides both entry
// points. Collective operations keep their internal barriers on the
// linear chain regardless — the paper's collectives are built on it, and
// pinning them keeps collective latencies comparable across sweeps.
//
// The algorithms charge honest modeled costs through the same cost model
// as the rest of the library: standalone UDN sends pay the full software
// send-call cost (arch.Chip.UDNSendCallNs), chain forwards the cheaper
// hot-loop forward cost (UDNSWForwardNs), and shared-counter traffic pays
// mesh transit plus the atomic service time at the counter's home tile.
// The crossovers the sweep tooling reports (tshmem-bench -sweep-algos,
// docs/SYNC.md) fall out of those constants, they are not asserted.
type BarrierAlgo int

const (
	// BarrierAlgoDefault: legacy dispatch (Config.Barrier for BarrierAll,
	// the linear chain for subset barriers).
	BarrierAlgoDefault BarrierAlgo = iota
	// BarrierAlgoLinear is the paper's barrier (S IV.C.1): a linear
	// wait+release signal chain over the UDN. O(n) chained forwards.
	BarrierAlgoLinear
	// BarrierAlgoSpin is the TMC spin barrier (S III.D): a shared-counter
	// rendezvous with the chip's calibrated latency model. Program-wide
	// only; subset active sets return ErrNotSupported.
	BarrierAlgoSpin
	// BarrierAlgoCounter is a sense-reversing central counter barrier:
	// every member atomically increments a counter homed at the set's
	// start tile and spins on a sense word. Increments serialize at the
	// home tile (O(n) atomics), the release invalidation fans out one
	// line copy at a time. Supports subsets and multi-chip sets.
	BarrierAlgoCounter
	// BarrierAlgoDissemination is the dissemination barrier: ceil(log2 n)
	// rounds in which member i signals member (i+2^k) mod n and waits for
	// the symmetric signal. O(log n) rounds of standalone UDN sends; no
	// release phase. Single chip only.
	BarrierAlgoDissemination
	// BarrierAlgoTournament is the tournament barrier: statically paired
	// winners absorb losers' arrival signals over ceil(log2 n) rounds,
	// then the champion's wakeup signals travel back down the bracket.
	// Single chip only.
	BarrierAlgoTournament
	// BarrierAlgoMCSTree is the MCS tree barrier: arrivals climb a 4-ary
	// tree (children signal parents), the wakeup descends a binary tree.
	// Single chip only.
	BarrierAlgoMCSTree

	numBarrierAlgos
)

// barrierAlgoNames are the canonical CLI/stats names, indexed by
// BarrierAlgo-1 (BarrierAlgoDefault has no name of its own).
var barrierAlgoNames = [numBarrierAlgos - 1]string{
	"linear", "tmc-spin", "counter", "dissemination", "tournament", "mcs-tree",
}

func (a BarrierAlgo) String() string {
	if a == BarrierAlgoDefault {
		return "default"
	}
	if int(a-1) < len(barrierAlgoNames) {
		return barrierAlgoNames[a-1]
	}
	return fmt.Sprintf("BarrierAlgo(%d)", int(a))
}

// statsID maps the algorithm to its stats enumeration (the default maps
// to the linear chain it dispatches to). The two enums are kept in
// declaration order; a test asserts the names line up.
func (a BarrierAlgo) statsID() stats.BarrierAlgoID {
	if a == BarrierAlgoDefault {
		return stats.BarrierAlgoLinear
	}
	return stats.BarrierAlgoID(a - 1)
}

// ParseBarrierAlgo resolves a -barrier-algo flag value. Empty and
// "default" select the legacy dispatch.
func ParseBarrierAlgo(s string) (BarrierAlgo, error) {
	switch s {
	case "", "default":
		return BarrierAlgoDefault, nil
	case "spin":
		return BarrierAlgoSpin, nil
	case "mcstree", "mcs":
		return BarrierAlgoMCSTree, nil
	}
	for i, n := range barrierAlgoNames {
		if s == n {
			return BarrierAlgo(i + 1), nil
		}
	}
	return 0, fmt.Errorf("tshmem: unknown barrier algorithm %q (valid: default, %s)",
		s, joinNames(barrierAlgoNames[:]))
}

// BarrierAlgos lists every selectable barrier algorithm (excluding the
// default pseudo-value), in declaration order — the sweep tooling and CI
// iterate this.
func BarrierAlgos() []BarrierAlgo {
	out := make([]BarrierAlgo, 0, numBarrierAlgos-1)
	for a := BarrierAlgoLinear; a < numBarrierAlgos; a++ {
		out = append(out, a)
	}
	return out
}

// LockAlgo selects the implementation behind SetLock/ClearLock/TestLock
// (Config.LockAlgo). The zero value, LockAlgoCAS, is the legacy
// compare-and-swap spin lock with exponential backoff. All algorithms
// arbitrate through the lock variable's instance on PE 0, like the
// original, so they interoperate with the same symmetric lock objects.
type LockAlgo int

const (
	// LockAlgoCAS: compare-and-swap spin loop with exponential backoff on
	// the retry delay. Cheap uncontended; contended acquisition order is
	// unfair and every retry is a full round trip to the lock's home.
	LockAlgoCAS LockAlgo = iota
	// LockAlgoTicket: a ticket lock (fetch-add a ticket, spin until the
	// serving number reaches it). FIFO-fair; one atomic per acquire and
	// release, but every waiter refetches the serving word on handoff.
	LockAlgoTicket
	// LockAlgoMCS: an MCS queue lock (swap into a tail word, spin on a
	// local flag, direct handoff to the successor). FIFO-fair with O(1)
	// handoff traffic — the release signals exactly one waiter.
	LockAlgoMCS

	numLockAlgos
)

var lockAlgoNames = [numLockAlgos]string{"cas", "ticket", "mcs"}

func (a LockAlgo) String() string {
	if int(a) < len(lockAlgoNames) {
		return lockAlgoNames[a]
	}
	return fmt.Sprintf("LockAlgo(%d)", int(a))
}

// statsID maps the algorithm to its stats enumeration (same order).
func (a LockAlgo) statsID() stats.LockAlgoID { return stats.LockAlgoID(a) }

// ParseLockAlgo resolves a -lock-algo flag value.
func ParseLockAlgo(s string) (LockAlgo, error) {
	switch s {
	case "", "default":
		return LockAlgoCAS, nil
	}
	for i, n := range lockAlgoNames {
		if s == n {
			return LockAlgo(i), nil
		}
	}
	return 0, fmt.Errorf("tshmem: unknown lock algorithm %q (valid: %s)",
		s, joinNames(lockAlgoNames[:]))
}

// LockAlgos lists every lock algorithm in declaration order.
func LockAlgos() []LockAlgo {
	out := make([]LockAlgo, 0, numLockAlgos)
	for a := LockAlgoCAS; a < numLockAlgos; a++ {
		out = append(out, a)
	}
	return out
}

func joinNames(names []string) string {
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// Signal words of the message-passing barrier algorithms, disjoint from
// the chain's sigWait/sigRelease and from each other so overlapping
// instances and rounds demultiplex by (tag, word) alone.
const (
	sigDissBase   uint64 = 0x10 // + round: dissemination round-k signal
	sigTourArrive uint64 = 0x40 // + round: tournament loser arrival
	sigTourWake   uint64 = 0x60 // + round: tournament wakeup
	sigMCSArrive  uint64 = 0x80 // + child slot (0..3): MCS-tree arrival
	sigMCSWake    uint64 = 0xa0 // MCS-tree wakeup
)

// barrierAlgo dispatches an explicitly configured barrier algorithm.
// Callers have already validated the active set and counted the entry.
func (pe *PE) barrierAlgo(as ActiveSet) error {
	switch pe.prog.cfg.BarrierAlgo {
	case BarrierAlgoLinear:
		return pe.barrierUDN(as)
	case BarrierAlgoSpin:
		return pe.barrierSpin(as)
	case BarrierAlgoCounter:
		return pe.barrierCounter(as)
	case BarrierAlgoDissemination:
		return pe.barrierDissemination(as)
	case BarrierAlgoTournament:
		return pe.barrierTournament(as)
	case BarrierAlgoMCSTree:
		return pe.barrierMCSTree(as)
	}
	return fmt.Errorf("tshmem: unknown barrier algorithm %d", int(pe.prog.cfg.BarrierAlgo))
}

// runBarrierAlgo is the shared skeleton of the algorithm library's
// barriers: active-set membership, operation accounting, the per-set
// generation counter, the sanitizer rendezvous, and the single-member
// fast path. body runs the algorithm's signal pattern; returning nil
// means the barrier released this PE (every member has entered), which is
// exactly what the sanitizer exit asserts.
func (pe *PE) runBarrierAlgo(as ActiveSet, id stats.BarrierAlgoID,
	body func(idx, n int, gen uint32, tag uint32) error) error {
	idx, ok := as.Index(pe.id)
	if !ok {
		return fmt.Errorf("%w: PE %d vs %v", ErrNotInSet, pe.id, as)
	}
	start := pe.clock.Now()
	defer pe.rec.OpDone(stats.OpBarrier, start, &pe.clock, 0, int(stats.NoPeer))
	defer pe.rec.BarrierAlgoDone(id, start, &pe.clock)
	n := as.Size
	gen := pe.nextBarGen(as)
	tok := pe.san.BarrierEnter(as.Start, as.LogStride, as.Size, gen)
	if n == 1 {
		pe.clock.Advance(vtime.FromNs(pe.prog.chip.BarrierArbiterNs))
		pe.san.BarrierExit(tok)
		return nil
	}
	if err := body(idx, n, gen, asTag(as, gen)); err != nil {
		return err
	}
	pe.san.BarrierExit(tok)
	return nil
}

// barrierSpin backs a barrier with the program-wide TMC spin barrier. The
// TMC primitive rendezvouses every PE of the program, so only the all-PEs
// active set is supported.
func (pe *PE) barrierSpin(as ActiveSet) error {
	if !pe.allPEsSet(as) {
		return fmt.Errorf("%w: the TMC spin barrier is program-wide; subset %v needs a subset-capable algorithm (linear, counter, dissemination, tournament, mcs-tree)",
			ErrNotSupported, as)
	}
	start := pe.clock.Now()
	tok := pe.san.SpinEnter()
	if err := pe.spinWait("spin-barrier"); err != nil {
		return err
	}
	pe.san.BarrierExit(tok)
	pe.rec.BarrierAlgoDone(stats.BarrierAlgoSpin, start, &pe.clock)
	pe.rec.OpDone(stats.OpBarrier, start, &pe.clock, 0, int(stats.NoPeer))
	return nil
}

// barrierDissemination runs the dissemination barrier: in round k, member
// i sends a standalone UDN signal to member (i+2^k) mod n and waits for
// the matching signal from (i-2^k) mod n. After ceil(log2 n) rounds every
// member transitively heard from every other, so there is no release
// phase. Each round pays one full software send call, which is why the
// chain wins at small n and dissemination wins once (2n-1) forwards cost
// more than log2(n) send calls.
func (pe *PE) barrierDissemination(as ActiveSet) error {
	return pe.runBarrierAlgo(as, stats.BarrierAlgoDissemination,
		func(idx, n int, _ uint32, tag uint32) error {
			sendCall := vtime.FromNs(pe.prog.chip.UDNSendCallNs)
			for k, dist := 0, 1; dist < n; k, dist = k+1, dist*2 {
				pe.advanceAs(profile.CatUDNSend, sendCall)
				if err := pe.sendBarrier(as.PE((idx+dist)%n), tag, sigDissBase+uint64(k)); err != nil {
					return err
				}
				if _, err := pe.recvBarrier(tag, sigDissBase+uint64(k)); err != nil {
					return err
				}
			}
			return nil
		})
}

// barrierTournament runs the tournament barrier. In arrival round k the
// member whose set index has bit k set (and all lower bits clear) loses:
// it signals the winner at idx-2^k and waits for a wakeup. Winners absorb
// their partner's arrival and advance. The champion (index 0) sees the
// last arrival, then the wakeup signals retrace the bracket in reverse
// round order, each winner waking the partner it beat.
func (pe *PE) barrierTournament(as ActiveSet) error {
	return pe.runBarrierAlgo(as, stats.BarrierAlgoTournament,
		func(idx, n int, _ uint32, tag uint32) error {
			sendCall := vtime.FromNs(pe.prog.chip.UDNSendCallNs)
			rounds := 0
			for 1<<rounds < n {
				rounds++
			}
			lossRound := rounds // the champion never loses
			for k := 0; k < rounds; k++ {
				bit := 1 << k
				if idx&bit != 0 {
					pe.advanceAs(profile.CatUDNSend, sendCall)
					if err := pe.sendBarrier(as.PE(idx-bit), tag, sigTourArrive+uint64(k)); err != nil {
						return err
					}
					lossRound = k
					break
				}
				if partner := idx + bit; partner < n {
					if _, err := pe.recvBarrier(tag, sigTourArrive+uint64(k)); err != nil {
						return err
					}
				}
				// No partner in range: a bye — advance to the next round.
			}
			if lossRound < rounds {
				if _, err := pe.recvBarrier(tag, sigTourWake+uint64(lossRound)); err != nil {
					return err
				}
			}
			for k := lossRound - 1; k >= 0; k-- {
				if partner := idx + 1<<k; partner < n {
					pe.advanceAs(profile.CatUDNSend, sendCall)
					if err := pe.sendBarrier(as.PE(partner), tag, sigTourWake+uint64(k)); err != nil {
						return err
					}
				}
			}
			return nil
		})
}

// barrierMCSTree runs the MCS tree barrier: arrivals climb a 4-ary tree
// (member i waits for children 4i+1..4i+4, then signals parent
// (i-1)/4), and the root's wakeup descends a binary tree (i wakes 2i+1
// and 2i+2). The wide arrival tree amortizes receive costs; the binary
// wakeup halves the release fan-out depth versus the chain.
func (pe *PE) barrierMCSTree(as ActiveSet) error {
	return pe.runBarrierAlgo(as, stats.BarrierAlgoMCSTree,
		func(idx, n int, _ uint32, tag uint32) error {
			sendCall := vtime.FromNs(pe.prog.chip.UDNSendCallNs)
			for c := 1; c <= 4; c++ {
				if 4*idx+c >= n {
					break
				}
				if _, err := pe.recvBarrier(tag, sigMCSArrive+uint64(c-1)); err != nil {
					return err
				}
			}
			if idx != 0 {
				pe.advanceAs(profile.CatUDNSend, sendCall)
				if err := pe.sendBarrier(as.PE((idx-1)/4), tag, sigMCSArrive+uint64((idx-1)%4)); err != nil {
					return err
				}
				if _, err := pe.recvBarrier(tag, sigMCSWake); err != nil {
					return err
				}
			}
			for _, child := range [2]int{2*idx + 1, 2*idx + 2} {
				if child >= n {
					break
				}
				pe.advanceAs(profile.CatUDNSend, sendCall)
				if err := pe.sendBarrier(as.PE(child), tag, sigMCSWake); err != nil {
					return err
				}
			}
			return nil
		})
}

// syncOneway reports the one-way transit cost of a one-word message
// between this PE's tile and PE dst's tile; across chips it is the mPIPE
// fabric's per-transfer data cost.
func (pe *PE) syncOneway(dst int) vtime.Duration {
	if dst == pe.id {
		return 0
	}
	if pe.prog.sameChip(pe.id, dst) {
		lat, err := pe.prog.geos[pe.prog.chipOf(pe.id)].OneWayLatency(
			pe.prog.localIdx(pe.id), pe.prog.localIdx(dst), 1)
		if err != nil {
			// The launcher validated the geometry; this cannot fail.
			panic(err)
		}
		return lat
	}
	return pe.prog.fabric.DataCost(0)
}

// Sense-reversing counter barrier.
//
// The counter and sense word live (conceptually) in the start member's
// partition: each member's fetch-and-increment travels to that home tile,
// the increments serialize at the home's cache controller (one
// AtomicCost each, exactly like the atomics elsewhere in the library),
// and the last increment flips the sense word. The release invalidation
// then fans out: every spinner's next poll misses and refetches the
// sense line, serviced one copy at a time (a quarter of the atomic
// service per copy — the copy-out share without the read-modify-write),
// nearer tiles first. The host-side rendezvous below computes those times
// exactly; the functional rendezvous is real (no PE proceeds before all
// arrived).

// ctrKey identifies one counter-barrier instance.
type ctrKey struct {
	as  ActiveSet
	gen uint32
}

// ctrArrival is one member's registration: when its increment reaches the
// counter's home tile, and the transit cost back to it.
type ctrArrival struct {
	pe     int
	reach  vtime.Time
	oneway vtime.Duration
}

// ctrInst is the shared state of one in-flight counter barrier.
type ctrInst struct {
	need int
	arr  []ctrArrival
	done chan struct{}      // closed when the last member arrived
	exit map[int]vtime.Time // departure time per member, set at completion
	left int                // members yet to read their exit time
}

// ctrArrive registers one member, completing the instance when it is the
// last. The returned instance's done channel gates the caller.
func (p *Program) ctrArrive(k ctrKey, need int, a ctrArrival, atomicCost vtime.Duration) *ctrInst {
	p.ctrMu.Lock()
	defer p.ctrMu.Unlock()
	inst := p.ctrBars[k]
	if inst == nil {
		inst = &ctrInst{need: need, done: make(chan struct{})}
		p.ctrBars[k] = inst
	}
	inst.arr = append(inst.arr, a)
	if len(inst.arr) == inst.need {
		inst.complete(atomicCost)
	}
	return inst
}

// complete (ctrMu held) serializes the increments at the home tile and
// computes every member's departure. Ordering is by (arrival time, PE),
// so the outcome is independent of host scheduling.
func (inst *ctrInst) complete(atomicCost vtime.Duration) {
	sort.Slice(inst.arr, func(i, j int) bool {
		if inst.arr[i].reach != inst.arr[j].reach {
			return inst.arr[i].reach < inst.arr[j].reach
		}
		return inst.arr[i].pe < inst.arr[j].pe
	})
	var svc vtime.Time
	for _, a := range inst.arr {
		if a.reach > svc {
			svc = a.reach
		}
		svc = svc.Add(atomicCost)
	}
	release := svc // the n-th increment observes the full count and flips the sense
	byDist := append([]ctrArrival(nil), inst.arr...)
	sort.Slice(byDist, func(i, j int) bool {
		if byDist[i].oneway != byDist[j].oneway {
			return byDist[i].oneway < byDist[j].oneway
		}
		return byDist[i].pe < byDist[j].pe
	})
	lineSvc := atomicCost / 4
	inst.exit = make(map[int]vtime.Time, len(byDist))
	for i, a := range byDist {
		inst.exit[a.pe] = release.Add(vtime.Duration(i+1)*lineSvc + a.oneway)
	}
	inst.left = inst.need
	close(inst.done)
}

// ctrWithdraw takes a timed-out member's arrival back, mirroring
// tmc.Barrier.WaitTimeout: if the instance completed concurrently it
// reports false and the caller takes the normal exit instead.
func (p *Program) ctrWithdraw(k ctrKey, inst *ctrInst, pe int) bool {
	p.ctrMu.Lock()
	defer p.ctrMu.Unlock()
	select {
	case <-inst.done:
		return false
	default:
	}
	for i, a := range inst.arr {
		if a.pe == pe {
			inst.arr = append(inst.arr[:i], inst.arr[i+1:]...)
			break
		}
	}
	if len(inst.arr) == 0 {
		delete(p.ctrBars, k)
	}
	return true
}

// ctrExit reads a member's departure time, deleting the instance once
// every member has read its own.
func (p *Program) ctrExit(k ctrKey, inst *ctrInst, pe int) vtime.Time {
	p.ctrMu.Lock()
	defer p.ctrMu.Unlock()
	t := inst.exit[pe]
	inst.left--
	if inst.left == 0 {
		delete(p.ctrBars, k)
	}
	return t
}

// instDone is the non-blocking completion probe the event engine's
// counter-barrier wait polls.
func instDone(inst *ctrInst) bool {
	select {
	case <-inst.done:
		return true
	default:
		return false
	}
}

// ctrAwait parks in the calendar until the counter-barrier instance
// completes (the last arriver wakes the set, keyed on the barrier tag).
// A quiescence expiry that successfully withdraws the arrival reports
// completed=false, exactly like the grace-timer path; a withdrawal that
// lost to completion loops and takes the normal exit.
func (pe *PE) ctrAwait(s *evsched, k ctrKey, inst *ctrInst, tag uint32) (completed, aborted bool) {
	for {
		if instDone(inst) {
			return true, false
		}
		switch s.yield(pe.id, wkCtr, int64(tag), 0) {
		case wakeAbort:
			return false, true
		case wakeTimeout:
			if pe.prog.ctrWithdraw(k, inst, pe.id) {
				return false, false
			}
		}
	}
}

// barrierCounter runs the sense-reversing counter barrier. Multi-chip
// active sets are supported: remote-chip increments pay the mPIPE data
// cost instead of the mesh transit.
func (pe *PE) barrierCounter(as ActiveSet) error {
	return pe.runBarrierAlgo(as, stats.BarrierAlgoCounter,
		func(idx, n int, gen uint32, tag uint32) error {
			home := as.PE(0)
			start := pe.clock.Now()
			deadline := pe.waitDeadline()
			oneway := pe.syncOneway(home)
			k := ctrKey{as: as, gen: gen}
			inst := pe.prog.ctrArrive(k, n,
				ctrArrival{pe: pe.id, reach: start.Add(oneway), oneway: oneway},
				// Each arrival is a fetch-and-increment at the home tile,
				// so chips without native RMW pay the emulation premium.
				pe.prog.model.AtomicRMWCost())
			completed := true
			if s := pe.prog.sched; s != nil {
				// The last arriver completed the instance inside ctrArrive;
				// wake the parked members before taking the exit itself.
				if instDone(inst) {
					s.wake(wkCtr, int64(tag), 0)
				}
				var aborted bool
				completed, aborted = pe.ctrAwait(s, k, inst, tag)
				if aborted {
					return fmt.Errorf("tshmem: program aborted while PE %d waited in a counter barrier", pe.id)
				}
			} else {
				var timeoutC <-chan time.Time
				if g := pe.waitGrace(); g > 0 {
					timer := time.NewTimer(g)
					defer timer.Stop()
					timeoutC = timer.C
				}
				select {
				case <-inst.done:
				case <-pe.prog.abortCh:
					return fmt.Errorf("tshmem: program aborted while PE %d waited in a counter barrier", pe.id)
				case <-timeoutC:
					completed = !pe.prog.ctrWithdraw(k, inst, pe.id)
				}
			}
			if !completed {
				return pe.timeoutAt("barrier", -1, start, deadline)
			}
			exit := pe.prog.ctrExit(k, inst, pe.id)
			if deadline > 0 && exit > deadline {
				return pe.timeoutAt("barrier", -1, start, deadline)
			}
			// The counter rendezvous has no single releasing peer (the
			// exit time is derived from the whole arrival set), so the
			// span carries no edge.
			waitStart := pe.clock.Now()
			pe.rec.BarrierWait(pe.clock.AdvanceTo(exit))
			pe.prof.Advance(profile.CatBarrierWait, waitStart, pe.clock.Now())
			return nil
		})
}

// Lock-algorithm shared state.

// mcsWaiter is one PE blocked in an MCS lock queue; the channel carries
// the predecessor's handoff.
type mcsWaiter struct {
	pe int
	ch chan mcsWake
}

// mcsWake is an MCS handoff: the virtual time at which it reaches the
// successor's tile, plus the releaser's identity and clock at release so
// the successor can emit a happens-before edge to its timeline.
type mcsWake struct {
	wake vtime.Time // arrival at the successor
	sent vtime.Time // releaser's clock at the handoff
	from int        // releaser's global rank
}

// lockAcquired records a successful acquisition: holder bookkeeping (the
// error ClearLock returns on misuse), the sanitizer's lock clock, and the
// per-algorithm acquire-latency histogram.
func (pe *PE) lockAcquired(off int64, a stats.LockAlgoID, start vtime.Time) {
	pe.prog.lockMu.Lock()
	pe.prog.lockHolder[off] = pe.id
	pe.prog.lockMu.Unlock()
	pe.san.LockAcquired(off)
	pe.rec.LockDone(a, start, &pe.clock)
}

// lockHolderCheck verifies the caller holds the lock and clears the
// holder record; releasing a lock one does not hold is an error (the
// diagnostic counterpart lives in the sanitizer).
func (pe *PE) lockHolderCheck(off int64) error {
	pe.prog.lockMu.Lock()
	holder, ok := pe.prog.lockHolder[off]
	if ok && holder == pe.id {
		delete(pe.prog.lockHolder, off)
	}
	pe.prog.lockMu.Unlock()
	if !ok {
		return fmt.Errorf("tshmem: PE %d cleared a lock it does not hold", pe.id)
	}
	if holder != pe.id {
		return fmt.Errorf("tshmem: PE %d cleared a lock held by %d", pe.id, holder)
	}
	return nil
}

// clearLockHolder drops the holder record after a CAS-algorithm release
// (which derives its misuse error from the swapped word instead).
func (p *Program) clearLockHolder(off int64, pe int) {
	p.lockMu.Lock()
	if h, ok := p.lockHolder[off]; ok && h == pe {
		delete(p.lockHolder, off)
	}
	p.lockMu.Unlock()
}

// Ticket lock: the lock word packs the next-ticket counter in the high 32
// bits and the now-serving number in the low 32.
const ticketInc int64 = 1 << 32

// setLockTicket acquires the ticket lock: one fetch-add draws a ticket,
// then the caller spins until the serving half reaches it. The handoff
// time is published by the releaser before the serving word is bumped, so
// the waiter's clock merge is deterministic (later ticket draws by other
// arrivals never move it).
func (pe *PE) setLockTicket(lock Ref[int64]) error {
	if err := pe.check(); err != nil {
		return err
	}
	if pe.san.LockSelfAcquire(lock.off, pe.clock.Now()) {
		return fmt.Errorf("tshmem: PE %d SetLock on a lock it already holds (self-deadlock)", pe.id)
	}
	start := pe.clock.Now()
	old, err := FAdd(pe, lock, ticketInc, 0)
	if err != nil {
		return err
	}
	my := uint32(uint64(old) >> 32)
	if serving := uint32(uint64(old)); serving == my {
		pe.lockFreeVisible(lock.off)
		pe.lockAcquired(lock.off, stats.LockAlgoTicket, start)
		return nil
	} else {
		pe.rec.LockRetries(int64(my - serving))
	}
	deadline := pe.waitDeadline()
	part := pe.partBytes(0)
	off := lock.off
	check := func() bool { return uint32(atomicLoad64(part, off)) == my }
	_, st := pe.prog.hubs[0].await(pe, off, check, pe.waitGrace())
	switch st {
	case hubAborted:
		return fmt.Errorf("tshmem: program aborted while PE %d waited for a ticket lock", pe.id)
	case hubTimedOut:
		return pe.timeoutAt("lock", -1, start, deadline)
	}
	if rel := pe.prog.lockReleaseStamp(off); rel.t > 0 {
		if t := rel.t.Add(pe.syncOneway(0)); t > pe.clock.Now() {
			waitStart := pe.clock.Now()
			pe.clock.AdvanceTo(t)
			pe.profMerge(profile.CatLockWait, waitStart, int(rel.pe), rel.t, t)
		}
	}
	if deadline > 0 && pe.clock.Now() > deadline {
		return pe.timeoutAt("lock", -1, start, deadline)
	}
	pe.san.AtomicEdge(0, off)
	pe.lockAcquired(lock.off, stats.LockAlgoTicket, start)
	return nil
}

// clearLockTicket bumps the serving number. The release's visibility time
// is published first so the woken waiter reads it, not the hub's running
// maximum (which later ticket draws keep advancing).
func (pe *PE) clearLockTicket(lock Ref[int64]) error {
	if err := pe.check(); err != nil {
		return err
	}
	pe.san.LockRelease(lock.off, pe.clock.Now())
	if err := pe.lockHolderCheck(lock.off); err != nil {
		return err
	}
	part, off, err := atomicTarget(pe, lock, 0)
	if err != nil {
		return err
	}
	now := pe.clock.Now()
	pe.prog.setLockRelease(off, now, pe.id)
	atomicAdd64(part, off, 1)
	pe.san.AtomicEdge(0, off)
	pe.prog.hubs[0].record(off, now, pe.id)
	return nil
}

// testLockTicket attempts a non-blocking ticket acquisition: a charged
// read of the word, then a conditional ticket draw only when the lock is
// free. A lost race reports the lock as held, like shmem_test_lock.
func (pe *PE) testLockTicket(lock Ref[int64]) (bool, error) {
	start := pe.clock.Now()
	old, err := FAdd(pe, lock, 0, 0)
	if err != nil {
		return false, err
	}
	if uint32(uint64(old)) != uint32(uint64(old)>>32) {
		return true, nil
	}
	got, err := CSwap(pe, lock, old, old+ticketInc, 0)
	if err != nil {
		return false, err
	}
	if got != old {
		return true, nil
	}
	pe.lockFreeVisible(lock.off)
	pe.lockAcquired(lock.off, stats.LockAlgoTicket, start)
	return false, nil
}

// lockFreeVisible merges the previous release's visibility into the
// acquirer's clock on a fast-path acquire: no PE can observe the lock
// word free before the release store became visible at the lock's home
// and the line travelled back. Every release path (CAS swap, ticket
// serving bump, MCS tail free) publishes through setLockRelease, so the
// contended makespans of the three algorithms diverge honestly instead
// of all collapsing onto overlapping critical sections.
func (pe *PE) lockFreeVisible(off int64) {
	if rel := pe.prog.lockReleaseStamp(off); rel.t > 0 {
		if t := rel.t.Add(pe.syncOneway(0)); t > pe.clock.Now() {
			waitStart := pe.clock.Now()
			pe.clock.AdvanceTo(t)
			pe.profMerge(profile.CatLockWait, waitStart, int(rel.pe), rel.t, t)
		}
	}
}

// lockRelStamp is a lock release's visibility time plus the releasing
// PE's global rank (for the acquirer's happens-before edge).
type lockRelStamp struct {
	t  vtime.Time
	pe int32
}

func (p *Program) setLockRelease(off int64, t vtime.Time, pe int) {
	p.lockMu.Lock()
	if t > p.lockRel[off].t {
		p.lockRel[off] = lockRelStamp{t: t, pe: int32(pe)}
	}
	p.lockMu.Unlock()
}

func (p *Program) lockReleaseStamp(off int64) lockRelStamp {
	p.lockMu.Lock()
	defer p.lockMu.Unlock()
	return p.lockRel[off]
}

// MCS queue lock: the lock word is the queue tail (holder-or-last-waiter
// PE + 1, 0 when free). The per-waiter "next" pointers of the hardware
// algorithm are host-side registrations keyed by (lock offset,
// predecessor); the handoff carries the exact virtual time at which the
// predecessor's release reaches the successor's tile, so waiters spin on
// a local flag and the release traffic is one line transfer.

// setLockMCS acquires the MCS lock.
func (pe *PE) setLockMCS(lock Ref[int64]) error {
	if err := pe.check(); err != nil {
		return err
	}
	if pe.san.LockSelfAcquire(lock.off, pe.clock.Now()) {
		return fmt.Errorf("tshmem: PE %d SetLock on a lock it already holds (self-deadlock)", pe.id)
	}
	start := pe.clock.Now()
	old, err := Swap(pe, lock, int64(pe.id)+1, 0)
	if err != nil {
		return err
	}
	if old == 0 {
		pe.lockFreeVisible(lock.off)
		pe.lockAcquired(lock.off, stats.LockAlgoMCS, start)
		return nil
	}
	pred := int(old) - 1
	pe.rec.LockRetries(1)
	w := &mcsWaiter{pe: pe.id, ch: make(chan mcsWake, 1)}
	pe.prog.mcsRegister(lock.off, pred, w)
	deadline := pe.waitDeadline()
	var wake mcsWake
	if s := pe.prog.sched; s != nil {
		got, st := pe.mcsAwait(s, lock.off, pred, w)
		switch st {
		case wakeAbort:
			return fmt.Errorf("tshmem: program aborted while PE %d waited for an MCS lock", pe.id)
		case wakeTimeout:
			delivered, t := pe.prog.mcsUnregister(lock.off, pred, w)
			if !delivered {
				return pe.timeoutAt("lock", pred, start, deadline)
			}
			wake = t
		default:
			wake = got
		}
	} else {
		var timeoutC <-chan time.Time
		if g := pe.waitGrace(); g > 0 {
			timer := time.NewTimer(g)
			defer timer.Stop()
			timeoutC = timer.C
		}
		select {
		case wake = <-w.ch:
		case <-pe.prog.abortCh:
			return fmt.Errorf("tshmem: program aborted while PE %d waited for an MCS lock", pe.id)
		case <-timeoutC:
			delivered, t := pe.prog.mcsUnregister(lock.off, pred, w)
			if !delivered {
				return pe.timeoutAt("lock", pred, start, deadline)
			}
			wake = t
		}
	}
	waitStart := pe.clock.Now()
	pe.clock.AdvanceTo(wake.wake)
	pe.profMerge(profile.CatLockWait, waitStart, wake.from, wake.sent, wake.wake)
	if deadline > 0 && pe.clock.Now() > deadline {
		return pe.timeoutAt("lock", pred, start, deadline)
	}
	pe.san.AtomicEdge(0, lock.off)
	pe.lockAcquired(lock.off, stats.LockAlgoMCS, start)
	return nil
}

// clearLockMCS releases the MCS lock: free the tail if no successor
// queued, otherwise await the successor's registration (it has already
// swapped itself into the tail) and hand the lock off directly.
func (pe *PE) clearLockMCS(lock Ref[int64]) error {
	if err := pe.check(); err != nil {
		return err
	}
	pe.san.LockRelease(lock.off, pe.clock.Now())
	if err := pe.lockHolderCheck(lock.off); err != nil {
		return err
	}
	start := pe.clock.Now()
	deadline := pe.waitDeadline()
	old, err := CSwap(pe, lock, int64(pe.id)+1, 0, 0)
	if err != nil {
		return err
	}
	if old == int64(pe.id)+1 {
		pe.prog.setLockRelease(lock.off, pe.clock.Now(), pe.id)
		return nil
	}
	var w *mcsWaiter
	var ok bool
	if s := pe.prog.sched; s != nil {
		w, ok = pe.mcsAwaitSuccessorEvent(s, lock.off)
	} else {
		w, ok = pe.prog.mcsAwaitSuccessor(lock.off, pe.id, pe.waitGrace())
	}
	if !ok {
		if pe.prog.aborted.Load() {
			return fmt.Errorf("tshmem: program aborted while PE %d released an MCS lock", pe.id)
		}
		return pe.timeoutAt("lock", -1, start, deadline)
	}
	handoff := mcsWake{
		// The release's successor probe is a read-modify-write of the
		// waiter's flag word: emulated-RMW chips charge the premium here.
		wake: pe.clock.Now().Add(pe.syncOneway(w.pe) + pe.prog.model.AtomicRMWCost()),
		sent: pe.clock.Now(),
		from: pe.id,
	}
	pe.prog.mcsHandoff(lock.off, pe.id, w, handoff)
	pe.rec.LockHandoff()
	return nil
}

// mcsRegister notes that w waits behind predecessor pred on the lock at
// off and wakes a releaser blocked in mcsAwaitSuccessor.
func (p *Program) mcsRegister(off int64, pred int, w *mcsWaiter) {
	p.lockMu.Lock()
	m := p.mcsNext[off]
	if m == nil {
		m = make(map[int]*mcsWaiter)
		p.mcsNext[off] = m
	}
	m[pred] = w
	p.lockMu.Unlock()
	p.mcsCond.Broadcast()
	if p.sched != nil {
		p.sched.wake(wkMCSSucc, off, int64(pred))
	}
}

// mcsUnregister withdraws a timed-out waiter. If the handoff already
// dispatched, it reports delivered=true with the wake time instead.
func (p *Program) mcsUnregister(off int64, pred int, w *mcsWaiter) (delivered bool, wake mcsWake) {
	p.lockMu.Lock()
	if m := p.mcsNext[off]; m != nil && m[pred] == w {
		delete(m, pred)
		if len(m) == 0 {
			delete(p.mcsNext, off)
		}
		p.lockMu.Unlock()
		return false, mcsWake{}
	}
	p.lockMu.Unlock()
	return true, <-w.ch
}

// mcsAwaitSuccessor blocks a releaser until its successor registered
// (bounded by grace under fault injection, and woken by program abort).
func (p *Program) mcsAwaitSuccessor(off int64, pred int, grace time.Duration) (*mcsWaiter, bool) {
	p.lockMu.Lock()
	defer p.lockMu.Unlock()
	var timedOut bool
	if grace > 0 {
		timer := time.AfterFunc(grace, func() {
			p.lockMu.Lock()
			timedOut = true
			p.lockMu.Unlock()
			p.mcsCond.Broadcast()
		})
		defer timer.Stop()
	}
	for {
		if m := p.mcsNext[off]; m != nil {
			if w := m[pred]; w != nil {
				return w, true
			}
		}
		if p.aborted.Load() || timedOut {
			return nil, false
		}
		p.mcsCond.Wait()
	}
}

// mcsHandoff removes the successor's registration and delivers the wake
// time.
func (p *Program) mcsHandoff(off int64, pred int, w *mcsWaiter, wake mcsWake) {
	p.lockMu.Lock()
	if m := p.mcsNext[off]; m != nil && m[pred] == w {
		delete(m, pred)
		if len(m) == 0 {
			delete(p.mcsNext, off)
		}
	}
	w.ch <- wake
	p.lockMu.Unlock()
	if p.sched != nil {
		p.sched.wake(wkMCS, off, int64(pred))
	}
}

// mcsAwait parks until the predecessor's handoff lands on w.ch — the
// event engine's side of the select in setLockMCS. An expiry or abort
// drains a handoff delivered in the same step before reporting.
func (pe *PE) mcsAwait(s *evsched, off int64, pred int, w *mcsWaiter) (mcsWake, uint8) {
	for {
		select {
		case t := <-w.ch:
			return t, wakeRun
		default:
		}
		st := s.yield(pe.id, wkMCS, off, int64(pred))
		if st != wakeRun {
			select {
			case t := <-w.ch:
				return t, wakeRun
			default:
			}
			return mcsWake{}, st
		}
	}
}

// mcsAwaitSuccessorEvent is the calendar-mediated successor wait: the
// registration lookup is the re-armed predicate and mcsRegister the
// waker. A quiescence expiry or abort re-checks once — the registration
// may have landed in the same step — before giving up.
func (pe *PE) mcsAwaitSuccessorEvent(s *evsched, off int64) (*mcsWaiter, bool) {
	p := pe.prog
	probe := func() *mcsWaiter {
		p.lockMu.Lock()
		defer p.lockMu.Unlock()
		if m := p.mcsNext[off]; m != nil {
			return m[pe.id]
		}
		return nil
	}
	for {
		if w := probe(); w != nil {
			return w, true
		}
		if p.aborted.Load() {
			return nil, false
		}
		if st := s.yield(pe.id, wkMCSSucc, off, int64(pe.id)); st != wakeRun {
			if w := probe(); w != nil {
				return w, true
			}
			return nil, false
		}
	}
}
