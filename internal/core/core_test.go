package core

import (
	"errors"
	"sync"
	"testing"

	"tshmem/internal/arch"
	"tshmem/internal/vtime"
)

// gxCfg returns a small TILE-Gx config for tests.
func gxCfg(npes int) Config {
	return Config{Chip: arch.Gx8036(), NPEs: npes, HeapPerPE: 1 << 20, ScratchBytes: 1 << 20}
}

func proCfg(npes int) Config {
	return Config{Chip: arch.Pro64(), NPEs: npes, HeapPerPE: 1 << 20, ScratchBytes: 1 << 20}
}

// runT runs body on every PE and fails the test on error.
func runT(t *testing.T, cfg Config, body func(*PE) error) *Report {
	t.Helper()
	rep, err := Run(cfg, body)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{NPEs: 0}, func(*PE) error { return nil }); err == nil {
		t.Error("NPEs=0 accepted")
	}
	if _, err := Run(Config{NPEs: 37, Chip: arch.Gx8036()}, func(*PE) error { return nil }); err == nil {
		t.Error("37 PEs on a 36-tile chip accepted")
	}
	if _, err := Run(Config{NPEs: 2, HeapPerPE: 100}, func(*PE) error { return nil }); err == nil {
		t.Error("tiny heap accepted")
	}
}

func TestRunEnvironment(t *testing.T) {
	const n = 9
	var mu sync.Mutex
	seen := make(map[int]bool)
	rep := runT(t, gxCfg(n), func(pe *PE) error {
		mu.Lock()
		seen[pe.MyPE()] = true
		mu.Unlock()
		if pe.NumPEs() != n {
			t.Errorf("NumPEs = %d, want %d", pe.NumPEs(), n)
		}
		if pe.Chip().Name != "TILE-Gx8036" {
			t.Errorf("chip = %s", pe.Chip().Name)
		}
		if pe.Tile() < 0 || pe.Tile() >= 36 {
			t.Errorf("tile %d out of range", pe.Tile())
		}
		return nil
	})
	if len(seen) != n {
		t.Errorf("saw %d distinct PEs, want %d", len(seen), n)
	}
	if rep.NPEs != n || rep.Chip != "TILE-Gx8036" {
		t.Errorf("report header wrong: %+v", rep)
	}
	if rep.MaxTime <= 0 || rep.MinTime <= 0 || rep.MinTime > rep.MaxTime {
		t.Errorf("report times wrong: %v..%v", rep.MinTime, rep.MaxTime)
	}
	// start_pes costs real virtual time (address exchange + barrier).
	if rep.MinTime < vtime.FromNs(50) {
		t.Errorf("init suspiciously cheap: %v", rep.MinTime)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	wantErr := errors.New("boom")
	_, err := Run(gxCfg(4), func(pe *PE) error {
		if pe.MyPE() == 2 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	_, err := Run(gxCfg(2), func(pe *PE) error {
		if pe.MyPE() == 1 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not reported")
	}
}

func TestMallocSymmetryAndViews(t *testing.T) {
	const n = 4
	offs := make([]int64, n)
	runT(t, gxCfg(n), func(pe *PE) error {
		x, err := Malloc[int32](pe, 100)
		if err != nil {
			return err
		}
		offs[pe.MyPE()] = x.off
		v, err := Local(pe, x)
		if err != nil {
			return err
		}
		if len(v) != 100 {
			t.Errorf("local view has %d elements", len(v))
		}
		v[0] = int32(pe.MyPE())
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		// Views are real memory: a remote Ptr must see the write.
		next := (pe.MyPE() + 1) % n
		remote := Ptr(pe, x, next)
		if remote == nil || remote[0] != int32(next) {
			t.Errorf("PE %d: remote view wrong: %v", pe.MyPE(), remote)
		}
		return pe.BarrierAll()
	})
	for i := 1; i < n; i++ {
		if offs[i] != offs[0] {
			t.Errorf("asymmetric offsets: %v", offs)
		}
	}
}

func TestMallocAsymmetryDetected(t *testing.T) {
	_, err := Run(gxCfg(3), func(pe *PE) error {
		// PE 1 first allocates an extra object, desynchronizing the heaps.
		if pe.MyPE() == 1 {
			if _, err := pe.heap.Alloc(64); err != nil {
				return err
			}
		}
		_, err := Malloc[int64](pe, 10)
		return err
	})
	if !errors.Is(err, ErrAsymmetric) {
		t.Errorf("asymmetric shmalloc: %v", err)
	}
}

func TestMallocFreeRealloc(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		x, err := Malloc[float64](pe, 64)
		if err != nil {
			return err
		}
		before := pe.HeapInUse()
		v := MustLocal(pe, x)
		for i := range v {
			v[i] = float64(i)
		}
		x2, err := Realloc(pe, x, 128)
		if err != nil {
			return err
		}
		v2 := MustLocal(pe, x2)
		if len(v2) != 128 || v2[63] != 63 {
			t.Errorf("realloc lost data: len %d, v2[63]=%v", len(v2), v2[63])
		}
		if err := Free(pe, x2); err != nil {
			return err
		}
		if pe.HeapInUse() >= before {
			t.Errorf("heap not released: %d >= %d", pe.HeapInUse(), before)
		}
		_, err = Malloc[float64](pe, 0)
		if err == nil {
			t.Error("zero-element Malloc accepted")
		}
		// The failed Malloc left no allocation; heaps are still symmetric.
		y, err := Malloc[int16](pe, 3)
		if err != nil {
			return err
		}
		return Free(pe, y)
	})
}

func TestMallocAlign(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		x, err := MallocAlign[int32](pe, 5, 256)
		if err != nil {
			return err
		}
		if x.off%256 != 0 {
			t.Errorf("offset %d not 256-aligned", x.off)
		}
		return Free(pe, x)
	})
}

func TestRefSlicing(t *testing.T) {
	runT(t, gxCfg(1), func(pe *PE) error {
		x, err := Malloc[int32](pe, 10)
		if err != nil {
			return err
		}
		sub := x.Slice(2, 7)
		if sub.Len() != 5 {
			t.Errorf("sub len = %d", sub.Len())
		}
		MustLocal(pe, x)[4] = 99
		if got := MustLocal(pe, sub)[2]; got != 99 {
			t.Errorf("sub view misaligned: %d", got)
		}
		one := x.At(4)
		if one.Len() != 1 || MustLocal(pe, one)[0] != 99 {
			t.Error("At view wrong")
		}
		if _, err := x.SliceChecked(5, 3); !errors.Is(err, ErrBounds) {
			t.Errorf("inverted slice: %v", err)
		}
		if _, err := x.SliceChecked(0, 11); !errors.Is(err, ErrBounds) {
			t.Errorf("overlong slice: %v", err)
		}
		var zero Ref[int32]
		if _, err := Local(pe, zero); !errors.Is(err, ErrBounds) {
			t.Errorf("zero ref: %v", err)
		}
		return nil
	})
}

func TestFinalize(t *testing.T) {
	runT(t, gxCfg(3), func(pe *PE) error {
		if err := pe.Finalize(); err != nil {
			return err
		}
		if err := pe.Finalize(); !errors.Is(err, ErrFinalized) {
			t.Errorf("double finalize: %v", err)
		}
		if err := pe.BarrierAll(); !errors.Is(err, ErrFinalized) {
			t.Errorf("barrier after finalize: %v", err)
		}
		if _, err := Malloc[int32](pe, 1); !errors.Is(err, ErrFinalized) {
			t.Errorf("malloc after finalize: %v", err)
		}
		return nil
	})
}

func TestComputeCharging(t *testing.T) {
	var gxFlops, proFlops vtime.Duration
	runT(t, gxCfg(1), func(pe *PE) error {
		t0 := pe.Now()
		pe.ComputeFlops(1000)
		gxFlops = pe.Now().Sub(t0)
		return nil
	})
	runT(t, proCfg(1), func(pe *PE) error {
		t0 := pe.Now()
		pe.ComputeFlops(1000)
		proFlops = pe.Now().Sub(t0)
		return nil
	})
	// Softfloat penalty: Pro pays much more per flop (Figure 13's cause).
	if proFlops < 4*gxFlops {
		t.Errorf("softfloat penalty missing: pro %v vs gx %v", proFlops, gxFlops)
	}
	runT(t, gxCfg(1), func(pe *PE) error {
		t0 := pe.Now()
		pe.ComputeFlops(-5)
		pe.ComputeIntOps(0)
		if pe.Now() != t0 {
			t.Error("non-positive work advanced the clock")
		}
		pe.ComputeIntOps(1000)
		pe.ComputeRandomAccesses(10)
		if pe.Now() == t0 {
			t.Error("work did not advance the clock")
		}
		st := pe.Stats()
		if st.IntOps != 1000 {
			t.Errorf("IntOps stat = %d", st.IntOps)
		}
		return nil
	})
}

func TestPEAccessible(t *testing.T) {
	runT(t, gxCfg(3), func(pe *PE) error {
		if !pe.PEAccessible(0) || !pe.PEAccessible(2) {
			t.Error("valid PEs not accessible")
		}
		if pe.PEAccessible(-1) || pe.PEAccessible(3) {
			t.Error("invalid PEs accessible")
		}
		return nil
	})
}
