package core

import (
	"errors"
	"strings"
	"testing"
)

// Failure-injection tests: a PE failing mid-protocol must surface the root
// cause and unblock every peer, never hang the program.

func TestAbortUnblocksBarrier(t *testing.T) {
	boom := errors.New("injected failure")
	_, err := Run(gxCfg(6), func(pe *PE) error {
		if pe.MyPE() == 2 {
			return boom
		}
		// Everyone else parks in a barrier that can never complete.
		if err := pe.BarrierAll(); err != nil {
			return nil // expected: closed UDN surfaces as an error here
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("root cause lost: %v", err)
	}
}

func TestAbortUnblocksWaitUntil(t *testing.T) {
	boom := errors.New("injected failure")
	_, err := Run(gxCfg(3), func(pe *PE) error {
		flag, e := Malloc[int64](pe, 1)
		if e != nil {
			return e
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			return boom
		}
		// The flag writer died: the waiters must be woken by the abort.
		e = WaitUntil(pe, flag, CmpEQ, int64(1))
		if e == nil {
			t.Error("WaitUntil returned success for a value never written")
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("root cause lost: %v", err)
	}
}

func TestAbortUnblocksCollective(t *testing.T) {
	boom := errors.New("injected failure")
	_, err := Run(gxCfg(5), func(pe *PE) error {
		target, e := Malloc[int32](pe, 4)
		if e != nil {
			return e
		}
		ps, e := Malloc[int64](pe, BcastSyncSize)
		if e != nil {
			return e
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 4 {
			return boom
		}
		_ = BroadcastPull(pe, target, target, 4, 0, AllPEs(5), ps)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("root cause lost: %v", err)
	}
}

func TestScratchExhaustion(t *testing.T) {
	// A static-static transfer larger than the scratch arena must fail
	// cleanly, not corrupt anything.
	cfg := gxCfg(2)
	cfg.ScratchBytes = 64 << 10
	_, err := Run(cfg, func(pe *PE) error {
		st, err := DeclareStatic[int64](pe, "big", 32<<10) // 256 kB
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			err := Put(pe, st, st, 32<<10, 1)
			if err == nil {
				t.Error("oversized static-static put should fail on scratch exhaustion")
			}
			if err != nil && !strings.Contains(err.Error(), "exhausted") {
				t.Errorf("unexpected error: %v", err)
			}
			// The library remains usable afterwards.
			if err := Put(pe, st, st, 256, 1); err != nil {
				t.Errorf("small transfer after exhaustion: %v", err)
			}
		}
		return pe.BarrierAll()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHeapExhaustion(t *testing.T) {
	_, err := Run(gxCfg(2), func(pe *PE) error {
		// Heap is 1 MiB; this cannot fit.
		_, err := Malloc[int64](pe, 1<<20)
		if err == nil {
			t.Error("oversized shmalloc should fail")
		}
		// Collective failure is symmetric: all PEs saw the same error, and
		// the heap still works.
		x, err := Malloc[int64](pe, 64)
		if err != nil {
			return err
		}
		return Free(pe, x)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicVirtualTime: the same single-chip program yields
// identical per-PE virtual times across runs — the property that makes the
// benchmark harness reproducible.
func TestDeterministicVirtualTime(t *testing.T) {
	measure := func() []int64 {
		const n = 8
		out := make([]int64, n)
		runT(t, gxCfg(n), func(pe *PE) error {
			target, source, ps := collEnv(t, pe, 256, 256*n)
			pwrk, err := Malloc[int32](pe, 256/2+1)
			if err != nil {
				return err
			}
			ringDst, err := Malloc[int32](pe, 256) // written by my left neighbor only
			if err != nil {
				return err
			}
			if err := pe.AlignClocks(); err != nil {
				return err
			}
			for r := 0; r < 5; r++ {
				if err := BroadcastPull(pe, target, source, 256, 0, AllPEs(n), ps); err != nil {
					return err
				}
				if err := FCollect(pe, target, source, 256, AllPEs(n), ps); err != nil {
					return err
				}
				if err := SumToAllNaive(pe, target.Slice(0, 256), source, 256, AllPEs(n), pwrk, ps); err != nil {
					return err
				}
				if err := Put(pe, ringDst, source, 256, (pe.MyPE()+1)%n); err != nil {
					return err
				}
				if err := pe.BarrierAll(); err != nil {
					return err
				}
			}
			out[pe.MyPE()] = int64(pe.Now())
			return nil
		})
		return out
	}
	a, b := measure(), measure()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("PE %d virtual time differs across runs: %d vs %d", i, a[i], b[i])
		}
	}
}
