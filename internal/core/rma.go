package core

import (
	"errors"
	"fmt"

	"tshmem/internal/cache"
	"tshmem/internal/profile"
	"tshmem/internal/sanitize"
	"tshmem/internal/stats"
	"tshmem/internal/udn"
	"tshmem/internal/vtime"
)

// sanSID maps a Ref to the sanitizer's region namespace: the static object
// id, or DynamicSID for the symmetric heap.
func sanSID[T Elem](r Ref[T]) int32 {
	if r.kind == staticRef {
		return r.sid
	}
	return sanitize.DynamicSID
}

// Copy modes forwarded to the memory model.
const (
	sharedMode  = cache.SharedAny
	privateMode = cache.PrivateToPrivate
)

// Interrupt opcodes for static-variable redirection (S IV.B.2).
const (
	opPutFromShared uint64 = iota + 1 // copy common memory -> my static object
	opGetToShared                     // copy my static object -> common memory
)

// Interrupt reply status.
const (
	stOK uint64 = iota
	stErr
)

// operand is a resolved transfer endpoint.
type operand struct {
	bytes  []byte // local view; nil for a static object on a remote PE
	shared bool   // lives in common memory (dynamic symmetric object)
	gOff   int64  // absolute common-memory offset when shared
	static bool
	sid    int32
	sOff   int64 // byte offset within the static object
	nbytes int64
}

// resolve locates nelems elements of r on PE onPE, as seen by pe.
func resolve[T Elem](pe *PE, r Ref[T], onPE, nelems int) (operand, error) {
	if !r.valid() {
		return operand{}, fmt.Errorf("%w: zero Ref", ErrBounds)
	}
	if nelems < 0 || nelems > r.n {
		return operand{}, fmt.Errorf("%w: %d elements of a %d-element object", ErrBounds, nelems, r.n)
	}
	nbytes := int64(nelems) * sizeOf[T]()
	switch r.kind {
	case dynamicRef:
		if r.off+nbytes > pe.prog.partSize {
			return operand{}, fmt.Errorf("%w: dynamic ref beyond partition", ErrBounds)
		}
		g := globalOff(pe, r, onPE)
		b, err := pe.prog.cm.Slice(g, nbytes)
		if err != nil {
			return operand{}, err
		}
		return operand{bytes: b, shared: true, gOff: g, nbytes: nbytes}, nil
	default:
		op := operand{static: true, sid: r.sid, sOff: r.off, nbytes: nbytes}
		if onPE == pe.id {
			b, err := pe.prog.statics.backing(r.sid, pe.id)
			if err != nil {
				return operand{}, err
			}
			if r.off+nbytes > int64(len(b)) {
				return operand{}, fmt.Errorf("%w: static ref beyond object", ErrBounds)
			}
			op.bytes = b[r.off : r.off+nbytes]
		}
		return op, nil
	}
}

// chargeXfer advances the clock for moving nbytes between this PE and
// remotePE's partition: the on-chip memory model within a chip, the mPIPE
// wire across chips (the multi-device extension). toRemote is the data's
// direction (true for put-like transfers toward remotePE, false for
// get-like reads from it); it orients the modeled iMesh route when
// per-link accounting is on.
func (pe *PE) chargeXfer(nbytes int64, mode cache.Mode, remotePE int, toRemote bool) {
	t0 := pe.clock.Now()
	base := pe.prog.model.CopyCostHomedMemoRec(&pe.memo, nbytes, mode, pe.prog.cfg.Homing, pe.curHint(), pe.rec)
	pe.clock.Advance(base)
	pe.prof.Advance(profile.RMA(stats.CacheLevel(pe.prog.model.LevelFor(nbytes))), t0, pe.clock.Now())
	// Fault injection: slow tiles and stuck cache-home tiles stretch the
	// copy in proportion to how much of it they serve (nil-safe no-op when
	// faults are off).
	if extra, id := pe.prog.flt.CopyExtra(pe.id, pe.prog.cfg.Homing, pe.prog.chip.Tiles, t0, base); extra > 0 {
		tf := pe.clock.Now()
		pe.clock.Advance(extra)
		pe.prof.Advance(profile.CatFault, tf, pe.clock.Now())
		pe.rec.FaultDelay(id, remotePE, t0, extra)
	}
	if remotePE != pe.id && !pe.prog.sameChip(pe.id, remotePE) {
		// Store-and-forward through mPIPE: the data still traverses the
		// local memory system (charged above), then rides the wire.
		tm := pe.clock.Now()
		pe.prog.fabric.ChargeData(&pe.clock, pe.id, remotePE, nbytes)
		pe.prof.Advance(profile.CatMesh, tm, pe.clock.Now())
	}
	pe.rec.RMA(pe.locality(remotePE), int(nbytes), pe.clock.Now().Sub(t0))
	pe.routeXfer(nbytes, remotePE, toRemote)
}

// routeXfer charges a same-chip RMA transfer onto the iMesh link counters:
// the data crosses the mesh between the two tiles even though it moves
// through the cache system rather than as UDN packets. Cross-chip traffic
// rides mPIPE, not the mesh, and self-transfers stay on-tile.
func (pe *PE) routeXfer(nbytes int64, remotePE int, toRemote bool) {
	if pe.prog.links == nil || remotePE == pe.id || !pe.prog.sameChip(pe.id, remotePE) {
		return
	}
	wb := int64(pe.prog.chip.WordBytes)
	words := int((nbytes + wb - 1) / wb)
	from, to := pe.prog.localIdx(pe.id), pe.prog.localIdx(remotePE)
	if !toRemote {
		from, to = to, from
	}
	pe.prog.links[pe.prog.chipOf(pe.id)].RecordRoute(from, to, words)
}

// chargedCopy copies src into dst and advances the clock by the modeled
// transfer cost toward remotePE under the current concurrency hint and the
// configured homing strategy.
func (pe *PE) chargedCopy(dst, src []byte, mode cache.Mode, remotePE int, toRemote bool) {
	copy(dst, src)
	pe.chargeXfer(int64(len(src)), mode, remotePE, toRemote)
}

// Put copies nelems elements from the calling PE's instance of source into
// target on PE tpe (shmem_putmem and the typed block puts). Puts return
// when the local side of the transfer is complete; remote visibility is
// guaranteed by Quiet, Fence, or a barrier.
func Put[T Elem](pe *PE, target Ref[T], source Ref[T], nelems, tpe int) error {
	src, err := resolve(pe, source, pe.id, nelems)
	if err != nil {
		return err
	}
	if err := putResolved(pe, target, src, nelems, tpe); err != nil {
		return err
	}
	pe.san.Read("Put(src)", pe.id, sanSID(source), source.off, src.nbytes, pe.clock.Now())
	return nil
}

// PutSlice is Put with a private local Go slice as the source ("any source
// variable may be used, symmetric or otherwise", S IV.B.2).
func PutSlice[T Elem](pe *PE, target Ref[T], source []T, tpe int) error {
	src := operand{bytes: bytesOf(source), nbytes: int64(len(source)) * sizeOf[T]()}
	return putResolved(pe, target, src, len(source), tpe)
}

func putResolved[T Elem](pe *PE, target Ref[T], src operand, nelems, tpe int) error {
	if err := pe.check(); err != nil {
		return err
	}
	if err := pe.checkPE(tpe); err != nil {
		return err
	}
	dst, err := resolve(pe, target, tpe, nelems)
	if err != nil {
		return err
	}
	pe.stats.Puts++
	pe.stats.PutBytes += src.nbytes
	start := pe.clock.Now()
	pe.san.Write("Put", tpe, sanSID(target), target.off, src.nbytes, start)
	defer pe.rec.OpDone(stats.OpPut, start, &pe.clock, src.nbytes, tpe)

	switch {
	case tpe == pe.id:
		mode := sharedMode
		if !dst.shared && !src.shared {
			mode = privateMode
		}
		pe.chargedCopy(dst.bytes, src.bytes, mode, pe.id, true)
		return nil

	case dst.shared:
		// Dynamic target: the local tile writes the remote partition
		// directly through common memory (across chips, over mPIPE).
		pe.chargedCopy(dst.bytes, src.bytes, sharedMode, tpe, true)
		return nil

	default:
		// Static target on a remote tile: redirect over a UDN interrupt.
		if !pe.prog.chip.UDNInterrupts {
			return fmt.Errorf("%w: static symmetric put on %s", ErrNotSupported, pe.prog.chip.Name)
		}
		if !pe.prog.sameChip(pe.id, tpe) {
			return fmt.Errorf("%w: static symmetric transfers do not cross chips (UDN interrupts are chip-local)", ErrNotSupported)
		}
		if src.shared {
			// The remote tile can read the dynamic source itself.
			return pe.redirect(tpe, opPutFromShared, dst.sid, dst.sOff, src.gOff, src.nbytes)
		}
		// Static-static (or private source): bounce through a temporary
		// common-memory buffer — the extra copy is the paper's "major
		// performance penalty" case.
		g, err := pe.prog.scratchGet(pe.id, src.nbytes)
		if err != nil {
			return err
		}
		defer pe.prog.scratchPut(g)
		tmp, err := pe.prog.cm.Slice(g, src.nbytes)
		if err != nil {
			return err
		}
		pe.chargedCopy(tmp, src.bytes, sharedMode, pe.id, true)
		return pe.redirect(tpe, opPutFromShared, dst.sid, dst.sOff, g, src.nbytes)
	}
}

// Get copies nelems elements of source on PE spe into the calling PE's
// instance of target (shmem_getmem and the typed block gets). Gets block
// until the data is locally visible.
func Get[T Elem](pe *PE, target Ref[T], source Ref[T], nelems, spe int) error {
	if err := pe.check(); err != nil {
		return err
	}
	dst, err := resolve(pe, target, pe.id, nelems)
	if err != nil {
		return err
	}
	if err := getResolved(pe, dst, source, nelems, spe); err != nil {
		return err
	}
	pe.san.Write("Get(dst)", pe.id, sanSID(target), target.off, dst.nbytes, pe.clock.Now())
	return nil
}

// GetSlice is Get with a private local Go slice as the target.
func GetSlice[T Elem](pe *PE, target []T, source Ref[T], spe int) error {
	if err := pe.check(); err != nil {
		return err
	}
	dst := operand{bytes: bytesOf(target), nbytes: int64(len(target)) * sizeOf[T]()}
	return getResolved(pe, dst, source, len(target), spe)
}

func getResolved[T Elem](pe *PE, dst operand, source Ref[T], nelems, spe int) error {
	if err := pe.checkPE(spe); err != nil {
		return err
	}
	src, err := resolve(pe, source, spe, nelems)
	if err != nil {
		return err
	}
	pe.stats.Gets++
	pe.stats.GetBytes += src.nbytes
	start := pe.clock.Now()
	pe.san.Read("Get", spe, sanSID(source), source.off, src.nbytes, start)
	defer pe.rec.OpDone(stats.OpGet, start, &pe.clock, src.nbytes, spe)

	switch {
	case spe == pe.id:
		mode := sharedMode
		if !dst.shared && !src.shared {
			mode = privateMode
		}
		pe.chargedCopy(dst.bytes, src.bytes, mode, pe.id, false)
		return nil

	case src.shared:
		// Dynamic source: readable directly through common memory (across
		// chips, over mPIPE).
		pe.chargedCopy(dst.bytes, src.bytes, sharedMode, spe, false)
		return nil

	default:
		// Static source on a remote tile.
		if !pe.prog.chip.UDNInterrupts {
			return fmt.Errorf("%w: static symmetric get on %s", ErrNotSupported, pe.prog.chip.Name)
		}
		if !pe.prog.sameChip(pe.id, spe) {
			return fmt.Errorf("%w: static symmetric transfers do not cross chips (UDN interrupts are chip-local)", ErrNotSupported)
		}
		if dst.shared {
			// The remote tile puts into our dynamic target instead
			// (S IV.B.2's example).
			return pe.redirect(spe, opGetToShared, src.sid, src.sOff, dst.gOff, src.nbytes)
		}
		// Static-static: bounce through a temporary shared buffer.
		g, err := pe.prog.scratchGet(pe.id, src.nbytes)
		if err != nil {
			return err
		}
		defer pe.prog.scratchPut(g)
		if err := pe.redirect(spe, opGetToShared, src.sid, src.sOff, g, src.nbytes); err != nil {
			return err
		}
		tmp, err := pe.prog.cm.Slice(g, src.nbytes)
		if err != nil {
			return err
		}
		pe.chargedCopy(dst.bytes, tmp, sharedMode, pe.id, false)
		return nil
	}
}

// redirect raises the UDN interrupt asking PE target to service a transfer
// between its static object sid and common memory (S IV.B.2).
func (pe *PE) redirect(target int, op uint64, sid int32, sOff, gOff, nbytes int64) error {
	pe.stats.Redirects++
	start := pe.clock.Now()
	rep, err := pe.port.Interrupt(&pe.clock, pe.prog.localIdx(target), uint32(op),
		[]uint64{op, uint64(sid), uint64(sOff), uint64(gOff), uint64(nbytes)})
	if err != nil {
		if errors.Is(err, udn.ErrTimeout) {
			return pe.timeoutAt("redirect", target, start, start.Add(pe.prog.waitBudget))
		}
		return err
	}
	if rep.Len() == 0 || rep.Word(0) != stOK {
		return fmt.Errorf("%w: remote PE %d could not service redirected transfer", ErrUnknownStatic, target)
	}
	return nil
}

// serviceInterrupt runs on this PE's tile in interrupt context (a dedicated
// goroutine): the tile is forced to service an operation the requesting
// tile could not perform itself. It must not touch pe.clock or pe.stats —
// the requester carries the timing through the interrupt reply.
func (pe *PE) serviceInterrupt(req udn.Packet) ([]uint64, vtime.Duration) {
	if req.Len() != 5 {
		return []uint64{stErr}, 0
	}
	op, sid := req.Word(0), int32(req.Word(1))
	sOff, gOff, nbytes := int64(req.Word(2)), int64(req.Word(3)), int64(req.Word(4))

	backing, err := pe.prog.statics.backing(sid, pe.id)
	if err != nil || sOff+nbytes > int64(len(backing)) {
		return []uint64{stErr}, 0
	}
	shared, err := pe.prog.cm.Slice(gOff, nbytes)
	if err != nil {
		return []uint64{stErr}, 0
	}
	switch op {
	case opPutFromShared:
		copy(backing[sOff:sOff+nbytes], shared)
	case opGetToShared:
		copy(shared, backing[sOff:sOff+nbytes])
	default:
		return []uint64{stErr}, 0
	}
	return []uint64{stOK}, pe.prog.model.CopyCost(nbytes, sharedMode, 1)
}

// P is the elemental put (shmem_TYPE_p): store one value into element 0 of
// target on PE tpe. For dynamic targets of machine word width the store is
// atomic and wakes Wait/WaitUntil on the target PE.
func P[T Elem](pe *PE, target Ref[T], value T, tpe int) error {
	if err := pe.check(); err != nil {
		return err
	}
	if err := pe.checkPE(tpe); err != nil {
		return err
	}
	es := sizeOf[T]()
	dst, err := resolve(pe, target, tpe, 1)
	if err != nil {
		return err
	}
	if !dst.shared || es > 8 {
		// Static targets and 16-byte elements take the block-put path.
		return putResolved(pe, target, operand{bytes: bytesOf([]T{value}), nbytes: es}, 1, tpe)
	}
	pe.stats.Puts++
	pe.stats.PutBytes += es
	start := pe.clock.Now()
	part := pe.partBytes(tpe)
	off := target.off
	pe.san.Signal(tpe, off, es, start)
	pe.chargeXfer(es, sharedMode, tpe, true)
	atomicStoreElem(part, off, es, toBits(value))
	pe.prog.hubs[tpe].record(off, pe.clock.Now(), pe.id)
	pe.rec.OpDone(stats.OpPut, start, &pe.clock, es, tpe)
	return nil
}

// G is the elemental get (shmem_TYPE_g): load element 0 of source from PE
// spe.
func G[T Elem](pe *PE, source Ref[T], spe int) (T, error) {
	var zero T
	if err := pe.check(); err != nil {
		return zero, err
	}
	if err := pe.checkPE(spe); err != nil {
		return zero, err
	}
	es := sizeOf[T]()
	src, err := resolve(pe, source, spe, 1)
	if err != nil {
		return zero, err
	}
	if !src.shared || es > 8 {
		out := make([]T, 1)
		if err := GetSlice(pe, out, source.Slice(0, 1), spe); err != nil {
			return zero, err
		}
		return out[0], nil
	}
	pe.stats.Gets++
	pe.stats.GetBytes += es
	start := pe.clock.Now()
	part := pe.partBytes(spe)
	pe.chargeXfer(es, sharedMode, spe, false)
	v := fromBits[T](atomicLoadElem(part, source.off, es))
	pe.san.ReadElem(spe, source.off, es, start)
	pe.rec.OpDone(stats.OpGet, start, &pe.clock, es, spe)
	return v, nil
}

// IPut is the strided put (shmem_TYPE_iput): nelems elements are copied
// from source with stride sst (in elements) into target with stride tst on
// PE tpe. Strided transfers involving remote static objects are among the
// operations the paper lists as not yet supporting statics.
func IPut[T Elem](pe *PE, target, source Ref[T], tst, sst int64, nelems, tpe int) error {
	if err := stridedCheck(pe, target, source, tst, sst, nelems, tpe); err != nil {
		return err
	}
	srcView, err := Local(pe, source)
	if err != nil {
		return err
	}
	dstView, err := viewOn(pe, target, tpe, int(int64(nelems-1)*tst+1))
	if err != nil {
		return err
	}
	for i := 0; i < nelems; i++ {
		dstView[int64(i)*tst] = srcView[int64(i)*sst]
	}
	pe.stats.Puts++
	es := sizeOf[T]()
	nb := int64(nelems) * es
	pe.stats.PutBytes += nb
	start := pe.clock.Now()
	pe.san.WriteStrided("IPut", tpe, sanSID(target), target.off, tst*es, nelems, es, start)
	pe.san.ReadStrided("IPut(src)", pe.id, sanSID(source), source.off, sst*es, nelems, es, start)
	// Like Put, a self-transfer between two static (non-common-memory)
	// objects is a private copy; only common-memory traffic pays the
	// shared-mode cost.
	mode := sharedMode
	if tpe == pe.id && target.kind == staticRef && source.kind == staticRef {
		mode = privateMode
	}
	pe.chargeXfer(nb, mode, tpe, true)
	pe.clock.Advance(pe.prog.chip.Cycles(2 * nelems)) // per-element stride arithmetic
	pe.rec.OpDone(stats.OpPut, start, &pe.clock, nb, tpe)
	return nil
}

// IGet is the strided get (shmem_TYPE_iget).
func IGet[T Elem](pe *PE, target, source Ref[T], tst, sst int64, nelems, spe int) error {
	if err := stridedCheck(pe, source, target, sst, tst, nelems, spe); err != nil {
		return err
	}
	srcView, err := viewOn(pe, source, spe, int(int64(nelems-1)*sst+1))
	if err != nil {
		return err
	}
	dstView, err := Local(pe, target)
	if err != nil {
		return err
	}
	for i := 0; i < nelems; i++ {
		dstView[int64(i)*tst] = srcView[int64(i)*sst]
	}
	pe.stats.Gets++
	es := sizeOf[T]()
	nb := int64(nelems) * es
	pe.stats.GetBytes += nb
	start := pe.clock.Now()
	pe.san.ReadStrided("IGet", spe, sanSID(source), source.off, sst*es, nelems, es, start)
	pe.san.WriteStrided("IGet(dst)", pe.id, sanSID(target), target.off, tst*es, nelems, es, start)
	mode := sharedMode
	if spe == pe.id && target.kind == staticRef && source.kind == staticRef {
		mode = privateMode
	}
	pe.chargeXfer(nb, mode, spe, false)
	pe.clock.Advance(pe.prog.chip.Cycles(2 * nelems))
	pe.rec.OpDone(stats.OpGet, start, &pe.clock, nb, spe)
	return nil
}

// viewOn returns a typed view of span elements of r's instance on PE onPE.
// Remote instances must be dynamic (common memory); the local instance may
// also be static.
func viewOn[T Elem](pe *PE, r Ref[T], onPE, span int) ([]T, error) {
	switch {
	case r.kind == dynamicRef:
		op, err := resolve(pe, r.Slice(0, r.n), onPE, r.n)
		if err != nil {
			return nil, err
		}
		return sliceAt[T](op.bytes, 0, span), nil
	case onPE == pe.id:
		return Local(pe, r)
	default:
		return nil, fmt.Errorf("%w: remote static view", ErrNotSupported)
	}
}

// stridedCheck validates a strided transfer where remote is the Ref living
// on PE rpe and local the Ref on the calling PE.
func stridedCheck[T Elem](pe *PE, remote, local Ref[T], rst, lst int64, nelems, rpe int) error {
	if err := pe.check(); err != nil {
		return err
	}
	if err := pe.checkPE(rpe); err != nil {
		return err
	}
	if nelems <= 0 {
		return fmt.Errorf("%w: %d elements", ErrBounds, nelems)
	}
	if rst < 1 || lst < 1 {
		return fmt.Errorf("%w: strides must be >= 1 (got %d, %d)", ErrBounds, rst, lst)
	}
	if !remote.valid() || !local.valid() {
		return fmt.Errorf("%w: zero Ref", ErrBounds)
	}
	if remote.kind == staticRef && rpe != pe.id {
		return fmt.Errorf("%w: strided transfers to/from remote static objects", ErrNotSupported)
	}
	// Local statics are fine (local access); either kind only needs the
	// strided span to stay within the object.
	if int64(nelems-1)*lst+1 > int64(local.n) {
		return fmt.Errorf("%w: strided local span exceeds object", ErrBounds)
	}
	if int64(nelems-1)*rst+1 > int64(remote.n) {
		return fmt.Errorf("%w: strided remote span exceeds object", ErrBounds)
	}
	return nil
}
