package core

import (
	"errors"
	"strings"
	"testing"

	"tshmem/internal/vtime"
)

// collEnv allocates the standard target/source/pSync trio.
func collEnv(t *testing.T, pe *PE, n, total int) (target, source Ref[int32], ps PSync) {
	t.Helper()
	var err error
	if target, err = Malloc[int32](pe, total); err != nil {
		t.Fatal(err)
	}
	if source, err = Malloc[int32](pe, n); err != nil {
		t.Fatal(err)
	}
	if ps, err = Malloc[int64](pe, CollectSyncSize); err != nil {
		t.Fatal(err)
	}
	return
}

func TestBroadcastAlgorithms(t *testing.T) {
	const n, nelems = 7, 100
	for _, algo := range []struct {
		name string
		f    func(pe *PE, target, source Ref[int32], nelems, root int, as ActiveSet, ps PSync) error
	}{
		{"pull", BroadcastPull[int32]},
		{"push", BroadcastPush[int32]},
		{"binomial", BroadcastBinomial[int32]},
	} {
		t.Run(algo.name, func(t *testing.T) {
			runT(t, gxCfg(n), func(pe *PE) error {
				target, source, ps := collEnv(t, pe, nelems, nelems)
				src := MustLocal(pe, source)
				for i := range src {
					src[i] = int32(pe.MyPE()*1_000_000 + i)
				}
				tgt := MustLocal(pe, target)
				for i := range tgt {
					tgt[i] = -1
				}
				const root = 2
				as := AllPEs(n)
				if err := algo.f(pe, target, source, nelems, root, as, ps); err != nil {
					return err
				}
				if pe.MyPE() == root {
					// The root's target is not touched (OpenSHMEM semantics).
					if tgt[0] != -1 {
						t.Errorf("%s: root target modified", algo.name)
					}
				} else {
					for i := range tgt {
						if tgt[i] != int32(root*1_000_000+i) {
							t.Fatalf("%s: PE %d target[%d] = %d", algo.name, pe.MyPE(), i, tgt[i])
						}
					}
				}
				return pe.BarrierAll()
			})
		})
	}
}

func TestBroadcastSubset(t *testing.T) {
	// Broadcast over PEs 1,3,5 of 6; outsiders do unrelated work.
	const nelems = 32
	as := ActiveSet{Start: 1, LogStride: 1, Size: 3}
	runT(t, gxCfg(6), func(pe *PE) error {
		target, source, ps := collEnv(t, pe, nelems, nelems)
		src := MustLocal(pe, source)
		for i := range src {
			src[i] = int32(pe.MyPE() + 1)
		}
		if as.Contains(pe.MyPE()) {
			if err := BroadcastPull(pe, target, source, nelems, 0, as, ps); err != nil {
				return err
			}
			if idx, _ := as.Index(pe.MyPE()); idx != 0 {
				got := MustLocal(pe, target)
				for i := range got {
					if got[i] != 2 { // root is PE 1
						t.Fatalf("PE %d got %d", pe.MyPE(), got[i])
					}
				}
			}
		}
		return pe.BarrierAll()
	})
}

func TestBroadcastValidation(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		target, source, ps := collEnv(t, pe, 8, 8)
		if err := BroadcastPull(pe, target, source, 8, 5, AllPEs(2), ps); !errors.Is(err, ErrBadActiveSet) {
			t.Errorf("bad root: %v", err)
		}
		if err := BroadcastPull(pe, target, source, 99, 0, AllPEs(2), ps); !errors.Is(err, ErrBounds) {
			t.Errorf("oversize: %v", err)
		}
		var zero PSync
		if err := BroadcastPull(pe, target, source, 8, 0, AllPEs(2), zero); !errors.Is(err, ErrStatic) {
			t.Errorf("zero pSync: %v", err)
		}
		short, err := Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		if err := BroadcastPull(pe, target, source, 8, 0, AllPEs(2), short); !errors.Is(err, ErrBounds) {
			t.Errorf("short pSync: %v", err)
		}
		return nil
	})
}

func TestFCollect(t *testing.T) {
	const n, nelems = 5, 20
	runT(t, gxCfg(n), func(pe *PE) error {
		target, source, ps := collEnv(t, pe, nelems, n*nelems)
		src := MustLocal(pe, source)
		for i := range src {
			src[i] = int32(pe.MyPE()*100 + i)
		}
		if err := FCollect(pe, target, source, nelems, AllPEs(n), ps); err != nil {
			return err
		}
		got := MustLocal(pe, target)
		for k := 0; k < n; k++ {
			for i := 0; i < nelems; i++ {
				if got[k*nelems+i] != int32(k*100+i) {
					t.Fatalf("PE %d: target[%d] = %d, want %d", pe.MyPE(), k*nelems+i, got[k*nelems+i], k*100+i)
				}
			}
		}
		return pe.BarrierAll()
	})
}

func TestCollectVariableSizes(t *testing.T) {
	const n = 4
	sizes := []int{3, 0, 5, 2}
	runT(t, gxCfg(n), func(pe *PE) error {
		mine := sizes[pe.MyPE()]
		target, source, ps := collEnv(t, pe, 8, 16)
		src := MustLocal(pe, source)
		for i := range src {
			src[i] = int32(pe.MyPE()*10 + i)
		}
		if err := Collect(pe, target, source, mine, AllPEs(n), ps); err != nil {
			return err
		}
		var want []int32
		for k := 0; k < n; k++ {
			for i := 0; i < sizes[k]; i++ {
				want = append(want, int32(k*10+i))
			}
		}
		got := MustLocal(pe, target)
		for i, w := range want {
			if got[i] != w {
				t.Fatalf("PE %d: collect[%d] = %d, want %d", pe.MyPE(), i, got[i], w)
			}
		}
		return pe.BarrierAll()
	})
}

func TestCollectTotalOverflow(t *testing.T) {
	_, err := Run(gxCfg(3), func(pe *PE) error {
		target, source, ps := collEnv(t, pe, 8, 10)
		return Collect(pe, target, source, 8, AllPEs(3), ps) // 24 > 10
	})
	if !errors.Is(err, ErrBounds) {
		t.Errorf("collect overflow: %v", err)
	}
}

// TestCollectZeroElements: every concatenating collective must accept an
// empty contribution from every PE — the stage-2 pull of a zero-length
// concatenation must be skipped, not issued as a zero-byte Get.
func TestCollectZeroElements(t *testing.T) {
	const n = 4
	kinds := []struct {
		name string
		run  func(pe *PE, target, source Ref[int32], ps PSync) error
	}{
		{"fcollect", func(pe *PE, target, source Ref[int32], ps PSync) error {
			return FCollect(pe, target, source, 0, AllPEs(n), ps)
		}},
		{"collect", func(pe *PE, target, source Ref[int32], ps PSync) error {
			return Collect(pe, target, source, 0, AllPEs(n), ps)
		}},
		{"fcollectrd", func(pe *PE, target, source Ref[int32], ps PSync) error {
			return FCollectRD(pe, target, source, 0, AllPEs(n), ps)
		}},
	}
	for _, k := range kinds {
		t.Run(k.name, func(t *testing.T) {
			runT(t, gxCfg(n), func(pe *PE) error {
				target, source, ps := collEnv(t, pe, 4, 16)
				sentinel := MustLocal(pe, target)
				for i := range sentinel {
					sentinel[i] = -7
				}
				if err := k.run(pe, target, source, ps); err != nil {
					return err
				}
				// Nothing was contributed, so nothing may have landed.
				got := MustLocal(pe, target)
				for i, v := range got {
					if v != -7 {
						t.Errorf("PE %d: target[%d] = %d after empty %s, want untouched",
							pe.MyPE(), i, v, k.name)
						break
					}
				}
				return pe.BarrierAll()
			})
		})
	}
}

// TestMulElems covers the total-size overflow guard shared by FCollect and
// FCollectRD. (It is unreachable through the public API today — nelems is
// bounded by an allocated source first — but guards the slice-bounds
// arithmetic against future callers.)
func TestMulElems(t *testing.T) {
	if got, err := mulElems(6, 4); err != nil || got != 24 {
		t.Errorf("mulElems(6, 4) = %d, %v", got, err)
	}
	if got, err := mulElems(0, 32); err != nil || got != 0 {
		t.Errorf("mulElems(0, 32) = %d, %v", got, err)
	}
	if _, err := mulElems(1<<62, 4); !errors.Is(err, ErrBounds) {
		t.Errorf("overflowing product: %v, want ErrBounds", err)
	}
}

// TestCollectRejectsMalformedSignals injects raw UDN control signals into
// a live Collect, impersonating a participant, and checks that the
// protocol rejects malformed payloads instead of silently reading zeros.
func TestCollectRejectsMalformedSignals(t *testing.T) {
	t.Run("negative-size-report", func(t *testing.T) {
		var rootErr error
		runT(t, gxCfg(2), func(pe *PE) error {
			target, source, ps := collEnv(t, pe, 4, 8)
			as := AllPEs(2)
			if pe.MyPE() == 0 {
				rootErr = Collect(pe, target, source, 2, as, ps)
				return nil
			}
			// Mimic the member's entry, then report a negative size.
			gen := pe.nextCollGen(as)
			tag := asTag(as, gen) ^ 0x5bd1e995
			if err := pe.barrierUDN(as); err != nil {
				return err
			}
			return pe.sendSig(0, tag, ^uint64(0), false)
		})
		if !errors.Is(rootErr, ErrBadActiveSet) || !strings.Contains(rootErr.Error(), "negative") {
			t.Errorf("root error = %v, want ErrBadActiveSet negative size report", rootErr)
		}
	})
	t.Run("short-offset-reply", func(t *testing.T) {
		var memberErr error
		runT(t, gxCfg(2), func(pe *PE) error {
			target, source, ps := collEnv(t, pe, 4, 8)
			as := AllPEs(2)
			if pe.MyPE() == 1 {
				memberErr = Collect(pe, target, source, 2, as, ps)
				return nil
			}
			// Mimic the root: consume the size report, then reply with one
			// word where the protocol requires (offset, total).
			gen := pe.nextCollGen(as)
			tag := asTag(as, gen) ^ 0x5bd1e995
			if err := pe.barrierUDN(as); err != nil {
				return err
			}
			if _, _, _, err := pe.recvSig(tag, false); err != nil {
				return err
			}
			return pe.sendSig(1, tag, 3, false)
		})
		if !errors.Is(memberErr, ErrBadActiveSet) || !strings.Contains(memberErr.Error(), "offset reply") {
			t.Errorf("member error = %v, want ErrBadActiveSet short offset reply", memberErr)
		}
	})
}

func reduceEnv(t *testing.T, pe *PE, n int) (target, source, pwrk Ref[int64], ps PSync) {
	t.Helper()
	var err error
	if target, err = Malloc[int64](pe, n); err != nil {
		t.Fatal(err)
	}
	if source, err = Malloc[int64](pe, n); err != nil {
		t.Fatal(err)
	}
	wn := n/2 + 1
	if wn < ReduceMinWrkSize {
		wn = ReduceMinWrkSize
	}
	if need := rdWrkNeed(n, 16); need > wn {
		wn = need // allow the recursive-doubling engine in tests
	}
	if pwrk, err = Malloc[int64](pe, wn); err != nil {
		t.Fatal(err)
	}
	if ps, err = Malloc[int64](pe, ReduceSyncSize); err != nil {
		t.Fatal(err)
	}
	return
}

func TestReductionOps(t *testing.T) {
	const n, nelems = 6, 10
	runT(t, gxCfg(n), func(pe *PE) error {
		target, source, pwrk, ps := reduceEnv(t, pe, nelems)
		src := MustLocal(pe, source)
		for i := range src {
			src[i] = int64(pe.MyPE() + i + 1)
		}
		as := AllPEs(n)

		if err := SumToAll(pe, target, source, nelems, as, pwrk, ps); err != nil {
			return err
		}
		for i, got := range MustLocal(pe, target) {
			want := int64(0)
			for k := 0; k < n; k++ {
				want += int64(k + i + 1)
			}
			if got != want {
				t.Fatalf("sum[%d] = %d, want %d", i, got, want)
			}
		}

		if err := MinToAll(pe, target, source, nelems, as, pwrk, ps); err != nil {
			return err
		}
		for i, got := range MustLocal(pe, target) {
			if got != int64(i+1) { // PE 0's value
				t.Fatalf("min[%d] = %d, want %d", i, got, i+1)
			}
		}

		if err := MaxToAll(pe, target, source, nelems, as, pwrk, ps); err != nil {
			return err
		}
		for i, got := range MustLocal(pe, target) {
			if got != int64(n+i) {
				t.Fatalf("max[%d] = %d, want %d", i, got, n+i)
			}
		}

		if err := ProdToAll(pe, target, source, nelems, as, pwrk, ps); err != nil {
			return err
		}
		for i, got := range MustLocal(pe, target) {
			want := int64(1)
			for k := 0; k < n; k++ {
				want *= int64(k + i + 1)
			}
			if got != want {
				t.Fatalf("prod[%d] = %d, want %d", i, got, want)
			}
		}

		// Bitwise ops.
		for i := range src {
			src[i] = 1 << uint(pe.MyPE())
		}
		if err := OrToAll(pe, target, source, nelems, as, pwrk, ps); err != nil {
			return err
		}
		for i, got := range MustLocal(pe, target) {
			if got != (1<<n)-1 {
				t.Fatalf("or[%d] = %b", i, got)
			}
		}
		if err := AndToAll(pe, target, source, nelems, as, pwrk, ps); err != nil {
			return err
		}
		for i, got := range MustLocal(pe, target) {
			if got != 0 {
				t.Fatalf("and[%d] = %b", i, got)
			}
		}
		if err := XorToAll(pe, target, source, nelems, as, pwrk, ps); err != nil {
			return err
		}
		for i, got := range MustLocal(pe, target) {
			if got != (1<<n)-1 {
				t.Fatalf("xor[%d] = %b", i, got)
			}
		}
		return pe.BarrierAll()
	})
}

func TestFloatReduction(t *testing.T) {
	const n, nelems = 4, 8
	runT(t, gxCfg(n), func(pe *PE) error {
		target, err := Malloc[float64](pe, nelems)
		if err != nil {
			return err
		}
		source, err := Malloc[float64](pe, nelems)
		if err != nil {
			return err
		}
		pwrk, err := Malloc[float64](pe, ReduceMinWrkSize)
		if err != nil {
			return err
		}
		ps, err := Malloc[int64](pe, ReduceSyncSize)
		if err != nil {
			return err
		}
		src := MustLocal(pe, source)
		for i := range src {
			src[i] = 0.5 * float64(pe.MyPE()+1)
		}
		if err := SumToAll(pe, target, source, nelems, AllPEs(n), pwrk, ps); err != nil {
			return err
		}
		want := 0.5 * float64(n*(n+1)/2)
		for i, got := range MustLocal(pe, target) {
			if got != want {
				t.Fatalf("fsum[%d] = %v, want %v", i, got, want)
			}
		}
		return pe.BarrierAll()
	})
}

// TestReduceNaiveVsRD checks the future-work recursive-doubling engine
// against the paper's naive engine: identical results, and at scale the
// log-depth algorithm finishes faster in virtual time.
func TestReduceNaiveVsRD(t *testing.T) {
	const n, nelems = 16, 256
	var naiveT, rdT vtime.Duration
	for _, mode := range []string{"naive", "rd"} {
		mode := mode
		runT(t, gxCfg(n), func(pe *PE) error {
			target, source, pwrk, ps := reduceEnv(t, pe, nelems)
			src := MustLocal(pe, source)
			for i := range src {
				src[i] = int64(pe.MyPE())*7 + int64(i)
			}
			if err := pe.BarrierAll(); err != nil {
				return err
			}
			pe.clock.Set(vtime.Time(vtime.Millisecond))
			var err error
			if mode == "naive" {
				err = SumToAllNaive(pe, target, source, nelems, AllPEs(n), pwrk, ps)
			} else {
				err = SumToAllRD(pe, target, source, nelems, AllPEs(n), pwrk, ps)
			}
			if err != nil {
				return err
			}
			if pe.MyPE() == 0 {
				d := pe.Now().Sub(vtime.Time(vtime.Millisecond))
				if mode == "naive" {
					naiveT = d
				} else {
					rdT = d
				}
			}
			for i, got := range MustLocal(pe, target) {
				want := int64(0)
				for k := 0; k < n; k++ {
					want += int64(k)*7 + int64(i)
				}
				if got != want {
					t.Fatalf("%s sum[%d] = %d, want %d", mode, i, got, want)
				}
			}
			return pe.BarrierAll()
		})
	}
	if rdT >= naiveT {
		t.Errorf("recursive doubling (%v) should beat naive (%v) at 16 PEs", rdT, naiveT)
	}
}

func TestReduceRDValidation(t *testing.T) {
	runT(t, gxCfg(3), func(pe *PE) error {
		target, source, pwrk, ps := reduceEnv(t, pe, 4)
		// 3 PEs: not a power of two.
		if err := SumToAllRD(pe, target, source, 4, AllPEs(3), pwrk, ps); !errors.Is(err, ErrBadActiveSet) {
			t.Errorf("non-pow2 RD: %v", err)
		}
		return nil
	})
}

func TestReduceSubset(t *testing.T) {
	// Reduce over the even PEs only.
	const n = 6
	as := ActiveSet{Start: 0, LogStride: 1, Size: 3}
	runT(t, gxCfg(n), func(pe *PE) error {
		target, source, pwrk, ps := reduceEnv(t, pe, 4)
		src := MustLocal(pe, source)
		for i := range src {
			src[i] = int64(pe.MyPE())
		}
		if as.Contains(pe.MyPE()) {
			if err := SumToAll(pe, target, source, 4, as, pwrk, ps); err != nil {
				return err
			}
			for i, got := range MustLocal(pe, target) {
				if got != 0+2+4 {
					t.Fatalf("subset sum[%d] = %d", i, got)
				}
			}
		}
		return pe.BarrierAll()
	})
}

// TestConcurrentDisjointCollectives runs independent collectives on
// disjoint halves of the machine simultaneously — broadcasts on one half,
// reductions on the other, repeatedly and out of phase — verifying no
// cross-talk between active sets.
func TestConcurrentDisjointCollectives(t *testing.T) {
	const n, nelems = 8, 32
	lo := ActiveSet{Start: 0, Size: 4}
	hi := ActiveSet{Start: 4, Size: 4}
	runT(t, gxCfg(n), func(pe *PE) error {
		target, source, ps := collEnv(t, pe, nelems, nelems)
		pwrk, err := Malloc[int32](pe, nelems/2+ReduceMinWrkSize)
		if err != nil {
			return err
		}
		src := MustLocal(pe, source)
		for i := range src {
			src[i] = int32(pe.MyPE() + 1)
		}
		if pe.MyPE() < 4 {
			// Lower half: a run of broadcasts from varying roots.
			for r := 0; r < 6; r++ {
				if err := BroadcastPull(pe, target, source, nelems, r%4, lo, ps); err != nil {
					return err
				}
				if idx, _ := lo.Index(pe.MyPE()); idx != r%4 {
					if got := MustLocal(pe, target)[0]; got != int32(lo.PE(r%4)+1) {
						t.Fatalf("PE %d round %d: bcast got %d", pe.MyPE(), r, got)
					}
				}
			}
		} else {
			// Upper half: a different number of collective calls, out of
			// phase with the lower half.
			for r := 0; r < 4; r++ {
				if err := SumToAllNaive(pe, target, source, nelems, hi, pwrk, ps); err != nil {
					return err
				}
				want := int32(5 + 6 + 7 + 8)
				for i, got := range MustLocal(pe, target) {
					if got != want {
						t.Fatalf("PE %d round %d: sum[%d] = %d, want %d", pe.MyPE(), r, i, got, want)
					}
				}
			}
		}
		return pe.BarrierAll()
	})
}

// TestFCollectRD: the recursive-doubling allgather must agree with the
// naive FCollect and beat it in virtual time at scale.
func TestFCollectRD(t *testing.T) {
	const n, nelems = 16, 64
	var naiveT, rdT vtime.Duration
	runT(t, gxCfg(n), func(pe *PE) error {
		target, source, ps := collEnv(t, pe, nelems, n*nelems)
		target2, err := Malloc[int32](pe, n*nelems)
		if err != nil {
			return err
		}
		src := MustLocal(pe, source)
		for i := range src {
			src[i] = int32(pe.MyPE()*100 + i)
		}
		if err := pe.AlignClocks(); err != nil {
			return err
		}
		t0 := pe.Now()
		if err := FCollect(pe, target, source, nelems, AllPEs(n), ps); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			naiveT = pe.Now().Sub(t0)
		}
		if err := pe.AlignClocks(); err != nil {
			return err
		}
		t0 = pe.Now()
		if err := FCollectRD(pe, target2, source, nelems, AllPEs(n), ps); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			rdT = pe.Now().Sub(t0)
		}
		a, b := MustLocal(pe, target), MustLocal(pe, target2)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("PE %d: RD fcollect differs at %d: %d vs %d", pe.MyPE(), i, b[i], a[i])
			}
		}
		// Subset RD, power-of-two stride set.
		sub := ActiveSet{Start: 0, LogStride: 1, Size: 8}
		if sub.Contains(pe.MyPE()) {
			if err := FCollectRD(pe, target2, source, nelems, sub, ps); err != nil {
				return err
			}
			got := MustLocal(pe, target2)
			for k := 0; k < 8; k++ {
				if got[k*nelems] != int32(sub.PE(k)*100) {
					t.Fatalf("subset RD block %d = %d", k, got[k*nelems])
				}
			}
		}
		return pe.BarrierAll()
	})
	if rdT >= naiveT {
		t.Errorf("RD fcollect (%v) should beat naive (%v) at 16 PEs", rdT, naiveT)
	}

	// Validation: non-power-of-two sets are refused.
	runT(t, gxCfg(3), func(pe *PE) error {
		target, source, ps := collEnv(t, pe, 8, 24)
		if err := FCollectRD(pe, target, source, 8, AllPEs(3), ps); !errors.Is(err, ErrBadActiveSet) {
			t.Errorf("non-pow2 RD fcollect: %v", err)
		}
		return nil
	})
}
