package core

import (
	"errors"
	"sync"
	"testing"

	"tshmem/internal/arch"
	"tshmem/internal/vtime"
)

func TestBarrierAllAligns(t *testing.T) {
	const n = 8
	var mu sync.Mutex
	var maxBefore vtime.Time
	afters := make([]vtime.Time, n)
	runT(t, gxCfg(n), func(pe *PE) error {
		// Stagger arrivals in virtual time.
		pe.clock.Advance(vtime.Duration(pe.MyPE()) * vtime.Microsecond)
		mu.Lock()
		if pe.Now() > maxBefore {
			maxBefore = pe.Now()
		}
		mu.Unlock()
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		afters[pe.MyPE()] = pe.Now()
		return nil
	})
	// Nobody leaves before the last arrival.
	for i, a := range afters {
		if a < maxBefore {
			t.Errorf("PE %d left the barrier at %v, before last arrival %v", i, a, maxBefore)
		}
	}
}

// TestFig8BarrierShape verifies the TSHMEM barrier's Figure 8 properties:
// latency grows with the number of tiles, the start tile leaves first
// (best case) and the last tile leaves last (worst case), the TILE-Gx
// barrier beats the TILEPro's, and at 36 tiles the TILEPro barrier lands
// near the paper's 3 us — vastly better than its 47.2 us TMC spin barrier.
func TestFig8BarrierShape(t *testing.T) {
	measure := func(cfg Config) (best, worst vtime.Duration) {
		n := cfg.NPEs
		lefts := make([]vtime.Duration, n)
		// All PEs enter the measured barrier at the same virtual instant,
		// so per-PE latency reflects leaving first vs last.
		start := vtime.Time(vtime.Millisecond)
		runT(t, cfg, func(pe *PE) error {
			if err := pe.BarrierAll(); err != nil {
				return err
			}
			pe.clock.Set(start)
			if err := pe.BarrierAll(); err != nil {
				return err
			}
			lefts[pe.MyPE()] = pe.Now().Sub(start)
			return nil
		})
		best, worst = lefts[0], lefts[0]
		for _, d := range lefts {
			if d < best {
				best = d
			}
			if d > worst {
				worst = d
			}
		}
		if lefts[0] != best {
			t.Errorf("start tile should leave first: %v vs best %v", lefts[0], best)
		}
		if lefts[n-1] != worst {
			t.Errorf("last tile should leave last: %v vs worst %v", lefts[n-1], worst)
		}
		return best, worst
	}

	gxBest, gxWorst := measure(gxCfg(36))
	proBest, proWorst := measure(proCfg(36))

	if gxWorst >= proWorst {
		t.Errorf("Gx barrier (%v) should beat Pro (%v)", gxWorst, proWorst)
	}
	if gxBest >= gxWorst || proBest >= proWorst {
		t.Error("best case must beat worst case")
	}
	// Paper: TILEPro64 TSHMEM barrier ~3 us at 36 tiles, far below the
	// 47.2 us TMC spin barrier.
	if us := proWorst.Us(); us < 1.5 || us > 5 {
		t.Errorf("Pro 36-tile barrier = %.2f us, want ~3", us)
	}
	if proWorst >= arch.Pro64().SpinBarrier.Latency(36) {
		t.Error("Pro TSHMEM barrier must vastly outperform the TMC spin barrier")
	}
	// Paper: on the TILE-Gx the TMC spin barrier outperforms the TSHMEM
	// barrier (1.5 us vs the UDN chain).
	if gxWorst <= arch.Gx8036().SpinBarrier.Latency(36) {
		t.Error("on the Gx the TMC spin barrier should win (paper S IV.C.1)")
	}

	// Latency grows with tiles.
	_, w8 := measure(gxCfg(8))
	if w8 >= gxWorst {
		t.Errorf("8-tile barrier (%v) should beat 36-tile (%v)", w8, gxWorst)
	}
}

func TestTMCSpinBarrierBackend(t *testing.T) {
	cfg := gxCfg(16)
	cfg.Barrier = TMCSpinBarrier
	lefts := make([]vtime.Duration, 16)
	runT(t, cfg, func(pe *PE) error {
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		start := pe.Now()
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		lefts[pe.MyPE()] = pe.Now().Sub(start)
		return nil
	})
	want := arch.Gx8036().SpinBarrier.Latency(16)
	for i, d := range lefts {
		if d != want {
			t.Errorf("PE %d spin-backed barrier = %v, want %v", i, d, want)
		}
	}
}

func TestActiveSetArithmetic(t *testing.T) {
	as := ActiveSet{Start: 2, LogStride: 1, Size: 4} // PEs 2,4,6,8
	members := []int{2, 4, 6, 8}
	for i, pe := range members {
		if got := as.PE(i); got != pe {
			t.Errorf("PE(%d) = %d, want %d", i, got, pe)
		}
		idx, ok := as.Index(pe)
		if !ok || idx != i {
			t.Errorf("Index(%d) = %d,%v", pe, idx, ok)
		}
		if !as.Contains(pe) {
			t.Errorf("Contains(%d) = false", pe)
		}
	}
	for _, pe := range []int{0, 1, 3, 5, 7, 9, 10} {
		if as.Contains(pe) {
			t.Errorf("Contains(%d) = true", pe)
		}
	}
	if err := as.validate(9); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	if err := as.validate(8); err == nil {
		t.Error("set exceeding NumPEs accepted")
	}
	if err := (ActiveSet{Start: -1, Size: 1}).validate(4); err == nil {
		t.Error("negative start accepted")
	}
	if err := (ActiveSet{Size: 0}).validate(4); err == nil {
		t.Error("empty set accepted")
	}
	if AllPEs(5) != (ActiveSet{0, 0, 5}) {
		t.Error("AllPEs wrong")
	}
}

func TestSubsetBarrier(t *testing.T) {
	// Two disjoint subsets barrier independently; members of one must not
	// need the other.
	const n = 8
	evens := ActiveSet{Start: 0, LogStride: 1, Size: 4}
	odds := ActiveSet{Start: 1, LogStride: 1, Size: 4}
	runT(t, gxCfg(n), func(pe *PE) error {
		set := evens
		if pe.MyPE()%2 == 1 {
			set = odds
		}
		for r := 0; r < 10; r++ {
			if err := pe.Barrier(set); err != nil {
				return err
			}
		}
		if err := pe.Barrier(AllPEs(n)); err != nil {
			return err
		}
		// Calling a barrier on a set we're not in must fail fast.
		other := evens
		if pe.MyPE()%2 == 0 {
			other = odds
		}
		if err := pe.Barrier(other); !errors.Is(err, ErrNotInSet) {
			t.Errorf("PE %d: foreign-set barrier: %v", pe.MyPE(), err)
		}
		return nil
	})
}

func TestStridedSubsetBarrier(t *testing.T) {
	// PEs 1,3,5,7 barrier while the others proceed; then all join.
	const n = 9
	set := ActiveSet{Start: 1, LogStride: 1, Size: 4}
	runT(t, gxCfg(n), func(pe *PE) error {
		if set.Contains(pe.MyPE()) {
			if err := pe.Barrier(set); err != nil {
				return err
			}
		}
		return pe.BarrierAll()
	})
}

func TestBarrierManyGenerations(t *testing.T) {
	// Hammer the barrier; clocks must stay aligned across generations.
	const n, rounds = 5, 200
	finals := make([]vtime.Time, n)
	runT(t, gxCfg(n), func(pe *PE) error {
		for r := 0; r < rounds; r++ {
			if err := pe.BarrierAll(); err != nil {
				return err
			}
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		finals[pe.MyPE()] = pe.Now()
		return nil
	})
	// After a final barrier, no PE's clock can lag the start tile's release
	// beyond the chain length.
	var min, max vtime.Time
	min = finals[0]
	for _, f := range finals {
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	if spread := max.Sub(min); spread > 5*vtime.Microsecond {
		t.Errorf("clock spread after %d barriers = %v, want < 5 us", rounds, spread)
	}
}

// TestBarrierRootRelease checks the evaluated-and-rejected release design:
// correct rendezvous, slower than the chain (the paper's ~2x observation),
// and refused across chips.
func TestBarrierRootRelease(t *testing.T) {
	const n = 12
	var chainW, rootW vtime.Duration
	lefts := make([]vtime.Duration, n)
	runT(t, gxCfg(n), func(pe *PE) error {
		if err := pe.AlignClocks(); err != nil {
			return err
		}
		start := pe.Now()
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		lefts[pe.MyPE()] = pe.Now().Sub(start)
		return nil
	})
	for _, d := range lefts {
		if d > chainW {
			chainW = d
		}
	}
	var maxBefore vtime.Time
	var mu sync.Mutex
	runT(t, gxCfg(n), func(pe *PE) error {
		pe.clock.Advance(vtime.Duration(pe.MyPE()) * vtime.Microsecond)
		mu.Lock()
		if pe.Now() > maxBefore {
			maxBefore = pe.Now()
		}
		mu.Unlock()
		if err := pe.BarrierRootRelease(AllPEs(n)); err != nil {
			return err
		}
		// Nobody may leave before the last arrival.
		if pe.Now() < maxBefore {
			t.Errorf("PE %d left at %v before last arrival %v", pe.MyPE(), pe.Now(), maxBefore)
		}
		// Aligned measurement for the cost comparison.
		if err := pe.AlignClocks(); err != nil {
			return err
		}
		start := pe.Now()
		if err := pe.BarrierRootRelease(AllPEs(n)); err != nil {
			return err
		}
		lefts[pe.MyPE()] = pe.Now().Sub(start)
		return nil
	})
	for _, d := range lefts {
		if d > rootW {
			rootW = d
		}
	}
	if rootW <= chainW {
		t.Errorf("root-release (%v) should be slower than the chain (%v)", rootW, chainW)
	}
	if r := float64(rootW) / float64(chainW); r < 1.4 || r > 2.8 {
		t.Errorf("root-release/chain ratio %.2f, paper observed ~2", r)
	}

	// Cross-chip refusal.
	runT(t, mcCfg(8, 2), func(pe *PE) error {
		if err := pe.BarrierRootRelease(AllPEs(8)); !errors.Is(err, ErrNotSupported) {
			t.Errorf("cross-chip root-release: %v", err)
		}
		return nil
	})
}
