package core

import (
	"bytes"
	"errors"
	"runtime"
	"testing"

	"tshmem/internal/arch"
	"tshmem/internal/fault"
	"tshmem/internal/profile"
	"tshmem/internal/vtime"
)

// profileBody extends the determinism body with a lock phase and a
// WaitUntil flag handoff, so every wait category the profiler knows can
// show up in the ledger.
func profileBody(pe *PE) error {
	if pe.prog.chip.UDNInterrupts {
		// The full determinism body includes static-static puts, which
		// need the TILE-Gx UDN interrupt redirection.
		if err := determinismBody(pe); err != nil {
			return err
		}
	} else {
		const n = 256
		x, err := Malloc[int64](pe, n)
		if err != nil {
			return err
		}
		y, err := Malloc[int64](pe, n)
		if err != nil {
			return err
		}
		next := (pe.MyPE() + 1) % pe.NumPEs()
		for iter := 0; iter < 3; iter++ {
			if err := Put(pe, y, x, n, next); err != nil {
				return err
			}
			if err := pe.BarrierAll(); err != nil {
				return err
			}
		}
	}
	lk, err := Malloc[int64](pe, 1)
	if err != nil {
		return err
	}
	ctr, err := Malloc[int64](pe, 1)
	if err != nil {
		return err
	}
	flag, err := Malloc[int64](pe, 1)
	if err != nil {
		return err
	}
	if err := pe.BarrierAll(); err != nil {
		return err
	}
	if err := pe.SetLock(lk); err != nil {
		return err
	}
	if _, err := FAdd(pe, ctr, 1, 0); err != nil {
		return err
	}
	if err := pe.ClearLock(lk); err != nil {
		return err
	}
	if err := pe.BarrierAll(); err != nil {
		return err
	}
	// Flag chain: each PE releases its right neighbor via an elemental put
	// observed by WaitUntil.
	if pe.MyPE() == 0 {
		if err := P(pe, flag, 1, (pe.MyPE()+1)%pe.NumPEs()); err != nil {
			return err
		}
	} else {
		if err := WaitUntil(pe, flag, CmpEQ, int64(1)); err != nil {
			return err
		}
		if pe.MyPE() != pe.NumPEs()-1 {
			if err := P(pe, flag, 1, pe.MyPE()+1); err != nil {
				return err
			}
		}
	}
	return pe.BarrierAll()
}

// checkProfile asserts the tentpole invariants on an assembled profile:
// every PE's blame categories sum exactly to its end time, the critical
// path tiles [0, makespan) contiguously, and the path's end equals the
// report's makespan.
func checkProfile(t *testing.T, rep *Report) {
	t.Helper()
	p := rep.Profile()
	if p == nil {
		t.Fatal("Config.Profile was set but Report.Profile() is nil")
	}
	if p.Makespan != rep.MaxTime {
		t.Fatalf("profile makespan %v != report makespan %v", p.Makespan, rep.MaxTime)
	}
	for i := range p.PEs {
		pp := &p.PEs[i]
		var sum vtime.Duration
		for c := profile.Category(0); c < profile.NumCategories; c++ {
			if pp.Blame[c] < 0 {
				t.Fatalf("PE %d: negative blame %v in %s (double attribution)",
					i, pp.Blame[c], c)
			}
			sum += pp.Blame[c]
		}
		if sum != vtime.Duration(pp.End) {
			t.Fatalf("PE %d: ledger sums to %v, want end %v (delta %v)",
				i, sum, pp.End, vtime.Duration(pp.End)-sum)
		}
		if want := p.Makespan - vtime.Duration(pp.End); pp.Slack != want {
			t.Fatalf("PE %d: slack %v, want %v", i, pp.Slack, want)
		}
	}
	if len(p.Path) == 0 {
		t.Fatal("empty critical path")
	}
	if p.Path[0].Start != 0 {
		t.Fatalf("critical path starts at %v, want 0", p.Path[0].Start)
	}
	if got := p.Path[len(p.Path)-1].End; vtime.Duration(got) != p.Makespan {
		t.Fatalf("critical path ends at %v, want makespan %v", got, p.Makespan)
	}
	var sum vtime.Duration
	for i, s := range p.Path {
		if s.End <= s.Start {
			t.Fatalf("path step %d is empty: %+v", i, s)
		}
		if i > 0 && s.Start != p.Path[i-1].End {
			t.Fatalf("path step %d not contiguous with predecessor", i)
		}
		sum += s.Dur()
	}
	if sum != p.Makespan {
		t.Fatalf("path steps sum to %v, want makespan %v", sum, p.Makespan)
	}
}

// TestProfileLedgerInvariant runs the profiled program on both modeled
// chips and under each synchronization-algorithm family, checking the
// exact-partition invariant and path structure every time.
func TestProfileLedgerInvariant(t *testing.T) {
	chips := map[string]*arch.Chip{"gx": arch.Gx8036(), "pro": arch.Pro64()}
	for name, chip := range chips {
		for _, ba := range []BarrierAlgo{BarrierAlgoDefault, BarrierAlgoDissemination, BarrierAlgoCounter} {
			for _, la := range []LockAlgo{LockAlgoCAS, LockAlgoTicket, LockAlgoMCS} {
				rep, err := Run(Config{
					Chip: chip, NPEs: 8, HeapPerPE: 1 << 20,
					Profile: true, BarrierAlgo: ba, LockAlgo: la,
				}, profileBody)
				if err != nil {
					t.Fatalf("%s/%v/%v: %v", name, ba, la, err)
				}
				checkProfile(t, rep)
			}
		}
	}
}

// TestProfileWithoutConfigIsNil: an unprofiled run must carry no profile
// (the recorder pointers stay nil, keeping the hot paths allocation-free).
func TestProfileWithoutConfigIsNil(t *testing.T) {
	rep, err := Run(Config{NPEs: 4, HeapPerPE: 1 << 20}, determinismBody)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Profile() != nil {
		t.Fatal("unprofiled run returned a profile")
	}
}

// profileJSON renders a run's profile snapshot; byte equality of these
// snapshots is the determinism bar for the profiler.
func profileJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := rep.Profile().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func runProfiled(t *testing.T, chip *arch.Chip) *Report {
	t.Helper()
	rep, err := Run(Config{
		Chip: chip, NPEs: 8, HeapPerPE: 1 << 20, Profile: true,
	}, profileBody)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestProfileDeterministic requires the assembled profile — ledger and
// critical path — to be byte-identical across repeated runs and across
// GOMAXPROCS, on both chips.
func TestProfileDeterministic(t *testing.T) {
	for name, chip := range map[string]*arch.Chip{"gx": arch.Gx8036(), "pro": arch.Pro64()} {
		a := profileJSON(t, runProfiled(t, chip))
		b := profileJSON(t, runProfiled(t, chip))
		if !bytes.Equal(a, b) {
			t.Errorf("%s: profile diverged across repeat runs", name)
		}
		old := runtime.GOMAXPROCS(1)
		c := profileJSON(t, runProfiled(t, chip))
		runtime.GOMAXPROCS(old)
		if !bytes.Equal(a, c) {
			t.Errorf("%s: profile diverged across GOMAXPROCS", name)
		}
	}
}

// TestProfileVirtualTimeUnchanged: profiling must not move a single
// modeled picosecond — the recorder observes clocks, never advances them.
func TestProfileVirtualTimeUnchanged(t *testing.T) {
	plain, err := Run(Config{NPEs: 8, HeapPerPE: 1 << 20}, profileBody)
	if err != nil {
		t.Fatal(err)
	}
	prof := runProfiled(t, nil)
	if plain.MaxTime != prof.MaxTime || plain.MinTime != prof.MinTime {
		t.Fatalf("profiling moved virtual time: [%v,%v] vs [%v,%v]",
			plain.MinTime, plain.MaxTime, prof.MinTime, prof.MaxTime)
	}
	for i := range plain.PETimes {
		if plain.PETimes[i] != prof.PETimes[i] {
			t.Fatalf("PE %d virtual time moved under profiling: %v vs %v",
				i, plain.PETimes[i], prof.PETimes[i])
		}
	}
}

// TestProfileFaultAttribution runs the demo stall plan under the
// profiler: the starved PE's expired bounded wait must show up as
// fault.stall blame in its ledger, and the profiled faulted run must
// stay deterministic.
func TestProfileFaultAttribution(t *testing.T) {
	run := func() *Report {
		t.Helper()
		plan, err := fault.Parse("stall:pe=2,q=0")
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(Config{
			NPEs: 4, HeapPerPE: 1 << 16, Profile: true,
			Faults: plan, WaitGrace: testGrace,
		}, func(pe *PE) error {
			return pe.BarrierAll()
		})
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("Run error = %v, want ErrTimeout", err)
		}
		return rep
	}
	rep := run()
	checkProfile(t, rep)
	p := rep.Profile()
	if got := p.PEs[2].Blame[profile.CatFault]; got <= 0 {
		t.Fatalf("starved PE 2 has no fault.stall blame (ledger %v)", p.PEs[2].Blame)
	}
	if bytes.Equal(profileJSON(t, rep), profileJSON(t, run())) == false {
		t.Error("faulted profile diverged across repeat runs")
	}
}
