package core

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"tshmem/internal/fault"
	"tshmem/internal/stats"
)

// TestSyncAlgoNamesAlign pins the core enums to their stats counterparts:
// the two are kept in declaration order and statsID relies on that, so a
// drifted insertion shows up here instead of as mislabeled histograms.
func TestSyncAlgoNamesAlign(t *testing.T) {
	for _, a := range BarrierAlgos() {
		if got, want := a.statsID().String(), a.String(); got != want {
			t.Errorf("BarrierAlgo %d: stats name %q, core name %q", int(a), got, want)
		}
	}
	if got := BarrierAlgoDefault.statsID(); got != stats.BarrierAlgoLinear {
		t.Errorf("default barrier statsID = %v, want linear", got)
	}
	for _, a := range LockAlgos() {
		if got, want := a.statsID().String(), a.String(); got != want {
			t.Errorf("LockAlgo %d: stats name %q, core name %q", int(a), got, want)
		}
	}
	if int(numBarrierAlgos)-1 != int(stats.NumBarrierAlgos) {
		t.Errorf("%d core barrier algorithms vs %d stats ids", int(numBarrierAlgos)-1, int(stats.NumBarrierAlgos))
	}
	if int(numLockAlgos) != int(stats.NumLockAlgos) {
		t.Errorf("%d core lock algorithms vs %d stats ids", int(numLockAlgos), int(stats.NumLockAlgos))
	}
}

// TestSyncAlgoParse round-trips every canonical name plus the documented
// aliases and rejects garbage.
func TestSyncAlgoParse(t *testing.T) {
	for _, a := range BarrierAlgos() {
		got, err := ParseBarrierAlgo(a.String())
		if err != nil || got != a {
			t.Errorf("ParseBarrierAlgo(%q) = %v, %v", a.String(), got, err)
		}
	}
	for spec, want := range map[string]BarrierAlgo{
		"": BarrierAlgoDefault, "default": BarrierAlgoDefault,
		"spin": BarrierAlgoSpin, "mcs": BarrierAlgoMCSTree, "mcstree": BarrierAlgoMCSTree,
	} {
		if got, err := ParseBarrierAlgo(spec); err != nil || got != want {
			t.Errorf("ParseBarrierAlgo(%q) = %v, %v, want %v", spec, got, err, want)
		}
	}
	if _, err := ParseBarrierAlgo("bogus"); err == nil {
		t.Error("ParseBarrierAlgo accepted a bogus name")
	}
	for _, a := range LockAlgos() {
		got, err := ParseLockAlgo(a.String())
		if err != nil || got != a {
			t.Errorf("ParseLockAlgo(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseLockAlgo("bogus"); err == nil {
		t.Error("ParseLockAlgo accepted a bogus name")
	}
}

// TestBarrierAlgoConformance checks the defining property of a barrier
// under every algorithm and several set sizes (including sizes that are
// not powers of two, which exercise the tournament byes and ragged
// trees): no PE exits round r before every PE entered round r.
func TestBarrierAlgoConformance(t *testing.T) {
	for _, algo := range BarrierAlgos() {
		for _, n := range []int{1, 2, 5, 8, 13} {
			const rounds = 4
			var entered [rounds]int64
			_, err := Run(Config{NPEs: n, HeapPerPE: 1 << 16, BarrierAlgo: algo}, func(pe *PE) error {
				for r := 0; r < rounds; r++ {
					atomic.AddInt64(&entered[r], 1)
					if err := pe.BarrierAll(); err != nil {
						return err
					}
					if got := atomic.LoadInt64(&entered[r]); got != int64(n) {
						t.Errorf("%s n=%d round %d: PE %d exited with %d/%d entered",
							algo, n, r, pe.MyPE(), got, n)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("%s n=%d: %v", algo, n, err)
			}
		}
	}
}

// TestBarrierAlgoSubset rendezvouses the odd-rank half of the program
// under each subset-capable algorithm while even ranks stay out, and
// checks the spin barrier reports subsets as unsupported with a typed
// error.
func TestBarrierAlgoSubset(t *testing.T) {
	const n = 8
	half := ActiveSet{Start: 1, LogStride: 1, Size: n / 2}
	for _, algo := range []BarrierAlgo{
		BarrierAlgoLinear, BarrierAlgoCounter, BarrierAlgoDissemination,
		BarrierAlgoTournament, BarrierAlgoMCSTree,
	} {
		var entered int64
		_, err := Run(Config{NPEs: n, HeapPerPE: 1 << 16, BarrierAlgo: algo}, func(pe *PE) error {
			if half.Contains(pe.MyPE()) {
				atomic.AddInt64(&entered, 1)
				if err := pe.Barrier(half); err != nil {
					return err
				}
				if got := atomic.LoadInt64(&entered); got != int64(half.Size) {
					t.Errorf("%s: PE %d exited the subset barrier with %d/%d entered",
						algo, pe.MyPE(), got, half.Size)
				}
			}
			return pe.BarrierAll()
		})
		if err != nil {
			t.Fatalf("%s subset: %v", algo, err)
		}
	}
	_, err := Run(Config{NPEs: n, HeapPerPE: 1 << 16, BarrierAlgo: BarrierAlgoSpin}, func(pe *PE) error {
		if !half.Contains(pe.MyPE()) {
			return nil
		}
		return pe.Barrier(half)
	})
	if !errors.Is(err, ErrNotSupported) {
		t.Fatalf("spin subset barrier error = %v, want ErrNotSupported", err)
	}
}

// TestBarrierAlgoMultichip rejects the chip-local UDN algorithms at
// launch when the PEs span chips, and runs the multi-chip-capable ones.
func TestBarrierAlgoMultichip(t *testing.T) {
	for _, algo := range []BarrierAlgo{
		BarrierAlgoDissemination, BarrierAlgoTournament, BarrierAlgoMCSTree,
	} {
		_, err := Run(Config{NPEs: 8, NChips: 2, HeapPerPE: 1 << 16, BarrierAlgo: algo},
			func(pe *PE) error { return nil })
		if err == nil {
			t.Errorf("%s accepted a 2-chip config", algo)
		}
	}
	for _, algo := range []BarrierAlgo{BarrierAlgoLinear, BarrierAlgoCounter, BarrierAlgoSpin} {
		var entered int64
		_, err := Run(Config{NPEs: 8, NChips: 2, HeapPerPE: 1 << 16, BarrierAlgo: algo}, func(pe *PE) error {
			atomic.AddInt64(&entered, 1)
			if err := pe.BarrierAll(); err != nil {
				return err
			}
			if got := atomic.LoadInt64(&entered); got != 8 {
				t.Errorf("%s multichip: PE %d exited with %d/8 entered", algo, pe.MyPE(), got)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s on 2 chips: %v", algo, err)
		}
	}
}

// syncAlgoBody is the observed program the determinism tests replay: a
// few all-PE rounds with a subset barrier in between, plus enough puts
// around the barriers that a reordering would move clocks. src and dst
// are separate arrays so the incoming put never overlaps the bytes this
// PE is concurrently reading as its own put source.
func syncAlgoBody(pe *PE) error {
	src, err := Malloc[int64](pe, 32)
	if err != nil {
		return err
	}
	dst, err := Malloc[int64](pe, 32)
	if err != nil {
		return err
	}
	if err := pe.AlignClocks(); err != nil {
		return err
	}
	half := ActiveSet{Start: 0, LogStride: 1, Size: pe.NumPEs() / 2}
	for iter := 0; iter < 3; iter++ {
		if err := Put(pe, dst, src, 32, (pe.MyPE()+1)%pe.NumPEs()); err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if half.Contains(pe.MyPE()) && pe.prog.cfg.BarrierAlgo != BarrierAlgoSpin {
			if err := pe.Barrier(half); err != nil {
				return err
			}
		}
	}
	return pe.BarrierAll()
}

// TestBarrierAlgoDeterminism replays the observed program under every
// algorithm, repeated and with all PE goroutines serialized onto one OS
// thread: virtual times and counters must be bit-identical.
func TestBarrierAlgoDeterminism(t *testing.T) {
	for _, algo := range BarrierAlgos() {
		run := func() *Report {
			rep, err := Run(Config{NPEs: 8, HeapPerPE: 1 << 20, Observe: true, BarrierAlgo: algo},
				syncAlgoBody)
			if err != nil {
				t.Fatalf("%s: %v", algo, err)
			}
			return rep
		}
		a, b := run(), run()
		compareReports(t, algo.String()+"/repeat", a, b)
		old := runtime.GOMAXPROCS(1)
		serial := run()
		runtime.GOMAXPROCS(old)
		compareReports(t, algo.String()+"/gomaxprocs", a, serial)
		if a.MaxTime == 0 {
			t.Errorf("%s: program did no modeled work", algo)
		}
	}
}

// TestBarrierAlgoSanitizerClean checks each algorithm publishes the
// happens-before edge the sanitizer expects of a barrier: a put before
// the barrier, a read of the landed data after it, zero diagnostics.
func TestBarrierAlgoSanitizerClean(t *testing.T) {
	const n = 8
	for _, algo := range BarrierAlgos() {
		rep, err := Run(Config{NPEs: n, HeapPerPE: 1 << 16, Sanitize: true, BarrierAlgo: algo},
			func(pe *PE) error {
				x, err := Malloc[int64](pe, 1)
				if err != nil {
					return err
				}
				next := (pe.MyPE() + 1) % n
				if err := P(pe, x, int64(pe.MyPE()), next); err != nil {
					return err
				}
				if err := pe.BarrierAll(); err != nil {
					return err
				}
				prev := (pe.MyPE() + n - 1) % n
				if got := MustLocal(pe, x)[0]; got != int64(prev) {
					t.Errorf("%s: PE %d read %d, want %d", algo, pe.MyPE(), got, prev)
				}
				return pe.BarrierAll()
			})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(rep.Diagnostics) != 0 {
			t.Errorf("%s: sanitizer flagged a clean program: %v", algo, rep.Diagnostics)
		}
	}
}

// TestBarrierAlgoTimeout starves each new algorithm's barrier (one PE
// never arrives) under an armed fault budget: every waiter must unwind
// with a typed *TimeoutError attributing op "barrier" instead of
// deadlocking — the regression the library algorithms must share with
// the chain.
func TestBarrierAlgoTimeout(t *testing.T) {
	const n = 4
	for _, algo := range []BarrierAlgo{
		BarrierAlgoCounter, BarrierAlgoDissemination, BarrierAlgoTournament, BarrierAlgoMCSTree,
	} {
		rep, err := Run(Config{
			NPEs: n, HeapPerPE: 1 << 16, BarrierAlgo: algo,
			Faults: &fault.Plan{}, WaitGrace: testGrace,
		}, func(pe *PE) error {
			if pe.MyPE() == n-1 {
				return nil // never reaches the barrier
			}
			return pe.BarrierAll()
		})
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("%s: Run error = %v, want ErrTimeout", algo, err)
		}
		var te *TimeoutError
		if !errors.As(err, &te) {
			t.Fatalf("%s: error %v carries no *TimeoutError", algo, err)
		}
		if te.Op != "barrier" {
			t.Errorf("%s: timeout op %q, want \"barrier\"", algo, te.Op)
		}
		if te.Deadline != te.Start.Add(DefaultWaitBudget) {
			t.Errorf("%s: deadline %v is not start %v + budget", algo, te.Deadline, te.Start)
		}
		if rep == nil {
			t.Fatalf("%s: no report alongside the timeout", algo)
		}
		if diags := timeoutDiags(rep); len(diags) == 0 {
			t.Errorf("%s: no timeout diagnostic recorded", algo)
		}
	}
}

// TestLockAlgoMutualExclusion hammers one lock from every PE under each
// algorithm and fails if two PEs ever overlap in the critical section
// (host-level check, independent of the modeled clocks) or an increment
// is lost.
func TestLockAlgoMutualExclusion(t *testing.T) {
	const n, iters = 6, 5
	for _, algo := range LockAlgos() {
		var inside, count int64
		_, err := Run(Config{NPEs: n, HeapPerPE: 1 << 16, LockAlgo: algo}, func(pe *PE) error {
			lk, err := Malloc[int64](pe, 1)
			if err != nil {
				return err
			}
			for i := 0; i < iters; i++ {
				if err := pe.SetLock(lk); err != nil {
					return err
				}
				if !atomic.CompareAndSwapInt64(&inside, 0, 1) {
					t.Errorf("%s: PE %d entered an occupied critical section", algo, pe.MyPE())
				}
				count++
				runtime.Gosched()
				if !atomic.CompareAndSwapInt64(&inside, 1, 0) {
					t.Errorf("%s: critical section emptied twice", algo)
				}
				if err := pe.ClearLock(lk); err != nil {
					return err
				}
			}
			return pe.BarrierAll()
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if count != n*iters {
			t.Errorf("%s: %d increments survived, want %d", algo, count, n*iters)
		}
	}
}

// TestLockAlgoTestLock exercises the non-blocking probe under each
// algorithm: a free lock is taken, a held lock reports busy, and the
// holder releases cleanly.
func TestLockAlgoTestLock(t *testing.T) {
	for _, algo := range LockAlgos() {
		_, err := Run(Config{NPEs: 2, HeapPerPE: 1 << 16, LockAlgo: algo}, func(pe *PE) error {
			lk, err := Malloc[int64](pe, 1)
			if err != nil {
				return err
			}
			if pe.MyPE() == 0 {
				held, err := pe.TestLock(lk)
				if err != nil {
					return err
				}
				if held {
					t.Errorf("%s: free lock reported held", algo)
				}
			}
			if err := pe.BarrierAll(); err != nil {
				return err
			}
			if pe.MyPE() == 1 {
				held, err := pe.TestLock(lk)
				if err != nil {
					return err
				}
				if !held {
					t.Errorf("%s: held lock reported free", algo)
				}
			}
			if err := pe.BarrierAll(); err != nil {
				return err
			}
			if pe.MyPE() == 0 {
				if err := pe.ClearLock(lk); err != nil {
					return err
				}
			}
			return pe.BarrierAll()
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

// TestLockAlgoSanitizerClean runs a lock-guarded shared update under the
// sanitizer for each algorithm: the acquire/release edges must order the
// puts (with the usual Quiet before ClearLock) so a correct program
// draws zero diagnostics.
func TestLockAlgoSanitizerClean(t *testing.T) {
	const n = 4
	for _, algo := range LockAlgos() {
		rep, err := Run(Config{NPEs: n, HeapPerPE: 1 << 16, Sanitize: true, LockAlgo: algo},
			func(pe *PE) error {
				lk, err := Malloc[int64](pe, 1)
				if err != nil {
					return err
				}
				shared, err := Malloc[int64](pe, 1)
				if err != nil {
					return err
				}
				if err := pe.SetLock(lk); err != nil {
					return err
				}
				v, err := G(pe, shared, 0)
				if err != nil {
					return err
				}
				if err := P(pe, shared, v+1, 0); err != nil {
					return err
				}
				pe.Quiet()
				if err := pe.ClearLock(lk); err != nil {
					return err
				}
				return pe.BarrierAll()
			})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(rep.Diagnostics) != 0 {
			t.Errorf("%s: sanitizer flagged a lock-guarded update: %v", algo, rep.Diagnostics)
		}
	}
}

// TestLockAlgoClearUnheld verifies every algorithm rejects releasing a
// lock the caller does not hold.
func TestLockAlgoClearUnheld(t *testing.T) {
	for _, algo := range LockAlgos() {
		_, err := Run(Config{NPEs: 1, HeapPerPE: 1 << 16, LockAlgo: algo}, func(pe *PE) error {
			lk, merr := Malloc[int64](pe, 1)
			if merr != nil {
				return merr
			}
			return pe.ClearLock(lk)
		})
		if err == nil {
			t.Errorf("%s: clearing an unheld lock succeeded", algo)
		}
	}
}

// TestLockAlgoTimeout starves the queueing lock algorithms (the holder
// never releases) under an armed fault budget: the waiter must surface a
// typed *TimeoutError attributing op "lock" instead of hanging.
func TestLockAlgoTimeout(t *testing.T) {
	for _, algo := range []LockAlgo{LockAlgoTicket, LockAlgoMCS} {
		_, err := Run(Config{
			NPEs: 2, HeapPerPE: 1 << 16, LockAlgo: algo,
			Faults: &fault.Plan{}, WaitGrace: testGrace,
		}, func(pe *PE) error {
			lk, merr := Malloc[int64](pe, 1)
			if merr != nil {
				return merr
			}
			flag, merr := Malloc[int64](pe, 1)
			if merr != nil {
				return merr
			}
			if pe.MyPE() == 0 {
				if err := pe.SetLock(lk); err != nil {
					return err
				}
				return P(pe, flag, 1, 1) // hold the lock forever
			}
			if err := WaitUntil(pe, flag, CmpNE, 0); err != nil {
				return err
			}
			return pe.SetLock(lk)
		})
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("%s: Run error = %v, want ErrTimeout", algo, err)
		}
		var te *TimeoutError
		if !errors.As(err, &te) {
			t.Fatalf("%s: error %v carries no *TimeoutError", algo, err)
		}
		if te.Op != "lock" || te.PE != 1 {
			t.Errorf("%s: timeout names PE %d op %q, want PE 1 op \"lock\"", algo, te.PE, te.Op)
		}
	}
}
