package core

import (
	"errors"
	"testing"

	"tshmem/internal/vtime"
)

func TestStaticDeclare(t *testing.T) {
	runT(t, gxCfg(3), func(pe *PE) error {
		s, err := DeclareStatic[int32](pe, "counters", 8)
		if err != nil {
			return err
		}
		if !s.IsStatic() || s.Len() != 8 {
			t.Errorf("static ref wrong: %+v", s)
		}
		v := MustLocal(pe, s)
		v[0] = int32(pe.MyPE())
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		// Each PE's instance is private: my write didn't leak.
		if v[0] != int32(pe.MyPE()) {
			t.Errorf("PE %d: private static clobbered: %d", pe.MyPE(), v[0])
		}
		// Statics are not directly addressable remotely.
		if AddrAccessible(pe, s, (pe.MyPE()+1)%3) {
			t.Error("static object reported addr-accessible")
		}
		if p := Ptr(pe, s, (pe.MyPE()+1)%3); p != nil {
			t.Error("Ptr to a static object should be nil")
		}
		return pe.BarrierAll()
	})
}

func TestStaticDeclareValidation(t *testing.T) {
	_, err := Run(gxCfg(2), func(pe *PE) error {
		// PEs disagree on the size: must be detected.
		_, err := DeclareStatic[int32](pe, "bad", 4+pe.MyPE())
		return err
	})
	if !errors.Is(err, ErrAsymmetric) {
		t.Errorf("asymmetric static declare: %v", err)
	}
	runT(t, gxCfg(1), func(pe *PE) error {
		if _, err := DeclareStatic[int32](pe, "", 4); err == nil {
			t.Error("unnamed static accepted")
		}
		if _, err := DeclareStatic[int32](pe, "z", 0); err == nil {
			t.Error("empty static accepted")
		}
		if _, err := DeclareStatic[int32](pe, "dup", 4); err != nil {
			return err
		}
		if _, err := DeclareStatic[int32](pe, "dup", 4); err == nil {
			t.Error("duplicate declare accepted")
		}
		return nil
	})
}

// TestStaticTransferCombos exercises all four target-source combinations of
// Figure 7 on the TILE-Gx and verifies the data as well as the redirection
// accounting.
func TestStaticTransferCombos(t *testing.T) {
	const n = 64
	runT(t, gxCfg(2), func(pe *PE) error {
		dyn, err := Malloc[int64](pe, n)
		if err != nil {
			return err
		}
		st, err := DeclareStatic[int64](pe, "vec", n)
		if err != nil {
			return err
		}
		fill := func(r Ref[int64], base int64) {
			v := MustLocal(pe, r)
			for i := range v {
				v[i] = base + int64(i)
			}
		}
		check := func(r Ref[int64], base int64, what string) {
			v := MustLocal(pe, r)
			for i := range v {
				if v[i] != base+int64(i) {
					t.Fatalf("PE %d %s: [%d] = %d, want %d", pe.MyPE(), what, i, v[i], base+int64(i))
				}
			}
		}
		zero := func(r Ref[int64]) {
			v := MustLocal(pe, r)
			for i := range v {
				v[i] = 0
			}
		}

		// dynamic target <- static source put (direct: any source works).
		fill(st, 1000*int64(pe.MyPE()))
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if err := Put(pe, dyn, st, n, 1); err != nil {
				return err
			}
			if pe.Stats().Redirects != 0 {
				t.Error("dynamic-static put should not redirect")
			}
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 1 {
			check(dyn, 0, "dyn<-static put")
			zero(dyn)
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}

		// static target <- dynamic source put (redirected to remote tile).
		fill(dyn, 2000+1000*int64(pe.MyPE()))
		zero(st)
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			before := pe.Stats().Redirects
			if err := Put(pe, st, dyn, n, 1); err != nil {
				return err
			}
			if pe.Stats().Redirects != before+1 {
				t.Error("static-dynamic put must redirect once")
			}
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 1 {
			check(st, 2000, "static<-dyn put")
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}

		// static target <- static source put (temporary buffer, 2 copies).
		fill(st, 5000+1000*int64(pe.MyPE()))
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if err := Put(pe, st, st, n, 1); err != nil {
				return err
			}
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 1 {
			check(st, 5000, "static<-static put")
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}

		// dynamic target <- static source get (redirected).
		fill(st, 7000+1000*int64(pe.MyPE()))
		zero(dyn)
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if err := Get(pe, dyn, st, n, 1); err != nil {
				return err
			}
			check(dyn, 8000, "dyn<-static get")
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}

		// static target <- static source get (temp buffer).
		if pe.MyPE() == 0 {
			if err := Get(pe, st, st, n, 1); err != nil {
				return err
			}
			check(st, 8000, "static<-static get")
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}

		// static target <- dynamic source get (direct: local write).
		fill(dyn, 9000+1000*int64(pe.MyPE()))
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if err := Get(pe, st, dyn, n, 1); err != nil {
				return err
			}
			check(st, 10000, "static<-dyn get")
		}
		return pe.BarrierAll()
	})
}

// TestStaticNotSupportedOnTILEPro pins the paper's limitation: "Static
// symmetric variable transfers in TSHMEM are not currently supported on the
// TILEPro architecture due to lack of support for UDN interrupts."
func TestStaticNotSupportedOnTILEPro(t *testing.T) {
	runT(t, proCfg(2), func(pe *PE) error {
		dyn, err := Malloc[int64](pe, 8)
		if err != nil {
			return err
		}
		st, err := DeclareStatic[int64](pe, "vec", 8)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if err := Put(pe, st, dyn, 8, 1); !errors.Is(err, ErrNotSupported) {
				t.Errorf("static put on TILEPro: %v", err)
			}
			if err := Get(pe, dyn, st, 8, 1); !errors.Is(err, ErrNotSupported) {
				t.Errorf("static get on TILEPro: %v", err)
			}
			// Local static access still works.
			if err := Put(pe, st, dyn, 8, 0); err != nil {
				t.Errorf("local static put on TILEPro: %v", err)
			}
			// Dynamic-target put with a static source works (direct path).
			if err := Put(pe, dyn, st, 8, 1); err != nil {
				t.Errorf("dynamic-static put on TILEPro: %v", err)
			}
		}
		return pe.BarrierAll()
	})
}

// TestFig7CostOrdering pins the Figure 7 cost hierarchy on the TILE-Gx:
// dynamic-dynamic == dynamic-static < redirected (static-dynamic) <
// static-static (temporary buffer, extra copy).
func TestFig7CostOrdering(t *testing.T) {
	const n = 4096 // 32 kB of int64
	var dd, ds, sd, ss vtime.Duration
	runT(t, gxCfg(2), func(pe *PE) error {
		dyn, err := Malloc[int64](pe, n)
		if err != nil {
			return err
		}
		dyn2, err := Malloc[int64](pe, n)
		if err != nil {
			return err
		}
		st, err := DeclareStatic[int64](pe, "v", n)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			measure := func(f func() error) vtime.Duration {
				t0 := pe.Now()
				if err := f(); err != nil {
					t.Fatal(err)
				}
				return pe.Now().Sub(t0)
			}
			dd = measure(func() error { return Put(pe, dyn2, dyn, n, 1) })
			ds = measure(func() error { return Put(pe, dyn2, st, n, 1) })
			sd = measure(func() error { return Put(pe, st, dyn, n, 1) })
			ss = measure(func() error { return Put(pe, st, st, n, 1) })
		}
		return pe.BarrierAll()
	})
	if !(dd > 0 && ds > 0 && sd > 0 && ss > 0) {
		t.Fatal("costs not measured")
	}
	// dynamic-static ~ dynamic-dynamic (same path).
	if r := float64(ds) / float64(dd); r < 0.9 || r > 1.1 {
		t.Errorf("ds/dd = %.2f, want ~1", r)
	}
	// Redirection: minor degradation only.
	if sd <= dd {
		t.Errorf("redirected put (%v) should cost more than direct (%v)", sd, dd)
	}
	if float64(sd) > 2.0*float64(dd) {
		t.Errorf("redirected put (%v) should be a minor penalty over direct (%v)", sd, dd)
	}
	// Static-static pays the extra copy: roughly 2x the redirected cost.
	if ss <= sd {
		t.Errorf("static-static (%v) must exceed redirected (%v)", ss, sd)
	}
	if r := float64(ss) / float64(sd); r < 1.4 || r > 3.0 {
		t.Errorf("ss/sd = %.2f, want ~2 (extra memcpy)", r)
	}
}
