package core

import (
	"errors"
	"testing"
)

func TestSwap(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		x, err := Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		if pe.MyPE() == 1 {
			MustLocal(pe, x)[0] = 7
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			old, err := Swap(pe, x, int64(42), 1)
			if err != nil {
				return err
			}
			if old != 7 {
				t.Errorf("swap returned %d, want 7", old)
			}
			v, err := G(pe, x, 1)
			if err != nil {
				return err
			}
			if v != 42 {
				t.Errorf("after swap: %d", v)
			}
		}
		return pe.BarrierAll()
	})
}

func TestSwapFloat(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		f, err := Malloc[float64](pe, 1)
		if err != nil {
			return err
		}
		MustLocal(pe, f)[0] = 1.25
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			old, err := Swap(pe, f, 2.5, 1)
			if err != nil {
				return err
			}
			if old != 1.25 {
				t.Errorf("float swap returned %v", old)
			}
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 1 && MustLocal(pe, f)[0] != 2.5 {
			t.Errorf("float swap did not store: %v", MustLocal(pe, f)[0])
		}
		return pe.BarrierAll()
	})
}

func TestCSwap(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		x, err := Malloc[int32](pe, 1)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			// Mismatch: no store.
			old, err := CSwap(pe, x, int32(5), int32(9), 1)
			if err != nil {
				return err
			}
			if old != 0 {
				t.Errorf("cswap mismatch returned %d", old)
			}
			// Match: store.
			old, err = CSwap(pe, x, int32(0), int32(9), 1)
			if err != nil || old != 0 {
				t.Errorf("cswap match: %d, %v", old, err)
			}
			v, _ := G(pe, x, 1)
			if v != 9 {
				t.Errorf("after cswap: %d", v)
			}
		}
		return pe.BarrierAll()
	})
}

// TestFAddConcurrent: every PE increments PE 0's counter concurrently; the
// total must be exact (atomicity) and the fetched values distinct.
func TestFAddConcurrent(t *testing.T) {
	const n, per = 8, 50
	seen := make([][]int64, n)
	runT(t, gxCfg(n), func(pe *PE) error {
		c, err := Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		mine := make([]int64, 0, per)
		for i := 0; i < per; i++ {
			old, err := FAdd(pe, c, int64(1), 0)
			if err != nil {
				return err
			}
			mine = append(mine, old)
		}
		seen[pe.MyPE()] = mine
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if v := MustLocal(pe, c)[0]; pe.MyPE() == 0 && v != n*per {
			t.Errorf("counter = %d, want %d", v, n*per)
		}
		return pe.BarrierAll()
	})
	// All fetched pre-values are distinct (each increment observed once).
	all := make(map[int64]bool)
	for _, s := range seen {
		for _, v := range s {
			if all[v] {
				t.Fatalf("duplicate fetched value %d", v)
			}
			all[v] = true
		}
	}
	if len(all) != n*per {
		t.Errorf("observed %d distinct values, want %d", len(all), n*per)
	}
}

func TestIncAddFInc(t *testing.T) {
	runT(t, gxCfg(3), func(pe *PE) error {
		c, err := Malloc[int32](pe, 1)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if err := Inc(pe, c, 0); err != nil {
			return err
		}
		if err := Add(pe, c, int32(10), 0); err != nil {
			return err
		}
		if _, err := FInc(pe, c, 0); err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if v := MustLocal(pe, c)[0]; v != 3*(1+10+1) {
				t.Errorf("counter = %d, want 36", v)
			}
		}
		return pe.BarrierAll()
	})
}

func TestAtomicValidation(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		st, err := DeclareStatic[int64](pe, "a", 1)
		if err != nil {
			return err
		}
		if _, err := Swap(pe, st, int64(1), 0); !errors.Is(err, ErrStatic) {
			t.Errorf("swap on static: %v", err)
		}
		dyn, err := Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		if _, err := Swap(pe, dyn, int64(1), 9); !errors.Is(err, ErrBadPE) {
			t.Errorf("swap bad PE: %v", err)
		}
		var zero Ref[int64]
		if _, err := Swap(pe, zero, int64(1), 0); !errors.Is(err, ErrStatic) {
			t.Errorf("swap zero ref: %v", err)
		}
		return pe.BarrierAll()
	})
}

// TestWaitUntilPingPong builds the classic flag protocol: PE 0 puts data
// then sets a flag with an elemental put; PE 1 waits on the flag and reads
// the data. The waiter's clock must land at or after the writer's.
func TestWaitUntilPingPong(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		data, err := Malloc[int64](pe, 64)
		if err != nil {
			return err
		}
		flag, err := Malloc[int32](pe, 1)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			buf := make([]int64, 64)
			for i := range buf {
				buf[i] = int64(i) * 3
			}
			if err := PutSlice(pe, data, buf, 1); err != nil {
				return err
			}
			pe.Fence() // order data before flag
			if err := P(pe, flag, int32(1), 1); err != nil {
				return err
			}
		} else {
			if err := WaitUntil(pe, flag, CmpEQ, int32(1)); err != nil {
				return err
			}
			v := MustLocal(pe, data)
			for i := range v {
				if v[i] != int64(i)*3 {
					t.Fatalf("data[%d] = %d after flag", i, v[i])
				}
			}
		}
		return pe.BarrierAll()
	})
}

func TestWaitUntilComparisons(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		v, err := Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			for i := int64(1); i <= 5; i++ {
				if err := P(pe, v, i*10, 1); err != nil {
					return err
				}
			}
		} else {
			if err := WaitUntil(pe, v, CmpGE, int64(10)); err != nil {
				return err
			}
			if err := WaitUntil(pe, v, CmpNE, int64(0)); err != nil {
				return err
			}
			if err := Wait(pe, v, int64(0)); err != nil {
				return err
			}
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		// Already-satisfied predicates return immediately.
		if pe.MyPE() == 1 {
			if err := WaitUntil(pe, v, CmpGT, int64(0)); err != nil {
				return err
			}
			if err := WaitUntil(pe, v, CmpLE, int64(50)); err != nil {
				return err
			}
			if err := WaitUntil(pe, v, CmpLT, int64(51)); err != nil {
				return err
			}
			if err := WaitUntil(pe, v, CmpEQ, int64(50)); err != nil {
				return err
			}
		}
		return pe.BarrierAll()
	})
}

func TestWaitUntilValidation(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		st, err := DeclareStatic[int64](pe, "w", 1)
		if err != nil {
			return err
		}
		if err := WaitUntil(pe, st, CmpEQ, int64(0)); !errors.Is(err, ErrStatic) {
			t.Errorf("wait on static: %v", err)
		}
		dyn, err := Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		if err := WaitUntil(pe, dyn, Cmp(99), int64(0)); err == nil {
			t.Error("bad comparison accepted")
		}
		return pe.BarrierAll()
	})
}

func TestWaitWakesOnAtomics(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		c, err := Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			for i := 0; i < 5; i++ {
				if err := Inc(pe, c, 1); err != nil {
					return err
				}
			}
		} else {
			if err := WaitUntil(pe, c, CmpGE, int64(5)); err != nil {
				return err
			}
		}
		return pe.BarrierAll()
	})
}

func TestLockMutualExclusion(t *testing.T) {
	const n, per = 6, 20
	var counter int // plain shared Go int: only safe if the lock works
	runT(t, gxCfg(n), func(pe *PE) error {
		lock, err := Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		for i := 0; i < per; i++ {
			if err := pe.SetLock(lock); err != nil {
				return err
			}
			counter++
			if err := pe.ClearLock(lock); err != nil {
				return err
			}
		}
		return pe.BarrierAll()
	})
	if counter != n*per {
		t.Errorf("counter = %d, want %d (lock did not exclude)", counter, n*per)
	}
}

func TestTestLock(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		lock, err := Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			held, err := pe.TestLock(lock)
			if err != nil || held {
				t.Errorf("first TestLock: held=%v err=%v", held, err)
			}
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 1 {
			held, err := pe.TestLock(lock)
			if err != nil || !held {
				t.Errorf("second TestLock: held=%v err=%v", held, err)
			}
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if err := pe.ClearLock(lock); err != nil {
				return err
			}
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		// Clearing a lock we don't hold is an error.
		if pe.MyPE() == 1 {
			if err := pe.ClearLock(lock); err == nil {
				t.Error("cleared an unheld lock")
			}
		}
		return nil
	})
}
