package core

import (
	"errors"
	"fmt"

	"tshmem/internal/mpipe"
	"tshmem/internal/profile"
	"tshmem/internal/stats"
	"tshmem/internal/udn"
	"tshmem/internal/vtime"
)

// ActiveSet is the OpenSHMEM active-set triplet: the PEs
// Start, Start+2^LogStride, ..., Start+(Size-1)*2^LogStride.
type ActiveSet struct {
	Start     int // PE_start
	LogStride int // logPE_stride
	Size      int // PE_size
}

// AllPEs is the active set covering every PE of an n-PE program.
func AllPEs(n int) ActiveSet { return ActiveSet{Start: 0, LogStride: 0, Size: n} }

// stride reports 2^LogStride.
func (a ActiveSet) stride() int { return 1 << a.LogStride }

// PE returns the i-th member of the active set.
func (a ActiveSet) PE(i int) int { return a.Start + i*a.stride() }

// Index reports the position of pe within the active set.
func (a ActiveSet) Index(pe int) (int, bool) {
	d := pe - a.Start
	if d < 0 || d%a.stride() != 0 {
		return 0, false
	}
	i := d / a.stride()
	if i >= a.Size {
		return 0, false
	}
	return i, true
}

// Contains reports whether pe is a member.
func (a ActiveSet) Contains(pe int) bool {
	_, ok := a.Index(pe)
	return ok
}

func (a ActiveSet) validate(npes int) error {
	if a.Start < 0 || a.LogStride < 0 || a.LogStride > 30 || a.Size < 1 {
		return fmt.Errorf("%w: {start %d, logStride %d, size %d}", ErrBadActiveSet, a.Start, a.LogStride, a.Size)
	}
	if last := a.PE(a.Size - 1); last >= npes {
		return fmt.Errorf("%w: last member PE %d >= NumPEs %d", ErrBadActiveSet, last, npes)
	}
	return nil
}

func (a ActiveSet) String() string {
	return fmt.Sprintf("{start:%d stride:2^%d size:%d}", a.Start, a.LogStride, a.Size)
}

// Barrier signal words.
const (
	sigWait uint64 = iota + 1
	sigRelease
)

// asTag derives the active-set identification the start tile encodes into
// the barrier signals so overlapping barrier calls cannot return
// out-of-order or stall (S IV.C.1). The per-set generation counter makes
// consecutive barriers on the same set distinguishable.
//
// The hash is FNV-1a over the four little-endian fields, computed inline:
// hash/fnv's interface value heap-allocates per call, and this runs on
// every barrier of every PE.
func asTag(a ActiveSet, gen uint32) uint32 {
	var b [16]byte
	put32 := func(i int, v uint32) {
		b[i], b[i+1], b[i+2], b[i+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	put32(0, uint32(a.Start))
	put32(4, uint32(a.LogStride))
	put32(8, uint32(a.Size))
	put32(12, gen)
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, c := range b {
		h ^= uint32(c)
		h *= prime32
	}
	return h
}

// BarrierAll suspends the PE until all PEs have reached the barrier
// (shmem_barrier_all). With Config.Barrier == TMCSpinBarrier it uses the
// TMC spin barrier — the TILE-Gx optimization the paper proposes in its
// open-issues discussion; otherwise it runs the UDN wait+release chain over
// the full active set.
func (pe *PE) BarrierAll() error {
	if err := pe.check(); err != nil {
		return err
	}
	pe.stats.Barriers++
	if a := pe.prog.cfg.BarrierAlgo; a != BarrierAlgoDefault {
		return pe.barrierAlgo(AllPEs(pe.n))
	}
	if pe.prog.cfg.Barrier == TMCSpinBarrier {
		return pe.barrierSpin(AllPEs(pe.n))
	}
	return pe.barrierUDN(AllPEs(pe.n))
}

// Barrier performs a barrier over an active set (shmem_barrier). The pSync
// work array required by the OpenSHMEM signature is carried by the PSync
// argument of the collective wrappers; the UDN design needs no symmetric
// scratch, matching the paper.
func (pe *PE) Barrier(as ActiveSet) error {
	if err := pe.check(); err != nil {
		return err
	}
	if err := as.validate(pe.n); err != nil {
		return err
	}
	pe.stats.Barriers++
	if a := pe.prog.cfg.BarrierAlgo; a != BarrierAlgoDefault && a != BarrierAlgoLinear {
		return pe.barrierAlgo(as)
	}
	return pe.barrierUDN(as)
}

// barrierUDN is the paper's barrier design (S IV.C.1): the start tile of
// the active set generates an active-set identification, encodes it with a
// wait signal, and sends it linearly around the set; once it returns, all
// members have arrived. A release signal then travels the same chain,
// letting each tile resume as it forwards. The start tile therefore leaves
// first (best case) and the last tile leaves last (worst case), which is
// how Figure 8 reports best- and worst-case latencies.
func (pe *PE) barrierUDN(as ActiveSet) error {
	idx, ok := as.Index(pe.id)
	if !ok {
		return fmt.Errorf("%w: PE %d vs %v", ErrNotInSet, pe.id, as)
	}
	// Instrumented here, not in the API wrappers, so the barriers
	// collectives run internally are traced as well.
	start := pe.clock.Now()
	defer pe.rec.OpDone(stats.OpBarrier, start, &pe.clock, 0, int(stats.NoPeer))
	defer pe.rec.BarrierAlgoDone(stats.BarrierAlgoLinear, start, &pe.clock)
	n := as.Size
	gen := pe.nextBarGen(as)
	// Sanitizer rendezvous: entering a barrier completes outstanding puts;
	// the exit joins every participant's entry clock. The wait pass's full
	// loop guarantees all members enter before anyone exits.
	tok := pe.san.BarrierEnter(as.Start, as.LogStride, as.Size, gen)
	if n == 1 {
		pe.clock.Advance(vtime.FromNs(pe.prog.chip.BarrierArbiterNs))
		pe.san.BarrierExit(tok)
		return nil
	}
	tag := asTag(as, gen)
	if pe.prog.nchips > 1 && !setOnOneChip(pe.prog, as) {
		if err := pe.barrierHier(as, tag); err != nil {
			return err
		}
		pe.san.BarrierExit(tok)
		return nil
	}
	next := as.PE((idx + 1) % n)
	fwd := vtime.FromNs(pe.prog.chip.UDNSWForwardNs)

	if idx == 0 {
		// Start tile: generate the active-set ID, launch the wait pass,
		// collect it from the last tile, then launch the release pass.
		pe.clock.Advance(vtime.FromNs(pe.prog.chip.BarrierArbiterNs))
		if err := pe.sendBarrier(next, tag, sigWait); err != nil {
			return err
		}
		if _, err := pe.recvBarrier(tag, sigWait); err != nil {
			return err
		}
		pe.san.BarrierExit(tok)
		pe.advanceAs(profile.CatUDNSend, fwd)
		return pe.sendBarrier(next, tag, sigRelease)
	}

	// Member tile: forward the wait signal, then block for the release.
	if _, err := pe.recvBarrier(tag, sigWait); err != nil {
		return err
	}
	pe.advanceAs(profile.CatUDNSend, fwd)
	if err := pe.sendBarrier(next, tag, sigWait); err != nil {
		return err
	}
	if _, err := pe.recvBarrier(tag, sigRelease); err != nil {
		return err
	}
	pe.san.BarrierExit(tok)
	if idx < n-1 {
		pe.advanceAs(profile.CatUDNSend, fwd)
		return pe.sendBarrier(next, tag, sigRelease)
	}
	return nil
}

// setOnOneChip reports whether every member of the active set shares one
// chip. Ranks are block-distributed over chips, so the first and last
// members suffice.
func setOnOneChip(p *Program, as ActiveSet) bool {
	return p.chipOf(as.PE(0)) == p.chipOf(as.PE(as.Size-1))
}

// barrierHier is the multi-chip barrier of the mPIPE extension: a UDN
// wait+release chain within each chip, with the per-chip leaders
// synchronized over the mPIPE fabric in between.
func (pe *PE) barrierHier(as ActiveSet, tag uint32) error {
	// Partition the set by chip, preserving set order.
	myChip := pe.prog.chipOf(pe.id)
	var members []int // my chip's members
	var leaders []int // first member per chip, in order of appearance
	lastChip := -1
	for i := 0; i < as.Size; i++ {
		g := as.PE(i)
		c := pe.prog.chipOf(g)
		if c != lastChip {
			leaders = append(leaders, g)
			lastChip = c
		}
		if c == myChip {
			members = append(members, g)
		}
	}
	pos := 0
	for i, m := range members {
		if m == pe.id {
			pos = i
		}
	}
	n := len(members)
	fwd := vtime.FromNs(pe.prog.chip.UDNSWForwardNs)

	if pos == 0 {
		// Chip leader: gather my chip's arrivals with the UDN ring.
		pe.clock.Advance(vtime.FromNs(pe.prog.chip.BarrierArbiterNs))
		if n > 1 {
			if err := pe.sendBarrier(members[1], tag, sigWait); err != nil {
				return err
			}
			if _, err := pe.recvBarrier(tag, sigWait); err != nil {
				return err
			}
		}
		// Leaders synchronize over mPIPE: leader 0 collects and releases.
		if leaders[0] == pe.id {
			for i := 1; i < len(leaders); i++ {
				if _, err := pe.recvFab(tag); err != nil {
					return err
				}
			}
			for i := 1; i < len(leaders); i++ {
				pe.rec.BarrierRound()
				if err := pe.sendFab(leaders[i], tag, []uint64{sigRelease}); err != nil {
					return err
				}
			}
		} else {
			pe.rec.BarrierRound()
			if err := pe.sendFab(leaders[0], tag, []uint64{sigWait}); err != nil {
				return err
			}
			if _, err := pe.recvFab(tag); err != nil {
				return err
			}
		}
		// Release my chip's chain.
		if n > 1 {
			pe.advanceAs(profile.CatUDNSend, fwd)
			return pe.sendBarrier(members[1], tag, sigRelease)
		}
		return nil
	}

	// Chip member: forward the wait ring, block for release, forward it.
	if _, err := pe.recvBarrier(tag, sigWait); err != nil {
		return err
	}
	pe.advanceAs(profile.CatUDNSend, fwd)
	if err := pe.sendBarrier(members[(pos+1)%n], tag, sigWait); err != nil {
		return err
	}
	if _, err := pe.recvBarrier(tag, sigRelease); err != nil {
		return err
	}
	if pos < n-1 {
		pe.advanceAs(profile.CatUDNSend, fwd)
		return pe.sendBarrier(members[pos+1], tag, sigRelease)
	}
	return nil
}

// recvFab receives the next mPIPE control message carrying tag, stashing
// messages of other in-flight operations. Under fault injection the wait
// is bounded (op "mpipe").
func (pe *PE) recvFab(tag uint32) (mpipe.Msg, error) {
	start := pe.clock.Now()
	deadline := pe.waitDeadline()
	for i, m := range pe.fabPending {
		if m.Tag == tag {
			pe.fabPending = append(pe.fabPending[:i], pe.fabPending[i+1:]...)
			return pe.consumeFab(m, start, deadline)
		}
	}
	for {
		m, err := pe.prog.fabric.RecvRaw(pe.id)
		if err != nil {
			if errors.Is(err, mpipe.ErrTimeout) {
				return mpipe.Msg{}, pe.timeoutAt("mpipe", -1, start, deadline)
			}
			return mpipe.Msg{}, err
		}
		if m.Tag == tag {
			return pe.consumeFab(m, start, deadline)
		}
		pe.fabPending = append(pe.fabPending, m)
	}
}

// consumeFab merges the clock with a fabric message's arrival, enforcing
// the virtual deadline when fault injection bounds the wait.
func (pe *PE) consumeFab(m mpipe.Msg, start vtime.Time, deadline vtime.Time) (mpipe.Msg, error) {
	if deadline > 0 && m.Arrive > deadline {
		return mpipe.Msg{}, pe.timeoutAt("mpipe", m.SrcPE, start, deadline)
	}
	waitStart := pe.clock.Now()
	pe.rec.BarrierWait(pe.clock.AdvanceTo(m.Arrive))
	pe.profMerge(profile.CatBarrierWait, waitStart, m.SrcPE, m.Sent, m.Arrive)
	return m, nil
}

// recvBarrier receives the next barrier signal carrying tag, stashing
// signals for other (overlapping) barrier instances until their turn.
// Under fault injection the wait is bounded: a signal that never arrives
// (a fault dropped it, or the chain is stalled past the host grace) or
// that arrives virtually past the deadline surfaces as a timeout instead
// of deadlocking the chain.
func (pe *PE) recvBarrier(tag uint32, want uint64) (udn.Packet, error) {
	start := pe.clock.Now()
	deadline := pe.waitDeadline()
	for i, pkt := range pe.barPending {
		if pkt.Tag == tag && pkt.Word(0) == want {
			pe.barPending = append(pe.barPending[:i], pe.barPending[i+1:]...)
			return pe.consumeBarrier(pkt, start, deadline)
		}
	}
	for {
		pkt, err := pe.port.RecvRaw(qBarrier)
		if err != nil {
			if errors.Is(err, udn.ErrTimeout) {
				return udn.Packet{}, pe.timeoutAt("barrier", -1, start, deadline)
			}
			return udn.Packet{}, err
		}
		if pkt.Tag == tag && pkt.Len() == 1 && pkt.Word(0) == want {
			return pe.consumeBarrier(pkt, start, deadline)
		}
		pe.barPending = append(pe.barPending, pkt)
	}
}

// consumeBarrier merges the clock with a barrier signal's arrival,
// enforcing the virtual deadline when fault injection bounds the wait.
func (pe *PE) consumeBarrier(pkt udn.Packet, start vtime.Time, deadline vtime.Time) (udn.Packet, error) {
	if deadline > 0 && pkt.Arrive > deadline {
		return udn.Packet{}, pe.timeoutAt("barrier", pe.globalSrc(pkt.Src), start, deadline)
	}
	waitStart := pe.clock.Now()
	pe.rec.BarrierWait(pe.clock.AdvanceTo(pkt.Arrive))
	pe.profMerge(profile.CatBarrierWait, waitStart, pe.globalSrc(pkt.Src), pkt.Sent, pkt.Arrive)
	return pkt, nil
}

// BarrierRootRelease is the alternative barrier design the paper evaluated
// and rejected (S IV.C.1): the wait pass is the same linear chain, but the
// start tile then *broadcasts* the release, sending one standalone UDN
// message to every member instead of letting the chain forward it. Each
// standalone send pays the full software send-call cost, which serializes
// at the root — "latencies were two times slower", so TSHMEM kept the
// chain. Exposed for the fig8c ablation.
func (pe *PE) BarrierRootRelease(as ActiveSet) error {
	if err := pe.check(); err != nil {
		return err
	}
	if err := as.validate(pe.n); err != nil {
		return err
	}
	idx, ok := as.Index(pe.id)
	if !ok {
		return fmt.Errorf("%w: PE %d vs %v", ErrNotInSet, pe.id, as)
	}
	if pe.prog.nchips > 1 && !setOnOneChip(pe.prog, as) {
		return fmt.Errorf("%w: root-release barrier is single-chip only", ErrNotSupported)
	}
	pe.stats.Barriers++
	start := pe.clock.Now()
	defer pe.rec.OpDone(stats.OpBarrier, start, &pe.clock, 0, int(stats.NoPeer))
	n := as.Size
	gen := pe.nextBarGen(as)
	tok := pe.san.BarrierEnter(as.Start, as.LogStride, as.Size, gen)
	if n == 1 {
		pe.clock.Advance(vtime.FromNs(pe.prog.chip.BarrierArbiterNs))
		pe.san.BarrierExit(tok)
		return nil
	}
	tag := asTag(as, gen)
	fwd := vtime.FromNs(pe.prog.chip.UDNSWForwardNs)
	sendCall := vtime.FromNs(pe.prog.chip.UDNSendCallNs)

	if idx == 0 {
		pe.clock.Advance(vtime.FromNs(pe.prog.chip.BarrierArbiterNs))
		if err := pe.sendBarrier(as.PE(1), tag, sigWait); err != nil {
			return err
		}
		if _, err := pe.recvBarrier(tag, sigWait); err != nil {
			return err
		}
		pe.san.BarrierExit(tok)
		// Broadcast the release: one standalone send per member,
		// serialized at the root.
		for k := 1; k < n; k++ {
			pe.advanceAs(profile.CatUDNSend, sendCall)
			if err := pe.sendBarrier(as.PE(k), tag, sigRelease); err != nil {
				return err
			}
		}
		return nil
	}
	// Member: forward the wait chain, then block for the root's release.
	if _, err := pe.recvBarrier(tag, sigWait); err != nil {
		return err
	}
	pe.advanceAs(profile.CatUDNSend, fwd)
	if err := pe.sendBarrier(as.PE((idx+1)%n), tag, sigWait); err != nil {
		return err
	}
	if _, err := pe.recvBarrier(tag, sigRelease); err != nil {
		return err
	}
	pe.san.BarrierExit(tok)
	return nil
}
