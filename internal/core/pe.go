package core

import (
	"errors"
	"fmt"

	"tshmem/internal/alloc"
	"tshmem/internal/arch"
	"tshmem/internal/cache"
	"tshmem/internal/mpipe"
	"tshmem/internal/profile"
	"tshmem/internal/sanitize"
	"tshmem/internal/stats"
	"tshmem/internal/tmc"
	"tshmem/internal/udn"
	"tshmem/internal/vtime"
)

// UDN demux queue assignment within TSHMEM (four queues per tile).
const (
	qBarrier = 0 // barrier wait/release signal chain
	qInit    = 1 // start_pes partition-address exchange
	qColl    = 2 // collective control signals
	qApp     = 3 // reserved for applications (unused by the library)
)

// Stats counts the traffic a PE generated.
type Stats struct {
	Puts, Gets         int64
	PutBytes, GetBytes int64
	Barriers           int64
	Collectives        int64
	Atomics            int64
	Redirects          int64 // static-variable transfers serviced via UDN interrupts
	Flops, IntOps      int64
}

// PE is one processing element: a goroutine bound one-to-one to a tile,
// holding its virtual clock, its UDN port, and its symmetric partition.
// All TSHMEM operations hang off the PE (or take it as their first
// argument, for the generic ones). A PE must only be used from the
// goroutine Run started for it.
type PE struct {
	prog *Program
	id   int
	n    int

	clock vtime.Clock
	port  *udn.Port
	heap  *alloc.Allocator

	hint int // concurrency hint for the memory model (set by collectives)

	// Generation counters distinguish overlapping barrier/collective
	// instances on the same active set. The all-PEs set — every
	// BarrierAll and most collectives — bypasses the maps with dedicated
	// counters; the maps serve subset active sets only.
	barGenAll   uint32
	collGenAll  uint32
	barGen      map[ActiveSet]uint32
	barPending  []udn.Packet // stashed signals of overlapping barrier instances
	collGen     map[ActiveSet]uint32
	collPending []udn.Packet
	initPending []udn.Packet
	fabPending  []mpipe.Msg // stashed cross-chip control messages
	finalized   bool

	memo  cache.Memo // per-PE copy-cost memo; owned by the PE goroutine
	stats Stats
	rec   *stats.Recorder   // substrate observability; nil unless Config.Observe
	san   *sanitize.PEHooks // happens-before checker; nil unless Config.Sanitize
	prof  *profile.Recorder // causal profiler; nil unless Config.Profile
}

// profMerge attributes a cross-PE clock merge to the causal profiler:
// idle before the peer published at sent is blamed on cat, the in-flight
// tail on mesh, carrying the happens-before edge to (peer, sent).
func (pe *PE) profMerge(cat profile.Category, start vtime.Time, peer int, sent, arrive vtime.Time) {
	if pe.prof == nil {
		return
	}
	pe.prof.Merge(cat, start, sanitize.Edge{
		PE: int32(pe.id), Peer: int32(peer), Sent: sent, Arrive: arrive,
	})
}

// allPEsSet reports whether as is the full-program active set, the case
// the generation-counter fast path serves.
func (pe *PE) allPEsSet(as ActiveSet) bool {
	return as.Start == 0 && as.LogStride == 0 && as.Size == pe.n
}

// nextBarGen returns the barrier generation for as and advances it.
func (pe *PE) nextBarGen(as ActiveSet) uint32 {
	if pe.allPEsSet(as) {
		g := pe.barGenAll
		pe.barGenAll = g + 1
		return g
	}
	g := pe.barGen[as]
	pe.barGen[as] = g + 1
	return g
}

// nextCollGen returns the collective generation for as and advances it.
func (pe *PE) nextCollGen(as ActiveSet) uint32 {
	if pe.allPEsSet(as) {
		g := pe.collGenAll
		pe.collGenAll = g + 1
		return g
	}
	g := pe.collGen[as]
	pe.collGen[as] = g + 1
	return g
}

// MyPE reports this PE's number (the OpenSHMEM _my_pe).
func (pe *PE) MyPE() int { return pe.id }

// NumPEs reports the number of PEs (the OpenSHMEM _num_pes).
func (pe *PE) NumPEs() int { return pe.n }

// Chip reports the processor the program runs on.
func (pe *PE) Chip() *arch.Chip { return pe.prog.chip }

// Program returns the shared program state.
func (pe *PE) Program() *Program { return pe.prog }

// Now reports the PE's current virtual time.
func (pe *PE) Now() vtime.Time { return pe.clock.Now() }

// Stats returns a copy of the PE's traffic counters.
func (pe *PE) Stats() Stats { return pe.stats }

// Counters returns a copy of the PE's substrate counters. It is the zero
// value unless the run was configured with Config.Observe (or Trace).
func (pe *PE) Counters() stats.Counters { return pe.rec.Counters() }

// locality classifies remotePE relative to this PE for RMA accounting.
func (pe *PE) locality(remotePE int) stats.Locality {
	switch {
	case remotePE == pe.id:
		return stats.SelfPE
	case pe.prog.sameChip(pe.id, remotePE):
		return stats.SameChip
	default:
		return stats.CrossChip
	}
}

// Tile reports the physical CPU number of the tile this PE is bound to on
// its chip.
func (pe *PE) Tile() int {
	phys, err := pe.prog.geos[pe.prog.chipOf(pe.id)].PhysicalCPU(pe.prog.localIdx(pe.id))
	if err != nil {
		// The launcher validated the binding; this cannot fail.
		panic(err)
	}
	return phys
}

// ChipIndex reports which chip hosts this PE (0 on single-chip runs).
func (pe *PE) ChipIndex() int { return pe.prog.chipOf(pe.id) }

// ChipOf reports which chip hosts the given PE rank, letting multi-chip
// applications reason about transfer locality.
func (pe *PE) ChipOf(rank int) (int, error) {
	if err := pe.checkPE(rank); err != nil {
		return 0, err
	}
	return pe.prog.chipOf(rank), nil
}

// sendUDN sends words on demux queue q to PE dst, which must share this
// PE's chip (the UDN is chip-local).
func (pe *PE) sendUDN(dst, q int, tag uint32, words []uint64) error {
	if !pe.prog.sameChip(pe.id, dst) {
		return fmt.Errorf("tshmem: internal: UDN send from PE %d to PE %d crosses chips", pe.id, dst)
	}
	start := pe.clock.Now()
	err := pe.port.Send(&pe.clock, pe.prog.localIdx(dst), q, tag, words)
	if errors.Is(err, udn.ErrTimeout) {
		return pe.timeoutAt("udn.send", dst, start, start.Add(pe.prog.waitBudget))
	}
	return err
}

// sendFab sends a control message over the mPIPE fabric, attributing the
// injection advance to the profiler (the fabric itself has no per-PE
// recorder hookup, unlike the UDN port).
func (pe *PE) sendFab(dst int, tag uint32, words []uint64) error {
	t0 := pe.clock.Now()
	err := pe.prog.fabric.Send(&pe.clock, pe.id, dst, tag, words)
	pe.prof.Advance(profile.CatUDNSend, t0, pe.clock.Now())
	return err
}

// sendBarrier sends one wait/release signal on the barrier queue, counting
// it as a barrier round.
func (pe *PE) sendBarrier(dst int, tag uint32, word uint64) error {
	pe.rec.BarrierRound()
	return pe.sendUDN(dst, qBarrier, tag, []uint64{word})
}

// advanceAs advances the virtual clock by d and blames the span on cat in
// the causal profiler's ledger. The barrier algorithms use it for their
// modeled software send/forward costs, which would otherwise degrade into
// the compute residual and hide the very term the chain-vs-dissemination
// crossover turns on.
func (pe *PE) advanceAs(cat profile.Category, d vtime.Duration) {
	t0 := pe.clock.Now()
	pe.clock.Advance(d)
	pe.prof.Advance(cat, t0, pe.clock.Now())
}

// globalSrc translates a UDN packet's source (a chip-local tile index) to
// the sender's global rank.
func (pe *PE) globalSrc(localSrc int) int {
	return pe.prog.chipOf(pe.id)*pe.prog.perChip + localSrc
}

// startPEs is the per-PE half of start_pes(): after the launcher has forked
// and bound the PEs, each tile reports its partition's starting address to
// every other tile on its chip via the UDN (Section IV.A) and verifies the
// layout is symmetric. On multi-chip runs the concluding barrier (which is
// chip-spanning) completes the cross-chip handshake.
func (pe *PE) startPEs() error {
	start := pe.clock.Now()
	defer pe.rec.OpDone(stats.OpInit, start, &pe.clock, 0, int(stats.NoPeer))
	base := pe.prog.partBase[pe.id]
	chip := pe.prog.chipOf(pe.id)
	first := chip * pe.prog.perChip
	peers := pe.prog.chipPEs(chip)
	me := pe.prog.localIdx(pe.id)
	for r := 1; r < peers; r++ {
		dst := first + (me+r)%peers
		if err := pe.sendUDN(dst, qInit, uint32(pe.id), []uint64{uint64(base)}); err != nil {
			return err
		}
		// In round r the peer at distance -r reports to us. Receiving in
		// that fixed order (stashing early arrivals) keeps the virtual-time
		// merges deterministic.
		pkt, err := pe.recvInitFrom((me - r + peers) % peers)
		if err != nil {
			return err
		}
		src := pe.globalSrc(pkt.Src)
		if got, want := int64(pkt.Word(0)), pe.prog.partBase[src]; got != want {
			return fmt.Errorf("%w: PE %d reported partition base %d, launcher says %d",
				ErrAsymmetric, src, got, want)
		}
	}
	// All partitions known; one barrier completes initialization.
	return pe.BarrierAll()
}

// recvInitFrom receives the start_pes report from the given chip-local
// tile, stashing reports that arrive ahead of their round. Under fault
// injection the wait is bounded: a report that never arrives (or arrives
// virtually past the deadline) surfaces as a timeout naming the awaited
// peer.
func (pe *PE) recvInitFrom(localSrc int) (udn.Packet, error) {
	start := pe.clock.Now()
	deadline := pe.waitDeadline()
	peer := pe.globalSrc(localSrc)
	for i, pkt := range pe.initPending {
		if pkt.Src == localSrc {
			pe.initPending = append(pe.initPending[:i], pe.initPending[i+1:]...)
			return pe.consumeInit(pkt, start, deadline)
		}
	}
	for {
		pkt, err := pe.port.RecvRaw(qInit)
		if err != nil {
			if errors.Is(err, udn.ErrTimeout) {
				return udn.Packet{}, pe.timeoutAt("init", peer, start, deadline)
			}
			return udn.Packet{}, err
		}
		if pkt.Src == localSrc {
			return pe.consumeInit(pkt, start, deadline)
		}
		pe.initPending = append(pe.initPending, pkt)
	}
}

// consumeInit merges the clock with an init report's arrival, enforcing
// the virtual deadline when fault injection bounds the wait.
func (pe *PE) consumeInit(pkt udn.Packet, start vtime.Time, deadline vtime.Time) (udn.Packet, error) {
	if deadline > 0 && pkt.Arrive > deadline {
		return udn.Packet{}, pe.timeoutAt("init", pe.globalSrc(pkt.Src), start, deadline)
	}
	waitStart := pe.clock.Now()
	pe.clock.AdvanceTo(pkt.Arrive)
	pe.profMerge(profile.CatUDNWait, waitStart, pe.globalSrc(pkt.Src), pkt.Sent, pkt.Arrive)
	return pkt, nil
}

// Finalize implements the shmem_finalize() extension the paper proposes:
// a collective that quiesces communication so the launcher can safely tear
// down the UDN. After Finalize the PE must not issue further operations.
func (pe *PE) Finalize() error {
	if pe.finalized {
		return ErrFinalized
	}
	pe.Quiet()
	if err := pe.BarrierAll(); err != nil {
		return err
	}
	pe.finalized = true
	return nil
}

// check guards every operation entry point.
func (pe *PE) check() error {
	if pe.finalized {
		return ErrFinalized
	}
	return nil
}

func (pe *PE) checkPE(target int) error {
	if target < 0 || target >= pe.n {
		return fmt.Errorf("%w: %d (NumPEs %d)", ErrBadPE, target, pe.n)
	}
	return nil
}

// ComputeFlops charges the virtual cost of n floating-point operations on
// this chip. The application case studies count their real arithmetic
// through this (Figures 13-14); the TILEPro pays its softfloat penalty
// here.
func (pe *PE) ComputeFlops(n int64) {
	if n <= 0 {
		return
	}
	pe.stats.Flops += n
	pe.clock.Advance(vtime.FromNs(float64(n) * pe.prog.chip.FlopNs))
}

// ComputeIntOps charges the virtual cost of n integer/ALU operations.
func (pe *PE) ComputeIntOps(n int64) {
	if n <= 0 {
		return
	}
	pe.stats.IntOps += n
	pe.clock.Advance(vtime.FromNs(float64(n) * pe.prog.chip.IntOpNs))
}

// ComputeRandomAccesses charges n dependent poorly-local memory accesses
// (e.g. the serialized transpose of the 2D-FFT case study).
func (pe *PE) ComputeRandomAccesses(n int64) {
	pe.clock.Advance(pe.prog.model.RandomAccessCost(n))
}

// AlignClocks synchronizes every PE's virtual clock to a common instant
// (the latest arrival plus the TMC spin-barrier cost). It is a
// simulation-control helper for the benchmark harness, which needs all PEs
// to enter a measured operation at the same virtual time — the equivalent
// of the paper's measurement methodology. It is not part of OpenSHMEM.
func (pe *PE) AlignClocks() error {
	if err := pe.check(); err != nil {
		return err
	}
	tok := pe.san.SpinEnter()
	if err := pe.spinWait("align"); err != nil {
		return err
	}
	pe.san.BarrierExit(tok)
	return nil
}

// spinWait enters the program-wide TMC spin barrier, bounding the
// rendezvous in host time when fault injection is active. The bound is a
// liveness fallback only: a rendezvous that does complete keeps its exact
// unbounded virtual timing (see docs/ROBUSTNESS.md for the caveat that
// the UDN chain barrier, not the spin barrier, is the instrument for
// virtual-deadline experiments).
func (pe *PE) spinWait(op string) error {
	// The spin rendezvous has no single releasing peer, so the span
	// carries no happens-before edge: the critical path stays on this PE.
	if s := pe.prog.sched; s != nil {
		return pe.spinWaitEvent(op, s)
	}
	if pe.prog.flt == nil {
		t0 := pe.clock.Now()
		pe.prog.spinBar.Wait(&pe.clock)
		pe.prof.Advance(profile.CatBarrierWait, t0, pe.clock.Now())
		return nil
	}
	start := pe.clock.Now()
	deadline := start.Add(pe.prog.waitBudget)
	if !pe.prog.spinBar.WaitTimeout(&pe.clock, pe.prog.waitGrace) {
		return pe.timeoutAt(op, -1, start, deadline)
	}
	pe.prof.Advance(profile.CatBarrierWait, start, pe.clock.Now())
	return nil
}

// spinWaitEvent is spinWait on the event engine: an arrival registers
// without blocking, the completing member computes the release and wakes
// the parked ones, and a quiescence-expired wait withdraws exactly like
// WaitTimeout — same math, same clocks, same diagnostics.
func (pe *PE) spinWaitEvent(op string, s *evsched) error {
	start := pe.clock.Now()
	bar := pe.prog.spinBar
	gen, rel, done := bar.Arrive(start)
	if done {
		pe.clock.AdvanceTo(rel)
		pe.prof.Advance(profile.CatBarrierWait, start, pe.clock.Now())
		s.wake(wkSpin, int64(gen), 0)
		return nil
	}
	for {
		st := s.yield(pe.id, wkSpin, int64(gen), 0)
		// Check completion before the wake status: the generation may
		// have closed in the same step that expired or aborted us.
		if r, ok := bar.Released(gen); ok {
			pe.clock.AdvanceTo(r)
			pe.prof.Advance(profile.CatBarrierWait, start, pe.clock.Now())
			return nil
		}
		switch st {
		case wakeAbort:
			// Mirror Barrier.Wait after Abort: return with the clock
			// unchanged; the caller's next operation observes the abort.
			return nil
		case wakeTimeout:
			if bar.Withdraw(gen) {
				return pe.timeoutAt(op, -1, start, start.Add(pe.prog.waitBudget))
			}
		}
	}
}

// yieldSpin lets other PEs make progress while this PE spins on a
// contended CAS lock: runtime.Gosched on the goroutine engine, a
// ready-state baton handoff on the event engine (the spinner's modeled
// backoff grows its clock every retry, so the calendar eventually
// prefers the holder).
func (pe *PE) yieldSpin() {
	if s := pe.prog.sched; s != nil {
		s.yieldReady(pe.id)
		return
	}
	waitYield()
}

// Quiet waits until all outstanding puts issued by this PE are complete and
// visible (shmem_quiet), modeled with tmc_mem_fence (Section IV.C.2).
func (pe *PE) Quiet() {
	start := pe.clock.Now()
	tmc.MemFence(&pe.clock, pe.prog.model)
	pe.san.Quiet()
	pe.rec.OpDone(stats.OpFence, start, &pe.clock, 0, int(stats.NoPeer))
}

// Fence ensures ordering of puts to each PE (shmem_fence). TSHMEM aliases
// it to Quiet, giving it the stronger semantics (Section IV.C.2).
func (pe *PE) Fence() { pe.Quiet() }

// ChargeStream charges the excess cost of a memory pass of bytes that is
// part of a loop with total working set ws bytes, beyond the per-transfer
// cost already charged: sustained bandwidth follows the working set when a
// loop keeps evicting its own data. Applications with root-serialized
// gathers (the CBIR case study) use this to model cache thrash.
func (pe *PE) ChargeStream(bytes, ws int64) {
	extra := pe.prog.model.StreamCost(bytes, ws, sharedMode) -
		pe.prog.model.CopyCost(bytes, sharedMode, 1)
	if extra > 0 {
		pe.clock.Advance(extra)
	}
}

// WithConcurrency declares that this PE is entering an application phase
// in which c PEs stream through the shared-memory system simultaneously
// (for example, everyone putting a block to a gather root). The memory
// model degrades per-stream bandwidth accordingly, as it does inside the
// library's own collectives. It returns a restore function.
func (pe *PE) WithConcurrency(c int) (restore func()) {
	return pe.setHint(c)
}

// setHint establishes the concurrency hint for the memory model while a
// collective phase with c simultaneous streams runs; it returns a restore
// function.
func (pe *PE) setHint(c int) func() {
	old := pe.hint
	if c < 1 {
		c = 1
	}
	pe.hint = c
	return func() { pe.hint = old }
}

func (pe *PE) curHint() int {
	if pe.hint < 1 {
		return 1
	}
	return pe.hint
}
