package core

import (
	"errors"
	"strings"
	"testing"

	"tshmem/internal/sanitize"
)

func sanCfg(npes int) Config {
	c := gxCfg(npes)
	c.Sanitize = true
	return c
}

// missingQuietBody is the acceptance scenario: PE 0 puts a data buffer to
// PE 1 and then sets a flag word, with or without the shmem_quiet the
// OpenSHMEM memory model requires in between. dataOff receives the data
// buffer's symmetric byte offset (written by PE 0 only).
func missingQuietBody(quiet bool, dataOff *int64) func(*PE) error {
	return func(pe *PE) error {
		data, err := Malloc[int64](pe, 8)
		if err != nil {
			return err
		}
		flag, err := Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		scratch, err := Malloc[int64](pe, 8)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			*dataOff = data.off
			src := MustLocal(pe, data)
			for i := range src {
				src[i] = int64(i) + 1
			}
			if err := Put(pe, data, data, 8, 1); err != nil {
				return err
			}
			if quiet {
				pe.Quiet()
			}
			if err := P(pe, flag, int64(1), 1); err != nil {
				return err
			}
		} else {
			if err := WaitUntil(pe, flag, CmpEQ, int64(1)); err != nil {
				return err
			}
			if err := Get(pe, scratch, data, 8, pe.MyPE()); err != nil {
				return err
			}
			got := MustLocal(pe, scratch)
			for i := range got {
				if got[i] != int64(i)+1 {
					// The simulator's eager copy makes this unreachable —
					// which is exactly why the sanitizer exists.
					return errors.New("data not visible after flag")
				}
			}
		}
		return pe.BarrierAll()
	}
}

// TestSanitizeFlagsMissingQuiet is the acceptance scenario of the
// sanitizer: a put-then-flag program with no Quiet is flagged with the
// correct PE pair and symmetric offset; the same program with the Quiet
// runs clean.
func TestSanitizeFlagsMissingQuiet(t *testing.T) {
	var dataOff int64
	rep := runT(t, sanCfg(2), missingQuietBody(false, &dataOff))
	var sig, read bool
	for _, d := range rep.Diagnostics {
		switch d.Kind {
		case sanitize.UnfencedSignal:
			sig = true
			if d.PE != 0 || d.TargetPE != 1 || d.Offset != dataOff || d.Bytes != 64 {
				t.Errorf("unfenced-signal misattributed: %+v (data at offset %d)", d, dataOff)
			}
		case sanitize.UnfencedRead:
			read = true
			if d.PE != 1 || d.OtherPE != 0 || d.Offset != dataOff {
				t.Errorf("unfenced-read misattributed: %+v (data at offset %d)", d, dataOff)
			}
		default:
			t.Errorf("unexpected diagnostic: %v", d)
		}
	}
	if !sig || !read {
		t.Fatalf("diagnostics = %v, want unfenced-signal and unfenced-read", rep.Diagnostics)
	}

	rep = runT(t, sanCfg(2), missingQuietBody(true, &dataOff))
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("quiet variant flagged: %v", rep.Diagnostics)
	}
}

// TestSanitizeFlagsRacingPuts: two PEs put to overlapping bytes of a third
// PE's partition with no SHMEM ordering. The conflicting accesses are
// serialized host-side through a Go channel — invisible to the SHMEM
// happens-before model, so the race is still flagged, deterministically
// oriented, and the Go race detector stays quiet.
func TestSanitizeFlagsRacingPuts(t *testing.T) {
	for _, ordered := range []bool{false, true} {
		name := "racy"
		if ordered {
			name = "barrier-ordered"
		}
		t.Run(name, func(t *testing.T) {
			ch := make(chan struct{})
			var xOff int64
			rep := runT(t, sanCfg(3), func(pe *PE) error {
				x, err := Malloc[int64](pe, 16)
				if err != nil {
					return err
				}
				if err := pe.BarrierAll(); err != nil {
					return err
				}
				if pe.MyPE() == 0 {
					xOff = x.off
					if err := Put(pe, x, x, 16, 2); err != nil {
						return err
					}
					pe.Quiet()
				}
				if ordered {
					if err := pe.BarrierAll(); err != nil {
						return err
					}
				} else {
					switch pe.MyPE() {
					case 0:
						close(ch)
					case 1:
						<-ch
					}
				}
				if pe.MyPE() == 1 {
					half := x.Slice(8, 16)
					if err := Put(pe, half, half, 8, 2); err != nil {
						return err
					}
					pe.Quiet()
				}
				return pe.BarrierAll()
			})
			if ordered {
				if len(rep.Diagnostics) != 0 {
					t.Fatalf("ordered puts flagged: %v", rep.Diagnostics)
				}
				return
			}
			if len(rep.Diagnostics) != 1 {
				t.Fatalf("diagnostics = %v, want exactly one", rep.Diagnostics)
			}
			d := rep.Diagnostics[0]
			if d.Kind != sanitize.RacePutPut || d.PE != 1 || d.OtherPE != 0 ||
				d.TargetPE != 2 || d.Offset != xOff+8*8 {
				t.Errorf("race misattributed: %+v (want PE 1 vs 0 at target 2, offset %d)", d, xOff+8*8)
			}
		})
	}
}

// TestSanitizeFlagsPutGetRace: an unordered get overlapping another PE's
// put is a read of undefined bytes.
func TestSanitizeFlagsPutGetRace(t *testing.T) {
	ch := make(chan struct{})
	rep := runT(t, sanCfg(3), func(pe *PE) error {
		x, err := Malloc[int64](pe, 16)
		if err != nil {
			return err
		}
		scratch, err := Malloc[int64](pe, 16)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		switch pe.MyPE() {
		case 0:
			if err := Put(pe, x, x, 16, 2); err != nil {
				return err
			}
			pe.Quiet()
			close(ch)
		case 1:
			<-ch
			if err := Get(pe, scratch, x, 16, 2); err != nil {
				return err
			}
		}
		return pe.BarrierAll()
	})
	if len(rep.Diagnostics) != 1 || rep.Diagnostics[0].Kind != sanitize.RacePutGet {
		t.Fatalf("diagnostics = %v, want one race:put/get", rep.Diagnostics)
	}
	if d := rep.Diagnostics[0]; d.PE != 1 || d.OtherPE != 0 || d.TargetPE != 2 {
		t.Errorf("race misattributed: %+v", d)
	}
}

// TestSanitizeStridedPrecision: concurrent IPuts into interleaved columns
// of one region (the distributed-transpose pattern) touch disjoint
// elements and must not be flagged; the same IPuts aimed at the same
// column must be.
func TestSanitizeStridedPrecision(t *testing.T) {
	for _, collide := range []bool{false, true} {
		name := "interleaved-clean"
		if collide {
			name = "same-column-race"
		}
		t.Run(name, func(t *testing.T) {
			ch := make(chan struct{})
			rep := runT(t, sanCfg(3), func(pe *PE) error {
				x, err := Malloc[int64](pe, 16)
				if err != nil {
					return err
				}
				src, err := Malloc[int64](pe, 8)
				if err != nil {
					return err
				}
				if err := pe.BarrierAll(); err != nil {
					return err
				}
				switch pe.MyPE() {
				case 0:
					// Even elements of x on PE 2.
					if err := IPut(pe, x, src, 2, 1, 8, 2); err != nil {
						return err
					}
					pe.Quiet()
					if collide {
						close(ch)
					}
				case 1:
					target := x.Slice(1, 16) // odd elements: disjoint
					if collide {
						<-ch
						target = x // even elements: collision
					}
					if err := IPut(pe, target, src, 2, 1, 8, 2); err != nil {
						return err
					}
					pe.Quiet()
				}
				return pe.BarrierAll()
			})
			if collide {
				if len(rep.Diagnostics) != 1 || rep.Diagnostics[0].Kind != sanitize.RacePutPut {
					t.Fatalf("diagnostics = %v, want one race:put/put", rep.Diagnostics)
				}
			} else if len(rep.Diagnostics) != 0 {
				t.Fatalf("disjoint interleaved IPuts flagged: %v", rep.Diagnostics)
			}
		})
	}
}

// TestSanitizeLockMisuse: double acquire fails fast instead of
// deadlocking, and a release without ownership is diagnosed.
func TestSanitizeLockMisuse(t *testing.T) {
	t.Run("double-acquire", func(t *testing.T) {
		rep := runT(t, sanCfg(2), func(pe *PE) error {
			lk, err := Malloc[int64](pe, 1)
			if err != nil {
				return err
			}
			if err := pe.BarrierAll(); err != nil {
				return err
			}
			if pe.MyPE() == 0 {
				if err := pe.SetLock(lk); err != nil {
					return err
				}
				if err := pe.SetLock(lk); err == nil {
					return errors.New("second SetLock did not fail")
				} else if !strings.Contains(err.Error(), "already holds") {
					return err
				}
				if err := pe.ClearLock(lk); err != nil {
					return err
				}
			}
			return pe.BarrierAll()
		})
		if len(rep.Diagnostics) != 1 || rep.Diagnostics[0].Kind != sanitize.LockDoubleAcquire {
			t.Fatalf("diagnostics = %v, want one lock:double-acquire", rep.Diagnostics)
		}
	})
	t.Run("bad-release", func(t *testing.T) {
		rep := runT(t, sanCfg(2), func(pe *PE) error {
			lk, err := Malloc[int64](pe, 1)
			if err != nil {
				return err
			}
			if err := pe.BarrierAll(); err != nil {
				return err
			}
			if pe.MyPE() == 0 {
				if err := pe.ClearLock(lk); err == nil {
					return errors.New("ClearLock of an unheld lock did not fail")
				}
			}
			return pe.BarrierAll()
		})
		if len(rep.Diagnostics) != 1 || rep.Diagnostics[0].Kind != sanitize.LockBadRelease {
			t.Fatalf("diagnostics = %v, want one lock:bad-release", rep.Diagnostics)
		}
	})
}

// TestSanitizeCleanProgram: a program using the full synchronization
// vocabulary correctly — collectives, reductions, atomics, a lock —
// produces no diagnostics.
func TestSanitizeCleanProgram(t *testing.T) {
	rep := runT(t, sanCfg(4), func(pe *PE) error {
		me := pe.MyPE()
		as := AllPEs(4)
		src, err := Malloc[int32](pe, 4)
		if err != nil {
			return err
		}
		dst, err := Malloc[int32](pe, 16)
		if err != nil {
			return err
		}
		ps, err := Malloc[int64](pe, CollectSyncSize)
		if err != nil {
			return err
		}
		rt, rs, pwrk, rps := reduceEnv(t, pe, 8)
		cnt, err := Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		lk, err := Malloc[int64](pe, 1)
		if err != nil {
			return err
		}
		v := MustLocal(pe, src)
		for i := range v {
			v[i] = int32(10*me + i)
		}
		w := MustLocal(pe, rs)
		for i := range w {
			w[i] = int64(me + i)
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if err := Broadcast(pe, dst, src, 4, 0, as, ps); err != nil {
			return err
		}
		if err := FCollect(pe, dst, src, 4, as, ps); err != nil {
			return err
		}
		if err := Collect(pe, dst, src, me%3, as, ps); err != nil {
			return err
		}
		if err := FCollectRD(pe, dst, src, 4, as, ps); err != nil {
			return err
		}
		if err := SumToAll(pe, rt, rs, 8, as, pwrk, rps); err != nil {
			return err
		}
		if _, err := FInc(pe, cnt, 0); err != nil {
			return err
		}
		if err := pe.SetLock(lk); err != nil {
			return err
		}
		if err := pe.ClearLock(lk); err != nil {
			return err
		}
		return pe.BarrierAll()
	})
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("clean program flagged: %v", rep.Diagnostics)
	}
}

// TestSanitizeStrictEnv: TSHMEM_SANITIZE turns diagnostics into a run
// error (the mode ci.sh and ad-hoc shell runs use), while clean programs
// still pass.
func TestSanitizeStrictEnv(t *testing.T) {
	t.Setenv("TSHMEM_SANITIZE", "1")
	var off int64
	_, err := Run(gxCfg(2), missingQuietBody(false, &off))
	if err == nil || !strings.Contains(err.Error(), "sanitizer") {
		t.Fatalf("strict mode error = %v, want sanitizer failure", err)
	}
	if _, err := Run(gxCfg(2), missingQuietBody(true, &off)); err != nil {
		t.Fatalf("clean program failed under TSHMEM_SANITIZE: %v", err)
	}
}

// TestSanitizeOffByDefault: without Config.Sanitize the report carries no
// diagnostics and racy programs run exactly as before.
func TestSanitizeOffByDefault(t *testing.T) {
	var off int64
	rep := runT(t, gxCfg(2), missingQuietBody(false, &off))
	if rep.Diagnostics != nil {
		t.Fatalf("diagnostics present with sanitizer off: %v", rep.Diagnostics)
	}
}
