package core

import (
	"sort"
	"sync"
	"time"

	"tshmem/internal/profile"
	"tshmem/internal/sanitize"
	"tshmem/internal/vtime"
)

// DefaultWaitBudget is the virtual-time bound applied to every blocking
// wait when fault injection is active (Config.WaitBudget unset): 50 ms of
// virtual time, roughly five orders of magnitude beyond any healthy
// barrier or signal wait in the modeled system, so only genuinely starved
// waits trip it.
const DefaultWaitBudget vtime.Duration = 50_000_000_000 // 50 ms in ps

// DefaultWaitGrace is the host-time liveness fallback when fault
// injection is active (Config.WaitGrace unset). The virtual budget is
// authoritative — a wait whose packet arrives past the deadline times out
// at exactly Start+WaitBudget — but a packet a fault swallowed never
// arrives in host time either, and this timer unblocks that wait with the
// identical virtual outcome.
const DefaultWaitGrace = 2 * time.Second

// timeoutLog accumulates Timeout diagnostics across PE goroutines; the
// report sorts them deterministically afterwards.
type timeoutLog struct {
	mu   sync.Mutex
	list []sanitize.Diagnostic
}

func (l *timeoutLog) add(d sanitize.Diagnostic) {
	l.mu.Lock()
	l.list = append(l.list, d)
	l.mu.Unlock()
}

// diagnostics returns the recorded timeouts sorted by (PE, start time,
// op) — a total order independent of host scheduling.
func (l *timeoutLog) diagnostics() []sanitize.Diagnostic {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := append([]sanitize.Diagnostic(nil), l.list...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].PE != out[j].PE {
			return out[i].PE < out[j].PE
		}
		if out[i].VTime != out[j].VTime {
			return out[i].VTime < out[j].VTime
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// waitDeadline returns the virtual deadline for a blocking wait starting
// now, or 0 when fault injection is off and waits are unbounded.
func (pe *PE) waitDeadline() vtime.Time {
	if pe.prog.flt == nil {
		return 0
	}
	return pe.clock.Now().Add(pe.prog.waitBudget)
}

// waitGrace returns the host-time liveness bound (0 when faults are off).
func (pe *PE) waitGrace() time.Duration { return pe.prog.waitGrace }

// timeoutAt finalizes a bounded wait that expired: the PE's clock lands
// exactly on the virtual deadline (deterministic regardless of whether
// the virtual budget or the host grace tripped first), a Timeout
// diagnostic is logged for the report, and the typed error is returned
// for the PE body to propagate. peer is the awaited PE (-1 when the wait
// had no single peer).
func (pe *PE) timeoutAt(op string, peer int, start, deadline vtime.Time) error {
	waitStart := pe.clock.Now()
	pe.clock.AdvanceTo(deadline)
	// The whole expired wait is fault blame on the starved PE; no edge —
	// nothing the starved PE received determined its resume time.
	pe.prof.Advance(profile.CatFault, waitStart, pe.clock.Now())
	id := pe.prog.flt.Blame(pe.id, start)
	pe.prog.tmo.add(sanitize.Diagnostic{
		Kind: sanitize.Timeout, PE: pe.id, OtherPE: peer, TargetPE: pe.id,
		SID: sanitize.DynamicSID, Op: op, VTime: start, OtherVT: deadline,
		Count: 1, Fault: int32(id),
	})
	pe.rec.FaultTimeout(id, peer, start, deadline)
	return &TimeoutError{PE: pe.id, Peer: peer, Op: op, Fault: id, Start: start, Deadline: deadline}
}
