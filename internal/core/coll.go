package core

import (
	"errors"
	"fmt"

	"tshmem/internal/profile"
	"tshmem/internal/udn"
	"tshmem/internal/vtime"
)

// OpenSHMEM work-array size constants. TSHMEM's collectives synchronize
// over the UDN and need no symmetric scratch (matching the paper), but the
// API keeps the pSync/pWrk parameters for OpenSHMEM fidelity and validates
// them.
const (
	BarrierSyncSize  = 2
	BcastSyncSize    = 2
	CollectSyncSize  = 4
	ReduceSyncSize   = 4
	ReduceMinWrkSize = 8
	// SyncValue initializes pSync arrays before first use.
	SyncValue int64 = 0
)

// PSync is the symmetric synchronization work array collectives take.
type PSync = Ref[int64]

// checkPSync validates a pSync argument.
func checkPSync(ps PSync, need int) error {
	if !ps.valid() || ps.kind != dynamicRef {
		return fmt.Errorf("%w: pSync must be a dynamic symmetric array", ErrStatic)
	}
	if ps.n < need {
		return fmt.Errorf("%w: pSync has %d elements, need %d", ErrBounds, ps.n, need)
	}
	return nil
}

// collEnter validates a collective call and returns the caller's index in
// the active set plus the tag identifying this collective instance.
func (pe *PE) collEnter(as ActiveSet) (idx int, tag uint32, err error) {
	if err := pe.check(); err != nil {
		return 0, 0, err
	}
	if err := as.validate(pe.n); err != nil {
		return 0, 0, err
	}
	idx, ok := as.Index(pe.id)
	if !ok {
		return 0, 0, fmt.Errorf("%w: PE %d vs %v", ErrNotInSet, pe.id, as)
	}
	gen := pe.nextCollGen(as)
	pe.stats.Collectives++
	// Offset the hash stream so collective tags never collide with barrier
	// tags of the same set/generation.
	return idx, asTag(as, gen) ^ 0x5bd1e995, nil
}

// spansChips reports whether the active set crosses chip boundaries; such
// collectives route their control signals over the mPIPE fabric.
func (pe *PE) spansChips(as ActiveSet) bool {
	return pe.prog.nchips > 1 && !setOnOneChip(pe.prog, as)
}

// sendSigWords sends a control signal for collective flow control: over the
// chip-local UDN, or over the mPIPE fabric when the collective spans chips.
func (pe *PE) sendSigWords(dst int, tag uint32, words []uint64, fab bool) error {
	pe.san.SigSend(dst, tag)
	if fab {
		return pe.sendFab(dst, tag, words)
	}
	return pe.sendUDN(dst, qColl, tag, words)
}

// sendSig sends a one-word control signal. The two branches build separate
// payload literals on purpose: the UDN transport never retains the slice,
// so its literal stays on the caller's stack, while the fabric transport
// may hold the message and would force a shared literal to the heap.
func (pe *PE) sendSig(dst int, tag uint32, word uint64, fab bool) error {
	pe.san.SigSend(dst, tag)
	if fab {
		return pe.sendFab(dst, tag, []uint64{word})
	}
	return pe.sendUDN(dst, qColl, tag, []uint64{word})
}

// recvSig receives the next control signal carrying tag from the chosen
// transport, returning the sender's global rank, the first (up to) two
// payload words — no collective protocol message carries more — and the
// payload's actual word count so protocol code can reject short or
// malformed signals instead of silently reading zeros. Returning a fixed
// array rather than a slice keeps the UDN receive path allocation-free.
// Signals belonging to other in-flight collective instances are stashed.
func (pe *PE) recvSig(tag uint32, fab bool) (src int, w [2]uint64, nw int, err error) {
	if fab {
		m, err := pe.recvFab(tag)
		if err != nil {
			return 0, w, 0, err
		}
		pe.san.SigRecv(tag)
		return m.SrcPE, w, copy(w[:], m.Words), nil
	}
	start := pe.clock.Now()
	deadline := pe.waitDeadline()
	for i, pkt := range pe.collPending {
		if pkt.Tag == tag {
			pe.collPending = append(pe.collPending[:i], pe.collPending[i+1:]...)
			return pe.consumeSig(pkt, tag, start, deadline)
		}
	}
	for {
		pkt, err := pe.port.RecvRaw(qColl)
		if err != nil {
			if errors.Is(err, udn.ErrTimeout) {
				return 0, w, 0, pe.timeoutAt("collective", -1, start, deadline)
			}
			return 0, w, 0, err
		}
		if pkt.Tag == tag {
			return pe.consumeSig(pkt, tag, start, deadline)
		}
		pe.collPending = append(pe.collPending, pkt)
	}
}

// consumeSig merges the clock with a collective signal's arrival,
// enforcing the virtual deadline when fault injection bounds the wait.
func (pe *PE) consumeSig(pkt udn.Packet, tag uint32, start, deadline vtime.Time) (src int, w [2]uint64, nw int, err error) {
	if deadline > 0 && pkt.Arrive > deadline {
		return 0, w, 0, pe.timeoutAt("collective", pe.globalSrc(pkt.Src), start, deadline)
	}
	nw = copy(w[:], pkt.Payload())
	waitStart := pe.clock.Now()
	pe.clock.AdvanceTo(pkt.Arrive)
	pe.profMerge(profile.CatUDNWait, waitStart, pe.globalSrc(pkt.Src), pkt.Sent, pkt.Arrive)
	pe.san.SigRecv(tag)
	return pe.globalSrc(pkt.Src), w, nw, nil
}
