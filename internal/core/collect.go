package core

import (
	"fmt"
	"math"

	"tshmem/internal/stats"
)

// mulElems computes nelems*size for a concatenating collective, guarding
// against int overflow (the product feeds slice bounds). size is at least
// 1 (ActiveSet.validate).
func mulElems(nelems, size int) (int, error) {
	if nelems > 0 && nelems > math.MaxInt/size {
		return 0, fmt.Errorf("%w: %d x %d elements overflows", ErrBounds, nelems, size)
	}
	return nelems * size, nil
}

// FCollect concatenates the same-sized source array from every active-set
// PE, in set order, into target on all of them (shmem_fcollect32/64).
//
// The design follows S IV.D.2: stage 1, all PEs put their array to the
// root (the first PE of the active set); stage 2, a pull-based broadcast
// distributes the concatenated result. Stage 1 scales linearly in total
// data with the number of tiles; stage 2 scales quadratically, which is
// what shifts the Figure 11 performance peaks toward smaller sizes as
// tiles increase.
func FCollect[T Elem](pe *PE, target, source Ref[T], nelems int, as ActiveSet, ps PSync) error {
	idx, _, err := pe.collEnter(as)
	if err != nil {
		return err
	}
	if err := checkPSync(ps, CollectSyncSize); err != nil {
		return err
	}
	if nelems < 0 || nelems > source.Len() {
		return fmt.Errorf("%w: fcollect of %d elements (source %d)", ErrBounds, nelems, source.Len())
	}
	total, err := mulElems(nelems, as.Size)
	if err != nil {
		return err
	}
	if total > target.Len() {
		return fmt.Errorf("%w: fcollect %d x %d elements into %d-element target",
			ErrBounds, nelems, as.Size, target.Len())
	}
	rootPE := as.PE(0)
	start := pe.clock.Now()
	defer pe.rec.OpDone(stats.OpCollect, start, &pe.clock, int64(nelems)*sizeOf[T](), rootPE)

	if err := pe.barrierUDN(as); err != nil {
		return err
	}
	// Stage 1: everyone (including the root, locally) deposits its slice at
	// its set-order offset in the root's target.
	restore := pe.setHint(as.Size)
	err = Put(pe, target.Slice(idx*nelems, (idx+1)*nelems), source.Slice(0, nelems), nelems, rootPE)
	restore()
	if err != nil {
		return err
	}
	if err := pe.barrierUDN(as); err != nil { // root's target is complete
		return err
	}
	// Stage 2: pull-based broadcast of the concatenated result. Like
	// Collect, an empty concatenation has nothing to pull.
	if idx != 0 && total > 0 {
		restore := pe.setHint(as.Size - 1)
		err = Get(pe, target.Slice(0, total), target.Slice(0, total), total, rootPE)
		restore()
		if err != nil {
			return err
		}
	}
	return pe.barrierUDN(as)
}

// Collect is the general collection (shmem_collect32/64): each PE may
// contribute a different number of elements. PEs report their sizes to the
// root over the UDN; the root computes each contributor's offset and
// replies with it together with the eventual total, after which the data
// path is the same put-then-pull-broadcast as FCollect.
func Collect[T Elem](pe *PE, target, source Ref[T], nelems int, as ActiveSet, ps PSync) error {
	idx, tag, err := pe.collEnter(as)
	if err != nil {
		return err
	}
	if err := checkPSync(ps, CollectSyncSize); err != nil {
		return err
	}
	if nelems < 0 || nelems > source.Len() {
		return fmt.Errorf("%w: collect of %d elements (source %d)", ErrBounds, nelems, source.Len())
	}
	rootPE := as.PE(0)
	fab := pe.spansChips(as)
	start := pe.clock.Now()
	defer pe.rec.OpDone(stats.OpCollect, start, &pe.clock, int64(nelems)*sizeOf[T](), rootPE)
	if err := pe.barrierUDN(as); err != nil {
		return err
	}

	var offset, total int
	if idx == 0 {
		// Gather sizes; assign offsets in set order.
		sizes := make([]int, as.Size)
		sizes[0] = nelems
		for i := 1; i < as.Size; i++ {
			src, words, nw, err := pe.recvSig(tag, fab)
			if err != nil {
				return err
			}
			who, ok := as.Index(src)
			if !ok || who == 0 {
				return fmt.Errorf("%w: stray size report from PE %d", ErrBadActiveSet, src)
			}
			if nw < 1 {
				return fmt.Errorf("%w: size report from PE %d carried no payload", ErrBadActiveSet, src)
			}
			sz := int(words[0])
			if sz < 0 {
				return fmt.Errorf("%w: size report from PE %d is negative", ErrBadActiveSet, src)
			}
			sizes[who] = sz
		}
		offs := make([]int, as.Size)
		for i := 1; i < as.Size; i++ {
			offs[i] = offs[i-1] + sizes[i-1]
		}
		total = offs[as.Size-1] + sizes[as.Size-1]
		offset = 0
		for i := 1; i < as.Size; i++ {
			if err := pe.sendSigWords(as.PE(i), tag, []uint64{uint64(offs[i]), uint64(total)}, fab); err != nil {
				return err
			}
		}
	} else {
		if err := pe.sendSig(rootPE, tag, uint64(nelems), fab); err != nil {
			return err
		}
		src, words, nw, err := pe.recvSig(tag, fab)
		if err != nil {
			return err
		}
		if src != rootPE || nw < 2 {
			return fmt.Errorf("%w: offset reply carried %d words from PE %d, want 2 from root PE %d",
				ErrBadActiveSet, nw, src, rootPE)
		}
		offset, total = int(words[0]), int(words[1])
		if offset < 0 || total < 0 {
			return fmt.Errorf("%w: offset reply from root PE %d is negative", ErrBadActiveSet, rootPE)
		}
	}
	if total > target.Len() {
		return fmt.Errorf("%w: collect total %d exceeds %d-element target", ErrBounds, total, target.Len())
	}

	// Stage 1: deposit at the assigned offset on the root.
	if nelems > 0 {
		restore := pe.setHint(as.Size)
		err = Put(pe, target.Slice(offset, offset+nelems), source.Slice(0, nelems), nelems, rootPE)
		restore()
		if err != nil {
			return err
		}
	}
	if err := pe.barrierUDN(as); err != nil {
		return err
	}
	// Stage 2: pull-based broadcast of the concatenation.
	if idx != 0 && total > 0 {
		restore := pe.setHint(as.Size - 1)
		err = Get(pe, target.Slice(0, total), target.Slice(0, total), total, rootPE)
		restore()
		if err != nil {
			return err
		}
	}
	return pe.barrierUDN(as)
}

// FCollectRD is a recursive-doubling allgather, the future-work style
// alternative to the naive FCollect: in round j each PE exchanges its
// accumulated 2^j-block region with the partner at set distance 2^j,
// writing directly into the partner's target at the same offsets (the
// regions are disjoint, so no scratch space is needed). After log2(size)
// rounds every PE holds the full concatenation. Requires a power-of-two
// active set and a dynamic target.
func FCollectRD[T Elem](pe *PE, target, source Ref[T], nelems int, as ActiveSet, ps PSync) error {
	idx, tag, err := pe.collEnter(as)
	if err != nil {
		return err
	}
	if err := checkPSync(ps, CollectSyncSize); err != nil {
		return err
	}
	if !isPow2(as.Size) {
		return fmt.Errorf("%w: recursive-doubling fcollect needs a power-of-two set, got %d",
			ErrBadActiveSet, as.Size)
	}
	if nelems < 0 || nelems > source.Len() {
		return fmt.Errorf("%w: fcollect of %d elements (source %d)", ErrBounds, nelems, source.Len())
	}
	total, err := mulElems(nelems, as.Size)
	if err != nil {
		return err
	}
	if total > target.Len() {
		return fmt.Errorf("%w: fcollect %d x %d elements into %d-element target",
			ErrBounds, nelems, as.Size, target.Len())
	}
	if target.kind != dynamicRef {
		return fmt.Errorf("%w: recursive-doubling fcollect needs a dynamic target", ErrStatic)
	}
	fab := pe.spansChips(as)
	start := pe.clock.Now()
	defer pe.rec.OpDone(stats.OpCollect, start, &pe.clock, int64(nelems)*sizeOf[T](), int(stats.NoPeer))
	if err := pe.barrierUDN(as); err != nil {
		return err
	}
	// Seed my own block at my set-order position.
	if err := Put(pe, target.Slice(idx*nelems, (idx+1)*nelems), source.Slice(0, nelems), nelems, pe.id); err != nil {
		return err
	}
	round := 0
	for mask := 1; mask < as.Size; mask <<= 1 {
		partner := as.PE(idx ^ mask)
		// My accumulated region covers the mask-aligned group of blocks I
		// currently hold; the partner holds the sibling group.
		base := idx &^ (mask - 1)
		region := target.Slice(base*nelems, (base+mask)*nelems)
		restore := pe.setHint(2)
		err := Put(pe, region, region, mask*nelems, partner)
		restore()
		if err != nil {
			return err
		}
		pe.Quiet()
		if err := pe.sendSig(partner, tag^uint32(round+1), 1, fab); err != nil {
			return err
		}
		if _, _, _, err := pe.recvSig(tag^uint32(round+1), fab); err != nil {
			return err
		}
		round++
	}
	return pe.barrierUDN(as)
}
