package core

import (
	"fmt"

	"tshmem/internal/stats"
)

// Broadcast copies nelems elements of source on the root (given as a
// zero-based ordinal within the active set) into target on every other
// member (shmem_broadcast32/64). The root's target is not updated, per the
// OpenSHMEM specification. The algorithm is selected by Config.Bcast;
// TSHMEM defaults to the pull-based design the paper found scalable
// (Figure 10).
func Broadcast[T Elem](pe *PE, target, source Ref[T], nelems, root int, as ActiveSet, ps PSync) error {
	switch pe.prog.cfg.Bcast {
	case PushBcast:
		return BroadcastPush(pe, target, source, nelems, root, as, ps)
	case BinomialBcast:
		return BroadcastBinomial(pe, target, source, nelems, root, as, ps)
	default:
		return BroadcastPull(pe, target, source, nelems, root, as, ps)
	}
}

func bcastEnter[T Elem](pe *PE, target, source Ref[T], nelems, root int, as ActiveSet, ps PSync) (idx int, tag uint32, err error) {
	idx, tag, err = pe.collEnter(as)
	if err != nil {
		return 0, 0, err
	}
	if err := checkPSync(ps, BcastSyncSize); err != nil {
		return 0, 0, err
	}
	if root < 0 || root >= as.Size {
		return 0, 0, fmt.Errorf("%w: root ordinal %d of %d", ErrBadActiveSet, root, as.Size)
	}
	if nelems < 0 || nelems > target.Len() || nelems > source.Len() {
		return 0, 0, fmt.Errorf("%w: broadcast of %d elements (target %d, source %d)",
			ErrBounds, nelems, target.Len(), source.Len())
	}
	return idx, tag, nil
}

// BroadcastPull is the paper's scalable broadcast: every non-root PE in the
// active set gets the data from the root, distributing the work across the
// abundant iMesh bandwidth (S IV.D.1, Figure 10).
func BroadcastPull[T Elem](pe *PE, target, source Ref[T], nelems, root int, as ActiveSet, ps PSync) error {
	idx, _, err := bcastEnter(pe, target, source, nelems, root, as, ps)
	if err != nil {
		return err
	}
	start := pe.clock.Now()
	defer pe.rec.OpDone(stats.OpBroadcast, start, &pe.clock, int64(nelems)*sizeOf[T](), as.PE(root))
	if err := pe.barrierUDN(as); err != nil { // root's source is ready
		return err
	}
	if idx != root {
		restore := pe.setHint(as.Size - 1)
		err = Get(pe, target, source, nelems, as.PE(root))
		restore()
		if err != nil {
			return err
		}
	}
	return pe.barrierUDN(as) // everyone has pulled; root may reuse source
}

// BroadcastPush is the baseline design: the root puts the data to every
// other PE sequentially. Aggregate bandwidth does not grow with the number
// of participating tiles (S IV.D.1, Figure 9).
func BroadcastPush[T Elem](pe *PE, target, source Ref[T], nelems, root int, as ActiveSet, ps PSync) error {
	idx, _, err := bcastEnter(pe, target, source, nelems, root, as, ps)
	if err != nil {
		return err
	}
	start := pe.clock.Now()
	defer pe.rec.OpDone(stats.OpBroadcast, start, &pe.clock, int64(nelems)*sizeOf[T](), as.PE(root))
	if err := pe.barrierUDN(as); err != nil {
		return err
	}
	if idx == root {
		restore := pe.setHint(1) // serialized on the root
		defer restore()
		for k := 0; k < as.Size; k++ {
			if k == root {
				continue
			}
			if err := Put(pe, target, source, nelems, as.PE(k)); err != nil {
				return err
			}
		}
		pe.Quiet()
	}
	return pe.barrierUDN(as)
}

// BroadcastBinomial is the log-depth tree broadcast the paper lists as
// future algorithmic exploration. Data propagates along a binomial tree of
// puts; each forwarding step is flow-controlled with a UDN signal.
func BroadcastBinomial[T Elem](pe *PE, target, source Ref[T], nelems, root int, as ActiveSet, ps PSync) error {
	idx, tag, err := bcastEnter(pe, target, source, nelems, root, as, ps)
	if err != nil {
		return err
	}
	t0 := pe.clock.Now()
	defer pe.rec.OpDone(stats.OpBroadcast, t0, &pe.clock, int64(nelems)*sizeOf[T](), as.PE(root))
	if err := pe.barrierUDN(as); err != nil {
		return err
	}
	n := as.Size
	fab := pe.spansChips(as)
	rel := (idx - root + n) % n // rank relative to the root

	// Non-root PEs forward out of their target buffer once it is filled.
	buf := target
	if idx == root {
		buf = source
	}
	if rel != 0 {
		if _, _, _, err := pe.recvSig(tag, fab); err != nil {
			return err
		}
	}
	// Ranks forward to rel+mask for every mask >= (lowest power of two
	// > rel), standard binomial order.
	start := 1
	for start <= rel {
		start <<= 1
	}
	for mask := start; ; mask <<= 1 {
		child := rel + mask
		if child >= n {
			break
		}
		childPE := as.PE((child + root) % n)
		if err := Put(pe, target, buf, nelems, childPE); err != nil {
			return err
		}
		pe.Quiet()
		if err := pe.sendSig(childPE, tag, 1, fab); err != nil {
			return err
		}
	}
	return pe.barrierUDN(as)
}
