package core

import (
	"reflect"
	"runtime"
	"testing"

	"tshmem/internal/mesh"
	"tshmem/internal/vtime"
)

// determinismBody is a communication-heavy observed program exercising the
// paths the host fast-path work touches: memoized RMA costs, the barrier
// generation fast path, collective signals, and the sharded scratch arena
// (via static-static puts). Every run must produce bit-identical virtual
// time and counters regardless of host scheduling.
//
// Phases are separated by barriers so no symmetric object is concurrently
// read and written on the host — SHMEM semantics require that of the
// program, not the substrate. The static put uses distinct source/target
// objects because the target side is written by the remote tile's
// interrupt servicer while the owner may be mid-transfer itself.
func determinismBody(pe *PE) error {
	const n = 256
	x, err := Malloc[int64](pe, n)
	if err != nil {
		return err
	}
	y, err := Malloc[int64](pe, n)
	if err != nil {
		return err
	}
	ps, err := Malloc[int64](pe, BcastSyncSize)
	if err != nil {
		return err
	}
	stSrc, err := DeclareStatic[int64](pe, "det-src", 64)
	if err != nil {
		return err
	}
	stDst, err := DeclareStatic[int64](pe, "det-dst", 64)
	if err != nil {
		return err
	}
	lv, err := Local(pe, x)
	if err != nil {
		return err
	}
	for i := range lv {
		lv[i] = int64(pe.MyPE()*n + i)
	}
	as := AllPEs(pe.NumPEs())
	for iter := 0; iter < 3; iter++ {
		next := (pe.MyPE() + 1) % pe.NumPEs()
		if err := Put(pe, y, x, n, next); err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if err := Get(pe, x, y, n, (pe.MyPE()+pe.NumPEs()-1)%pe.NumPEs()); err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		// Static-static transfer: exercises the UDN interrupt redirection
		// and a scratch-arena bounce on every PE concurrently.
		if err := Put(pe, stDst, stSrc, 64, next); err != nil {
			return err
		}
		if err := BroadcastPull(pe, y, x, n, 0, as, ps); err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.NumPEs() >= 4 {
			half := ActiveSet{Start: 0, LogStride: 1, Size: pe.NumPEs() / 2}
			if half.Contains(pe.MyPE()) {
				if err := pe.Barrier(half); err != nil {
					return err
				}
			}
		}
	}
	return pe.BarrierAll()
}

// runDeterminism runs the observed program and returns its report.
func runDeterminism(t *testing.T) *Report {
	t.Helper()
	rep, err := Run(Config{NPEs: 8, HeapPerPE: 1 << 20, Observe: true}, determinismBody)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// compareReports asserts that two runs of the same program agree on every
// deterministic output: per-PE virtual times, substrate counters, and the
// per-chip mesh link traffic. The per-tile QueueHWM is deliberately NOT
// compared: it samples the host-side receive-channel occupancy at send
// time, a scheduling diagnostic that is host-dependent by design.
func compareReports(t *testing.T, label string, a, b *Report) {
	t.Helper()
	if !reflect.DeepEqual(a.PETimes, b.PETimes) {
		t.Errorf("%s: PETimes diverged:\n  a: %v\n  b: %v", label, a.PETimes, b.PETimes)
	}
	if a.MaxTime != b.MaxTime || a.MinTime != b.MinTime {
		t.Errorf("%s: makespan diverged: [%v,%v] vs [%v,%v]",
			label, a.MinTime, a.MaxTime, b.MinTime, b.MaxTime)
	}
	if !reflect.DeepEqual(a.PECounters, b.PECounters) {
		for i := range a.PECounters {
			if !reflect.DeepEqual(a.PECounters[i], b.PECounters[i]) {
				t.Errorf("%s: PE %d counters diverged", label, i)
			}
		}
	}
	if len(a.MeshUtil) != len(b.MeshUtil) {
		t.Fatalf("%s: %d vs %d mesh snapshots", label, len(a.MeshUtil), len(b.MeshUtil))
	}
	for i := range a.MeshUtil {
		ua, ub := a.MeshUtil[i], b.MeshUtil[i]
		if ua.Chip != ub.Chip || ua.Width != ub.Width || ua.Height != ub.Height {
			t.Errorf("%s: chip %d geometry diverged", label, i)
		}
		for y := 0; y < ua.Height; y++ {
			for x := 0; x < ua.Width; x++ {
				for d := mesh.LinkDir(0); d < mesh.NumLinkDirs; d++ {
					if ua.Link(x, y, d) != ub.Link(x, y, d) {
						t.Errorf("%s: chip %d link (%d,%d) %v word counts diverged", label, i, x, y, d)
					}
					if ua.Packets(x, y, d) != ub.Packets(x, y, d) {
						t.Errorf("%s: chip %d link (%d,%d) %v packet counts diverged", label, i, x, y, d)
					}
				}
			}
		}
	}
}

// TestDeterministicRepeat runs the same observed program twice on the same
// host configuration: all virtual-time outputs must be bit-identical.
func TestDeterministicRepeat(t *testing.T) {
	a := runDeterminism(t)
	b := runDeterminism(t)
	compareReports(t, "repeat", a, b)
	if a.MaxTime == 0 {
		t.Error("program did no modeled work")
	}
	var total vtime.Duration
	for _, d := range a.PETimes {
		total += d
	}
	if total == 0 {
		t.Error("all PE clocks stayed at zero")
	}
}

// TestDeterministicAcrossGOMAXPROCS pins the host to one OS thread and
// re-runs the program: serializing all PE goroutines must not move a
// single modeled picosecond, counter, or link count relative to the
// fully parallel run.
func TestDeterministicAcrossGOMAXPROCS(t *testing.T) {
	parallel := runDeterminism(t)
	old := runtime.GOMAXPROCS(1)
	serial := runDeterminism(t)
	runtime.GOMAXPROCS(old)
	compareReports(t, "gomaxprocs", parallel, serial)
}
