// Package core implements TSHMEM: an OpenSHMEM 1.0 library for the
// (simulated) Tilera TILE-Gx and TILEPro many-core processors, following
// the design of Lam, George and Lam, "TSHMEM: Shared-Memory Parallel
// Computing on Tilera Many-Core Processors".
//
// # Model
//
// A TSHMEM program is SPMD: Run launches one goroutine per processing
// element (PE), each bound one-to-one to a tile of the simulated chip. A
// TMC common-memory segment is partitioned symmetrically among the PEs,
// providing the PGAS memory model; each tile reports its partition's start
// address to every other tile over the UDN during start_pes, exactly as the
// paper's launcher does.
//
// Dynamic symmetric objects are allocated with Malloc (shmalloc): a
// deterministic doubly-linked-list allocator guarantees that collective
// allocation sequences produce identical offsets on every PE, so a tile
// computes a remote object's address as the target partition base plus its
// own offset. Static symmetric objects (DeclareStatic) live in per-PE
// private memory — inaccessible to other PEs — and remote transfers
// involving them are redirected over UDN interrupts on the TILE-Gx
// (Section IV.B.2); the TILEPro lacks UDN interrupt support and returns
// ErrNotSupported.
//
// One-sided transfers (Put/Get families), synchronization (Barrier,
// Fence/Quiet, Wait/WaitUntil), collectives (Broadcast, Collect, FCollect,
// reductions), atomics, and distributed locks complete the OpenSHMEM 1.0
// surface, plus the paper's proposed shmem_finalize extension.
//
// # Synchronization algorithms
//
// Barriers and locks are pluggable (syncalgo.go; docs/SYNC.md). The
// paper's designs are the defaults: BarrierAll runs the linear UDN
// signal chain (or the TMC spin barrier with Config.Barrier), and
// SetLock is a CAS spin loop. Config.BarrierAlgo additionally selects a
// sense-reversing counter barrier, the dissemination barrier, the
// tournament barrier, or the MCS tree barrier; Config.LockAlgo selects
// ticket or MCS queue locks. Every algorithm charges honest costs
// through the same UDN/mesh/cache models — standalone sends pay the
// full send-call cost, chain forwards the cheap hot-loop cost, counter
// traffic the atomic service time — so their crossovers are model
// outputs, not assertions. All variants publish the sanitizer's
// happens-before edges and bound their blocking waits under fault
// injection like the defaults.
//
// # Virtual time
//
// Every PE carries a virtual clock. Substrate operations advance it using
// the chip's calibrated cost models (see internal/arch); messages and
// barriers merge clocks. Benchmarks measure virtual time, reproducing the
// paper's latency/bandwidth curves deterministically on any host. The
// functional side is real: bytes move through real shared memory and
// results are exact.
package core
