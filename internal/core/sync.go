package core

import (
	"fmt"

	"tshmem/internal/profile"
	"tshmem/internal/stats"
)

// Cmp is a point-to-point synchronization comparison (SHMEM_CMP_*).
type Cmp int

const (
	CmpEQ Cmp = iota // equal
	CmpNE            // not equal
	CmpGT            // greater than
	CmpLE            // less than or equal
	CmpLT            // less than
	CmpGE            // greater than or equal
)

func (c Cmp) String() string {
	switch c {
	case CmpEQ:
		return "=="
	case CmpNE:
		return "!="
	case CmpGT:
		return ">"
	case CmpLE:
		return "<="
	case CmpLT:
		return "<"
	case CmpGE:
		return ">="
	default:
		return fmt.Sprintf("Cmp(%d)", int(c))
	}
}

// evalCmp applies the comparison. Integer is an ordered constraint, so
// operators apply directly.
func evalCmp[T Integer](c Cmp, have, want T) (bool, error) {
	switch c {
	case CmpEQ:
		return have == want, nil
	case CmpNE:
		return have != want, nil
	case CmpGT:
		return have > want, nil
	case CmpLE:
		return have <= want, nil
	case CmpLT:
		return have < want, nil
	case CmpGE:
		return have >= want, nil
	default:
		return false, fmt.Errorf("tshmem: unknown comparison %d", int(c))
	}
}

// WaitUntil blocks until the calling PE's instance of ivar (element 0)
// satisfies cmp against value (shmem_wait_until). The variable must be a
// dynamic symmetric object written by elemental puts or atomics — exactly
// the discipline real SHMEM codes follow for synchronization flags.
//
// The waiter's clock merges with the virtual time at which the satisfying
// store became visible.
func WaitUntil[T Integer](pe *PE, ivar Ref[T], cmp Cmp, value T) error {
	if err := pe.check(); err != nil {
		return err
	}
	if !ivar.valid() || ivar.kind != dynamicRef {
		return fmt.Errorf("%w: WaitUntil needs a dynamic symmetric variable", ErrStatic)
	}
	es := sizeOf[T]()
	part := pe.partBytes(pe.id)
	off := ivar.off

	check := func() bool {
		cur := fromBits[T](atomicLoadElem(part, off, es))
		ok, cerr := evalCmp(cmp, cur, value)
		return cerr == nil && ok
	}
	// Validate the comparison once up front so a bad Cmp errors instead of
	// hanging.
	if _, err := evalCmp(cmp, value, value); err != nil {
		return err
	}

	start := pe.clock.Now()
	deadline := pe.waitDeadline()
	hub := &pe.prog.hubs[pe.id]
	stamp, st := hub.await(pe, off, check, pe.waitGrace())
	switch st {
	case hubAborted:
		return fmt.Errorf("tshmem: program aborted while PE %d waited on a symmetric variable", pe.id)
	case hubTimedOut:
		// The writer is starved by fault injection: the flag never got
		// written within the host grace. The virtual outcome is the
		// deadline expiring.
		return pe.timeoutAt("wait_until", -1, start, deadline)
	}
	pe.clock.Advance(pe.prog.chip.Cycles(2))
	if deadline > 0 && stamp.t > deadline {
		// The satisfying store exists but became visible only after the
		// virtual deadline (the writer was slowed past the budget).
		return pe.timeoutAt("wait_until", -1, start, deadline)
	}
	if stamp.t > 0 {
		waitStart := pe.clock.Now()
		pe.clock.AdvanceTo(stamp.t)
		// The store's visibility time is the writer's clock at the store,
		// so the edge has zero transport: idle blame plus a jump to the
		// writer for the critical path.
		pe.profMerge(profile.CatUDNWait, waitStart, int(stamp.writer), stamp.t, stamp.t)
	}
	// The satisfying store was a P or atomic on this word; acquire its
	// publisher's clock.
	pe.san.WaitEdge(off)
	pe.rec.OpDone(stats.OpWait, start, &pe.clock, 0, int(stats.NoPeer))
	return nil
}

// Wait blocks until the variable changes from value (shmem_wait: wait until
// ivar != value).
func Wait[T Integer](pe *PE, ivar Ref[T], value T) error {
	return WaitUntil(pe, ivar, CmpNE, value)
}
