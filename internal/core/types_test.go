package core

import (
	"errors"
	"testing"

	"tshmem/internal/vtime"
)

// TestElementalAllWidths drives P/G and WaitUntil across every elemental
// width, including the 16-bit CAS-synthesized path and bytes.
func TestElementalAllWidths(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		b8, err := Malloc[uint8](pe, 8)
		if err != nil {
			return err
		}
		i16, err := Malloc[int16](pe, 8)
		if err != nil {
			return err
		}
		u32, err := Malloc[uint32](pe, 8)
		if err != nil {
			return err
		}
		u64, err := Malloc[uint64](pe, 8)
		if err != nil {
			return err
		}
		f32, err := Malloc[float32](pe, 8)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if err := P(pe, b8.At(3), uint8(0xAB), 1); err != nil {
				return err
			}
			if err := P(pe, i16.At(1), int16(-77), 1); err != nil {
				return err
			}
			if err := P(pe, i16.At(2), int16(88), 1); err != nil {
				return err
			}
			if err := P(pe, u32, uint32(0xDEADBEEF), 1); err != nil {
				return err
			}
			if err := P(pe, u64, uint64(1)<<62, 1); err != nil {
				return err
			}
			if err := P(pe, f32, float32(1.75), 1); err != nil {
				return err
			}
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 1 {
			if v := MustLocal(pe, b8)[3]; v != 0xAB {
				t.Errorf("byte elemental: %#x", v)
			}
			if v := MustLocal(pe, i16)[1]; v != -77 {
				t.Errorf("int16 elemental: %d", v)
			}
			// Adjacent 16-bit element untouched by the CAS store.
			if v := MustLocal(pe, i16)[2]; v != 88 {
				t.Errorf("adjacent int16 clobbered: %d", v)
			}
		}
		// G across all widths.
		if v, err := G(pe, b8.At(3), 1); err != nil || v != 0xAB {
			t.Errorf("byte g: %v %v", v, err)
		}
		if v, err := G(pe, i16.At(1), 1); err != nil || v != -77 {
			t.Errorf("int16 g: %v %v", v, err)
		}
		if v, err := G(pe, u32, 1); err != nil || v != 0xDEADBEEF {
			t.Errorf("uint32 g: %#x %v", v, err)
		}
		if v, err := G(pe, u64, 1); err != nil || v != uint64(1)<<62 {
			t.Errorf("uint64 g: %#x %v", v, err)
		}
		if v, err := G(pe, f32, 1); err != nil || v != 1.75 {
			t.Errorf("float32 g: %v %v", v, err)
		}
		return pe.BarrierAll()
	})
}

// TestWaitOnInt16 exercises shmem_short_wait semantics over the
// CAS-synthesized 16-bit atomics.
func TestWaitOnInt16(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		flag, err := Malloc[int16](pe, 2)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if err := P(pe, flag.At(1), int16(7), 1); err != nil {
				return err
			}
		} else {
			if err := WaitUntil(pe, flag.Slice(1, 2), CmpEQ, int16(7)); err != nil {
				return err
			}
		}
		return pe.BarrierAll()
	})
}

func TestSwapInt32AndUnsigned(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		x32, err := Malloc[int32](pe, 1)
		if err != nil {
			return err
		}
		ux, err := Malloc[uint64](pe, 1)
		if err != nil {
			return err
		}
		uf, err := Malloc[float32](pe, 1)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if old, err := Swap(pe, x32, int32(5), 1); err != nil || old != 0 {
				t.Errorf("int32 swap: %v %v", old, err)
			}
			if old, err := Swap(pe, ux, uint64(9), 1); err != nil || old != 0 {
				t.Errorf("uint64 swap: %v %v", old, err)
			}
			if old, err := Swap(pe, uf, float32(2.5), 1); err != nil || old != 0 {
				t.Errorf("float32 swap: %v %v", old, err)
			}
			if _, err := CSwap(pe, ux, uint64(9), uint64(11), 1); err != nil {
				return err
			}
			if _, err := FAdd(pe, x32, int32(3), 1); err != nil {
				return err
			}
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 1 {
			if got := MustLocal(pe, x32)[0]; got != 8 {
				t.Errorf("int32 after swap+fadd = %d", got)
			}
			if got := MustLocal(pe, ux)[0]; got != 11 {
				t.Errorf("uint64 after cswap = %d", got)
			}
		}
		return pe.BarrierAll()
	})
}

// TestBroadcastDispatch exercises the Config.Bcast selection through the
// generic Broadcast entry point.
func TestBroadcastDispatch(t *testing.T) {
	for _, algo := range []BcastAlgo{PullBcast, PushBcast, BinomialBcast} {
		cfg := gxCfg(5)
		cfg.Bcast = algo
		runT(t, cfg, func(pe *PE) error {
			target, source, ps := collEnv(t, pe, 16, 16)
			src := MustLocal(pe, source)
			for i := range src {
				src[i] = int32(pe.MyPE()*10 + i)
			}
			if err := Broadcast(pe, target, source, 16, 1, AllPEs(5), ps); err != nil {
				return err
			}
			if pe.MyPE() != 1 {
				if got := MustLocal(pe, target)[5]; got != 15 {
					t.Errorf("%v: target[5] = %d", algo, got)
				}
			}
			return pe.BarrierAll()
		})
	}
}

// TestReduceDispatchRD exercises Config.Reduce = RecursiveDoubling through
// the public reduction entry points, including the naive fallback when the
// preconditions fail.
func TestReduceDispatchRD(t *testing.T) {
	cfg := gxCfg(8)
	cfg.Reduce = RecursiveDoubling
	runT(t, cfg, func(pe *PE) error {
		target, source, pwrk, ps := reduceEnv(t, pe, 8)
		src := MustLocal(pe, source)
		for i := range src {
			src[i] = int64(pe.MyPE())
		}
		// Power-of-two set + big pWrk: the RD engine runs.
		if err := SumToAll(pe, target, source, 8, AllPEs(8), pwrk, ps); err != nil {
			return err
		}
		if got := MustLocal(pe, target)[0]; got != 28 {
			t.Errorf("rd-dispatched sum = %d", got)
		}
		// Non-power-of-two subset falls back to naive.
		sub := ActiveSet{Start: 0, Size: 7}
		if sub.Contains(pe.MyPE()) {
			if err := SumToAll(pe, target, source, 8, sub, pwrk, ps); err != nil {
				return err
			}
			if got := MustLocal(pe, target)[0]; got != 21 {
				t.Errorf("fallback sum = %d", got)
			}
		}
		return pe.BarrierAll()
	})
}

func TestAlgoStringers(t *testing.T) {
	if NaiveReduce.String() != "naive" || RecursiveDoubling.String() != "recursive-doubling" {
		t.Error("ReduceAlgo strings")
	}
	if PullBcast.String() != "pull" || PushBcast.String() != "push" || BinomialBcast.String() != "binomial" {
		t.Error("BcastAlgo strings")
	}
	if UDNBarrier.String() != "udn-linear" || TMCSpinBarrier.String() != "tmc-spin" {
		t.Error("BarrierImpl strings")
	}
	for c, want := range map[Cmp]string{CmpEQ: "==", CmpNE: "!=", CmpGT: ">", CmpLE: "<=", CmpLT: "<", CmpGE: ">="} {
		if c.String() != want {
			t.Errorf("Cmp %d prints %q", int(c), c.String())
		}
	}
	if Cmp(42).String() == "" {
		t.Error("unknown Cmp should print something")
	}
}

func TestSmallHelpers(t *testing.T) {
	runT(t, gxCfg(2), func(pe *PE) error {
		if pe.Program() == nil || pe.Program().Chip() == nil {
			t.Error("Program accessor broken")
		}
		if pe.Program().NChips() != 1 {
			t.Error("NChips on single chip")
		}
		if c, err := pe.ChipOf(1); err != nil || c != 0 {
			t.Errorf("ChipOf: %d %v", c, err)
		}
		if _, err := pe.ChipOf(9); !errors.Is(err, ErrBadPE) {
			t.Errorf("ChipOf bad rank: %v", err)
		}
		if pe.HeapFree() <= 0 || pe.HeapFree() > 1<<20 {
			t.Errorf("HeapFree = %d", pe.HeapFree())
		}
		t0 := pe.Now()
		pe.ChargeStream(1<<20, 16<<20)
		if pe.Now() == t0 {
			t.Error("ChargeStream free for a thrashing working set")
		}
		restore := pe.WithConcurrency(8)
		t0 = pe.Now()
		x, err := Malloc[byte](pe, 1<<16)
		if err != nil {
			return err
		}
		if err := Put(pe, x, x, 1<<16, pe.MyPE()); err != nil {
			return err
		}
		hinted := pe.Now().Sub(t0)
		restore()
		t0 = pe.Now()
		if err := Put(pe, x, x, 1<<16, pe.MyPE()); err != nil {
			return err
		}
		unhinted := pe.Now().Sub(t0)
		if hinted <= unhinted {
			t.Errorf("WithConcurrency(8) should slow the copy: %v vs %v", hinted, unhinted)
		}
		return nil
	})
}

func TestBarrierAfterAbortSurvives(t *testing.T) {
	// A failing PE must not leave vtime inconsistencies; just assert the
	// error surfaces and Run returns.
	_, err := Run(gxCfg(4), func(pe *PE) error {
		if pe.MyPE() == 3 {
			return errors.New("deliberate failure")
		}
		// Others head into a barrier that can never complete.
		err := pe.BarrierAll()
		_ = err // ErrClosed or nil depending on timing; both fine
		return nil
	})
	if err == nil {
		t.Fatal("error not propagated")
	}
	_ = vtime.Nanosecond
}
