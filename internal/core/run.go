package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tshmem/internal/alloc"
	"tshmem/internal/arch"
	"tshmem/internal/cache"
	"tshmem/internal/fault"
	"tshmem/internal/mesh"
	"tshmem/internal/mpipe"
	"tshmem/internal/profile"
	"tshmem/internal/sanitize"
	"tshmem/internal/stats"
	"tshmem/internal/tmc"
	"tshmem/internal/udn"
	"tshmem/internal/vtime"
)

// BarrierImpl selects the implementation backing BarrierAll.
type BarrierImpl int

const (
	// UDNBarrier is the paper's design: a linear wait+release signal chain
	// over the UDN, tagged with an active-set ID (Section IV.C.1).
	UDNBarrier BarrierImpl = iota
	// TMCSpinBarrier backs BarrierAll with the TMC spin barrier, the
	// optimization the paper proposes for the TILE-Gx, where the spin
	// barrier outperforms the UDN chain (Section IV.E). Subset barriers
	// still use the UDN chain.
	TMCSpinBarrier
)

func (b BarrierImpl) String() string {
	if b == TMCSpinBarrier {
		return "tmc-spin"
	}
	return "udn-linear"
}

// BcastAlgo selects the default algorithm used by Broadcast.
type BcastAlgo int

const (
	// PullBcast: every PE in the active set gets the data from the root.
	// The paper's preferred design (Figure 10).
	PullBcast BcastAlgo = iota
	// PushBcast: the root puts to each PE sequentially (Figure 9).
	PushBcast
	// BinomialBcast: log-depth tree of puts; the paper's future-work
	// algorithm, implemented here as an extension.
	BinomialBcast
)

func (b BcastAlgo) String() string {
	switch b {
	case PushBcast:
		return "push"
	case BinomialBcast:
		return "binomial"
	default:
		return "pull"
	}
}

// Config describes a TSHMEM launch: the chip, the number of PEs, and the
// symmetric heap size per PE, mirroring the environment the executable
// launcher sets up in Section IV.A.
type Config struct {
	Chip      *arch.Chip // nil means TILE-Gx8036
	NPEs      int        // number of processing elements (one per tile)
	HeapPerPE int64      // symmetric partition size; 0 means 8 MiB

	// ScratchBytes sizes the common-memory arena used for temporary
	// buffers in static-static transfers (S IV.B.2); 0 means 4 MiB.
	ScratchBytes int64

	// Barrier selects the BarrierAll implementation.
	Barrier BarrierImpl
	// BarrierAlgo selects the algorithm behind Barrier and BarrierAll from
	// the synchronization-algorithm library (docs/SYNC.md). The zero value
	// preserves the legacy dispatch: BarrierAll honors Barrier above and
	// subset barriers use the paper's linear chain. Collectives keep their
	// internal barriers on the linear chain either way. The UDN-signal
	// algorithms (dissemination, tournament, mcs-tree) are chip-local and
	// reject multi-chip configs at launch.
	BarrierAlgo BarrierAlgo
	// LockAlgo selects the SetLock/ClearLock/TestLock implementation; the
	// zero value is the legacy CAS spin lock with exponential backoff.
	LockAlgo LockAlgo
	// Engine selects the execution engine: the zero value runs one host
	// goroutine per PE (the legacy engine), EngineEvent schedules parked
	// PEs one at a time from a virtual-time calendar. Virtual time,
	// reports, traces, profiles, and diagnostics are byte-identical
	// between engines; only host-side scheduling differs (docs/
	// PERFORMANCE.md, "Engines").
	Engine Engine
	// Bcast selects the default Broadcast algorithm.
	Bcast BcastAlgo
	// Reduce selects the default reduction algorithm.
	Reduce ReduceAlgo
	// Homing selects the memory-homing strategy for common memory. TSHMEM
	// uses hash-for-home (the default and the paper's choice); local and
	// remote homing are provided for the homing-strategy exploration the
	// paper lists as future work.
	Homing cache.Homing

	// NChips spreads the PEs over multiple chips connected by mPIPE links —
	// the multi-device shared-memory extension of the paper's future work
	// (Section VI). 0 or 1 means a single chip. Requires a chip with an
	// mPIPE engine (TILE-Gx). PEs are block-distributed: the first
	// ceil(NPEs/NChips) ranks on chip 0, and so on. Cross-chip transfers
	// pay mPIPE wire costs; static-variable redirection does not cross
	// chips (UDN interrupts are chip-local).
	NChips int

	// Observe enables per-PE substrate counters (internal/stats). Off by
	// default: the uninstrumented path is allocation-free.
	Observe bool
	// Trace additionally buffers a structured event per substrate
	// operation, exported by Report.Trace/TraceTo as Chrome trace_event
	// JSON keyed on virtual time. Trace implies Observe.
	Trace bool
	// TraceCap bounds the per-PE event buffer; 0 means
	// stats.DefaultTraceCap. Events beyond the cap are dropped and counted
	// in Counters.TraceDropped.
	TraceCap int

	// Sanitize enables the happens-before checker over symmetric memory
	// (internal/sanitize): the run additionally tracks synchronization
	// edges and shadow accesses, and Report.Diagnostics lists programs
	// that only work because the simulator copies puts eagerly (missing
	// Quiet/Fence/barrier, racing puts, lock misuse). Off by default: the
	// unsanitized path is allocation-free and virtual time is identical
	// either way (the checker never touches clocks).
	Sanitize bool

	// Profile enables the virtual-time causal profiler (internal/profile):
	// every PE keeps a blame ledger partitioning its makespan into wait,
	// transport, and compute categories, and the synchronization edges the
	// run already derives for the sanitizer feed a happens-before walk
	// that extracts the critical path. Report.Profile returns the result.
	// Off by default: the unprofiled path is allocation-free and virtual
	// time is identical either way (the profiler never touches clocks).
	Profile bool

	// sanitizeStrict makes Run fail when the sanitizer found anything. It
	// is only set via the TSHMEM_SANITIZE environment variable, giving
	// scripts (ci.sh, examples) a pass/fail signal without code changes.
	sanitizeStrict bool

	// Faults attaches a deterministic substrate fault plan (internal/
	// fault): UDN queue stalls, dropped interrupts, slow links, slow or
	// dead tiles, stuck cache-home tiles. A seed-only plan (Events empty,
	// Seed non-zero) is expanded with fault.FromSeed at launch; a plan
	// with no events and no seed just arms the bounded waits without
	// perturbing anything. With faults active every blocking path is
	// bounded: a starved wait surfaces a Timeout diagnostic in
	// Report.Diagnostics and Run returns an ErrTimeout-wrapping error
	// instead of hanging. Nil (the default) is the perfect substrate.
	// See docs/ROBUSTNESS.md.
	Faults *fault.Plan

	// WaitBudget bounds each blocking wait in virtual time when Faults is
	// set; 0 means DefaultWaitBudget. A wait that cannot complete by
	// start+WaitBudget times out with its clock exactly on that deadline.
	WaitBudget vtime.Duration

	// WaitGrace is the host-time liveness fallback for waits whose
	// traffic a fault swallowed entirely; 0 means DefaultWaitGrace. It
	// never affects virtual time — only how long the host blocks before
	// declaring the (virtually determined) timeout.
	WaitGrace time.Duration
}

func (c *Config) fill() error {
	if c.Chip == nil {
		c.Chip = arch.Gx8036()
	}
	if err := c.Chip.Validate(); err != nil {
		return err
	}
	if c.NPEs <= 0 {
		return fmt.Errorf("tshmem: NPEs must be positive, got %d", c.NPEs)
	}
	if c.NChips == 0 {
		c.NChips = 1
	}
	if c.NChips < 1 {
		return fmt.Errorf("tshmem: NChips must be positive, got %d", c.NChips)
	}
	if c.NChips > 1 && !c.Chip.HasMPIPE {
		return fmt.Errorf("tshmem: multi-chip runs need an mPIPE engine; %s has none", c.Chip.Name)
	}
	if c.NPEs > c.NChips*c.Chip.Tiles {
		return fmt.Errorf("tshmem: %d PEs exceed %d x %s's %d tiles",
			c.NPEs, c.NChips, c.Chip.Name, c.Chip.Tiles)
	}
	if c.BarrierAlgo < 0 || c.BarrierAlgo >= numBarrierAlgos {
		return fmt.Errorf("tshmem: unknown BarrierAlgo %d", int(c.BarrierAlgo))
	}
	if c.LockAlgo < 0 || c.LockAlgo >= numLockAlgos {
		return fmt.Errorf("tshmem: unknown LockAlgo %d", int(c.LockAlgo))
	}
	if c.Engine < 0 || c.Engine >= numEngines {
		return fmt.Errorf("tshmem: unknown Engine %d", int(c.Engine))
	}
	if c.NChips > 1 {
		switch c.BarrierAlgo {
		case BarrierAlgoDissemination, BarrierAlgoTournament, BarrierAlgoMCSTree:
			return fmt.Errorf("tshmem: BarrierAlgo %s signals over the chip-local UDN; multi-chip runs need %s, %s, or %s",
				c.BarrierAlgo, BarrierAlgoLinear, BarrierAlgoCounter, BarrierAlgoSpin)
		}
	}
	if c.HeapPerPE == 0 {
		c.HeapPerPE = 8 << 20
	}
	if c.HeapPerPE < 4096 {
		return fmt.Errorf("tshmem: HeapPerPE %d too small (min 4096)", c.HeapPerPE)
	}
	if c.ScratchBytes == 0 {
		c.ScratchBytes = 4 << 20
	}
	if c.Trace {
		c.Observe = true
	}
	// TSHMEM_SANITIZE=1 force-enables the sanitizer and makes Run fail on
	// diagnostics. Configs that opted in programmatically keep their own
	// (non-strict) semantics: their callers inspect Report.Diagnostics.
	if !c.Sanitize {
		if v := os.Getenv("TSHMEM_SANITIZE"); v != "" && v != "0" {
			c.Sanitize = true
			c.sanitizeStrict = true
		}
	}
	if c.Faults != nil {
		if len(c.Faults.Events) == 0 && c.Faults.Seed != 0 {
			c.Faults = fault.FromSeed(c.Faults.Seed, c.NPEs)
		}
		if err := c.Faults.Validate(c.NPEs); err != nil {
			return err
		}
		if c.WaitBudget <= 0 {
			c.WaitBudget = DefaultWaitBudget
		}
		if c.WaitGrace <= 0 {
			c.WaitGrace = DefaultWaitGrace
		}
	}
	return nil
}

// Report summarizes a completed run.
type Report struct {
	NPEs     int
	NChips   int
	Chip     string
	PETimes  []vtime.Duration // virtual elapsed time per PE
	MaxTime  vtime.Duration   // the program's virtual makespan
	MinTime  vtime.Duration
	PutBytes int64 // bytes moved by puts across all PEs
	GetBytes int64 // bytes moved by gets across all PEs
	Barriers int64 // barrier entries across all PEs

	// PECounters holds each PE's substrate counters; empty unless the run
	// was configured with Config.Observe (or Trace).
	PECounters []stats.Counters
	// MeshUtil holds each chip's per-link iMesh utilization snapshot
	// (UDN packets and modeled same-chip RMA routes); empty unless the
	// run was observed. Render with Utilization.ASCII/SVG.
	MeshUtil []*mesh.Utilization

	// Diagnostics lists the synchronization defects the happens-before
	// checker found (sorted by virtual time) followed by the Timeout
	// diagnostics of bounded waits that expired under fault injection
	// (sorted by PE, then start time); empty unless the run was configured
	// with Config.Sanitize or Config.Faults. See docs/OBSERVABILITY.md and
	// docs/ROBUSTNESS.md for the schemas.
	Diagnostics []sanitize.Diagnostic

	// FaultPlan echoes the executed fault plan (seed-expanded) and
	// FaultCounts how often each of its events perturbed the run, indexed
	// like FaultPlan.Events. Nil/empty without Config.Faults.
	FaultPlan   *fault.Plan
	FaultCounts []int64

	// EngineUsed names the execution engine that ran the program
	// (Config.Engine: "goroutine" or "event").
	EngineUsed string
	// MaxRunnablePEs is the peak number of PE goroutines the event
	// engine ever made runnable at once — 1 by construction (the
	// single-baton invariant the cross-engine determinism argument rests
	// on). Zero under the goroutine engine, where every PE is runnable
	// simultaneously.
	MaxRunnablePEs int

	perChip int           // PE ranks per chip (block distribution)
	trace   []stats.Event // merged, start-ordered; empty unless Config.Trace
	prof    *profile.Profile
}

// Profile returns the run's causal profile — per-PE blame ledgers, the
// critical path, and the exporters hanging off profile.Profile. Nil unless
// the run was configured with Config.Profile.
func (r *Report) Profile() *profile.Profile { return r.prof }

// Stats aggregates the per-PE substrate counters of the run. It is the
// zero value unless the run was configured with Config.Observe.
func (r *Report) Stats() stats.Counters {
	var c stats.Counters
	for i := range r.PECounters {
		c.Add(&r.PECounters[i])
	}
	return c
}

// StatsByChip aggregates the per-PE counters chip by chip (block
// distribution), so multi-chip runs can be audited per device. Single-chip
// runs return one entry equal to Stats(). Empty without Config.Observe.
func (r *Report) StatsByChip() []stats.Counters {
	if len(r.PECounters) == 0 {
		return nil
	}
	perChip := r.perChip
	if perChip <= 0 {
		perChip = len(r.PECounters)
	}
	out := make([]stats.Counters, r.NChips)
	for i := range r.PECounters {
		out[i/perChip].Add(&r.PECounters[i])
	}
	return out
}

// DroppedEvents reports how many trace events were discarded because a
// PE's buffer hit Config.TraceCap. Non-zero means Trace() is truncated
// and coverage audits will come up short.
func (r *Report) DroppedEvents() int64 {
	var n int64
	for i := range r.PECounters {
		n += r.PECounters[i].TraceDropped
	}
	return n
}

// Trace returns the run's merged substrate event trace, ordered by
// virtual start time. Empty unless the run was configured with
// Config.Trace.
func (r *Report) Trace() []stats.Event { return r.trace }

// TraceTo writes the run's event trace as Chrome trace_event JSON keyed
// on virtual time, loadable in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing.
func (r *Report) TraceTo(w io.Writer) error { return stats.WriteTrace(w, r.trace) }

// Program is the shared state of one TSHMEM run: one or more chips, each
// with its own iMesh/UDN, sharing one common-memory space (single chip: the
// paper's system; multiple chips: the mPIPE future-work extension).
type Program struct {
	cfg     Config
	chip    *arch.Chip
	nchips  int
	perChip int // PE ranks per chip (block distribution)
	geos    []mesh.Geometry
	nets    []*udn.Network
	links   []*mesh.LinkStats // per-chip link accounting; nil unless Observe
	fabric  *mpipe.Fabric     // nil on a single chip
	cm      *tmc.CommonMemory
	model   *cache.Model

	partBase []int64 // common-memory offset of each PE's partition
	partSize int64
	mapFloor int64 // end of launch-time mappings (arena recycling)

	scratchAt    int64          // common-memory offset of the scratch arena
	scratchSmall []scratchShard // per-PE-affine shards for small requests
	shardBytes   int64          // capacity of each small shard
	scratchBig   scratchShard   // fallback arena with the bulk of the capacity

	spinBar *tmc.Barrier // TMC spin barrier across all PEs

	statics staticRegistry
	hubs    []watchHub        // per-PE wait/wait_until hub
	san     *sanitize.Checker // nil unless Config.Sanitize

	symCheck []int64 // per-PE slot for symmetry verification in Malloc

	// Synchronization-algorithm library state (syncalgo.go): counter-
	// barrier rendezvous, lock holder bookkeeping, the ticket locks'
	// published release times, and the MCS locks' successor queues.
	ctrMu      sync.Mutex
	ctrBars    map[ctrKey]*ctrInst
	lockMu     sync.Mutex
	lockHolder map[int64]int
	lockRel    map[int64]lockRelStamp
	mcsNext    map[int64]map[int]*mcsWaiter
	mcsCond    *sync.Cond
	abortCh    chan struct{} // closed by abort: wakes library waiters

	flt        *fault.Injector // nil unless Config.Faults
	waitBudget vtime.Duration  // virtual bound per blocking wait (faults only)
	waitGrace  time.Duration   // host liveness fallback (faults only)
	tmo        timeoutLog      // Timeout diagnostics from bounded waits

	sched *evsched // nil unless Config.Engine == EngineEvent

	pes []*PE

	abortOnce sync.Once
	aborted   atomic.Bool
	firstErr  error
}

// abort tears the program down after a PE failed, so PEs blocked in
// collectives or waits observe the failure instead of hanging.
func (p *Program) abort(cause error) {
	p.abortOnce.Do(func() {
		p.firstErr = cause
		p.aborted.Store(true)
		p.closeNets()
		p.spinBar.Abort()
		for i := range p.hubs {
			p.hubs[i].abort()
		}
		close(p.abortCh)
		p.mcsCond.Broadcast()
		if p.sched != nil {
			p.sched.abortWake()
		}
	})
}

func (p *Program) closeNets() {
	for _, n := range p.nets {
		n.Close()
	}
	if p.fabric != nil {
		p.fabric.Close()
	}
}

// Chip returns the chip model this program runs on.
func (p *Program) Chip() *arch.Chip { return p.chip }

// NChips reports the number of chips.
func (p *Program) NChips() int { return p.nchips }

// Geometry returns the tile test-area geometry of chip 0.
func (p *Program) Geometry() mesh.Geometry { return p.geos[0] }

// NPEs reports the number of processing elements.
func (p *Program) NPEs() int { return len(p.pes) }

// chipOf reports which chip hosts PE rank pe.
func (p *Program) chipOf(pe int) int { return pe / p.perChip }

// localIdx reports pe's tile index within its chip.
func (p *Program) localIdx(pe int) int { return pe % p.perChip }

// sameChip reports whether two ranks share a chip.
func (p *Program) sameChip(a, b int) bool { return p.chipOf(a) == p.chipOf(b) }

// chipPEs reports how many ranks chip c hosts.
func (p *Program) chipPEs(c int) int {
	n := p.cfg.NPEs - c*p.perChip
	if n > p.perChip {
		n = p.perChip
	}
	if n < 0 {
		n = 0
	}
	return n
}

// Run launches a TSHMEM program: it performs the launcher's environment
// setup (common memory, UDN), forks cfg.NPEs processing elements each bound
// to a tile, runs body on every PE (body runs after the start_pes
// initialization handshake), and tears the environment down afterwards —
// the shmem_finalize behavior the paper proposes adding to OpenSHMEM.
//
// The first error (or panic) from any PE aborts the report. Run returns the
// per-PE virtual-time report on success.
//
// Under fault injection (Config.Faults) a bounded wait that expires does
// NOT abort the program: the stuck PE unwinds with a *TimeoutError, its
// peers time out (or complete) on their own budgets, and Run returns BOTH
// the report — carrying the Timeout diagnostics, the executed plan, and
// the per-event perturbation counts — and an error matching
// errors.Is(err, ErrTimeout).
func Run(cfg Config, body func(*PE) error) (*Report, error) {
	var prog *Program
	if cfg.Engine == EngineEvent {
		// Bound the resident-simulation set (see evAdmission): the token
		// covers arena checkout through teardown, where the run's arena is
		// re-zeroed and pooled for the next launch. Local views of
		// symmetric memory (MustLocal / Local) are therefore dead once Run
		// returns under the event engine.
		evAdmission <- struct{}{}
		defer func() {
			if prog != nil {
				arenaCheckin(prog)
			}
			<-evAdmission
		}()
	}
	var err error
	prog, err = newProgram(cfg)
	if err != nil {
		return nil, err
	}
	defer prog.closeNets()

	errs := make([]error, prog.NPEs())
	var wg sync.WaitGroup
	wg.Add(prog.NPEs())
	for i := range prog.pes {
		spawnPE(peTask{prog: prog, pe: prog.pes[i], body: body, errs: errs, wg: &wg})
	}
	if prog.sched != nil {
		// Every PE entered the calendar ready; hand out the first baton
		// (deterministically to rank 0 — all clocks are zero).
		prog.sched.begin()
	}
	wg.Wait()

	if prog.firstErr != nil {
		return nil, prog.firstErr
	}

	rep := &Report{
		NPEs:       prog.NPEs(),
		NChips:     prog.nchips,
		Chip:       prog.chip.Name,
		PETimes:    make([]vtime.Duration, prog.NPEs()),
		perChip:    prog.perChip,
		EngineUsed: prog.cfg.Engine.String(),
	}
	if prog.sched != nil {
		rep.MaxRunnablePEs = prog.sched.maxRunningPeak()
	}
	rep.MinTime = vtime.Duration(1<<63 - 1)
	for i, pe := range prog.pes {
		d := vtime.Duration(pe.clock.Now())
		rep.PETimes[i] = d
		if d > rep.MaxTime {
			rep.MaxTime = d
		}
		if d < rep.MinTime {
			rep.MinTime = d
		}
		rep.PutBytes += pe.stats.PutBytes
		rep.GetBytes += pe.stats.GetBytes
		rep.Barriers += pe.stats.Barriers
	}
	if prog.cfg.Profile {
		recs := make([]*profile.Recorder, prog.NPEs())
		ends := make([]vtime.Time, prog.NPEs())
		for i, pe := range prog.pes {
			recs[i] = pe.prof
			ends[i] = pe.clock.Now()
		}
		rep.prof = profile.Assemble(recs, ends)
	}
	if prog.cfg.Observe {
		rep.PECounters = make([]stats.Counters, prog.NPEs())
		perPE := make([][]stats.Event, 0, prog.NPEs())
		for i, pe := range prog.pes {
			rep.PECounters[i] = pe.rec.Counters()
			if evs := pe.rec.Events(); len(evs) > 0 {
				perPE = append(perPE, evs)
			}
		}
		rep.trace = stats.MergeEvents(perPE)
		for _, ls := range prog.links {
			rep.MeshUtil = append(rep.MeshUtil, ls.Snapshot())
		}
	}
	if prog.san != nil {
		rep.Diagnostics = prog.san.Diagnostics()
		if prog.cfg.sanitizeStrict && len(rep.Diagnostics) > 0 {
			var b strings.Builder
			fmt.Fprintf(&b, "tshmem: sanitizer found %d synchronization issue(s) (TSHMEM_SANITIZE):", len(rep.Diagnostics))
			for _, d := range rep.Diagnostics {
				b.WriteString("\n  ")
				b.WriteString(d.String())
			}
			return nil, fmt.Errorf("%s", b.String())
		}
	}
	if prog.flt.Active() {
		rep.Diagnostics = append(rep.Diagnostics, prog.tmo.diagnostics()...)
		rep.FaultPlan = prog.flt.Plan()
		rep.FaultCounts = prog.flt.Counts()
		var timeouts int
		var first error
		for _, err := range errs {
			if err != nil && errors.Is(err, ErrTimeout) {
				timeouts++
				if first == nil {
					first = err
				}
			}
		}
		if timeouts > 0 {
			// Wrap the lowest-ranked PE's typed error so callers can
			// errors.As for the faulting PE pair; it unwraps to ErrTimeout.
			return rep, fmt.Errorf("tshmem: %d PE(s) timed out in bounded waits under fault injection (see Report.Diagnostics): %w",
				timeouts, first)
		}
	}
	return rep, nil
}

func newProgram(cfg Config) (*Program, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	p := &Program{
		cfg:      cfg,
		chip:     cfg.Chip,
		nchips:   cfg.NChips,
		perChip:  (cfg.NPEs + cfg.NChips - 1) / cfg.NChips,
		model:    cache.NewModel(cfg.Chip),
		partSize: cfg.HeapPerPE,
	}
	for c := 0; c < p.nchips; c++ {
		n := p.chipPEs(c)
		if n == 0 {
			return nil, fmt.Errorf("tshmem: chip %d hosts no PEs; use fewer chips", c)
		}
		geo, err := mesh.AreaGeometry(cfg.Chip, n)
		if err != nil {
			return nil, err
		}
		p.geos = append(p.geos, geo)
	}
	var err error

	// Each mapping may burn up to one page of alignment padding.
	nsh := scratchShardCount(cfg.NPEs)
	scratchTotal := cfg.ScratchBytes + int64(nsh)*scratchShardBytes
	total := scratchTotal + int64(cfg.NPEs)*(cfg.HeapPerPE+4096) + 64<<10
	if cfg.Engine == EngineEvent {
		p.cm, err = arenaCheckout(total)
	} else {
		p.cm, err = tmc.NewCommonMemory(total)
	}
	if err != nil {
		return nil, err
	}
	p.scratchAt, err = p.cm.Map(scratchTotal, 4096)
	if err != nil {
		return nil, err
	}
	if err := p.initScratch(cfg.ScratchBytes, nsh); err != nil {
		return nil, err
	}
	p.partBase = make([]int64, cfg.NPEs)
	for i := range p.partBase {
		if p.partBase[i], err = p.cm.Map(cfg.HeapPerPE, 4096); err != nil {
			return nil, err
		}
	}
	p.mapFloor = p.cm.MapEnd()

	for c := 0; c < p.nchips; c++ {
		net := udn.New(p.geos[c])
		if cfg.Observe {
			ls := mesh.NewLinkStats(p.geos[c])
			net.SetLinkStats(ls)
			p.links = append(p.links, ls)
		}
		p.nets = append(p.nets, net)
	}
	if p.nchips > 1 {
		p.fabric, err = mpipe.New(cfg.Chip, p.nchips, cfg.NPEs, p.chipOf)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Faults != nil {
		p.flt = fault.NewInjector(cfg.Faults, cfg.NPEs, p.perChip)
		p.waitBudget = cfg.WaitBudget
		p.waitGrace = cfg.WaitGrace
		for c := range p.nets {
			p.nets[c].SetFaults(p.flt.Chip(c*p.perChip, p.geos[c]), cfg.WaitGrace)
		}
		if p.fabric != nil {
			p.fabric.SetGrace(cfg.WaitGrace)
		}
	}
	p.spinBar, err = tmc.NewBarrier(cfg.Chip, tmc.SpinBarrier, cfg.NPEs)
	if err != nil {
		return nil, err
	}
	if cfg.Engine == EngineEvent {
		p.sched = newEvsched(p, cfg.NPEs)
		p.sched.timed = cfg.Faults != nil
		for c := range p.nets {
			p.nets[c].SetScheduler(&udnSched{s: p.sched, rankBase: c * p.perChip})
		}
		if p.fabric != nil {
			p.fabric.SetScheduler(&fabSched{s: p.sched})
		}
	}
	p.statics.init()
	p.ctrBars = make(map[ctrKey]*ctrInst)
	p.lockHolder = make(map[int64]int)
	p.lockRel = make(map[int64]lockRelStamp)
	p.mcsNext = make(map[int64]map[int]*mcsWaiter)
	p.mcsCond = sync.NewCond(&p.lockMu)
	p.abortCh = make(chan struct{})
	p.hubs = make([]watchHub, cfg.NPEs)
	for i := range p.hubs {
		p.hubs[i].init(i, p.sched)
	}
	p.symCheck = make([]int64, cfg.NPEs)
	if cfg.Sanitize {
		p.san = sanitize.New(cfg.NPEs)
	}

	p.pes = make([]*PE, cfg.NPEs)
	for i := range p.pes {
		port, err := p.nets[p.chipOf(i)].Port(p.localIdx(i))
		if err != nil {
			return nil, err
		}
		heap, err := alloc.New(cfg.HeapPerPE)
		if err != nil {
			return nil, err
		}
		p.pes[i] = &PE{
			prog:    p,
			id:      i,
			n:       cfg.NPEs,
			port:    port,
			heap:    heap,
			barGen:  make(map[ActiveSet]uint32),
			collGen: make(map[ActiveSet]uint32),
		}
		if cfg.Observe {
			rec := stats.New(i, cfg.Trace, cfg.TraceCap)
			p.pes[i].rec = rec
			port.SetRecorder(rec)
		}
		if cfg.Profile {
			prof := profile.New(i)
			p.pes[i].prof = prof
			port.SetProfiler(prof, p.chipOf(i)*p.perChip)
		}
		if p.san != nil {
			p.pes[i].san = p.san.PE(i)
		}
		if p.sched != nil {
			p.sched.pes[i].clock = &p.pes[i].clock
		}
	}

	// On the TILE-Gx, install the UDN interrupt handler that services
	// redirected static-variable transfers (S IV.B.2).
	if cfg.Chip.UDNInterrupts {
		for _, pe := range p.pes {
			if err := pe.port.SetHandler(pe.serviceInterrupt); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

// Scratch-arena sharding. Up to scratchMaxShards per-PE-affine small
// shards, each with its own lock, sit in front of the big arena of the
// configured capacity. Concurrent small static-static bounces — the
// common case — never contend on a single mutex, while the big arena
// keeps the full Config.ScratchBytes single-allocation capacity (the
// shards are additional mapped memory, at most 512 KiB). Sharding only
// moves *where* in the area a temporary buffer lands; modeled copy costs
// depend on sizes alone, so virtual time is unaffected.
const (
	scratchMaxShards  = 8
	scratchShardBytes = 64 << 10
)

// scratchShardCount reports how many small shards an npes-PE program gets.
func scratchShardCount(npes int) int {
	if npes < scratchMaxShards {
		return npes
	}
	return scratchMaxShards
}

// scratchShard is one independently locked slice of the scratch arena.
type scratchShard struct {
	mu    sync.Mutex
	arena *alloc.Allocator
	base  int64 // offset of this shard within the scratch area
	size  int64
}

// get allocates size bytes, returning the shard-relative offset.
func (s *scratchShard) get(size int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.arena.Alloc(size)
}

// put frees the block at the scratch-area-relative offset rel.
func (s *scratchShard) put(rel int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.arena.Free(rel - s.base)
}

// initScratch lays the scratch area out as nsh small shards followed by
// the big arena of bigBytes capacity. The caller mapped
// nsh*scratchShardBytes + bigBytes contiguous bytes at p.scratchAt.
func (p *Program) initScratch(bigBytes int64, nsh int) error {
	p.shardBytes = scratchShardBytes
	p.scratchSmall = make([]scratchShard, nsh)
	var off int64
	for i := range p.scratchSmall {
		a, err := alloc.New(scratchShardBytes)
		if err != nil {
			return err
		}
		s := &p.scratchSmall[i]
		s.arena, s.base, s.size = a, off, scratchShardBytes
		off += scratchShardBytes
	}
	big, err := alloc.New(bigBytes)
	if err != nil {
		return err
	}
	p.scratchBig.arena, p.scratchBig.base, p.scratchBig.size = big, off, bigBytes
	return nil
}

// scratchGet carves size bytes out of the scratch arena for PE owner,
// returning the common-memory global offset. Small requests try the
// owner's shard first; anything that does not fit there (oversized, or
// the shard is exhausted) falls back to the big arena.
func (p *Program) scratchGet(owner int, size int64) (int64, error) {
	if n := len(p.scratchSmall); n > 0 && size <= p.shardBytes {
		s := &p.scratchSmall[owner%n]
		if off, err := s.get(size); err == nil {
			return p.scratchAt + s.base + off, nil
		}
	}
	off, err := p.scratchBig.get(size)
	if err != nil {
		return 0, err
	}
	return p.scratchAt + p.scratchBig.base + off, nil
}

func (p *Program) scratchPut(globalOff int64) {
	rel := globalOff - p.scratchAt
	s := &p.scratchBig
	if rel < s.base {
		s = &p.scratchSmall[int(rel/p.shardBytes)]
	}
	// Best effort: scratch bugs indicate internal misuse, not user error.
	if err := s.put(rel); err != nil {
		panic(err)
	}
}
