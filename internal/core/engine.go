package core

import (
	"fmt"
	"runtime"
	"sync"

	"tshmem/internal/mpipe"
	"tshmem/internal/tmc"
	"tshmem/internal/udn"
	"tshmem/internal/vtime"
)

// Engine selects the execution engine behind Run (Config.Engine).
//
// Both engines execute the same PE bodies against the same cost models
// and produce byte-identical reports (a cross-engine test matrix asserts
// this; docs/PERFORMANCE.md explains why it holds). They differ only in
// how the host schedules the PEs:
//
//   - EngineGoroutine (the default) runs every PE as a free-running
//     goroutine that blocks on channels and condition variables at each
//     modeled wait. Simple, but a run keeps NPEs goroutines runnable and
//     contending, which caps how many simulations a host can run at once.
//   - EngineEvent parks every PE and lets a virtual-time calendar grant
//     a single run baton to the ready PE with the least (virtual clock,
//     rank). Exactly one PE goroutine per run is ever runnable, there is
//     no host-level contention between PEs, and the execution order is
//     deterministic by construction instead of by virtual-time
//     tie-breaking across racing goroutines.
type Engine int

const (
	// EngineGoroutine: one free-running host goroutine per PE (legacy).
	EngineGoroutine Engine = iota
	// EngineEvent: parked PEs scheduled one at a time by a virtual-time
	// calendar; O(1) runnable goroutines per run.
	EngineEvent

	numEngines
)

var engineNames = [numEngines]string{"goroutine", "event"}

func (e Engine) String() string {
	if int(e) >= 0 && int(e) < len(engineNames) {
		return engineNames[e]
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine resolves a -engine flag value. Empty and "default" select
// the goroutine engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "default":
		return EngineGoroutine, nil
	}
	for i, n := range engineNames {
		if s == n {
			return Engine(i), nil
		}
	}
	return 0, fmt.Errorf("tshmem: unknown engine %q (valid: %s)",
		s, joinNames(engineNames[:]))
}

// Engines lists every execution engine in declaration order.
func Engines() []Engine {
	out := make([]Engine, 0, numEngines)
	for e := EngineGoroutine; e < numEngines; e++ {
		out = append(out, e)
	}
	return out
}

// Run admission for the event engine. Because the calendar owns a run's
// whole lifecycle, the event engine can schedule simulations, not just
// PEs: each event-engine Run holds an admission token from before its
// arena is allocated until teardown, capping how many simulations are
// resident at once at a small multiple of GOMAXPROCS. A concurrent storm
// of Run calls then executes in near run-to-completion order — only a
// handful of arenas are ever live, however many runs are in flight —
// instead of every run's arena staying resident while the host
// timeslices among them. Callers observe nothing but Run blocking, which
// it does anyway; virtual time is untouched. The width is fixed at init:
// event-engine runs that (unusually) synchronize with each other through
// host-side channels must fit inside it together. The goroutine engine
// stays free-running for compatibility.
var evAdmission = make(chan struct{}, evAdmissionWidth())

func evAdmissionWidth() int {
	if w := 2 * runtime.GOMAXPROCS(0); w > 2 {
		return w
	}
	return 2
}

// Arena recycling, the admission gate's companion: because at most
// evAdmissionWidth event-engine runs are resident, the engine can keep a
// small free list of common-memory segments and hand them to subsequent
// runs instead of allocating (and zeroing) a fresh multi-megabyte arena
// per launch. Correctness rests on a zeroing invariant — every pooled
// segment is entirely zero, exactly like a fresh one. Teardown restores
// the invariant by re-zeroing only what the finished run can have
// written: each PE heap and scratch shard up to its allocator's
// high-water mark, plus any mappings the run created after launch. The
// goroutine engine cannot recycle this way: with nothing bounding how
// many of its runs are mid-flight, a pool behind it would grow as large
// as the storm itself.
//
// The visible consequence (documented on Run): once an event-engine Run
// returns, local views of its symmetric memory (MustLocal / Local) are
// dead — the arena may already be backing another run.
const arenaPoolCap = 4

var arenaPool = struct {
	sync.Mutex
	free map[int64][]*tmc.CommonMemory
}{free: make(map[int64][]*tmc.CommonMemory)}

// arenaCheckout returns an all-zero common-memory segment of exactly
// total bytes, reusing a pooled one when available.
func arenaCheckout(total int64) (*tmc.CommonMemory, error) {
	arenaPool.Lock()
	if l := arenaPool.free[total]; len(l) > 0 {
		cm := l[len(l)-1]
		l[len(l)-1] = nil
		arenaPool.free[total] = l[:len(l)-1]
		arenaPool.Unlock()
		cm.Reset()
		return cm, nil
	}
	arenaPool.Unlock()
	return tmc.NewCommonMemory(total)
}

// arenaCheckin re-zeroes the finished run's dirty spans and pools its
// segment for the next launch of the same shape.
func arenaCheckin(p *Program) {
	buf := p.cm.Bytes()
	zero := func(off, end int64) {
		if end > off {
			clear(buf[off:end])
		}
	}
	for i := range p.scratchSmall {
		s := &p.scratchSmall[i]
		zero(p.scratchAt+s.base, p.scratchAt+s.base+s.arena.HighWater())
	}
	zero(p.scratchAt+p.scratchBig.base, p.scratchAt+p.scratchBig.base+p.scratchBig.arena.HighWater())
	for i, pe := range p.pes {
		zero(p.partBase[i], p.partBase[i]+pe.heap.HighWater())
	}
	// Mappings created after launch could be written anywhere; launch-time
	// mappings end at mapFloor and are covered by the spans above.
	zero(p.mapFloor, p.cm.MapEnd())

	arenaPool.Lock()
	defer arenaPool.Unlock()
	size := p.cm.Size()
	if len(arenaPool.free[size]) < arenaPoolCap {
		arenaPool.free[size] = append(arenaPool.free[size], p.cm)
	}
}

// Wait kinds: what a parked PE is blocked on. Wakers address parked PEs
// by (kind, a, b); a wake is only a hint to re-check — every wait site
// re-evaluates its predicate after waking, so a spurious or collided
// wake is merely a wasted poll, never a correctness problem.
const (
	wkUDNRecv uint8 = iota + 1 // a = global PE, b = demux queue
	wkUDNSend                  // a = global dst PE, b = demux queue (backpressure)
	wkFabRecv                  // a = global PE (mPIPE inbox)
	wkFabSend                  // a = global dst PE (mPIPE backpressure)
	wkSpin                     // a = spin-barrier generation
	wkHub                      // a = watch-hub index (WaitUntil, ticket lock)
	wkCtr                      // a = counter-barrier instance tag
	wkMCS                      // a = lock offset, b = predecessor rank
	wkMCSSucc                  // a = lock offset, b = releaser rank
)

// Wake statuses delivered with the run baton.
const (
	wakeRun     uint8 = iota // scheduled normally: proceed / re-check
	wakeTimeout              // quiescence expired this bounded wait (faults)
	wakeAbort                // the program aborted while parked
)

// PE states in the calendar.
const (
	evReady   uint8 = iota // runnable, competing for the baton
	evRunning              // holds the baton (at most one per run)
	evBlocked              // parked on a wait tag
	evDone                 // exited
)

// evNode is one PE's slot in the calendar.
type evNode struct {
	state uint8
	kind  uint8 // wait tag, valid while evBlocked
	wake  uint8 // status to deliver with the next grant
	a, b  int64
	clock *vtime.Clock
	park  chan uint8 // cap 1: a grant never blocks and is never lost
}

// evsched is the event engine's calendar: a cooperative single-baton
// scheduler over the run's PEs. Exactly one PE is evRunning at any time;
// it performs its modeled work (advancing its own virtual clock), wakes
// peers whose waits it satisfied, and hands the baton back by yielding
// or exiting. Grants always go to the ready PE with the least (virtual
// clock, rank), so the execution order is a pure function of the modeled
// times — deterministic regardless of GOMAXPROCS or host load.
//
// Every blocking point in the library parks here instead of on a
// channel; the wait sites keep their exact cost-model, profiler, and
// timeout code, so virtual time is identical to the goroutine engine's.
type evsched struct {
	prog *Program
	mu   sync.Mutex
	pes  []evNode

	nlive   int  // PEs not yet evDone
	running int  // PEs holding the baton: 0 or 1 between handoffs
	timed   bool // faults armed: quiescence expires bounded waits

	maxRunning int   // peak of running — must stay 1
	handoffs   int64 // total grants, for the scheduling-overhead bench
}

func newEvsched(p *Program, n int) *evsched {
	s := &evsched{prog: p, pes: make([]evNode, n), nlive: n}
	for i := range s.pes {
		s.pes[i].park = make(chan uint8, 1)
	}
	return s
}

// enter parks a freshly spawned PE goroutine until the calendar grants
// it the baton for the first time. Nodes start evReady, so the grant
// comes from begin (or from an earlier PE's yield) — the buffered park
// channel makes grant-before-park safe.
func (s *evsched) enter(id int) {
	<-s.pes[id].park
}

// begin hands out the first baton. Run calls it after spawning every PE,
// so the initial grant deterministically goes to rank 0 (all clocks are
// zero) no matter how the host interleaves goroutine startup.
func (s *evsched) begin() {
	s.mu.Lock()
	dl := s.dispatchLocked()
	s.mu.Unlock()
	if dl {
		s.resolveDeadlock()
	}
}

// yield parks the running PE on a wait tag and hands the baton to the
// next ready PE. It returns the wake status the calendar delivered; on
// wakeRun (possibly spurious) the caller re-checks its predicate and may
// yield again.
func (s *evsched) yield(id int, kind uint8, a, b int64) uint8 {
	s.mu.Lock()
	n := &s.pes[id]
	n.state = evBlocked
	n.kind, n.a, n.b = kind, a, b
	s.running--
	dl := s.dispatchLocked()
	s.mu.Unlock()
	if dl {
		s.resolveDeadlock()
	}
	return <-n.park
}

// yieldReady re-queues the running PE as ready and hands the baton on —
// the event engine's runtime.Gosched for modeled spin loops. The caller
// stays schedulable, so this can never quiesce.
func (s *evsched) yieldReady(id int) {
	s.mu.Lock()
	n := &s.pes[id]
	n.state = evReady
	s.running--
	s.dispatchLocked()
	s.mu.Unlock()
	<-n.park
}

// exit retires a finished PE and hands the baton on.
func (s *evsched) exit(id int) {
	s.mu.Lock()
	s.pes[id].state = evDone
	s.nlive--
	s.running--
	dl := false
	if s.nlive > 0 {
		dl = s.dispatchLocked()
	}
	s.mu.Unlock()
	if dl {
		s.resolveDeadlock()
	}
}

// wake marks every PE blocked on (kind, a, b) ready. The caller holds
// the baton, so no grant happens here: the woken PEs compete (by clock,
// then rank) at the caller's next yield or exit.
func (s *evsched) wake(kind uint8, a, b int64) {
	s.mu.Lock()
	for i := range s.pes {
		n := &s.pes[i]
		if n.state == evBlocked && n.kind == kind && n.a == a && n.b == b {
			n.state = evReady
			n.wake = wakeRun
		}
	}
	s.mu.Unlock()
}

// dispatchLocked grants the baton to the ready PE with the least
// (virtual clock, rank). Quiescence — no ready PE but blocked ones —
// means no blocked wait can ever be satisfied (nothing is running to
// satisfy it): under fault injection every bounded wait expires at once
// (each lands its clock on its own start+WaitBudget deadline, exactly
// like the goroutine engine's independent grace timers); without faults
// the program is deadlocked and the caller must resolve it outside the
// lock (reported by the return value).
func (s *evsched) dispatchLocked() (deadlocked bool) {
	if s.running > 0 {
		return false
	}
	if s.grantLocked() {
		return false
	}
	if s.timed {
		expired := false
		for i := range s.pes {
			n := &s.pes[i]
			if n.state == evBlocked {
				n.state = evReady
				n.wake = wakeTimeout
				expired = true
			}
		}
		if expired && s.grantLocked() {
			return false
		}
	}
	for i := range s.pes {
		if s.pes[i].state == evBlocked {
			return true
		}
	}
	return false
}

// grantLocked picks the ready PE with the least (clock, rank) and sends
// it the baton, reporting whether a grant happened. Reading a parked
// PE's clock is safe: its owner last wrote it before parking under this
// mutex.
func (s *evsched) grantLocked() bool {
	best := -1
	var bt vtime.Time
	for i := range s.pes {
		n := &s.pes[i]
		if n.state != evReady {
			continue
		}
		if t := n.clock.Now(); best < 0 || t < bt {
			best, bt = i, t
		}
	}
	if best < 0 {
		return false
	}
	n := &s.pes[best]
	n.state = evRunning
	s.running++
	if s.running > s.maxRunning {
		s.maxRunning = s.running
	}
	s.handoffs++
	st := n.wake
	n.wake = wakeRun
	n.park <- st
	return true
}

// resolveDeadlock handles true quiescence without fault injection: every
// live PE is parked on a wait no peer can ever satisfy. The goroutine
// engine would hang here; the calendar sees the global state and aborts
// the run with a diagnosis instead (documented divergence —
// docs/PERFORMANCE.md).
func (s *evsched) resolveDeadlock() {
	s.prog.abort(fmt.Errorf("tshmem: deadlock: every live PE is blocked on a wait no peer can satisfy"))
	// abort is once-only; if it already ran (a PE parked during teardown,
	// after the abort hook's wakes), re-issue the abort wakes ourselves.
	s.abortWake()
}

// abortWake marks every parked PE ready with an abort status and, if no
// PE holds the baton (quiescence resolution), grants one. Called from
// Program.abort.
func (s *evsched) abortWake() {
	s.mu.Lock()
	for i := range s.pes {
		n := &s.pes[i]
		if n.state == evBlocked {
			n.state = evReady
			n.wake = wakeAbort
		}
	}
	if s.running == 0 {
		s.grantLocked()
	}
	s.mu.Unlock()
}

// maxRunningPeak reports the peak number of simultaneously runnable PEs
// the calendar granted — 1 by construction.
func (s *evsched) maxRunningPeak() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxRunning
}

// udnSched adapts the calendar to one chip's UDN blocking points;
// chip-local CPU numbers translate to global ranks through rankBase.
// Wait* park the calling PE and map a quiescence expiry to the package's
// own timeout error (a nil return means re-poll — after an abort the
// re-poll observes the closed port, preserving the drain-then-ErrClosed
// semantics). Enqueued/Dequeued wake parked receivers and backpressured
// senders.
type udnSched struct {
	s        *evsched
	rankBase int
}

func (u *udnSched) WaitRecv(cpu, dq int) error {
	id := u.rankBase + cpu
	if u.s.yield(id, wkUDNRecv, int64(id), int64(dq)) == wakeTimeout {
		return udn.ErrTimeout
	}
	return nil
}

func (u *udnSched) WaitSend(src, dst, dq int) error {
	if u.s.yield(u.rankBase+src, wkUDNSend, int64(u.rankBase+dst), int64(dq)) == wakeTimeout {
		return udn.ErrTimeout
	}
	return nil
}

func (u *udnSched) Enqueued(dst, dq int) { u.s.wake(wkUDNRecv, int64(u.rankBase+dst), int64(dq)) }
func (u *udnSched) Dequeued(cpu, dq int) { u.s.wake(wkUDNSend, int64(u.rankBase+cpu), int64(dq)) }

// fabSched adapts the calendar to the mPIPE fabric's blocking points
// (inboxes are addressed by global rank, so no translation).
type fabSched struct{ s *evsched }

func (f *fabSched) WaitRecv(pe int) error {
	if f.s.yield(pe, wkFabRecv, int64(pe), 0) == wakeTimeout {
		return mpipe.ErrTimeout
	}
	return nil
}

func (f *fabSched) WaitSend(src, dst int) error {
	if f.s.yield(src, wkFabSend, int64(dst), 0) == wakeTimeout {
		return mpipe.ErrTimeout
	}
	return nil
}

func (f *fabSched) Enqueued(pe int) { f.s.wake(wkFabRecv, int64(pe), 0) }
func (f *fabSched) Dequeued(pe int) { f.s.wake(wkFabSend, int64(pe), 0) }
