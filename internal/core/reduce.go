package core

import (
	"fmt"

	"tshmem/internal/stats"
	"tshmem/internal/vtime"
)

// ReduceAlgo selects the default reduction engine.
type ReduceAlgo int

const (
	// NaiveReduce is the paper's current design (S IV.D.3): the root
	// serially gets each PE's data, folds it, and pull-broadcasts the
	// result. Aggregate bandwidth stays flat as tiles are added (Figure 12).
	NaiveReduce ReduceAlgo = iota
	// RecursiveDoubling is the paper's future-work algorithm: log-depth
	// pairwise exchange; every PE finishes with the result. Requires a
	// power-of-two active set and a pWrk of at least nelems elements; the
	// engine falls back to NaiveReduce otherwise.
	RecursiveDoubling
)

func (r ReduceAlgo) String() string {
	if r == RecursiveDoubling {
		return "recursive-doubling"
	}
	return "naive"
}

// foldKind tells the engine how to charge the arithmetic.
type foldKind int

const (
	foldInt foldKind = iota
	foldFloat
)

// chargeFold charges the per-element cost of the reduction's fold loop.
// The loop is type-dispatched (one call per element in the C library this
// models), far costlier than a raw ALU op — this is what serializes
// Figure 12 at ~150 MB/s on the TILE-Gx. Float folds additionally pay the
// chip's floating-point cost (softfloat on the TILEPro).
func (pe *PE) chargeFold(k foldKind, n int64) {
	ns := pe.prog.chip.ReduceElemNs
	if k == foldFloat {
		ns += pe.prog.chip.FlopNs
	}
	pe.clock.Advance(vtime.FromNs(float64(n) * ns))
}

func reduceEnter[T Elem](pe *PE, target, source Ref[T], nelems int, as ActiveSet, pWrk Ref[T], ps PSync) (int, uint32, error) {
	idx, tag, err := pe.collEnter(as)
	if err != nil {
		return 0, 0, err
	}
	if err := checkPSync(ps, ReduceSyncSize); err != nil {
		return 0, 0, err
	}
	if !pWrk.valid() {
		return 0, 0, fmt.Errorf("%w: pWrk required", ErrBounds)
	}
	min := nelems/2 + 1
	if min < ReduceMinWrkSize {
		min = ReduceMinWrkSize
	}
	if pWrk.Len() < min {
		return 0, 0, fmt.Errorf("%w: pWrk has %d elements, spec requires %d", ErrBounds, pWrk.Len(), min)
	}
	if nelems <= 0 || nelems > source.Len() || nelems > target.Len() {
		return 0, 0, fmt.Errorf("%w: reduce of %d elements (target %d, source %d)",
			ErrBounds, nelems, target.Len(), source.Len())
	}
	return idx, tag, nil
}

// reduceNaive: the root serially gets every member's source into private
// memory, folds, writes its target, and the members pull the result.
func reduceNaive[T Elem](pe *PE, target, source Ref[T], nelems int, fold func(a, b T) T, k foldKind, as ActiveSet) error {
	idx := mustIndex(as, pe.id)
	if err := pe.barrierUDN(as); err != nil {
		return err
	}
	if idx == 0 {
		acc := make([]T, nelems)
		if err := GetSlice(pe, acc, source, pe.id); err != nil {
			return err
		}
		// The root's gather loop streams the whole active set's data
		// through its own cache; sustained bandwidth follows that working
		// set, which is what keeps the Figure 12 aggregate flat and low.
		nbytes := int64(nelems) * sizeOf[T]()
		ws := int64(as.Size) * nbytes
		extra := pe.prog.model.StreamCost(nbytes, ws, sharedMode) -
			pe.prog.model.CopyCost(nbytes, sharedMode, 1)
		buf := make([]T, nelems)
		for i := 1; i < as.Size; i++ {
			if err := GetSlice(pe, buf, source, as.PE(i)); err != nil {
				return err
			}
			if extra > 0 {
				pe.clock.Advance(extra)
			}
			for j := range acc {
				acc[j] = fold(acc[j], buf[j])
			}
			pe.chargeFold(k, int64(nelems))
			// Folding re-streams accumulator and operand.
			pe.clock.Advance(pe.prog.model.StreamCost(nbytes, ws, sharedMode))
		}
		if err := PutSlice(pe, target, acc, pe.id); err != nil {
			return err
		}
	}
	if err := pe.barrierUDN(as); err != nil {
		return err
	}
	if idx != 0 {
		restore := pe.setHint(as.Size - 1)
		err := Get(pe, target, target, nelems, as.PE(0))
		restore()
		if err != nil {
			return err
		}
	}
	return pe.barrierUDN(as)
}

// rdRounds reports the number of exchange rounds recursive doubling needs
// for a power-of-two set of the given size.
func rdRounds(size int) int {
	r := 0
	for mask := 1; mask < size; mask <<= 1 {
		r++
	}
	return r
}

// rdWrkNeed reports the pWrk elements the recursive-doubling engine needs:
// one receive buffer per round, so a partner running ahead can deposit the
// next round's data without disturbing a buffer this PE has not folded yet.
func rdWrkNeed(nelems, size int) int { return nelems * rdRounds(size) }

// reduceRD: recursive doubling. In round j each PE exchanges its running
// result with the partner at set distance 2^j, writing into the partner's
// j-th pWrk buffer, then folds. After log2(size) rounds every PE holds the
// full reduction in target — no final broadcast needed.
func reduceRD[T Elem](pe *PE, target, source Ref[T], nelems int, fold func(a, b T) T, k foldKind, as ActiveSet, pWrk Ref[T], tag uint32) error {
	idx := mustIndex(as, pe.id)
	fab := pe.spansChips(as)
	if err := pe.barrierUDN(as); err != nil {
		return err
	}
	// Seed target with the local contribution.
	if err := Put(pe, target, source, nelems, pe.id); err != nil {
		return err
	}
	round := 0
	for mask := 1; mask < as.Size; mask <<= 1 {
		partner := as.PE(idx ^ mask)
		buf := pWrk.Slice(round*nelems, (round+1)*nelems)
		restore := pe.setHint(2)
		err := Put(pe, buf, target, nelems, partner)
		restore()
		if err != nil {
			return err
		}
		pe.Quiet()
		if err := pe.sendSig(partner, tag^uint32(round+1), 1, fab); err != nil {
			return err
		}
		if _, _, _, err := pe.recvSig(tag^uint32(round+1), fab); err != nil {
			return err
		}
		mine, err := Local(pe, target)
		if err != nil {
			return err
		}
		theirs, err := Local(pe, buf)
		if err != nil {
			return err
		}
		for j := 0; j < nelems; j++ {
			mine[j] = fold(mine[j], theirs[j])
		}
		pe.chargeFold(k, int64(nelems))
		round++
	}
	return pe.barrierUDN(as)
}

func mustIndex(as ActiveSet, pe int) int {
	idx, ok := as.Index(pe)
	if !ok {
		panic(ErrNotInSet)
	}
	return idx
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// reduceDispatch picks the engine per Config.Reduce and feasibility.
func reduceDispatch[T Elem](pe *PE, target, source Ref[T], nelems int, fold func(a, b T) T, k foldKind, as ActiveSet, pWrk Ref[T], ps PSync) error {
	_, tag, err := reduceEnter(pe, target, source, nelems, as, pWrk, ps)
	if err != nil {
		return err
	}
	start := pe.clock.Now()
	defer pe.rec.OpDone(stats.OpReduce, start, &pe.clock, int64(nelems)*sizeOf[T](), int(stats.NoPeer))
	if pe.prog.cfg.Reduce == RecursiveDoubling && isPow2(as.Size) &&
		pWrk.Len() >= rdWrkNeed(nelems, as.Size) && pWrk.kind == dynamicRef && target.kind == dynamicRef {
		return reduceRD(pe, target, source, nelems, fold, k, as, pWrk, tag)
	}
	return reduceNaive(pe, target, source, nelems, fold, k, as)
}

func kindOf[T Numeric]() foldKind {
	var z T
	switch any(z).(type) {
	case float32, float64:
		return foldFloat
	default:
		return foldInt
	}
}

// SumToAll performs an element-wise sum reduction across the active set
// (shmem_TYPE_sum_to_all).
func SumToAll[T Numeric](pe *PE, target, source Ref[T], nelems int, as ActiveSet, pWrk Ref[T], ps PSync) error {
	return reduceDispatch(pe, target, source, nelems, func(a, b T) T { return a + b }, kindOf[T](), as, pWrk, ps)
}

// ProdToAll performs an element-wise product reduction
// (shmem_TYPE_prod_to_all).
func ProdToAll[T Numeric](pe *PE, target, source Ref[T], nelems int, as ActiveSet, pWrk Ref[T], ps PSync) error {
	return reduceDispatch(pe, target, source, nelems, func(a, b T) T { return a * b }, kindOf[T](), as, pWrk, ps)
}

// MinToAll performs an element-wise minimum reduction
// (shmem_TYPE_min_to_all).
func MinToAll[T Numeric](pe *PE, target, source Ref[T], nelems int, as ActiveSet, pWrk Ref[T], ps PSync) error {
	return reduceDispatch(pe, target, source, nelems, func(a, b T) T {
		if b < a {
			return b
		}
		return a
	}, kindOf[T](), as, pWrk, ps)
}

// MaxToAll performs an element-wise maximum reduction
// (shmem_TYPE_max_to_all).
func MaxToAll[T Numeric](pe *PE, target, source Ref[T], nelems int, as ActiveSet, pWrk Ref[T], ps PSync) error {
	return reduceDispatch(pe, target, source, nelems, func(a, b T) T {
		if b > a {
			return b
		}
		return a
	}, kindOf[T](), as, pWrk, ps)
}

// AndToAll performs an element-wise bitwise-and reduction
// (shmem_TYPE_and_to_all).
func AndToAll[T Integer](pe *PE, target, source Ref[T], nelems int, as ActiveSet, pWrk Ref[T], ps PSync) error {
	return reduceDispatch(pe, target, source, nelems, func(a, b T) T { return a & b }, foldInt, as, pWrk, ps)
}

// OrToAll performs an element-wise bitwise-or reduction
// (shmem_TYPE_or_to_all).
func OrToAll[T Integer](pe *PE, target, source Ref[T], nelems int, as ActiveSet, pWrk Ref[T], ps PSync) error {
	return reduceDispatch(pe, target, source, nelems, func(a, b T) T { return a | b }, foldInt, as, pWrk, ps)
}

// XorToAll performs an element-wise bitwise-xor reduction
// (shmem_TYPE_xor_to_all).
func XorToAll[T Integer](pe *PE, target, source Ref[T], nelems int, as ActiveSet, pWrk Ref[T], ps PSync) error {
	return reduceDispatch(pe, target, source, nelems, func(a, b T) T { return a ^ b }, foldInt, as, pWrk, ps)
}

// SumToAllNaive forces the paper's naive engine regardless of
// configuration; the Figure 12 benchmark and the recursive-doubling
// ablation use it.
func SumToAllNaive[T Numeric](pe *PE, target, source Ref[T], nelems int, as ActiveSet, pWrk Ref[T], ps PSync) error {
	if _, _, err := reduceEnter(pe, target, source, nelems, as, pWrk, ps); err != nil {
		return err
	}
	start := pe.clock.Now()
	defer pe.rec.OpDone(stats.OpReduce, start, &pe.clock, int64(nelems)*sizeOf[T](), int(stats.NoPeer))
	return reduceNaive(pe, target, source, nelems, func(a, b T) T { return a + b }, kindOf[T](), as)
}

// SumToAllRD forces the recursive-doubling engine (future-work ablation).
// The active set must be a power of two and pWrk must hold nelems dynamic
// elements.
func SumToAllRD[T Numeric](pe *PE, target, source Ref[T], nelems int, as ActiveSet, pWrk Ref[T], ps PSync) error {
	_, tag, err := reduceEnter(pe, target, source, nelems, as, pWrk, ps)
	if err != nil {
		return err
	}
	if !isPow2(as.Size) {
		return fmt.Errorf("%w: recursive doubling needs a power-of-two set, got %d", ErrBadActiveSet, as.Size)
	}
	if pWrk.Len() < rdWrkNeed(nelems, as.Size) || pWrk.kind != dynamicRef || target.kind != dynamicRef {
		return fmt.Errorf("%w: recursive doubling needs a dynamic pWrk of >= nelems*log2(size) elements and a dynamic target", ErrBounds)
	}
	start := pe.clock.Now()
	defer pe.rec.OpDone(stats.OpReduce, start, &pe.clock, int64(nelems)*sizeOf[T](), int(stats.NoPeer))
	return reduceRD(pe, target, source, nelems, func(a, b T) T { return a + b }, kindOf[T](), as, pWrk, tag)
}
