package core

import (
	"errors"
	"fmt"

	"tshmem/internal/vtime"
)

// Errors reported by TSHMEM operations.
var (
	// ErrNotSupported marks operations unavailable on the target chip, such
	// as static symmetric transfers on the TILEPro (no UDN interrupts).
	ErrNotSupported = errors.New("tshmem: operation not supported on this chip")

	// ErrBadPE reports a PE number outside [0, NumPEs).
	ErrBadPE = errors.New("tshmem: PE out of range")

	// ErrBadActiveSet reports an invalid (PE_start, logPE_stride, PE_size)
	// triplet.
	ErrBadActiveSet = errors.New("tshmem: invalid active set")

	// ErrNotInSet reports a collective call from a PE outside the active set.
	ErrNotInSet = errors.New("tshmem: calling PE not in active set")

	// ErrBounds reports an out-of-bounds symmetric access.
	ErrBounds = errors.New("tshmem: symmetric access out of bounds")

	// ErrAsymmetric reports a collective call whose arguments disagree
	// across PEs (for example shmalloc with different sizes).
	ErrAsymmetric = errors.New("tshmem: asymmetric collective call")

	// ErrFinalized reports use of a PE after Finalize.
	ErrFinalized = errors.New("tshmem: PE already finalized")

	// ErrStatic reports an operation that requires a dynamic symmetric
	// object but was given a static one (e.g. atomics in this
	// implementation).
	ErrStatic = errors.New("tshmem: operation requires a dynamic symmetric object")

	// ErrUnknownStatic reports access to a static object that was not
	// declared (or not yet declared by the target PE).
	ErrUnknownStatic = errors.New("tshmem: unknown static symmetric object")

	// ErrTimeout reports a bounded wait that expired under fault injection
	// (Config.Faults): a barrier, collective, WaitUntil, init handshake, or
	// redirected transfer whose partner never progressed within the wait
	// budget. Concrete errors are *TimeoutError values wrapping this
	// sentinel; match with errors.Is(err, ErrTimeout). The Report carries
	// the same information as Timeout diagnostics.
	ErrTimeout = errors.New("tshmem: bounded wait timed out")
)

// TimeoutError is the typed diagnostic behind ErrTimeout: which PE was
// stuck in which operation, whom it was waiting for, which fault-plan
// event is blamed, and the virtual window it waited through.
type TimeoutError struct {
	PE       int        // the stuck PE
	Peer     int        // awaited peer, -1 when the wait had no single peer
	Op       string     // blocked operation ("barrier", "wait_until", ...)
	Fault    int        // blamed fault-plan event id, -1 when unattributed
	Start    vtime.Time // virtual time the wait began
	Deadline vtime.Time // virtual deadline that expired (Start + WaitBudget)
}

func (e *TimeoutError) Error() string {
	s := fmt.Sprintf("tshmem: PE %d timed out in %s", e.PE, e.Op)
	if e.Peer >= 0 {
		s += fmt.Sprintf(" awaiting PE %d", e.Peer)
	}
	s += fmt.Sprintf(" (vt %v..%v", e.Start, e.Deadline)
	if e.Fault >= 0 {
		s += fmt.Sprintf(", fault event %d", e.Fault)
	}
	return s + ")"
}

// Unwrap makes errors.Is(err, ErrTimeout) match.
func (e *TimeoutError) Unwrap() error { return ErrTimeout }
