package core

import "errors"

// Errors reported by TSHMEM operations.
var (
	// ErrNotSupported marks operations unavailable on the target chip, such
	// as static symmetric transfers on the TILEPro (no UDN interrupts).
	ErrNotSupported = errors.New("tshmem: operation not supported on this chip")

	// ErrBadPE reports a PE number outside [0, NumPEs).
	ErrBadPE = errors.New("tshmem: PE out of range")

	// ErrBadActiveSet reports an invalid (PE_start, logPE_stride, PE_size)
	// triplet.
	ErrBadActiveSet = errors.New("tshmem: invalid active set")

	// ErrNotInSet reports a collective call from a PE outside the active set.
	ErrNotInSet = errors.New("tshmem: calling PE not in active set")

	// ErrBounds reports an out-of-bounds symmetric access.
	ErrBounds = errors.New("tshmem: symmetric access out of bounds")

	// ErrAsymmetric reports a collective call whose arguments disagree
	// across PEs (for example shmalloc with different sizes).
	ErrAsymmetric = errors.New("tshmem: asymmetric collective call")

	// ErrFinalized reports use of a PE after Finalize.
	ErrFinalized = errors.New("tshmem: PE already finalized")

	// ErrStatic reports an operation that requires a dynamic symmetric
	// object but was given a static one (e.g. atomics in this
	// implementation).
	ErrStatic = errors.New("tshmem: operation requires a dynamic symmetric object")

	// ErrUnknownStatic reports access to a static object that was not
	// declared (or not yet declared by the target PE).
	ErrUnknownStatic = errors.New("tshmem: unknown static symmetric object")
)
