package core

import (
	"fmt"
	"sync"
)

// staticEntry is one static symmetric object: same name, type size, and
// element count on every PE, but backed by per-PE *private* memory, exactly
// like link-time statics in the heap segment of the Tilera executable
// (Section II.A). Backings are allocated as []uint64 so every element type
// is correctly aligned when viewed as bytes.
type staticEntry struct {
	name     string
	elemSize int64
	n        int
	backing  [][]byte // per-PE private storage
	declared []bool
}

// staticRegistry tracks all declared static objects.
type staticRegistry struct {
	mu      sync.Mutex
	byName  map[string]int32
	entries []*staticEntry
}

func (r *staticRegistry) init() {
	r.byName = make(map[string]int32)
}

// declare registers (or joins) the static object name for PE pe.
func (r *staticRegistry) declare(name string, elemSize int64, n, pe, npes int) (int32, error) {
	if name == "" {
		return 0, fmt.Errorf("tshmem: static object needs a name")
	}
	if n <= 0 {
		return 0, fmt.Errorf("tshmem: static object %q with %d elements", name, n)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id, exists := r.byName[name]
	if !exists {
		id = int32(len(r.entries))
		r.byName[name] = id
		r.entries = append(r.entries, &staticEntry{
			name:     name,
			elemSize: elemSize,
			n:        n,
			backing:  make([][]byte, npes),
			declared: make([]bool, npes),
		})
	}
	e := r.entries[id]
	if e.elemSize != elemSize || e.n != n {
		return 0, fmt.Errorf("%w: static %q declared as %dx%dB by PE %d, %dx%dB elsewhere",
			ErrAsymmetric, name, n, elemSize, pe, e.n, e.elemSize)
	}
	if e.declared[pe] {
		return 0, fmt.Errorf("%w: static %q declared twice by PE %d", ErrAsymmetric, name, pe)
	}
	words := make([]uint64, (int64(n)*elemSize+7)/8)
	e.backing[pe] = bytesOf(words)[:int64(n)*elemSize]
	e.declared[pe] = true
	return id, nil
}

// backing returns PE pe's private storage for static object sid.
func (r *staticRegistry) backing(sid int32, pe int) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if sid < 0 || int(sid) >= len(r.entries) {
		return nil, fmt.Errorf("%w: id %d", ErrUnknownStatic, sid)
	}
	e := r.entries[sid]
	if pe < 0 || pe >= len(e.backing) || !e.declared[pe] {
		return nil, fmt.Errorf("%w: %q not declared by PE %d", ErrUnknownStatic, e.name, pe)
	}
	return e.backing[pe], nil
}

// DeclareStatic declares a static symmetric object: n elements of T named
// name, residing in each PE's private memory. It is a collective call (all
// PEs must declare the same object; the call barriers so that the object is
// fully materialized everywhere on return).
//
// Static objects model C globals in a SHMEM executable: they are symmetric
// (same "address" — here, the same Ref — on every PE) but private, so
// remote access requires the UDN-interrupt redirection of Section IV.B.2,
// which the TILEPro does not support.
func DeclareStatic[T Elem](pe *PE, name string, n int) (Ref[T], error) {
	if err := pe.check(); err != nil {
		return Ref[T]{}, err
	}
	id, err := pe.prog.statics.declare(name, sizeOf[T](), n, pe.id, pe.n)
	if err != nil {
		return Ref[T]{}, err
	}
	if err := pe.verifySymmetric(int64(id)); err != nil {
		return Ref[T]{}, err
	}
	return Ref[T]{kind: staticRef, sid: id, n: n, ok: true}, nil
}
