package core

import (
	"sync"
	"time"

	"tshmem/internal/vtime"
)

// watchHub is the per-PE synchronization hub behind Wait/WaitUntil. Writers
// of watchable values (elemental puts, atomic operations) record the
// virtual time at which their store became visible and wake any waiters;
// a waiting PE re-evaluates its predicate on each wakeup and, once
// satisfied, merges its clock with the store's visibility time — the
// virtual-time analogue of the coherence fabric delivering the line to the
// polling tile.
type watchHub struct {
	mu      sync.Mutex
	cond    *sync.Cond
	times   map[int64]hubStamp // partition byte offset -> latest visible store
	aborted bool

	idx   int      // this hub's index in Program.hubs (the calendar wait key)
	sched *evsched // nil unless the event engine runs the program
}

// hubStamp records one store's visibility time plus the global rank of
// the PE that performed it, so waiters can emit a happens-before edge to
// the writer's timeline (sanitize.Edge / critical-path extraction).
type hubStamp struct {
	t      vtime.Time
	writer int32
}

func (h *watchHub) init(idx int, sched *evsched) {
	h.cond = sync.NewCond(&h.mu)
	h.times = make(map[int64]hubStamp)
	h.idx = idx
	h.sched = sched
}

// record notes that the value at partition offset off became visible at t,
// written by global PE writer, and wakes all waiters on this PE.
func (h *watchHub) record(off int64, t vtime.Time, writer int) {
	h.mu.Lock()
	if t > h.times[off].t {
		h.times[off] = hubStamp{t: t, writer: int32(writer)}
	}
	h.mu.Unlock()
	h.cond.Broadcast()
	if h.sched != nil {
		h.sched.wake(wkHub, int64(h.idx), 0)
	}
}

// await outcomes.
const (
	hubOK       = iota // predicate satisfied
	hubAborted         // program aborted while waiting
	hubTimedOut        // host-time grace expired (fault injection)
)

// await blocks until pred returns true, then reports the recorded
// visibility stamp of offset off (zero if never recorded) and hubOK. A
// grace > 0 arms a host-time bound: if the predicate is still false after
// grace — the writer is starved by fault injection — await gives up with
// hubTimedOut. hubAborted reports a program abort while waiting.
func (h *watchHub) await(pe *PE, off int64, pred func() bool, grace time.Duration) (hubStamp, int) {
	if h.sched != nil {
		return h.awaitEvent(pe, off, pred)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var timedOut bool
	if grace > 0 {
		timer := time.AfterFunc(grace, func() {
			h.mu.Lock()
			timedOut = true
			h.mu.Unlock()
			h.cond.Broadcast()
		})
		defer timer.Stop()
	}
	for !pred() {
		if h.aborted {
			return hubStamp{}, hubAborted
		}
		if timedOut {
			return hubStamp{}, hubTimedOut
		}
		h.cond.Wait()
	}
	return h.times[off], hubOK
}

// awaitEvent is await on the event engine: the waiting PE parks in the
// calendar keyed on this hub, record's wake re-arms the poll, and a
// quiescence expiry re-checks the predicate once (the satisfying write
// may have landed in the same step) before giving up. Note any PE may
// wait on any hub — the ticket lock parks every contender on the lock
// owner's hub — hence the hub-indexed wait key rather than a PE-indexed
// one.
func (h *watchHub) awaitEvent(pe *PE, off int64, pred func() bool) (hubStamp, int) {
	for {
		h.mu.Lock()
		if pred() {
			st := h.times[off]
			h.mu.Unlock()
			return st, hubOK
		}
		ab := h.aborted
		h.mu.Unlock()
		if ab {
			return hubStamp{}, hubAborted
		}
		switch pe.prog.sched.yield(pe.id, wkHub, int64(h.idx), 0) {
		case wakeAbort:
			return hubStamp{}, hubAborted
		case wakeTimeout:
			h.mu.Lock()
			ok := pred()
			st := h.times[off]
			h.mu.Unlock()
			if ok {
				return st, hubOK
			}
			return hubStamp{}, hubTimedOut
		}
	}
}

// abort wakes all waiters after a program failure.
func (h *watchHub) abort() {
	h.mu.Lock()
	h.aborted = true
	h.mu.Unlock()
	h.cond.Broadcast()
}
