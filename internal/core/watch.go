package core

import (
	"sync"

	"tshmem/internal/vtime"
)

// watchHub is the per-PE synchronization hub behind Wait/WaitUntil. Writers
// of watchable values (elemental puts, atomic operations) record the
// virtual time at which their store became visible and wake any waiters;
// a waiting PE re-evaluates its predicate on each wakeup and, once
// satisfied, merges its clock with the store's visibility time — the
// virtual-time analogue of the coherence fabric delivering the line to the
// polling tile.
type watchHub struct {
	mu      sync.Mutex
	cond    *sync.Cond
	times   map[int64]vtime.Time // partition byte offset -> visibility time
	aborted bool
}

func (h *watchHub) init() {
	h.cond = sync.NewCond(&h.mu)
	h.times = make(map[int64]vtime.Time)
}

// record notes that the value at partition offset off became visible at t
// and wakes all waiters on this PE.
func (h *watchHub) record(off int64, t vtime.Time) {
	h.mu.Lock()
	if t > h.times[off] {
		h.times[off] = t
	}
	h.mu.Unlock()
	h.cond.Broadcast()
}

// await blocks until pred returns true, then reports the recorded
// visibility time of offset off (zero if never recorded). ok is false when
// the program aborted while waiting.
func (h *watchHub) await(off int64, pred func() bool) (vtime.Time, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for !pred() {
		if h.aborted {
			return 0, false
		}
		h.cond.Wait()
	}
	return h.times[off], true
}

// abort wakes all waiters after a program failure.
func (h *watchHub) abort() {
	h.mu.Lock()
	h.aborted = true
	h.mu.Unlock()
	h.cond.Broadcast()
}
