package core

import (
	"math/rand"
	"testing"
)

// TestEpochConsistency is a randomized SPMD property test: in every epoch,
// each PE issues a random mix of one-sided operations with deterministic,
// rank-stamped payloads to disjoint regions; after the barrier, every PE
// verifies that its own partition holds exactly what the epoch's writers
// must have produced. This exercises put/get/elemental/strided paths under
// real concurrency with a checkable model.
func TestEpochConsistency(t *testing.T) {
	const (
		n      = 6
		epochs = 40
		slots  = 64 // per-writer region, elements
	)
	runT(t, gxCfg(n), func(pe *PE) error {
		me := pe.MyPE()
		// region[w] on every PE is writable only by PE w.
		region, err := Malloc[int64](pe, n*slots)
		if err != nil {
			return err
		}
		scratch, err := Malloc[int64](pe, slots) // reused symmetric staging buffer
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(int64(me)*7919 + 1))
		stamp := func(epoch, writer, i int) int64 {
			return int64(epoch)<<32 | int64(writer)<<16 | int64(i)
		}

		for epoch := 0; epoch < epochs; epoch++ {
			// Every PE writes its region on a random subset of targets and
			// always on its right neighbor, so every PE receives at least
			// one update per epoch.
			targets := map[int]bool{(me + 1) % n: true}
			for k := 0; k < 2; k++ {
				targets[rng.Intn(n)] = true
			}
			mine := region.Slice(me*slots, (me+1)*slots)
			buf := make([]int64, slots)
			for i := range buf {
				buf[i] = stamp(epoch, me, i)
			}
			for tgt := range targets {
				switch rng.Intn(4) {
				case 0: // block put from a private slice
					if err := PutSlice(pe, mine, buf, tgt); err != nil {
						return err
					}
				case 1: // elemental puts
					for i := 0; i < slots; i++ {
						if err := P(pe, mine.At(i), buf[i], tgt); err != nil {
							return err
						}
					}
				case 2: // strided put of the even elements, then the odd
					copy(MustLocal(pe, scratch), buf)
					if err := IPut(pe, mine, scratch, 2, 2, slots/2, tgt); err != nil {
						return err
					}
					odd := func(r Ref[int64]) Ref[int64] { return r.Slice(1, r.Len()) }
					if err := IPut(pe, odd(mine), odd(scratch), 2, 2, slots/2, tgt); err != nil {
						return err
					}
				default: // symmetric-to-symmetric put via the staging buffer
					copy(MustLocal(pe, scratch), buf)
					if err := Put(pe, mine, scratch, slots, tgt); err != nil {
						return err
					}
				}
			}
			if err := pe.BarrierAll(); err != nil {
				return err
			}
			// Verification: my region copies stamped by their writers.
			v := MustLocal(pe, region)
			for w := 0; w < n; w++ {
				// Was w one of the writers that targeted me this epoch? We
				// can't know its random subset, but its neighbor write is
				// guaranteed: w always writes to (w+1)%n.
				if (w+1)%n != me {
					continue
				}
				for i := 0; i < slots; i++ {
					if got := v[w*slots+i]; got != stamp(epoch, w, i) {
						t.Fatalf("epoch %d: PE %d region[%d][%d] = %x, want %x",
							epoch, me, w, i, got, stamp(epoch, w, i))
					}
				}
			}
			if err := pe.BarrierAll(); err != nil {
				return err
			}
		}
		return nil
	})
}
