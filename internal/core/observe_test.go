package core

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"tshmem/internal/mesh"
	"tshmem/internal/stats"
	"tshmem/internal/vtime"
)

// Without Observe, runs carry no counters, no trace, and every PE's
// recorder stays nil (the zero-cost path asserted in internal/stats).
func TestUnobservedRunHasNoCounters(t *testing.T) {
	rep := runT(t, gxCfg(4), func(pe *PE) error {
		if pe.rec != nil {
			t.Error("recorder non-nil without Config.Observe")
		}
		if c := pe.Counters(); c != (stats.Counters{}) {
			t.Errorf("PE counters non-zero without Observe: %+v", c)
		}
		return pe.BarrierAll()
	})
	if len(rep.PECounters) != 0 || len(rep.Trace()) != 0 {
		t.Errorf("report carries observability data: %d counters, %d events",
			len(rep.PECounters), len(rep.Trace()))
	}
	if rep.Stats() != (stats.Counters{}) {
		t.Errorf("aggregate non-zero: %+v", rep.Stats())
	}
}

// An observed barrier run must balance its UDN ledger (every message sent
// is received) and count exactly the chain's signals.
func TestObservedBarrierCounters(t *testing.T) {
	const n, iters = 8, 5
	cfg := gxCfg(n)
	cfg.Observe = true
	rep := runT(t, cfg, func(pe *PE) error {
		for i := 0; i < iters; i++ {
			if err := pe.BarrierAll(); err != nil {
				return err
			}
		}
		return nil
	})
	if len(rep.PECounters) != n {
		t.Fatalf("PECounters has %d entries, want %d", len(rep.PECounters), n)
	}
	agg := rep.Stats()
	if agg.UDNMsgsSent != agg.UDNMsgsRecvd || agg.UDNWordsSent != agg.UDNWordsRecvd {
		t.Errorf("UDN ledger unbalanced: sent %d/%d words, received %d/%d",
			agg.UDNMsgsSent, agg.UDNWordsSent, agg.UDNMsgsRecvd, agg.UDNWordsRecvd)
	}
	// start_pes runs one concluding barrier, so each PE sees iters+1
	// OpBarrier instances; each instance costs 2(n-1)+1 chain signals.
	instances := int64(iters + 1)
	if agg.Ops[stats.OpBarrier] != instances*n {
		t.Errorf("Ops[barrier] = %d, want %d", agg.Ops[stats.OpBarrier], instances*n)
	}
	wantRounds := instances * int64(2*(n-1)+1)
	if agg.BarrierRounds != wantRounds {
		t.Errorf("BarrierRounds = %d, want %d", agg.BarrierRounds, wantRounds)
	}
	if agg.Ops[stats.OpInit] != n {
		t.Errorf("Ops[init] = %d, want %d", agg.Ops[stats.OpInit], n)
	}
	// Counters aggregate across PEs: the fold of the parts is the whole.
	var fold stats.Counters
	for i := range rep.PECounters {
		fold.Add(&rep.PECounters[i])
	}
	if fold != agg {
		t.Errorf("Stats() != fold of PECounters")
	}
}

// Puts classify RMA traffic by locality and size it in bytes.
func TestObservedPutLocality(t *testing.T) {
	const n, nelems = 2, 512
	cfg := gxCfg(n)
	cfg.Observe = true
	rep := runT(t, cfg, func(pe *PE) error {
		x, err := Malloc[int64](pe, nelems)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if err := Put(pe, x, x, nelems, 1); err != nil { // same chip
				return err
			}
			if err := Put(pe, x, x, nelems, 0); err != nil { // self
				return err
			}
			pe.Quiet()
		}
		return pe.BarrierAll()
	})
	agg := rep.Stats()
	const bytes = int64(nelems) * 8
	if agg.RMAOps[stats.SameChip] != 1 || agg.RMABytes[stats.SameChip] != bytes {
		t.Errorf("same-chip: ops=%d bytes=%d, want 1 and %d",
			agg.RMAOps[stats.SameChip], agg.RMABytes[stats.SameChip], bytes)
	}
	if agg.RMAOps[stats.SelfPE] != 1 || agg.RMABytes[stats.SelfPE] != bytes {
		t.Errorf("self: ops=%d bytes=%d, want 1 and %d",
			agg.RMAOps[stats.SelfPE], agg.RMABytes[stats.SelfPE], bytes)
	}
	if agg.RMAOps[stats.CrossChip] != 0 {
		t.Errorf("cross-chip ops on a single chip: %d", agg.RMAOps[stats.CrossChip])
	}
	if agg.Ops[stats.OpPut] != 2 || agg.TotalRMABytes() != 2*bytes {
		t.Errorf("puts=%d rma=%d, want 2 and %d", agg.Ops[stats.OpPut], agg.TotalRMABytes(), 2*bytes)
	}
	if agg.CacheHits()+agg.CacheMisses() == 0 {
		t.Error("puts charged no classified cache copies")
	}
}

// Observed runs record latency histograms alongside the counters: every
// op class that counted also observed, quantiles are monotone, and the
// op-class histograms reconcile exactly with OpTimePs.
func TestObservedHistograms(t *testing.T) {
	const n = 4
	cfg := gxCfg(n)
	cfg.Observe = true
	rep := runT(t, cfg, func(pe *PE) error {
		x, err := Malloc[int64](pe, 256)
		if err != nil {
			return err
		}
		y, err := Malloc[int64](pe, 256)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if err := Put(pe, y, x, 256, (pe.MyPE()+1)%n); err != nil {
			return err
		}
		pe.Quiet()
		return pe.BarrierAll()
	})
	agg := rep.Stats()
	for op := stats.Op(0); op < stats.NumOps; op++ {
		h := agg.Hists[stats.HistForOp(op)]
		if h.Count != agg.Ops[op] {
			t.Errorf("op %v: hist count %d != op count %d", op, h.Count, agg.Ops[op])
		}
		if h.SumPs != agg.OpTimePs[op] {
			t.Errorf("op %v: hist sum %d != OpTimePs %d", op, h.SumPs, agg.OpTimePs[op])
		}
	}
	for c := stats.HistClass(0); c < stats.NumHistClasses; c++ {
		h := agg.Hists[c]
		p50, p90, p99 := h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99)
		if !(p50 <= p90 && p90 <= p99 && p99 <= h.MaxPs) {
			t.Errorf("%v: quantiles not monotone: p50=%d p90=%d p99=%d max=%d",
				c, p50, p90, p99, h.MaxPs)
		}
	}
	if agg.Hists[stats.HistUDNSend].Count != agg.UDNMsgsSent {
		t.Errorf("udn.send hist count %d != msgs sent %d",
			agg.Hists[stats.HistUDNSend].Count, agg.UDNMsgsSent)
	}
	if agg.Hists[stats.HistBarrierWait].Count == 0 {
		t.Error("barrier chains ran but barrier.wait histogram is empty")
	}
	var rmaN int64
	for l := stats.Locality(0); l < stats.NumLocalities; l++ {
		if agg.Hists[stats.HistForRMA(l)].Count != agg.RMAOps[l] {
			t.Errorf("rma.%v hist count %d != ops %d",
				l, agg.Hists[stats.HistForRMA(l)].Count, agg.RMAOps[l])
		}
		rmaN += agg.RMAOps[l]
	}
	if rmaN == 0 {
		t.Error("no RMA histograms observed")
	}
}

// Observed runs snapshot per-link mesh utilization: a same-chip put's
// modeled route and the barrier chain's UDN signals both appear, and the
// link ledger is consistent with the traffic that ran.
func TestObservedMeshUtilization(t *testing.T) {
	const n, nelems = 4, 512 // 2x2 area
	cfg := gxCfg(n)
	cfg.Observe = true
	rep := runT(t, cfg, func(pe *PE) error {
		x, err := Malloc[int64](pe, nelems)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			// PE 0 = (0,0) puts to PE 1 = (1,0): the data's route is the
			// single east link out of tile 0.
			if err := Put(pe, x, x, nelems, 1); err != nil {
				return err
			}
			pe.Quiet()
		}
		return pe.BarrierAll()
	})
	if len(rep.MeshUtil) != 1 {
		t.Fatalf("MeshUtil has %d chips, want 1", len(rep.MeshUtil))
	}
	u := rep.MeshUtil[0]
	if u.Width != 2 || u.Height != 2 {
		t.Fatalf("area %dx%d, want 2x2", u.Width, u.Height)
	}
	wordBytes := int64(8)
	putWords := int64(nelems) * 8 / wordBytes
	east := u.Link(0, 0, mesh.LinkEast)
	if east < putWords {
		t.Errorf("east link out of tile 0 carried %d words, want >= %d (the put)", east, putWords)
	}
	// Barrier signals ride the mesh too, so the chain's wait/release
	// messages must light up links beyond the put's east hop.
	if total := u.TotalWords(); total <= east {
		t.Error("only the put's link saw traffic; barrier signals unrecorded")
	}
	if u.MaxQueueHWM() < 1 {
		t.Error("no receive-queue occupancy recorded")
	}
	// The unobserved path must not pay for any of this.
	rep2 := runT(t, gxCfg(2), func(pe *PE) error { return pe.BarrierAll() })
	if len(rep2.MeshUtil) != 0 {
		t.Errorf("unobserved run carries %d mesh snapshots", len(rep2.MeshUtil))
	}
}

// Multi-chip runs expose per-chip aggregation that sums to the global
// view, and per-chip mesh snapshots.
func TestStatsByChip(t *testing.T) {
	cfg := gxCfg(8)
	cfg.NChips = 2
	cfg.Observe = true
	rep := runT(t, cfg, func(pe *PE) error {
		x, err := Malloc[int64](pe, 64)
		if err != nil {
			return err
		}
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if err := Put(pe, x, x, 64, 1); err != nil { // same chip
				return err
			}
			if err := Put(pe, x, x, 64, 5); err != nil { // cross chip
				return err
			}
			pe.Quiet()
		}
		return pe.BarrierAll()
	})
	per := rep.StatsByChip()
	if len(per) != 2 {
		t.Fatalf("StatsByChip has %d entries, want 2", len(per))
	}
	var fold stats.Counters
	for i := range per {
		fold.Add(&per[i])
	}
	if fold != rep.Stats() {
		t.Error("per-chip counters do not sum to the global view")
	}
	if per[0].RMAOps[stats.CrossChip] != 1 || per[1].RMAOps[stats.CrossChip] != 0 {
		t.Errorf("cross-chip op attributed to chips %d/%d, want 1/0",
			per[0].RMAOps[stats.CrossChip], per[1].RMAOps[stats.CrossChip])
	}
	if len(rep.MeshUtil) != 2 {
		t.Errorf("MeshUtil has %d chips, want 2", len(rep.MeshUtil))
	}
}

// Config.Trace implies Observe and yields a merged, start-ordered event
// timeline that exports as decodable Chrome trace_event JSON.
func TestTraceExport(t *testing.T) {
	const n = 4
	cfg := gxCfg(n)
	cfg.Trace = true // note: Observe left false; Trace must imply it
	var mu sync.Mutex
	elapsed := make(map[int]vtime.Duration, n)
	starts := make(map[int]vtime.Time, n)
	rep := runT(t, cfg, func(pe *PE) error {
		src, err := Malloc[int64](pe, 64)
		if err != nil {
			return err
		}
		dst, err := Malloc[int64](pe, 64)
		if err != nil {
			return err
		}
		if err := pe.AlignClocks(); err != nil {
			return err
		}
		t0 := pe.Now()
		// src is only ever read (by its owner), dst only written (by one
		// neighbor): the ring of block puts is race-free.
		if err := Put(pe, dst, src, 64, (pe.MyPE()+1)%n); err != nil {
			return err
		}
		pe.Quiet()
		if err := pe.BarrierAll(); err != nil {
			return err
		}
		mu.Lock()
		starts[pe.MyPE()] = t0
		elapsed[pe.MyPE()] = pe.Now().Sub(t0)
		mu.Unlock()
		return nil
	})
	evs := rep.Trace()
	if len(evs) == 0 {
		t.Fatal("no events traced")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Start < evs[i-1].Start {
			t.Fatalf("trace not start-ordered at %d", i)
		}
	}
	var perPE [stats.NumOps]bool
	for _, e := range evs {
		if e.PE < 0 || int(e.PE) >= n {
			t.Fatalf("event with bad PE %d", e.PE)
		}
		if e.End < e.Start {
			t.Fatalf("event ends before it starts: %+v", e)
		}
		perPE[e.Op] = true
	}
	for _, op := range []stats.Op{stats.OpInit, stats.OpPut, stats.OpFence, stats.OpBarrier} {
		if !perPE[op] {
			t.Errorf("no %v event traced", op)
		}
	}

	var buf bytes.Buffer
	if err := rep.TraceTo(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(decoded.TraceEvents) != len(evs)+n {
		t.Errorf("exported %d records, want %d events + %d thread names",
			len(decoded.TraceEvents), len(evs), n)
	}

	// The audit invariant EXPERIMENTS.md documents: between AlignClocks and
	// the measured end, the traced substrate operations explain (almost)
	// all of each PE's virtual time. The put/fence/barrier sequence leaves
	// only inter-op bookkeeping uncovered.
	for pe := 0; pe < n; pe++ {
		cov := stats.Coverage(evs, pe, starts[pe], starts[pe].Add(elapsed[pe]))
		if cov < 0.95 {
			t.Errorf("PE %d: trace covers %.1f%% of measured window, want >= 95%%", pe, 100*cov)
		}
		if cov > 1 {
			t.Errorf("PE %d: coverage %.3f exceeds 1 (double-counted nesting?)", pe, cov)
		}
	}
}

// The trace cap drops events but never corrupts counters.
func TestTraceCap(t *testing.T) {
	cfg := gxCfg(2)
	cfg.Trace = true
	cfg.TraceCap = 3
	rep := runT(t, cfg, func(pe *PE) error {
		for i := 0; i < 10; i++ {
			if err := pe.BarrierAll(); err != nil {
				return err
			}
		}
		return nil
	})
	agg := rep.Stats()
	if agg.TraceDropped == 0 {
		t.Error("cap of 3 never dropped events over 10 barriers")
	}
	if rep.DroppedEvents() != agg.TraceDropped {
		t.Errorf("DroppedEvents() = %d, want %d (a capped trace must be detectable)",
			rep.DroppedEvents(), agg.TraceDropped)
	}
	for _, c := range rep.PECounters {
		if c.Ops[stats.OpBarrier] != 11 { // 10 + start_pes barrier
			t.Errorf("dropped events must still count: barriers=%d, want 11", c.Ops[stats.OpBarrier])
		}
	}
	perPE := map[int32]int{}
	for _, e := range rep.Trace() {
		perPE[e.PE]++
	}
	for pe, got := range perPE {
		if got > 3 {
			t.Errorf("PE %d buffered %d events beyond cap 3", pe, got)
		}
	}
}
