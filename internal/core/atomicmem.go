package core

import (
	"sync/atomic"
	"unsafe"
)

// Atomic access helpers over raw byte buffers. TSHMEM's elemental
// synchronization values and atomic memory operations go through these so
// that a PE polling a symmetric variable (Wait/WaitUntil) never races with
// the writer — mirroring how the hardware's coherence protocol makes the
// written line visible to the polling tile.
//
// Offsets must be naturally aligned for the access width; the symmetric
// heap's 8-byte minimum alignment guarantees this for whole elements of
// every Elem type. 16-bit access is synthesized with a CAS loop on the
// containing 32-bit word, as on machines without sub-word atomics.

func u32ptr(b []byte, off int64) *uint32 { return (*uint32)(unsafe.Pointer(&b[off])) }
func u64ptr(b []byte, off int64) *uint64 { return (*uint64)(unsafe.Pointer(&b[off])) }

func atomicLoad32(b []byte, off int64) uint32     { return atomic.LoadUint32(u32ptr(b, off)) }
func atomicLoad64(b []byte, off int64) uint64     { return atomic.LoadUint64(u64ptr(b, off)) }
func atomicStore32(b []byte, off int64, v uint32) { atomic.StoreUint32(u32ptr(b, off), v) }
func atomicStore64(b []byte, off int64, v uint64) { atomic.StoreUint64(u64ptr(b, off), v) }

func atomicSwap32(b []byte, off int64, v uint32) uint32 {
	return atomic.SwapUint32(u32ptr(b, off), v)
}
func atomicSwap64(b []byte, off int64, v uint64) uint64 {
	return atomic.SwapUint64(u64ptr(b, off), v)
}

func atomicAdd64(b []byte, off int64, v uint64) uint64 {
	return atomic.AddUint64(u64ptr(b, off), v)
}

func atomicCAS32(b []byte, off int64, old, new uint32) bool {
	return atomic.CompareAndSwapUint32(u32ptr(b, off), old, new)
}
func atomicCAS64(b []byte, off int64, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(u64ptr(b, off), old, new)
}

// atomicLoad16 loads a 16-bit value using the containing aligned 32-bit
// word.
func atomicLoad16(b []byte, off int64) uint16 {
	base := off &^ 3
	shift := uint((off - base) * 8)
	w := atomicLoad32(b, base)
	return uint16(w >> shift)
}

// atomicStore16 stores a 16-bit value with a CAS loop on the containing
// aligned 32-bit word, leaving the neighboring bytes untouched.
func atomicStore16(b []byte, off int64, v uint16) {
	base := off &^ 3
	shift := uint((off - base) * 8)
	mask := uint32(0xFFFF) << shift
	for {
		old := atomicLoad32(b, base)
		new := (old &^ mask) | uint32(v)<<shift
		if atomicCAS32(b, base, old, new) {
			return
		}
	}
}

// atomicSwap16 swaps a 16-bit value, returning the previous one.
func atomicSwap16(b []byte, off int64, v uint16) uint16 {
	base := off &^ 3
	shift := uint((off - base) * 8)
	mask := uint32(0xFFFF) << shift
	for {
		old := atomicLoad32(b, base)
		new := (old &^ mask) | uint32(v)<<shift
		if atomicCAS32(b, base, old, new) {
			return uint16(old >> shift)
		}
	}
}

// atomicCAS16 compare-and-swaps a 16-bit value.
func atomicCAS16(b []byte, off int64, old16, new16 uint16) bool {
	base := off &^ 3
	shift := uint((off - base) * 8)
	mask := uint32(0xFFFF) << shift
	for {
		cur := atomicLoad32(b, base)
		if uint16(cur>>shift) != old16 {
			return false
		}
		next := (cur &^ mask) | uint32(new16)<<shift
		if atomicCAS32(b, base, cur, next) {
			return true
		}
	}
}

// elemBits maps an element size to the atomic access width. Elements wider
// than 8 bytes (complex128) are not individually atomic; callers fall back
// to two 64-bit stores, which is also what the hardware would do.
func atomicLoadElem(b []byte, off int64, size int64) uint64 {
	switch size {
	case 2:
		return uint64(atomicLoad16(b, off))
	case 4:
		return uint64(atomicLoad32(b, off))
	case 8:
		return atomicLoad64(b, off)
	default: // 1 byte: via containing word
		base := off &^ 3
		shift := uint((off - base) * 8)
		return uint64(uint8(atomicLoad32(b, base) >> shift))
	}
}

func atomicStoreElem(b []byte, off int64, size int64, v uint64) {
	switch size {
	case 2:
		atomicStore16(b, off, uint16(v))
	case 4:
		atomicStore32(b, off, uint32(v))
	case 8:
		atomicStore64(b, off, v)
	default: // 1 byte
		base := off &^ 3
		shift := uint((off - base) * 8)
		mask := uint32(0xFF) << shift
		for {
			old := atomicLoad32(b, base)
			new := (old &^ mask) | uint32(uint8(v))<<shift
			if atomicCAS32(b, base, old, new) {
				return
			}
		}
	}
}

// toBits and fromBits reinterpret an Elem value as raw bits of its size
// (for sizes <= 8 bytes).
func toBits[T Elem](v T) uint64 {
	switch unsafe.Sizeof(v) {
	case 1:
		return uint64(*(*uint8)(unsafe.Pointer(&v)))
	case 2:
		return uint64(*(*uint16)(unsafe.Pointer(&v)))
	case 4:
		return uint64(*(*uint32)(unsafe.Pointer(&v)))
	default:
		return *(*uint64)(unsafe.Pointer(&v))
	}
}

func fromBits[T Elem](bits uint64) T {
	var v T
	switch unsafe.Sizeof(v) {
	case 1:
		*(*uint8)(unsafe.Pointer(&v)) = uint8(bits)
	case 2:
		*(*uint16)(unsafe.Pointer(&v)) = uint16(bits)
	case 4:
		*(*uint32)(unsafe.Pointer(&v)) = uint32(bits)
	default:
		*(*uint64)(unsafe.Pointer(&v)) = bits
	}
	return v
}
