package fft

import (
	"fmt"

	"tshmem/internal/core"
	"tshmem/internal/vtime"
)

// Result reports one PE's view of a distributed 2D-FFT run.
type Result struct {
	N       int
	PEs     int
	Elapsed vtime.Duration // virtual time from aligned start to completion
	Output  []complex64    // the transformed image; non-nil only on PE 0
}

// Distributed2D runs the paper's parallel 2D-FFT on an n x n complex-float
// image across all PEs of the program. Rows are block-distributed; each PE
// transforms its rows, a distributed transpose (strided puts, all-to-all)
// redistributes the data, each PE transforms the columns, and PE 0 gathers
// the blocks and performs the final transpose serially — reproducing the
// serialization that caps the Figure 13 speedup.
//
// Every PE fills its own row block from the deterministic TestImage
// generator (the data starts distributed, as in the paper's application);
// generation is excluded from the timed region.
func Distributed2D(pe *core.PE, n int) (Result, error) {
	p := pe.NumPEs()
	if !IsPow2(n) {
		return Result{}, fmt.Errorf("fft: n=%d not a power of two", n)
	}
	if n%p != 0 {
		return Result{}, fmt.Errorf("fft: %d rows do not divide over %d PEs", n, p)
	}
	rows := n / p
	me := pe.MyPE()

	work, err := core.Malloc[complex64](pe, rows*n)
	if err != nil {
		return Result{}, err
	}
	recv, err := core.Malloc[complex64](pe, rows*n)
	if err != nil {
		return Result{}, err
	}
	defer core.Free(pe, work)
	defer core.Free(pe, recv)

	// Untimed setup: materialize my block of the input image.
	w := core.MustLocal(pe, work)
	fillRows(w, n, me*rows, rows)

	if err := pe.AlignClocks(); err != nil {
		return Result{}, err
	}
	start := pe.Now()

	// Pass 1: 1D FFTs over my rows.
	if err := fftRows(pe, w, n, rows); err != nil {
		return Result{}, err
	}

	// Distributed transpose: my element (g, c) must land at (c, g) on the
	// PE owning row c. For each destination PE q and each of my rows g,
	// the elements in q's column range form a strided put: consecutive
	// source columns map to consecutive destination rows (stride n) at
	// fixed destination column g.
	if err := pe.BarrierAll(); err != nil {
		return Result{}, err
	}
	for q := 0; q < p; q++ {
		for r := 0; r < rows; r++ {
			g := me*rows + r
			target := recv.Slice(g, recv.Len())
			source := work.Slice(r*n+q*rows, r*n+q*rows+rows)
			if err := core.IPut(pe, target, source, int64(n), 1, rows, q); err != nil {
				return Result{}, err
			}
		}
	}
	pe.Quiet()
	if err := pe.BarrierAll(); err != nil {
		return Result{}, err
	}

	// Pass 2: 1D FFTs over the columns (now my rows of recv).
	rv := core.MustLocal(pe, recv)
	if err := fftRows(pe, rv, n, rows); err != nil {
		return Result{}, err
	}
	if err := pe.BarrierAll(); err != nil {
		return Result{}, err
	}

	// Final stage, serialized on PE 0: gather all blocks into private
	// memory and transpose. "Parallelization of this final transpose is
	// left for future work" (S V.A).
	var out []complex64
	if me == 0 {
		out = make([]complex64, n*n)
		for q := 0; q < p; q++ {
			if err := core.GetSlice(pe, out[q*rows*n:(q+1)*rows*n], recv, q); err != nil {
				return Result{}, err
			}
		}
		Transpose(out, n)
		pe.ComputeRandomAccesses(int64(n) * int64(n))
	}
	if err := pe.BarrierAll(); err != nil {
		return Result{}, err
	}
	return Result{N: n, PEs: p, Elapsed: pe.Now().Sub(start), Output: out}, nil
}

// fftRows transforms each of the given rows in place and charges the flop
// cost to the PE's clock.
func fftRows(pe *core.PE, block []complex64, n, rows int) error {
	for r := 0; r < rows; r++ {
		if err := Forward(block[r*n : (r+1)*n]); err != nil {
			return err
		}
	}
	pe.ComputeFlops(int64(rows) * Flops1D(n))
	return nil
}

// fillRows writes rows [first, first+rows) of the deterministic test image
// into block.
func fillRows(block []complex64, n, first, rows int) {
	full := TestImage(n) // deterministic; recomputed per PE for simplicity
	copy(block, full[first*n:(first+rows)*n])
}
