// Package fft implements the 2D fast Fourier transform case study of the
// paper's Section V.A: radix-2 complex-float FFT kernels, a serial 2D
// reference, and the distributed SPMD 2D-FFT over TSHMEM.
//
// The parallel decomposition follows the paper: the image's rows are
// distributed across PEs, each PE runs 1D FFTs over its rows, a distributed
// transpose redistributes the data all-to-all, each PE transforms the
// columns (now rows), and one final transpose — serialized on PE 0, the
// limitation the paper explicitly leaves as future work — produces the
// output image. The serialization is what levels off the Figure 13 speedup
// around 5 on the TILE-Gx.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Flops1D reports the floating-point operation count of one radix-2
// length-n FFT: n/2 butterflies per stage, log2(n) stages, 10 flops per
// butterfly (one complex multiply and two complex adds).
func Flops1D(n int) int64 {
	if n < 2 {
		return 0
	}
	return int64(n/2) * int64(bits.Len(uint(n))-1) * 10
}

// Flops2D reports the flop count of a full n x n 2D FFT (2n row
// transforms).
func Flops2D(n int) int64 { return 2 * int64(n) * Flops1D(n) }

// Forward computes the in-place radix-2 DIT FFT of x. len(x) must be a
// power of two.
func Forward(x []complex64) error { return transform(x, -1) }

// Inverse computes the in-place inverse FFT of x, including the 1/n
// normalization.
func Inverse(x []complex64) error {
	if err := transform(x, +1); err != nil {
		return err
	}
	inv := 1 / float32(len(x))
	for i := range x {
		x[i] *= complex(inv, 0)
	}
	return nil
}

func transform(x []complex64, sign float64) error {
	n := len(x)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	if n < 2 {
		return nil
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterfly stages.
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		ang := sign * 2 * math.Pi / float64(size)
		wBase := complex(float32(math.Cos(ang)), float32(math.Sin(ang)))
		for start := 0; start < n; start += size {
			w := complex64(1)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wBase
			}
		}
	}
	return nil
}

// Serial2D computes the in-place 2D FFT of an n x n row-major image: row
// transforms, transpose, row transforms, transpose.
func Serial2D(img []complex64, n int) error {
	if len(img) != n*n {
		return fmt.Errorf("fft: image has %d elements, want %d", len(img), n*n)
	}
	for pass := 0; pass < 2; pass++ {
		for r := 0; r < n; r++ {
			if err := Forward(img[r*n : (r+1)*n]); err != nil {
				return err
			}
		}
		Transpose(img, n)
	}
	return nil
}

// Transpose transposes an n x n row-major matrix in place.
func Transpose(m []complex64, n int) {
	for r := 0; r < n; r++ {
		for c := r + 1; c < n; c++ {
			m[r*n+c], m[c*n+r] = m[c*n+r], m[r*n+c]
		}
	}
}

// TestImage fills an n x n image with a deterministic, structured signal (a
// few superposed plane waves plus a pseudo-random texture) so transforms
// have non-trivial content to chew on.
func TestImage(n int) []complex64 {
	img := make([]complex64, n*n)
	state := uint64(0x9E3779B97F4A7C15)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			v := math.Sin(2*math.Pi*3*float64(r)/float64(n)) +
				0.5*math.Cos(2*math.Pi*7*float64(c)/float64(n))
			state = state*6364136223846793005 + 1442695040888963407
			noise := float64(int64(state>>33)) / float64(1<<31)
			img[r*n+c] = complex(float32(v+0.1*noise), 0)
		}
	}
	return img
}
