package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"tshmem/internal/arch"
	"tshmem/internal/core"
)

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 12, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestFlopCounts(t *testing.T) {
	if got := Flops1D(1024); got != 512*10*10 {
		t.Errorf("Flops1D(1024) = %d, want 51200", got)
	}
	if got := Flops2D(1024); got != 2*1024*51200 {
		t.Errorf("Flops2D(1024) = %d", got)
	}
	if Flops1D(1) != 0 {
		t.Error("Flops1D(1) should be 0")
	}
}

func TestForwardKnownValues(t *testing.T) {
	// FFT of a constant is an impulse at bin 0.
	x := []complex64{1, 1, 1, 1}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	want := []complex64{4, 0, 0, 0}
	for i := range x {
		if d := cmplx.Abs(complex128(x[i] - want[i])); d > 1e-5 {
			t.Errorf("constant FFT[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	// FFT of a unit impulse is all ones.
	y := []complex64{1, 0, 0, 0, 0, 0, 0, 0}
	if err := Forward(y); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if d := cmplx.Abs(complex128(y[i] - 1)); d > 1e-5 {
			t.Errorf("impulse FFT[%d] = %v, want 1", i, y[i])
		}
	}
	// A pure tone concentrates in its bin.
	n := 64
	z := make([]complex64, n)
	for i := range z {
		ang := 2 * math.Pi * 5 * float64(i) / float64(n)
		z[i] = complex(float32(math.Cos(ang)), float32(math.Sin(ang)))
	}
	if err := Forward(z); err != nil {
		t.Fatal(err)
	}
	for i := range z {
		mag := cmplx.Abs(complex128(z[i]))
		if i == 5 && math.Abs(mag-float64(n)) > 1e-2 {
			t.Errorf("tone bin magnitude = %v, want %d", mag, n)
		}
		if i != 5 && mag > 1e-2 {
			t.Errorf("leakage at bin %d: %v", i, mag)
		}
	}
}

func TestForwardRejectsBadLength(t *testing.T) {
	if err := Forward(make([]complex64, 3)); err == nil {
		t.Error("non-power-of-two length accepted")
	}
	if err := Forward(nil); err == nil {
		t.Error("empty input accepted")
	}
	if err := Forward(make([]complex64, 1)); err != nil {
		t.Errorf("length-1 FFT: %v", err)
	}
}

// TestRoundTrip is the core property: Inverse(Forward(x)) == x.
func TestRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		n := 256
		x := make([]complex64, n)
		s := uint64(seed)
		for i := range x {
			s = s*6364136223846793005 + 1442695040888963407
			re := float32(int32(s>>33)) / (1 << 30)
			s = s*6364136223846793005 + 1442695040888963407
			im := float32(int32(s>>33)) / (1 << 30)
			x[i] = complex(re, im)
		}
		orig := append([]complex64(nil), x...)
		if Forward(x) != nil || Inverse(x) != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(complex128(x[i]-orig[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestParseval checks energy conservation: sum|x|^2 == sum|X|^2 / n.
func TestParseval(t *testing.T) {
	n := 512
	sig := make([]complex64, n)
	for i := range sig {
		sig[i] = complex(float32(math.Sin(float64(i))), float32(math.Cos(3*float64(i))))
	}
	var before float64
	for _, v := range sig {
		before += float64(real(v)*real(v) + imag(v)*imag(v))
	}
	if err := Forward(sig); err != nil {
		t.Fatal(err)
	}
	var after float64
	for _, v := range sig {
		after += float64(real(v)*real(v) + imag(v)*imag(v))
	}
	after /= float64(n)
	if math.Abs(before-after)/before > 1e-4 {
		t.Errorf("Parseval violated: %v vs %v", before, after)
	}
}

func TestTranspose(t *testing.T) {
	n := 8
	m := make([]complex64, n*n)
	for i := range m {
		m[i] = complex(float32(i), 0)
	}
	Transpose(m, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if m[r*n+c] != complex(float32(c*n+r), 0) {
				t.Fatalf("transpose wrong at (%d,%d)", r, c)
			}
		}
	}
	Transpose(m, n)
	for i := range m {
		if m[i] != complex(float32(i), 0) {
			t.Fatal("double transpose is not identity")
		}
	}
}

func TestSerial2D(t *testing.T) {
	// 2D FFT of a constant image: all energy in bin (0,0).
	n := 16
	img := make([]complex64, n*n)
	for i := range img {
		img[i] = 1
	}
	if err := Serial2D(img, n); err != nil {
		t.Fatal(err)
	}
	for i, v := range img {
		mag := cmplx.Abs(complex128(v))
		if i == 0 && math.Abs(mag-float64(n*n)) > 1e-2 {
			t.Errorf("DC bin = %v, want %d", mag, n*n)
		}
		if i != 0 && mag > 1e-2 {
			t.Errorf("leakage at %d: %v", i, mag)
		}
	}
	if err := Serial2D(img, n+1); err == nil {
		t.Error("bad dimensions accepted")
	}
}

// TestDistributedMatchesSerial verifies the SPMD 2D-FFT against the serial
// reference for several PE counts.
func TestDistributedMatchesSerial(t *testing.T) {
	const n = 64
	ref := TestImage(n)
	if err := Serial2D(ref, n); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 4, 8} {
		p := p
		var out []complex64
		cfg := core.Config{Chip: arch.Gx8036(), NPEs: p, HeapPerPE: 1 << 20}
		_, err := core.Run(cfg, func(pe *core.PE) error {
			res, err := Distributed2D(pe, n)
			if err != nil {
				return err
			}
			if pe.MyPE() == 0 {
				out = res.Output
			} else if res.Output != nil {
				t.Errorf("PE %d returned an output image", pe.MyPE())
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if len(out) != n*n {
			t.Fatalf("p=%d: output has %d elements", p, len(out))
		}
		var maxErr float64
		var scale float64
		for i := range ref {
			if d := cmplx.Abs(complex128(out[i] - ref[i])); d > maxErr {
				maxErr = d
			}
			if m := cmplx.Abs(complex128(ref[i])); m > scale {
				scale = m
			}
		}
		if maxErr/scale > 1e-4 {
			t.Errorf("p=%d: max relative error %v", p, maxErr/scale)
		}
	}
}

// TestDistributedSpeedupShape reproduces the Figure 13 structure at reduced
// scale: speedup grows with tiles but levels off due to the serialized
// final transpose, and the TILEPro is far slower in absolute terms.
func TestDistributedSpeedupShape(t *testing.T) {
	const n = 256
	run := func(chip *arch.Chip, p int) float64 {
		var elapsed float64
		cfg := core.Config{Chip: chip, NPEs: p, HeapPerPE: 4 << 20}
		_, err := core.Run(cfg, func(pe *core.PE) error {
			res, err := Distributed2D(pe, n)
			if err != nil {
				return err
			}
			if pe.MyPE() == 0 {
				elapsed = res.Elapsed.Seconds()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	gx1, gx16 := run(arch.Gx8036(), 1), run(arch.Gx8036(), 16)
	pro1 := run(arch.Pro64(), 1)
	if gx16 >= gx1 {
		t.Errorf("no speedup: %v vs %v", gx16, gx1)
	}
	sp := gx1 / gx16
	if sp < 2 || sp > 16 {
		t.Errorf("speedup at 16 tiles = %.1f, want sublinear but real", sp)
	}
	// Softfloat penalty: Pro serial time far above Gx serial time.
	if pro1 < 3*gx1 {
		t.Errorf("Pro (%v) should be several times slower than Gx (%v)", pro1, gx1)
	}
}

func TestDistributedValidation(t *testing.T) {
	cfg := core.Config{Chip: arch.Gx8036(), NPEs: 3, HeapPerPE: 1 << 20}
	_, err := core.Run(cfg, func(pe *core.PE) error {
		if _, err := Distributed2D(pe, 64); err == nil {
			t.Error("64 rows over 3 PEs accepted")
		}
		if _, err := Distributed2D(pe, 60); err == nil {
			t.Error("non-power-of-two image accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
