package fft

import (
	"math/cmplx"
	"testing"

	"tshmem/internal/arch"
	"tshmem/internal/core"
)

// TestDistributedAcrossChips runs the 2D-FFT case study on the mPIPE
// multi-chip extension: the distributed transpose's strided puts and the
// final gather cross the chip boundary, and the result must still match the
// serial reference exactly.
func TestDistributedAcrossChips(t *testing.T) {
	const n = 64
	ref := TestImage(n)
	if err := Serial2D(ref, n); err != nil {
		t.Fatal(err)
	}
	var out []complex64
	var single, double float64
	for _, chips := range []int{1, 2} {
		cfg := core.Config{Chip: arch.Gx8036(), NPEs: 8, NChips: chips, HeapPerPE: 1 << 20}
		_, err := core.Run(cfg, func(pe *core.PE) error {
			res, err := Distributed2D(pe, n)
			if err != nil {
				return err
			}
			if pe.MyPE() == 0 {
				out = res.Output
				if chips == 1 {
					single = res.Elapsed.Seconds()
				} else {
					double = res.Elapsed.Seconds()
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("chips=%d: %v", chips, err)
		}
		var maxErr, scale float64
		for i := range ref {
			if d := cmplx.Abs(complex128(out[i] - ref[i])); d > maxErr {
				maxErr = d
			}
			if m := cmplx.Abs(complex128(ref[i])); m > scale {
				scale = m
			}
		}
		if maxErr/scale > 1e-4 {
			t.Errorf("chips=%d: max relative error %v", chips, maxErr/scale)
		}
	}
	// The all-to-all transpose crossing mPIPE must cost extra virtual time.
	if double <= single {
		t.Errorf("2-chip FFT (%v s) should be slower than 1-chip (%v s)", double, single)
	}
}
