package kernels

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"tshmem/internal/arch"
	"tshmem/internal/core"
)

// compareKernelRuns asserts byte-identity of everything two runs of
// the same kernel produced: outputs, report fields, diagnostics,
// fault counts, serialized traces, and profiles. The kernels package
// version of internal/core's compareEngineRuns, applied to Launch
// results.
func compareKernelRuns(t *testing.T, label string, g, e *core.Report, gOut, eOut []int64) {
	t.Helper()
	if !reflect.DeepEqual(gOut, eOut) {
		t.Errorf("%s: kernel outputs diverged between engines", label)
	}
	if !reflect.DeepEqual(g.PETimes, e.PETimes) {
		t.Errorf("%s: PETimes diverged:\n  goroutine: %v\n  event:     %v", label, g.PETimes, e.PETimes)
	}
	if g.MaxTime != e.MaxTime || g.MinTime != e.MinTime {
		t.Errorf("%s: makespan diverged: [%v,%v] vs [%v,%v]", label, g.MinTime, g.MaxTime, e.MinTime, e.MaxTime)
	}
	if !reflect.DeepEqual(g.PECounters, e.PECounters) {
		t.Errorf("%s: substrate counters diverged", label)
	}
	if !reflect.DeepEqual(g.Diagnostics, e.Diagnostics) {
		t.Errorf("%s: diagnostics diverged:\n  goroutine: %v\n  event:     %v", label, g.Diagnostics, e.Diagnostics)
	}
	if !reflect.DeepEqual(g.FaultCounts, e.FaultCounts) {
		t.Errorf("%s: fault counts diverged: %v vs %v", label, g.FaultCounts, e.FaultCounts)
	}
	var gt, et bytes.Buffer
	if err := g.TraceTo(&gt); err != nil {
		t.Fatalf("%s: goroutine TraceTo: %v", label, err)
	}
	if err := e.TraceTo(&et); err != nil {
		t.Fatalf("%s: event TraceTo: %v", label, err)
	}
	if !bytes.Equal(gt.Bytes(), et.Bytes()) {
		t.Errorf("%s: serialized traces are not byte-identical (%d vs %d bytes)", label, gt.Len(), et.Len())
	}
	gp, ep := g.Profile(), e.Profile()
	if (gp == nil) != (ep == nil) {
		t.Fatalf("%s: one engine produced a profile, the other did not", label)
	}
	if gp != nil {
		if gp.BlameTable() != ep.BlameTable() {
			t.Errorf("%s: blame tables diverged:\n--- goroutine\n%s--- event\n%s", label, gp.BlameTable(), ep.BlameTable())
		}
		if gp.PathTable() != ep.PathTable() {
			t.Errorf("%s: critical paths diverged", label)
		}
		var gj, ej bytes.Buffer
		if err := gp.WriteJSON(&gj); err != nil {
			t.Fatal(err)
		}
		if err := ep.WriteJSON(&ej); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gj.Bytes(), ej.Bytes()) {
			t.Errorf("%s: profile JSON is not byte-identical", label)
		}
	}
	if g.EngineUsed != "goroutine" || e.EngineUsed != "event" {
		t.Errorf("%s: EngineUsed = %q / %q", label, g.EngineUsed, e.EngineUsed)
	}
	if e.MaxRunnablePEs != 1 {
		t.Errorf("%s: event engine let %d PEs run at once, want exactly 1", label, e.MaxRunnablePEs)
	}
}

// TestKernelEngineEquivalence extends PR 8's equivalence matrix to the
// scenario corpus: every kernel, on two chip families (including
// Epiphany-III's emulated-RMW path), must produce byte-identical
// reports, traces, diagnostics, and profiles under the goroutine and
// event engines — with observation, tracing, sanitizing, and
// profiling all on, and outputs verified against the oracle on both.
func TestKernelEngineEquivalence(t *testing.T) {
	for _, k := range Kernels() {
		for _, chip := range []*arch.Chip{arch.Gx8036(), arch.EpiphanyIII()} {
			k, chip := k, chip
			t.Run(fmt.Sprintf("%s/%s", k.Name(), chip.Name), func(t *testing.T) {
				t.Parallel()
				s := testSpec(k.Name(), 4, 5)
				cfg := core.Config{
					Chip: chip, Observe: true, Trace: true, Sanitize: true, Profile: true,
				}
				gc, ec := cfg, cfg
				gc.Engine = core.EngineGoroutine
				ec.Engine = core.EngineEvent
				g, gOut, gerr := Launch(k, s, gc)
				e, eOut, eerr := Launch(k, s, ec)
				if gerr != nil || eerr != nil {
					t.Fatalf("run failed:\n  goroutine: %v\n  event:     %v", gerr, eerr)
				}
				for eng, out := range map[string][]int64{"goroutine": gOut, "event": eOut} {
					if err := k.Verify(s, out); err != nil {
						t.Fatalf("%s engine output fails the oracle: %v", eng, err)
					}
				}
				compareKernelRuns(t, k.Name()+"/"+chip.Name, g, e, gOut, eOut)
			})
		}
	}
}
