package kernels

import (
	"fmt"

	"tshmem/internal/core"
)

// bfsKernel is a level-synchronous BFS over a distributed graph: the
// irregular-access member of the corpus. Vertices are block-
// distributed; each PE owns a slice of the depth array. The graph is
// defined by in-edges — vertex u's in-neighbors are (u-1) mod V (a
// ring, so every vertex is reachable from root 0) plus deg-1 hashed
// vertices — stored CSR-style as a flat per-vertex adjacency computed
// from the seed, never materialized globally.
//
// Each level is pull-based: every PE scans its still-undiscovered
// vertices and issues an irregular one-sided G per in-neighbor (a
// remote depth-word read whose address depends on the data), claiming
// the vertex when a neighbor sits on the current frontier. Claims are
// applied owner-locally with CSwap(-1 -> level+1) — the fetch-op path
// that Epiphany chips emulate with TESTSET — and global frontier
// accounting is an atomic FAdd into PE 0's counter. Both are
// deterministic: CSwap has a single writer (the owner), FAdd is
// commutative, and scan/claim phases are barrier-separated.
// Termination is a SumToAll over per-PE claim counts.
type bfsKernel struct{}

func (bfsKernel) Name() string  { return "bfs" }
func (bfsKernel) Title() string { return "level-synchronous BFS (irregular gets + atomic claims)" }

// bfsDeg is the in-degree of every vertex: the ring predecessor plus
// bfsDeg-1 hashed in-neighbors.
const bfsDeg = 4

func (bfsKernel) norm(s Spec) Spec {
	if s.Size <= 0 {
		s.Size = 512
	}
	if s.Size < 2 {
		s.Size = 2
	}
	return s
}

func (bfsKernel) HeapPerPE(s Spec) int64 {
	s = bfsKernel{}.norm(s)
	v, p := int64(s.Size), int64(s.NPEs)
	if p <= 0 {
		p = 1
	}
	perPE := (v + p - 1) / p
	// depth block + collected depth matrix + counters + psync/pwrk.
	return (perPE + perPE*p + 64 + 256) * 8
}

// bfsInNbrs appends vertex u's in-neighbors to dst: the ring
// predecessor plus hashed extras. Shared with RefSolve and
// FuzzBFSFrontier, so the distributed run, the serial oracle, and the
// fuzz harness all walk the same graph.
func bfsInNbrs(dst []int64, seed int64, u, nv, deg int) []int64 {
	dst = append(dst, int64((u-1+nv)%nv))
	for e := 1; e < deg; e++ {
		dst = append(dst, hash(seed, 0xbf5, int64(u), int64(e))%int64(nv))
	}
	return dst
}

// bfsRefDepths is the serial oracle: level-by-level relaxation over
// the in-edge graph until a fixpoint, exactly mirroring the
// distributed pull loop. Shared with FuzzBFSFrontier.
func bfsRefDepths(seed int64, nv, deg int) []int64 {
	depth := make([]int64, nv)
	for i := range depth {
		depth[i] = -1
	}
	depth[0] = 0
	nbrs := make([]int64, 0, deg)
	for level := int64(0); ; level++ {
		claimed := 0
		for u := 0; u < nv; u++ {
			if depth[u] != -1 {
				continue
			}
			nbrs = bfsInNbrs(nbrs[:0], seed, u, nv, deg)
			for _, v := range nbrs {
				if depth[v] == level {
					depth[u] = level + 1
					claimed++
					break
				}
			}
		}
		if claimed == 0 {
			return depth
		}
	}
}

func (k bfsKernel) Run(pe *core.PE, s Spec) ([]int64, error) {
	s = k.norm(s)
	p, me, nv := pe.NumPEs(), pe.MyPE(), s.Size
	perPE := (nv + p - 1) / p
	owner := func(v int64) int { return int(v) / perPE }
	localOf := func(v int64) int { return int(v) % perPE }

	depth, err := core.Malloc[int64](pe, perPE)
	if err != nil {
		return nil, err
	}
	ctr, err := core.Malloc[int64](pe, 1) // global claim counter, lives on PE 0
	if err != nil {
		return nil, err
	}
	claims, err := core.Malloc[int64](pe, 1)
	if err != nil {
		return nil, err
	}
	red, err := core.Malloc[int64](pe, 1)
	if err != nil {
		return nil, err
	}
	pwrk, err := core.Malloc[int64](pe, core.ReduceMinWrkSize)
	if err != nil {
		return nil, err
	}
	ps, err := core.Malloc[int64](pe, core.CollectSyncSize)
	if err != nil {
		return nil, err
	}
	depthAll, err := core.Malloc[int64](pe, perPE*p)
	if err != nil {
		return nil, err
	}
	as := core.AllPEs(p)

	// Untimed setup: my depth block starts undiscovered; the root's
	// owner seeds depth[0] = 0.
	dv := core.MustLocal(pe, depth)
	var undisc []int64 // owned, still-undiscovered global vertex IDs
	for l := 0; l < perPE; l++ {
		g := int64(me*perPE + l)
		dv[l] = -1
		if g >= int64(nv) {
			continue
		}
		if g == 0 {
			dv[l] = 0
		} else {
			undisc = append(undisc, g)
		}
	}
	core.MustLocal(pe, ctr)[0] = 0
	if err := pe.AlignClocks(); err != nil {
		return nil, err
	}
	if err := pe.BarrierAll(); err != nil {
		return nil, err
	}

	nbrs := make([]int64, 0, bfsDeg)
	for level := int64(0); ; level++ {
		if level > int64(nv) {
			return nil, fmt.Errorf("bfs: no fixpoint after %d levels", level)
		}
		// Scan phase: irregular one-sided reads of neighbors' depth
		// words. Barrier-separated from the claim phase below, so no
		// read races a CSwap.
		var newly []int64
		for _, u := range undisc {
			nbrs = bfsInNbrs(nbrs[:0], s.Seed, int(u), nv, bfsDeg)
			for _, v := range nbrs {
				d, err := core.G(pe, depth.At(localOf(v)), owner(v))
				if err != nil {
					return nil, err
				}
				if d == level {
					newly = append(newly, u)
					break
				}
			}
			pe.ComputeIntOps(int64(len(nbrs)))
		}
		if err := pe.BarrierAll(); err != nil {
			return nil, err
		}

		// Claim phase: owner-local CSwap per discovered vertex (the
		// TESTSET-emulated path on Epiphany) plus a commutative FAdd
		// into the global frontier counter on PE 0.
		for _, u := range newly {
			old, err := core.CSwap(pe, depth.At(localOf(u)), -1, level+1, me)
			if err != nil {
				return nil, err
			}
			if old != -1 {
				return nil, fmt.Errorf("bfs: vertex %d claimed twice (old depth %d)", u, old)
			}
			if _, err := core.FAdd(pe, ctr, 1, 0); err != nil {
				return nil, err
			}
		}
		keep := undisc[:0]
		for _, u := range undisc {
			if core.MustLocal(pe, depth)[localOf(u)] == -1 {
				keep = append(keep, u)
			}
		}
		undisc = keep

		// Termination: total claims this level, via tree reduction
		// (which also orders the claims before the next scan).
		core.MustLocal(pe, claims)[0] = int64(len(newly))
		if err := core.SumToAll(pe, red, claims, 1, as, pwrk, ps); err != nil {
			return nil, err
		}
		if core.MustLocal(pe, red)[0] == 0 {
			break
		}
	}

	// Gather: block layout makes the concatenated depth vector the
	// global one directly.
	if err := pe.BarrierAll(); err != nil {
		return nil, err
	}
	if err := core.FCollect(pe, depthAll, depth, perPE, as, ps); err != nil {
		return nil, err
	}
	if err := pe.BarrierAll(); err != nil {
		return nil, err
	}
	if me != 0 {
		return nil, nil
	}
	// Self-check: the ring guarantees full reachability, so the claim
	// counter must equal V-1 (every vertex but the root).
	if got := core.MustLocal(pe, ctr)[0]; got != int64(nv-1) {
		return nil, fmt.Errorf("bfs: claim counter %d, want %d", got, nv-1)
	}
	return append([]int64(nil), core.MustLocal(pe, depthAll)[:nv]...), nil
}

func (k bfsKernel) RefSolve(s Spec) []int64 {
	s = k.norm(s)
	return bfsRefDepths(s.Seed, s.Size, bfsDeg)
}

func (k bfsKernel) Verify(s Spec, got []int64) error {
	s = k.norm(s)
	if len(got) > 0 && got[0] != 0 {
		return fmt.Errorf("bfs: root depth %d, want 0", got[0])
	}
	for v, d := range got {
		if d < 0 {
			return fmt.Errorf("bfs: vertex %d unreachable, but the ring reaches everything", v)
		}
	}
	return eqOracle("bfs", got, k.RefSolve(s))
}
