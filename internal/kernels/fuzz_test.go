package kernels

import (
	"reflect"
	"testing"
)

// FuzzSampleSortPartition drives the sample-sort's pure partition
// pipeline — per-block sort, regular sampling, chooseSplitters,
// bucketOf, bucket concatenation — over arbitrary key streams and PE
// counts, and cross-checks the result against the trivial oracle
// (sort everything). The load-bearing invariant: because bucketOf is
// monotone in the key, concatenating per-bucket sorted runs in bucket
// order is globally sorted for ANY splitter vector, so a regression
// in the sampling/splitter logic can only show up as corruption or
// loss — which the multiset-preserving comparison catches.
func FuzzSampleSortPartition(f *testing.F) {
	f.Add([]byte{5, 3, 200, 3, 17, 90, 4, 4, 255, 0, 1, 128}, byte(3))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9}, byte(7))
	f.Add([]byte{1, 0}, byte(1))
	f.Fuzz(func(t *testing.T, data []byte, pRaw byte) {
		p := 1 + int(pRaw)%8
		n := len(data)
		if n < p {
			return // a block would be empty; the kernel rejects this too
		}
		keys := make([]int64, n)
		for i, b := range data {
			keys[i] = int64(b)
		}

		// Per-block sort + regular samples, exactly as the kernel does.
		samples := make([]int64, 0, p*p)
		blocks := make([][]int64, p)
		for k := 0; k < p; k++ {
			blk := append([]int64(nil), keys[blockLo(k, n, p):blockLo(k+1, n, p)]...)
			sortI64(blk)
			blocks[k] = blk
			for j := 0; j < p; j++ {
				samples = append(samples, blk[(2*j+1)*len(blk)/(2*p)])
			}
		}
		sortI64(samples)
		splitters := chooseSplitters(samples, p)
		if len(splitters) != p-1 {
			t.Fatalf("%d splitters for p=%d", len(splitters), p)
		}
		for i := 1; i < len(splitters); i++ {
			if splitters[i-1] > splitters[i] {
				t.Fatalf("splitters not monotone: %v", splitters)
			}
		}

		// Partition every block into buckets, concatenate buckets in
		// order with each bucket sorted.
		buckets := make([][]int64, p)
		for _, blk := range blocks {
			for _, key := range blk {
				j := bucketOf(key, splitters)
				if j < 0 || j >= p {
					t.Fatalf("bucketOf(%d) = %d out of range", key, j)
				}
				buckets[j] = append(buckets[j], key)
			}
		}
		var got []int64
		for _, b := range buckets {
			sortI64(b)
			got = append(got, b...)
		}

		want := append([]int64(nil), keys...)
		sortI64(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("partitioned concat != sorted oracle\n got: %v\nwant: %v", got, want)
		}
	})
}

// FuzzBFSFrontier cross-checks three BFS evaluators over random
// graphs: (1) the serial relaxation oracle the kernel verifies
// against, (2) a textbook FIFO-queue BFS over the inverted (out-edge)
// adjacency, and (3) an emulation of the distributed kernel's
// two-phase level loop — block-partitioned scan, then claim — at an
// arbitrary PE count. All three must agree on every depth, pinning
// down both the oracle itself and the scan/claim phase separation the
// distributed version relies on.
func FuzzBFSFrontier(f *testing.F) {
	f.Add(int64(1), uint16(40), byte(4), byte(3))
	f.Add(int64(7), uint16(9), byte(1), byte(8))
	f.Add(int64(-3), uint16(200), byte(6), byte(1))
	f.Fuzz(func(t *testing.T, seed int64, vRaw uint16, degRaw, pRaw byte) {
		nv := 2 + int(vRaw)%512
		deg := 1 + int(degRaw)%6
		p := 1 + int(pRaw)%8

		oracle := bfsRefDepths(seed, nv, deg)

		// Queue BFS over the inverted adjacency.
		out := make([][]int64, nv)
		nbrs := make([]int64, 0, deg)
		for u := 0; u < nv; u++ {
			nbrs = bfsInNbrs(nbrs[:0], seed, u, nv, deg)
			for _, v := range nbrs {
				out[v] = append(out[v], int64(u))
			}
		}
		qDepth := make([]int64, nv)
		for i := range qDepth {
			qDepth[i] = -1
		}
		qDepth[0] = 0
		queue := []int64{0}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range out[v] {
				if qDepth[u] == -1 {
					qDepth[u] = qDepth[v] + 1
					queue = append(queue, u)
				}
			}
		}
		if !reflect.DeepEqual(qDepth, oracle) {
			t.Fatalf("queue BFS != relaxation oracle\n got: %v\nwant: %v", qDepth, oracle)
		}

		// Two-phase distributed emulation: per level, every "PE" scans
		// its block against the frozen depth array, THEN all claims
		// apply — the barrier separation of the real kernel.
		perPE := (nv + p - 1) / p
		depth := make([]int64, nv)
		for i := range depth {
			depth[i] = -1
		}
		depth[0] = 0
		for level := int64(0); ; level++ {
			if level > int64(nv) {
				t.Fatalf("no fixpoint after %d levels", level)
			}
			var newly []int64
			for k := 0; k < p; k++ {
				for l := 0; l < perPE; l++ {
					u := k*perPE + l
					if u >= nv || depth[u] != -1 {
						continue
					}
					nbrs = bfsInNbrs(nbrs[:0], seed, u, nv, deg)
					for _, v := range nbrs {
						if depth[v] == level {
							newly = append(newly, int64(u))
							break
						}
					}
				}
			}
			for _, u := range newly {
				depth[u] = level + 1
			}
			if len(newly) == 0 {
				break
			}
		}
		if !reflect.DeepEqual(depth, oracle) {
			t.Fatalf("p=%d two-phase emulation != oracle\n got: %v\nwant: %v", p, depth, oracle)
		}

		// Ring edge invariant: along the ring, depth grows by at most 1.
		for u := 0; u < nv; u++ {
			prev := (u - 1 + nv) % nv
			if oracle[u] > oracle[prev]+1 {
				t.Fatalf("depth[%d]=%d but ring predecessor %d has %d", u, oracle[u], prev, oracle[prev])
			}
		}
	})
}
