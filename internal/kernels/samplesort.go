package kernels

import (
	"fmt"

	"tshmem/internal/core"
)

// sampleSort is a distributed sample-sort: the all-to-all-exchange
// member of the corpus. Each PE sorts its key block, contributes p
// regular samples, and all PEs agree on p-1 splitters from the p*p
// collected samples. Keys are then partitioned into buckets — one per
// PE — and delivered with a put storm into each bucket owner's receive
// buffer at exact offsets computed from an FCollect'ed p x p count
// matrix. After a final local sort, a variable-size Collect
// concatenates the buckets in PE order: globally sorted output.
//
// Skeleton exercised: FCollect, Collect, bulk puts with Quiet fencing,
// and the offset bookkeeping where a one-element error corrupts data
// silently — exactly what the differential oracle is for.
type sampleSort struct{}

func (sampleSort) Name() string  { return "sort" }
func (sampleSort) Title() string { return "distributed sample-sort (all-to-all exchange)" }

func (sampleSort) norm(s Spec) Spec {
	if s.Size <= 0 {
		s.Size = 2048
	}
	return s
}

func (sampleSort) HeapPerPE(s Spec) int64 {
	s = sampleSort{}.norm(s)
	n, p := int64(s.Size), int64(s.NPEs)
	if p <= 0 {
		p = 64
	}
	// keys are private; symmetric: samples p + allSamples p^2 + counts p
	// + count matrix p^2 + recv n + out n + psync/pwrk slack.
	return (3*n + 3*p*p + 4*p + 256) * 8
}

// sortKeyAt is the deterministic key generator: key i of the instance
// seeded by seed.
func sortKeyAt(seed int64, i int) int64 {
	return hash(seed, 0x5057, int64(i)) % 1_000_000
}

// chooseSplitters picks p-1 splitters from the sorted p*p sample
// vector: the last sample of each of the first p-1 sample groups.
// Shared with FuzzSampleSortPartition.
func chooseSplitters(sortedSamples []int64, p int) []int64 {
	sp := make([]int64, 0, p-1)
	for j := 1; j < p; j++ {
		sp = append(sp, sortedSamples[j*p-1])
	}
	return sp
}

// bucketOf maps a key to its destination bucket: the first j with
// key <= splitters[j], else the last bucket. Monotone in the key, so
// concatenating per-bucket sorted runs yields a globally sorted
// sequence for ANY splitter vector — the invariant the fuzz target
// leans on. Shared with FuzzSampleSortPartition.
func bucketOf(key int64, splitters []int64) int {
	for j, s := range splitters {
		if key <= s {
			return j
		}
	}
	return len(splitters)
}

func (k sampleSort) Run(pe *core.PE, s Spec) ([]int64, error) {
	s = k.norm(s)
	p, me, n := pe.NumPEs(), pe.MyPE(), s.Size
	if n < p {
		return nil, fmt.Errorf("sort: %d keys cannot feed %d PEs", n, p)
	}
	lo, hi := blockLo(me, n, p), blockLo(me+1, n, p)
	mine := make([]int64, hi-lo)

	samples, err := core.Malloc[int64](pe, p)
	if err != nil {
		return nil, err
	}
	allSamples, err := core.Malloc[int64](pe, p*p)
	if err != nil {
		return nil, err
	}
	counts, err := core.Malloc[int64](pe, p)
	if err != nil {
		return nil, err
	}
	countMat, err := core.Malloc[int64](pe, p*p)
	if err != nil {
		return nil, err
	}
	recv, err := core.Malloc[int64](pe, n)
	if err != nil {
		return nil, err
	}
	outRef, err := core.Malloc[int64](pe, n)
	if err != nil {
		return nil, err
	}
	ps, err := core.Malloc[int64](pe, core.CollectSyncSize)
	if err != nil {
		return nil, err
	}
	as := core.AllPEs(p)

	// Untimed setup: materialize my key block.
	for i := range mine {
		mine[i] = sortKeyAt(s.Seed, lo+i)
	}
	if err := pe.AlignClocks(); err != nil {
		return nil, err
	}

	// Phase 1: local sort + regular sampling.
	sortI64(mine)
	chargeSort(pe, len(mine))
	sv := core.MustLocal(pe, samples)
	for j := 0; j < p; j++ {
		sv[j] = mine[(2*j+1)*len(mine)/(2*p)]
	}

	// Phase 2: gather everyone's samples; all PEs derive the same
	// splitters from the same sorted sample vector.
	if err := core.FCollect(pe, allSamples, samples, p, as, ps); err != nil {
		return nil, err
	}
	all := append([]int64(nil), core.MustLocal(pe, allSamples)...)
	sortI64(all)
	chargeSort(pe, len(all))
	splitters := chooseSplitters(all, p)

	// Phase 3: bucket counts. mine is sorted and bucketOf is monotone,
	// so each bucket is a contiguous run [bLo[j], bLo[j+1]).
	bLo := make([]int, p+1)
	cv := core.MustLocal(pe, counts)
	i := 0
	for j := 0; j < p; j++ {
		bLo[j] = i
		for i < len(mine) && bucketOf(mine[i], splitters) == j {
			i++
		}
		cv[j] = int64(i - bLo[j])
	}
	bLo[p] = i
	pe.ComputeIntOps(int64(len(mine)))
	if err := core.FCollect(pe, countMat, counts, p, as, ps); err != nil {
		return nil, err
	}

	// Phase 4: all-to-all put storm. countMat[i*p+j] = PE i's count for
	// bucket j; my bucket j lands on PE j at offset sum_{i<me} of
	// column j.
	cm := core.MustLocal(pe, countMat)
	for j := 0; j < p; j++ {
		off := 0
		for i := 0; i < me; i++ {
			off += int(cm[i*p+j])
		}
		if seg := mine[bLo[j]:bLo[j+1]]; len(seg) > 0 {
			if err := core.PutSlice(pe, recv.Slice(off, off+len(seg)), seg, j); err != nil {
				return nil, err
			}
		}
	}
	pe.Quiet()
	if err := pe.BarrierAll(); err != nil {
		return nil, err
	}

	// Phase 5: sort my bucket; the concatenation of buckets in PE
	// order is the globally sorted sequence.
	myCount := 0
	for i := 0; i < p; i++ {
		myCount += int(cm[i*p+me])
	}
	rv := core.MustLocal(pe, recv)
	sortI64(rv[:myCount])
	chargeSort(pe, myCount)
	if err := core.Collect(pe, outRef, recv, myCount, as, ps); err != nil {
		return nil, err
	}
	if err := pe.BarrierAll(); err != nil {
		return nil, err
	}
	if me != 0 {
		return nil, nil
	}
	return append([]int64(nil), core.MustLocal(pe, outRef)[:n]...), nil
}

func (k sampleSort) RefSolve(s Spec) []int64 {
	s = k.norm(s)
	keys := make([]int64, s.Size)
	for i := range keys {
		keys[i] = sortKeyAt(s.Seed, i)
	}
	sortI64(keys)
	return keys
}

func (k sampleSort) Verify(s Spec, got []int64) error {
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			return fmt.Errorf("sort: output not sorted at %d: %d > %d", i, got[i-1], got[i])
		}
	}
	return eqOracle("sort", got, k.RefSolve(s))
}
