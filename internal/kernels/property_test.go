package kernels

import (
	"fmt"
	"reflect"
	"testing"

	"tshmem/internal/arch"
	"tshmem/internal/core"
)

// TestKernelAlgorithmInvariance is the conformance property the ISSUE
// pins down: kernel OUTPUTS are pure functions of the spec — invariant
// under the synchronization-algorithm library (BarrierAlgo x LockAlgo
// selections change virtual timing, never answers) and under PE
// counts {2, 4, 5, full grid}. Every combination must reproduce the
// serial oracle exactly; with the oracle fixed, all combinations are
// transitively byte-equal to each other.
//
// sort and bfs run the full PE sweep including the 36-tile grid;
// stencil (whose block size floors at the halo width) and wordcount
// cover the algorithm sweep at the smaller counts.
func TestKernelAlgorithmInvariance(t *testing.T) {
	algos := []struct {
		name    string
		barrier core.BarrierAlgo
		lock    core.LockAlgo
	}{
		{"default", core.BarrierAlgoDefault, core.LockAlgoCAS},
		{"dissemination+mcs", core.BarrierAlgoDissemination, core.LockAlgoMCS},
		{"counter+ticket", core.BarrierAlgoCounter, core.LockAlgoTicket},
	}
	npesFor := func(name string) []int {
		if name == "sort" || name == "bfs" {
			return []int{2, 4, 5, 36} // 36 = the full Gx8036 grid
		}
		return []int{2, 4, 5}
	}
	for _, k := range Kernels() {
		want := k.RefSolve(testSpec(k.Name(), 0, 11))
		for _, np := range npesFor(k.Name()) {
			for _, al := range algos {
				k, np, al, want := k, np, al, want
				t.Run(fmt.Sprintf("%s/n%d/%s", k.Name(), np, al.name), func(t *testing.T) {
					t.Parallel()
					_, out, err := Launch(k, testSpec(k.Name(), np, 11), core.Config{
						Chip:        arch.Gx8036(),
						BarrierAlgo: al.barrier,
						LockAlgo:    al.lock,
					})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(out, want) {
						t.Fatalf("output under %s at n=%d diverged from the oracle", al.name, np)
					}
				})
			}
		}
	}
}
