package kernels

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"tshmem/internal/core"
	"tshmem/internal/fault"
)

// faultGrace mirrors internal/core's timeout tests: long enough that a
// healthy wait never trips it, short enough that starved waits resolve
// in well under a second.
const faultGrace = 150 * time.Millisecond

// TestKernelFaultTimeout is the ROBUSTNESS.md contract applied to the
// corpus: a stall plan that swallows one PE's barrier demux queue must
// make every kernel unwind with a typed *core.TimeoutError naming a
// blamed PE — never hang, never return a zero exit with bad data.
func TestKernelFaultTimeout(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name(), func(t *testing.T) {
			t.Parallel()
			plan, err := fault.Parse("stall:pe=1,q=0")
			if err != nil {
				t.Fatal(err)
			}
			rep, _, err := Launch(k, testSpec(k.Name(), 4, 3), core.Config{
				Faults: plan, WaitGrace: faultGrace,
			})
			if !errors.Is(err, core.ErrTimeout) {
				t.Fatalf("Launch error = %v, want ErrTimeout", err)
			}
			var terr *core.TimeoutError
			if !errors.As(err, &terr) {
				t.Fatalf("error %v carries no *core.TimeoutError", err)
			}
			if terr.PE < 0 || terr.PE >= 4 {
				t.Errorf("timeout blames PE %d, outside the program", terr.PE)
			}
			if terr.Op == "" {
				t.Error("timeout names no blocked operation")
			}
			if rep == nil {
				t.Fatal("no report alongside the timeout")
			}
		})
	}
}

// TestKernelSeededFaultsComplete: under a seeded TRANSIENT plan —
// stalls and slowdowns that activate and clear — every kernel must
// still terminate inside its bounded waits AND produce oracle-exact
// output; faults may bend virtual time, never answers.
func TestKernelSeededFaultsComplete(t *testing.T) {
	for _, k := range Kernels() {
		for _, seed := range []int64{11, 23} {
			k, seed := k, seed
			t.Run(fmt.Sprintf("%s/seed%d", k.Name(), seed), func(t *testing.T) {
				t.Parallel()
				rep, err := Check(k, testSpec(k.Name(), 4, 3), core.Config{
					Faults: &fault.Plan{Seed: seed}, WaitGrace: faultGrace,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if rep.FaultPlan == nil || len(rep.FaultPlan.Events) == 0 {
					t.Error("report records no seed-expanded fault plan")
				}
			})
		}
	}
}
