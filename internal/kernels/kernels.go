// Package kernels is the scenario corpus: distributed OpenSHMEM
// workloads with communication skeletons the FFT and CBIR case studies
// do not exercise — all-to-all exchange (sample-sort), irregular
// one-sided gets plus atomic claims (BFS), deep halo exchange
// (stencil), and lock-protected shared state plus tree reduction
// (word count).
//
// Every kernel implements the Kernel interface: a distributed Run that
// executes on each PE inside core.Run, a serial RefSolve oracle that
// recomputes the answer from the Spec alone, and a Verify that checks
// a run's output against the oracle plus kernel-specific invariants.
// The differential contract — Run output == RefSolve output on every
// chip, engine, PE count, and sync-algorithm selection — is what the
// test matrix in this package enforces.
//
// All kernels are deterministic in virtual time: inputs derive from
// Spec.Seed via a splitmix-style hash, communication phases are
// barrier-separated so no PE's clock depends on host scheduling, and
// atomics are used only in commutative (FAdd) or single-writer (CSwap
// by the owner) patterns. That is what lets the cross-engine tests
// demand byte-identical reports.
package kernels

import (
	"fmt"
	"sort"
	"sync"

	"tshmem/internal/core"
)

// Spec parameterizes one kernel run. The zero value of an optional
// field selects a kernel-specific default; Run and RefSolve normalize
// the Spec identically, so the oracle always agrees on the effective
// problem.
type Spec struct {
	Size int   // problem size: keys (sort), vertices (bfs), grid side (stencil), words (wordcount)
	Seed int64 // input generator seed
	NPEs int   // PEs the kernel runs on (Launch copies this into Config.NPEs)

	Width int // stencil only: halo depth w >= 1 (0 means 1)
	Iters int // stencil only: total sub-iterations; rounded up to a multiple of Width (0 means 4*Width)
}

// Kernel is the shared contract every corpus member implements.
type Kernel interface {
	// Name is the short registry/probe ID (e.g. "sort").
	Name() string
	// Title is a one-line human description.
	Title() string
	// HeapPerPE returns a sufficient symmetric-heap size for the spec.
	HeapPerPE(s Spec) int64
	// Run executes the distributed kernel on this PE. The returned
	// slice is the kernel's canonical output and is non-nil only on
	// PE 0; every other PE returns nil.
	Run(pe *core.PE, s Spec) ([]int64, error)
	// RefSolve computes the same output serially from the Spec alone.
	RefSolve(s Spec) []int64
	// Verify checks a run's PE-0 output against the serial oracle and
	// any kernel-specific invariants (sortedness, fixed boundaries,
	// conserved counts).
	Verify(s Spec, got []int64) error
}

// registry holds the corpus in menu order.
var registry = []Kernel{
	sampleSort{},
	bfsKernel{},
	stencilKernel{},
	wordCount{},
}

// Kernels returns the corpus in stable menu order.
func Kernels() []Kernel {
	out := make([]Kernel, len(registry))
	copy(out, registry)
	return out
}

// Names returns the registry IDs in menu order.
func Names() []string {
	names := make([]string, len(registry))
	for i, k := range registry {
		names[i] = k.Name()
	}
	return names
}

// ByName looks a kernel up by its registry ID.
func ByName(name string) (Kernel, error) {
	for _, k := range registry {
		if k.Name() == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("kernels: unknown kernel %q (have %v)", name, Names())
}

// Launch runs kernel k under cfg with the spec's PE count and a
// sufficient heap, and returns the report plus PE 0's output. cfg's
// NPEs and HeapPerPE fields are overridden from the spec (HeapPerPE
// only if unset); everything else — chip, engine, sanitizer, faults,
// sync algorithms, observability — passes through, so the harness
// composes with every correctness layer.
//
// On error (including fault-plan timeouts) the report, when non-nil,
// still carries diagnostics and fault counts.
func Launch(k Kernel, s Spec, cfg core.Config) (*core.Report, []int64, error) {
	if s.NPEs > 0 {
		cfg.NPEs = s.NPEs
	}
	if cfg.NPEs <= 0 {
		cfg.NPEs = 4
	}
	s.NPEs = cfg.NPEs
	if cfg.HeapPerPE == 0 {
		cfg.HeapPerPE = k.HeapPerPE(s)
		if cfg.HeapPerPE < 1<<16 {
			cfg.HeapPerPE = 1 << 16 // runtime minimum partition size
		}
	}

	var (
		mu  sync.Mutex
		out []int64
	)
	rep, err := core.Run(cfg, func(pe *core.PE) error {
		res, err := k.Run(pe, s)
		if err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			mu.Lock()
			out = res
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return rep, nil, err
	}
	if out == nil {
		return rep, nil, fmt.Errorf("kernels: %s produced no output on PE 0", k.Name())
	}
	return rep, out, nil
}

// Check is Launch followed by Verify: the one-call differential test.
func Check(k Kernel, s Spec, cfg core.Config) (*core.Report, error) {
	rep, out, err := Launch(k, s, cfg)
	if err != nil {
		return rep, err
	}
	if err := k.Verify(s, out); err != nil {
		return rep, err
	}
	return rep, nil
}

// mix64 is a splitmix64-style avalanche; the corpus's only source of
// "randomness", so inputs are pure functions of (seed, index).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash folds a seed and indices into a nonnegative int64.
func hash(seed int64, idx ...int64) int64 {
	h := mix64(uint64(seed) ^ 0xc0ffee)
	for _, v := range idx {
		h = mix64(h ^ uint64(v))
	}
	return int64(h &^ (1 << 63))
}

// blockLo returns the start of PE k's block when n items are split
// over p PEs with the standard balanced formula lo(k) = k*n/p.
func blockLo(k, n, p int) int { return k * n / p }

// chargeSort charges the virtual-time cost of sorting m elements:
// a comparison-sort's m*ceil(log2 m) compare-and-move steps.
func chargeSort(pe *core.PE, m int) {
	if m < 2 {
		return
	}
	lg := int64(0)
	for x := m - 1; x > 0; x >>= 1 {
		lg++
	}
	pe.ComputeIntOps(int64(m) * lg * 4)
}

// sortI64 sorts a slice ascending.
func sortI64(v []int64) {
	sort.Slice(v, func(a, b int) bool { return v[a] < v[b] })
}

// eqOracle compares an output vector against the oracle and reports
// the first divergence with context.
func eqOracle(name string, got, want []int64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: output has %d elements, oracle has %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("%s: output[%d] = %d, oracle says %d", name, i, got[i], want[i])
		}
	}
	return nil
}
