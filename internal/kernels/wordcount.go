package kernels

import (
	"fmt"

	"tshmem/internal/core"
)

// wordCount is a map-reduce word count: the mutual-exclusion-plus-
// reduction member of the corpus. A stream of Size words drawn from a
// V-word vocabulary is block-distributed; each PE histograms its block
// privately (map), then folds its counts into a distributed bucket
// array — vocabulary-block per owner PE — under per-owner locks
// (shuffle). The lock schedule is a rotation: in round r, PE me
// updates owner (me+r) mod p, so all p concurrent acquisitions hit
// distinct locks and every acquisition is uncontended — lock
// DISCIPLINE is exercised (SetLock / get-modify-put / Quiet /
// ClearLock) while virtual time stays host-schedule-independent,
// which the cross-engine byte-identity tests require.
//
// Independently, the same private histograms go through SumToAll tree
// reduction (honoring Config.Reduce), and Run cross-checks the two
// paths element-for-element on every PE — a differential test between
// two synchronization disciplines inside the kernel itself, before
// the PE-0 output ever reaches the serial oracle.
type wordCount struct{}

func (wordCount) Name() string  { return "wordcount" }
func (wordCount) Title() string { return "map-reduce word count (locked buckets + tree reduction)" }

func (wordCount) norm(s Spec) Spec {
	if s.Size <= 0 {
		s.Size = 4096
	}
	return s
}

// wcVocab sizes the vocabulary from the stream length: between 16 and
// 256 distinct words, so small runs still collide and large runs
// still contend for every bucket block.
func wcVocab(size int) int {
	v := size / 8
	if v < 16 {
		v = 16
	}
	if v > 256 {
		v = 256
	}
	return v
}

// wcWordAt is the deterministic stream generator: word index of
// stream position i.
func wcWordAt(seed int64, i, vocab int) int {
	return int(hash(seed, 0xc09, int64(i)) % int64(vocab))
}

func (wordCount) HeapPerPE(s Spec) int64 {
	s = wordCount{}.norm(s)
	v := int64(wcVocab(s.Size))
	p := int64(s.NPEs)
	if p <= 0 {
		p = 1
	}
	perPE := (v + p - 1) / p
	// buckets + locks + two reduction vectors + pwrk + collected
	// buckets + psync.
	return (perPE + p + 2*v + v + core.ReduceMinWrkSize + perPE*p + 64) * 8
}

func (k wordCount) Run(pe *core.PE, s Spec) ([]int64, error) {
	s = k.norm(s)
	p, me, words := pe.NumPEs(), pe.MyPE(), s.Size
	vocab := wcVocab(words)
	perPE := (vocab + p - 1) / p

	buckets, err := core.Malloc[int64](pe, perPE)
	if err != nil {
		return nil, err
	}
	locks, err := core.Malloc[int64](pe, p)
	if err != nil {
		return nil, err
	}
	redIn, err := core.Malloc[int64](pe, vocab)
	if err != nil {
		return nil, err
	}
	redOut, err := core.Malloc[int64](pe, vocab)
	if err != nil {
		return nil, err
	}
	pwrk, err := core.Malloc[int64](pe, vocab+core.ReduceMinWrkSize)
	if err != nil {
		return nil, err
	}
	bucketsAll, err := core.Malloc[int64](pe, perPE*p)
	if err != nil {
		return nil, err
	}
	ps, err := core.Malloc[int64](pe, core.CollectSyncSize)
	if err != nil {
		return nil, err
	}
	as := core.AllPEs(p)

	// Map (untimed setup generates, timed region histograms). My
	// bucket block starts empty; the pre-shuffle barrier publishes it.
	for j := range core.MustLocal(pe, buckets) {
		core.MustLocal(pe, buckets)[j] = 0
	}
	lo, hi := blockLo(me, words, p), blockLo(me+1, words, p)
	mine := make([]int, hi-lo)
	for i := range mine {
		mine[i] = wcWordAt(s.Seed, lo+i, vocab)
	}
	if err := pe.AlignClocks(); err != nil {
		return nil, err
	}

	hist := make([]int64, vocab)
	for _, w := range mine {
		hist[w]++
	}
	pe.ComputeIntOps(int64(len(mine)) * 2)
	if err := pe.BarrierAll(); err != nil {
		return nil, err
	}

	// Shuffle: rotate over bucket owners; lock owner q's block, fold
	// my contribution in with a get-modify-put, release. The barrier
	// per round keeps acquisitions uncontended by construction.
	tmp := make([]int64, perPE)
	for r := 0; r < p; r++ {
		q := (me + r) % p
		if err := pe.SetLock(locks.At(q)); err != nil {
			return nil, err
		}
		if err := core.GetSlice(pe, tmp, buckets, q); err != nil {
			return nil, err
		}
		for j := 0; j < perPE; j++ {
			if w := q*perPE + j; w < vocab {
				tmp[j] += hist[w]
			}
		}
		pe.ComputeIntOps(int64(perPE))
		if err := core.PutSlice(pe, buckets, tmp, q); err != nil {
			return nil, err
		}
		pe.Quiet()
		if err := pe.ClearLock(locks.At(q)); err != nil {
			return nil, err
		}
		if err := pe.BarrierAll(); err != nil {
			return nil, err
		}
	}

	// Reduce: the same histograms through the SumToAll tree.
	copy(core.MustLocal(pe, redIn), hist)
	if err := core.SumToAll(pe, redOut, redIn, vocab, as, pwrk, ps); err != nil {
		return nil, err
	}

	// Cross-check the lock path against the reduction path on EVERY
	// PE: two sync disciplines, one answer.
	if err := core.FCollect(pe, bucketsAll, buckets, perPE, as, ps); err != nil {
		return nil, err
	}
	ba := core.MustLocal(pe, bucketsAll)
	ro := core.MustLocal(pe, redOut)
	for w := 0; w < vocab; w++ {
		if ba[w] != ro[w] {
			return nil, fmt.Errorf("wordcount: PE %d sees locked bucket[%d] = %d but reduction says %d",
				me, w, ba[w], ro[w])
		}
	}
	if err := pe.BarrierAll(); err != nil {
		return nil, err
	}
	if me != 0 {
		return nil, nil
	}
	return append([]int64(nil), ba[:vocab]...), nil
}

func (k wordCount) RefSolve(s Spec) []int64 {
	s = k.norm(s)
	vocab := wcVocab(s.Size)
	counts := make([]int64, vocab)
	for i := 0; i < s.Size; i++ {
		counts[wcWordAt(s.Seed, i, vocab)]++
	}
	return counts
}

func (k wordCount) Verify(s Spec, got []int64) error {
	s = k.norm(s)
	var total int64
	for _, c := range got {
		if c < 0 {
			return fmt.Errorf("wordcount: negative count %d", c)
		}
		total += c
	}
	// Conservation: every word in the stream is counted exactly once.
	if total != int64(s.Size) {
		return fmt.Errorf("wordcount: counts sum to %d, want %d", total, s.Size)
	}
	return eqOracle("wordcount", got, k.RefSolve(s))
}
