package kernels

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"tshmem/internal/arch"
	"tshmem/internal/core"
	"tshmem/internal/profile"
	"tshmem/internal/vtime"
)

// testSpec returns a small-but-meaningful spec for kernel name: big
// enough that every communication phase moves real data on every PE,
// small enough for the chip x PE x seed matrix under -race.
func testSpec(name string, npes int, seed int64) Spec {
	s := Spec{NPEs: npes, Seed: seed}
	switch name {
	case "sort":
		s.Size = 600
	case "bfs":
		s.Size = 150
	case "stencil":
		s.Size = 20
		s.Width = 2
	case "wordcount":
		s.Size = 900
	}
	return s
}

func TestRegistry(t *testing.T) {
	want := []string{"sort", "bfs", "stencil", "wordcount"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		k, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if k.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, k.Name())
		}
		if k.Title() == "" {
			t.Errorf("%s has no title", name)
		}
	}
	if _, err := ByName("quicksort"); err == nil {
		t.Error("ByName(unknown) did not error")
	}
}

// TestDifferentialMatrix is the tentpole bar: every kernel's
// distributed output equals its serial oracle across chip families
// (including Epiphany-III's scratchpad + TESTSET-emulated fetch-ops
// and a non-square synthetic grid), PE counts, and seeds, with the
// happens-before sanitizer on and silent.
func TestDifferentialMatrix(t *testing.T) {
	chips := []struct {
		chip *arch.Chip
		npes []int
	}{
		{arch.Gx8036(), []int{2, 5}},
		{arch.Pro64(), []int{2, 4}},
		{arch.EpiphanyIII(), []int{2, 5}},
		{arch.Synthetic(8, 3), []int{4}},
	}
	for _, k := range Kernels() {
		for _, c := range chips {
			for _, np := range c.npes {
				for _, seed := range []int64{1, 7} {
					k, c, np, seed := k, c, np, seed
					name := fmt.Sprintf("%s/%s/n%d/seed%d", k.Name(), c.chip.Name, np, seed)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						rep, err := Check(k, testSpec(k.Name(), np, seed), core.Config{
							Chip: c.chip, Sanitize: true,
						})
						if err != nil {
							t.Fatal(err)
						}
						if len(rep.Diagnostics) != 0 {
							t.Fatalf("sanitizer diagnostics: %v", rep.Diagnostics)
						}
					})
				}
			}
		}
	}
}

// TestVerifyCatchesCorruption makes sure the differential harness has
// teeth: a single corrupted element in an otherwise-correct output
// must fail Verify.
func TestVerifyCatchesCorruption(t *testing.T) {
	for _, k := range Kernels() {
		s := testSpec(k.Name(), 4, 3)
		good := k.RefSolve(s)
		if err := k.Verify(s, good); err != nil {
			t.Fatalf("%s: oracle does not verify against itself: %v", k.Name(), err)
		}
		bad := append([]int64(nil), good...)
		bad[len(bad)/2] += 41
		if err := k.Verify(s, bad); err == nil {
			t.Errorf("%s: corrupted output passed Verify", k.Name())
		}
		if err := k.Verify(s, good[:len(good)-1]); err == nil {
			t.Errorf("%s: truncated output passed Verify", k.Name())
		}
	}
}

// TestOracleDeterminism: RefSolve is a pure function of the spec.
func TestOracleDeterminism(t *testing.T) {
	for _, k := range Kernels() {
		s := testSpec(k.Name(), 4, 9)
		if !reflect.DeepEqual(k.RefSolve(s), k.RefSolve(s)) {
			t.Errorf("%s: RefSolve is not deterministic", k.Name())
		}
	}
}

// TestProfileLedger runs every kernel under the causal profiler and
// asserts the PR 7 accounting invariants: each PE's blame ledger sums
// exactly to its end time, and the critical path's makespan matches
// the report's.
func TestProfileLedger(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name(), func(t *testing.T) {
			t.Parallel()
			rep, err := Check(k, testSpec(k.Name(), 4, 2), core.Config{Profile: true})
			if err != nil {
				t.Fatal(err)
			}
			p := rep.Profile()
			if p == nil {
				t.Fatal("no profile")
			}
			if p.Makespan != rep.MaxTime {
				t.Fatalf("profile makespan %v != report makespan %v", p.Makespan, rep.MaxTime)
			}
			for i := range p.PEs {
				pp := &p.PEs[i]
				var sum vtime.Duration
				for c := profile.Category(0); c < profile.NumCategories; c++ {
					if pp.Blame[c] < 0 {
						t.Fatalf("PE %d: negative blame %v in %s", i, pp.Blame[c], c)
					}
					sum += pp.Blame[c]
				}
				if sum != vtime.Duration(pp.End) {
					t.Fatalf("PE %d: ledger sums to %v, want end %v", i, sum, pp.End)
				}
			}
		})
	}
}

// TestDeterministicRepeat runs each kernel twice on the same config —
// the second time with GOMAXPROCS pinned to 1, the harshest host
// schedule — and demands identical virtual-time reports and outputs.
func TestDeterministicRepeat(t *testing.T) {
	for _, k := range Kernels() {
		cfg := core.Config{Chip: arch.Gx8036(), Observe: true}
		s := testSpec(k.Name(), 5, 4)
		rep1, out1, err := Launch(k, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		prev := runtime.GOMAXPROCS(1)
		rep2, out2, err := Launch(k, s, cfg)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out1, out2) {
			t.Errorf("%s: outputs diverged across host schedules", k.Name())
		}
		if !reflect.DeepEqual(rep1.PETimes, rep2.PETimes) {
			t.Errorf("%s: PETimes diverged across host schedules:\n  %v\n  %v", k.Name(), rep1.PETimes, rep2.PETimes)
		}
		if rep1.MaxTime != rep2.MaxTime {
			t.Errorf("%s: makespan diverged: %v vs %v", k.Name(), rep1.MaxTime, rep2.MaxTime)
		}
		if !reflect.DeepEqual(rep1.PECounters, rep2.PECounters) {
			t.Errorf("%s: substrate counters diverged across host schedules", k.Name())
		}
	}
}

// TestLaunchHeapSizing: the interface's HeapPerPE must actually be
// sufficient — Launch with no explicit heap must not trip allocation
// failures at several PE counts.
func TestLaunchHeapSizing(t *testing.T) {
	for _, k := range Kernels() {
		for _, np := range []int{1, 2, 7} {
			if _, err := Check(k, testSpec(k.Name(), np, 6), core.Config{}); err != nil {
				t.Errorf("%s/n%d: %v", k.Name(), np, err)
			}
		}
	}
}
