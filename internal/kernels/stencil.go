package kernels

import (
	"fmt"

	"tshmem/internal/core"
)

// stencilKernel is a 5-point Jacobi relaxation on an n x n integer
// grid with a configurable-width halo: the ghost-cell member of the
// corpus. Rows are block-distributed; each superstep exchanges w
// boundary rows with each neighbor (ghost-cell puts + Quiet fencing +
// barrier), then runs w sub-iterations locally, shrinking the valid
// region by one row per sub-iteration — the classic deep-halo
// trade-off of communication volume against synchronization rate.
// Boundary rows and columns are held fixed; the update is pure integer
// arithmetic ((4c + N + S + W + E) / 8), so the serial oracle matches
// bit-for-bit.
//
// Skeleton exercised: neighbor puts at offsets computed from the
// REMOTE PE's block geometry (uneven blocks make a one-row error
// land silently without the oracle), double buffering, and the
// quiet-then-barrier fence discipline the sanitizer audits.
type stencilKernel struct{}

func (stencilKernel) Name() string  { return "stencil" }
func (stencilKernel) Title() string { return "halo-exchange Jacobi stencil (ghost-cell puts)" }

func (stencilKernel) norm(s Spec) Spec {
	if s.Size <= 0 {
		s.Size = 48
	}
	if s.Size < 4 {
		s.Size = 4
	}
	if s.Width <= 0 {
		s.Width = 1
	}
	if s.Iters <= 0 {
		s.Iters = 4 * s.Width
	}
	if rem := s.Iters % s.Width; rem != 0 {
		s.Iters += s.Width - rem
	}
	return s
}

func (stencilKernel) HeapPerPE(s Spec) int64 {
	s = stencilKernel{}.norm(s)
	n, w := int64(s.Size), int64(s.Width)
	p := int64(s.NPEs)
	if p <= 0 {
		p = 1
	}
	maxRows := (n + p - 1) / p
	return (2*(maxRows+2*w)*n + n*n + 256) * 8
}

// stencilValAt is the initial grid value at (row, col).
func stencilValAt(seed int64, r, c int) int64 {
	return hash(seed, 0x57e, int64(r), int64(c)) % 1024
}

// stencilStep advances the full grid once: interior cells take
// (4c + N + S + W + E) / 8; boundary rows and columns are fixed.
// Serial oracle core, shared by RefSolve.
func stencilStep(dst, src []int64, n int) {
	copy(dst[:n], src[:n])
	copy(dst[(n-1)*n:], src[(n-1)*n:])
	for r := 1; r < n-1; r++ {
		row := r * n
		dst[row] = src[row]
		dst[row+n-1] = src[row+n-1]
		for c := 1; c < n-1; c++ {
			i := row + c
			dst[i] = (4*src[i] + src[i-n] + src[i+n] + src[i-1] + src[i+1]) / 8
		}
	}
}

func (k stencilKernel) Run(pe *core.PE, s Spec) ([]int64, error) {
	s = k.norm(s)
	p, me, n, w := pe.NumPEs(), pe.MyPE(), s.Size, s.Width
	if n/p < w {
		return nil, fmt.Errorf("stencil: %d rows over %d PEs gives blocks under the halo width %d", n, p, w)
	}
	myLo := blockLo(me, n, p)
	myRows := blockLo(me+1, n, p) - myLo
	maxRows := (n + p - 1) / p
	bufRows := maxRows + 2*w // symmetric allocation; each PE uses myRows+2w of it

	var grid [2]core.Ref[int64]
	var err error
	for i := range grid {
		if grid[i], err = core.Malloc[int64](pe, bufRows*n); err != nil {
			return nil, err
		}
	}
	outRef, err := core.Malloc[int64](pe, n*n)
	if err != nil {
		return nil, err
	}
	ps, err := core.Malloc[int64](pe, core.CollectSyncSize)
	if err != nil {
		return nil, err
	}
	as := core.AllPEs(p)

	// Untimed setup: my owned rows at local offset w.
	g0 := core.MustLocal(pe, grid[0])
	for r := 0; r < myRows; r++ {
		for c := 0; c < n; c++ {
			g0[(w+r)*n+c] = stencilValAt(s.Seed, myLo+r, c)
		}
	}
	if err := pe.AlignClocks(); err != nil {
		return nil, err
	}

	cur := 0
	// Valid row interval [a, b) in the local buffer; edges own their
	// outer boundary, so their interval never shrinks on that side.
	a, b := 0, myRows+2*w
	if me == 0 {
		a = w
	}
	if me == p-1 {
		b = w + myRows
	}
	for t := 0; t < s.Iters; t += w {
		// Halo exchange from the current buffer. The leading barrier
		// keeps this superstep's puts from overwriting halo rows a
		// neighbor is still reading in the previous superstep.
		if err := pe.BarrierAll(); err != nil {
			return nil, err
		}
		if me > 0 {
			upRows := blockLo(me, n, p) - blockLo(me-1, n, p)
			dst := (w + upRows) * n // my top w owned rows are up's bottom halo
			if err := core.Put(pe, grid[cur].Slice(dst, dst+w*n), grid[cur].Slice(w*n, 2*w*n), w*n, me-1); err != nil {
				return nil, err
			}
		}
		if me < p-1 {
			src := (myRows) * n // my bottom w owned rows are down's top halo
			if err := core.Put(pe, grid[cur].Slice(0, w*n), grid[cur].Slice(src, src+w*n), w*n, me+1); err != nil {
				return nil, err
			}
		}
		pe.Quiet()
		if err := pe.BarrierAll(); err != nil {
			return nil, err
		}
		// Halos restore the full valid interval.
		a, b = 0, myRows+2*w
		if me == 0 {
			a = w
		}
		if me == p-1 {
			b = w + myRows
		}

		// w local sub-iterations, each shrinking the interior side of
		// the valid interval by one row.
		for j := 0; j < w; j++ {
			na, nb := a+1, b-1
			if me == 0 {
				na = w
			}
			if me == p-1 {
				nb = w + myRows
			}
			cv := core.MustLocal(pe, grid[cur])
			nv := core.MustLocal(pe, grid[1-cur])
			for r := na; r < nb; r++ {
				gr := myLo + r - w // global row
				row := r * n
				if gr == 0 || gr == n-1 {
					copy(nv[row:row+n], cv[row:row+n])
					continue
				}
				nv[row] = cv[row]
				nv[row+n-1] = cv[row+n-1]
				for c := 1; c < n-1; c++ {
					i := row + c
					nv[i] = (4*cv[i] + cv[i-n] + cv[i+n] + cv[i-1] + cv[i+1]) / 8
				}
			}
			pe.ComputeIntOps(int64(nb-na) * int64(n) * 8)
			a, b = na, nb
			cur = 1 - cur
		}
	}

	// Gather the owned blocks in PE order: row-block layout makes the
	// concatenation the full grid.
	if err := pe.BarrierAll(); err != nil {
		return nil, err
	}
	if err := core.Collect(pe, outRef, grid[cur].Slice(w*n, (w+myRows)*n), myRows*n, as, ps); err != nil {
		return nil, err
	}
	if err := pe.BarrierAll(); err != nil {
		return nil, err
	}
	if me != 0 {
		return nil, nil
	}
	return append([]int64(nil), core.MustLocal(pe, outRef)...), nil
}

func (k stencilKernel) RefSolve(s Spec) []int64 {
	s = k.norm(s)
	n := s.Size
	src := make([]int64, n*n)
	dst := make([]int64, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			src[r*n+c] = stencilValAt(s.Seed, r, c)
		}
	}
	for t := 0; t < s.Iters; t++ {
		stencilStep(dst, src, n)
		src, dst = dst, src
	}
	return src
}

func (k stencilKernel) Verify(s Spec, got []int64) error {
	s = k.norm(s)
	n := s.Size
	if len(got) != n*n {
		return fmt.Errorf("stencil: output has %d cells, want %d", len(got), n*n)
	}
	// Fixed-boundary invariant: edge cells never change.
	for c := 0; c < n; c++ {
		for _, r := range []int{0, n - 1} {
			if want := stencilValAt(s.Seed, r, c); got[r*n+c] != want {
				return fmt.Errorf("stencil: fixed boundary (%d,%d) drifted to %d, want %d", r, c, got[r*n+c], want)
			}
		}
	}
	return eqOracle("stencil", got, k.RefSolve(s))
}
