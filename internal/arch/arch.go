// Package arch describes the many-core processors modeled by TSHMEM: the
// Tilera TILE-Gx8036 and TILEPro64 (with their smaller siblings) as
// compared in Table II of the paper, the Adapteva Epiphany family from the
// two Ross & Richie OpenSHMEM/Epiphany papers, and arbitrary synthetic
// N x M meshes for scaling studies (docs/ARCHITECTURES.md).
//
// A Chip value carries both the architectural facts (tile grid, clock,
// cache geometry, network counts) and the calibrated performance-model
// constants used by the simulation substrate. Each constant is annotated
// with the paper anchor it reproduces, so the provenance of every number in
// the regenerated figures is auditable.
package arch

import (
	"fmt"

	"tshmem/internal/vtime"
)

// Family identifies a processor generation.
type Family int

const (
	// TILEPro is the previous, 32-bit Tilera generation (TILEPro36,
	// TILEPro64).
	TILEPro Family = iota
	// TILEGx is the 64-bit Tilera generation (TILE-Gx16, TILE-Gx36).
	TILEGx
	// Epiphany is the Adapteva Epiphany RISC array family: scratchpad
	// memory per core (no caches), a 2D eMesh, and TESTSET-only atomics
	// (Ross & Richie, PAPERS.md).
	Epiphany
	// SyntheticMesh marks chips built by Synthetic(w, h): arbitrary
	// N x M grids carrying TILE-Gx-derived model constants, for scaling
	// studies beyond any physical catalogue part.
	SyntheticMesh
)

func (f Family) String() string {
	switch f {
	case TILEPro:
		return "TILEPro"
	case TILEGx:
		return "TILE-Gx"
	case Epiphany:
		return "Epiphany"
	case SyntheticMesh:
		return "synthetic"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// BWPoint anchors the effective-bandwidth curve of the memory system:
// transfers of exactly Size bytes sustain MBs megabytes per second. The
// curve between anchors is interpolated linearly in log(size) space, which
// matches the smooth knees of the measured curves (Figure 3).
type BWPoint struct {
	Size int64   // transfer size in bytes
	MBs  float64 // effective bandwidth in MB/s
}

// CopyCurve is an ordered set of bandwidth anchors for one sharing mode.
type CopyCurve []BWPoint

// BarrierModel carries the calibrated linear cost model for one of the
// TMC-provided barriers (Figure 5): latency(n) = Base + PerTile*(n-1).
type BarrierModel struct {
	Base    vtime.Duration // fixed entry/exit cost
	PerTile vtime.Duration // marginal cost per additional participating tile
}

// Latency reports the modeled barrier latency for n participating tiles.
func (m BarrierModel) Latency(n int) vtime.Duration {
	if n < 1 {
		return 0
	}
	return m.Base + vtime.Duration(n-1)*m.PerTile
}

// Chip is a Tilera processor model. All performance constants are
// per-paper-anchor calibrations; see the definitions of Gx8036 and Pro64.
type Chip struct {
	Name   string
	Family Family

	// Geometry.
	GridW, GridH int // physical tile grid dimensions
	Tiles        int // GridW*GridH

	// Core microarchitecture (Table II).
	ClockHz    float64 // operating frequency used in the paper's platforms
	WordBytes  int     // iMesh switch-fabric word: 8 on TILE-Gx, 4 on TILEPro
	Is64Bit    bool
	L1iBytes   int
	L1dBytes   int
	L2Bytes    int
	DynNets    int // dynamic iMesh networks (5 on Gx, 4 on Pro)
	StaticNets int // developer-defined statically routed networks
	MemCtrls   int
	MemGbps    float64 // aggregate memory bandwidth, Gbps (Table II)
	MeshTbps   float64 // on-chip mesh interconnect bandwidth, Tbps
	PeakBOPS   float64 // billions of operations per second (Table II)
	PowerW     string  // power envelope as quoted by Table II
	HasMPIPE   bool    // wire-speed packet engine (Gx only)
	HasMiCA    bool    // crypto/compression accelerator (Gx only)

	// mPIPE chip-to-chip link model, for the multi-device shared-memory
	// extension the paper proposes as future work. The TILE-Gx8036 front
	// panel exposes 10GbE ports driven by mPIPE at wire speed.
	MPIPELinks     int     // parallel 10GbE links between chip pairs
	MPIPELinkGbps  float64 // per-link wire rate
	MPIPELatencyNs float64 // one-way packet latency: mPIPE classification + wire + delivery

	// UDN capability and latency decomposition (Section III.C, Table III).
	// One-way latency = UDNSetupNs + hops*cycle + (words-1)*cycle.
	// The TILE-Gx has *higher* setup-and-teardown than the TILEPro because
	// of its 64-bit switching fabric (paper, Figure 4 caption).
	UDNQueues        int     // demux queues per tile
	UDNMaxWords      int     // maximum payload words per packet
	UDNSetupNs       float64 // setup-and-teardown: ~21 ns Gx, ~17 ns Pro
	UDNHopNs         float64 // per-hop router latency; 0 means one clock cycle
	UDNInterrupts    bool    // TILEPro lacks UDN interrupt support (S IV.B.2)
	UDNInterruptNs   float64 // interrupt entry/dispatch overhead on remote tile
	UDNSendShare     float64 // fraction of setup charged to the sender side
	UDNSWForwardNs   float64 // software cost to examine-and-forward a barrier signal
	UDNSendCallNs    float64 // software cost of one standalone tmc_udn_send call
	BarrierArbiterNs float64 // active-set ID generation cost at the start tile

	// Memory-copy effective-bandwidth anchors (Figure 3). PrivateCopy is
	// heap-to-heap within one tile; SharedCopy is to/from/within TMC
	// common memory under the hash-for-home policy TSHMEM uses.
	PrivateCopy CopyCurve
	SharedCopy  CopyCurve
	CopyCallNs  float64 // fixed per-memcpy software overhead

	// Concurrency model for shared-memory traffic (Figures 10-12): with c
	// PEs streaming simultaneously, per-PE bandwidth is divided by
	// 1 + ContLow*(c-1) + ContHigh*max(0, c-ContKnee). ContKnee is where
	// the mesh/home-tile service saturates (aggregate peaks near there).
	ContLow   float64
	ContHigh  float64
	ContKnee  int
	AtomicNs  float64 // remote atomic op service time beyond the copy model
	FenceNs   float64 // tmc_mem_fence cost
	SchedTick float64 // scheduler interaction cost (ns) for sync barriers

	// Scratchpad-memory architecture (Epiphany family). When Scratchpad is
	// set, L1dBytes is the core's flat local SRAM (code + data, no caches:
	// L2Bytes is 0 and there is no chip-wide DDC); working sets beyond it
	// spill straight to off-chip shared DRAM over the eLink, and explicit
	// homing is moot because every address has exactly one physical home.
	Scratchpad bool

	// Weak-atomics model (Epiphany family): the only hardware atomic is
	// TESTSET, so fetch-ops (swap/cswap/fadd/...) are emulated by a
	// TESTSET-guarded critical section. AtomicRMWEmulated adds two
	// TESTSET probes (acquire + release) on top of AtomicNs for every
	// read-modify-write; chips with native fetch-ops leave it false and
	// TestSetNs is ignored.
	AtomicRMWEmulated bool
	TestSetNs         float64 // one hardware TESTSET probe

	// TMC barrier models (Figure 5).
	SpinBarrier BarrierModel
	SyncBarrier BarrierModel

	// Compute cost model for the application case studies (Section V).
	// The TILEPro has no FPU: floating-point is software-emulated, which
	// is why the TILE-Gx is "roughly an order of magnitude" faster on the
	// 2D-FFT (Figure 13) while integer CBIR is closer (Figure 14).
	FlopNs          float64 // cost of one floating-point op
	IntOpNs         float64 // cost of one integer/ALU op
	ReduceElemNs    float64 // per-element cost of the reduction fold loop (type-dispatched)
	RandomAccessNs  float64 // cost of one dependent remote-cache/memory access
	InterruptPollNs float64 // servicer poll granularity
}

// CycleNs reports the duration of one core clock cycle in nanoseconds.
func (c *Chip) CycleNs() float64 { return 1e9 / c.ClockHz }

// HopNs reports the per-hop router latency: UDNHopNs if set, otherwise one
// clock cycle (the iMesh switches one word per hop per cycle).
func (c *Chip) HopNs() float64 {
	if c.UDNHopNs > 0 {
		return c.UDNHopNs
	}
	return c.CycleNs()
}

// Cycle reports one clock cycle as a vtime.Duration.
func (c *Chip) Cycle() vtime.Duration { return vtime.FromNs(c.CycleNs()) }

// Cycles reports n clock cycles as a vtime.Duration.
func (c *Chip) Cycles(n int) vtime.Duration { return vtime.FromNs(float64(n) * c.CycleNs()) }

// Validate checks internal consistency of the chip description.
func (c *Chip) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("arch: chip has no name")
	}
	if c.GridW <= 0 || c.GridH <= 0 {
		return fmt.Errorf("arch: %s: bad grid %dx%d", c.Name, c.GridW, c.GridH)
	}
	if c.Tiles != c.GridW*c.GridH {
		return fmt.Errorf("arch: %s: Tiles=%d but grid is %dx%d", c.Name, c.Tiles, c.GridW, c.GridH)
	}
	if c.ClockHz <= 0 {
		return fmt.Errorf("arch: %s: non-positive clock", c.Name)
	}
	if c.WordBytes != 4 && c.WordBytes != 8 {
		return fmt.Errorf("arch: %s: UDN word must be 4 or 8 bytes, got %d", c.Name, c.WordBytes)
	}
	if len(c.SharedCopy) < 2 || len(c.PrivateCopy) < 2 {
		return fmt.Errorf("arch: %s: copy curves need at least two anchors", c.Name)
	}
	for _, curve := range []CopyCurve{c.PrivateCopy, c.SharedCopy} {
		for i := 1; i < len(curve); i++ {
			if curve[i].Size <= curve[i-1].Size {
				return fmt.Errorf("arch: %s: copy-curve sizes not strictly increasing", c.Name)
			}
		}
	}
	if c.UDNQueues <= 0 || c.UDNMaxWords <= 0 {
		return fmt.Errorf("arch: %s: bad UDN geometry", c.Name)
	}
	if c.AtomicRMWEmulated && c.TestSetNs <= 0 {
		return fmt.Errorf("arch: %s: emulated RMW atomics need a positive TestSetNs", c.Name)
	}
	if c.Scratchpad && c.L2Bytes != 0 {
		return fmt.Errorf("arch: %s: scratchpad cores have no L2 cache", c.Name)
	}
	return nil
}

func (c *Chip) String() string { return c.Name }
