package arch

import (
	"math"
	"strings"
	"testing"

	"tshmem/internal/vtime"
)

func TestCatalogueValidates(t *testing.T) {
	for _, c := range Chips() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	if c := ByName("TILE-Gx8036"); c == nil || c.Tiles != 36 {
		t.Errorf("ByName(TILE-Gx8036) = %v", c)
	}
	if c := ByName("TILEPro64"); c == nil || c.Tiles != 64 {
		t.Errorf("ByName(TILEPro64) = %v", c)
	}
	if c := ByName("no-such-chip"); c != nil {
		t.Errorf("ByName(no-such-chip) = %v, want nil", c)
	}
}

// TestTableIIFacts pins the architecture facts from the paper's Table II.
func TestTableIIFacts(t *testing.T) {
	gx, pro := Gx8036(), Pro64()

	if gx.Tiles != 36 || !gx.Is64Bit || gx.GridW != 6 || gx.GridH != 6 {
		t.Errorf("Gx8036 geometry wrong: %+v", gx)
	}
	if pro.Tiles != 64 || pro.Is64Bit || pro.GridW != 8 || pro.GridH != 8 {
		t.Errorf("Pro64 geometry wrong: %+v", pro)
	}
	if gx.L1iBytes != 32<<10 || gx.L1dBytes != 32<<10 || gx.L2Bytes != 256<<10 {
		t.Errorf("Gx caches wrong: %d/%d/%d", gx.L1iBytes, gx.L1dBytes, gx.L2Bytes)
	}
	if pro.L1iBytes != 16<<10 || pro.L1dBytes != 8<<10 || pro.L2Bytes != 64<<10 {
		t.Errorf("Pro caches wrong: %d/%d/%d", pro.L1iBytes, pro.L1dBytes, pro.L2Bytes)
	}
	if gx.ClockHz != 1e9 || pro.ClockHz != 700e6 {
		t.Errorf("clock wrong: %v / %v", gx.ClockHz, pro.ClockHz)
	}
	if gx.WordBytes != 8 || pro.WordBytes != 4 {
		t.Errorf("UDN word wrong: %d / %d", gx.WordBytes, pro.WordBytes)
	}
	if gx.DynNets != 5 || pro.DynNets != 4 {
		t.Errorf("dynamic networks wrong: %d / %d", gx.DynNets, pro.DynNets)
	}
	if gx.MemCtrls != 2 || pro.MemCtrls != 4 {
		t.Errorf("memory controllers wrong: %d / %d", gx.MemCtrls, pro.MemCtrls)
	}
	if !gx.HasMPIPE || !gx.HasMiCA || pro.HasMPIPE || pro.HasMiCA {
		t.Error("accelerator flags wrong")
	}
	if !gx.UDNInterrupts {
		t.Error("TILE-Gx must support UDN interrupts")
	}
	if pro.UDNInterrupts {
		t.Error("TILEPro must not support UDN interrupts (paper S IV.B.2)")
	}
}

func TestCycle(t *testing.T) {
	gx, pro := Gx8036(), Pro64()
	if got := gx.CycleNs(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("Gx cycle = %v ns, want 1", got)
	}
	if got := pro.CycleNs(); math.Abs(got-1.0/0.7) > 1e-9 {
		t.Errorf("Pro cycle = %v ns, want 1.428..", got)
	}
	if gx.Cycles(10) != 10*vtime.Nanosecond {
		t.Errorf("Gx Cycles(10) = %v", gx.Cycles(10))
	}
}

// TestBarrierModelAnchors pins the Figure 5 latencies at 36 tiles:
// spin 1.5 us (Gx) / 47.2 us (Pro); sync 321 us (Gx) / 786 us (Pro).
func TestBarrierModelAnchors(t *testing.T) {
	check := func(name string, got vtime.Duration, wantUs, tolUs float64) {
		t.Helper()
		if math.Abs(got.Us()-wantUs) > tolUs {
			t.Errorf("%s latency at 36 tiles = %.2f us, want %.2f +- %.2f", name, got.Us(), wantUs, tolUs)
		}
	}
	gx, pro := Gx8036(), Pro64()
	check("Gx spin", gx.SpinBarrier.Latency(36), 1.5, 0.1)
	check("Pro spin", pro.SpinBarrier.Latency(36), 47.2, 1.0)
	check("Gx sync", gx.SyncBarrier.Latency(36), 321, 5)
	check("Pro sync", pro.SyncBarrier.Latency(36), 786, 10)
}

func TestBarrierModelMonotonic(t *testing.T) {
	m := Gx8036().SpinBarrier
	if m.Latency(0) != 0 {
		t.Errorf("Latency(0) = %v, want 0", m.Latency(0))
	}
	prev := vtime.Duration(-1)
	for n := 1; n <= 64; n++ {
		l := m.Latency(n)
		if l <= prev {
			t.Fatalf("barrier latency not increasing at n=%d: %v <= %v", n, l, prev)
		}
		prev = l
	}
}

// TestCopyCurveAnchors spot-checks the Figure 3 calibration anchors.
func TestCopyCurveAnchors(t *testing.T) {
	gx, pro := Gx8036(), Pro64()
	find := func(c CopyCurve, size int64) float64 {
		for _, p := range c {
			if p.Size == size {
				return p.MBs
			}
		}
		return -1
	}
	if bw := find(gx.SharedCopy, 8<<10); math.Abs(bw-3100) > 1 {
		t.Errorf("Gx L1d-resident shared copy = %v MB/s, want 3100", bw)
	}
	if bw := find(gx.SharedCopy, 256<<10); bw < 1900-1 || bw > 2700+1 {
		t.Errorf("Gx L2 shared copy = %v MB/s, want within 1900-2700", bw)
	}
	if bw := find(gx.SharedCopy, 64<<20); math.Abs(bw-320) > 1 {
		t.Errorf("Gx memory floor = %v MB/s, want 320", bw)
	}
	if bw := find(pro.SharedCopy, 8<<10); math.Abs(bw-500) > 10 {
		t.Errorf("Pro cache-resident copy = %v MB/s, want ~500", bw)
	}
	// "Memory-to-memory transfers on the TILEPro64 are faster than those on
	// the TILE-Gx36."
	if proFloor, gxFloor := find(pro.SharedCopy, 16<<20), find(gx.SharedCopy, 64<<20); proFloor <= gxFloor {
		t.Errorf("Pro floor %v must exceed Gx floor %v", proFloor, gxFloor)
	}
}

func TestUDNSetupAnchors(t *testing.T) {
	// Paper: "estimated setup-and-teardown time is roughly 21 ns for the
	// TILE-Gx and 18 ns for the TILEPro"; the Gx pays for a 64-bit fabric.
	gx, pro := Gx8036(), Pro64()
	if gx.UDNSetupNs <= pro.UDNSetupNs {
		t.Errorf("Gx setup %v must exceed Pro setup %v", gx.UDNSetupNs, pro.UDNSetupNs)
	}
	if math.Abs(gx.UDNSetupNs-21) > 1.5 {
		t.Errorf("Gx setup = %v, want ~21 ns", gx.UDNSetupNs)
	}
	if math.Abs(pro.UDNSetupNs-18) > 1.5 {
		t.Errorf("Pro setup = %v, want ~18 ns", pro.UDNSetupNs)
	}
}

func TestValidateRejectsBadChips(t *testing.T) {
	mods := []struct {
		name string
		mod  func(*Chip)
	}{
		{"no name", func(c *Chip) { c.Name = "" }},
		{"bad grid", func(c *Chip) { c.GridW = 0 }},
		{"tile mismatch", func(c *Chip) { c.Tiles = 7 }},
		{"zero clock", func(c *Chip) { c.ClockHz = 0 }},
		{"bad word", func(c *Chip) { c.WordBytes = 5 }},
		{"short curve", func(c *Chip) { c.SharedCopy = c.SharedCopy[:1] }},
		{"unsorted curve", func(c *Chip) {
			c.SharedCopy = CopyCurve{{1024, 100}, {512, 100}}
		}},
		{"no UDN queues", func(c *Chip) { c.UDNQueues = 0 }},
	}
	for _, m := range mods {
		c := Gx8036()
		m.mod(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken chip", m.name)
		}
	}
}

func TestFamilyString(t *testing.T) {
	if TILEGx.String() != "TILE-Gx" || TILEPro.String() != "TILEPro" {
		t.Error("Family.String mismatch")
	}
	if !strings.Contains(Family(9).String(), "9") {
		t.Error("unknown family should print its value")
	}
}

func TestTableIIRendering(t *testing.T) {
	rows := TableII(Gx8036(), Pro64())
	if len(rows) != 10 {
		t.Fatalf("Table II has %d rows, want 10", len(rows))
	}
	for _, r := range rows {
		if len(r.Values) != 2 {
			t.Fatalf("row %q has %d values, want 2", r.Attribute, len(r.Values))
		}
	}
	text := FormatTableII(Gx8036(), Pro64())
	for _, want := range []string{
		"36 tiles of 64-bit VLIW processors",
		"64 tiles of 32-bit VLIW processors",
		"32k L1i, 32k L1d, 256k L2 cache per tile",
		"16k L1i, 8k L1d, 64k L2 cache per tile",
		"2 DDR3 memory controllers",
		"4 DDR2 memory controllers",
		"mPIPE for wire-speed packet processing",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Table II output missing %q", want)
		}
	}
}

// TestComputeCostOrdering checks the compute-model facts the case studies
// rely on: the TILEPro pays a large softfloat penalty, and the TILE-Gx is
// faster at integer work too ("the TILE-Gx36 has faster execution times in
// all cases", S V.B).
func TestComputeCostOrdering(t *testing.T) {
	gx, pro := Gx8036(), Pro64()
	if pro.FlopNs/gx.FlopNs < 4 {
		t.Errorf("softfloat penalty too small: pro %v vs gx %v ns/flop", pro.FlopNs, gx.FlopNs)
	}
	if pro.IntOpNs <= gx.IntOpNs {
		t.Errorf("Gx int op %v must be faster than Pro %v", gx.IntOpNs, pro.IntOpNs)
	}
	// The FP gap must be much larger than the integer gap (Figures 13/14).
	if (pro.FlopNs / gx.FlopNs) <= (pro.IntOpNs / gx.IntOpNs) {
		t.Error("FP gap should exceed integer gap")
	}
}
