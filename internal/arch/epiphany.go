package arch

import "tshmem/internal/vtime"

// The Epiphany models are calibrated from the two Ross & Richie papers in
// PAPERS.md: "An OpenSHMEM Implementation for the Adapteva Epiphany
// Coprocessor" (arXiv:1604.04205) and "Implementing OpenSHMEM for the
// Adapteva Epiphany RISC Array Processor" (arXiv:1608.03545), both using
// the Parallella board. The family differs from Tilera on exactly the axes
// TSHMEM's substrate parameterizes:
//
//   - Memory: 32 kB of flat local SRAM per core instead of caches, so the
//     "shared" copy curve is remote-scratchpad traffic over the on-chip
//     eMesh (fast, write-optimized) collapsing to the off-chip eLink floor
//     (~150 MB/s measured) once a working set spills off-chip.
//   - Network: a 2D eMesh with single-cycle-per-hop routers but no
//     receive-side interrupt dispatch, so the substrate takes the same
//     polled-servicer path as the TILEPro64 (UDNInterrupts=false).
//   - Atomics: the only hardware atomic is TESTSET; every fetch-op is a
//     TESTSET-guarded critical section (AtomicRMWEmulated), which is why
//     lock and counter-barrier crossovers move on this family.
//
// docs/ARCHITECTURES.md carries the full provenance table.

// EpiphanyIII returns the Epiphany-III (E16G301) model: 16 RISC cores in a
// 4x4 grid at 600 MHz, the chip on the Parallella board both papers
// evaluate.
//
// Calibration anchors:
//   - 32 kB local memory per core, no caches (arXiv:1604.04205 S II).
//   - eMesh: 64-bit on-chip write network, ~1.5 cycles/hop effective =>
//     2.5 ns/hop at 600 MHz; write setup ~9 ns from the measured
//     small-message put latency.
//   - Off-chip shared DRAM over the eLink measures ~150 MB/s
//     (arXiv:1604.04205 S IV), the large-transfer floor.
//   - On-chip DMA put bandwidth approaches ~1.4 GB/s per core for
//     scratchpad-resident payloads (arXiv:1608.03545 Fig. 4 regime).
//   - shmem_barrier_all on 16 cores ~1.5 us with the dissemination-style
//     barrier the papers describe.
func EpiphanyIII() *Chip {
	return &Chip{
		Name:   "Epiphany-III",
		Family: Epiphany,

		GridW: 4, GridH: 4, Tiles: 16,
		ClockHz:   600e6,
		WordBytes: 8, // 64-bit eMesh write network moves 8 bytes/cycle
		Is64Bit:   false,
		L1iBytes:  0,        // no instruction cache: code lives in the scratchpad
		L1dBytes:  32 << 10, // flat local SRAM per core (code + data)
		L2Bytes:   0,
		DynNets:   3, // cMesh (on-chip write), rMesh (read), xMesh (off-chip)
		MemCtrls:  1, // one eLink to the Zynq host's shared DRAM
		MemGbps:   4.8,
		MeshTbps:  0.8,
		PeakBOPS:  19.2, // 16 cores x 2 flops x 600 MHz
		PowerW:    "~2W",

		Scratchpad:        true,
		AtomicRMWEmulated: true,
		TestSetNs:         35, // one TESTSET probe of a remote scratchpad word

		UDNQueues:      4,
		UDNMaxWords:    64,
		UDNSetupNs:     9.0,
		UDNHopNs:       2.5,   // ~1.5 cycles/hop at 600 MHz
		UDNInterrupts:  false, // no receive-side dispatch: polled servicer path
		UDNInterruptNs: 0,
		UDNSendShare:   0.55,
		UDNSWForwardNs: 30,
		UDNSendCallNs:  120,

		BarrierArbiterNs: 40,

		// Remote-scratchpad eMesh writes while the working set stays
		// on-chip (<= 32 kB local memory), collapsing to the measured
		// ~150 MB/s eLink floor once it spills to shared DRAM.
		SharedCopy: CopyCurve{
			{64, 300},
			{1 << 10, 900},
			{8 << 10, 1300},
			{32 << 10, 1400},      // local-memory capacity knee
			{64 << 10, 600},       // spilling off-chip
			{256 << 10, 250},      //
			{1 << 20, 170},        //
			{16 << 20, 150},       // eLink floor
			{int64(1) << 40, 150}, // clamp
		},
		// Local scratchpad-to-scratchpad copies: the core and DMA engine
		// move 8 bytes/cycle flat until the working set leaves the chip.
		PrivateCopy: CopyCurve{
			{64, 800},
			{1 << 10, 1800},
			{8 << 10, 2300},
			{32 << 10, 2400},
			{64 << 10, 600},
			{256 << 10, 250},
			{1 << 20, 170},
			{16 << 20, 150},
			{int64(1) << 40, 150},
		},
		CopyCallNs: 60,

		ContLow:  0.04, // eMesh bisection absorbs on-chip concurrency well
		ContHigh: 0.25, // single eLink saturates hard off-chip
		ContKnee: 12,
		AtomicNs: 90, // emulated fetch-op critical section, sans TESTSET probes
		FenceNs:  25,

		SpinBarrier: BarrierModel{
			Base:    vtime.FromNs(200),
			PerTile: vtime.FromNs(90), // 200ns + 15*90ns ~ 1.55 us at 16 cores
		},
		// Bare-metal Epiphany has no OS scheduler; the "sync" model stands
		// in for a host-mediated barrier through shared DRAM.
		SyncBarrier: BarrierModel{
			Base:    vtime.FromNs(5_000),
			PerTile: vtime.FromNs(2_000),
		},

		FlopNs:          0.9, // dual-issue FPU at 600 MHz
		IntOpNs:         1.7, // single integer ALU
		ReduceElemNs:    28,
		RandomAccessNs:  320, // eMesh reads are round-trips, far slower than writes
		InterruptPollNs: 60,
	}
}

// EpiphanyIV returns the Epiphany-IV (E64G401) model: 64 cores in an 8x8
// grid at 800 MHz, the scaled sibling both papers cite. It shares the
// E16G301 microarchitecture; the clock raise moves the per-hop latency and
// the on-chip copy bandwidth by 800/600 while the eLink floor stays put.
func EpiphanyIV() *Chip {
	c := EpiphanyIII()
	c.Name = "Epiphany-IV"
	c.GridW, c.GridH, c.Tiles = 8, 8, 64
	c.ClockHz = 800e6
	c.UDNHopNs = 1.875 // ~1.5 cycles/hop at 800 MHz
	c.PeakBOPS = 102.4 // 64 cores x 2 flops x 800 MHz
	c.MeshTbps = 3.2
	c.PowerW = "~2W"
	c.ContKnee = 20
	scaleCurve(c.SharedCopy, 32<<10, 800.0/600.0)
	scaleCurve(c.PrivateCopy, 32<<10, 800.0/600.0)
	return c
}

// EpiphanyV returns a 1024-core Epiphany-V extrapolation: 32x32 grid at
// 1 GHz with 64 kB of local SRAM per 64-bit core, following the announced
// E5 specifications. Unlike the E-III/E-IV models it is not anchored in
// published OpenSHMEM measurements — docs/ARCHITECTURES.md flags every
// extrapolated constant — but it gives the sparse mesh layer a realistic
// 1024-tile target.
func EpiphanyV() *Chip {
	c := EpiphanyIII()
	c.Name = "Epiphany-V"
	c.GridW, c.GridH, c.Tiles = 32, 32, 1024
	c.ClockHz = 1e9
	c.Is64Bit = true
	c.L1dBytes = 64 << 10
	c.UDNHopNs = 1.5 // ~1.5 cycles/hop at 1 GHz
	c.PeakBOPS = 2048
	c.MeshTbps = 12.8
	c.MemCtrls = 2
	c.MemGbps = 9.6
	c.PowerW = "~20W (est.)"
	c.ContKnee = 48
	c.TestSetNs = 30
	scaleCurve(c.SharedCopy, 64<<10, 1000.0/600.0)
	scaleCurve(c.PrivateCopy, 64<<10, 1000.0/600.0)
	// 64 kB of local SRAM doubles the on-chip knee: stretch the anchor
	// grid so the capacity cliff sits at the local-memory size.
	c.SharedCopy[3].Size = 64 << 10
	c.SharedCopy[4].Size = 128 << 10
	c.PrivateCopy[3].Size = 64 << 10
	c.PrivateCopy[4].Size = 128 << 10
	return c
}

// scaleCurve multiplies the on-chip (size <= knee) anchors of a copy curve
// by f, leaving the off-chip floor anchors untouched. Used to derive the
// faster-clocked Epiphany siblings from the calibrated E-III curves.
func scaleCurve(curve CopyCurve, knee int64, f float64) {
	for i := range curve {
		if curve[i].Size <= knee {
			curve[i].MBs *= f
		}
	}
}
