package arch

import (
	"fmt"
	"strings"
)

// TableIIRow is one attribute row of the paper's Table II architecture
// comparison.
type TableIIRow struct {
	Attribute string
	Values    []string // one per chip, in the order passed to TableII
}

// TableII builds the paper's Table II ("Arch. comparison for TILE-Gx8036
// and TILEPro64") for an arbitrary set of chips.
func TableII(chips ...*Chip) []TableIIRow {
	row := func(attr string, f func(*Chip) string) TableIIRow {
		r := TableIIRow{Attribute: attr}
		for _, c := range chips {
			r.Values = append(r.Values, f(c))
		}
		return r
	}
	bits := func(c *Chip) string {
		if c.Is64Bit {
			return "64-bit"
		}
		return "32-bit"
	}
	return []TableIIRow{
		row("Tiles", func(c *Chip) string {
			if c.Family == Epiphany {
				return fmt.Sprintf("%d cores of %s dual-issue RISC processors", c.Tiles, bits(c))
			}
			return fmt.Sprintf("%d tiles of %s VLIW processors", c.Tiles, bits(c))
		}),
		row("Caches per tile", func(c *Chip) string {
			if c.Scratchpad {
				return fmt.Sprintf("%dk flat local SRAM per core (no caches)", c.L1dBytes>>10)
			}
			return fmt.Sprintf("%dk L1i, %dk L1d, %dk L2 cache per tile",
				c.L1iBytes>>10, c.L1dBytes>>10, c.L2Bytes>>10)
		}),
		row("Peak ops", func(c *Chip) string {
			return fmt.Sprintf("Up to %.0f billion operations per second", c.PeakBOPS)
		}),
		row("Mesh interconnect", func(c *Chip) string {
			return fmt.Sprintf("%.0f Tbps of on-chip mesh interconnect", c.MeshTbps)
		}),
		row("Memory bandwidth", func(c *Chip) string {
			return fmt.Sprintf("%.0f Gbps memory bandwidth", c.MemGbps)
		}),
		row("Frequency", func(c *Chip) string {
			return fmt.Sprintf("%.2g GHz operating frequency", c.ClockHz/1e9)
		}),
		row("Power", func(c *Chip) string { return c.PowerW }),
		row("Memory controllers", func(c *Chip) string {
			if c.Family == Epiphany {
				return fmt.Sprintf("%d eLink port(s) to shared host DRAM", c.MemCtrls)
			}
			gen := "DDR2"
			if c.Family == TILEGx || c.Family == SyntheticMesh {
				gen = "DDR3"
			}
			return fmt.Sprintf("%d %s memory controllers", c.MemCtrls, gen)
		}),
		row("mPIPE", func(c *Chip) string {
			if c.HasMPIPE {
				return "mPIPE for wire-speed packet processing"
			}
			return "-"
		}),
		row("MiCA", func(c *Chip) string {
			if c.HasMiCA {
				return "MiCA for crypto and compression"
			}
			return "-"
		}),
	}
}

// FormatTableII renders Table II as aligned text.
func FormatTableII(chips ...*Chip) string {
	rows := TableII(chips...)
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s", "Attribute")
	for _, c := range chips {
		fmt.Fprintf(&b, " | %-42s", c.Name)
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 20+len(chips)*45))
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s", r.Attribute)
		for _, v := range r.Values {
			fmt.Fprintf(&b, " | %-42s", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
