package arch

import (
	"strings"
	"testing"
)

// TestEpiphanyFacts pins the Epiphany family's architecture facts to the
// Ross & Richie papers (docs/ARCHITECTURES.md lists the provenance of
// each parameter).
func TestEpiphanyFacts(t *testing.T) {
	e3, e4, e5 := EpiphanyIII(), EpiphanyIV(), EpiphanyV()

	if e3.Tiles != 16 || e3.GridW != 4 || e3.GridH != 4 || e3.Is64Bit {
		t.Errorf("Epiphany-III geometry wrong: %+v", e3)
	}
	if e4.Tiles != 64 || e4.GridW != 8 || e4.GridH != 8 || e4.Is64Bit {
		t.Errorf("Epiphany-IV geometry wrong: %+v", e4)
	}
	if e5.Tiles != 1024 || e5.GridW != 32 || e5.GridH != 32 || !e5.Is64Bit {
		t.Errorf("Epiphany-V geometry wrong: %+v", e5)
	}
	if e3.ClockHz != 600e6 || e4.ClockHz != 800e6 || e5.ClockHz != 1e9 {
		t.Errorf("clocks wrong: %v / %v / %v", e3.ClockHz, e4.ClockHz, e5.ClockHz)
	}
	for _, c := range []*Chip{e3, e4, e5} {
		if c.Family != Epiphany {
			t.Errorf("%s: family %v, want Epiphany", c.Name, c.Family)
		}
		// Scratchpad cores: flat local SRAM, no cache hierarchy, no
		// native read-modify-write — only TESTSET.
		if !c.Scratchpad || c.L1iBytes != 0 || c.L2Bytes != 0 {
			t.Errorf("%s: not modeled as a scratchpad core: %+v", c.Name, c)
		}
		if !c.AtomicRMWEmulated || c.TestSetNs <= 0 {
			t.Errorf("%s: fetch-ops must be TESTSET-emulated", c.Name)
		}
		// The eMesh has no receive-interrupt path (like the TILEPro).
		if c.UDNInterrupts {
			t.Errorf("%s: eMesh cores have no UDN receive interrupts", c.Name)
		}
	}
	if e3.L1dBytes != 32<<10 || e4.L1dBytes != 32<<10 || e5.L1dBytes != 64<<10 {
		t.Errorf("local SRAM sizes wrong: %d / %d / %d", e3.L1dBytes, e4.L1dBytes, e5.L1dBytes)
	}
}

// TestEpiphanyRMWPremium checks that the emulated fetch-op cost exceeds
// the plain atomic service time by exactly the two TESTSET probes the
// software critical section pays (acquire + release).
func TestEpiphanyRMWPremium(t *testing.T) {
	e3 := EpiphanyIII()
	if e3.AtomicNs <= 0 || e3.TestSetNs <= 0 {
		t.Fatalf("Epiphany-III atomic costs not modeled: %+v", e3)
	}
	// Tilera chips must NOT be emulated: AtomicRMWCost == AtomicCost is
	// what keeps BENCH_baseline.json byte-identical (internal/cache).
	for _, c := range []*Chip{Gx8036(), Pro64(), Gx8016(), Pro36()} {
		if c.AtomicRMWEmulated {
			t.Errorf("%s: Tilera chips have native fetch-ops", c.Name)
		}
	}
}

// TestSyntheticChips checks the arbitrary-grid constructor and its
// ByName spelling, non-square grids included.
func TestSyntheticChips(t *testing.T) {
	c := Synthetic(64, 64)
	if c.Tiles != 4096 || c.GridW != 64 || c.GridH != 64 {
		t.Fatalf("Synthetic(64,64) = %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Synthetic(64,64) invalid: %v", err)
	}
	if c.Family != SyntheticMesh {
		t.Errorf("family %v, want synthetic", c.Family)
	}

	ns := Synthetic(8, 3)
	if ns.Tiles != 24 || ns.GridW != 8 || ns.GridH != 3 {
		t.Fatalf("Synthetic(8,3) = %+v", ns)
	}
	if err := ns.Validate(); err != nil {
		t.Fatalf("Synthetic(8,3) invalid: %v", err)
	}

	if got := ByName("synthetic-8x3"); got == nil || got.Tiles != 24 || got.GridW != 8 {
		t.Errorf("ByName(synthetic-8x3) = %+v", got)
	}
	if got := ByName("synthetic-1x1"); got == nil || got.Tiles != 1 {
		t.Errorf("ByName(synthetic-1x1) = %+v", got)
	}
	for _, bad := range []string{"synthetic-0x4", "synthetic--1x4", "synthetic-x", "synthetic-4"} {
		if got := ByName(bad); got != nil {
			t.Errorf("ByName(%q) = %+v, want nil", bad, got)
		}
	}

	// Degenerate dimensions clamp rather than crash.
	if got := Synthetic(0, -3); got.Tiles != 1 {
		t.Errorf("Synthetic(0,-3) clamped to %+v", got)
	}
}

// TestRegistryCoversNewFamilies locks the registry contents: every chip
// the docs advertise must resolve by name and validate (tshmem-info's
// default table enumerates exactly this list).
func TestRegistryCoversNewFamilies(t *testing.T) {
	want := []string{
		"TILE-Gx8036", "TILEPro64", "TILE-Gx8016", "TILEPro36",
		"Epiphany-III", "Epiphany-IV", "Epiphany-V",
	}
	chips := Chips()
	if len(chips) != len(want) {
		t.Fatalf("registry has %d chips, want %d", len(chips), len(want))
	}
	for i, name := range want {
		if chips[i].Name != name {
			t.Errorf("registry[%d] = %s, want %s", i, chips[i].Name, name)
		}
		if got := ByName(name); got == nil || got.Name != name {
			t.Errorf("ByName(%q) = %+v", name, got)
		}
	}
}

// TestTableIIEpiphanyRendering checks the family-aware Table II rows: no
// cache line or DDR3 controller claims for scratchpad eMesh chips.
func TestTableIIEpiphanyRendering(t *testing.T) {
	out := FormatTableII(EpiphanyIII())
	for _, wantSub := range []string{
		"flat local SRAM", "dual-issue RISC", "eLink",
	} {
		if !strings.Contains(out, wantSub) {
			t.Errorf("Epiphany Table II missing %q:\n%s", wantSub, out)
		}
	}
	for _, noSub := range []string{"L2 cache", "VLIW", "DDR3"} {
		if strings.Contains(out, noSub) {
			t.Errorf("Epiphany Table II wrongly claims %q:\n%s", noSub, out)
		}
	}
}
