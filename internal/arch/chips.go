package arch

import (
	"fmt"

	"tshmem/internal/vtime"
)

// Gx8036 returns the TILE-Gx8036 model: 36 tiles of 64-bit VLIW cores in a
// 6x6 grid at 1 GHz, as deployed in the paper's TILEmpower-Gx platform.
//
// Calibration anchors (all from the paper):
//   - Figure 3: shared-memory memcpy tops ~3100 MB/s in L1d (32 kB knee),
//     1900-2700 MB/s in L2 (256 kB knee), ~1000 MB/s in the L3 DDC region,
//     converging to 320 MB/s memory-to-memory.
//   - Table III: UDN one-way latency 21-22 ns neighbors, 25-26 ns
//     side-to-side, 31-32 ns corners => setup-and-teardown ~21 ns plus
//     1 ns/hop at 1 GHz.
//   - Figure 5: TMC spin barrier 1.5 us and sync barrier 321 us at 36 tiles.
//   - Figure 10: pull-broadcast aggregate bandwidth peaks at 46 GB/s at 29
//     tiles and drops to 37 GB/s at 36 (contention knee at ~28 streams).
//   - Figure 13: 2D-FFT at 32 tiles takes 0.23 s with speedup leveling at
//     ~5 (flop cost + serialized final transpose).
func Gx8036() *Chip {
	return &Chip{
		Name:   "TILE-Gx8036",
		Family: TILEGx,

		GridW: 6, GridH: 6, Tiles: 36,
		ClockHz:   1.0e9,
		WordBytes: 8,
		Is64Bit:   true,
		L1iBytes:  32 << 10,
		L1dBytes:  32 << 10,
		L2Bytes:   256 << 10,
		DynNets:   5,
		MemCtrls:  2,
		MemGbps:   500,
		MeshTbps:  60,
		PeakBOPS:  750,
		PowerW:    "10 to 55W",
		HasMPIPE:  true,
		HasMiCA:   true,

		MPIPELinks:     4,    // 4x10GbE on the TILEmpower-Gx front panel
		MPIPELinkGbps:  10,   // wire-speed per link via mPIPE
		MPIPELatencyNs: 1800, // classification + 10GbE wire + delivery

		UDNQueues:        4,
		UDNMaxWords:      127,
		UDNSetupNs:       21.0,
		UDNInterrupts:    true,
		UDNInterruptNs:   110, // interrupt entry + handler dispatch on the remote tile
		UDNSendShare:     0.55,
		UDNSWForwardNs:   15,
		UDNSendCallNs:    100, // standalone send call: header build + queue setup (not pipelined)
		BarrierArbiterNs: 25,

		// Figure 3 anchors. The private (heap-to-heap) curve runs slightly
		// ahead of the shared curve at small sizes and converges with it in
		// the memory-to-memory regime.
		SharedCopy: CopyCurve{
			{64, 1400},
			{1 << 10, 2600},
			{8 << 10, 3100},       // L1d-resident plateau
			{32 << 10, 3100},      // L1d capacity knee
			{64 << 10, 2700},      // upper L2 band
			{256 << 10, 1900},     // L2 capacity knee
			{512 << 10, 1250},     // spilling into the DDC
			{1 << 20, 1000},       // L3 DDC regime
			{4 << 20, 500},        // exceeding nearby tiles' L2 via DDC
			{16 << 20, 340},       //
			{64 << 20, 320},       // memory-to-memory floor
			{int64(1) << 40, 320}, // clamp
		},
		PrivateCopy: CopyCurve{
			{64, 1600},
			{1 << 10, 2900},
			{8 << 10, 3400},
			{32 << 10, 3400},
			{64 << 10, 2900},
			{256 << 10, 2000},
			{512 << 10, 1300},
			{1 << 20, 1050},
			{4 << 20, 520},
			{16 << 20, 345},
			{64 << 20, 320},
			{int64(1) << 40, 320},
		},
		CopyCallNs: 55,

		ContLow:  0.030, // per-extra-stream slowdown below the knee
		ContHigh: 0.150, // extra penalty beyond mesh/home-tile saturation
		ContKnee: 28,    // aggregate peaks near 29 tiles (Figure 10)
		AtomicNs: 45,
		FenceNs:  12,

		SpinBarrier: BarrierModel{
			Base:    vtime.FromNs(60),
			PerTile: vtime.FromNs(41), // 60ns + 35*41ns ~ 1.50 us at 36 tiles
		},
		SyncBarrier: BarrierModel{
			Base:    vtime.FromNs(12_000),
			PerTile: vtime.FromNs(8_830), // 12us + 35*8.83us ~ 321 us at 36 tiles
		},

		FlopNs:          9.0, // ~9 cycles/flop: limited FP hardware on Gx
		IntOpNs:         0.6, // 3-way VLIW integer issue
		ReduceElemNs:    22,  // type-dispatched fold loop; pins Figure 12 at ~150 MB/s
		RandomAccessNs:  190, // dependent remote-cache access (transpose)
		InterruptPollNs: 50,
	}
}

// Pro64 returns the TILEPro64 model: 64 tiles of 32-bit VLIW cores in an
// 8x8 grid at 700 MHz, the paper's TILEncorePro-64 PCIe platform.
//
// Calibration anchors:
//   - Figure 3: memcpy stable near 500 MB/s through the cache sizes,
//     converging to 370 MB/s memory-to-memory (faster than the Gx floor).
//   - Table III: 18-19 ns neighbors, 24-25 ns side-to-side, 33 ns corners
//     => setup-and-teardown ~17.5 ns plus 1.43 ns/hop at 700 MHz.
//   - Figure 5: TMC spin barrier 47.2 us, sync 786 us at 36 tiles.
//   - Figure 8: TSHMEM UDN barrier ~3 us at 36 tiles.
//   - Figure 10: pull-broadcast aggregate peaks at 5.1 GB/s at 36 tiles
//     (still rising at 36, so no saturation knee inside the test area).
//   - Figures 13/14: software-emulated floating point makes the 2D-FFT
//     roughly an order of magnitude slower than TILE-Gx, while integer
//     CBIR is competitive.
func Pro64() *Chip {
	return &Chip{
		Name:   "TILEPro64",
		Family: TILEPro,

		GridW: 8, GridH: 8, Tiles: 64,
		ClockHz:    700e6,
		WordBytes:  4,
		Is64Bit:    false,
		L1iBytes:   16 << 10,
		L1dBytes:   8 << 10,
		L2Bytes:    64 << 10,
		DynNets:    4,
		StaticNets: 1,
		MemCtrls:   4,
		MemGbps:    200,
		MeshTbps:   37,
		PeakBOPS:   443,
		PowerW:     "19 to 23W @ 700 MHz",

		UDNQueues:      4,
		UDNMaxWords:    127,
		UDNSetupNs:     16.9,
		UDNHopNs:       1.61,  // fitted to Table III: 18.5/24.9/33 ns at 1/5/10 hops
		UDNInterrupts:  false, // no UDN interrupt support (paper S IV.B.2)
		UDNInterruptNs: 0,
		UDNSendShare:   0.55,
		UDNSWForwardNs: 22,
		UDNSendCallNs:  140,

		BarrierArbiterNs: 36,

		// Figure 3: flat near 500 MB/s through L1d/L2, 370 MB/s floor.
		SharedCopy: CopyCurve{
			{64, 300},
			{1 << 10, 470},
			{8 << 10, 500},        // L1d knee (8 kB)
			{64 << 10, 495},       // L2 knee (64 kB)
			{256 << 10, 470},      //
			{1 << 20, 430},        // leaving the DDC
			{4 << 20, 385},        //
			{16 << 20, 370},       // memory-to-memory floor (above Gx's 320)
			{int64(1) << 40, 370}, // clamp
		},
		PrivateCopy: CopyCurve{
			{64, 330},
			{1 << 10, 500},
			{8 << 10, 530},
			{64 << 10, 520},
			{256 << 10, 490},
			{1 << 20, 445},
			{4 << 20, 392},
			{16 << 20, 372},
			{int64(1) << 40, 370},
		},
		CopyCallNs: 80,

		ContLow:  0.072, // 500 MB/s single-stream -> ~5.1 GB/s aggregate at 36
		ContHigh: 0,     // no saturation knee inside the 6x6 test area
		ContKnee: 64,
		AtomicNs: 70,
		FenceNs:  20,

		SpinBarrier: BarrierModel{
			Base:    vtime.FromNs(250),
			PerTile: vtime.FromNs(1_341), // 0.25us + 35*1.341us ~ 47.2 us at 36
		},
		SyncBarrier: BarrierModel{
			Base:    vtime.FromNs(25_000),
			PerTile: vtime.FromNs(21_740), // 25us + 35*21.74us ~ 786 us at 36
		},

		FlopNs:          55.0, // software-emulated floating point
		IntOpNs:         1.8,
		ReduceElemNs:    45,
		RandomAccessNs:  400,
		InterruptPollNs: 70,
	}
}

// Gx8016 returns the 16-core TILE-Gx16 variant (4x4 grid). It shares the
// Gx8036 microarchitecture and model constants.
func Gx8016() *Chip {
	c := Gx8036()
	c.Name = "TILE-Gx8016"
	c.GridW, c.GridH, c.Tiles = 4, 4, 16
	c.PeakBOPS = 333
	c.MeshTbps = 26
	return c
}

// Pro36 returns the 36-core TILEPro36 variant (6x6 grid).
func Pro36() *Chip {
	c := Pro64()
	c.Name = "TILEPro36"
	c.GridW, c.GridH, c.Tiles = 6, 6, 36
	c.PeakBOPS = 249
	c.MeshTbps = 21
	return c
}

// Chips returns the full catalogue of modeled processors. Synthetic
// meshes are constructed on demand by Synthetic and are not listed.
func Chips() []*Chip {
	return []*Chip{Gx8036(), Pro64(), Gx8016(), Pro36(), EpiphanyIII(), EpiphanyIV(), EpiphanyV()}
}

// ByName returns the chip model with the given name, or nil. Beyond the
// catalogue, names of the form "synthetic-WxH" (e.g. "synthetic-64x64")
// construct the matching Synthetic mesh.
func ByName(name string) *Chip {
	for _, c := range Chips() {
		if c.Name == name {
			return c
		}
	}
	var w, h int
	if n, err := fmt.Sscanf(name, "synthetic-%dx%d", &w, &h); err == nil && n == 2 && w > 0 && h > 0 {
		return Synthetic(w, h)
	}
	return nil
}
