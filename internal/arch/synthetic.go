package arch

import "fmt"

// Synthetic returns a w x h mesh carrying the TILE-Gx8036 calibration: an
// imaginary scaled-up (or oddly-shaped) Tilera part for scaling studies
// past any physical catalogue chip. Non-square grids are first-class — the
// XY-routed mesh, the barrier algorithms, and the sparse link accounting
// all take Width and Height independently. Dimensions are clamped to at
// least 1.
//
// Per-tile constants (clock, caches, copy curves, UDN latency terms) are
// Gx8036's unchanged: a synthetic tile IS a Gx tile. Whole-chip figures
// scale with the tile count — aggregate bandwidth, peak ops, and the
// contention knee (Figure 10's saturation point moves with the mesh
// bisection, ~28 streams per 36 tiles). Synthetic chips are constructed on
// demand and are not part of the Chips() catalogue, but ByName resolves
// the "synthetic-WxH" naming scheme so command-line -chip flags can reach
// them.
func Synthetic(w, h int) *Chip {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	c := Gx8036()
	tiles := w * h
	c.Name = fmt.Sprintf("synthetic-%dx%d", w, h)
	c.Family = SyntheticMesh
	c.GridW, c.GridH, c.Tiles = w, h, tiles
	c.PeakBOPS = Gx8036().PeakBOPS * float64(tiles) / 36
	c.MeshTbps = Gx8036().MeshTbps * float64(tiles) / 36
	c.MemGbps = Gx8036().MemGbps * float64(tiles) / 36
	c.PowerW = "(synthetic)"
	c.ContKnee = tiles * 28 / 36
	if c.ContKnee < 2 {
		c.ContKnee = 2
	}
	return c
}
