package cbir

import (
	"testing"
	"testing/quick"

	"tshmem/internal/arch"
	"tshmem/internal/core"
)

func smallParams() Params {
	return Params{Size: 32, Colors: 16, Dists: []int{1, 3}}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := []Params{
		{Size: 4, Colors: 16, Dists: []int{1}},
		{Size: 32, Colors: 1, Dists: []int{1}},
		{Size: 32, Colors: 300, Dists: []int{1}},
		{Size: 32, Colors: 16, Dists: nil},
		{Size: 32, Colors: 16, Dists: []int{0}},
		{Size: 32, Colors: 16, Dists: []int{16}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	p := DefaultParams()
	if p.FeatureLen() != 64*4 {
		t.Errorf("FeatureLen = %d", p.FeatureLen())
	}
	if p.OpsPerImage() < 128*128*4*8 {
		t.Errorf("OpsPerImage = %d suspiciously low", p.OpsPerImage())
	}
}

func TestSynthImage(t *testing.T) {
	p := smallParams()
	a := SynthImage(7, p)
	b := SynthImage(7, p)
	if len(a) != p.Size*p.Size {
		t.Fatalf("image size %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SynthImage not deterministic")
		}
		if int(a[i]) >= p.Colors {
			t.Fatalf("pixel %d has color %d >= %d", i, a[i], p.Colors)
		}
	}
	// Different ids differ.
	c := SynthImage(8, p)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("distinct ids produced identical images")
	}
}

func TestCorrelogramProperties(t *testing.T) {
	p := smallParams()
	img := SynthImage(3, p)
	feat, err := Correlogram(img, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(feat) != p.FeatureLen() {
		t.Fatalf("feature length %d", len(feat))
	}
	for i, v := range feat {
		if v < 0 || v > 1 {
			t.Errorf("feature[%d] = %v outside [0,1]", i, v)
		}
	}
	// A constant image autocorrelates perfectly at its own color.
	mono := make([]uint8, p.Size*p.Size)
	for i := range mono {
		mono[i] = 5
	}
	feat, err = Correlogram(mono, p)
	if err != nil {
		t.Fatal(err)
	}
	nd := len(p.Dists)
	for di := 0; di < nd; di++ {
		if feat[5*nd+di] != 1 {
			t.Errorf("constant image: corr(c=5,d=%d) = %v, want 1", p.Dists[di], feat[5*nd+di])
		}
	}
	for c := 0; c < p.Colors; c++ {
		if c == 5 {
			continue
		}
		for di := 0; di < nd; di++ {
			if feat[c*nd+di] != 0 {
				t.Errorf("constant image: corr(c=%d) = %v, want 0", c, feat[c*nd+di])
			}
		}
	}
	// Validation.
	if _, err := Correlogram(mono[:10], p); err == nil {
		t.Error("short image accepted")
	}
	mono[0] = 200
	if _, err := Correlogram(mono, p); err == nil {
		t.Error("out-of-palette color accepted")
	}
}

func TestCorrelogramIsIdentityInvariant(t *testing.T) {
	// Property: the feature of an image equals the feature of the same
	// image (stability), and self-distance is zero.
	p := smallParams()
	f := func(idRaw uint8) bool {
		img := SynthImage(int(idRaw), p)
		f1, err1 := Correlogram(img, p)
		f2, err2 := Correlogram(img, p)
		if err1 != nil || err2 != nil {
			return false
		}
		return L1(f1, f2) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestL1(t *testing.T) {
	a := []float32{0, 1, 0.5}
	b := []float32{1, 0, 0.5}
	if got := L1(a, b); got != 2 {
		t.Errorf("L1 = %v, want 2", got)
	}
	if L1(a, a) != 0 {
		t.Error("self distance nonzero")
	}
}

func TestRank(t *testing.T) {
	const num, fl = 10, 4
	db := make([]float32, num*fl)
	for id := 0; id < num; id++ {
		for j := 0; j < fl; j++ {
			db[id*fl+j] = float32(id)
		}
	}
	query := []float32{3, 3, 3, 3}
	top := Rank(db, query, num, 3)
	if len(top) != 3 {
		t.Fatalf("got %d matches", len(top))
	}
	if top[0].ID != 3 || top[0].Distance != 0 {
		t.Errorf("best match %+v, want id 3 at distance 0", top[0])
	}
	// Next two are ids 2 and 4 (distance 4 each).
	if top[1].Distance != 4 || top[2].Distance != 4 {
		t.Errorf("runner-up distances: %+v", top[1:])
	}
	// Ordered by distance.
	for i := 1; i < len(top); i++ {
		if top[i].Distance < top[i-1].Distance {
			t.Error("matches out of order")
		}
	}
}

// TestRetrievalFindsFamily: the nearest neighbors of a query are its
// synthetic family members, i.e. retrieval semantics actually work.
func TestRetrievalFindsFamily(t *testing.T) {
	p := smallParams()
	const num = 64 // 16 families of 4
	fl := p.FeatureLen()
	db := make([]float32, num*fl)
	for id := 0; id < num; id++ {
		f, err := Correlogram(SynthImage(id, p), p)
		if err != nil {
			t.Fatal(err)
		}
		copy(db[id*fl:], f)
	}
	const queryID = 21 // family 5: ids 20..23
	query := db[queryID*fl : (queryID+1)*fl]
	top := Rank(db, query, num, 4)
	if top[0].ID != queryID {
		t.Errorf("best match %d, want the query itself", top[0].ID)
	}
	sameFamily := 0
	for _, m := range top {
		if m.ID/4 == queryID/4 {
			sameFamily++
		}
	}
	if sameFamily < 2 {
		t.Errorf("only %d of top-4 from the query's family: %+v", sameFamily, top)
	}
}

func TestDistributedMatchesSerial(t *testing.T) {
	p := smallParams()
	const num, queryID, topK = 40, 13, 5

	// Serial reference.
	fl := p.FeatureLen()
	db := make([]float32, num*fl)
	for id := 0; id < num; id++ {
		f, err := Correlogram(SynthImage(id, p), p)
		if err != nil {
			t.Fatal(err)
		}
		copy(db[id*fl:], f)
	}
	qf, err := Correlogram(SynthImage(queryID, p), p)
	if err != nil {
		t.Fatal(err)
	}
	want := Rank(db, qf, num, topK)

	for _, pes := range []int{1, 3, 8} {
		var got []Match
		cfg := core.Config{Chip: arch.Gx8036(), NPEs: pes, HeapPerPE: 1 << 20}
		if _, err := core.Run(cfg, func(pe *core.PE) error {
			res, err := Distributed(pe, num, queryID, topK, p)
			if err != nil {
				return err
			}
			if pe.MyPE() == 0 {
				got = res.Top
			}
			return nil
		}); err != nil {
			t.Fatalf("pes=%d: %v", pes, err)
		}
		if len(got) != topK {
			t.Fatalf("pes=%d: %d matches", pes, len(got))
		}
		for i := range want {
			if got[i].ID != want[i].ID {
				t.Errorf("pes=%d: rank %d = image %d, want %d", pes, i, got[i].ID, want[i].ID)
			}
		}
	}
}

// TestDistributedSpeedupShape reproduces Figure 14's structure at reduced
// scale: near-linear speedup (integer workload, tiny serial tail), the
// TILE-Gx faster in absolute terms, and the TILEPro with equal or better
// relative speedup.
func TestDistributedSpeedupShape(t *testing.T) {
	p := smallParams()
	const num = 128
	run := func(chip *arch.Chip, pes int) float64 {
		var sec float64
		cfg := core.Config{Chip: chip, NPEs: pes, HeapPerPE: 1 << 20}
		if _, err := core.Run(cfg, func(pe *core.PE) error {
			res, err := Distributed(pe, num, 0, 3, p)
			if err != nil {
				return err
			}
			if pe.MyPE() == 0 {
				sec = res.Elapsed.Seconds()
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return sec
	}
	gx1, gx16 := run(arch.Gx8036(), 1), run(arch.Gx8036(), 16)
	pro1, pro16 := run(arch.Pro64(), 1), run(arch.Pro64(), 16)
	gxSp, proSp := gx1/gx16, pro1/pro16
	if gxSp < 8 {
		t.Errorf("Gx speedup at 16 tiles = %.1f, want near-linear", gxSp)
	}
	if proSp < gxSp*0.95 {
		t.Errorf("Pro speedup (%.1f) should match or beat Gx (%.1f), as in Figure 14", proSp, gxSp)
	}
	if gx16 >= pro16 {
		t.Errorf("Gx (%.4fs) should be absolutely faster than Pro (%.4fs)", gx16, pro16)
	}
}

func TestDistributedValidation(t *testing.T) {
	cfg := core.Config{Chip: arch.Gx8036(), NPEs: 4, HeapPerPE: 1 << 20}
	if _, err := core.Run(cfg, func(pe *core.PE) error {
		if _, err := Distributed(pe, 2, 0, 1, smallParams()); err == nil {
			t.Error("fewer images than PEs accepted")
		}
		if _, err := Distributed(pe, 8, 99, 1, smallParams()); err == nil {
			t.Error("bad query id accepted")
		}
		bad := smallParams()
		bad.Dists = nil
		if _, err := Distributed(pe, 8, 0, 1, bad); err == nil {
			t.Error("bad params accepted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
