// Package cbir implements the content-based image retrieval case study of
// the paper's Section V.B: color-feature extraction with the
// autocorrelogram of Huang et al. (CVPR 1997), a synthetic image corpus
// standing in for the paper's 22,000-image database, and query ranking.
//
// The autocorrelogram of an image estimates, for each quantized color c and
// distance d, the probability that a pixel at L-infinity distance d from a
// color-c pixel also has color c. It is an integer-dominated workload,
// which is why both Tilera generations scale almost linearly on it
// (Figure 14).
package cbir

import (
	"fmt"
	"math"
)

// Params configures feature extraction.
type Params struct {
	Size   int   // square image edge, pixels (paper: 128)
	Colors int   // quantized color count (power of two <= 256)
	Dists  []int // correlogram distances (Huang et al. use {1,3,5,7})
}

// DefaultParams returns the paper-scale configuration: 128x128 8-bit
// images, 64 quantized colors, distances {1,3,5,7}.
func DefaultParams() Params {
	return Params{Size: 128, Colors: 64, Dists: []int{1, 3, 5, 7}}
}

// Validate checks the parameter set.
func (p Params) Validate() error {
	if p.Size < 8 {
		return fmt.Errorf("cbir: image size %d too small", p.Size)
	}
	if p.Colors < 2 || p.Colors > 256 {
		return fmt.Errorf("cbir: %d colors out of range", p.Colors)
	}
	if len(p.Dists) == 0 {
		return fmt.Errorf("cbir: no correlogram distances")
	}
	for _, d := range p.Dists {
		if d < 1 || d >= p.Size/2 {
			return fmt.Errorf("cbir: distance %d out of range for %d-pixel images", d, p.Size)
		}
	}
	return nil
}

// FeatureLen reports the feature-vector length: Colors x len(Dists).
func (p Params) FeatureLen() int { return p.Colors * len(p.Dists) }

// OpsPerImage reports the integer-operation count charged for extracting
// one image's feature: each pixel samples 8 ring points per distance, plus
// the normalization pass.
func (p Params) OpsPerImage() int64 {
	pixels := int64(p.Size) * int64(p.Size)
	return pixels*int64(len(p.Dists))*8 + int64(p.FeatureLen())*2
}

// SynthImage generates the id-th image of the synthetic corpus: a
// deterministic composition of colored rectangles, radial gradients, and
// speckle, quantized to p.Colors levels. Images with nearby ids share
// structure (same family), making retrieval meaningful: the nearest
// neighbors of a query are its family members.
func SynthImage(id int, p Params) []uint8 {
	n := p.Size
	img := make([]uint8, n*n)
	family := id / 4 // four variants per family
	variant := id % 4
	rng := splitmix(uint64(family)*0x9E3779B9 + 0x1234)

	// Family-level structure: base gradient direction and palette.
	base := int(rng() % uint64(p.Colors))
	gradX := int(rng()%5) - 2
	gradY := int(rng()%5) - 2
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			v := base + (gradX*x+gradY*y)/8
			img[y*n+x] = uint8(mod(v, p.Colors))
		}
	}
	// Family rectangles.
	for r := 0; r < 6; r++ {
		color := uint8(rng() % uint64(p.Colors))
		x0 := int(rng() % uint64(n))
		y0 := int(rng() % uint64(n))
		w := int(rng()%uint64(n/4)) + 4
		h := int(rng()%uint64(n/4)) + 4
		for y := y0; y < y0+h && y < n; y++ {
			for x := x0; x < x0+w && x < n; x++ {
				img[y*n+x] = color
			}
		}
	}
	// Variant-level perturbation: a small rectangle and sparse speckle.
	vr := splitmix(uint64(id)*0x517CC1B7 + 7)
	color := uint8(vr() % uint64(p.Colors))
	x0, y0 := int(vr()%uint64(n)), int(vr()%uint64(n))
	for y := y0; y < y0+n/8 && y < n; y++ {
		for x := x0; x < x0+n/8 && x < n; x++ {
			img[y*n+x] = color
		}
	}
	for s := 0; s < n*n/64; s++ {
		pos := vr() % uint64(n*n)
		img[pos] = uint8(vr() % uint64(p.Colors))
		_ = variant
	}
	return img
}

// Correlogram extracts the autocorrelogram feature of img: for each color c
// and distance d, the fraction of ring samples around color-c pixels that
// are also color c. The returned vector has length p.FeatureLen(), indexed
// color-major (feature[c*len(Dists)+di]).
func Correlogram(img []uint8, p Params) ([]float32, error) {
	n := p.Size
	if len(img) != n*n {
		return nil, fmt.Errorf("cbir: image has %d pixels, want %d", len(img), n*n)
	}
	nd := len(p.Dists)
	match := make([]uint32, p.Colors*nd)
	total := make([]uint32, p.Colors*nd)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			c := int(img[y*n+x])
			if c >= p.Colors {
				return nil, fmt.Errorf("cbir: pixel color %d exceeds %d levels", c, p.Colors)
			}
			for di, d := range p.Dists {
				idx := c*nd + di
				// Eight points of the L-infinity ring at distance d.
				for _, off := range [8][2]int{
					{d, 0}, {-d, 0}, {0, d}, {0, -d},
					{d, d}, {d, -d}, {-d, d}, {-d, -d},
				} {
					nx, ny := x+off[0], y+off[1]
					if nx < 0 || nx >= n || ny < 0 || ny >= n {
						continue
					}
					total[idx]++
					if int(img[ny*n+nx]) == c {
						match[idx]++
					}
				}
			}
		}
	}
	feat := make([]float32, p.FeatureLen())
	for i := range feat {
		if total[i] > 0 {
			feat[i] = float32(match[i]) / float32(total[i])
		}
	}
	return feat, nil
}

// L1 reports the Manhattan distance between two feature vectors, the
// similarity measure of the case study.
func L1(a, b []float32) float64 {
	var sum float64
	for i := range a {
		sum += math.Abs(float64(a[i] - b[i]))
	}
	return sum
}

// Match is one retrieval result.
type Match struct {
	ID       int
	Distance float64
}

// Rank scans the database features (numImages x FeatureLen, row-major) and
// returns the k nearest images to the query feature, best first.
func Rank(db []float32, query []float32, numImages, k int) []Match {
	fl := len(query)
	best := make([]Match, 0, k+1)
	for id := 0; id < numImages; id++ {
		d := L1(db[id*fl:(id+1)*fl], query)
		if len(best) < k || d < best[len(best)-1].Distance {
			best = append(best, Match{ID: id, Distance: d})
			for i := len(best) - 1; i > 0 && best[i].Distance < best[i-1].Distance; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	return best
}

func splitmix(seed uint64) func() uint64 {
	return func() uint64 {
		seed += 0x9E3779B97F4A7C15
		z := seed
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
}

func mod(v, m int) int {
	v %= m
	if v < 0 {
		v += m
	}
	return v
}
