package cbir

import (
	"fmt"

	"tshmem/internal/core"
	"tshmem/internal/vtime"
)

// Result reports one PE's view of a distributed CBIR run.
type Result struct {
	NumImages int
	PEs       int
	Elapsed   vtime.Duration // virtual time from aligned start to completion
	Top       []Match        // query results; non-nil only on PE 0
}

// BlockBytes reports the symmetric-heap bytes one PE needs for its feature
// block, for sizing Config.HeapPerPE.
func BlockBytes(numImages, npes int, p Params) int64 {
	perPE := (numImages + npes - 1) / npes
	return int64(perPE) * int64(p.FeatureLen()) * 4
}

// Distributed runs the paper's CBIR case study across all PEs: the image
// database is block-partitioned, each PE extracts the autocorrelogram
// features of its images into a symmetric block, PE 0 gathers the blocks
// (a one-sided get per PE, streaming the whole database through the root),
// and PE 0 ranks the database against a query image. Image synthesis is
// untimed (the paper's database resides on disk); feature extraction,
// collection, and ranking are timed.
//
// The root-serialized collection and ranking form the small serial
// fraction that holds speedup to ~25-27 at 32 tiles (Figure 14).
func Distributed(pe *core.PE, numImages, queryID, topK int, p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	n := pe.NumPEs()
	if numImages < n {
		return Result{}, fmt.Errorf("cbir: %d images over %d PEs", numImages, n)
	}
	if queryID < 0 || queryID >= numImages {
		return Result{}, fmt.Errorf("cbir: query id %d out of range", queryID)
	}
	fl := p.FeatureLen()
	me := pe.MyPE()

	// Block partition: PE k owns [lo(k), lo(k+1)).
	lo := func(k int) int { return k * numImages / n }
	mine := lo(me+1) - lo(me)

	perPE := (numImages + n - 1) / n
	block, err := core.Malloc[float32](pe, perPE*fl)
	if err != nil {
		return Result{}, err
	}
	defer core.Free(pe, block)

	// Untimed: synthesize my images (the corpus "on disk").
	images := make([][]uint8, mine)
	for i := range images {
		images[i] = SynthImage(lo(me)+i, p)
	}
	var query []uint8
	if me == 0 {
		query = SynthImage(queryID, p)
	}

	if err := pe.AlignClocks(); err != nil {
		return Result{}, err
	}
	start := pe.Now()

	// Feature extraction over my block (the parallel bulk of the run).
	blk := core.MustLocal(pe, block)
	for i, img := range images {
		feat, err := Correlogram(img, p)
		if err != nil {
			return Result{}, err
		}
		copy(blk[i*fl:(i+1)*fl], feat)
		pe.ComputeIntOps(p.OpsPerImage())
	}
	if err := pe.BarrierAll(); err != nil {
		return Result{}, err
	}

	// Serialized tail on the root: gather every block into private memory
	// (the whole database streams through the root's cache), extract the
	// query feature, and scan.
	var top []Match
	if me == 0 {
		db := make([]float32, numImages*fl)
		ws := int64(numImages) * int64(fl) * 4
		for q := 0; q < n; q++ {
			qn := lo(q+1) - lo(q)
			if qn == 0 {
				continue
			}
			if err := core.GetSlice(pe, db[lo(q)*fl:lo(q+1)*fl], block.Slice(0, qn*fl), q); err != nil {
				return Result{}, err
			}
			pe.ChargeStream(int64(qn)*int64(fl)*4, ws)
		}
		qf, err := Correlogram(query, p)
		if err != nil {
			return Result{}, err
		}
		pe.ComputeIntOps(p.OpsPerImage())
		top = Rank(db, qf, numImages, topK)
		pe.ComputeIntOps(int64(numImages) * int64(fl) * 3) // |a-b|, accumulate, compare
	}
	if err := pe.BarrierAll(); err != nil {
		return Result{}, err
	}
	return Result{NumImages: numImages, PEs: n, Elapsed: pe.Now().Sub(start), Top: top}, nil
}
