package cbir

import (
	"testing"

	"tshmem/internal/arch"
	"tshmem/internal/core"
)

// TestDistributedAcrossChips runs CBIR on the mPIPE multi-chip extension:
// the root's feature gather crosses the chip boundary; the ranking must be
// identical to the single-chip run.
func TestDistributedAcrossChips(t *testing.T) {
	p := smallParams()
	const num, queryID, topK = 48, 7, 5
	var want, got []Match
	for _, chips := range []int{1, 2} {
		cfg := core.Config{Chip: arch.Gx8036(), NPEs: 8, NChips: chips, HeapPerPE: 1 << 20}
		_, err := core.Run(cfg, func(pe *core.PE) error {
			res, err := Distributed(pe, num, queryID, topK, p)
			if err != nil {
				return err
			}
			if pe.MyPE() == 0 {
				if chips == 1 {
					want = res.Top
				} else {
					got = res.Top
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("chips=%d: %v", chips, err)
		}
	}
	if len(want) != topK || len(got) != topK {
		t.Fatalf("result sizes: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i].ID != got[i].ID {
			t.Errorf("rank %d differs across chip counts: %d vs %d", i, want[i].ID, got[i].ID)
		}
	}
}
