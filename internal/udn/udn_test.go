package udn

import (
	"errors"
	"math"
	"sync"
	"testing"

	"tshmem/internal/arch"
	"tshmem/internal/mesh"
	"tshmem/internal/vtime"
)

func gxNet(t *testing.T) *Network {
	t.Helper()
	geo, err := mesh.NewGeometry(arch.Gx8036(), 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	return New(geo)
}

func proNet(t *testing.T) *Network {
	t.Helper()
	geo, err := mesh.NewGeometry(arch.Pro64(), 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	return New(geo)
}

func port(t *testing.T, n *Network, cpu int) *Port {
	t.Helper()
	p, err := n.Port(cpu)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPortLookup(t *testing.T) {
	n := gxNet(t)
	if n.Tiles() != 36 {
		t.Fatalf("Tiles = %d, want 36", n.Tiles())
	}
	if _, err := n.Port(-1); err == nil {
		t.Error("negative CPU accepted")
	}
	if _, err := n.Port(36); err == nil {
		t.Error("out-of-range CPU accepted")
	}
	if p := port(t, n, 7); p.CPU() != 7 {
		t.Errorf("CPU() = %d, want 7", p.CPU())
	}
}

func TestSendRecvDelivers(t *testing.T) {
	n := gxNet(t)
	defer n.Close()
	var sc, rc vtime.Clock
	sender, receiver := port(t, n, 14), port(t, n, 13)

	if err := sender.Send(&sc, 13, 2, 0xBEEF, []uint64{42, 43}); err != nil {
		t.Fatal(err)
	}
	pkt, err := receiver.Recv(&rc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Src != 14 || pkt.Tag != 0xBEEF || pkt.Len() != 2 || pkt.Word(0) != 42 {
		t.Errorf("packet corrupted: %+v", pkt)
	}
	// Receiver's clock advanced to the arrival time.
	if rc.Now() != pkt.Arrive {
		t.Errorf("receiver clock %v != arrival %v", rc.Now(), pkt.Arrive)
	}
	if rc.Now() <= 0 || sc.Now() <= 0 {
		t.Error("clocks did not advance")
	}
}

// TestOneWayLatencyMatchesTableIII measures a ping-pong exactly like the
// paper: the halved round-trip of a 1-word send and a 1-word ack must land
// on the Table III neighbor latency.
func TestOneWayLatencyMatchesTableIII(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mk     func(*testing.T) *Network
		lo, hi float64
		s, r   int
	}{
		{"Gx neighbors", gxNet, 20.5, 22.5, 14, 13},
		{"Pro neighbors", proNet, 17.5, 19.5, 14, 13},
		{"Gx corners", gxNet, 30.5, 32.5, 0, 35},
		{"Pro corners", proNet, 31.5, 33.5, 0, 35},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.mk(t)
			defer n.Close()
			var sc, rc vtime.Clock
			a, b := port(t, n, tc.s), port(t, n, tc.r)

			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				pkt, err := b.Recv(&rc, 0)
				if err != nil {
					t.Error(err)
					return
				}
				if err := b.Send(&rc, pkt.Src, 0, 0, []uint64{1}); err != nil {
					t.Error(err)
				}
			}()
			start := sc.Now()
			if err := a.Send(&sc, tc.r, 0, 0, []uint64{1}); err != nil {
				t.Fatal(err)
			}
			if _, err := a.Recv(&sc, 0); err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			half := sc.Now().Sub(start).Ns() / 2
			if half < tc.lo || half > tc.hi {
				t.Errorf("halved RTT = %.1f ns, want [%.1f, %.1f]", half, tc.lo, tc.hi)
			}
		})
	}
}

func TestSendValidation(t *testing.T) {
	n := gxNet(t)
	defer n.Close()
	var c vtime.Clock
	p := port(t, n, 0)
	if err := p.Send(&c, 1, 4, 0, []uint64{1}); !errors.Is(err, ErrBadQueue) {
		t.Errorf("bad queue: %v", err)
	}
	if err := p.Send(&c, 1, -1, 0, []uint64{1}); !errors.Is(err, ErrBadQueue) {
		t.Errorf("negative queue: %v", err)
	}
	if err := p.Send(&c, 99, 0, 0, []uint64{1}); !errors.Is(err, ErrBadCPU) {
		t.Errorf("bad cpu: %v", err)
	}
	if err := p.Send(&c, 1, 0, 0, nil); !errors.Is(err, ErrPayload) {
		t.Errorf("empty payload: %v", err)
	}
	if err := p.Send(&c, 1, 0, 0, make([]uint64, 128)); !errors.Is(err, ErrPayload) {
		t.Errorf("oversize payload: %v", err)
	}
	if _, err := p.Recv(&c, 9); !errors.Is(err, ErrBadQueue) {
		t.Errorf("recv bad queue: %v", err)
	}
	if _, _, err := p.TryRecv(&c, 9); !errors.Is(err, ErrBadQueue) {
		t.Errorf("tryrecv bad queue: %v", err)
	}
}

func TestDemuxQueuesIndependent(t *testing.T) {
	n := gxNet(t)
	defer n.Close()
	var sc, rc vtime.Clock
	s, r := port(t, n, 0), port(t, n, 1)
	// Fill queue 0 and 1 with distinct tags; drain 1 first.
	if err := s.Send(&sc, 1, 0, 100, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Send(&sc, 1, 1, 200, []uint64{2}); err != nil {
		t.Fatal(err)
	}
	pkt, err := r.Recv(&rc, 1)
	if err != nil || pkt.Tag != 200 {
		t.Fatalf("queue 1: %+v, %v", pkt, err)
	}
	pkt, err = r.Recv(&rc, 0)
	if err != nil || pkt.Tag != 100 {
		t.Fatalf("queue 0: %+v, %v", pkt, err)
	}
}

func TestTryRecv(t *testing.T) {
	n := gxNet(t)
	defer n.Close()
	var sc, rc vtime.Clock
	s, r := port(t, n, 0), port(t, n, 1)
	if _, ok, err := r.TryRecv(&rc, 0); ok || err != nil {
		t.Fatalf("TryRecv on empty queue: ok=%v err=%v", ok, err)
	}
	if err := s.Send(&sc, 1, 0, 7, []uint64{9}); err != nil {
		t.Fatal(err)
	}
	pkt, ok, err := r.TryRecv(&rc, 0)
	if !ok || err != nil || pkt.Tag != 7 {
		t.Fatalf("TryRecv after send: ok=%v err=%v pkt=%+v", ok, err, pkt)
	}
}

func TestInterruptRoundTrip(t *testing.T) {
	n := gxNet(t)
	defer n.Close()
	var callerClock vtime.Clock
	caller, target := port(t, n, 0), port(t, n, 35)

	const svcNs = 500.0
	err := target.SetHandler(func(req Packet) ([]uint64, vtime.Duration) {
		return []uint64{req.Word(0) * 2}, vtime.FromNs(svcNs)
	})
	if err != nil {
		t.Fatal(err)
	}

	rep, err := caller.Interrupt(&callerClock, 35, 1, []uint64{21})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != 1 || rep.Word(0) != 42 {
		t.Errorf("reply = %v, want [42]", rep.Payload())
	}
	// Elapsed must cover two corner traversals (~31.5 ns each), the
	// interrupt overhead (110 ns on the Gx) and the service time.
	elapsed := callerClock.Now().Sub(0).Ns()
	wantMin := 2*30 + 110 + svcNs
	if elapsed < wantMin || elapsed > wantMin+40 {
		t.Errorf("interrupt RTT = %.0f ns, want ~%.0f", elapsed, wantMin+15)
	}
}

func TestInterruptSerializes(t *testing.T) {
	// Two interrupts arriving together must be serviced back to back in
	// virtual time: the later reply reflects both service windows.
	n := gxNet(t)
	defer n.Close()
	target := port(t, n, 1)
	const svcNs = 1000.0
	if err := target.SetHandler(func(req Packet) ([]uint64, vtime.Duration) {
		return []uint64{0}, vtime.FromNs(svcNs)
	}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	ends := make([]vtime.Time, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var c vtime.Clock
			p := port(t, n, 2+i)
			if _, err := p.Interrupt(&c, 1, 0, []uint64{1}); err != nil {
				t.Error(err)
				return
			}
			ends[i] = c.Now()
		}(i)
	}
	wg.Wait()
	later := math.Max(ends[0].Ns(), ends[1].Ns())
	if later < 2*svcNs {
		t.Errorf("later completion %.0f ns does not reflect serialization (want >= %.0f)", later, 2*svcNs)
	}
}

func TestInterruptErrors(t *testing.T) {
	gx := gxNet(t)
	defer gx.Close()
	var c vtime.Clock

	// No handler installed.
	if _, err := port(t, gx, 0).Interrupt(&c, 1, 0, []uint64{1}); !errors.Is(err, ErrNoHandler) {
		t.Errorf("no handler: %v", err)
	}
	// TILEPro has no UDN interrupts at all.
	pro := proNet(t)
	defer pro.Close()
	if err := port(t, pro, 0).SetHandler(func(Packet) ([]uint64, vtime.Duration) { return nil, 0 }); !errors.Is(err, ErrNoInterrupts) {
		t.Errorf("Pro SetHandler: %v", err)
	}
	if _, err := port(t, pro, 0).Interrupt(&c, 1, 0, []uint64{1}); !errors.Is(err, ErrNoInterrupts) {
		t.Errorf("Pro Interrupt: %v", err)
	}
	// Payload validation.
	if err := port(t, gx, 5).SetHandler(func(Packet) ([]uint64, vtime.Duration) { return nil, 0 }); err != nil {
		t.Fatal(err)
	}
	if _, err := port(t, gx, 0).Interrupt(&c, 5, 0, nil); !errors.Is(err, ErrPayload) {
		t.Errorf("empty interrupt payload: %v", err)
	}
	if _, err := port(t, gx, 0).Interrupt(&c, 99, 0, []uint64{1}); !errors.Is(err, ErrBadCPU) {
		t.Errorf("bad cpu: %v", err)
	}
}

func TestCloseUnblocksReceivers(t *testing.T) {
	n := gxNet(t)
	r := port(t, n, 3)
	errc := make(chan error, 1)
	go func() {
		var c vtime.Clock
		_, err := r.Recv(&c, 0)
		errc <- err
	}()
	n.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Errorf("Recv after close: %v", err)
	}
	var c vtime.Clock
	if err := r.Send(&c, 4, 0, 0, []uint64{1}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after close: %v", err)
	}
	if err := r.SetHandler(func(Packet) ([]uint64, vtime.Duration) { return nil, 0 }); !errors.Is(err, ErrClosed) {
		t.Errorf("SetHandler after close: %v", err)
	}
}

func TestRecvDrainsQueuedAfterClose(t *testing.T) {
	n := gxNet(t)
	var sc, rc vtime.Clock
	s, r := port(t, n, 0), port(t, n, 1)
	if err := s.Send(&sc, 1, 0, 11, []uint64{5}); err != nil {
		t.Fatal(err)
	}
	n.Close()
	pkt, err := r.Recv(&rc, 0)
	if err != nil || pkt.Tag != 11 {
		t.Errorf("queued packet lost on close: %+v, %v", pkt, err)
	}
	if _, err := r.Recv(&rc, 0); !errors.Is(err, ErrClosed) {
		t.Errorf("empty closed queue: %v", err)
	}
}

func TestManyToOneOrdering(t *testing.T) {
	// All 35 other tiles send to tile 0; every packet must arrive exactly
	// once with a positive, bounded arrival timestamp.
	n := gxNet(t)
	defer n.Close()
	recvPort := port(t, n, 0)
	var wg sync.WaitGroup
	for cpu := 1; cpu < 36; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			var c vtime.Clock
			if err := port(t, n, cpu).Send(&c, 0, 3, uint32(cpu), []uint64{uint64(cpu)}); err != nil {
				t.Error(err)
			}
		}(cpu)
	}
	var rc vtime.Clock
	seen := make(map[uint32]bool)
	for i := 0; i < 35; i++ {
		pkt, err := recvPort.Recv(&rc, 3)
		if err != nil {
			t.Fatal(err)
		}
		if seen[pkt.Tag] {
			t.Fatalf("duplicate packet from %d", pkt.Tag)
		}
		seen[pkt.Tag] = true
	}
	wg.Wait()
	if len(seen) != 35 {
		t.Errorf("received %d distinct packets, want 35", len(seen))
	}
}
