package udn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tshmem/internal/fault"
	"tshmem/internal/mesh"
	"tshmem/internal/profile"
	"tshmem/internal/sanitize"
	"tshmem/internal/stats"
	"tshmem/internal/vtime"
)

// Errors returned by UDN operations.
var (
	ErrClosed       = errors.New("udn: port closed")
	ErrBadQueue     = errors.New("udn: demux queue out of range")
	ErrBadCPU       = errors.New("udn: destination CPU out of range")
	ErrPayload      = errors.New("udn: payload size out of range")
	ErrNoInterrupts = errors.New("udn: chip does not support UDN interrupts")
	ErrNoHandler    = errors.New("udn: destination tile has no interrupt handler")

	// ErrTimeout reports a bounded wait that expired under fault
	// injection: a receive that never completed within the host-time
	// grace, a send stuck on backpressure, or an interrupt whose request
	// or reply was dropped. Only possible after SetFaults; the caller
	// (internal/core) converts it into a virtual-time diagnostic.
	ErrTimeout = errors.New("udn: bounded wait timed out")
)

// queueCap bounds in-flight packets per demux queue. The hardware queue
// holds up to 127 payload words, i.e. on the order of 127 minimum-sized
// packets, before the network backpressures the sender. The library's
// protocols keep at most NPEs-1 <= 63 small packets in flight toward any
// one queue (the start_pes all-to-all address exchange), so this capacity
// also guarantees those protocols cannot deadlock on backpressure.
const queueCap = 128

// inlineWords is the payload capacity a Packet stores directly in its
// struct body. Every library protocol message fits: barrier wait/release
// signals and collective flow-control signals are 1 word, the start_pes
// address exchange is 1 word, and the static-redirection interrupt request
// is 5 words. Only application payloads beyond inlineWords words fall back
// to a heap-allocated slice.
const inlineWords = 6

// Packet is one UDN message as seen by the receiver. Small payloads (up to
// inlineWords words) live inline in the struct, so sending and receiving
// library protocol traffic allocates nothing; access the payload through
// Len, Word, and Payload.
type Packet struct {
	Src    int        // sender's virtual CPU
	Tag    uint32     // application tag from the header word
	Arrive vtime.Time // virtual time the packet is available at the queue
	Sent   vtime.Time // sender's virtual clock at injection completion

	nw     int32 // payload length in words (1..UDNMaxWords)
	inline [inlineWords]uint64
	ext    []uint64 // payload when nw > inlineWords; nil otherwise
}

// makePacket builds a Packet carrying words. Payloads up to inlineWords are
// copied into the struct body; larger ones are cloned onto the heap, so the
// caller's slice is never retained and may be reused immediately.
func makePacket(src int, tag uint32, words []uint64, arrive vtime.Time) Packet {
	p := Packet{Src: src, Tag: tag, Arrive: arrive, nw: int32(len(words))}
	if len(words) <= inlineWords {
		copy(p.inline[:], words)
	} else {
		p.ext = append([]uint64(nil), words...)
	}
	return p
}

// Len reports the payload length in words.
func (p *Packet) Len() int { return int(p.nw) }

// Word returns payload word i. It panics on out-of-range i, mirroring
// slice indexing.
func (p *Packet) Word(i int) uint64 {
	if i < 0 || i >= int(p.nw) {
		panic(fmt.Sprintf("udn: payload word %d of %d", i, p.nw))
	}
	if p.ext != nil {
		return p.ext[i]
	}
	return p.inline[i]
}

// Payload returns the payload as a slice. For inline payloads the slice
// views this Packet value's own storage: it is valid while p is and must
// not be held past p's lifetime.
func (p *Packet) Payload() []uint64 {
	if p.ext != nil {
		return p.ext
	}
	return p.inline[:p.nw]
}

// Handler services a UDN interrupt on the destination tile. It runs on the
// tile's interrupt context (a dedicated goroutine), performs the requested
// operation, and returns reply payload words plus the virtual service time
// the operation consumed on the remote tile.
type Handler func(req Packet) (reply []uint64, service vtime.Duration)

// Scheduler lets an event-driven engine mediate the network's blocking
// points. With a scheduler attached, Send/Recv/RecvRaw never block on
// channels: they poll, and when they would block they park the calling
// PE via WaitSend/WaitRecv until a matching Enqueued/Dequeued
// notification makes progress possible, then poll again. A wake is only
// a hint — the loops re-check, so conservative notifications are safe.
// Interrupts are serviced inline on the requester's goroutine instead of
// on a per-tile servicer goroutine.
type Scheduler interface {
	// WaitRecv parks the PE on tile cpu until a packet may be available
	// on its demux queue dq. nil means re-poll (including after an abort:
	// the re-poll observes the closed port); a non-nil error — ErrTimeout
	// — means the engine expired this bounded wait under fault injection.
	WaitRecv(cpu, dq int) error
	// WaitSend parks the PE on tile src until space may be available in
	// destination queue (dst, dq) — hardware backpressure.
	WaitSend(src, dst, dq int) error
	// Enqueued notes that a packet landed in (dst, dq): wakes parked
	// receivers.
	Enqueued(dst, dq int)
	// Dequeued notes that a packet left (cpu, dq): wakes parked senders.
	Dequeued(cpu, dq int)
}

// Network is the chip-wide UDN: one port per tile of the test-area
// geometry.
type Network struct {
	geo   mesh.Geometry
	ports []*Port
	links *mesh.LinkStats // nil disables per-link accounting
	flt   *fault.ChipView // nil disables fault injection
	grace time.Duration   // host-time bound on blocking ops; 0 = unbounded
	sched Scheduler       // nil means free-running goroutines block on channels
}

// SetScheduler attaches an event-driven engine's scheduler to every
// blocking point of this network. A nil scheduler (the default) keeps
// the channel-blocking behavior. Set before PEs start communicating.
func (n *Network) SetScheduler(s Scheduler) { n.sched = s }

// SetLinkStats attaches per-directed-link utilization accounting: every
// packet's XY route is charged onto ls, and receive-queue occupancy
// high-water marks are tracked per destination tile. A nil ls (the
// default) disables accounting. Set before PEs start communicating.
func (n *Network) SetLinkStats(ls *mesh.LinkStats) { n.links = ls }

// SetFaults attaches a fault-injection view of this chip and arms the
// host-time grace bound on every blocking operation: a Send stuck on
// backpressure, a Recv with nothing arriving, or an Interrupt owed a
// reply gives up after grace with ErrTimeout instead of blocking
// forever. The fault view perturbs packets deterministically in virtual
// time; the grace timer is purely a host-liveness fallback for traffic a
// fault swallowed, so it never influences virtual timestamps. A nil cv
// with grace 0 (the default) restores the perfect substrate. Set before
// PEs start communicating.
func (n *Network) SetFaults(cv *fault.ChipView, grace time.Duration) {
	n.flt = cv
	n.grace = grace
}

// timeoutCh returns a channel that fires after the network's grace bound,
// plus its timer (stop it when done). A nil channel — never ready — is
// returned when no grace is armed, so selects can always include it.
func (n *Network) timeoutCh() (<-chan time.Time, *time.Timer) {
	if n.grace <= 0 {
		return nil, nil
	}
	t := time.NewTimer(n.grace)
	return t.C, t
}

// New builds a UDN over the given test-area geometry.
func New(geo mesh.Geometry) *Network {
	n := &Network{geo: geo}
	n.ports = make([]*Port, geo.Tiles())
	for i := range n.ports {
		p := &Port{net: n, cpu: i}
		for q := range p.queues {
			p.queues[q] = make(chan Packet, queueCap)
		}
		n.ports[i] = p
	}
	return n
}

// Geometry returns the network's test-area geometry.
func (n *Network) Geometry() mesh.Geometry { return n.geo }

// Tiles reports the number of attached tiles.
func (n *Network) Tiles() int { return len(n.ports) }

// Port returns tile cpu's UDN port.
func (n *Network) Port(cpu int) (*Port, error) {
	if cpu < 0 || cpu >= len(n.ports) {
		return nil, fmt.Errorf("%w: %d", ErrBadCPU, cpu)
	}
	return n.ports[cpu], nil
}

// Close shuts down every port. Pending receivers unblock with ErrClosed.
// Mirrors the teardown the paper's proposed shmem_finalize() performs:
// leaving the UDN engaged risks platform lockup.
func (n *Network) Close() {
	for _, p := range n.ports {
		p.close()
	}
}

// Port is one tile's attachment to the UDN: four demultiplexing receive
// queues plus an optional interrupt lane.
type Port struct {
	net *Network
	cpu int
	rec *stats.Recorder

	// prof is the owning PE's causal-profiler recorder (nil when
	// Config.Profile is off); rankBase translates this chip's local CPU
	// numbers into global PE ranks for cross-PE edges.
	prof     *profile.Recorder
	rankBase int

	queues [4]chan Packet

	intrMu   sync.Mutex
	intrSvc  *intrServicer
	closed   atomic.Bool
	closeOne sync.Once
	done     chan struct{}
	doneOnce sync.Once

	// replyCh is the reusable interrupt-reply channel. Interrupt is only
	// ever called by the goroutine that owns this port, so the channel can
	// be allocated once and reused across calls; it is dropped (and a
	// fresh one made next call) if a wait is abandoned with a reply still
	// owed, so a stale reply can never be read as a fresh one.
	replyCh chan Packet
}

// CPU reports the virtual CPU this port belongs to.
func (p *Port) CPU() int { return p.cpu }

// SetRecorder attaches the owning PE's substrate recorder. A nil recorder
// (the default) disables accounting. Must be set before the PE starts
// communicating; the recorder must belong to the goroutine that uses this
// port.
func (p *Port) SetRecorder(rec *stats.Recorder) { p.rec = rec }

// SetProfiler attaches the owning PE's causal-profiler recorder plus the
// chip's global rank base (global PE id = rankBase + local cpu). A nil
// recorder (the default) disables attribution. Same ownership rule as
// SetRecorder.
func (p *Port) SetProfiler(prof *profile.Recorder, rankBase int) {
	p.prof = prof
	p.rankBase = rankBase
}

// profSend attributes a completed injection advance that began at t0:
// the modeled injection cost goes to udn.send, any fault-injected excess
// to fault.stall.
func (p *Port) profSend(clock *vtime.Clock, t0 vtime.Time, base vtime.Duration) {
	if p.prof == nil {
		return
	}
	now := clock.Now()
	mid := t0.Add(base)
	if mid > now {
		mid = now
	}
	p.prof.Advance(profile.CatUDNSend, t0, mid)
	p.prof.Advance(profile.CatFault, mid, now)
}

// profRecv attributes the receive merge that began at start: idle before
// the sender injected is udn.wait, the in-flight tail is mesh, carrying
// the happens-before edge the critical path follows.
func (p *Port) profRecv(start vtime.Time, pkt *Packet) {
	if p.prof == nil {
		return
	}
	p.prof.Merge(profile.CatUDNWait, start, sanitize.Edge{
		PE:     int32(p.rankBase + p.cpu),
		Peer:   int32(p.rankBase + pkt.Src),
		Sent:   pkt.Sent,
		Arrive: pkt.Arrive,
	})
}

func (p *Port) doneCh() chan struct{} {
	p.doneOnce.Do(func() { p.done = make(chan struct{}) })
	return p.done
}

// Send transmits words to queue dq of tile dst, blocking while the
// destination queue is full (hardware backpressure). The sender's clock
// advances by the injection share of the one-way latency; the packet
// carries the full arrival timestamp.
func (p *Port) Send(clock *vtime.Clock, dst, dq int, tag uint32, words []uint64) error {
	if p.closed.Load() {
		return ErrClosed
	}
	if dq < 0 || dq >= len(p.queues) {
		return fmt.Errorf("%w: %d", ErrBadQueue, dq)
	}
	dp, err := p.net.Port(dst)
	if err != nil {
		return err
	}
	if dp.closed.Load() {
		return ErrClosed
	}
	nw := len(words)
	if nw < 1 || nw > p.net.geo.Chip().UDNMaxWords {
		return fmt.Errorf("%w: %d words", ErrPayload, nw)
	}
	path, err := p.net.geo.Path(p.cpu, dst, nw)
	if err != nil {
		return err
	}
	send, wire := path.Send, path.Wire
	baseSend := send
	if p.net.flt != nil {
		s2, w2, id, drop := p.net.flt.AdjustSend(p.cpu, dst, clock.Now(), send, wire)
		if drop {
			// A dead tile swallows the packet silently: the sender pays its
			// injection cost and moves on, exactly like fire-and-forget
			// hardware. Whoever expected this packet will time out.
			t0 := clock.Now()
			clock.Advance(s2)
			p.profSend(clock, t0, baseSend)
			p.rec.FaultDrop(id, dst, clock.Now())
			return nil
		}
		if id >= 0 {
			p.rec.FaultDelay(id, dst, clock.Now(), (s2+w2)-(send+wire))
			send, wire = s2, w2
		}
	}
	t0 := clock.Now()
	clock.Advance(send)
	p.profSend(clock, t0, baseSend)
	p.rec.UDNSend(nw, path.Hops, send+wire)
	p.net.links.RecordRoute(p.cpu, dst, nw)
	arrive := clock.Now().Add(wire)
	if p.net.flt != nil {
		a2, id, drop := p.net.flt.HoldArrive(dst, dq, arrive)
		if drop {
			p.rec.FaultDrop(id, dst, arrive)
			return nil
		}
		if a2 > arrive {
			p.rec.FaultDelay(id, dst, arrive, a2.Sub(arrive))
			arrive = a2
		}
	}
	pkt := makePacket(p.cpu, tag, words, arrive)
	pkt.Sent = clock.Now()
	if s := p.net.sched; s != nil {
		for {
			select {
			case dp.queues[dq] <- pkt:
				p.net.links.RecordQueueDepth(dst, len(dp.queues[dq]))
				s.Enqueued(dst, dq)
				return nil
			default:
			}
			if dp.closed.Load() {
				return ErrClosed
			}
			if err := s.WaitSend(p.cpu, dst, dq); err != nil {
				return err
			}
		}
	}
	timeout, timer := p.net.timeoutCh()
	if timer != nil {
		defer timer.Stop()
	}
	select {
	case dp.queues[dq] <- pkt:
		p.net.links.RecordQueueDepth(dst, len(dp.queues[dq]))
		return nil
	case <-timeout:
		return ErrTimeout
	case <-dp.doneCh():
		return ErrClosed
	}
}

// Recv blocks until a packet is available on demux queue dq, merges the
// receiver's clock with the packet arrival time, and returns the packet.
func (p *Port) Recv(clock *vtime.Clock, dq int) (Packet, error) {
	if dq < 0 || dq >= len(p.queues) {
		return Packet{}, fmt.Errorf("%w: %d", ErrBadQueue, dq)
	}
	if s := p.net.sched; s != nil {
		for {
			// Poll before the closed check: a closed port still drains
			// what already arrived, like the goroutine path below.
			select {
			case pkt := <-p.queues[dq]:
				start := clock.Now()
				wait := clock.AdvanceTo(pkt.Arrive)
				p.rec.UDNRecvWait(pkt.Len(), wait)
				p.profRecv(start, &pkt)
				s.Dequeued(p.cpu, dq)
				return pkt, nil
			default:
			}
			if p.closed.Load() {
				return Packet{}, ErrClosed
			}
			if err := s.WaitRecv(p.cpu, dq); err != nil {
				return Packet{}, err
			}
		}
	}
	timeout, timer := p.net.timeoutCh()
	if timer != nil {
		defer timer.Stop()
	}
	select {
	case pkt := <-p.queues[dq]:
		start := clock.Now()
		wait := clock.AdvanceTo(pkt.Arrive)
		p.rec.UDNRecvWait(pkt.Len(), wait)
		p.profRecv(start, &pkt)
		return pkt, nil
	case <-timeout:
		return Packet{}, ErrTimeout
	case <-p.doneCh():
		// Drain anything already queued before reporting closure.
		select {
		case pkt := <-p.queues[dq]:
			start := clock.Now()
			wait := clock.AdvanceTo(pkt.Arrive)
			p.rec.UDNRecvWait(pkt.Len(), wait)
			p.profRecv(start, &pkt)
			return pkt, nil
		default:
			return Packet{}, ErrClosed
		}
	}
}

// RecvRaw blocks until a packet is available on demux queue dq and returns
// it WITHOUT merging any clock: the caller decides when the packet is
// logically processed and merges with pkt.Arrive itself. Protocol loops
// that stash out-of-order packets use this so that stashed arrivals do not
// perturb the virtual clock before they are consumed.
func (p *Port) RecvRaw(dq int) (Packet, error) {
	if dq < 0 || dq >= len(p.queues) {
		return Packet{}, fmt.Errorf("%w: %d", ErrBadQueue, dq)
	}
	if s := p.net.sched; s != nil {
		for {
			select {
			case pkt := <-p.queues[dq]:
				p.rec.UDNRecv(pkt.Len())
				s.Dequeued(p.cpu, dq)
				return pkt, nil
			default:
			}
			if p.closed.Load() {
				return Packet{}, ErrClosed
			}
			if err := s.WaitRecv(p.cpu, dq); err != nil {
				return Packet{}, err
			}
		}
	}
	timeout, timer := p.net.timeoutCh()
	if timer != nil {
		defer timer.Stop()
	}
	select {
	case pkt := <-p.queues[dq]:
		p.rec.UDNRecv(pkt.Len())
		return pkt, nil
	case <-timeout:
		return Packet{}, ErrTimeout
	case <-p.doneCh():
		select {
		case pkt := <-p.queues[dq]:
			p.rec.UDNRecv(pkt.Len())
			return pkt, nil
		default:
			return Packet{}, ErrClosed
		}
	}
}

// TryRecv is the non-blocking variant of Recv. ok reports whether a packet
// was available.
func (p *Port) TryRecv(clock *vtime.Clock, dq int) (Packet, bool, error) {
	if dq < 0 || dq >= len(p.queues) {
		return Packet{}, false, fmt.Errorf("%w: %d", ErrBadQueue, dq)
	}
	select {
	case pkt := <-p.queues[dq]:
		start := clock.Now()
		wait := clock.AdvanceTo(pkt.Arrive)
		p.rec.UDNRecvWait(pkt.Len(), wait)
		p.profRecv(start, &pkt)
		if s := p.net.sched; s != nil {
			s.Dequeued(p.cpu, dq)
		}
		return pkt, true, nil
	default:
		if p.closed.Load() {
			return Packet{}, false, ErrClosed
		}
		return Packet{}, false, nil
	}
}

// intrServicer drains a tile's interrupt lane on a dedicated goroutine,
// modeling the tile being forced to service operations (S IV.B.2). A
// vtime.Resource serializes overlapping interrupts in virtual time: a tile
// services one interrupt at a time.
type intrServicer struct {
	handler Handler
	reqs    chan intrRequest
	busy    vtime.Resource
	wg      sync.WaitGroup
}

type intrRequest struct {
	pkt   Packet
	reply chan Packet // carries reply words + arrival timestamp back
}

// SetHandler installs the interrupt handler for this tile and starts its
// interrupt context. Only chips with UDN interrupt support (TILE-Gx) accept
// a handler.
func (p *Port) SetHandler(h Handler) error {
	if !p.net.geo.Chip().UDNInterrupts {
		return ErrNoInterrupts
	}
	if p.closed.Load() {
		return ErrClosed
	}
	p.intrMu.Lock()
	defer p.intrMu.Unlock()
	if p.intrSvc != nil {
		p.intrSvc.handler = h
		return nil
	}
	svc := &intrServicer{handler: h, reqs: make(chan intrRequest, queueCap)}
	p.intrSvc = svc
	// Under an event-driven scheduler, interrupts are serviced inline on
	// the requester's goroutine (see Interrupt); no servicer to spawn.
	if p.net.sched == nil {
		svc.wg.Add(1)
		go svc.run(p)
	}
	return nil
}

func (s *intrServicer) run(p *Port) {
	defer s.wg.Done()
	intrOvh := vtime.FromNs(p.net.geo.Chip().UDNInterruptNs)
	for {
		select {
		case req := <-s.reqs:
			words, service := s.handler(req.pkt)
			// The tile enters the interrupt no earlier than the request's
			// arrival and no earlier than the end of the previous interrupt.
			done := s.busy.Acquire(req.pkt.Arrive, intrOvh+service)
			req.reply <- makePacket(p.cpu, req.pkt.Tag, words, done)
		case <-p.doneCh():
			return
		}
	}
}

// Interrupt raises a UDN interrupt on tile dst: the caller blocks until the
// destination tile has serviced the request and the reply has traveled
// back. The caller's clock ends at reply arrival. This is the primitive
// TSHMEM's static-variable redirection is built on.
func (p *Port) Interrupt(clock *vtime.Clock, dst int, tag uint32, words []uint64) (Packet, error) {
	if !p.net.geo.Chip().UDNInterrupts {
		return Packet{}, ErrNoInterrupts
	}
	if p.closed.Load() {
		return Packet{}, ErrClosed
	}
	dp, err := p.net.Port(dst)
	if err != nil {
		return Packet{}, err
	}
	dp.intrMu.Lock()
	svc := dp.intrSvc
	dp.intrMu.Unlock()
	if svc == nil {
		return Packet{}, ErrNoHandler
	}
	nw := len(words)
	if nw < 1 || nw > p.net.geo.Chip().UDNMaxWords {
		return Packet{}, fmt.Errorf("%w: %d words", ErrPayload, nw)
	}
	path, err := p.net.geo.Path(p.cpu, dst, nw)
	if err != nil {
		return Packet{}, err
	}
	if p.net.flt != nil {
		// Interrupts model only drop faults (a dead tile or a dropped
		// interrupt lane); slow-tile and slow-link plans leave the
		// interrupt round-trip untouched. The requester pays its injection
		// cost and learns immediately — deterministically in virtual time —
		// that no reply will ever come.
		if id, drop := p.net.flt.DropInterrupt(p.cpu, dst, clock.Now()); drop {
			t0 := clock.Now()
			clock.Advance(path.Send)
			p.profSend(clock, t0, path.Send)
			p.rec.FaultDrop(id, dst, clock.Now())
			return Packet{}, ErrTimeout
		}
	}
	t0 := clock.Now()
	clock.Advance(path.Send)
	p.profSend(clock, t0, path.Send)
	p.net.links.RecordRoute(p.cpu, dst, nw)
	if p.net.sched != nil {
		// Event engine: service the interrupt inline on the requester's
		// goroutine. The handler is written to run on a foreign goroutine
		// either way, and the single-runner schedule makes the inline call
		// race-free. The virtual math is the servicer-goroutine path's
		// exactly, including busy's serialization of overlapping
		// interrupts on the destination tile.
		pkt := makePacket(p.cpu, tag, words, clock.Now().Add(path.Wire))
		repWords, service := svc.handler(pkt)
		intrOvh := vtime.FromNs(p.net.geo.Chip().UDNInterruptNs)
		done := svc.busy.Acquire(pkt.Arrive, intrOvh+service)
		return p.finishInterrupt(clock, dst, nw, path.Hops,
			makePacket(dst, pkt.Tag, repWords, done))
	}
	if p.replyCh == nil {
		p.replyCh = make(chan Packet, 1)
	}
	req := intrRequest{
		pkt:   makePacket(p.cpu, tag, words, clock.Now().Add(path.Wire)),
		reply: p.replyCh,
	}
	timeout, timer := p.net.timeoutCh()
	if timer != nil {
		defer timer.Stop()
	}
	select {
	case svc.reqs <- req:
	case <-timeout:
		return Packet{}, ErrTimeout
	case <-dp.doneCh():
		return Packet{}, ErrClosed
	}
	select {
	case rep := <-req.reply:
		return p.finishInterrupt(clock, dst, nw, path.Hops, rep)
	case <-timeout:
		// Same stale-reply hazard as the closed case below: a reply may
		// still land on this channel after we give up.
		p.replyCh = nil
		return Packet{}, ErrTimeout
	case <-p.doneCh():
		// The servicer still owes a reply on this channel; its buffered
		// send will land after we are gone. Drop the channel so the next
		// Interrupt cannot mistake that stale reply for its own.
		p.replyCh = nil
		return Packet{}, ErrClosed
	}
}

// finishInterrupt models the interrupt reply's trip back and merges it
// into the requester's clock — the tail shared by the servicer-goroutine
// path and the event engine's inline-servicing path.
func (p *Port) finishInterrupt(clock *vtime.Clock, dst, nw, hops int, rep Packet) (Packet, error) {
	// Reply travels back over the UDN.
	repWords := max(1, rep.Len())
	back, err := p.net.geo.OneWayLatency(dst, p.cpu, repWords)
	if err != nil {
		return Packet{}, err
	}
	rep.Arrive = rep.Arrive.Add(back)
	waitStart := clock.Now()
	clock.AdvanceTo(rep.Arrive)
	// The interrupt servicer is not a profiled PE timeline, so the
	// round-trip wait carries no edge: the critical path stays on the
	// requester (documented limitation; see docs/OBSERVABILITY.md).
	p.prof.Advance(profile.CatUDNWait, waitStart, clock.Now())
	// The requester accounts the whole round-trip; the servicer
	// goroutine must not touch any recorder. The reply's route is
	// charged here too — links are shared atomics, unlike recorders.
	p.rec.UDNInterrupt(nw, repWords, hops)
	p.net.links.RecordRoute(dst, p.cpu, repWords)
	return rep, nil
}

func (p *Port) close() {
	p.closeOne.Do(func() {
		p.closed.Store(true)
		close(p.doneCh())
	})
}
