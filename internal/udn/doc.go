// Package udn models the Tilera User Dynamic Network: the low-latency,
// user-accessible dynamic network of the iMesh (Section III.C of the
// paper).
//
// # Hardware model
//
// Developers attach a one-word header to each payload naming the
// destination tile and demultiplexing queue; packets travel at one word
// per hop per cycle into one of four receive queues at the destination,
// each holding up to 127 words. The TMC library wraps this in blocking
// send-and-receive helpers, which Port.Send/Recv mirror. The library's
// protocol layers assign the queues fixed roles (barrier signals,
// initialization, collectives, application traffic) so out-of-band
// synchronization never contends with payload traffic — the same
// discipline TSHMEM uses on hardware.
//
// The barrier queue carries more than the paper's linear chain: the
// synchronization-algorithm library (internal/core, docs/SYNC.md) runs
// its dissemination, tournament, and MCS-tree barriers over the same
// queue, demultiplexed by (active-set tag, signal word) so rounds and
// overlapping instances never cross-match. Two send costs matter there:
// a signal forwarded inside a hot receive loop charges the chip's
// examine-and-forward cost (UDNSWForwardNs), while each standalone send
// an algorithm issues outside such a loop pays the full send-call setup
// (UDNSendCallNs). The UDN is chip-local: interrupts and these signal
// patterns do not cross chips, which is why the UDN-signal barrier
// algorithms reject multi-chip configurations.
//
// # Virtual time
//
// A send charges the sender's clock with the injection share of the
// mesh.Path latency and stamps the packet with its full arrival time; a
// receive merges the receiver's clock with that arrival (RecvRaw defers
// the merge so protocol loops can stash out-of-order packets without
// perturbing their clock). Full queues exert backpressure by blocking the
// sender, bounded by queueCap, which is sized so the library's own
// protocols (at most NPEs-1 small packets toward one queue during the
// start_pes exchange) can never deadlock.
//
// # Interrupts
//
// On the TILE-Gx the UDN can also raise interrupts at the destination
// tile; TSHMEM uses this to redirect transfers involving static symmetric
// variables (Section IV.B.2). Port.Interrupt blocks the caller for the
// full round-trip while a dedicated per-tile servicer goroutine runs the
// handler, serialized in virtual time by a vtime.Resource — a tile
// services one interrupt at a time. The TILEPro lacks UDN interrupt
// support, so ports on a TILEPro network return ErrNoInterrupts.
//
// # Observability
//
// Each port optionally carries a per-PE stats.Recorder (SetRecorder).
// Sends, receives, and interrupt round-trips account messages, payload
// words, and mesh hops on the owning PE's counters; the interrupt servicer
// goroutine never records (the requesting PE carries the round-trip's
// accounting), keeping every recorder single-goroutine.
package udn
