// Package alloc implements the symmetric-heap allocator behind TSHMEM's
// shmalloc()/shfree(): a doubly-linked list tracking the memory segments
// in use within one tile's symmetric partition (Section IV.A of the
// paper).
//
// # Symmetry by determinism
//
// Symmetry is implicit: every PE runs the same allocation sequence (the
// OpenSHMEM requirement that shmalloc be called collectively with the same
// size at the same point in the program), and because the allocator is
// deterministic, identical call sequences yield identical offsets on every
// PE. Offsets are relative to the partition start, which is exactly how a
// tile computes a remote object's address (partition base + offset) —
// TSHMEM needs no address-translation table and no communication to
// resolve a remote symmetric reference.
//
// # Mechanics
//
// The free/used state lives in a doubly-linked block list kept in address
// order. Malloc is first-fit with MinAlign (8-byte) alignment — enough for
// any elemental SHMEM type — absorbing alignment padding into the
// allocated block; Free coalesces with free neighbors so fragmentation
// stays bounded under the alloc/free churn of Memalloc-style workloads.
// AllocAlign and Realloc mirror the shmemalign/shrealloc entry points of
// the SHMEM malloc family.
//
// The allocator performs no locking: each PE mutates only its own
// partition's allocator from its own goroutine, the same way each Tilera
// tile manages its own partition of the common-memory segment.
package alloc
