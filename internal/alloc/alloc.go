package alloc

import (
	"errors"
	"fmt"
)

// Allocation errors.
var (
	ErrNoSpace    = errors.New("alloc: symmetric partition exhausted")
	ErrBadFree    = errors.New("alloc: free of unallocated offset")
	ErrBadRequest = errors.New("alloc: bad request")
)

// MinAlign is the minimum alignment of every allocation, sufficient for any
// elemental SHMEM type (long long, double, complex).
const MinAlign = 8

// block is one node of the doubly-linked segment list, in address order.
type block struct {
	off, size  int64
	free       bool
	prev, next *block
}

// Allocator manages one symmetric partition.
type Allocator struct {
	size    int64
	head    *block
	inUse   int64
	nallocs int
	hwm     int64
}

// New creates an allocator over a partition of size bytes.
func New(size int64) (*Allocator, error) {
	if size <= 0 {
		return nil, fmt.Errorf("%w: partition size %d", ErrBadRequest, size)
	}
	return &Allocator{
		size: size,
		head: &block{off: 0, size: size, free: true},
	}, nil
}

// Size reports the partition size.
func (a *Allocator) Size() int64 { return a.size }

// InUse reports the number of bytes currently allocated (including
// alignment padding absorbed into blocks).
func (a *Allocator) InUse() int64 { return a.inUse }

// FreeBytes reports the bytes available across all free blocks.
func (a *Allocator) FreeBytes() int64 { return a.size - a.inUse }

// Allocations reports the number of live allocations.
func (a *Allocator) Allocations() int { return a.nallocs }

// Alloc reserves size bytes aligned to MinAlign and returns the offset,
// mirroring shmalloc().
func (a *Allocator) Alloc(size int64) (int64, error) {
	return a.AllocAlign(size, MinAlign)
}

// AllocAlign reserves size bytes at an offset that is a multiple of align
// (a power of two), mirroring shmemalign().
func (a *Allocator) AllocAlign(size, align int64) (int64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("%w: size %d", ErrBadRequest, size)
	}
	if align < 0 || align&(align-1) != 0 {
		return 0, fmt.Errorf("%w: alignment %d not a power of two", ErrBadRequest, align)
	}
	if align < MinAlign {
		align = MinAlign
	}
	// First fit over the address-ordered list keeps behavior deterministic
	// across PEs.
	for b := a.head; b != nil; b = b.next {
		if !b.free {
			continue
		}
		aligned := (b.off + align - 1) &^ (align - 1)
		pad := aligned - b.off
		if pad+size > b.size {
			continue
		}
		if pad > 0 {
			// Split the padding into its own free block so it remains
			// allocatable.
			lead := &block{off: b.off, size: pad, free: true, prev: b.prev}
			b.off += pad
			b.size -= pad
			lead.next = b
			if lead.prev != nil {
				lead.prev.next = lead
			} else {
				a.head = lead
			}
			b.prev = lead
		}
		if b.size > size {
			tail := &block{off: b.off + size, size: b.size - size, free: true, prev: b, next: b.next}
			if b.next != nil {
				b.next.prev = tail
			}
			b.next = tail
			b.size = size
		}
		b.free = false
		a.inUse += b.size
		a.nallocs++
		if end := b.off + b.size; end > a.hwm {
			a.hwm = end
		}
		return b.off, nil
	}
	return 0, fmt.Errorf("%w: need %d bytes (align %d), %d free", ErrNoSpace, size, align, a.FreeBytes())
}

// HighWater reports the highest partition offset ever covered by an
// allocation, live or since freed. Bytes at or beyond it have never been
// handed out, so a caller that wrote only through allocations knows the
// partition is untouched from HighWater on — the fact arena recycling
// relies on to bound its re-zeroing.
func (a *Allocator) HighWater() int64 { return a.hwm }

// SizeOf reports the size of the live allocation at off.
func (a *Allocator) SizeOf(off int64) (int64, bool) {
	b := a.find(off)
	if b == nil {
		return 0, false
	}
	return b.size, true
}

// Owns reports whether off lies inside any live allocation.
func (a *Allocator) Owns(off int64) bool {
	for b := a.head; b != nil; b = b.next {
		if !b.free && off >= b.off && off < b.off+b.size {
			return true
		}
	}
	return false
}

func (a *Allocator) find(off int64) *block {
	for b := a.head; b != nil; b = b.next {
		if !b.free && b.off == off {
			return b
		}
	}
	return nil
}

// Free releases the allocation at off, coalescing with free neighbors,
// mirroring shfree().
func (a *Allocator) Free(off int64) error {
	b := a.find(off)
	if b == nil {
		return fmt.Errorf("%w: %d", ErrBadFree, off)
	}
	b.free = true
	a.inUse -= b.size
	a.nallocs--
	// Coalesce with next, then prev.
	if n := b.next; n != nil && n.free {
		b.size += n.size
		b.next = n.next
		if n.next != nil {
			n.next.prev = b
		}
	}
	if p := b.prev; p != nil && p.free {
		p.size += b.size
		p.next = b.next
		if b.next != nil {
			b.next.prev = p
		}
	}
	return nil
}

// Realloc resizes the allocation at off to newSize, mirroring shrealloc().
// It attempts to extend in place (absorbing a free successor); otherwise it
// allocates a new segment and frees the old one. It returns the new offset
// and the number of bytes of the old allocation that remain meaningful
// (min(old, new)); the caller is responsible for moving the data when the
// offset changes, since the allocator does not own the partition bytes.
func (a *Allocator) Realloc(off, newSize int64) (newOff int64, keep int64, err error) {
	if newSize <= 0 {
		return 0, 0, fmt.Errorf("%w: size %d", ErrBadRequest, newSize)
	}
	b := a.find(off)
	if b == nil {
		return 0, 0, fmt.Errorf("%w: %d", ErrBadFree, off)
	}
	old := b.size
	switch {
	case newSize == old:
		return off, old, nil
	case newSize < old:
		// Shrink in place; return the tail to the free list.
		tail := &block{off: b.off + newSize, size: old - newSize, free: true, prev: b, next: b.next}
		if b.next != nil {
			b.next.prev = tail
		}
		b.next = tail
		b.size = newSize
		a.inUse -= old - newSize
		if n := tail.next; n != nil && n.free {
			tail.size += n.size
			tail.next = n.next
			if n.next != nil {
				n.next.prev = tail
			}
		}
		return off, newSize, nil
	case b.next != nil && b.next.free && b.size+b.next.size >= newSize:
		// Grow in place by absorbing the free successor.
		n := b.next
		need := newSize - b.size
		if n.size == need {
			b.next = n.next
			if n.next != nil {
				n.next.prev = b
			}
		} else {
			n.off += need
			n.size -= need
		}
		b.size = newSize
		a.inUse += need
		return off, old, nil
	default:
		no, err := a.Alloc(newSize)
		if err != nil {
			return 0, 0, err
		}
		if err := a.Free(off); err != nil {
			return 0, 0, err
		}
		return no, old, nil
	}
}

// Reset returns the allocator to a single free block.
func (a *Allocator) Reset() {
	a.head = &block{off: 0, size: a.size, free: true}
	a.inUse = 0
	a.nallocs = 0
}

// checkInvariants walks the list verifying structural invariants; tests use
// it after every mutation.
func (a *Allocator) checkInvariants() error {
	var total int64
	var prev *block
	for b := a.head; b != nil; b = b.next {
		if b.size <= 0 {
			return fmt.Errorf("alloc: empty block at %d", b.off)
		}
		if b.prev != prev {
			return fmt.Errorf("alloc: broken prev link at %d", b.off)
		}
		if prev != nil {
			if prev.off+prev.size != b.off {
				return fmt.Errorf("alloc: gap/overlap between %d and %d", prev.off, b.off)
			}
			if prev.free && b.free {
				return fmt.Errorf("alloc: uncoalesced free blocks at %d", b.off)
			}
		} else if b.off != 0 {
			return fmt.Errorf("alloc: list does not start at 0")
		}
		total += b.size
		prev = b
	}
	if total != a.size {
		return fmt.Errorf("alloc: blocks cover %d of %d bytes", total, a.size)
	}
	return nil
}
