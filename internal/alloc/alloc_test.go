package alloc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, size int64) *Allocator {
	t.Helper()
	a, err := New(size)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero-size partition accepted")
	}
	if _, err := New(-5); err == nil {
		t.Error("negative partition accepted")
	}
	a := mustNew(t, 1024)
	if a.Size() != 1024 || a.FreeBytes() != 1024 || a.InUse() != 0 || a.Allocations() != 0 {
		t.Errorf("fresh allocator state wrong: %+v", a)
	}
}

func TestAllocBasic(t *testing.T) {
	a := mustNew(t, 1024)
	o1, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if o1 == o2 {
		t.Error("overlapping allocations")
	}
	if o1%MinAlign != 0 || o2%MinAlign != 0 {
		t.Errorf("misaligned: %d %d", o1, o2)
	}
	if a.Allocations() != 2 {
		t.Errorf("Allocations = %d", a.Allocations())
	}
	if got, ok := a.SizeOf(o1); !ok || got != 100 {
		t.Errorf("SizeOf(o1) = %d, %v", got, ok)
	}
	if !a.Owns(o1) || !a.Owns(o1+99) || a.Owns(o1+100) && o1+100 != o2 {
		t.Error("Owns range wrong")
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocErrors(t *testing.T) {
	a := mustNew(t, 256)
	if _, err := a.Alloc(0); !errors.Is(err, ErrBadRequest) {
		t.Errorf("zero alloc: %v", err)
	}
	if _, err := a.Alloc(-1); !errors.Is(err, ErrBadRequest) {
		t.Errorf("negative alloc: %v", err)
	}
	if _, err := a.Alloc(512); !errors.Is(err, ErrNoSpace) {
		t.Errorf("oversized alloc: %v", err)
	}
	if _, err := a.AllocAlign(8, 3); !errors.Is(err, ErrBadRequest) {
		t.Errorf("bad alignment: %v", err)
	}
	if err := a.Free(0); !errors.Is(err, ErrBadFree) {
		t.Errorf("free of nothing: %v", err)
	}
}

func TestFreeCoalesces(t *testing.T) {
	a := mustNew(t, 300)
	o1, _ := a.Alloc(96)
	o2, _ := a.Alloc(96)
	o3, _ := a.Alloc(96)
	if err := a.Free(o1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(o3); err != nil {
		t.Fatal(err)
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(o2); err != nil {
		t.Fatal(err)
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Fully coalesced: a maximal allocation must now succeed.
	if _, err := a.Alloc(300); err != nil {
		t.Errorf("after full free, whole-partition alloc failed: %v", err)
	}
}

func TestDoubleFree(t *testing.T) {
	a := mustNew(t, 256)
	o, _ := a.Alloc(64)
	if err := a.Free(o); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(o); !errors.Is(err, ErrBadFree) {
		t.Errorf("double free: %v", err)
	}
}

func TestAllocAlign(t *testing.T) {
	a := mustNew(t, 1<<16)
	if _, err := a.Alloc(24); err != nil {
		t.Fatal(err)
	}
	for _, align := range []int64{8, 64, 256, 4096} {
		off, err := a.AllocAlign(50, align)
		if err != nil {
			t.Fatalf("align %d: %v", align, err)
		}
		if off%align != 0 {
			t.Errorf("offset %d not %d-aligned", off, align)
		}
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Padding created by alignment must remain allocatable.
	free := a.FreeBytes()
	if free <= 0 {
		t.Fatal("no free bytes left")
	}
}

// TestDeterminism is the symmetry property the paper relies on: the same
// call sequence yields the same offsets, so every PE's partition lays out
// identically.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		a := mustNew(t, 1<<20)
		rng := rand.New(rand.NewSource(seed))
		var offs []int64
		live := map[int64]bool{}
		for i := 0; i < 500; i++ {
			if rng.Intn(3) != 0 || len(live) == 0 {
				o, err := a.Alloc(int64(rng.Intn(2048) + 1))
				if err != nil {
					continue
				}
				live[o] = true
				offs = append(offs, o)
			} else {
				for o := range live {
					if err := a.Free(o); err != nil {
						t.Fatal(err)
					}
					delete(live, o)
					break // map iteration order irrelevant: one delete per round
				}
			}
		}
		return offs
	}
	// Identical sequences -> identical offsets. (Map iteration order varies,
	// so drive frees deterministically: use a fixed seed twice and compare.)
	a1, a2 := runDeterministic(t, 42), runDeterministic(t, 42)
	if len(a1) != len(a2) {
		t.Fatalf("different allocation counts: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("offset %d differs: %d vs %d", i, a1[i], a2[i])
		}
	}
	_ = run // silence: kept for documentation of the non-deterministic hazard
}

func runDeterministic(t *testing.T, seed int64) []int64 {
	t.Helper()
	a := mustNew(t, 1<<20)
	rng := rand.New(rand.NewSource(seed))
	var offs, live []int64
	for i := 0; i < 1000; i++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			o, err := a.Alloc(int64(rng.Intn(2048) + 1))
			if err != nil {
				continue
			}
			live = append(live, o)
			offs = append(offs, o)
		} else {
			k := rng.Intn(len(live))
			if err := a.Free(live[k]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		}
		if err := a.checkInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	return offs
}

// TestInvariantsUnderRandomWorkload hammers the allocator and checks the
// structural invariants (coverage, ordering, coalescing) after every step.
func TestInvariantsUnderRandomWorkload(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		runDeterministic(t, seed)
	}
}

// TestNoOverlap is a property test: live allocations never overlap and
// always lie inside the partition.
func TestNoOverlap(t *testing.T) {
	f := func(sizes []uint16) bool {
		a, err := New(1 << 18)
		if err != nil {
			return false
		}
		type seg struct{ off, size int64 }
		var segs []seg
		for _, s := range sizes {
			size := int64(s%4096) + 1
			off, err := a.Alloc(size)
			if err != nil {
				continue
			}
			if off < 0 || off+size > a.Size() {
				return false
			}
			for _, g := range segs {
				if off < g.off+g.size && g.off < off+size {
					return false
				}
			}
			segs = append(segs, seg{off, size})
		}
		return a.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReallocShrink(t *testing.T) {
	a := mustNew(t, 1024)
	o, _ := a.Alloc(512)
	no, keep, err := a.Realloc(o, 128)
	if err != nil {
		t.Fatal(err)
	}
	if no != o || keep != 128 {
		t.Errorf("shrink moved: off %d->%d keep %d", o, no, keep)
	}
	if got, _ := a.SizeOf(o); got != 128 {
		t.Errorf("size after shrink = %d", got)
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// The freed tail must be reusable.
	if _, err := a.Alloc(384); err != nil {
		t.Errorf("tail not reusable: %v", err)
	}
}

func TestReallocGrowInPlace(t *testing.T) {
	a := mustNew(t, 1024)
	o, _ := a.Alloc(128)
	no, keep, err := a.Realloc(o, 512)
	if err != nil {
		t.Fatal(err)
	}
	if no != o || keep != 128 {
		t.Errorf("grow-in-place moved: %d->%d keep %d", o, no, keep)
	}
	if got, _ := a.SizeOf(o); got != 512 {
		t.Errorf("size after grow = %d", got)
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReallocMove(t *testing.T) {
	a := mustNew(t, 1024)
	o1, _ := a.Alloc(128)
	o2, _ := a.Alloc(128) // blocks in-place growth
	no, keep, err := a.Realloc(o1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if no == o1 {
		t.Error("expected a move")
	}
	if keep != 128 {
		t.Errorf("keep = %d, want 128", keep)
	}
	if !a.Owns(o2) {
		t.Error("unrelated allocation disturbed")
	}
	if a.Owns(o1) {
		t.Error("old allocation still live after move")
	}
	if err := a.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReallocSameAndErrors(t *testing.T) {
	a := mustNew(t, 1024)
	o, _ := a.Alloc(64)
	no, keep, err := a.Realloc(o, 64)
	if err != nil || no != o || keep != 64 {
		t.Errorf("same-size realloc: %d %d %v", no, keep, err)
	}
	if _, _, err := a.Realloc(o, 0); !errors.Is(err, ErrBadRequest) {
		t.Errorf("zero realloc: %v", err)
	}
	if _, _, err := a.Realloc(999, 64); !errors.Is(err, ErrBadFree) {
		t.Errorf("realloc of nothing: %v", err)
	}
}

func TestReset(t *testing.T) {
	a := mustNew(t, 512)
	if _, err := a.Alloc(256); err != nil {
		t.Fatal(err)
	}
	a.Reset()
	if a.InUse() != 0 || a.Allocations() != 0 {
		t.Error("reset did not clear state")
	}
	if _, err := a.Alloc(512); err != nil {
		t.Errorf("full alloc after reset: %v", err)
	}
}

func TestExhaustionAndRecovery(t *testing.T) {
	a := mustNew(t, 64*10)
	var offs []int64
	for {
		o, err := a.Alloc(64)
		if err != nil {
			break
		}
		offs = append(offs, o)
	}
	if len(offs) != 10 {
		t.Fatalf("packed %d blocks of 64 into 640 bytes, want 10", len(offs))
	}
	for _, o := range offs {
		if err := a.Free(o); err != nil {
			t.Fatal(err)
		}
	}
	if a.FreeBytes() != 640 {
		t.Errorf("FreeBytes = %d after freeing all", a.FreeBytes())
	}
}
