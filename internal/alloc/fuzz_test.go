package alloc

import (
	"testing"
)

// fuzzPart is the partition size the fuzz allocator runs over: small
// enough that random scripts exhaust it regularly (exercising ErrNoSpace
// and fragmented reallocation), large enough for dozens of live blocks.
const fuzzPart = 4096

// liveBlock is the model's view of one allocation.
type liveBlock struct {
	off, size int64
}

// FuzzAlloc drives an Allocator with a randomized alloc/free/realloc
// script decoded from the fuzz input and asserts, after every operation:
// the allocator's own structural invariants (address-ordered fully
// covering block list, coalesced free neighbors), agreement with a shadow
// model on InUse/Allocations/SizeOf, alignment of every returned offset,
// and that no two live allocations overlap.
func FuzzAlloc(f *testing.F) {
	// alloc, alloc, free first, realloc-grow.
	f.Add([]byte{0x00, 0x10, 0x00, 0x20, 0x01, 0x00, 0x02, 0x00, 0x40})
	// aligned allocs at increasing alignment, then free everything.
	f.Add([]byte{0x03, 0x05, 0x02, 0x03, 0x09, 0x04, 0x01, 0x00, 0x01, 0x00})
	// realloc shrink and bogus frees.
	f.Add([]byte{0x00, 0x7f, 0x02, 0x00, 0x05, 0x01, 0x33, 0x01, 0x00})
	// exhaustion: repeated large allocs.
	f.Add([]byte{0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff})

	f.Fuzz(func(t *testing.T, script []byte) {
		a, err := New(fuzzPart)
		if err != nil {
			t.Fatal(err)
		}
		var live []liveBlock
		check := func() {
			t.Helper()
			if err := a.checkInvariants(); err != nil {
				t.Fatal(err)
			}
			var used int64
			for _, b := range live {
				used += b.size
			}
			if a.InUse() != used {
				t.Fatalf("InUse %d, model says %d", a.InUse(), used)
			}
			if a.Allocations() != len(live) {
				t.Fatalf("Allocations %d, model has %d", a.Allocations(), len(live))
			}
			if a.FreeBytes() != fuzzPart-used {
				t.Fatalf("FreeBytes %d, model says %d", a.FreeBytes(), fuzzPart-used)
			}
			for i, b := range live {
				if got, ok := a.SizeOf(b.off); !ok || got != b.size {
					t.Fatalf("SizeOf(%d) = (%d,%v), model says %d", b.off, got, ok, b.size)
				}
				if b.off < 0 || b.off+b.size > fuzzPart {
					t.Fatalf("block [%d,%d) outside partition", b.off, b.off+b.size)
				}
				for _, o := range live[i+1:] {
					if b.off < o.off+o.size && o.off < b.off+b.size {
						t.Fatalf("live blocks overlap: [%d,%d) and [%d,%d)",
							b.off, b.off+b.size, o.off, o.off+o.size)
					}
				}
			}
		}
		next := func() (byte, bool) {
			if len(script) == 0 {
				return 0, false
			}
			b := script[0]
			script = script[1:]
			return b, true
		}
		for {
			op, ok := next()
			if !ok {
				break
			}
			arg, _ := next()
			switch op % 4 {
			case 0: // Alloc
				size := int64(arg)*16 + 1
				off, err := a.Alloc(size)
				if err == nil {
					if off%MinAlign != 0 {
						t.Fatalf("Alloc(%d) returned misaligned offset %d", size, off)
					}
					got, ok := a.SizeOf(off)
					if !ok || got < size {
						t.Fatalf("Alloc(%d) block reports size %d (ok=%v)", size, got, ok)
					}
					live = append(live, liveBlock{off, got})
				}
			case 1: // Free
				if len(live) == 0 || int(arg)%(len(live)+1) == len(live) {
					// Bogus free: an offset no live block starts at.
					bogus := int64(arg)*8 + 1 // never MinAlign-aligned
					if err := a.Free(bogus); err == nil {
						t.Fatalf("Free(%d) of unallocated offset succeeded", bogus)
					}
				} else {
					i := int(arg) % len(live)
					if err := a.Free(live[i].off); err != nil {
						t.Fatalf("Free(%d): %v", live[i].off, err)
					}
					live = append(live[:i], live[i+1:]...)
				}
			case 2: // Realloc
				if len(live) == 0 {
					continue
				}
				szb, _ := next()
				i := int(arg) % len(live)
				old := live[i]
				newSize := int64(szb)*16 + 1
				newOff, keep, err := a.Realloc(old.off, newSize)
				if err != nil {
					// Failed growth must leave the old block untouched.
					if got, ok := a.SizeOf(old.off); !ok || got != old.size {
						t.Fatalf("failed Realloc disturbed block: SizeOf(%d) = (%d,%v), want %d",
							old.off, got, ok, old.size)
					}
					continue
				}
				want := old.size
				if newSize < want {
					want = newSize
				}
				if keep != want {
					t.Fatalf("Realloc(%d -> %d) keep = %d, want min(old,new) = %d",
						old.size, newSize, keep, want)
				}
				got, ok := a.SizeOf(newOff)
				if !ok || got < newSize {
					t.Fatalf("Realloc result block reports size %d (ok=%v), want >= %d", got, ok, newSize)
				}
				live[i] = liveBlock{newOff, got}
			case 3: // AllocAlign
				szb, _ := next()
				align := int64(1) << (arg % 8) // 1..128
				size := int64(szb)%256 + 1
				off, err := a.AllocAlign(size, align)
				if err == nil {
					ea := align
					if ea < MinAlign {
						ea = MinAlign
					}
					if off%ea != 0 {
						t.Fatalf("AllocAlign(%d, %d) returned misaligned offset %d", size, align, off)
					}
					got, ok := a.SizeOf(off)
					if !ok || got < size {
						t.Fatalf("AllocAlign block reports size %d (ok=%v)", got, ok)
					}
					live = append(live, liveBlock{off, got})
				}
			}
			check()
		}
		// Drain: free everything and end with one fully coalesced block.
		for _, b := range live {
			if err := a.Free(b.off); err != nil {
				t.Fatalf("drain Free(%d): %v", b.off, err)
			}
		}
		live = nil
		check()
		if a.InUse() != 0 || a.FreeBytes() != fuzzPart {
			t.Fatalf("after drain: InUse %d, FreeBytes %d", a.InUse(), a.FreeBytes())
		}
	})
}
