package profile

import (
	"fmt"
	"sort"
	"strings"

	"tshmem/internal/vtime"
)

// Step is one link of the critical path: the run spent [Start, End) of
// virtual time doing Cat on PE (for CatMesh steps reached through an
// edge, "on PE" means "in flight toward PE"). Steps are contiguous and
// chronological; their durations sum exactly to the run's makespan.
type Step struct {
	PE    int32
	Cat   Category
	Start vtime.Time
	End   vtime.Time
}

// Dur is the step's virtual duration.
func (s Step) Dur() vtime.Duration { return s.End.Sub(s.Start) }

// criticalPath walks the happens-before DAG backward from the PE that
// determined the makespan (argmax end, ties to the lowest PE id) down to
// virtual time zero.
//
// The walk maintains a cursor (pe, t) with t strictly decreasing:
//
//   - If the latest segment of pe ending at or before t ends strictly
//     before t (or there is none), the gap is uninstrumented local work:
//     emit a compute step and move the cursor to the gap's start.
//   - A segment without an edge is emitted as-is; the cursor moves to
//     its start.
//   - A segment carrying an edge (always CatMesh transport) is emitted
//     as [Sent, End) — the full in-flight interval on the chain — and
//     the cursor jumps to (Peer, Sent). Idle-wait segments on the waiter
//     are thereby skipped: idle waiting never determines the end time.
//
// Each emitted step covers exactly [new cursor, old cursor), so the
// steps tile [0, makespan) and their durations telescope to the
// makespan. Recorded segments always have End > Start (and edges Sent <
// End), so the cursor strictly decreases and the walk terminates.
func criticalPath(recs []*Recorder, ends []vtime.Time) []Step {
	if len(ends) == 0 {
		return nil
	}
	pe := 0
	for i := 1; i < len(ends); i++ {
		if ends[i] > ends[pe] {
			pe = i
		}
	}
	cursor := ends[pe]
	// Safety bound: the cursor argument makes the walk finite, but cap
	// steps anyway so malformed segment streams degrade instead of
	// looping. Each seg/gap contributes at most two steps.
	budget := 2*len(ends) + 16
	for _, r := range recs {
		if r != nil {
			budget += 2 * len(r.segs)
		}
	}
	var rev []Step
	for cursor > 0 && budget > 0 {
		budget--
		var segs []Seg
		if pe < len(recs) && recs[pe] != nil {
			segs = recs[pe].segs
		}
		// Latest seg with End <= cursor.
		i := sort.Search(len(segs), func(i int) bool { return segs[i].End > cursor }) - 1
		if i < 0 || segs[i].End < cursor {
			start := vtime.Time(0)
			if i >= 0 {
				start = segs[i].End
			}
			rev = append(rev, Step{PE: int32(pe), Cat: CatCompute, Start: start, End: cursor})
			cursor = start
			continue
		}
		s := segs[i]
		if s.Peer >= 0 {
			// Zero-transport edges (Sent == End) contribute no step; the
			// walk just hops to the writer. budget still decrements, so
			// even a malformed same-instant edge cycle terminates.
			if cursor > s.Sent {
				rev = append(rev, Step{PE: int32(pe), Cat: s.Cat, Start: s.Sent, End: cursor})
			}
			cursor = s.Sent
			pe = int(s.Peer)
			continue
		}
		rev = append(rev, Step{PE: int32(pe), Cat: s.Cat, Start: s.Start, End: cursor})
		cursor = s.Start
	}
	// Reverse to chronological order and merge adjacent steps that stay
	// on the same PE in the same category.
	out := make([]Step, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		s := rev[i]
		if n := len(out); n > 0 && out[n-1].PE == s.PE && out[n-1].Cat == s.Cat && out[n-1].End == s.Start {
			out[n-1].End = s.End
			continue
		}
		out = append(out, s)
	}
	return out
}

// PathTable renders the critical path chronologically with per-step
// durations and the share of the makespan each step explains, followed by
// a per-category rollup and the largest per-PE slacks.
func (p *Profile) PathTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: %d steps, makespan %.3f us\n", len(p.Path), p.Makespan.Us())
	var byCat [NumCategories]vtime.Duration
	for _, s := range p.Path {
		byCat[s.Cat] += s.Dur()
		pct := 0.0
		if p.Makespan > 0 {
			pct = 100 * float64(s.Dur()) / float64(p.Makespan)
		}
		fmt.Fprintf(&b, "  %10.3f..%-10.3f PE %-3d %-12s %10.3f us %5.1f%%\n",
			s.Start.Ns()/1e3, s.End.Ns()/1e3, s.PE, s.Cat.String(), s.Dur().Us(), pct)
	}
	b.WriteString("on-path by category:\n")
	for c := Category(0); c < NumCategories; c++ {
		if byCat[c] == 0 {
			continue
		}
		pct := 0.0
		if p.Makespan > 0 {
			pct = 100 * float64(byCat[c]) / float64(p.Makespan)
		}
		fmt.Fprintf(&b, "  %-12s %10.3f us %5.1f%%\n", c.String(), byCat[c].Us(), pct)
	}
	// Slack: how far off the path each PE finished.
	type sl struct {
		pe    int
		slack vtime.Duration
	}
	sls := make([]sl, 0, len(p.PEs))
	for _, pe := range p.PEs {
		sls = append(sls, sl{pe.PE, pe.Slack})
	}
	sort.Slice(sls, func(a, b int) bool {
		if sls[a].slack != sls[b].slack {
			return sls[a].slack > sls[b].slack
		}
		return sls[a].pe < sls[b].pe
	})
	b.WriteString("slack (off-path headroom, largest first):\n")
	for i, s := range sls {
		if i >= 8 {
			fmt.Fprintf(&b, "  ... %d more PEs\n", len(sls)-i)
			break
		}
		fmt.Fprintf(&b, "  PE %-3d %10.3f us\n", s.pe, s.slack.Us())
	}
	return b.String()
}
