package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"tshmem/internal/vtime"
)

// WriteFolded emits the blame ledger in collapsed-stack ("folded")
// format, one line per nonzero (PE, category) pair:
//
//	PE 3;barrier.wait 1042
//
// Weights are integer virtual nanoseconds (speedscope and inferno both
// key on the trailing integer). Load the file directly in
// https://speedscope.app or pipe through inferno/flamegraph.pl.
func (p *Profile) WriteFolded(w io.Writer) error {
	for i := range p.PEs {
		pe := &p.PEs[i]
		for c := Category(0); c < NumCategories; c++ {
			ns := int64(math.Round(pe.Blame[c].Ns()))
			if ns <= 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "PE %d;%s %d\n", pe.PE, c.String(), ns); err != nil {
				return err
			}
		}
	}
	return nil
}

// JSON is the on-disk snapshot schema ("tshmem-profile/1") consumed by
// tshmem-bench -profile-diff. All times are integer virtual picoseconds.
type JSON struct {
	Schema     string           `json:"schema"`
	NPEs       int              `json:"npes"`
	MakespanPs int64            `json:"makespan_ps"`
	BlamePs    map[string]int64 `json:"blame_ps"` // aggregate, keyed by Category.String()
	PEs        []JSONPE         `json:"pes"`
	Path       []JSONStep       `json:"critical_path"`
	Dropped    int64            `json:"dropped_segs,omitempty"`
}

// JSONPE is one PE's ledger row in the JSON snapshot.
type JSONPE struct {
	PE      int              `json:"pe"`
	EndPs   int64            `json:"end_ps"`
	SlackPs int64            `json:"slack_ps"`
	BlamePs map[string]int64 `json:"blame_ps"`
}

// JSONStep is one critical-path step in the JSON snapshot.
type JSONStep struct {
	PE      int32  `json:"pe"`
	Cat     string `json:"cat"`
	StartPs int64  `json:"start_ps"`
	EndPs   int64  `json:"end_ps"`
}

// Snapshot converts the profile to its JSON schema form.
func (p *Profile) Snapshot() *JSON {
	blame := func(b *[NumCategories]vtime.Duration) map[string]int64 {
		m := make(map[string]int64, NumCategories)
		for c := Category(0); c < NumCategories; c++ {
			if b[c] != 0 {
				m[c.String()] = int64(b[c])
			}
		}
		return m
	}
	j := &JSON{
		Schema:     "tshmem-profile/1",
		NPEs:       p.NPEs,
		MakespanPs: int64(p.Makespan),
		BlamePs:    blame(&p.Blame),
		PEs:        make([]JSONPE, 0, len(p.PEs)),
		Path:       make([]JSONStep, 0, len(p.Path)),
		Dropped:    p.DroppedSegs,
	}
	for i := range p.PEs {
		pe := &p.PEs[i]
		j.PEs = append(j.PEs, JSONPE{
			PE: pe.PE, EndPs: int64(pe.End), SlackPs: int64(pe.Slack),
			BlamePs: blame(&pe.Blame),
		})
	}
	for _, s := range p.Path {
		j.Path = append(j.Path, JSONStep{PE: s.PE, Cat: s.Cat.String(), StartPs: int64(s.Start), EndPs: int64(s.End)})
	}
	return j
}

// WriteJSON writes the "tshmem-profile/1" snapshot, indented, with a
// trailing newline. Map keys are emitted sorted by encoding/json, so the
// output is byte-deterministic.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Snapshot())
}

// ReadJSON loads a snapshot written by WriteJSON, rejecting unknown
// schemas.
func ReadJSON(path string) (*JSON, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var j JSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if j.Schema != "tshmem-profile/1" {
		return nil, fmt.Errorf("%s: unknown profile schema %q (want tshmem-profile/1)", path, j.Schema)
	}
	return &j, nil
}

// Diff attributes the makespan delta between two runs to blame
// categories: for each category, the change in its aggregate share of
// total PE-time. Rendered largest-|delta| first. This is the tool that
// turns "dissemination wins at n>=16" into an explanation: the diff
// shows *which* category (barrier.wait, udn.send, ...) gave the time
// back.
func Diff(base, cur *JSON) string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan: %.3f us -> %.3f us (%+.3f us, %+.1f%%)\n",
		float64(base.MakespanPs)/1e6, float64(cur.MakespanPs)/1e6,
		float64(cur.MakespanPs-base.MakespanPs)/1e6,
		pctDelta(base.MakespanPs, cur.MakespanPs))
	if base.NPEs != cur.NPEs {
		fmt.Fprintf(&b, "WARNING: PE counts differ (%d vs %d); aggregate blame compares total PE-time\n",
			base.NPEs, cur.NPEs)
	}
	type row struct {
		cat      string
		from, to int64
		delta    int64
	}
	names := make(map[string]bool)
	for k := range base.BlamePs {
		names[k] = true
	}
	for k := range cur.BlamePs {
		names[k] = true
	}
	rows := make([]row, 0, len(names))
	for k := range names {
		r := row{cat: k, from: base.BlamePs[k], to: cur.BlamePs[k]}
		r.delta = r.to - r.from
		rows = append(rows, r)
	}
	sort.Slice(rows, func(a, b int) bool {
		da, db := abs64(rows[a].delta), abs64(rows[b].delta)
		if da != db {
			return da > db
		}
		return rows[a].cat < rows[b].cat
	})
	fmt.Fprintf(&b, "%-12s %14s %14s %14s\n", "category", "base us", "cur us", "delta us")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %14.3f %14.3f %+14.3f\n",
			r.cat, float64(r.from)/1e6, float64(r.to)/1e6, float64(r.delta)/1e6)
	}
	return b.String()
}

func pctDelta(base, cur int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(cur-base) / float64(base)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
