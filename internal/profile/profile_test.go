package profile

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"strings"
	"testing"

	"tshmem/internal/sanitize"
	"tshmem/internal/stats"
	"tshmem/internal/vtime"
)

// sumBlame is the ledger invariant's left-hand side.
func sumBlame(b [NumCategories]vtime.Duration) vtime.Duration {
	var s vtime.Duration
	for _, d := range b {
		s += d
	}
	return s
}

func TestNilRecorderIsSafe(t *testing.T) {
	var p *Recorder
	p.Advance(CatUDNSend, 0, 100)
	p.Merge(CatUDNWait, 0, sanitize.Edge{PE: 0, Peer: 1, Sent: 10, Arrive: 20})
}

func TestAdvanceIgnoresEmptySpans(t *testing.T) {
	p := New(0)
	p.Advance(CatUDNSend, 100, 100)
	p.Advance(CatUDNSend, 100, 50)
	if len(p.segs) != 0 || p.ledger[CatUDNSend] != 0 {
		t.Fatalf("empty spans recorded: segs=%d ledger=%v", len(p.segs), p.ledger[CatUDNSend])
	}
}

// TestMergeSplit exercises the three-way wait/transport split.
func TestMergeSplit(t *testing.T) {
	t.Run("already-arrived", func(t *testing.T) {
		p := New(0)
		p.Merge(CatUDNWait, 100, sanitize.Edge{Peer: 1, Sent: 20, Arrive: 80})
		if len(p.segs) != 0 {
			t.Fatalf("arrive<=start must record nothing, got %d segs", len(p.segs))
		}
	})
	t.Run("idle-then-transport", func(t *testing.T) {
		p := New(0)
		p.Merge(CatBarrierWait, 100, sanitize.Edge{Peer: 3, Sent: 150, Arrive: 200})
		if p.ledger[CatBarrierWait] != 50 || p.ledger[CatMesh] != 50 {
			t.Fatalf("split = (%v idle, %v mesh), want (50, 50)",
				p.ledger[CatBarrierWait], p.ledger[CatMesh])
		}
		if len(p.segs) != 2 {
			t.Fatalf("want 2 segs, got %d", len(p.segs))
		}
		if p.segs[0].Peer != -1 {
			t.Fatalf("idle seg must carry no edge, got peer %d", p.segs[0].Peer)
		}
		if p.segs[1].Peer != 3 || p.segs[1].Cat != CatMesh || p.segs[1].Sent != 150 {
			t.Fatalf("transport seg = %+v", p.segs[1])
		}
	})
	t.Run("sent-before-start", func(t *testing.T) {
		// The dependency was published before we started waiting: the
		// whole span is transport, and the edge target keeps the original
		// (earlier) Sent so the walk jumps behind our start.
		p := New(0)
		p.Merge(CatUDNWait, 100, sanitize.Edge{Peer: 2, Sent: 60, Arrive: 180})
		if p.ledger[CatUDNWait] != 0 || p.ledger[CatMesh] != 80 {
			t.Fatalf("split = (%v idle, %v mesh), want (0, 80)",
				p.ledger[CatUDNWait], p.ledger[CatMesh])
		}
		if len(p.segs) != 1 || p.segs[0].Sent != 60 || p.segs[0].Start != 100 {
			t.Fatalf("transport seg = %+v", p.segs[0])
		}
	})
	t.Run("zero-transport", func(t *testing.T) {
		// WaitUntil shape: the store's visibility time is the writer's
		// clock, so Sent == Arrive. All idle, but the edge survives.
		p := New(0)
		p.Merge(CatUDNWait, 100, sanitize.Edge{Peer: 5, Sent: 200, Arrive: 200})
		if p.ledger[CatUDNWait] != 100 || p.ledger[CatMesh] != 0 {
			t.Fatalf("split = (%v idle, %v mesh), want (100, 0)",
				p.ledger[CatUDNWait], p.ledger[CatMesh])
		}
		if len(p.segs) != 1 || p.segs[0].Peer != 5 || p.segs[0].Sent != 200 {
			t.Fatalf("zero-transport seg = %+v", p.segs[0])
		}
	})
}

// TestAssembleInvariant checks the ledger invariant sum(Blame) == End and
// the compute residual.
func TestAssembleInvariant(t *testing.T) {
	p := New(0)
	p.Advance(CatUDNSend, 10, 30)
	p.Merge(CatBarrierWait, 50, sanitize.Edge{Peer: 1, Sent: 70, Arrive: 90})
	prof := Assemble([]*Recorder{p, nil}, []vtime.Time{100, 40})
	for i, pe := range prof.PEs {
		if got := sumBlame(pe.Blame); got != vtime.Duration(pe.End) {
			t.Fatalf("PE %d: sum(Blame) = %v, want End = %v", i, got, pe.End)
		}
	}
	// PE 0: 20 send + 20 idle + 20 mesh attributed, 40 compute residual.
	if prof.PEs[0].Blame[CatCompute] != 40 {
		t.Fatalf("compute residual = %v, want 40", prof.PEs[0].Blame[CatCompute])
	}
	// PE 1 has no recorder: its whole timeline is compute.
	if prof.PEs[1].Blame[CatCompute] != 40 {
		t.Fatalf("nil-recorder compute = %v, want 40", prof.PEs[1].Blame[CatCompute])
	}
	if prof.Makespan != 100 {
		t.Fatalf("makespan = %v, want 100", prof.Makespan)
	}
	if prof.PEs[1].Slack != 60 {
		t.Fatalf("PE 1 slack = %v, want 60", prof.PEs[1].Slack)
	}
}

// pathChecks asserts the structural critical-path invariants: steps are
// chronological, contiguous, start at 0, and end at the makespan.
func pathChecks(t *testing.T, prof *Profile) {
	t.Helper()
	if len(prof.Path) == 0 {
		t.Fatal("empty critical path")
	}
	if prof.Path[0].Start != 0 {
		t.Fatalf("path starts at %v, want 0", prof.Path[0].Start)
	}
	if got := prof.Path[len(prof.Path)-1].End; vtime.Duration(got) != prof.Makespan {
		t.Fatalf("path ends at %v, want makespan %v", got, prof.Makespan)
	}
	var sum vtime.Duration
	for i, s := range prof.Path {
		if s.End <= s.Start {
			t.Fatalf("step %d empty: %+v", i, s)
		}
		if i > 0 && s.Start != prof.Path[i-1].End {
			t.Fatalf("step %d not contiguous: prev end %v, start %v",
				i, prof.Path[i-1].End, s.Start)
		}
		sum += s.Dur()
	}
	if sum != prof.Makespan {
		t.Fatalf("step durations sum to %v, want makespan %v", sum, prof.Makespan)
	}
}

// TestCriticalPathHandBuilt walks a two-PE DAG with a known answer:
//
//	PE 0: compute [0,40), send [40,60) --edge--> idle on PE 1
//	PE 1: waits [0,100) for the packet sent at 60, arriving 100,
//	      then computes [100,140). Makespan 140 on PE 1.
//
// The path must be: PE0 compute+send [0,60), mesh [60,100) toward PE 1,
// PE1 compute [100,140). PE 1's idle wait [0,60) must NOT appear.
func TestCriticalPathHandBuilt(t *testing.T) {
	p0 := New(0)
	p0.Advance(CatUDNSend, 40, 60)
	p1 := New(1)
	p1.Merge(CatUDNWait, 0, sanitize.Edge{PE: 1, Peer: 0, Sent: 60, Arrive: 100})
	prof := Assemble([]*Recorder{p0, p1}, []vtime.Time{60, 140})
	pathChecks(t, prof)
	want := []Step{
		{PE: 0, Cat: CatCompute, Start: 0, End: 40},
		{PE: 0, Cat: CatUDNSend, Start: 40, End: 60},
		{PE: 1, Cat: CatMesh, Start: 60, End: 100},
		{PE: 1, Cat: CatCompute, Start: 100, End: 140},
	}
	if len(prof.Path) != len(want) {
		t.Fatalf("path = %+v, want %+v", prof.Path, want)
	}
	for i := range want {
		if prof.Path[i] != want[i] {
			t.Fatalf("step %d = %+v, want %+v", i, prof.Path[i], want[i])
		}
	}
}

// TestCriticalPathZeroTransport: a zero-transport edge (WaitUntil flag)
// must hop to the writer without emitting an empty step.
func TestCriticalPathZeroTransport(t *testing.T) {
	p0 := New(0) // writer: computes to 80, stores the flag at 80
	p1 := New(1)
	p1.Merge(CatUDNWait, 10, sanitize.Edge{PE: 1, Peer: 0, Sent: 80, Arrive: 80})
	prof := Assemble([]*Recorder{p0, p1}, []vtime.Time{80, 120})
	pathChecks(t, prof)
	// Expected: PE0 compute [0,80), PE1 compute [80,120).
	if len(prof.Path) != 2 || prof.Path[0].PE != 0 || prof.Path[1].PE != 1 {
		t.Fatalf("path = %+v", prof.Path)
	}
}

func TestTaxonomyCoversEveryCategory(t *testing.T) {
	tax := Taxonomy()
	if len(tax) != int(NumCategories) {
		t.Fatalf("taxonomy has %d entries, want %d", len(tax), NumCategories)
	}
	for i, e := range tax {
		if e.Name != Category(i).String() {
			t.Fatalf("entry %d = %q, want %q", i, e.Name, Category(i))
		}
		if c, ok := CategoryByName(e.Name); !ok || c != Category(i) {
			t.Fatalf("CategoryByName(%q) = %v, %v", e.Name, c, ok)
		}
	}
	if _, ok := CategoryByName("bogus"); ok {
		t.Fatal("CategoryByName accepted an unknown name")
	}
}

func TestRMAMapping(t *testing.T) {
	if RMA(stats.CacheL1d) != CatRMAL1d || RMA(stats.CacheDRAM) != CatRMADRAM {
		t.Fatal("RMA level mapping broken")
	}
	if RMA(stats.NumCacheLevels+3) != CatRMADRAM {
		t.Fatal("RMA must clamp out-of-range levels to DRAM")
	}
}

// sampleProfile builds a small deterministic profile for export tests.
// Times are in vtime's picosecond ticks at nanosecond scale, so the
// integer-ns exporters see nonzero weights.
func sampleProfile() *Profile {
	p0 := New(0)
	p0.Advance(CatUDNSend, 40_000, 60_000)
	p0.Advance(CatRMAL2, 60_000, 75_000)
	p1 := New(1)
	p1.Merge(CatBarrierWait, 0, sanitize.Edge{PE: 1, Peer: 0, Sent: 60_000, Arrive: 100_000})
	return Assemble([]*Recorder{p0, p1}, []vtime.Time{75_000, 140_000})
}

func TestWriteFolded(t *testing.T) {
	var b bytes.Buffer
	if err := sampleProfile().WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"PE 0;udn.send 20\n", "PE 0;rma.L2 15\n", "PE 0;compute 40\n",
		"PE 1;barrier.wait 60\n", "PE 1;mesh 40\n", "PE 1;compute 40\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("folded output missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasSuffix(line, " 0") {
			t.Fatalf("folded output contains zero-weight line %q", line)
		}
	}
}

func TestJSONRoundTripAndDiff(t *testing.T) {
	prof := sampleProfile()
	var b bytes.Buffer
	if err := prof.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/p.json"
	if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	js, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if js.Schema != "tshmem-profile/1" || js.NPEs != 2 || js.MakespanPs != int64(prof.Makespan) {
		t.Fatalf("round trip = %+v", js)
	}
	// Self-diff reports a zero makespan delta.
	d := Diff(js, js)
	if !strings.Contains(d, "+0.000") && !strings.Contains(d, "0.000") {
		t.Fatalf("self-diff: %s", d)
	}
	// A perturbed copy must surface the changed category first.
	other := *js
	other.BlamePs = map[string]int64{}
	for k, v := range js.BlamePs {
		other.BlamePs[k] = v
	}
	other.BlamePs["barrier.wait"] += 1_000_000
	d = Diff(js, &other)
	if !strings.Contains(d, "barrier.wait") {
		t.Fatalf("diff missing perturbed category:\n%s", d)
	}
}

func TestReadJSONRejectsForeignSchema(t *testing.T) {
	path := t.TempDir() + "/bad.json"
	if err := os.WriteFile(path, []byte(`{"schema":"something-else/9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(path); err == nil {
		t.Fatal("ReadJSON accepted a foreign schema")
	}
}

// TestWritePprof gunzips the export and checks the protobuf carries the
// expected strings and a plausible structure; go tool pprof itself is
// exercised by ci.sh.
func TestWritePprof(t *testing.T) {
	prof := sampleProfile()
	var b bytes.Buffer
	if err := prof.WritePprof(&b); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&b)
	if err != nil {
		t.Fatalf("export is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"virtualtime", "nanoseconds", "udn.send", "PE 1", "barrier.wait"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Fatalf("pprof protobuf missing %q", want)
		}
	}
	// Determinism: a second export is byte-identical (gzip header has no
	// timestamp).
	var b2 bytes.Buffer
	if err := prof.WritePprof(&b2); err != nil {
		t.Fatal(err)
	}
	// b was consumed by the reader; re-export.
	var b1 bytes.Buffer
	if err := prof.WritePprof(&b1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("pprof export is not byte-deterministic")
	}
}

func TestTablesRender(t *testing.T) {
	prof := sampleProfile()
	bt := prof.BlameTable()
	if !strings.Contains(bt, "barrier.wait") || !strings.Contains(bt, "TOTAL") {
		t.Fatalf("blame table:\n%s", bt)
	}
	pt := prof.PathTable()
	if !strings.Contains(pt, "critical path") || !strings.Contains(pt, "slack") {
		t.Fatalf("path table:\n%s", pt)
	}
}

// TestSegCapDrops fills a recorder past maxSegs and checks the ledger
// stays exact while the drop count surfaces.
func TestSegCapDrops(t *testing.T) {
	p := New(0)
	for i := 0; i < maxSegs+10; i++ {
		t0 := vtime.Time(i * 2)
		p.Advance(CatUDNSend, t0, t0+1)
	}
	if p.dropped != 10 {
		t.Fatalf("dropped = %d, want 10", p.dropped)
	}
	if p.ledger[CatUDNSend] != vtime.Duration(maxSegs+10) {
		t.Fatalf("ledger lost dropped time: %v", p.ledger[CatUDNSend])
	}
	prof := Assemble([]*Recorder{p}, []vtime.Time{vtime.Time(2 * (maxSegs + 10))})
	if prof.DroppedSegs != 10 {
		t.Fatalf("profile dropped = %d", prof.DroppedSegs)
	}
	if !strings.Contains(prof.BlameTable(), "WARNING") {
		t.Fatal("blame table must warn about dropped segments")
	}
}
