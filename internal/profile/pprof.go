package profile

import (
	"compress/gzip"
	"fmt"
	"io"
	"math"
)

// WritePprof writes the blame ledger as a gzipped pprof protobuf that
// `go tool pprof` reads unmodified:
//
//	go tool pprof -top profile.pb.gz
//
// One sample per nonzero (PE, category) pair with stack [category, PE]
// (leaf first), sample type virtualtime/nanoseconds. The message is
// hand-encoded — the wire format needs only varints and length-delimited
// fields — so no protobuf dependency is introduced. Field numbers follow
// github.com/google/pprof/proto/profile.proto.
func (p *Profile) WritePprof(w io.Writer) error {
	var e pbuf

	// String table: index 0 must be "".
	strs := []string{"", "virtualtime", "nanoseconds"}
	intern := func(s string) uint64 {
		for i, have := range strs {
			if have == s {
				return uint64(i)
			}
		}
		strs = append(strs, s)
		return uint64(len(strs) - 1)
	}

	// Functions and locations: one per category name and one per PE
	// frame, ids starting at 1. Location ids equal function ids.
	type frame struct{ name string }
	frames := make([]frame, 0, int(NumCategories)+p.NPEs)
	frameID := make(map[string]uint64)
	frameFor := func(name string) uint64 {
		if id, ok := frameID[name]; ok {
			return id
		}
		frames = append(frames, frame{name})
		id := uint64(len(frames))
		frameID[name] = id
		return id
	}

	// Samples.
	var samples []byte
	for i := range p.PEs {
		pe := &p.PEs[i]
		for c := Category(0); c < NumCategories; c++ {
			ns := int64(math.Round(pe.Blame[c].Ns()))
			if ns <= 0 {
				continue
			}
			var s pbuf
			s.varintField(1, frameFor(c.String())) // leaf: the category
			s.varintField(1, frameFor(fmt.Sprintf("PE %d", pe.PE)))
			s.varintField(2, uint64(ns))
			samples = append(samples, lenField(2, s.b)...)
		}
	}

	// sample_type: ValueType{type: "virtualtime", unit: "nanoseconds"}.
	var vt pbuf
	vt.varintField(1, intern("virtualtime"))
	vt.varintField(2, intern("nanoseconds"))
	e.b = append(e.b, lenField(1, vt.b)...)
	e.b = append(e.b, samples...)
	for i, f := range frames {
		id := uint64(i + 1)
		var line pbuf
		line.varintField(1, id) // function_id
		var loc pbuf
		loc.varintField(1, id) // location id
		loc.b = append(loc.b, lenField(4, line.b)...)
		e.b = append(e.b, lenField(4, loc.b)...)

		var fn pbuf
		fn.varintField(1, id)             // function id
		fn.varintField(2, intern(f.name)) // name
		e.b = append(e.b, lenField(5, fn.b)...)
	}
	for _, s := range strs {
		e.b = append(e.b, lenField(6, []byte(s))...)
	}
	// duration_nanos (field 10): the virtual makespan.
	e.varintField(10, uint64(int64(math.Round(p.Makespan.Ns()))))

	gz := gzip.NewWriter(w) // zero ModTime => byte-deterministic output
	if _, err := gz.Write(e.b); err != nil {
		return err
	}
	return gz.Close()
}

// pbuf is a minimal protobuf wire encoder: varint and length-delimited
// fields only, which is all profile.proto needs here.
type pbuf struct{ b []byte }

func (e *pbuf) varint(v uint64) {
	for v >= 0x80 {
		e.b = append(e.b, byte(v)|0x80)
		v >>= 7
	}
	e.b = append(e.b, byte(v))
}

// varintField emits a varint-typed field (wire type 0).
func (e *pbuf) varintField(field int, v uint64) {
	e.varint(uint64(field)<<3 | 0)
	e.varint(v)
}

// lenField encodes a length-delimited field (wire type 2).
func lenField(field int, body []byte) []byte {
	var e pbuf
	e.varint(uint64(field)<<3 | 2)
	e.varint(uint64(len(body)))
	return append(e.b, body...)
}
