// Package profile is the virtual-time causal profiler. It answers the
// question the counters and histograms cannot: *why* a run's makespan is
// what it is.
//
// Two products per run, both assembled from the same per-PE segment
// streams:
//
//   - A per-PE blame ledger that partitions 100% of each PE's virtual
//     makespan into categories (compute, udn.send, udn.wait,
//     barrier.wait, lock.wait, rma copy by cache level, mesh
//     serialization, fault stall). The partition is exact by
//     construction: every instrumented clock advance is attributed to
//     exactly one category, and whatever virtual time remains is compute
//     — so the categories always sum to the PE's end time, an invariant
//     the tests enforce on every probe and example.
//
//   - A critical path over the happens-before DAG: the op-by-op chain of
//     segments (linked by the same synchronization edges core emits to
//     the sanitizer, see sanitize.Edge) that determined the run's end
//     time, plus the slack of every PE off that chain.
//
// The recorder follows the same discipline as stats.Recorder and the
// sanitizer hooks: methods are nil-safe so instrumentation sites call
// unconditionally, and with Config.Profile off the recorder pointer is
// nil and the hot paths allocate nothing (CI-gated alongside the stats
// and sanitize gates).
//
// Exports: text blame table (BlameTable), folded stacks for
// speedscope/inferno (WriteFolded, weights in virtual nanoseconds),
// pprof protobuf readable by `go tool pprof` unmodified (WritePprof),
// and a JSON snapshot (WriteJSON) consumed by `tshmem-bench
// -profile-diff`.
package profile

import (
	"fmt"
	"sort"
	"strings"

	"tshmem/internal/sanitize"
	"tshmem/internal/stats"
	"tshmem/internal/vtime"
)

// Category is one slot of the per-PE blame ledger. Every picosecond of a
// PE's virtual makespan lands in exactly one Category.
type Category uint8

const (
	// CatCompute is the residual: modeled local work (flops, int ops,
	// random access, protocol software overhead such as send-call and
	// arbiter charges) not attributed to any other category.
	CatCompute Category = iota
	// CatUDNSend is time spent injecting UDN packets into the mesh
	// (occupancy + per-word serialization on the sender).
	CatUDNSend
	// CatUDNWait is idle time blocked on a UDN receive, collective
	// signal, or symmetric-memory WaitUntil before the awaited value was
	// even published by its producer.
	CatUDNWait
	// CatBarrierWait is idle time blocked in a barrier before the
	// dependency that released this PE was published.
	CatBarrierWait
	// CatLockWait is time spent waiting for a lock: spin backoff plus
	// idle time before the previous holder released.
	CatLockWait
	// CatRMAL1d..CatRMADRAM is time spent copying symmetric data, split
	// by the cache level that backed the transfer (mirrors
	// stats.CacheLevel order).
	CatRMAL1d
	CatRMAL2
	CatRMADDC
	CatRMADRAM
	// CatMesh is transport/serialization time: the tail of a wait that
	// elapsed after the awaited dependency was published (in-flight
	// mesh/fabric propagation), plus explicit fabric data charges.
	CatMesh
	// CatFault is stall time attributable to the fault injector: bounded
	// waits that ran to their timeout deadline, and injected send/copy
	// penalties.
	CatFault

	// NumCategories bounds the Category enum.
	NumCategories
)

var catNames = [NumCategories]string{
	"compute", "udn.send", "udn.wait", "barrier.wait", "lock.wait",
	"rma.L1d", "rma.L2", "rma.DDC", "rma.DRAM", "mesh", "fault.stall",
}

func (c Category) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// RMA maps a cache level to its blame category.
func RMA(level stats.CacheLevel) Category {
	if level >= stats.NumCacheLevels {
		return CatRMADRAM
	}
	return CatRMAL1d + Category(level)
}

// CategoryByName inverts String; ok is false for unknown names.
func CategoryByName(name string) (Category, bool) {
	for i, n := range catNames {
		if n == name {
			return Category(i), true
		}
	}
	return 0, false
}

// TaxEntry is one row of the blame-category taxonomy listing
// (tshmem-info -profile).
type TaxEntry struct {
	Name string
	Desc string
}

// Taxonomy lists every blame category with a one-line definition, in
// ledger order.
func Taxonomy() []TaxEntry {
	return []TaxEntry{
		{"compute", "residual local work: flops/int/random-access charges and protocol software overhead"},
		{"udn.send", "UDN packet injection: sender-side occupancy and per-word serialization"},
		{"udn.wait", "idle in a UDN receive / collective signal / WaitUntil before the value was published"},
		{"barrier.wait", "idle in a barrier before the releasing dependency was published"},
		{"lock.wait", "lock acquisition: spin backoff plus idle before the prior holder released"},
		{"rma.L1d", "symmetric-data copy time backed by the tile's L1d"},
		{"rma.L2", "symmetric-data copy time backed by the tile's L2"},
		{"rma.DDC", "symmetric-data copy time backed by the chip-wide distributed DDC"},
		{"rma.DRAM", "symmetric-data copy time backed by external DRAM"},
		{"mesh", "transport: in-flight mesh/fabric propagation after the dependency was published"},
		{"fault.stall", "injected-fault stalls: timed-out bounded waits and fault send/copy penalties"},
	}
}

// Seg is one attributed interval of a PE's timeline. Peer < 0 means the
// segment has no incoming happens-before edge (local work or idle wait);
// Peer >= 0 links the segment to the producing PE's timeline at virtual
// time Sent (see sanitize.Edge).
type Seg struct {
	Start vtime.Time
	End   vtime.Time
	Sent  vtime.Time
	Peer  int32
	Cat   Category
}

// maxSegs bounds one PE's segment stream (~8 MiB/PE worst case). Beyond
// the cap the ledger stays exact but the critical path degrades: dropped
// segments fold into compute gaps. DroppedSegs surfaces the loss.
const maxSegs = 1 << 18

// Recorder accumulates one PE's blame ledger and segment stream. All
// methods are nil-safe no-ops on a nil receiver and must only be called
// from the owning PE's goroutine (same single-writer rule as
// stats.Recorder).
type Recorder struct {
	pe      int32
	ledger  [NumCategories]vtime.Duration
	segs    []Seg
	dropped int64
}

// New returns a Recorder for global PE id pe.
func New(pe int) *Recorder {
	return &Recorder{pe: int32(pe), segs: make([]Seg, 0, 256)}
}

func (p *Recorder) push(s Seg) {
	if len(p.segs) >= maxSegs {
		p.dropped++
		return
	}
	p.segs = append(p.segs, s)
}

// Advance attributes the local span [start, end) to cat. No
// happens-before edge: the critical-path walk continues on this PE.
// Zero- and negative-duration spans are ignored.
func (p *Recorder) Advance(cat Category, start, end vtime.Time) {
	if p == nil || end <= start {
		return
	}
	p.ledger[cat] += end.Sub(start)
	p.push(Seg{Start: start, End: end, Peer: -1, Cat: cat})
}

// Merge attributes a cross-PE wait that began at start and completed when
// edge e arrived. The span [start, max(start, e.Arrive)) is split on
// e.Sent — the moment the awaited dependency was published:
//
//   - [start, sent): idle blame on cat (the producer hadn't produced yet);
//     no edge, so idle waiting is never on the critical path.
//   - [sent, end): CatMesh transport, carrying the edge to (e.Peer,
//     e.Sent) that the critical-path walk follows.
//
// A dependency published exactly when it became visible (e.Sent ==
// e.Arrive, e.g. a local flag store observed by WaitUntil) has zero
// transport: the whole span is idle blame on cat, but the segment keeps
// the edge so the critical path still jumps to the writer.
//
// If the dependency arrived before the wait began (e.Arrive <= start) no
// time elapsed and nothing is recorded: the merge did not determine this
// PE's timeline.
func (p *Recorder) Merge(cat Category, start vtime.Time, e sanitize.Edge) {
	if p == nil || e.Arrive <= start {
		return
	}
	end := e.Arrive
	sent := e.Sent
	if sent > end {
		sent = end
	}
	if sent >= end {
		// Zero-transport edge: all idle, edge preserved.
		p.ledger[cat] += end.Sub(start)
		p.push(Seg{Start: start, End: end, Sent: end, Peer: e.Peer, Cat: cat})
		return
	}
	if sent > start {
		// Idle portion: the producer had not yet published.
		p.ledger[cat] += sent.Sub(start)
		p.push(Seg{Start: start, End: sent, Peer: -1, Cat: cat})
	} else {
		sent = start
	}
	// In-flight portion, carrying the jump target (possibly before start:
	// transport that began before this PE started waiting).
	p.ledger[CatMesh] += end.Sub(sent)
	p.push(Seg{Start: sent, End: end, Sent: e.Sent, Peer: e.Peer, Cat: CatMesh})
}

// PEProfile is one PE's finished blame ledger.
type PEProfile struct {
	PE  int
	End vtime.Time // the PE's final virtual clock (its makespan)
	// Blame partitions [0, End) exactly: sum(Blame) == End - 0. Compute
	// is the residual after all attributed categories.
	Blame       [NumCategories]vtime.Duration
	DroppedSegs int64
	// Slack is how much later this PE could have finished without moving
	// the run's makespan: Makespan - End.
	Slack vtime.Duration
}

// Profile is a whole run's causal profile.
type Profile struct {
	NPEs     int
	Makespan vtime.Duration
	// Blame aggregates the per-PE ledgers (sums to NPEs * average end).
	Blame [NumCategories]vtime.Duration
	PEs   []PEProfile
	// Path is the critical path, chronological; its step durations sum
	// exactly to Makespan. Empty only for empty runs.
	Path        []Step
	DroppedSegs int64
}

// Assemble finalizes the per-PE recorders into a Profile. ends[i] is PE
// i's final virtual clock. recs[i] may be nil (PE emitted nothing: its
// whole timeline is compute). Assemble is called once, after the run, on
// quiescent recorders.
func Assemble(recs []*Recorder, ends []vtime.Time) *Profile {
	n := len(ends)
	prof := &Profile{NPEs: n, PEs: make([]PEProfile, n)}
	for i := 0; i < n; i++ {
		pp := &prof.PEs[i]
		pp.PE = i
		pp.End = ends[i]
		if r := recs[i]; r != nil {
			pp.Blame = r.ledger
			pp.DroppedSegs = r.dropped
			prof.DroppedSegs += r.dropped
			// Defensive: segments are appended in program order by the
			// owning goroutine, so they arrive sorted; keep the walk's
			// precondition explicit.
			sort.SliceStable(r.segs, func(a, b int) bool { return r.segs[a].Start < r.segs[b].Start })
		}
		var attributed vtime.Duration
		for c := CatCompute + 1; c < NumCategories; c++ {
			attributed += pp.Blame[c]
		}
		// Compute is the residual; the ledger invariant (sum == End)
		// holds exactly. A negative residual would mean double
		// attribution — surfaced as-is so tests catch it.
		pp.Blame[CatCompute] = vtime.Duration(pp.End) - attributed
		if vtime.Duration(pp.End) > prof.Makespan {
			prof.Makespan = vtime.Duration(pp.End)
		}
		for c := Category(0); c < NumCategories; c++ {
			prof.Blame[c] += pp.Blame[c]
		}
	}
	for i := range prof.PEs {
		prof.PEs[i].Slack = prof.Makespan - vtime.Duration(prof.PEs[i].End)
	}
	prof.Path = criticalPath(recs, ends)
	return prof
}

// BlameTable renders the per-PE ledger as text: one row per PE plus
// aggregate TOTAL and share rows. Values are virtual microseconds.
func (p *Profile) BlameTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "PE")
	for c := Category(0); c < NumCategories; c++ {
		fmt.Fprintf(&b, " %12s", c.String())
	}
	fmt.Fprintf(&b, " %12s\n", "end")
	us := func(d vtime.Duration) string { return fmt.Sprintf("%.3f", d.Us()) }
	for i := range p.PEs {
		pe := &p.PEs[i]
		fmt.Fprintf(&b, "%-6d", pe.PE)
		for c := Category(0); c < NumCategories; c++ {
			fmt.Fprintf(&b, " %12s", us(pe.Blame[c]))
		}
		fmt.Fprintf(&b, " %12s\n", us(vtime.Duration(pe.End)))
	}
	var total vtime.Duration
	for c := Category(0); c < NumCategories; c++ {
		total += p.Blame[c]
	}
	fmt.Fprintf(&b, "%-6s", "TOTAL")
	for c := Category(0); c < NumCategories; c++ {
		fmt.Fprintf(&b, " %12s", us(p.Blame[c]))
	}
	fmt.Fprintf(&b, " %12s\n", us(total))
	fmt.Fprintf(&b, "%-6s", "share")
	for c := Category(0); c < NumCategories; c++ {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(p.Blame[c]) / float64(total)
		}
		fmt.Fprintf(&b, " %11.1f%%", pct)
	}
	b.WriteString("\n")
	if p.DroppedSegs > 0 {
		fmt.Fprintf(&b, "WARNING: %d profile segments dropped (cap %d/PE); critical path degraded\n",
			p.DroppedSegs, maxSegs)
	}
	return b.String()
}
