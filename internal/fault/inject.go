package fault

import (
	"sync/atomic"

	"tshmem/internal/cache"
	"tshmem/internal/mesh"
	"tshmem/internal/vtime"
)

// Injector executes a validated Plan for one program run. All methods are
// nil-safe: a nil *Injector is the faults-disabled state and costs one
// branch on the hot path. Per-event perturbation counts are kept with
// atomic adds so concurrent PE goroutines never race; everything else is
// read-only after construction.
type Injector struct {
	plan    *Plan
	counts  []int64 // perturbations per plan event, atomically updated
	npes    int
	perChip int
}

// NewInjector builds an Injector for a program of npes PEs split into
// chips of perChip tiles. A nil plan yields a nil Injector (faults off).
// The plan must already be validated.
func NewInjector(plan *Plan, npes, perChip int) *Injector {
	if plan == nil {
		return nil
	}
	if perChip <= 0 {
		perChip = npes
	}
	return &Injector{
		plan:    plan,
		counts:  make([]int64, len(plan.Events)),
		npes:    npes,
		perChip: perChip,
	}
}

// Active reports whether fault injection is on.
func (in *Injector) Active() bool { return in != nil }

// Plan returns the executed plan (nil when faults are off).
func (in *Injector) Plan() *Plan {
	if in == nil {
		return nil
	}
	return in.plan
}

// Counts returns a snapshot of per-event perturbation counts, indexed
// like Plan().Events.
func (in *Injector) Counts() []int64 {
	if in == nil {
		return nil
	}
	out := make([]int64, len(in.counts))
	for i := range in.counts {
		out[i] = atomic.LoadInt64(&in.counts[i])
	}
	return out
}

func (in *Injector) count(id int) {
	if id >= 0 && id < len(in.counts) {
		atomic.AddInt64(&in.counts[id], 1)
	}
}

// Blame picks the plan event most plausibly responsible for a wait that
// started at virtual time t on tile pe: an event targeting pe that is
// active at t, else any event active at t, else the last event that had
// already started, else -1. Purely a diagnostic aid — deterministic, and
// honest about being a heuristic.
func (in *Injector) Blame(pe int, t vtime.Time) int {
	if in == nil {
		return -1
	}
	anyActive, started := -1, -1
	for i := range in.plan.Events {
		e := &in.plan.Events[i]
		if e.active(t) {
			if e.Kind != LinkSlow && e.Tile == pe {
				return i
			}
			if anyActive < 0 {
				anyActive = i
			}
		}
		if e.Start <= t {
			started = i
		}
	}
	if anyActive >= 0 {
		return anyActive
	}
	return started
}

// CopyExtra returns the additional virtual cost a charged memory copy of
// base duration incurs on tile pe (global rank) at virtual time now,
// given the run's homing policy, plus the id of the last contributing
// event (-1 if none). TileSlow events scale the whole copy; CacheStuck
// events scale the share of the copy homed at the stuck tile.
func (in *Injector) CopyExtra(pe int, h cache.Homing, tiles int, now vtime.Time, base vtime.Duration) (vtime.Duration, int) {
	if in == nil || base <= 0 {
		return 0, -1
	}
	var extra vtime.Duration
	id := -1
	for i := range in.plan.Events {
		e := &in.plan.Events[i]
		if !e.active(now) || e.Factor <= 1 {
			continue
		}
		switch e.Kind {
		case TileSlow:
			if e.Tile == pe {
				extra += vtime.Duration(float64(base) * (e.Factor - 1))
				id = i
				in.count(i)
			}
		case CacheStuck:
			// A stuck home tile only matters for copies on its own chip.
			if e.Tile/in.perChip != pe/in.perChip {
				continue
			}
			share := cache.HomeShare(h, pe%in.perChip, e.Tile%in.perChip, tiles)
			if share <= 0 {
				continue
			}
			extra += vtime.Duration(float64(base) * (e.Factor - 1) * share)
			id = i
			in.count(i)
		}
	}
	return extra, id
}

// Chip returns a view of the injector scoped to one chip whose tiles are
// the global ranks [base, base+tiles). udn.Network holds one per chip;
// its methods translate the network's local CPU numbers to global ranks.
// Nil-safe: a nil Injector yields a nil view.
func (in *Injector) Chip(base int, geo mesh.Geometry) *ChipView {
	if in == nil {
		return nil
	}
	return &ChipView{in: in, base: base, geo: geo}
}

// ChipView applies an Injector to one chip's UDN. All methods take local
// CPU numbers and are nil-safe and allocation-free.
type ChipView struct {
	in   *Injector
	base int
	geo  mesh.Geometry
}

// AdjustSend perturbs the latency of a UDN packet from local CPU src to
// local CPU dst that would normally cost send (sender occupancy) + wire.
// It returns the adjusted pair, the id of the last applied event (-1 when
// untouched), and drop=true when a TileDead event swallows the packet.
func (cv *ChipView) AdjustSend(src, dst int, now vtime.Time, send, wire vtime.Duration) (vtime.Duration, vtime.Duration, int, bool) {
	if cv == nil {
		return send, wire, -1, false
	}
	gsrc, gdst := cv.base+src, cv.base+dst
	id := -1
	for i := range cv.in.plan.Events {
		e := &cv.in.plan.Events[i]
		if !e.active(now) {
			continue
		}
		switch e.Kind {
		case TileDead:
			if e.Tile == gsrc || e.Tile == gdst {
				cv.in.count(i)
				return send, wire, i, true
			}
		case TileSlow:
			if e.Tile == gsrc && e.Factor > 1 {
				send = vtime.Duration(float64(send) * e.Factor)
				wire = vtime.Duration(float64(wire) * e.Factor)
				id = i
				cv.in.count(i)
			}
		case LinkSlow:
			on, err := cv.geo.RouteUsesLink(src, dst, e.From-cv.base, e.To-cv.base)
			if err != nil || !on {
				continue
			}
			if e.Factor > 1 {
				wire = vtime.Duration(float64(wire) * e.Factor)
			}
			wire += e.Extra
			id = i
			cv.in.count(i)
		}
	}
	return send, wire, id, false
}

// HoldArrive applies demux-queue stalls to a packet arriving at local CPU
// dst's demux queue dq at virtual time arrive. It returns the (possibly
// deferred) arrival time, the id of the applied event, and drop=true when
// an end-less stall swallows the packet.
func (cv *ChipView) HoldArrive(dst, dq int, arrive vtime.Time) (vtime.Time, int, bool) {
	if cv == nil {
		return arrive, -1, false
	}
	gdst := cv.base + dst
	id := -1
	for i := range cv.in.plan.Events {
		e := &cv.in.plan.Events[i]
		if e.Kind != UDNStall || e.Tile != gdst || !e.active(arrive) {
			continue
		}
		if e.Queue >= 0 && e.Queue != dq {
			continue
		}
		cv.in.count(i)
		if e.End == 0 {
			return arrive, i, true
		}
		if e.End > arrive {
			arrive = e.End
		}
		id = i
	}
	return arrive, id, false
}

// DropInterrupt reports whether a UDN interrupt raised by local CPU src
// toward local CPU dst at virtual time now is dropped, and by which
// event.
func (cv *ChipView) DropInterrupt(src, dst int, now vtime.Time) (int, bool) {
	if cv == nil {
		return -1, false
	}
	gsrc, gdst := cv.base+src, cv.base+dst
	for i := range cv.in.plan.Events {
		e := &cv.in.plan.Events[i]
		if !e.active(now) {
			continue
		}
		switch e.Kind {
		case TileDead:
			if e.Tile == gsrc || e.Tile == gdst {
				cv.in.count(i)
				return i, true
			}
		case UDNDropIntr:
			if e.Tile == gdst {
				cv.in.count(i)
				return i, true
			}
		}
	}
	return -1, false
}
