package fault

import (
	"reflect"
	"strings"
	"testing"

	"tshmem/internal/arch"
	"tshmem/internal/cache"
	"tshmem/internal/mesh"
	"tshmem/internal/vtime"
)

func TestParseSeed(t *testing.T) {
	for _, spec := range []string{"42", "seed:42"} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if p.Seed != 42 || len(p.Events) != 0 {
			t.Fatalf("Parse(%q) = %+v, want seed-only plan", spec, p)
		}
	}
}

func TestParseLiteral(t *testing.T) {
	p, err := Parse("stall:pe=3,q=0,start=1us,end=40us; linkslow:from=0,to=1,factor=8,extra=50ns")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: UDNStall, Tile: 3, Queue: 0, Factor: 1,
			Start: vtime.Time(vtime.FromNs(1e3)), End: vtime.Time(vtime.FromNs(40e3))},
		{Kind: LinkSlow, From: 0, To: 1, Queue: -1, Factor: 8, Extra: vtime.FromNs(50)},
	}
	if !reflect.DeepEqual(p.Events, want) {
		t.Fatalf("events = %+v, want %+v", p.Events, want)
	}
	if err := p.Validate(16); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := "stall:pe=3,q=0,start=1000ns,end=40000ns;tileslow:pe=5,factor=4;tiledead:pe=7,start=10000ns;cachestuck:pe=1,factor=16;dropintr:pe=2"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", p.String(), err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Fatalf("round trip: %+v != %+v", p, p2)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{"", "bogus:pe=1", "stall:pe", "stall:wat=1", "stall:pe=x", "linkslow:from=0,to=1,extra=-5ns"} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error", spec)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []Plan{
		{Events: []Event{{Kind: UDNStall, Tile: 99, Queue: -1, Factor: 1}}},
		{Events: []Event{{Kind: UDNStall, Tile: 0, Queue: 7, Factor: 1}}},
		{Events: []Event{{Kind: LinkSlow, From: -1, To: 0, Factor: 2}}},
		{Events: []Event{{Kind: TileSlow, Tile: 0, Factor: 0.5}}},
		{Events: []Event{{Kind: UDNStall, Tile: 0, Queue: -1, Factor: 1,
			Start: vtime.Time(vtime.FromNs(100)), End: vtime.Time(vtime.FromNs(10))}}},
	}
	for i := range cases {
		if err := cases[i].Validate(16); err == nil {
			t.Errorf("case %d: want validation error, got nil (%+v)", i, cases[i].Events)
		}
	}
}

func TestFromSeedDeterministic(t *testing.T) {
	a := FromSeed(7, 16)
	b := FromSeed(7, 16)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%+v\n%+v", a, b)
	}
	if len(a.Events) == 0 {
		t.Fatal("seeded plan has no events")
	}
	if err := a.Validate(16); err != nil {
		t.Fatalf("seeded plan invalid: %v", err)
	}
	// Seeded plans are transient: every window must close.
	for i, e := range a.Events {
		if e.End == 0 {
			t.Errorf("event %d: seeded plans must not contain forever events", i)
		}
	}
	if c := FromSeed(8, 16); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestFromSeedAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		for _, npes := range []int{2, 3, 4, 5, 16, 36} {
			if err := FromSeed(seed, npes).Validate(npes); err != nil {
				t.Fatalf("seed %d npes %d: %v", seed, npes, err)
			}
		}
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if in.Active() || in.Plan() != nil || in.Counts() != nil {
		t.Fatal("nil Injector not inert")
	}
	if id := in.Blame(0, 0); id != -1 {
		t.Fatalf("nil Blame = %d", id)
	}
	if d, id := in.CopyExtra(0, cache.HashForHome, 36, 0, vtime.FromNs(10)); d != 0 || id != -1 {
		t.Fatalf("nil CopyExtra = %v, %d", d, id)
	}
	var cv *ChipView = in.Chip(0, mesh.Geometry{})
	if cv != nil {
		t.Fatal("nil Injector.Chip should be nil")
	}
	s, w, id, drop := cv.AdjustSend(0, 1, 0, 1, 2)
	if s != 1 || w != 2 || id != -1 || drop {
		t.Fatal("nil AdjustSend not identity")
	}
	at, id, drop := cv.HoldArrive(0, 0, 5)
	if at != 5 || id != -1 || drop {
		t.Fatal("nil HoldArrive not identity")
	}
	if id, drop := cv.DropInterrupt(0, 1, 0); id != -1 || drop {
		t.Fatal("nil DropInterrupt not identity")
	}
}

func geo16(t *testing.T) mesh.Geometry {
	t.Helper()
	g, err := mesh.AreaGeometry(arch.Gx8036(), 16)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestHoldArrive(t *testing.T) {
	end := vtime.Time(vtime.FromNs(100))
	plan := &Plan{Events: []Event{
		{Kind: UDNStall, Tile: 3, Queue: 0, Factor: 1, Start: vtime.Time(vtime.FromNs(10)), End: end},
	}}
	cv := NewInjector(plan, 16, 16).Chip(0, geo16(t))

	// Before the window: untouched.
	if at, _, drop := cv.HoldArrive(3, 0, vtime.Time(vtime.FromNs(5))); at != vtime.Time(vtime.FromNs(5)) || drop {
		t.Fatalf("pre-window arrival perturbed: %v", at)
	}
	// Inside the window: deferred to End.
	if at, id, drop := cv.HoldArrive(3, 0, vtime.Time(vtime.FromNs(50))); at != end || id != 0 || drop {
		t.Fatalf("in-window arrival = %v id %d drop %v, want %v, 0, false", at, id, drop, end)
	}
	// Wrong queue or wrong tile: untouched.
	if at, _, _ := cv.HoldArrive(3, 2, vtime.Time(vtime.FromNs(50))); at != vtime.Time(vtime.FromNs(50)) {
		t.Fatal("wrong-queue arrival perturbed")
	}
	if at, _, _ := cv.HoldArrive(4, 0, vtime.Time(vtime.FromNs(50))); at != vtime.Time(vtime.FromNs(50)) {
		t.Fatal("wrong-tile arrival perturbed")
	}

	// Forever stall drops.
	forever := &Plan{Events: []Event{{Kind: UDNStall, Tile: 3, Queue: -1, Factor: 1}}}
	cvf := NewInjector(forever, 16, 16).Chip(0, geo16(t))
	if _, _, drop := cvf.HoldArrive(3, 1, vtime.Time(vtime.FromNs(50))); !drop {
		t.Fatal("forever stall did not drop")
	}
}

func TestAdjustSend(t *testing.T) {
	plan := &Plan{Events: []Event{
		{Kind: TileSlow, Tile: 2, Queue: -1, Factor: 4},
		{Kind: LinkSlow, From: 0, To: 1, Queue: -1, Factor: 2, Extra: vtime.FromNs(10)},
		{Kind: TileDead, Tile: 9, Queue: -1, Factor: 1, Start: vtime.Time(vtime.FromNs(100))},
	}}
	in := NewInjector(plan, 16, 16)
	cv := in.Chip(0, geo16(t))
	send, wire := vtime.FromNs(3), vtime.FromNs(7)

	// Slow tile 2 scales both legs.
	s, w, id, drop := cv.AdjustSend(2, 5, 0, send, wire)
	if drop || id != 0 || s != 4*send || w != 4*wire {
		t.Fatalf("tileslow: s=%v w=%v id=%d drop=%v", s, w, id, drop)
	}
	// Route 0->3 crosses link 0->1 on the horizontal leg (row 0 of a 4x4 grid).
	s, w, id, drop = cv.AdjustSend(0, 3, 0, send, wire)
	if drop || id != 1 || s != send || w != 2*wire+vtime.FromNs(10) {
		t.Fatalf("linkslow: s=%v w=%v id=%d drop=%v", s, w, id, drop)
	}
	// Reverse direction 3->0 does not use the directed 0->1 link.
	s, w, id, drop = cv.AdjustSend(3, 0, 0, send, wire)
	if drop || id != -1 || s != send || w != wire {
		t.Fatalf("reverse link perturbed: s=%v w=%v id=%d", s, w, id)
	}
	// Dead tile drops, but only inside its window.
	if _, _, _, drop = cv.AdjustSend(9, 5, vtime.Time(vtime.FromNs(50)), send, wire); drop {
		t.Fatal("tiledead dropped before its start")
	}
	if _, _, id, drop = cv.AdjustSend(5, 9, vtime.Time(vtime.FromNs(200)), send, wire); !drop || id != 2 {
		t.Fatalf("tiledead did not drop toward dead tile: id=%d drop=%v", id, drop)
	}

	counts := in.Counts()
	if counts[0] == 0 || counts[1] == 0 || counts[2] == 0 {
		t.Fatalf("counts not recorded: %v", counts)
	}
}

func TestDropInterrupt(t *testing.T) {
	plan := &Plan{Events: []Event{
		{Kind: UDNDropIntr, Tile: 4, Queue: -1, Factor: 1},
		{Kind: TileDead, Tile: 7, Queue: -1, Factor: 1},
	}}
	cv := NewInjector(plan, 16, 16).Chip(0, geo16(t))
	if id, drop := cv.DropInterrupt(0, 4, 0); !drop || id != 0 {
		t.Fatalf("dropintr miss: id=%d drop=%v", id, drop)
	}
	if id, drop := cv.DropInterrupt(7, 3, 0); !drop || id != 1 {
		t.Fatalf("tiledead src intr miss: id=%d drop=%v", id, drop)
	}
	if _, drop := cv.DropInterrupt(0, 3, 0); drop {
		t.Fatal("healthy interrupt dropped")
	}
}

func TestCopyExtra(t *testing.T) {
	plan := &Plan{Events: []Event{
		{Kind: TileSlow, Tile: 2, Queue: -1, Factor: 3},
		{Kind: CacheStuck, Tile: 5, Queue: -1, Factor: 17},
	}}
	in := NewInjector(plan, 16, 16)
	base := vtime.FromNs(100)

	// TileSlow: pe 2 pays (3-1)*base extra.
	d, id := in.CopyExtra(2, cache.HashForHome, 16, 0, base)
	want := vtime.Duration(float64(base) * 2)
	if id < 0 || d < want || d <= 0 {
		t.Fatalf("tileslow extra = %v id %d, want >= %v", d, id, want)
	}
	// CacheStuck under hash-for-home: every PE pays (17-1)*base/16.
	d, id = in.CopyExtra(0, cache.HashForHome, 16, 0, base)
	if id != 1 || d != vtime.Duration(float64(base)*16/16) {
		t.Fatalf("cachestuck extra = %v id %d", d, id)
	}
	// LocalHome: only the stuck tile itself pays.
	if d, _ := in.CopyExtra(0, cache.LocalHome, 16, 0, base); d != 0 {
		t.Fatalf("localhome non-home pe paid %v", d)
	}
	if d, _ := in.CopyExtra(5, cache.LocalHome, 16, 0, base); d != vtime.Duration(float64(base)*16) {
		t.Fatalf("localhome home pe paid %v", d)
	}
}

func TestBlame(t *testing.T) {
	plan := &Plan{Events: []Event{
		{Kind: LinkSlow, From: 0, To: 1, Queue: -1, Factor: 2,
			Start: vtime.Time(vtime.FromNs(10)), End: vtime.Time(vtime.FromNs(20))},
		{Kind: UDNStall, Tile: 3, Queue: -1, Factor: 1,
			Start: vtime.Time(vtime.FromNs(10)), End: vtime.Time(vtime.FromNs(20))},
	}}
	in := NewInjector(plan, 16, 16)
	// Tile-targeted event wins for its tile.
	if id := in.Blame(3, vtime.Time(vtime.FromNs(15))); id != 1 {
		t.Fatalf("Blame(3) = %d, want 1", id)
	}
	// Other tiles get the first active event.
	if id := in.Blame(0, vtime.Time(vtime.FromNs(15))); id != 0 {
		t.Fatalf("Blame(0) = %d, want 0", id)
	}
	// After every window: last started event.
	if id := in.Blame(0, vtime.Time(vtime.FromNs(100))); id != 1 {
		t.Fatalf("Blame after windows = %d, want 1", id)
	}
	// Before anything: no blame.
	if id := in.Blame(0, vtime.Time(vtime.FromNs(1))); id != -1 {
		t.Fatalf("Blame before start = %d, want -1", id)
	}
}

func TestTaxonomy(t *testing.T) {
	tax := Taxonomy()
	for k := Kind(0); k < numKinds; k++ {
		if !strings.Contains(tax, k.String()) {
			t.Errorf("taxonomy missing kind %s", k)
		}
	}
}

func TestRouteUsesLink(t *testing.T) {
	g := geo16(t) // 4x4
	cases := []struct {
		src, dst, a, b int
		want           bool
	}{
		{0, 3, 0, 1, true},   // horizontal leg crosses 0->1
		{0, 3, 1, 2, true},   // ... and 1->2
		{0, 3, 2, 3, true},   // ... and 2->3
		{3, 0, 0, 1, false},  // reverse route uses 1->0, not 0->1
		{3, 0, 1, 0, true},   // leftward link on the reverse route
		{0, 12, 0, 4, true},  // pure vertical leg (column 0)
		{0, 12, 4, 0, false}, // wrong direction
		{0, 5, 0, 1, true},   // XY: horizontal first through 0->1
		{0, 5, 1, 5, true},   // then vertical through 1->5 (dst column)
		{0, 5, 0, 4, false},  // never vertical on the src column
		{5, 5, 4, 5, false},  // self route uses nothing
		{0, 3, 0, 4, false},  // vertical link off a horizontal route
		{0, 3, 0, 2, false},  // not a unit link
	}
	for _, c := range cases {
		got, err := g.RouteUsesLink(c.src, c.dst, c.a, c.b)
		if err != nil {
			t.Fatalf("RouteUsesLink(%d,%d,%d,%d): %v", c.src, c.dst, c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("RouteUsesLink(%d,%d,%d,%d) = %v, want %v", c.src, c.dst, c.a, c.b, got, c.want)
		}
	}
}

func TestHomeShare(t *testing.T) {
	if s := cache.HomeShare(cache.HashForHome, 0, 5, 16); s != 1.0/16 {
		t.Fatalf("hash share = %v", s)
	}
	if s := cache.HomeShare(cache.LocalHome, 5, 5, 16); s != 1 {
		t.Fatalf("local home-at-accessor share = %v", s)
	}
	if s := cache.HomeShare(cache.LocalHome, 0, 5, 16); s != 0 {
		t.Fatalf("local elsewhere share = %v", s)
	}
	if s := cache.HomeShare(cache.HashForHome, 0, 0, 0); s != 0 {
		t.Fatalf("zero tiles share = %v", s)
	}
}
