// Package fault injects deterministic substrate degradation into a TSHMEM
// run: seeded, virtual-time-scheduled fault plans that stall UDN demux
// queues, drop interrupts, slow mesh links, slow or kill tiles, and
// congest cache-home tiles. The paper assumes a perfect substrate; this
// package lets degradation experiments ask what the library does when the
// iMesh, the UDN, or the Dynamic Distributed Cache misbehaves — and lets
// internal/core fail with diagnostics instead of hanging.
//
// Every decision an Injector makes is a pure function of (virtual time,
// tile ids, the plan), so a run under a fault plan is exactly as
// deterministic as a fault-free run: same seed, same Report, same trace,
// independent of GOMAXPROCS. A nil *Injector (and a nil *ChipView) is the
// disabled state — every method nil-checks its receiver and the hot path
// stays allocation-free, the same discipline as stats.Recorder and
// sanitize.PEHooks. See docs/ROBUSTNESS.md.
package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"tshmem/internal/vtime"
)

// Kind classifies one fault event.
type Kind uint8

const (
	// UDNStall holds packets arriving at one demux queue of a tile: a
	// packet arriving inside the window becomes available only when the
	// window ends. A window with End==0 (forever) swallows the packets
	// entirely — the modeled demux engine never drains.
	UDNStall Kind = iota
	// UDNDropIntr drops UDN interrupt requests raised toward a tile; the
	// requester's bounded wait expires instead of the redirected transfer
	// completing.
	UDNDropIntr
	// LinkSlow scales the wire latency of every packet whose XY route
	// crosses the directed mesh link From->To, and adds Extra on top — a
	// congestion hotspot on one link.
	LinkSlow
	// TileSlow scales the UDN injection and wire latency of packets the
	// tile sends, and the charged cost of memory copies the tile performs —
	// a thermally throttled or contended tile.
	TileSlow
	// TileDead drops every UDN packet to or from the tile and every
	// interrupt raised toward it: the tile's network interface died. The
	// PE goroutine itself still runs — its sends vanish and its receives
	// starve, so it (and everyone waiting on it) times out.
	TileDead
	// CacheStuck scales the charged cost of memory copies in proportion to
	// the share of their cache lines homed at the stuck tile (the
	// hash-for-home spread), modeling one overloaded home tile.
	CacheStuck

	numKinds
)

var kindNames = [numKinds]string{
	"stall", "dropintr", "linkslow", "tileslow", "tiledead", "cachestuck",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// kindDesc describes each kind for the CLI taxonomy (tshmem-info -faults).
var kindDesc = [numKinds]string{
	"hold packets to one demux queue of tile pe until the window ends (end=0: swallow them)",
	"drop UDN interrupt requests raised toward tile pe",
	"scale wire latency of packets routed over the directed link from->to, plus extra",
	"scale UDN send latency and charged copy costs of tile pe",
	"drop all UDN traffic to/from tile pe (its network interface dies; the PE itself keeps running)",
	"scale charged copy costs by the share of lines homed at the stuck tile pe",
}

// Taxonomy describes the fault kinds and the plan grammar; tshmem-info
// -faults prints it.
func Taxonomy() string {
	var b strings.Builder
	b.WriteString("fault kinds (plan events, docs/ROBUSTNESS.md):\n")
	for k := Kind(0); k < numKinds; k++ {
		fmt.Fprintf(&b, "  %-11s %s\n", k, kindDesc[k])
	}
	b.WriteString("plan grammar: \"kind:key=val,...;kind:...\" or \"seed:N\" (or a bare integer seed)\n" +
		"  keys: pe, q (demux queue, -1=all), from, to, factor, extra, start, end\n" +
		"  durations/times take ns/us/ms/s suffixes; end=0 (or omitted) means forever\n")
	return b.String()
}

// Event is one scheduled fault. The zero value of unused fields is
// ignored; which fields matter depends on Kind (see the Kind constants).
// Tile, From, and To are global PE ranks.
type Event struct {
	Kind   Kind
	Tile   int            // target tile (UDNStall, UDNDropIntr, TileSlow, TileDead, CacheStuck)
	Queue  int            // demux queue for UDNStall; -1 means every queue
	From   int            // directed link source (LinkSlow)
	To     int            // directed link destination (LinkSlow)
	Factor float64        // latency/cost multiplier; >= 1 (LinkSlow, TileSlow, CacheStuck)
	Extra  vtime.Duration // additive latency (LinkSlow)
	Start  vtime.Time     // activation instant (virtual)
	End    vtime.Time     // deactivation instant; 0 means forever
}

// active reports whether the event applies at virtual time t.
func (e *Event) active(t vtime.Time) bool {
	return t >= e.Start && (e.End == 0 || t < e.End)
}

func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	b.WriteByte(':')
	switch e.Kind {
	case LinkSlow:
		fmt.Fprintf(&b, "from=%d,to=%d", e.From, e.To)
	default:
		fmt.Fprintf(&b, "pe=%d", e.Tile)
	}
	if e.Kind == UDNStall && e.Queue >= 0 {
		fmt.Fprintf(&b, ",q=%d", e.Queue)
	}
	if e.Factor > 1 {
		fmt.Fprintf(&b, ",factor=%g", e.Factor)
	}
	if e.Extra > 0 {
		fmt.Fprintf(&b, ",extra=%gns", e.Extra.Ns())
	}
	if e.Start > 0 {
		fmt.Fprintf(&b, ",start=%gns", e.Start.Ns())
	}
	if e.End > 0 {
		fmt.Fprintf(&b, ",end=%gns", e.End.Ns())
	}
	return b.String()
}

// Plan is a deterministic fault schedule. Seed is informational (non-zero
// when the plan came from FromSeed); the Events are what the Injector
// executes.
type Plan struct {
	Seed   int64
	Events []Event
}

// String renders the plan in the grammar Parse accepts.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}

// Validate checks the plan against a program of npes PEs.
func (p *Plan) Validate(npes int) error {
	if p == nil {
		return nil
	}
	for i, e := range p.Events {
		if e.Kind >= numKinds {
			return fmt.Errorf("fault: event %d: unknown kind %d", i, int(e.Kind))
		}
		tileKinds := e.Kind != LinkSlow
		if tileKinds && (e.Tile < 0 || e.Tile >= npes) {
			return fmt.Errorf("fault: event %d (%s): tile %d outside [0,%d)", i, e.Kind, e.Tile, npes)
		}
		if e.Kind == LinkSlow {
			if e.From < 0 || e.From >= npes || e.To < 0 || e.To >= npes {
				return fmt.Errorf("fault: event %d (linkslow): link %d->%d outside [0,%d)", i, e.From, e.To, npes)
			}
		}
		if e.Kind == UDNStall && (e.Queue < -1 || e.Queue > 3) {
			return fmt.Errorf("fault: event %d (stall): queue %d outside [-1,3]", i, e.Queue)
		}
		switch e.Kind {
		case LinkSlow, TileSlow, CacheStuck:
			if e.Factor < 1 && !(e.Kind == LinkSlow && e.Extra > 0) {
				return fmt.Errorf("fault: event %d (%s): factor %g < 1", i, e.Kind, e.Factor)
			}
		}
		if e.Extra < 0 {
			return fmt.Errorf("fault: event %d: negative extra", i)
		}
		if e.End != 0 && e.End < e.Start {
			return fmt.Errorf("fault: event %d: end %v before start %v", i, e.End, e.Start)
		}
	}
	return nil
}

// Parse turns a plan spec into a Plan. The spec is either a seed — a bare
// integer or "seed:N", expanded by FromSeed at Run time — or a literal:
// semicolon-separated events of the form "kind:key=val,key=val".
//
//	stall:pe=3,q=0                       swallow tile 3's barrier queue forever
//	stall:pe=3,q=0,start=1us,end=40us    hold it during a window instead
//	linkslow:from=0,to=1,factor=8        8x wire latency on the 0->1 link
//	tileslow:pe=5,factor=4               tile 5 sends and copies 4x slower
//	tiledead:pe=7,start=10us             tile 7's NIC dies at 10us
//	cachestuck:pe=1,factor=16            home tile 1 is 16x slower
//	dropintr:pe=2                        interrupts toward tile 2 vanish
//
// Durations and times accept ns/us/ms/s suffixes (bare numbers are
// nanoseconds). Because a seed spec needs the PE count to expand, Parse
// returns a Plan with only Seed set in that case; core expands it.
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("fault: empty plan spec")
	}
	if n, err := strconv.ParseInt(strings.TrimPrefix(spec, "seed:"), 10, 64); err == nil {
		return &Plan{Seed: n}, nil
	}
	p := &Plan{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return nil, err
		}
		p.Events = append(p.Events, ev)
	}
	if len(p.Events) == 0 {
		return nil, fmt.Errorf("fault: plan %q has no events", spec)
	}
	return p, nil
}

func parseEvent(s string) (Event, error) {
	kind, rest, ok := strings.Cut(s, ":")
	if !ok {
		return Event{}, fmt.Errorf("fault: event %q: want kind:key=val,...", s)
	}
	ev := Event{Queue: -1, Factor: 1}
	found := false
	for k := Kind(0); k < numKinds; k++ {
		if kindNames[k] == kind {
			ev.Kind, found = k, true
			break
		}
	}
	if !found {
		return Event{}, fmt.Errorf("fault: unknown kind %q (want one of %s)", kind, strings.Join(kindNames[:], ", "))
	}
	for _, kv := range strings.Split(rest, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Event{}, fmt.Errorf("fault: event %q: bad field %q", s, kv)
		}
		var err error
		switch key {
		case "pe", "tile":
			ev.Tile, err = strconv.Atoi(val)
		case "q", "queue":
			ev.Queue, err = strconv.Atoi(val)
		case "from":
			ev.From, err = strconv.Atoi(val)
		case "to":
			ev.To, err = strconv.Atoi(val)
		case "factor":
			ev.Factor, err = strconv.ParseFloat(val, 64)
		case "extra":
			var d vtime.Duration
			d, err = parseDur(val)
			ev.Extra = d
		case "start":
			var d vtime.Duration
			d, err = parseDur(val)
			ev.Start = vtime.Time(d)
		case "end":
			var d vtime.Duration
			d, err = parseDur(val)
			ev.End = vtime.Time(d)
		default:
			return Event{}, fmt.Errorf("fault: event %q: unknown key %q", s, key)
		}
		if err != nil {
			return Event{}, fmt.Errorf("fault: event %q: field %q: %v", s, kv, err)
		}
	}
	return ev, nil
}

// parseDur parses a duration with an ns/us/ms/s suffix; a bare number is
// nanoseconds.
func parseDur(s string) (vtime.Duration, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "ns"):
		s = strings.TrimSuffix(s, "ns")
	case strings.HasSuffix(s, "us"):
		s, mult = strings.TrimSuffix(s, "us"), 1e3
	case strings.HasSuffix(s, "ms"):
		s, mult = strings.TrimSuffix(s, "ms"), 1e6
	case strings.HasSuffix(s, "s"):
		s, mult = strings.TrimSuffix(s, "s"), 1e9
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return vtime.FromNs(f * mult), nil
}

// FromSeed expands a seed into a transient fault plan for an npes-PE
// program: one to three windowed degradation events (queue stalls, link
// and tile slowdowns, stuck home tiles) drawn from math/rand's stable
// generator, so the same seed always yields the same plan. Seeded plans
// never drop traffic outright — every window closes — so seeded
// degradation experiments complete and report how much slower they ran;
// permanent faults (tiledead, end-less stalls) are expressed with plan
// literals.
func FromSeed(seed int64, npes int) *Plan {
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{Seed: seed}
	n := 1 + rng.Intn(3)
	// The square test-area side AreaGeometry picks, for adjacent-link
	// selection.
	side := 1
	for side*side < npes {
		side++
	}
	for i := 0; i < n; i++ {
		start := vtime.Time(vtime.FromNs(float64(1+rng.Intn(30)) * 1e3))
		end := start.Add(vtime.FromNs(float64(5+rng.Intn(45)) * 1e3))
		factor := float64(2 + rng.Intn(15))
		switch rng.Intn(4) {
		case 0:
			p.Events = append(p.Events, Event{
				Kind: UDNStall, Tile: rng.Intn(npes), Queue: -1,
				Factor: 1, Start: start, End: end,
			})
		case 1:
			// Pick a horizontally adjacent pair inside the test area.
			from := rng.Intn(npes)
			if (from+1)%side == 0 || from+1 >= npes {
				from--
			}
			if from < 0 {
				from = 0
			}
			to := from + 1
			if to >= npes {
				to = from
			}
			p.Events = append(p.Events, Event{
				Kind: LinkSlow, From: from, To: to, Queue: -1,
				Factor: factor, Start: start, End: end,
			})
		case 2:
			p.Events = append(p.Events, Event{
				Kind: TileSlow, Tile: rng.Intn(npes), Queue: -1,
				Factor: factor, Start: start, End: end,
			})
		default:
			p.Events = append(p.Events, Event{
				Kind: CacheStuck, Tile: rng.Intn(npes), Queue: -1,
				Factor: factor, Start: start, End: end,
			})
		}
	}
	return p
}
