package stats

import (
	"bytes"
	"encoding/json"
	"testing"

	"tshmem/internal/vtime"
)

func TestCountersAddAggregates(t *testing.T) {
	var a, b, sum Counters
	a.Ops[OpPut] = 3
	a.OpTimePs[OpPut] = 1500
	a.UDNMsgsSent = 7
	a.MeshHops = 12
	a.RMABytes[SameChip] = 4096
	a.RMAOps[SameChip] = 2
	a.CacheCopies[CacheDDC] = 5
	a.CacheBytes[CacheDDC] = 640
	b.Ops[OpPut] = 1
	b.Ops[OpBarrier] = 4
	b.UDNMsgsSent = 3
	b.BarrierRounds = 9
	b.TraceDropped = 2

	sum.Add(&a)
	sum.Add(&b)
	if sum.Ops[OpPut] != 4 || sum.Ops[OpBarrier] != 4 {
		t.Errorf("op counts: put=%d barrier=%d", sum.Ops[OpPut], sum.Ops[OpBarrier])
	}
	if sum.OpTimePs[OpPut] != 1500 || sum.UDNMsgsSent != 10 || sum.MeshHops != 12 {
		t.Errorf("scalar fold: %+v", sum)
	}
	if sum.RMABytes[SameChip] != 4096 || sum.RMAOps[SameChip] != 2 {
		t.Errorf("rma fold: %+v", sum.RMABytes)
	}
	if sum.CacheCopies[CacheDDC] != 5 || sum.BarrierRounds != 9 || sum.TraceDropped != 2 {
		t.Errorf("cache/barrier/dropped fold: %+v", sum)
	}
	if sum.CacheHits() != 5 || sum.CacheMisses() != 0 || sum.TotalRMABytes() != 4096 {
		t.Errorf("derived: hits=%d misses=%d rma=%d",
			sum.CacheHits(), sum.CacheMisses(), sum.TotalRMABytes())
	}
}

func TestCollectorFold(t *testing.T) {
	var col Collector
	var c Counters
	c.Ops[OpGet] = 2
	col.Fold(c)
	col.Fold(c)
	runs, agg := col.Snapshot()
	if runs != 2 || agg.Ops[OpGet] != 4 {
		t.Fatalf("runs=%d get=%d, want 2 and 4", runs, agg.Ops[OpGet])
	}
}

// TestNilRecorderNoAllocs is the regression test for the disabled fast
// path: with observability off every PE carries a nil *Recorder, and the
// instrumented substrate must not allocate (or panic) calling into it.
func TestNilRecorderNoAllocs(t *testing.T) {
	var rec *Recorder
	var clock vtime.Clock
	n := testing.AllocsPerRun(100, func() {
		rec.UDNSend(4, 3, 120)
		rec.UDNRecv(4)
		rec.UDNRecvWait(4, 80)
		rec.UDNInterrupt(2, 1, 5)
		rec.BarrierRound()
		rec.BarrierWait(60)
		rec.RMA(SameChip, 4096, 900)
		rec.CacheCopy(CacheL2, 4096, 700)
		rec.OpDone(OpPut, clock.Now(), &clock, 4096, 1)
	})
	if n != 0 {
		t.Fatalf("nil-recorder path allocates %.1f times per run, want 0", n)
	}
	if rec.PE() != -1 || rec.Tracing() || rec.Events() != nil {
		t.Errorf("nil accessors: pe=%d tracing=%v events=%v",
			rec.PE(), rec.Tracing(), rec.Events())
	}
	if c := rec.Counters(); c != (Counters{}) {
		t.Errorf("nil Counters() not zero: %+v", c)
	}
}

// Counting without tracing must also stay allocation-free: the counter
// block lives inline in the Recorder.
func TestCountingRecorderNoAllocs(t *testing.T) {
	rec := New(0, false, 0)
	var clock vtime.Clock
	n := testing.AllocsPerRun(100, func() {
		rec.UDNSend(4, 3, 120)
		rec.UDNRecvWait(4, 80)
		rec.RMA(SameChip, 4096, 900)
		rec.OpDone(OpPut, clock.Now(), &clock, 32, 1)
	})
	if n != 0 {
		t.Fatalf("counting path allocates %.1f times per run, want 0", n)
	}
}

func TestRecorderTraceCap(t *testing.T) {
	rec := New(3, true, 2)
	var clock vtime.Clock
	for i := 0; i < 5; i++ {
		start := clock.Now()
		clock.Advance(10)
		rec.OpDone(OpBarrier, start, &clock, 0, int(NoPeer))
	}
	if got := len(rec.Events()); got != 2 {
		t.Fatalf("buffered %d events, want cap 2", got)
	}
	c := rec.Counters()
	if c.TraceDropped != 3 {
		t.Errorf("TraceDropped = %d, want 3", c.TraceDropped)
	}
	if c.Ops[OpBarrier] != 5 {
		t.Errorf("dropped events must still count: Ops[barrier] = %d, want 5", c.Ops[OpBarrier])
	}
	if rec.PE() != 3 || !rec.Tracing() {
		t.Errorf("accessors: pe=%d tracing=%v", rec.PE(), rec.Tracing())
	}
}

func TestOpDoneReadsClockAtCallTime(t *testing.T) {
	rec := New(0, true, 0)
	var clock vtime.Clock
	start := clock.Now()
	clock.Advance(250)
	rec.OpDone(OpGet, start, &clock, 8, 1)
	evs := rec.Events()
	if len(evs) != 1 || evs[0].End.Sub(evs[0].Start) != 250 {
		t.Fatalf("event span = %v, want 250 ps", evs)
	}
	if rec.Counters().OpTimePs[OpGet] != 250 {
		t.Errorf("OpTimePs = %d, want 250", rec.Counters().OpTimePs[OpGet])
	}
}

func TestMergeEventsOrder(t *testing.T) {
	perPE := [][]Event{
		{{PE: 0, Op: OpPut, Start: 10, End: 20}, {PE: 0, Op: OpGet, Start: 30, End: 40}},
		{{PE: 1, Op: OpBarrier, Start: 5, End: 50}, {PE: 1, Op: OpPut, Start: 30, End: 35}},
	}
	m := MergeEvents(perPE)
	if len(m) != 4 {
		t.Fatalf("merged %d events, want 4", len(m))
	}
	for i := 1; i < len(m); i++ {
		if m[i].Start < m[i-1].Start {
			t.Fatalf("not start-ordered at %d: %+v", i, m)
		}
	}
	// Tie at Start=30: lower PE first.
	if m[2].PE != 0 || m[3].PE != 1 {
		t.Errorf("tie-break by PE failed: %+v", m[2:])
	}
}

// traceFile mirrors the Chrome trace_event JSON Object Format for decoding.
type traceFile struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
		Args struct {
			Name  string `json:"name"`
			Bytes int64  `json:"bytes"`
			Peer  int32  `json:"peer"`
		} `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteTraceWellFormed(t *testing.T) {
	events := MergeEvents([][]Event{
		{{PE: 0, Op: OpPut, Start: 1_000_000, End: 3_000_000, Bytes: 64, Peer: 1}},
		{{PE: 1, Op: OpBarrier, Start: 500_000, End: 4_000_000, Peer: NoPeer}},
	})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var f traceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var meta, complete int
	lastTs := -1.0
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if e.Cat != "tshmem" {
				t.Errorf("cat = %q", e.Cat)
			}
			if e.Ts < lastTs {
				t.Errorf("X events not ts-ordered: %f after %f", e.Ts, lastTs)
			}
			lastTs = e.Ts
		default:
			t.Errorf("unexpected ph %q", e.Ph)
		}
	}
	if meta != 2 || complete != 2 {
		t.Fatalf("meta=%d complete=%d, want 2 and 2", meta, complete)
	}
	// The barrier started at 500000 ps = 0.5 µs and spans 3.5 µs.
	first := f.TraceEvents[meta].Ts
	if first != 0.5 {
		t.Errorf("first X ts = %f µs, want 0.5", first)
	}
	// The put carries its payload size and peer.
	for _, e := range f.TraceEvents {
		if e.Ph == "X" && e.Name == "put" {
			if e.Args.Bytes != 64 || e.Args.Peer != 1 {
				t.Errorf("put args = %+v", e.Args)
			}
		}
	}
}

func TestCoverage(t *testing.T) {
	events := []Event{
		{PE: 0, Op: OpBarrier, Start: 0, End: 40},
		{PE: 0, Op: OpPut, Start: 10, End: 30}, // nested: must not double-count
		{PE: 0, Op: OpGet, Start: 60, End: 80},
		{PE: 1, Op: OpPut, Start: 0, End: 100}, // other PE: ignored
	}
	got := Coverage(events, 0, 0, 100)
	if want := 0.6; got != want { // [0,40) ∪ [60,80) = 60 of 100
		t.Errorf("coverage = %f, want %f", got, want)
	}
	if c := Coverage(events, 0, 0, 40); c != 1 {
		t.Errorf("fully covered window = %f, want 1", c)
	}
	if c := Coverage(nil, 0, 0, 100); c != 0 {
		t.Errorf("empty trace coverage = %f, want 0", c)
	}
	if c := Coverage(events, 0, 50, 50); c != 0 {
		t.Errorf("empty window coverage = %f, want 0", c)
	}
}

func TestTable(t *testing.T) {
	var c Counters
	if got := c.Table(); got != "  (no substrate events recorded)\n" {
		t.Errorf("empty table = %q", got)
	}
	c.Ops[OpPut] = 2
	c.UDNMsgsSent = 5
	tab := c.Table()
	if !bytes.Contains([]byte(tab), []byte("ops.put")) ||
		!bytes.Contains([]byte(tab), []byte("udn.msgs_sent")) {
		t.Errorf("table missing rows:\n%s", tab)
	}
	if bytes.Contains([]byte(tab), []byte("ops.get")) {
		t.Errorf("table must omit zero rows:\n%s", tab)
	}
}
