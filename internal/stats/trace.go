package stats

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"tshmem/internal/vtime"
)

// MergeEvents concatenates per-PE event buffers and orders the result by
// virtual start time (ties: by PE, then by earlier end so enclosing spans
// sort after the spans they contain started with). The per-PE buffers are
// already start-ordered — each PE's clock is monotonic — so this is a
// stable k-way merge expressed as one sort.
func MergeEvents(perPE [][]Event) []Event {
	var n int
	for _, evs := range perPE {
		n += len(evs)
	}
	out := make([]Event, 0, n)
	for _, evs := range perPE {
		out = append(out, evs...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].PE != out[j].PE {
			return out[i].PE < out[j].PE
		}
		return out[i].End > out[j].End
	})
	return out
}

// WriteTrace emits events as Chrome trace_event JSON (the JSON Object
// Format: {"traceEvents":[...]}), loadable in Perfetto or chrome://tracing.
//
// Timestamps are virtual, not wall-clock: ts and dur are the event's
// virtual-time start and duration converted from picoseconds to the
// format's microsecond unit. All PEs share pid 0 (one simulated program);
// tid is the PE rank, and one metadata record per PE names its row
// "PE <rank>". Complete events ("ph":"X") carry bytes and peer in args.
//
// Events must be start-ordered (use MergeEvents); the format requires it
// for "X" events within a thread.
func WriteTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}
	pes := map[int32]bool{}
	for _, e := range events {
		pes[e.PE] = true
	}
	ranks := make([]int, 0, len(pes))
	for pe := range pes {
		ranks = append(ranks, int(pe))
	}
	sort.Ints(ranks)
	for _, pe := range ranks {
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"PE %d"}}`, pe, pe))
	}
	for _, e := range events {
		ts := float64(e.Start) / 1e6 // ps -> µs
		dur := float64(e.End-e.Start) / 1e6
		emit(fmt.Sprintf(
			`{"name":%q,"cat":"tshmem","ph":"X","ts":%.6f,"dur":%.6f,"pid":0,"tid":%d,"args":{"bytes":%d,"peer":%d}}`,
			e.Op.String(), ts, dur, e.PE, e.Bytes, e.Peer))
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// Coverage reports what fraction of the virtual window [from, to] on PE pe
// is covered by the union of that PE's trace events. Nested events (a put
// inside a broadcast) are unioned, not summed, so coverage never exceeds
// 1. It answers the EXPERIMENTS.md audit question: do the traced substrate
// operations explain the virtual time the benchmark reported?
func Coverage(events []Event, pe int, from, to vtime.Time) float64 {
	if to <= from {
		return 0
	}
	type iv struct{ s, e vtime.Time }
	var ivs []iv
	for _, ev := range events {
		if int(ev.PE) != pe {
			continue
		}
		s, e := ev.Start, ev.End
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		if e > s {
			ivs = append(ivs, iv{s, e})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
	var covered vtime.Duration
	var curS, curE vtime.Time
	have := false
	for _, v := range ivs {
		if !have {
			curS, curE, have = v.s, v.e, true
			continue
		}
		if v.s <= curE {
			if v.e > curE {
				curE = v.e
			}
			continue
		}
		covered += curE.Sub(curS)
		curS, curE = v.s, v.e
	}
	if have {
		covered += curE.Sub(curS)
	}
	return float64(covered) / float64(to.Sub(from))
}
