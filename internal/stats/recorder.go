package stats

import "tshmem/internal/vtime"

// Event is one traced substrate operation: PE `PE` ran `Op` from Start to
// End in virtual time, moving Bytes payload bytes, with Peer the remote PE
// involved (-1 when the operation has no single peer, e.g. a barrier).
type Event struct {
	PE    int32
	Op    Op
	Start vtime.Time
	End   vtime.Time
	Bytes int64
	Peer  int32
}

// NoPeer marks events without a single remote endpoint.
const NoPeer int32 = -1

// Recorder is one PE's counter block plus (optionally) its event buffer.
// It is owned by the PE's goroutine and must never be shared: methods do
// no locking. A nil *Recorder is valid and disables recording — every
// method nil-checks its receiver so instrumented code calls
// unconditionally.
type Recorder struct {
	pe      int32
	C       Counters
	traceOn bool
	cap     int
	events  []Event
}

// New returns a Recorder for PE pe. If trace is true, events are buffered
// up to traceCap per PE (<=0 selects DefaultTraceCap); beyond the cap
// events are dropped and counted in C.TraceDropped.
func New(pe int, trace bool, traceCap int) *Recorder {
	r := &Recorder{pe: int32(pe), traceOn: trace}
	if trace {
		if traceCap <= 0 {
			traceCap = DefaultTraceCap
		}
		r.cap = traceCap
	}
	return r
}

// DefaultTraceCap bounds the per-PE event buffer when Config.TraceCap is
// unset: 1Mi events ≈ 40 MB per PE, far above any microbenchmark's needs
// but a hard stop for runaway loops.
const DefaultTraceCap = 1 << 20

// PE returns the owning PE's rank, or -1 on a nil recorder.
func (r *Recorder) PE() int {
	if r == nil {
		return -1
	}
	return int(r.pe)
}

// Tracing reports whether this recorder buffers events.
func (r *Recorder) Tracing() bool { return r != nil && r.traceOn }

// Events returns the buffered trace (owned by the recorder; read only
// after the run).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Counters returns a copy of the counter block (zero value on nil).
func (r *Recorder) Counters() Counters {
	if r == nil {
		return Counters{}
	}
	return r.C
}

// UDNSend accounts one injected UDN packet: words payload words crossing
// hops mesh links with one-way latency lat.
func (r *Recorder) UDNSend(words, hops int, lat vtime.Duration) {
	if r == nil {
		return
	}
	r.C.UDNMsgsSent++
	r.C.UDNWordsSent += int64(words)
	r.C.MeshHops += int64(hops)
	r.C.Hists[HistUDNSend].Observe(int64(lat))
}

// UDNRecv accounts one drained UDN packet of words payload words whose
// receive stall is unknown (RecvRaw: the caller merges clocks later).
func (r *Recorder) UDNRecv(words int) {
	if r == nil {
		return
	}
	r.C.UDNMsgsRecvd++
	r.C.UDNWordsRecvd += int64(words)
}

// UDNRecvWait is UDNRecv for receives that merged the clock immediately:
// wait is how long the receiver's clock had to advance to meet the
// packet's arrival (zero when the packet was already queued).
func (r *Recorder) UDNRecvWait(words int, wait vtime.Duration) {
	if r == nil {
		return
	}
	r.C.UDNMsgsRecvd++
	r.C.UDNWordsRecvd += int64(words)
	r.C.Hists[HistUDNWait].Observe(int64(wait))
}

// BarrierWait accounts the stall until one expected barrier-chain signal
// arrived (the clock advance merging with the signal's arrival time).
func (r *Recorder) BarrierWait(wait vtime.Duration) {
	if r == nil {
		return
	}
	r.C.Hists[HistBarrierWait].Observe(int64(wait))
}

// UDNInterrupt accounts one interrupt round-trip raised by this PE: the
// request packet (reqWords over hops links) plus the reply consumed
// (repWords back over the same hops). The servicer side is deliberately
// unaccounted — it runs on the interrupt goroutine, which must not touch
// the requester's recorder.
func (r *Recorder) UDNInterrupt(reqWords, repWords, hops int) {
	if r == nil {
		return
	}
	r.C.UDNInterrupts++
	r.C.UDNMsgsSent++
	r.C.UDNWordsSent += int64(reqWords)
	r.C.UDNMsgsRecvd++
	r.C.UDNWordsRecvd += int64(repWords)
	r.C.MeshHops += int64(2 * hops)
}

// BarrierRound accounts one wait/release signal sent on a barrier chain.
func (r *Recorder) BarrierRound() {
	if r == nil {
		return
	}
	r.C.BarrierRounds++
}

// RMA accounts one remote-memory transfer of nbytes in locality class loc
// that charged d of virtual time (memory-system cost plus, across chips,
// the mPIPE wire).
func (r *Recorder) RMA(loc Locality, nbytes int, d vtime.Duration) {
	if r == nil {
		return
	}
	r.C.RMAOps[loc]++
	r.C.RMABytes[loc] += int64(nbytes)
	r.C.Hists[HistForRMA(loc)].Observe(int64(d))
}

// CacheCopy accounts one charged memory copy whose working set is backed
// by level and cost d of virtual time.
func (r *Recorder) CacheCopy(level CacheLevel, nbytes int, d vtime.Duration) {
	if r == nil {
		return
	}
	r.C.CacheCopies[level]++
	r.C.CacheBytes[level] += int64(nbytes)
	r.C.Hists[HistForCache(level)].Observe(int64(d))
}

// FaultDelay accounts one packet (or copy) delayed by fault-plan event id:
// d extra virtual time injected at at, affecting peer. No-op when d <= 0.
func (r *Recorder) FaultDelay(id, peer int, at vtime.Time, d vtime.Duration) {
	if r == nil || d <= 0 {
		return
	}
	r.C.FaultDelays++
	r.C.FaultDelayPs += int64(d)
	r.C.Hists[HistForOp(OpFault)].Observe(int64(d))
	r.faultEvent(id, peer, at, at.Add(d))
}

// FaultDrop accounts one packet or interrupt swallowed by fault-plan
// event id at virtual time at.
func (r *Recorder) FaultDrop(id, peer int, at vtime.Time) {
	if r == nil {
		return
	}
	r.C.FaultDrops++
	r.faultEvent(id, peer, at, at)
}

// FaultTimeout accounts one bounded wait that expired: this PE waited
// from start to deadline, blaming fault-plan event id, while expecting
// peer (-1 when no single peer).
func (r *Recorder) FaultTimeout(id, peer int, start, deadline vtime.Time) {
	if r == nil {
		return
	}
	r.C.FaultTimeouts++
	r.faultEvent(id, peer, start, deadline)
}

// faultEvent appends an OpFault trace event carrying the plan event id in
// Bytes (-1 when unattributed) and the affected peer in Peer.
func (r *Recorder) faultEvent(id, peer int, start, end vtime.Time) {
	if !r.traceOn {
		return
	}
	if len(r.events) >= r.cap {
		r.C.TraceDropped++
		return
	}
	r.events = append(r.events, Event{
		PE: r.pe, Op: OpFault, Start: start, End: end,
		Bytes: int64(id), Peer: int32(peer),
	})
}

// BarrierAlgoDone observes one completed barrier instance in the
// per-algorithm latency histogram (HistForBarrierAlgo). Histogram-only on
// purpose: Counters.Map excludes histograms, so default-algorithm runs
// keep emitting byte-identical baselines.
func (r *Recorder) BarrierAlgoDone(a BarrierAlgoID, start vtime.Time, clock *vtime.Clock) {
	if r == nil {
		return
	}
	r.C.Hists[HistForBarrierAlgo(a)].Observe(int64(clock.Now() - start))
}

// LockDone accounts one successful lock acquisition under algorithm a:
// the scalar acquire counter plus the per-algorithm latency histogram.
func (r *Recorder) LockDone(a LockAlgoID, start vtime.Time, clock *vtime.Clock) {
	if r == nil {
		return
	}
	r.C.LockAcquires++
	r.C.Hists[HistForLockAlgo(a)].Observe(int64(clock.Now() - start))
}

// LockRetries accounts n modeled acquisition retries (failed CAS
// attempts, or the queue depth a FIFO acquire waited behind).
func (r *Recorder) LockRetries(n int64) {
	if r == nil {
		return
	}
	r.C.LockRetries += n
}

// LockHandoff accounts one direct lock handoff delivered by a release.
func (r *Recorder) LockHandoff() {
	if r == nil {
		return
	}
	r.C.LockHandoffs++
}

// AtomicEmulated accounts one fetch-op that ran as a TESTSET-guarded
// software critical section on a chip without native read-modify-write.
func (r *Recorder) AtomicEmulated() {
	if r == nil {
		return
	}
	r.C.AtomicEmulations++
}

// OpDone counts one completed operation of class op that began at start.
// The end time is read from clock at call time, so the idiomatic use is
//
//	start := pe.clock.Now()
//	defer pe.rec.OpDone(stats.OpPut, start, &pe.clock, nbytes, peer)
//
// where the deferred call observes the clock after the operation advanced
// it. When tracing, the event is appended unless the per-PE cap has been
// reached, in which case it is counted in TraceDropped.
func (r *Recorder) OpDone(op Op, start vtime.Time, clock *vtime.Clock, bytes int64, peer int) {
	if r == nil {
		return
	}
	end := clock.Now()
	r.C.Ops[op]++
	r.C.OpTimePs[op] += int64(end - start)
	r.C.Hists[HistForOp(op)].Observe(int64(end - start))
	if !r.traceOn {
		return
	}
	if len(r.events) >= r.cap {
		r.C.TraceDropped++
		return
	}
	r.events = append(r.events, Event{
		PE: r.pe, Op: op, Start: start, End: end,
		Bytes: bytes, Peer: int32(peer),
	})
}
