// Package stats is the substrate observability layer: lock-cheap per-PE
// operation counters plus an optional structured event trace, recorded in
// virtual time.
//
// The paper's entire evaluation is built from measurements of the
// substrate — UDN messages, cache/homing traffic, barrier signal chains —
// so this package gives every layer (internal/udn, internal/mesh,
// internal/cache, internal/core) a place to account for the events that
// produce each curve. A benchmark run can then be audited: the counter
// totals must explain the reported message counts, and the event trace,
// exported as Chrome trace_event JSON keyed on virtual time, can be opened
// in Perfetto (https://ui.perfetto.dev) and compared visually against the
// paper's latency structure. See docs/OBSERVABILITY.md.
//
// # Design
//
// Each PE owns one Recorder, touched only by the goroutine bound to that
// PE's tile, so counting needs no locks or atomics. A nil *Recorder is the
// disabled state: every method is a nil-receiver no-op, so the
// uninstrumented path costs one predictable branch and zero allocations
// (asserted by a testing.AllocsPerRun regression test). Aggregation across
// PEs happens after the run, when no PE goroutine is left writing.
package stats

import (
	"fmt"
	"strings"
	"sync"
)

// Op classifies a substrate or library operation in counters and traces.
type Op uint8

const (
	// OpInit is the start_pes initialization handshake.
	OpInit Op = iota
	// OpPut is a one-sided put (block, elemental, strided, slice).
	OpPut
	// OpGet is a one-sided get (block, elemental, strided, slice).
	OpGet
	// OpAtomic is an atomic memory operation (swap/cswap/fadd/finc/add/inc).
	OpAtomic
	// OpFence is shmem_fence/shmem_quiet (tmc_mem_fence).
	OpFence
	// OpBarrier is one barrier instance over an active set, including the
	// barriers collectives run internally.
	OpBarrier
	// OpBroadcast is shmem_broadcast (push, pull, or binomial).
	OpBroadcast
	// OpCollect is shmem_collect/fcollect (naive or recursive doubling).
	OpCollect
	// OpReduce is a to_all reduction (naive or recursive doubling).
	OpReduce
	// OpWait is shmem_wait/shmem_wait_until.
	OpWait
	// OpFault is a fault-injection perturbation (internal/fault): a
	// delayed or dropped packet, or a bounded wait that timed out. Trace
	// events of this class carry the plan event id in Bytes and the
	// affected peer in Peer.
	OpFault

	// NumOps bounds the Op enum; counter arrays are indexed by Op.
	NumOps
)

var opNames = [NumOps]string{
	"init", "put", "get", "atomic", "fence",
	"barrier", "broadcast", "collect", "reduce", "wait", "fault",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Locality classifies the endpoints of an RMA transfer.
type Locality uint8

const (
	// SelfPE: source and target on the calling PE's own partition.
	SelfPE Locality = iota
	// SameChip: remote PE on the same chip (on-chip shared memory).
	SameChip
	// CrossChip: remote PE on another chip (rides the mPIPE fabric).
	CrossChip

	// NumLocalities bounds the Locality enum.
	NumLocalities
)

var localityNames = [NumLocalities]string{"self", "same-chip", "cross-chip"}

func (l Locality) String() string {
	if int(l) < len(localityNames) {
		return localityNames[l]
	}
	return fmt.Sprintf("Locality(%d)", int(l))
}

// CacheLevel identifies the memory-hierarchy level that backs a charged
// copy. The values mirror internal/cache.Level in declaration order
// (asserted by a test in internal/cache); stats cannot import cache
// without creating an import cycle through the instrumented packages.
type CacheLevel uint8

const (
	CacheL1d CacheLevel = iota
	CacheL2
	CacheDDC
	CacheDRAM

	// NumCacheLevels bounds the CacheLevel enum.
	NumCacheLevels
)

var levelNames = [NumCacheLevels]string{"L1d", "L2", "DDC", "DRAM"}

func (l CacheLevel) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("CacheLevel(%d)", int(l))
}

// Counters is one PE's substrate counter block. All fields are plain
// int64s written by the owning PE goroutine; read them only after the run
// (or from the owning PE itself).
type Counters struct {
	// Ops counts operation entries per class; OpTimePs accumulates each
	// class's inclusive virtual duration in picoseconds. "Inclusive" means
	// a broadcast's span also contains its internal barriers and
	// puts/gets, so summing OpTimePs across classes double-counts nested
	// work — use the trace's interval union (Coverage) for wall-clock
	// style accounting.
	Ops      [NumOps]int64
	OpTimePs [NumOps]int64

	// UDN traffic, counted at the port: payload words (the one-word header
	// is not counted), messages, and interrupts raised by this PE.
	// MeshHops is the dimension-order-routing hop total of every packet
	// this PE injected (requests and interrupt replies it consumed).
	UDNMsgsSent   int64
	UDNWordsSent  int64
	UDNMsgsRecvd  int64
	UDNWordsRecvd int64
	UDNInterrupts int64
	MeshHops      int64

	// BarrierRounds counts barrier-chain signals this PE sent (wait or
	// release); summed over PEs it is the total signal count of every
	// barrier instance, 2(n-1)+1 per n-PE linear-chain barrier.
	BarrierRounds int64

	// RMA transfer bytes by locality class of the remote partition.
	RMABytes [NumLocalities]int64
	RMAOps   [NumLocalities]int64

	// Charged memory copies classified by the hierarchy level that backs
	// their working set: copies landing in L1d/L2/DDC are cache hits at
	// that level, DRAM-backed copies are misses.
	CacheCopies [NumCacheLevels]int64
	CacheBytes  [NumCacheLevels]int64

	// TraceDropped counts events discarded after the per-PE trace cap.
	TraceDropped int64

	// Fault-injection perturbations (internal/fault): packets delayed or
	// dropped by the active plan, bounded waits that timed out, and the
	// total injected delay. All zero when faults are off, so they vanish
	// from Table/Map output and leave baselines untouched.
	FaultDelays   int64
	FaultDrops    int64
	FaultTimeouts int64
	FaultDelayPs  int64

	// AtomicEmulations counts atomic fetch-ops that ran as TESTSET-guarded
	// software critical sections because the chip has no native
	// read-modify-write (arch.Chip.AtomicRMWEmulated, the Epiphany family).
	// Zero on chips with hardware fetch-ops, so Tilera baselines are
	// untouched.
	AtomicEmulations int64

	// Lock-algorithm counters (Config.LockAlgo; docs/SYNC.md): successful
	// acquisitions across SetLock/TestLock, modeled retries (failed CAS
	// attempts, or the queue depth a ticket/MCS acquire waited behind),
	// and MCS direct handoffs delivered by releases. All zero when the
	// program takes no locks, so lock-free baselines are untouched.
	LockAcquires int64
	LockRetries  int64
	LockHandoffs int64

	// Hists holds one latency histogram per HistClass: the distribution
	// behind each counter above (operation spans, UDN packet latencies and
	// receive stalls, barrier-signal stalls, RMA and cache-copy charges).
	// Inline arrays keep Counters comparable and Observe allocation-free.
	Hists [NumHistClasses]Hist
}

// Add folds o into c (aggregation across PEs).
func (c *Counters) Add(o *Counters) {
	for i := range c.Ops {
		c.Ops[i] += o.Ops[i]
		c.OpTimePs[i] += o.OpTimePs[i]
	}
	c.UDNMsgsSent += o.UDNMsgsSent
	c.UDNWordsSent += o.UDNWordsSent
	c.UDNMsgsRecvd += o.UDNMsgsRecvd
	c.UDNWordsRecvd += o.UDNWordsRecvd
	c.UDNInterrupts += o.UDNInterrupts
	c.MeshHops += o.MeshHops
	c.BarrierRounds += o.BarrierRounds
	for i := range c.RMABytes {
		c.RMABytes[i] += o.RMABytes[i]
		c.RMAOps[i] += o.RMAOps[i]
	}
	for i := range c.CacheCopies {
		c.CacheCopies[i] += o.CacheCopies[i]
		c.CacheBytes[i] += o.CacheBytes[i]
	}
	c.TraceDropped += o.TraceDropped
	c.FaultDelays += o.FaultDelays
	c.FaultDrops += o.FaultDrops
	c.FaultTimeouts += o.FaultTimeouts
	c.FaultDelayPs += o.FaultDelayPs
	c.AtomicEmulations += o.AtomicEmulations
	c.LockAcquires += o.LockAcquires
	c.LockRetries += o.LockRetries
	c.LockHandoffs += o.LockHandoffs
	for i := range c.Hists {
		c.Hists[i].Add(&o.Hists[i])
	}
}

// CacheHits reports charged copies backed by any cache level (L1d/L2/DDC).
func (c *Counters) CacheHits() int64 {
	return c.CacheCopies[CacheL1d] + c.CacheCopies[CacheL2] + c.CacheCopies[CacheDDC]
}

// CacheMisses reports charged copies that fell through to DRAM.
func (c *Counters) CacheMisses() int64 { return c.CacheCopies[CacheDRAM] }

// TotalRMABytes sums RMA bytes over all locality classes.
func (c *Counters) TotalRMABytes() int64 {
	var t int64
	for _, b := range c.RMABytes {
		t += b
	}
	return t
}

// Table renders the non-zero counters as an aligned two-column text table,
// the form tshmem-bench -stats prints next to each experiment.
func (c *Counters) Table() string {
	var b strings.Builder
	row := func(name string, v int64) {
		if v != 0 {
			fmt.Fprintf(&b, "  %-24s %14d\n", name, v)
		}
	}
	for op := Op(0); op < NumOps; op++ {
		row("ops."+op.String(), c.Ops[op])
	}
	for op := Op(0); op < NumOps; op++ {
		if c.OpTimePs[op] != 0 {
			fmt.Fprintf(&b, "  %-24s %14.3f\n", "optime_us."+op.String(), float64(c.OpTimePs[op])/1e6)
		}
	}
	row("udn.msgs_sent", c.UDNMsgsSent)
	row("udn.words_sent", c.UDNWordsSent)
	row("udn.msgs_recvd", c.UDNMsgsRecvd)
	row("udn.words_recvd", c.UDNWordsRecvd)
	row("udn.interrupts", c.UDNInterrupts)
	row("mesh.hops", c.MeshHops)
	row("barrier.rounds", c.BarrierRounds)
	for l := Locality(0); l < NumLocalities; l++ {
		row("rma.ops."+l.String(), c.RMAOps[l])
		row("rma.bytes."+l.String(), c.RMABytes[l])
	}
	for l := CacheLevel(0); l < NumCacheLevels; l++ {
		row("cache.copies."+l.String(), c.CacheCopies[l])
		row("cache.bytes."+l.String(), c.CacheBytes[l])
	}
	row("trace.dropped", c.TraceDropped)
	row("fault.delays", c.FaultDelays)
	row("fault.drops", c.FaultDrops)
	row("fault.timeouts", c.FaultTimeouts)
	if c.FaultDelayPs != 0 {
		fmt.Fprintf(&b, "  %-24s %14.3f\n", "fault.delay_us", float64(c.FaultDelayPs)/1e6)
	}
	row("atomic.emulated", c.AtomicEmulations)
	row("lock.acquires", c.LockAcquires)
	row("lock.retries", c.LockRetries)
	row("lock.handoffs", c.LockHandoffs)
	if b.Len() == 0 {
		return "  (no substrate events recorded)\n"
	}
	return b.String()
}

// Map returns the non-zero scalar counters keyed by the same names Table
// prints (histograms excluded; see HistTable). It is the machine-readable
// form tshmem-bench -json embeds per benchmark.
func (c *Counters) Map() map[string]int64 {
	m := make(map[string]int64)
	put := func(name string, v int64) {
		if v != 0 {
			m[name] = v
		}
	}
	for op := Op(0); op < NumOps; op++ {
		put("ops."+op.String(), c.Ops[op])
		put("optime_ps."+op.String(), c.OpTimePs[op])
	}
	put("udn.msgs_sent", c.UDNMsgsSent)
	put("udn.words_sent", c.UDNWordsSent)
	put("udn.msgs_recvd", c.UDNMsgsRecvd)
	put("udn.words_recvd", c.UDNWordsRecvd)
	put("udn.interrupts", c.UDNInterrupts)
	put("mesh.hops", c.MeshHops)
	put("barrier.rounds", c.BarrierRounds)
	for l := Locality(0); l < NumLocalities; l++ {
		put("rma.ops."+l.String(), c.RMAOps[l])
		put("rma.bytes."+l.String(), c.RMABytes[l])
	}
	for l := CacheLevel(0); l < NumCacheLevels; l++ {
		put("cache.copies."+l.String(), c.CacheCopies[l])
		put("cache.bytes."+l.String(), c.CacheBytes[l])
	}
	put("trace.dropped", c.TraceDropped)
	put("fault.delays", c.FaultDelays)
	put("fault.drops", c.FaultDrops)
	put("fault.timeouts", c.FaultTimeouts)
	put("fault.delay_ps", c.FaultDelayPs)
	put("atomic.emulated", c.AtomicEmulations)
	put("lock.acquires", c.LockAcquires)
	put("lock.retries", c.LockRetries)
	put("lock.handoffs", c.LockHandoffs)
	return m
}

// Collector accumulates aggregate counters over several runs; the -stats
// flag of tshmem-bench folds every run an experiment performs into one
// Collector. Fold is safe for concurrent use (experiments may run PE
// bodies that finish on different goroutines).
type Collector struct {
	mu   sync.Mutex
	runs int
	c    Counters
}

// Fold adds one run's aggregate counters.
func (col *Collector) Fold(c Counters) {
	col.mu.Lock()
	defer col.mu.Unlock()
	col.runs++
	col.c.Add(&c)
}

// Snapshot returns the number of folded runs and the accumulated counters.
func (col *Collector) Snapshot() (runs int, c Counters) {
	col.mu.Lock()
	defer col.mu.Unlock()
	return col.runs, col.c
}

// Table renders the accumulated counters with a run-count header.
func (col *Collector) Table() string {
	runs, c := col.Snapshot()
	return fmt.Sprintf("substrate counters over %d run(s):\n%s", runs, c.Table())
}

// Taxonomy describes every counter dimension; tshmem-info -counters
// prints it.
func Taxonomy() string {
	var b strings.Builder
	b.WriteString("operation classes (Counters.Ops / OpTimePs, trace event names):\n")
	for op := Op(0); op < NumOps; op++ {
		fmt.Fprintf(&b, "  %-10s %s\n", op, opDesc[op])
	}
	b.WriteString("RMA locality classes (Counters.RMABytes / RMAOps):\n")
	for l := Locality(0); l < NumLocalities; l++ {
		fmt.Fprintf(&b, "  %-10s %s\n", l, localityDesc[l])
	}
	b.WriteString("cache levels (Counters.CacheCopies / CacheBytes):\n")
	for l := CacheLevel(0); l < NumCacheLevels; l++ {
		fmt.Fprintf(&b, "  %-10s %s\n", l, levelDesc[l])
	}
	b.WriteString("UDN: msgs/words sent+received (payload words, header excluded),\n" +
		"     interrupts raised, and total mesh hops of injected packets.\n" +
		"barrier.rounds: wait/release signals sent on barrier chains\n" +
		"     (2(n-1)+1 signals per n-PE linear-chain barrier instance).\n" +
		"fault.*: injection perturbations (delays/drops/timeouts and total\n" +
		"     injected delay) under a fault plan; zero when faults are off.\n" +
		"atomic.emulated: fetch-ops run as TESTSET-guarded software critical\n" +
		"     sections on chips without native RMW (the Epiphany family).\n" +
		"lock.*: acquisitions, modeled retries/queue waits, and MCS direct\n" +
		"     handoffs across the lock algorithms (Config.LockAlgo).\n")
	b.WriteString("latency histogram classes (Counters.Hists, p50/p90/p99/max):\n")
	for h := HistClass(0); h < NumHistClasses; h++ {
		if h < HistClass(NumOps) {
			continue // op.* histograms mirror the operation classes above
		}
		fmt.Fprintf(&b, "  %-16s %s\n", h, histDesc(h))
	}
	b.WriteString("  op.<class>       inclusive duration per operation (one per op class)\n")
	return b.String()
}

var opDesc = [NumOps]string{
	"start_pes partition-address exchange + concluding barrier",
	"one-sided put (block/elemental/strided/slice)",
	"one-sided get (block/elemental/strided/slice)",
	"atomic memory operation (swap/cswap/fadd/finc/add/inc)",
	"shmem_fence / shmem_quiet (tmc_mem_fence)",
	"one barrier instance (including barriers inside collectives)",
	"shmem_broadcast (pull/push/binomial)",
	"shmem_collect / fcollect (naive or recursive doubling)",
	"to_all reduction (naive or recursive doubling)",
	"shmem_wait / shmem_wait_until",
	"fault-injection perturbation (delay span, drop, or wait timeout)",
}

var localityDesc = [NumLocalities]string{
	"both endpoints in the calling PE's own partition",
	"remote partition on the same chip (on-chip common memory)",
	"remote partition on another chip (store-and-forward over mPIPE)",
}

var levelDesc = [NumCacheLevels]string{
	"working set fits the tile's L1 data cache (hit)",
	"working set fits the tile's L2 (hit)",
	"working set fits the chip-wide Dynamic Distributed Cache (hit)",
	"working set spills to external DRAM (miss)",
}
