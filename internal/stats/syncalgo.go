package stats

import "fmt"

// BarrierAlgoID enumerates the barrier algorithms the library can run
// (core.BarrierAlgo mirrors this order, offset by its default
// pseudo-value; a test in internal/core asserts the names line up). Each
// algorithm owns a latency histogram class (HistForBarrierAlgo), so a run
// that mixes algorithms — or a sweep comparing them — keeps the
// distributions apart.
type BarrierAlgoID uint8

const (
	// BarrierAlgoLinear: the paper's linear wait/release UDN signal chain.
	BarrierAlgoLinear BarrierAlgoID = iota
	// BarrierAlgoSpin: the TMC shared-counter spin barrier.
	BarrierAlgoSpin
	// BarrierAlgoCounter: sense-reversing central counter barrier.
	BarrierAlgoCounter
	// BarrierAlgoDissemination: log-round dissemination barrier.
	BarrierAlgoDissemination
	// BarrierAlgoTournament: tournament barrier with bracket wakeup.
	BarrierAlgoTournament
	// BarrierAlgoMCSTree: MCS tree barrier (4-ary arrival, binary wakeup).
	BarrierAlgoMCSTree

	// NumBarrierAlgos bounds the enum.
	NumBarrierAlgos
)

var barrierAlgoNames = [NumBarrierAlgos]string{
	"linear", "tmc-spin", "counter", "dissemination", "tournament", "mcs-tree",
}

func (a BarrierAlgoID) String() string {
	if int(a) < len(barrierAlgoNames) {
		return barrierAlgoNames[a]
	}
	return fmt.Sprintf("BarrierAlgoID(%d)", int(a))
}

// LockAlgoID enumerates the lock algorithms (core.LockAlgo mirrors this
// order exactly). Each owns an acquire-latency histogram class
// (HistForLockAlgo); the scalar lock counters (LockAcquires, LockRetries,
// LockHandoffs) aggregate across algorithms.
type LockAlgoID uint8

const (
	// LockAlgoCAS: compare-and-swap spin lock with exponential backoff.
	LockAlgoCAS LockAlgoID = iota
	// LockAlgoTicket: FIFO ticket lock (fetch-add ticket, spin on serving).
	LockAlgoTicket
	// LockAlgoMCS: MCS queue lock with direct successor handoff.
	LockAlgoMCS

	// NumLockAlgos bounds the enum.
	NumLockAlgos
)

var lockAlgoNames = [NumLockAlgos]string{"cas", "ticket", "mcs"}

func (a LockAlgoID) String() string {
	if int(a) < len(lockAlgoNames) {
		return lockAlgoNames[a]
	}
	return fmt.Sprintf("LockAlgoID(%d)", int(a))
}
