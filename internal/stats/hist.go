package stats

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Hist is a fixed-size log-bucketed histogram of virtual durations in
// picoseconds. Buckets are power-of-two octaves split into histSub
// sub-buckets each, so the relative quantization error is bounded by
// 1/histSub (25%) while Observe stays allocation-free: the bucket array
// lives inline, sized for the full positive int64 range. Values 0..7 ps
// get exact buckets.
//
// Like the rest of Counters, a Hist is written only by the owning PE's
// goroutine and read after the run. It contains no pointers, so Counters
// stays comparable and Add-foldable.
type Hist struct {
	Count  int64
	SumPs  int64
	MaxPs  int64
	Bucket [NumHistBuckets]int64
}

const (
	// histSubBits sub-bucket bits per octave: 2 bits = 4 sub-buckets.
	histSubBits = 2
	histSub     = 1 << histSubBits

	// NumHistBuckets covers 0..2^63-1 ps: 8 exact small-value buckets,
	// then 4 sub-buckets for each octave 2^3..2^62.
	NumHistBuckets = 2*histSub + (62-histSubBits)*histSub
)

// histBucket maps a non-negative duration to its bucket index. Buckets are
// contiguous and ordered: a larger value never lands in a smaller bucket.
func histBucket(v int64) int {
	if v < 2*histSub {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	e := uint(bits.Len64(uint64(v))) - 1 // floor(log2 v), >= histSubBits+1
	sub := int((uint64(v) >> (e - histSubBits)) & (histSub - 1))
	b := int(e-1)<<histSubBits + sub
	if b >= NumHistBuckets {
		b = NumHistBuckets - 1
	}
	return b
}

// HistBucketUpper returns the largest value (ps) that maps to bucket i —
// the upper bound Quantile reports.
func HistBucketUpper(i int) int64 {
	if i < 2*histSub {
		return int64(i)
	}
	e := uint(i>>histSubBits) + 1
	sub := int64(i & (histSub - 1))
	width := int64(1) << (e - histSubBits)
	lo := (histSub + sub) << (e - histSubBits)
	return lo + width - 1
}

// Observe records one duration. Negative values clamp to zero (durations
// are non-negative by construction; the clamp keeps a corrupted input from
// indexing out of range).
func (h *Hist) Observe(ps int64) {
	if ps < 0 {
		ps = 0
	}
	h.Count++
	h.SumPs += ps
	if ps > h.MaxPs {
		h.MaxPs = ps
	}
	h.Bucket[histBucket(ps)]++
}

// Add folds o into h (aggregation across PEs or runs).
func (h *Hist) Add(o *Hist) {
	h.Count += o.Count
	h.SumPs += o.SumPs
	if o.MaxPs > h.MaxPs {
		h.MaxPs = o.MaxPs
	}
	for i := range h.Bucket {
		h.Bucket[i] += o.Bucket[i]
	}
}

// Quantile returns an upper bound (ps) on the q-quantile: the upper edge
// of the bucket holding the ceil(q*Count)-th smallest observation, clamped
// to the exact tracked maximum. The clamp makes quantiles monotone in q
// and guarantees Quantile(q) <= MaxPs for every q.
func (h *Hist) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.Bucket {
		cum += h.Bucket[i]
		if cum >= rank {
			ub := HistBucketUpper(i)
			if ub > h.MaxPs {
				ub = h.MaxPs
			}
			return ub
		}
	}
	return h.MaxPs
}

// MeanPs reports the exact mean duration (0 on an empty histogram).
func (h *Hist) MeanPs() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.SumPs / h.Count
}

// HistClass indexes Counters.Hists: one latency distribution per
// instrumented op class. The first NumOps classes mirror Op (inclusive
// per-operation durations, the distribution behind OpTimePs); the rest
// cover the substrate primitives underneath.
type HistClass uint8

const (
	// HistUDNSend: one-way latency of each injected UDN packet
	// (setup + hops + trailing words + direction epsilon).
	HistUDNSend HistClass = HistClass(NumOps) + iota
	// HistUDNWait: receiver-side stall per drained packet — how long the
	// receiving clock had to advance to meet the packet's arrival. Zero
	// when the packet was already waiting.
	HistUDNWait
	// HistBarrierWait: per-signal stall inside barrier chains (the wait
	// until an expected wait/release signal arrived).
	HistBarrierWait

	histRMABase // + Locality: per-transfer charged time by locality
	histRMA1
	histRMA2

	histCacheBase // + CacheLevel: per-copy charged time by backing level
	histCache1
	histCache2
	histCache3

	histBarAlgoBase // + BarrierAlgoID: inclusive barrier latency by algorithm
	histBarAlgo1
	histBarAlgo2
	histBarAlgo3
	histBarAlgo4
	histBarAlgo5

	histLockAlgoBase // + LockAlgoID: lock acquire latency by algorithm
	histLockAlgo1
	histLockAlgo2

	// NumHistClasses bounds the HistClass enum.
	NumHistClasses
)

// Compile-time guards: the locality, cache-level, and sync-algorithm
// blocks above must stay as wide as their enums.
var (
	_ = [1]struct{}{}[histCacheBase-histRMABase-HistClass(NumLocalities)]
	_ = [1]struct{}{}[histBarAlgoBase-histCacheBase-HistClass(NumCacheLevels)]
	_ = [1]struct{}{}[histLockAlgoBase-histBarAlgoBase-HistClass(NumBarrierAlgos)]
	_ = [1]struct{}{}[NumHistClasses-histLockAlgoBase-HistClass(NumLockAlgos)]
)

// HistForOp returns the histogram class of an operation class.
func HistForOp(op Op) HistClass { return HistClass(op) }

// HistForRMA returns the histogram class of an RMA locality.
func HistForRMA(loc Locality) HistClass { return histRMABase + HistClass(loc) }

// HistForCache returns the histogram class of a cache level.
func HistForCache(l CacheLevel) HistClass { return histCacheBase + HistClass(l) }

// HistForBarrierAlgo returns the histogram class of a barrier algorithm.
func HistForBarrierAlgo(a BarrierAlgoID) HistClass { return histBarAlgoBase + HistClass(a) }

// HistForLockAlgo returns the histogram class of a lock algorithm.
func HistForLockAlgo(a LockAlgoID) HistClass { return histLockAlgoBase + HistClass(a) }

func (h HistClass) String() string {
	switch {
	case h < HistClass(NumOps):
		return "op." + Op(h).String()
	case h == HistUDNSend:
		return "udn.send"
	case h == HistUDNWait:
		return "udn.recv_wait"
	case h == HistBarrierWait:
		return "barrier.wait"
	case h >= histRMABase && h < histRMABase+HistClass(NumLocalities):
		return "rma." + Locality(h-histRMABase).String()
	case h >= histCacheBase && h < histCacheBase+HistClass(NumCacheLevels):
		return "cache." + CacheLevel(h-histCacheBase).String()
	case h >= histBarAlgoBase && h < histBarAlgoBase+HistClass(NumBarrierAlgos):
		return "barrier.algo." + BarrierAlgoID(h-histBarAlgoBase).String()
	case h >= histLockAlgoBase && h < histLockAlgoBase+HistClass(NumLockAlgos):
		return "lock.algo." + LockAlgoID(h-histLockAlgoBase).String()
	default:
		return fmt.Sprintf("HistClass(%d)", int(h))
	}
}

// histDesc describes each non-Op histogram class for Taxonomy.
func histDesc(h HistClass) string {
	switch {
	case h < HistClass(NumOps):
		return "inclusive duration of each " + Op(h).String() + " operation"
	case h == HistUDNSend:
		return "one-way latency of each injected UDN packet"
	case h == HistUDNWait:
		return "receiver stall until packet arrival (0 if already queued)"
	case h == HistBarrierWait:
		return "stall per expected barrier-chain signal"
	case h >= histRMABase && h < histRMABase+HistClass(NumLocalities):
		return "charged time per " + Locality(h-histRMABase).String() + " RMA transfer"
	case h >= histCacheBase && h < histCacheBase+HistClass(NumCacheLevels):
		return "charged time per " + CacheLevel(h-histCacheBase).String() + "-backed memory copy"
	case h >= histBarAlgoBase && h < histBarAlgoBase+HistClass(NumBarrierAlgos):
		return "inclusive latency of each " + BarrierAlgoID(h-histBarAlgoBase).String() + " barrier"
	default:
		return "acquire latency of each " + LockAlgoID(h-histLockAlgoBase).String() + " lock"
	}
}

// HistTable renders the non-empty latency histograms as a quantile table
// (virtual microseconds), the companion of Counters.Table.
func (c *Counters) HistTable() string {
	var b strings.Builder
	us := func(ps int64) float64 { return float64(ps) / 1e6 }
	for i := range c.Hists {
		h := &c.Hists[i]
		if h.Count == 0 {
			continue
		}
		if b.Len() == 0 {
			fmt.Fprintf(&b, "  %-16s %9s %10s %10s %10s %10s\n",
				"latency (us)", "count", "p50", "p90", "p99", "max")
		}
		fmt.Fprintf(&b, "  %-16s %9d %10.3f %10.3f %10.3f %10.3f\n",
			HistClass(i).String(), h.Count,
			us(h.Quantile(0.50)), us(h.Quantile(0.90)), us(h.Quantile(0.99)), us(h.MaxPs))
	}
	return b.String()
}
