package stats

import (
	"math"
	"strings"
	"testing"

	"tshmem/internal/vtime"
)

// Every value must land in a bucket whose range contains it, buckets must
// be ordered, and the upper edge must be within 25% of the value (the
// 4-sub-buckets-per-octave quantization bound).
func TestHistBucketBoundaries(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100, 1023, 1024,
		1_000_000, 123_456_789, 1 << 40, (1 << 62) + 12345, math.MaxInt64} {
		b := histBucket(v)
		if b < 0 || b >= NumHistBuckets {
			t.Fatalf("bucket(%d) = %d out of range", v, b)
		}
		if b < prev {
			t.Fatalf("bucket not monotone: bucket(%d)=%d after %d", v, b, prev)
		}
		prev = b
		ub := HistBucketUpper(b)
		if ub < v {
			t.Errorf("upper(bucket(%d)) = %d < value", v, ub)
		}
		if v >= 8 && float64(ub-v) > 0.25*float64(v) {
			t.Errorf("bucket(%d) overestimates by %d (> 25%%)", v, ub-v)
		}
	}
	// Adjacent buckets tile the axis: upper(i)+1 falls in bucket i+1.
	for i := 0; i < NumHistBuckets-1; i++ {
		if got := histBucket(HistBucketUpper(i) + 1); got != i+1 {
			t.Fatalf("bucket(upper(%d)+1) = %d, want %d", i, got, i+1)
		}
	}
	// Exact small buckets: 0..7 ps have zero quantization error.
	for v := int64(0); v < 8; v++ {
		if histBucket(v) != int(v) || HistBucketUpper(int(v)) != v {
			t.Errorf("small value %d not exact: bucket=%d upper=%d",
				v, histBucket(v), HistBucketUpper(int(v)))
		}
	}
}

func TestHistQuantileMonotone(t *testing.T) {
	var h Hist
	// A skewed distribution with a long tail.
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	h.Observe(5_000_000)
	qs := []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	prev := int64(-1)
	for _, q := range qs {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%g) = %d < Quantile(prev) = %d", q, v, prev)
		}
		prev = v
	}
	if h.Quantile(1) != h.MaxPs || h.MaxPs != 5_000_000 {
		t.Errorf("p100 = %d, max = %d, want both 5000000", h.Quantile(1), h.MaxPs)
	}
	if p50 := h.Quantile(0.5); p50 < 500 || float64(p50) > 500*1.25 {
		t.Errorf("p50 = %d, want within 25%% above 500", p50)
	}
	// p99 <= max is guaranteed by the clamp even when the top bucket's
	// upper edge exceeds the max observation.
	if h.Quantile(0.99) > h.MaxPs {
		t.Errorf("p99 = %d exceeds max %d", h.Quantile(0.99), h.MaxPs)
	}
}

func TestHistObserveZeroAlloc(t *testing.T) {
	var h Hist
	n := testing.AllocsPerRun(100, func() {
		h.Observe(12345)
		h.Observe(0)
		h.Observe(1 << 50)
	})
	if n != 0 {
		t.Fatalf("Observe allocates %.1f times per run, want 0", n)
	}
}

func TestHistAddFolds(t *testing.T) {
	var a, b Hist
	for i := int64(0); i < 100; i++ {
		a.Observe(10)
		b.Observe(1000)
	}
	var sum Hist
	sum.Add(&a)
	sum.Add(&b)
	if sum.Count != 200 || sum.MaxPs != 1000 || sum.SumPs != 100*10+100*1000 {
		t.Fatalf("fold: count=%d max=%d sum=%d", sum.Count, sum.MaxPs, sum.SumPs)
	}
	if p50 := sum.Quantile(0.5); p50 < 10 || p50 > 13 {
		t.Errorf("folded p50 = %d, want ~10", p50)
	}
	if sum.MeanPs() != (100*10+100*1000)/200 {
		t.Errorf("mean = %d", sum.MeanPs())
	}
}

func TestHistEmptyAndNegative(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.MeanPs() != 0 {
		t.Errorf("empty hist: p50=%d mean=%d, want 0", h.Quantile(0.5), h.MeanPs())
	}
	h.Observe(-5) // clamps to zero instead of panicking
	if h.Count != 1 || h.MaxPs != 0 || h.Bucket[0] != 1 {
		t.Errorf("negative observation not clamped: %+v", h)
	}
}

// Recorder methods must feed the right histogram classes, and OpDone's
// histogram must agree with OpTimePs.
func TestRecorderFeedsHists(t *testing.T) {
	rec := New(0, false, 0)
	var clock vtime.Clock
	rec.UDNSend(4, 3, 21_900)
	rec.UDNRecvWait(4, 500)
	rec.BarrierWait(750)
	rec.RMA(SameChip, 4096, 9_000)
	rec.CacheCopy(CacheDDC, 4096, 8_000)
	start := clock.Now()
	clock.Advance(1234)
	rec.OpDone(OpPut, start, &clock, 4096, 1)
	c := rec.Counters()
	checks := []struct {
		class HistClass
		max   int64
	}{
		{HistUDNSend, 21_900},
		{HistUDNWait, 500},
		{HistBarrierWait, 750},
		{HistForRMA(SameChip), 9_000},
		{HistForCache(CacheDDC), 8_000},
		{HistForOp(OpPut), 1234},
	}
	for _, ck := range checks {
		h := c.Hists[ck.class]
		if h.Count != 1 || h.MaxPs != ck.max {
			t.Errorf("%v: count=%d max=%d, want 1 and %d", ck.class, h.Count, h.MaxPs, ck.max)
		}
	}
	if got := c.Hists[HistForOp(OpPut)].SumPs; got != c.OpTimePs[OpPut] {
		t.Errorf("op hist sum %d != OpTimePs %d", got, c.OpTimePs[OpPut])
	}
	// Counters with histograms must still fold and compare.
	var fold Counters
	fold.Add(&c)
	fold.Add(&c)
	if fold.Hists[HistUDNSend].Count != 2 {
		t.Errorf("folded hist count = %d, want 2", fold.Hists[HistUDNSend].Count)
	}
	if c != rec.Counters() {
		t.Error("Counters no longer comparable")
	}
}

func TestHistClassNames(t *testing.T) {
	want := map[HistClass]string{
		HistForOp(OpBarrier):    "op.barrier",
		HistUDNSend:             "udn.send",
		HistUDNWait:             "udn.recv_wait",
		HistBarrierWait:         "barrier.wait",
		HistForRMA(CrossChip):   "rma.cross-chip",
		HistForCache(CacheDRAM): "cache.DRAM",
	}
	for class, name := range want {
		if class.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(class), class.String(), name)
		}
	}
	seen := map[string]bool{}
	for h := HistClass(0); h < NumHistClasses; h++ {
		n := h.String()
		if strings.Contains(n, "HistClass(") {
			t.Errorf("class %d has no name", int(h))
		}
		if seen[n] {
			t.Errorf("duplicate class name %q", n)
		}
		seen[n] = true
	}
}

func TestHistTable(t *testing.T) {
	var c Counters
	if got := c.HistTable(); got != "" {
		t.Errorf("empty HistTable = %q, want empty", got)
	}
	c.Hists[HistUDNSend].Observe(1_500_000) // 1.5 us
	tab := c.HistTable()
	if !strings.Contains(tab, "udn.send") || !strings.Contains(tab, "1.500") {
		t.Errorf("HistTable missing row or value:\n%s", tab)
	}
	if strings.Contains(tab, "barrier.wait") {
		t.Errorf("HistTable must omit empty classes:\n%s", tab)
	}
}
